// The Prop 4.2.2 flattening: encode any instance into the fixed
// relational vocabulary (surrogate oids for structured values) and decode
// back, up to O-isomorphism.

#include "transform/relational.h"

#include <gtest/gtest.h>

#include <random>

#include "model/universe.h"
#include "transform/isomorphism.h"

namespace iqlkit {
namespace {

class RelationalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto vocab = RelationalVocabulary(&u_);
    ASSERT_TRUE(vocab.ok()) << vocab.status();
    vocab_ = std::make_shared<Schema>(std::move(*vocab));
  }

  Universe u_;
  std::shared_ptr<Schema> vocab_;
};

TEST_F(RelationalTest, VocabularyValidates) {
  EXPECT_TRUE(vocab_->HasClass(u_.Intern("Node")));
  EXPECT_TRUE(vocab_->HasRelation(u_.Intern("TupleField")));
}

TEST_F(RelationalTest, RoundTripsCyclicInstance) {
  TypePool& t = u_.types();
  auto schema = std::make_shared<Schema>(&u_);
  ASSERT_TRUE(schema
                  ->DeclareClass("Person",
                                 t.Tuple({{u_.Intern("name"), t.Base()},
                                          {u_.Intern("friends"),
                                           t.Set(t.ClassNamed("Person"))}}))
                  .ok());
  ASSERT_TRUE(
      schema->DeclareRelation("Vip", t.ClassNamed("Person")).ok());
  Instance inst(schema, &u_);
  ValueStore& v = u_.values();
  auto a = inst.CreateOid("Person");
  auto b = inst.CreateOid("Person");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(inst.SetOidValue(
                      *a, v.Tuple({{u_.Intern("name"), v.Const("ann")},
                                   {u_.Intern("friends"),
                                    v.Set({v.OfOid(*b), v.OfOid(*a)})}}))
                  .ok());
  ASSERT_TRUE(inst.SetOidValue(
                      *b, v.Tuple({{u_.Intern("name"), v.Const("bo")},
                                   {u_.Intern("friends"),
                                    v.Set({v.OfOid(*a)})}}))
                  .ok());
  ASSERT_TRUE(inst.AddToRelation("Vip", v.OfOid(*a)).ok());
  ASSERT_TRUE(inst.Validate().ok());

  auto encoded = EncodeRelational(inst, vocab_);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  // The encoding is itself a valid instance of the vocabulary.
  EXPECT_TRUE(encoded->Validate().ok()) << encoded->Validate();
  // Structured values got surrogates: ObjectIn has 2 rows, RefNode >= 3.
  EXPECT_EQ(encoded->Relation(u_.Intern("ObjectIn")).size(), 2u);
  EXPECT_GE(encoded->Relation(u_.Intern("RefNode")).size(), 2u);

  auto decoded = DecodeRelational(*encoded, schema);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->Validate().ok()) << decoded->Validate();
  EXPECT_TRUE(OIsomorphic(inst, *decoded));
  // Fresh oids: the decode is a genuine copy.
  for (Oid o : decoded->Objects()) {
    EXPECT_FALSE(inst.HasOid(o));
  }
}

TEST_F(RelationalTest, SharedValuesShareSurrogates) {
  TypePool& t = u_.types();
  auto schema = std::make_shared<Schema>(&u_);
  ASSERT_TRUE(schema->DeclareRelation("R", t.Set(t.Base())).ok());
  Instance inst(schema, &u_);
  ValueStore& v = u_.values();
  // The same set value twice (in two facts? set semantics dedups; use two
  // relations instead).
  ASSERT_TRUE(schema.get() != nullptr);
  ValueId shared = v.Set({v.Const("x"), v.Const("y")});
  ASSERT_TRUE(inst.AddToRelation("R", shared).ok());
  auto encoded = EncodeRelational(inst, vocab_);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  // Nodes: 1 set + 2 consts = 3 surrogates.
  EXPECT_EQ(encoded->ClassExtent(u_.Intern("Node")).size(), 3u);
}

TEST_F(RelationalTest, RandomInstanceSweep) {
  TypePool& t = u_.types();
  auto schema = std::make_shared<Schema>(&u_);
  ASSERT_TRUE(schema
                  ->DeclareClass("N",
                                 t.Tuple({{u_.Intern("l"), t.Base()},
                                          {u_.Intern("s"),
                                           t.Set(t.ClassNamed("N"))}}))
                  .ok());
  ASSERT_TRUE(schema
                  ->DeclareRelation(
                      "E", t.Tuple({{u_.Intern("#1"), t.ClassNamed("N")},
                                    {u_.Intern("#2"), t.ClassNamed("N")}}))
                  .ok());
  std::mt19937 rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    Instance inst(schema, &u_);
    ValueStore& v = u_.values();
    int n = 2 + rng() % 5;
    std::vector<Oid> oids;
    for (int i = 0; i < n; ++i) {
      auto o = inst.CreateOid("N");
      ASSERT_TRUE(o.ok());
      oids.push_back(*o);
    }
    for (int i = 0; i < n; ++i) {
      std::vector<ValueId> succ;
      for (int k = 0; k < static_cast<int>(rng() % 3); ++k) {
        succ.push_back(v.OfOid(oids[rng() % n]));
      }
      ASSERT_TRUE(inst.SetOidValue(
                          oids[i],
                          v.Tuple({{u_.Intern("l"),
                                    v.ConstInt(static_cast<int>(rng() % 3))},
                                   {u_.Intern("s"),
                                    v.Set(std::move(succ))}}))
                      .ok());
    }
    for (int k = 0; k < 2; ++k) {
      ASSERT_TRUE(
          inst.AddToRelation(
                  "E", v.Tuple({{u_.Intern("#1"),
                                 v.OfOid(oids[rng() % n])},
                                {u_.Intern("#2"),
                                 v.OfOid(oids[rng() % n])}}))
              .ok());
    }
    auto encoded = EncodeRelational(inst, vocab_);
    ASSERT_TRUE(encoded.ok()) << encoded.status();
    auto decoded = DecodeRelational(*encoded, schema);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(OIsomorphic(inst, *decoded)) << "trial " << trial;
  }
}

TEST_F(RelationalTest, DecodeRejectsForeignClasses) {
  TypePool& t = u_.types();
  auto schema_a = std::make_shared<Schema>(&u_);
  ASSERT_TRUE(schema_a->DeclareClass("A", t.Base()).ok());
  auto schema_b = std::make_shared<Schema>(&u_);
  ASSERT_TRUE(schema_b->DeclareClass("B", t.Base()).ok());
  Instance inst(schema_a, &u_);
  ASSERT_TRUE(inst.CreateOid("A").ok());
  auto encoded = EncodeRelational(inst, vocab_);
  ASSERT_TRUE(encoded.ok());
  EXPECT_FALSE(DecodeRelational(*encoded, schema_b).ok());
}

}  // namespace
}  // namespace iqlkit
