#include "transform/isomorphism.h"

#include <gtest/gtest.h>

#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class IsomorphismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = u_.types();
    schema_ = std::make_unique<Schema>(&u_);
    ASSERT_TRUE(schema_
                    ->DeclareClass("Node",
                                   t.Tuple({{u_.Intern("succ"),
                                             t.Set(t.ClassNamed("Node"))}}))
                    .ok());
    ASSERT_TRUE(
        schema_->DeclareRelation("Label",
                                 t.Tuple({{PosAttr(1), t.ClassNamed("Node")},
                                          {PosAttr(2), t.Base()}}))
            .ok());
  }

  Symbol PosAttr(int k) { return u_.Intern("#" + std::to_string(k)); }

  // Builds a ring of n Node oids; labels node 0 with `label`.
  Instance Ring(int n, std::string_view label) {
    Instance inst(schema_.get(), &u_);
    ValueStore& v = u_.values();
    std::vector<Oid> oids;
    for (int i = 0; i < n; ++i) {
      auto o = inst.CreateOid("Node");
      EXPECT_TRUE(o.ok());
      oids.push_back(*o);
    }
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(
          inst.SetOidValue(
                  oids[i],
                  v.Tuple({{u_.Intern("succ"),
                            v.Set({v.OfOid(oids[(i + 1) % n])})}}))
              .ok());
    }
    EXPECT_TRUE(inst.AddToRelation(
                        "Label", v.Tuple({{PosAttr(1), v.OfOid(oids[0])},
                                          {PosAttr(2), v.Const(label)}}))
                    .ok());
    return inst;
  }

  Universe u_;
  std::unique_ptr<Schema> schema_;
};

TEST_F(IsomorphismTest, IdenticalInstancesIsomorphic) {
  Instance a = Ring(4, "x");
  EXPECT_TRUE(OIsomorphic(a, a));
}

TEST_F(IsomorphismTest, RenamedOidsIsomorphic) {
  Instance a = Ring(5, "x");
  Instance b = RenameOids(a, [](Oid o) { return Oid{o.raw + 1000}; });
  auto map = FindOIsomorphism(a, b);
  ASSERT_TRUE(map.has_value());
  for (const auto& [from, to] : *map) {
    EXPECT_EQ(to.raw, from.raw + 1000);
  }
}

TEST_F(IsomorphismTest, SeparatelyBuiltRingsIsomorphic) {
  Instance a = Ring(6, "x");
  Instance b = Ring(6, "x");
  EXPECT_TRUE(OIsomorphic(a, b));
}

TEST_F(IsomorphismTest, DifferentSizesNotIsomorphic) {
  EXPECT_FALSE(OIsomorphic(Ring(4, "x"), Ring(5, "x")));
}

TEST_F(IsomorphismTest, DifferentConstantsNotIsomorphic) {
  // O-isomorphisms fix constants pointwise.
  EXPECT_FALSE(OIsomorphic(Ring(4, "x"), Ring(4, "y")));
}

TEST_F(IsomorphismTest, StructureDetectedBeyondCardinalities) {
  // One 6-ring vs two 3-rings: same class sizes, different structure.
  Instance a = Ring(6, "x");
  Instance b = Ring(3, "x");
  {
    // Add a second, unlabeled 3-ring into b.
    ValueStore& v = u_.values();
    std::vector<Oid> oids;
    for (int i = 0; i < 3; ++i) {
      auto o = b.CreateOid("Node");
      ASSERT_TRUE(o.ok());
      oids.push_back(*o);
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          b.SetOidValue(oids[i],
                        v.Tuple({{u_.Intern("succ"),
                                  v.Set({v.OfOid(oids[(i + 1) % 3])})}}))
              .ok());
    }
  }
  EXPECT_FALSE(OIsomorphic(a, b));
}

TEST_F(IsomorphismTest, AutomorphicSymmetricStructuresMatch) {
  // Two disjoint unlabeled 2-rings admit many isomorphisms; the search
  // must find one despite identical colors.
  auto two_rings = [&]() {
    Instance inst(schema_.get(), &u_);
    ValueStore& v = u_.values();
    for (int r = 0; r < 2; ++r) {
      std::vector<Oid> oids;
      for (int i = 0; i < 2; ++i) {
        auto o = inst.CreateOid("Node");
        EXPECT_TRUE(o.ok());
        oids.push_back(*o);
      }
      for (int i = 0; i < 2; ++i) {
        EXPECT_TRUE(inst.SetOidValue(
                            oids[i],
                            v.Tuple({{u_.Intern("succ"),
                                      v.Set({v.OfOid(oids[(i + 1) % 2])})}}))
                        .ok());
      }
    }
    return inst;
  };
  Instance a = two_rings();
  Instance b = two_rings();
  EXPECT_TRUE(OIsomorphic(a, b));
}

TEST_F(IsomorphismTest, RenameInstancePermutesConstants) {
  Instance a = Ring(3, "x");
  Symbol x = u_.Intern("x");
  Symbol y = u_.Intern("y");
  Instance b = RenameInstance(
      a, [](Oid o) { return o; },
      [&](Symbol s) { return s == x ? y : s; });
  EXPECT_FALSE(OIsomorphic(a, b));        // constants differ
  EXPECT_TRUE(OIsomorphic(b, Ring(3, "y")));
}

}  // namespace
}  // namespace iqlkit
