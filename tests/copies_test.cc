// Definition 4.2.3 / Theorem 4.2.4: instances-with-copies -- construction,
// splitting, and copy elimination (with its isomorphism invariant).

#include "transform/copies.h"

#include <gtest/gtest.h>

#include "model/universe.h"
#include "transform/isomorphism.h"

namespace iqlkit {
namespace {

class CopiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = u_.types();
    base_ = std::make_shared<Schema>(&u_);
    ASSERT_TRUE(base_
                    ->DeclareClass("Node",
                                   t.Tuple({{u_.Intern("name"), t.Base()},
                                            {u_.Intern("succ"),
                                             t.Set(t.ClassNamed("Node"))}}))
                    .ok());
    ASSERT_TRUE(base_->DeclareRelation("Root", t.ClassNamed("Node")).ok());
    auto copies = SchemaForCopies(&u_, *base_);
    ASSERT_TRUE(copies.ok()) << copies.status();
    copies_ = std::make_shared<Schema>(std::move(*copies));
  }

  // A 2-node cycle with a Root fact.
  Instance Original() {
    Instance inst(base_.get(), &u_);
    ValueStore& v = u_.values();
    auto a = inst.CreateOid("Node");
    auto b = inst.CreateOid("Node");
    EXPECT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(inst.SetOidValue(
                        *a, v.Tuple({{u_.Intern("name"), v.Const("a")},
                                     {u_.Intern("succ"),
                                      v.Set({v.OfOid(*b)})}}))
                    .ok());
    EXPECT_TRUE(inst.SetOidValue(
                        *b, v.Tuple({{u_.Intern("name"), v.Const("b")},
                                     {u_.Intern("succ"),
                                      v.Set({v.OfOid(*a)})}}))
                    .ok());
    EXPECT_TRUE(inst.AddToRelation("Root", v.OfOid(*a)).ok());
    return inst;
  }

  Universe u_;
  std::shared_ptr<Schema> base_;
  std::shared_ptr<Schema> copies_;
};

TEST_F(CopiesTest, SchemaForCopiesAddsUnionSetRelation) {
  Symbol copies = u_.Intern("Copies");
  ASSERT_TRUE(copies_->HasRelation(copies));
  EXPECT_EQ(u_.types().ToString(copies_->RelationType(copies)), "{Node}");
}

TEST_F(CopiesTest, SchemaForCopiesRequiresAClass) {
  Schema flat(&u_);
  ASSERT_TRUE(flat.DeclareRelation("R", u_.types().Base()).ok());
  EXPECT_FALSE(SchemaForCopies(&u_, flat).ok());
}

TEST_F(CopiesTest, MakeThenSplitRoundTrips) {
  Instance original = Original();
  auto with_copies = MakeCopies(original, copies_, 3);
  ASSERT_TRUE(with_copies.ok()) << with_copies.status();
  EXPECT_EQ(with_copies->ClassExtent(u_.Intern("Node")).size(), 6u);
  EXPECT_EQ(with_copies->Relation(u_.Intern("Root")).size(), 3u);
  EXPECT_TRUE(with_copies->Validate().ok()) << with_copies->Validate();

  auto copies = SplitCopies(*with_copies, base_);
  ASSERT_TRUE(copies.ok()) << copies.status();
  ASSERT_EQ(copies->size(), 3u);
  for (const Instance& copy : *copies) {
    EXPECT_TRUE(OIsomorphic(copy, original));
  }
}

TEST_F(CopiesTest, EliminateCopiesReturnsOneIsomorphicCopy) {
  Instance original = Original();
  auto with_copies = MakeCopies(original, copies_, 4);
  ASSERT_TRUE(with_copies.ok());
  auto one = EliminateCopies(*with_copies, base_);
  ASSERT_TRUE(one.ok()) << one.status();
  EXPECT_TRUE(OIsomorphic(*one, original));
}

TEST_F(CopiesTest, EliminateRefusesNonIsomorphicCopies) {
  Instance original = Original();
  auto with_copies = MakeCopies(original, copies_, 2);
  ASSERT_TRUE(with_copies.ok());
  // Corrupt one copy: add an extra Root fact pointing into it.
  ValueStore& v = u_.values();
  ValueId reg = *with_copies->Relation(u_.Intern("Copies")).begin();
  Oid member = v.node(v.node(reg).elems[0]).oid;
  ASSERT_TRUE(with_copies->AddToRelation("Root", v.OfOid(member)).ok());
  auto one = EliminateCopies(*with_copies, base_);
  // Either the corrupted copy differs (refused) or the extra fact happens
  // to duplicate an existing Root; with a 2-node cycle and Root(a) only,
  // an extra Root is visible unless it hit the same oid.
  if (!one.ok()) {
    EXPECT_EQ(one.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(CopiesTest, SplitRejectsOverlappingRegistrations) {
  Instance original = Original();
  auto with_copies = MakeCopies(original, copies_, 1);
  ASSERT_TRUE(with_copies.ok());
  // Register the same oid set twice.
  ValueId reg = *with_copies->Relation(u_.Intern("Copies")).begin();
  ValueStore& v = u_.values();
  ValueId dup = v.Set({v.node(reg).elems[0]});
  ASSERT_TRUE(with_copies->AddToRelation("Copies", dup).ok());
  EXPECT_FALSE(SplitCopies(*with_copies, base_).ok());
}

}  // namespace
}  // namespace iqlkit
