#include "model/type_algebra.h"

#include <gtest/gtest.h>

#include <map>

#include "base/interner.h"
#include "model/type.h"
#include "model/value.h"

namespace iqlkit {
namespace {

// Toy resolver with a fixed oid -> class map (a disjoint assignment).
class MapResolver : public ClassResolver {
 public:
  void Put(Oid o, Symbol cls) { map_[o] = cls; }
  bool OidInClass(Oid o, Symbol cls) const override {
    auto it = map_.find(o);
    return it != map_.end() && it->second == cls;
  }

 private:
  std::map<Oid, Symbol> map_;
};

class TypeAlgebraTest : public ::testing::Test {
 protected:
  Symbol Sym(std::string_view s) { return syms_.Intern(s); }

  SymbolTable syms_;
  TypePool pool_{&syms_};
  ValueStore store_{&syms_};
  MapResolver resolver_;
};

// --- membership -----------------------------------------------------------

TEST_F(TypeAlgebraTest, BaseContainsConstsOnly) {
  TypeMembership m(&pool_, &store_, &resolver_);
  EXPECT_TRUE(m.Contains(pool_.Base(), store_.Const("x")));
  EXPECT_FALSE(m.Contains(pool_.Base(), store_.OfOid(Oid{1})));
  EXPECT_FALSE(m.Contains(pool_.Base(), store_.EmptySet()));
}

TEST_F(TypeAlgebraTest, EmptyContainsNothing) {
  TypeMembership m(&pool_, &store_, &resolver_);
  EXPECT_FALSE(m.Contains(pool_.Empty(), store_.Const("x")));
  EXPECT_FALSE(m.Contains(pool_.Empty(), store_.EmptySet()));
}

TEST_F(TypeAlgebraTest, ClassMembershipUsesResolver) {
  resolver_.Put(Oid{1}, Sym("P"));
  TypeMembership m(&pool_, &store_, &resolver_);
  EXPECT_TRUE(m.Contains(pool_.ClassNamed("P"), store_.OfOid(Oid{1})));
  EXPECT_FALSE(m.Contains(pool_.ClassNamed("Q"), store_.OfOid(Oid{1})));
  EXPECT_FALSE(m.Contains(pool_.ClassNamed("P"), store_.OfOid(Oid{2})));
}

TEST_F(TypeAlgebraTest, TupleExactAttributes) {
  TypeMembership m(&pool_, &store_, &resolver_);
  TypeId t = pool_.Tuple({{Sym("A"), pool_.Base()}});
  ValueId good = store_.Tuple({{Sym("A"), store_.Const("x")}});
  ValueId extra = store_.Tuple(
      {{Sym("A"), store_.Const("x")}, {Sym("B"), store_.Const("y")}});
  EXPECT_TRUE(m.Contains(t, good));
  EXPECT_FALSE(m.Contains(t, extra));
  EXPECT_FALSE(m.Contains(t, store_.EmptyTuple()));
}

TEST_F(TypeAlgebraTest, StarTupleAllowsExtraAttributes) {
  TypeMembership star(&pool_, &store_, &resolver_, /*star=*/true);
  TypeId t = pool_.Tuple({{Sym("A"), pool_.Base()}});
  ValueId extra = store_.Tuple(
      {{Sym("A"), store_.Const("x")}, {Sym("B"), store_.Const("y")}});
  EXPECT_TRUE(star.Contains(t, extra));
  EXPECT_FALSE(star.Contains(t, store_.EmptyTuple()));
}

TEST_F(TypeAlgebraTest, SetMembershipElementwise) {
  TypeMembership m(&pool_, &store_, &resolver_);
  TypeId t = pool_.Set(pool_.Base());
  EXPECT_TRUE(m.Contains(t, store_.EmptySet()));
  EXPECT_TRUE(m.Contains(t, store_.Set({store_.Const("x")})));
  EXPECT_FALSE(m.Contains(t, store_.Set({store_.OfOid(Oid{1})})));
  EXPECT_FALSE(m.Contains(t, store_.Const("x")));
}

TEST_F(TypeAlgebraTest, UnionAndIntersectMembership) {
  resolver_.Put(Oid{1}, Sym("P"));
  TypeMembership m(&pool_, &store_, &resolver_);
  TypeId u = pool_.Union({pool_.Base(), pool_.ClassNamed("P")});
  EXPECT_TRUE(m.Contains(u, store_.Const("x")));
  EXPECT_TRUE(m.Contains(u, store_.OfOid(Oid{1})));
  EXPECT_FALSE(m.Contains(u, store_.OfOid(Oid{2})));
}

// --- Proposition 2.2.1 ----------------------------------------------------

TEST_F(TypeAlgebraTest, PaperExampleTupleIntersection) {
  // [A1: D, A2: {P1}] & [A1: D, A2: {P2}] == [A1: D, A2: {(P1 & P2)}]
  // over all assignments, and [A1: D, A2: {<empty>}] over disjoint ones.
  TypeId p1 = pool_.ClassNamed("P1");
  TypeId p2 = pool_.ClassNamed("P2");
  TypeId lhs = pool_.Intersect2(
      pool_.Tuple({{Sym("A1"), pool_.Base()}, {Sym("A2"), pool_.Set(p1)}}),
      pool_.Tuple({{Sym("A1"), pool_.Base()}, {Sym("A2"), pool_.Set(p2)}}));
  TypeId reduced = IntersectionReduce(&pool_, lhs);
  EXPECT_EQ(reduced,
            pool_.Tuple({{Sym("A1"), pool_.Base()},
                         {Sym("A2"), pool_.Set(pool_.Intersect2(p1, p2))}}));
  EXPECT_TRUE(pool_.IsIntersectionReduced(reduced));

  TypeId eliminated = EliminateIntersection(&pool_, lhs);
  EXPECT_EQ(eliminated,
            pool_.Tuple({{Sym("A1"), pool_.Base()},
                         {Sym("A2"), pool_.Set(pool_.Empty())}}));
  EXPECT_TRUE(pool_.IsIntersectionFree(eliminated));
}

TEST_F(TypeAlgebraTest, PaperExampleUnionIntersection) {
  // ({D} | P1) & P2 == (P1 & P2) over all assignments and empty over
  // disjoint ones.
  TypeId p1 = pool_.ClassNamed("P1");
  TypeId p2 = pool_.ClassNamed("P2");
  TypeId lhs =
      pool_.Intersect2(pool_.Union({pool_.Set(pool_.Base()), p1}), p2);
  EXPECT_EQ(IntersectionReduce(&pool_, lhs), pool_.Intersect2(p1, p2));
  EXPECT_EQ(EliminateIntersection(&pool_, lhs), pool_.Empty());
}

TEST_F(TypeAlgebraTest, BaseIntersectClassIsEmptyOverAllAssignments) {
  TypeId t = pool_.Intersect2(pool_.Base(), pool_.ClassNamed("P"));
  EXPECT_EQ(IntersectionReduce(&pool_, t), pool_.Empty());
}

TEST_F(TypeAlgebraTest, TupleIntersectDifferentAttrsEmpty) {
  TypeId t = pool_.Intersect2(pool_.Tuple({{Sym("A"), pool_.Base()}}),
                              pool_.Tuple({{Sym("B"), pool_.Base()}}));
  EXPECT_EQ(IntersectionReduce(&pool_, t), pool_.Empty());
}

TEST_F(TypeAlgebraTest, SetIntersectPushesInside) {
  TypeId p1 = pool_.ClassNamed("P1");
  TypeId p2 = pool_.ClassNamed("P2");
  TypeId t = pool_.Intersect2(pool_.Set(p1), pool_.Set(p2));
  EXPECT_EQ(IntersectionReduce(&pool_, t),
            pool_.Set(pool_.Intersect2(p1, p2)));
}

TEST_F(TypeAlgebraTest, ReductionPreservesMembership) {
  // Property check: for a family of values, membership in t and in
  // IntersectionReduce(t) agree (they are equivalent over all assignments).
  resolver_.Put(Oid{1}, Sym("P1"));
  resolver_.Put(Oid{2}, Sym("P2"));
  TypeId p1 = pool_.ClassNamed("P1");
  TypeId p2 = pool_.ClassNamed("P2");
  std::vector<TypeId> types = {
      pool_.Intersect2(pool_.Union({pool_.Base(), p1}),
                       pool_.Union({pool_.Base(), p2})),
      pool_.Intersect2(pool_.Set(pool_.Union({p1, p2})), pool_.Set(p1)),
      pool_.Intersect2(
          pool_.Tuple({{Sym("A"), pool_.Union({p1, p2})}}),
          pool_.Tuple({{Sym("A"), p2}})),
  };
  std::vector<ValueId> values = {
      store_.Const("c"),
      store_.OfOid(Oid{1}),
      store_.OfOid(Oid{2}),
      store_.EmptySet(),
      store_.Set({store_.OfOid(Oid{1})}),
      store_.Set({store_.OfOid(Oid{1}), store_.OfOid(Oid{2})}),
      store_.Tuple({{Sym("A"), store_.OfOid(Oid{2})}}),
      store_.Tuple({{Sym("A"), store_.Const("c")}}),
  };
  for (TypeId t : types) {
    TypeId r = IntersectionReduce(&pool_, t);
    TypeMembership mt(&pool_, &store_, &resolver_);
    TypeMembership mr(&pool_, &store_, &resolver_);
    for (ValueId v : values) {
      EXPECT_EQ(mt.Contains(t, v), mr.Contains(r, v))
          << pool_.ToString(t) << " vs " << pool_.ToString(r) << " on "
          << store_.ToString(v);
    }
  }
}

// --- normalization / equivalence -------------------------------------------

TEST_F(TypeAlgebraTest, UnionDistributesOutOfTuples) {
  TypeId p = pool_.ClassNamed("P");
  TypeId d = pool_.Base();
  TypeId a = pool_.Tuple({{Sym("A"), pool_.Union({d, p})}});
  TypeId b = pool_.Union({pool_.Tuple({{Sym("A"), d}}),
                          pool_.Tuple({{Sym("A"), p}})});
  EXPECT_TRUE(EquivalentOverDisjoint(&pool_, a, b));
}

TEST_F(TypeAlgebraTest, SetBlocksDistribution) {
  TypeId p = pool_.ClassNamed("P");
  TypeId d = pool_.Base();
  TypeId a = pool_.Set(pool_.Union({d, p}));
  TypeId b = pool_.Union({pool_.Set(d), pool_.Set(p)});
  // {D | P} contains mixed sets; {D} | {P} does not. Not equivalent.
  EXPECT_FALSE(EquivalentOverDisjoint(&pool_, a, b));
}

TEST_F(TypeAlgebraTest, EquivalenceOverDisjointFromPaper) {
  // ({D} | P1) & P2 equivalent to empty over disjoint assignments.
  TypeId p1 = pool_.ClassNamed("P1");
  TypeId p2 = pool_.ClassNamed("P2");
  TypeId lhs =
      pool_.Intersect2(pool_.Union({pool_.Set(pool_.Base()), p1}), p2);
  EXPECT_TRUE(EquivalentOverDisjoint(&pool_, lhs, pool_.Empty()));
}

}  // namespace
}  // namespace iqlkit
