// Golden tests for the iqlint analyzer.
//
// Each file in tests/bad/ ends with one `# expect: CODE line:col` line
// per diagnostic it should trigger; the test runs LintSource over the
// file and compares the exact (code, line, column) multiset. A second
// suite asserts every shipped example under examples/iql/ lints clean
// (no warnings or errors; optimizer hints are allowed).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "gtest/gtest.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

namespace fs = std::filesystem;

fs::path BadDir() { return fs::path(IQLKIT_SOURCE_DIR) / "tests" / "bad"; }

fs::path ExamplesDir() {
  return fs::path(IQLKIT_SOURCE_DIR) / "examples" / "iql";
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A diagnostic's identity for golden comparison.
struct Expected {
  std::string code;
  int line = 0;
  int column = 0;

  bool operator<(const Expected& o) const {
    return std::tie(code, line, column) < std::tie(o.code, o.line, o.column);
  }
  bool operator==(const Expected& o) const {
    return code == o.code && line == o.line && column == o.column;
  }
};

std::ostream& operator<<(std::ostream& os, const Expected& e) {
  return os << e.code << " " << e.line << ":" << e.column;
}

// Parses the trailing `# expect: CODE line:col` annotations.
std::vector<Expected> ParseExpectations(const std::string& source) {
  std::vector<Expected> out;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view marker = "# expect: ";
    auto pos = line.find(marker);
    if (pos == std::string::npos) continue;
    std::istringstream fields(line.substr(pos + marker.size()));
    Expected e;
    char colon = 0;
    fields >> e.code >> e.line >> colon >> e.column;
    EXPECT_TRUE(fields && colon == ':')
        << "malformed expectation line: " << line;
    out.push_back(e);
  }
  return out;
}

std::vector<Expected> Actual(const DiagnosticSink& sink) {
  std::vector<Expected> out;
  for (const Diagnostic& d : sink.diagnostics()) {
    out.push_back({d.code, d.span.line, d.span.column});
  }
  return out;
}

std::vector<fs::path> FilesIn(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".iql") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(LintGoldenTest, BadCorpusMatchesExpectations) {
  std::vector<fs::path> files = FilesIn(BadDir());
  ASSERT_FALSE(files.empty()) << "no .iql files in " << BadDir();
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::string source = ReadFile(path);
    std::vector<Expected> expected = ParseExpectations(source);
    EXPECT_FALSE(expected.empty())
        << path << " has no `# expect:` annotations";

    Universe universe;
    DiagnosticSink sink;
    LintSource(&universe, source, AnalyzerOptions{}, &sink);
    std::vector<Expected> actual = Actual(sink);

    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    std::ostringstream got;
    for (const Expected& e : actual) got << "  " << e << "\n";
    EXPECT_EQ(expected, actual) << "diagnostics for " << path.filename()
                                << ":\n"
                                << got.str();
  }
}

// The W002 report must carry the recursive SCC in its notes so the user
// can see *which* derived sets the invention feeds back through.
TEST(LintGoldenTest, InventionInRecursionNamesScc) {
  std::string source = ReadFile(BadDir() / "invention_rec.iql");
  Universe universe;
  DiagnosticSink sink;
  LintSource(&universe, source, AnalyzerOptions{}, &sink);

  const Diagnostic* w002 = nullptr;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == "W002") w002 = &d;
  }
  ASSERT_NE(w002, nullptr);
  ASSERT_FALSE(w002->notes.empty());
  std::string all_notes;
  for (const DiagnosticNote& note : w002->notes) all_notes += note.message;
  EXPECT_NE(all_notes.find("'P'"), std::string::npos) << all_notes;
  EXPECT_NE(all_notes.find("'R1'"), std::string::npos) << all_notes;
}

// Every shipped example must lint without warnings or errors. (Pragmas
// inside the examples may suppress codes that are the example's point;
// optimizer hints are allowed.)
TEST(LintGoldenTest, ExamplesLintClean) {
  std::vector<fs::path> files = FilesIn(ExamplesDir());
  ASSERT_FALSE(files.empty()) << "no .iql files in " << ExamplesDir();
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::string source = ReadFile(path);
    Universe universe;
    DiagnosticSink sink;
    LintSource(&universe, source, AnalyzerOptions{}, &sink);
    for (const Diagnostic& d : sink.diagnostics()) {
      EXPECT_LT(d.severity, Severity::kWarning)
          << OneLine(d, path.filename().string());
    }
  }
}

// tc.iql is the acceptance-criteria example: it must produce a literally
// empty diagnostics list (not even hints).
TEST(LintGoldenTest, TransitiveClosureExampleIsSpotless) {
  std::string source = ReadFile(ExamplesDir() / "tc.iql");
  Universe universe;
  DiagnosticSink sink;
  LintSource(&universe, source, AnalyzerOptions{}, &sink);
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(RenderJson(sink.diagnostics(), "examples/iql/tc.iql"),
            "{\"file\": \"examples/iql/tc.iql\", \"diagnostics\": []}");
}

// Pragma suppression: the same program with and without an allow pragma.
TEST(LintPragmaTest, AllowSuppressesListedCodes) {
  const std::string program =
      "schema {\n"
      "  relation R : D;\n"
      "  relation S : D;\n"
      "  relation T : [D, D];\n"
      "}\n"
      "program {\n"
      "  var x: D, y: D;\n"
      "  T(x, y) :- R(x), S(y).\n"
      "}\n";
  {
    Universe universe;
    DiagnosticSink sink;
    LintSource(&universe, program, AnalyzerOptions{}, &sink);
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.diagnostics()[0].code, "O001");
  }
  {
    Universe universe;
    DiagnosticSink sink;
    LintSource(&universe, "# iqlint: allow(O001)\n" + program,
               AnalyzerOptions{}, &sink);
    EXPECT_TRUE(sink.empty());
  }
}

TEST(LintPragmaTest, ParseLintPragmasCollectsAllComments) {
  std::set<std::string> codes = ParseLintPragmas(
      "# iqlint: allow(W002, W003)\n"
      "schema {}\n"
      "# iqlint: allow(O001)\n");
  EXPECT_EQ(codes, (std::set<std::string>{"W002", "W003", "O001"}));
}

}  // namespace
}  // namespace iqlkit
