#include "base/status.h"

#include <gtest/gtest.h>

#include "base/result.h"

namespace iqlkit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = TypeError("bad tuple");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(s.message(), "bad tuple");
  EXPECT_EQ(s.ToString(), "TYPE_ERROR: bad tuple");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(QueueFullError("x").code(), StatusCode::kQueueFull);
  EXPECT_EQ(OverloadedError("x").code(), StatusCode::kOverloaded);
}

TEST(StatusTest, SchedulerCodeNamesAreStable) {
  // iqlserve output and the scheduler soak assert on these exact strings.
  EXPECT_EQ(StatusCodeName(StatusCode::kQueueFull), "QUEUE_FULL");
  EXPECT_EQ(StatusCodeName(StatusCode::kOverloaded), "OVERLOAD");
}

Status Fails() { return OutOfRangeError("boom"); }
Status Propagates() {
  IQL_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Propagates();
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Result<int> Doubled(int x) {
  IQL_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
}

TEST(ResultTest, ErrorRoundTrip) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Doubled(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  Result<int> err = Doubled(0);
  EXPECT_FALSE(err.ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace iqlkit
