#include "iql/typecheck.h"

#include <gtest/gtest.h>

#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class TypecheckTest : public ::testing::Test {
 protected:
  // Parses and type checks; returns the status of TypeCheck.
  Status CheckUnit(std::string_view source) {
    auto unit = ParseUnit(&u_, source);
    if (!unit.ok()) return unit.status();
    unit_ = std::make_unique<ParsedUnit>(std::move(*unit));
    return TypeCheck(&u_, unit_->schema, &unit_->program);
  }

  Universe u_;
  std::unique_ptr<ParsedUnit> unit_;
};

TEST_F(TypecheckTest, InfersVariableTypesFromRelations) {
  ASSERT_TRUE(CheckUnit(R"(
    schema { relation R : [D, D]; relation R0 : D; }
    program { R0(x) :- R(x, y). }
  )").ok());
  const Rule& rule = unit_->program.stages[0][0];
  EXPECT_EQ(u_.types().ToString(rule.var_types.at(u_.Intern("x"))), "D");
  EXPECT_EQ(u_.types().ToString(rule.var_types.at(u_.Intern("y"))), "D");
}

TEST_F(TypecheckTest, InfersClassTypesFromClassLiterals) {
  ASSERT_TRUE(CheckUnit(R"(
    schema { class P : D; relation Out : P; }
    program { Out(p) :- P(p). }
  )").ok());
  const Rule& rule = unit_->program.stages[0][0];
  EXPECT_EQ(u_.types().ToString(rule.var_types.at(u_.Intern("p"))), "P");
}

TEST_F(TypecheckTest, InfersThroughDerefMembership) {
  // z: P from R5's second column; y via z^(y) where T(P) = {D}.
  ASSERT_TRUE(CheckUnit(R"(
    schema { relation R5 : [D, P]; relation Out : D; class P : {D}; }
    program { Out(y) :- R5(x, z), z^(y). }
  )").ok());
  const Rule& rule = unit_->program.stages[0][0];
  EXPECT_EQ(u_.types().ToString(rule.var_types.at(u_.Intern("y"))), "D");
}

TEST_F(TypecheckTest, UnrestrictedVariableInferredFromHead) {
  // X = X constrains nothing, but the head R1(X) types X as {D}
  // (Example 3.4.2's unrestricted powerset variable).
  ASSERT_TRUE(CheckUnit(R"(
    schema { relation R1 : {D}; }
    program { R1(X) :- X = X. }
  )").ok());
  const Rule& rule = unit_->program.stages[0][0];
  EXPECT_EQ(u_.types().ToString(rule.var_types.at(u_.Intern("X"))), "{D}");
}

TEST_F(TypecheckTest, RequiresDeclarationWhenUninferable) {
  // y and z touch no relation, class, or typed variable: uninferable.
  Status s = CheckUnit(R"(
    schema { relation R : D; }
    program { R(x) :- R(x), y != z. }
  )");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_NE(s.message().find("declare it"), std::string::npos);
}

TEST_F(TypecheckTest, DeclarationMakesUnrestrictedVariableCheck) {
  EXPECT_TRUE(CheckUnit(R"(
    schema { relation R1 : {D}; }
    program { var X : {D}; R1(X) :- X = X. }
  )").ok());
}

TEST_F(TypecheckTest, HeadOnlyVariablesMustHaveClassType) {
  Status s = CheckUnit(R"(
    schema { relation R : D; relation S : [D, D]; }
    program { S(x, y) :- R(x). }
  )");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_NE(s.message().find("class type"), std::string::npos);
}

TEST_F(TypecheckTest, InventionVariablesAccepted) {
  ASSERT_TRUE(CheckUnit(R"(
    schema { relation R : D; relation S : [D, P]; class P : {D}; }
    program { S(x, p) :- R(x). }
  )").ok());
  const Rule& rule = unit_->program.stages[0][0];
  ASSERT_EQ(rule.invented_vars.size(), 1u);
  EXPECT_EQ(u_.Name(rule.invented_vars[0]), "p");
}

TEST_F(TypecheckTest, SetAccretionHeadRequiresSetValuedClass) {
  Status s = CheckUnit(R"(
    schema { relation R : [D, P]; class P : D; }
    program { z^(x) :- R(x, z). }
  )");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(TypecheckTest, WeakAssignmentHeadRequiresNonSetClass) {
  Status s = CheckUnit(R"(
    schema { relation R : [D, P]; class P : {D}; }
    program { z^ = {x} :- R(x, z). }
  )");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_NE(s.message().find("set accretion"), std::string::npos);
}

TEST_F(TypecheckTest, MembershipTypeMismatchRejected) {
  Status s = CheckUnit(R"(
    schema { relation R : D; relation S : {D}; }
    program { R(x) :- S(X), R(X). }
  )");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(TypecheckTest, UnionCoercionInBodyEquality) {
  // y = x^ where y: P and x^: (P | [P, P]) -- the Example 3.4.3 pattern.
  EXPECT_TRUE(CheckUnit(R"(
    schema { class P : (P | [P, P]); relation Out : P; }
    program { Out(y) :- P(x), P(y), y = x^. }
  )").ok());
}

TEST_F(TypecheckTest, IncompatibleEqualityRejected) {
  Status s = CheckUnit(R"(
    schema { relation R : D; relation S : {D}; relation Out : D; }
    program { Out(x) :- R(x), S(Y), x = Y. }
  )");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(TypecheckTest, EmptySetIsPolymorphicInHeads) {
  // {} must be accepted where {P} is expected (Example 3.4.3 heads).
  EXPECT_TRUE(CheckUnit(R"(
    schema { relation R : [D, {P}]; relation S : D; class P : D; }
    program { R(x, {}) :- S(x). }
  )").ok());
}

TEST_F(TypecheckTest, HeadNarrowsUnionTypedVariable) {
  // A (D | {D})-typed variable flowing into a D-typed head is *narrowed*
  // to the branch the head demands (monotone refinement): the program
  // type-checks and v ranges over the D branch only.
  ASSERT_TRUE(CheckUnit(R"(
    schema { relation R : (D | {D}); relation Out : D; }
    program { var v : (D | {D}); Out(v) :- R(v). }
  )").ok());
  const Rule& rule = unit_->program.stages[0][0];
  EXPECT_EQ(u_.types().ToString(rule.var_types.at(u_.Intern("v"))), "D");
}

TEST_F(TypecheckTest, HeadAssignabilityIsDirectional) {
  // No branch of the head type accepts a D-typed variable: rejected.
  Status s = CheckUnit(R"(
    schema { relation R : D; relation Out : {D}; }
    program { Out(v) :- R(v). }
  )");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(TypecheckTest, AssignableTypeBasics) {
  TypePool& types = u_.types();
  TypeId d = types.Base();
  TypeId p = types.ClassNamed("P");
  TypeId dp = types.Union2(d, p);
  EXPECT_TRUE(AssignableType(&types, d, dp));
  EXPECT_FALSE(AssignableType(&types, dp, d));
  EXPECT_TRUE(AssignableType(&types, types.Empty(), d));
  EXPECT_TRUE(AssignableType(&types, types.Set(types.Empty()),
                             types.Set(p)));
  EXPECT_TRUE(AssignableType(
      &types, types.Tuple({{u_.Intern("A"), d}}),
      types.Tuple({{u_.Intern("A"), dp}})));
  EXPECT_FALSE(AssignableType(
      &types, types.Tuple({{u_.Intern("A"), d}}),
      types.Tuple({{u_.Intern("B"), d}})));
}

TEST_F(TypecheckTest, RejectsPathologicallyDeepTerms) {
  // The parser has its own (lower) nesting cap, so a term this deep can
  // only be built programmatically; the checker's iterative pre-pass must
  // reject it before any recursive inference touches it.
  Program program;
  TermId id = program.Const(u_.Intern("c"));
  for (int i = 0; i < 300; ++i) id = program.SetTerm({id});
  Schema schema(&u_);
  Status status = TypeCheck(&u_, schema, &program);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("nested deeper"), std::string::npos)
      << status;
}

TEST_F(TypecheckTest, GenesisStyleNamedTuples) {
  EXPECT_TRUE(CheckUnit(R"(
    schema {
      class Person : [name: D, spouse: Person, children: {Person}];
      relation Spouses : [a: D, b: D];
    }
    program {
      Spouses([a: n, b: m]) :-
        Person(p), Person(q),
        p^ = [name: n, spouse: q, children: C],
        q^ = [name: m, spouse: p, children: C'].
    }
  )").ok());
}

}  // namespace
}  // namespace iqlkit
