#include "datalog/datalog.h"

#include <gtest/gtest.h>

#include <random>

namespace iqlkit::datalog {
namespace {

class DatalogTest : public ::testing::Test {
 protected:
  // Builds the canonical TC program over relations E and TC.
  void BuildTC() {
    auto e = db_.AddRelation("E", 2);
    auto tc = db_.AddRelation("TC", 2);
    ASSERT_TRUE(e.ok() && tc.ok());
    e_ = *e;
    tc_ = *tc;
    // TC(x, y) :- E(x, y).
    program_.rules.push_back(
        Rule{Atom{tc_, {Term::Var(0), Term::Var(1)}},
             {Atom{e_, {Term::Var(0), Term::Var(1)}}},
             {}});
    // TC(x, z) :- TC(x, y), E(y, z).
    program_.rules.push_back(
        Rule{Atom{tc_, {Term::Var(0), Term::Var(2)}},
             {Atom{tc_, {Term::Var(0), Term::Var(1)}},
              Atom{e_, {Term::Var(1), Term::Var(2)}}},
             {}});
  }

  void AddEdge(int a, int b) {
    db_.AddFact(e_, {db_.InternConstant(a), db_.InternConstant(b)});
  }

  Database db_;
  Program program_;
  int e_ = -1, tc_ = -1;
};

TEST_F(DatalogTest, TransitiveClosureNaive) {
  BuildTC();
  AddEdge(1, 2);
  AddEdge(2, 3);
  AddEdge(3, 4);
  ASSERT_TRUE(Evaluate(program_, &db_, EvalMode::kNaive).ok());
  EXPECT_EQ(db_.FactCount(tc_), 6u);
}

TEST_F(DatalogTest, TransitiveClosureSemiNaive) {
  BuildTC();
  AddEdge(1, 2);
  AddEdge(2, 3);
  AddEdge(3, 4);
  ASSERT_TRUE(Evaluate(program_, &db_, EvalMode::kSemiNaive).ok());
  EXPECT_EQ(db_.FactCount(tc_), 6u);
}

TEST_F(DatalogTest, NaiveAndSemiNaiveAgreeOnRandomGraphs) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    Database db1, db2;
    Program prog1, prog2;
    auto build = [&](Database* db, Program* prog) {
      int e = *db->AddRelation("E", 2);
      int tc = *db->AddRelation("TC", 2);
      prog->rules.push_back(Rule{Atom{tc, {Term::Var(0), Term::Var(1)}},
                                 {Atom{e, {Term::Var(0), Term::Var(1)}}},
                                 {}});
      prog->rules.push_back(
          Rule{Atom{tc, {Term::Var(0), Term::Var(2)}},
               {Atom{tc, {Term::Var(0), Term::Var(1)}},
                Atom{e, {Term::Var(1), Term::Var(2)}}},
               {}});
      return std::pair<int, int>{e, tc};
    };
    auto [e1, tc1] = build(&db1, &prog1);
    auto [e2, tc2] = build(&db2, &prog2);
    std::uniform_int_distribution<int> node(0, 15);
    for (int k = 0; k < 30; ++k) {
      int a = node(rng), b = node(rng);
      db1.AddFact(e1, {db1.InternConstant(a), db1.InternConstant(b)});
      db2.AddFact(e2, {db2.InternConstant(a), db2.InternConstant(b)});
    }
    Stats s1, s2;
    ASSERT_TRUE(Evaluate(prog1, &db1, EvalMode::kNaive, &s1).ok());
    ASSERT_TRUE(Evaluate(prog2, &db2, EvalMode::kSemiNaive, &s2).ok());
    ASSERT_EQ(db1.FactCount(tc1), db2.FactCount(tc2)) << "trial " << trial;
    for (const Tuple& t : db1.Facts(tc1)) {
      EXPECT_TRUE(db2.Contains(tc2, t));
    }
    // Semi-naive does strictly less re-derivation on multi-round closures.
    if (s1.iterations > 3) EXPECT_LT(s2.derivations, s1.derivations);
  }
}

TEST_F(DatalogTest, ParallelMatchesSerialBitForBit) {
  // Every mode, with 2 and 8 workers, must reproduce the serial engine's
  // facts_ vectors exactly -- same tuples in the same insertion order --
  // since the parallel merge concatenates worker buffers in slice order.
  std::mt19937 rng(7);
  for (EvalMode mode : {EvalMode::kNaive, EvalMode::kSemiNaive,
                        EvalMode::kSemiNaiveIndexed}) {
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<std::pair<int, int>> edges;
      std::uniform_int_distribution<int> node(0, 19);
      for (int k = 0; k < 40; ++k) edges.emplace_back(node(rng), node(rng));
      auto run = [&](uint32_t threads, Database* db, Stats* stats) {
        Program prog;
        int e = *db->AddRelation("E", 2);
        int tc = *db->AddRelation("TC", 2);
        prog.rules.push_back(Rule{Atom{tc, {Term::Var(0), Term::Var(1)}},
                                  {Atom{e, {Term::Var(0), Term::Var(1)}}},
                                  {}});
        prog.rules.push_back(
            Rule{Atom{tc, {Term::Var(0), Term::Var(2)}},
                 {Atom{tc, {Term::Var(0), Term::Var(1)}},
                  Atom{e, {Term::Var(1), Term::Var(2)}}},
                 {}});
        for (auto [a, b] : edges) {
          db->AddFact(e, {db->InternConstant(a), db->InternConstant(b)});
        }
        EXPECT_TRUE(Evaluate(prog, db, mode, stats, threads).ok());
        return tc;
      };
      Database serial_db;
      Stats serial_stats;
      int tc = run(1, &serial_db, &serial_stats);
      for (uint32_t threads : {2u, 8u}) {
        Database db;
        Stats stats;
        run(threads, &db, &stats);
        EXPECT_EQ(db.Facts(tc), serial_db.Facts(tc))
            << "mode " << static_cast<int>(mode) << ", threads " << threads
            << ", trial " << trial;
        EXPECT_EQ(stats.derivations, serial_stats.derivations);
        EXPECT_EQ(stats.rule_derivations, serial_stats.rule_derivations);
      }
    }
  }
}

TEST_F(DatalogTest, ConstantsInAtoms) {
  int r = *db_.AddRelation("R", 2);
  int out = *db_.AddRelation("Out", 1);
  Value a = db_.InternConstant("a");
  db_.AddFact(r, {a, db_.InternConstant("x")});
  db_.AddFact(r, {db_.InternConstant("b"), db_.InternConstant("y")});
  Program p;
  // Out(v) :- R("a", v).
  p.rules.push_back(Rule{Atom{out, {Term::Var(0)}},
                         {Atom{r, {Term::Const(a), Term::Var(0)}}},
                         {}});
  ASSERT_TRUE(Evaluate(p, &db_, EvalMode::kSemiNaive).ok());
  EXPECT_EQ(db_.FactCount(out), 1u);
}

TEST_F(DatalogTest, StratifiedNegation) {
  int e = *db_.AddRelation("E", 2);
  int r = *db_.AddRelation("Reach", 1);
  int nr = *db_.AddRelation("Unreached", 1);
  int node = *db_.AddRelation("Node", 1);
  Value n1 = db_.InternConstant(1), n2 = db_.InternConstant(2),
        n3 = db_.InternConstant(3);
  db_.AddFact(e, {n1, n2});
  for (Value v : {n1, n2, n3}) db_.AddFact(node, {v});
  db_.AddFact(r, {n1});
  Program p;
  // Reach(y) :- Reach(x), E(x, y).
  p.rules.push_back(Rule{Atom{r, {Term::Var(1)}},
                         {Atom{r, {Term::Var(0)}},
                          Atom{e, {Term::Var(0), Term::Var(1)}}},
                         {}});
  // Unreached(x) :- Node(x), !Reach(x).
  p.rules.push_back(Rule{Atom{nr, {Term::Var(0)}},
                         {Atom{node, {Term::Var(0)}}},
                         {Atom{r, {Term::Var(0)}}}});
  ASSERT_TRUE(Evaluate(p, &db_, EvalMode::kSemiNaive).ok());
  EXPECT_EQ(db_.FactCount(r), 2u);   // 1, 2
  EXPECT_EQ(db_.FactCount(nr), 1u);  // 3
  EXPECT_TRUE(db_.Contains(nr, {n3}));
}

TEST_F(DatalogTest, NonStratifiableRejected) {
  int a = *db_.AddRelation("A", 1);
  int b = *db_.AddRelation("B", 1);
  Program p;
  // A(x) :- B(x), !A(x): recursion through negation.
  p.rules.push_back(Rule{Atom{a, {Term::Var(0)}},
                         {Atom{b, {Term::Var(0)}}},
                         {Atom{a, {Term::Var(0)}}}});
  Status s = Evaluate(p, &db_, EvalMode::kNaive);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(DatalogTest, UnsafeRuleRejected) {
  int r = *db_.AddRelation("R", 1);
  int out = *db_.AddRelation("Out", 2);
  Program p;
  // Out(x, y) :- R(x): y unbound.
  p.rules.push_back(Rule{Atom{out, {Term::Var(0), Term::Var(1)}},
                         {Atom{r, {Term::Var(0)}}},
                         {}});
  Status s = Evaluate(p, &db_, EvalMode::kNaive);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(DatalogTest, EmptyProgramIsFixpoint) {
  Program p;
  EXPECT_TRUE(Evaluate(p, &db_, EvalMode::kSemiNaive).ok());
}

TEST_F(DatalogTest, SameGenerationSiblings) {
  // Same-generation: a classic non-linear recursion.
  int par = *db_.AddRelation("Par", 2);
  int sg = *db_.AddRelation("SG", 2);
  Program p;
  // SG(x, y) :- Par(x, z), Par(y, z): siblings share a parent.
  p.rules.push_back(Rule{Atom{sg, {Term::Var(0), Term::Var(1)}},
                         {Atom{par, {Term::Var(0), Term::Var(2)}},
                          Atom{par, {Term::Var(1), Term::Var(2)}}},
                         {}});
  // SG(x, y) :- Par(x, u), SG(u, v), Par(y, v).
  p.rules.push_back(Rule{Atom{sg, {Term::Var(0), Term::Var(1)}},
                         {Atom{par, {Term::Var(0), Term::Var(2)}},
                          Atom{sg, {Term::Var(2), Term::Var(3)}},
                          Atom{par, {Term::Var(1), Term::Var(3)}}},
                         {}});
  Value a = db_.InternConstant("a"), b = db_.InternConstant("b"),
        c = db_.InternConstant("c"), d = db_.InternConstant("d"),
        e2 = db_.InternConstant("e");
  // a and b are children of c; c and d children of e.
  db_.AddFact(par, {a, c});
  db_.AddFact(par, {b, c});
  db_.AddFact(par, {c, e2});
  db_.AddFact(par, {d, e2});
  ASSERT_TRUE(Evaluate(p, &db_, EvalMode::kSemiNaive).ok());
  EXPECT_TRUE(db_.Contains(sg, {a, b}));
  EXPECT_TRUE(db_.Contains(sg, {c, d}));
  EXPECT_FALSE(db_.Contains(sg, {a, d}));
}

}  // namespace
}  // namespace iqlkit::datalog
