// Instance statistics, including Lemma 5.7's branching factor and its
// executable consequence: invention-free ptime-restricted programs do not
// push the branching factor past max(input branching, rule size).

#include "model/stats.h"

#include <gtest/gtest.h>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

TEST(StatsTest, ValueMeasures) {
  Universe u;
  ValueStore& v = u.values();
  ValueId leaf = v.Const("x");
  EXPECT_EQ(ValueBranchingFactor(v, leaf), 0u);
  EXPECT_EQ(ValueDepth(v, leaf), 1u);
  ValueId wide = v.Set({v.Const("a"), v.Const("b"), v.Const("c")});
  EXPECT_EQ(ValueBranchingFactor(v, wide), 3u);
  EXPECT_EQ(ValueDepth(v, wide), 2u);
  ValueId deep = v.Tuple(
      {{u.Intern("A"), v.Set({v.Tuple({{u.Intern("B"), leaf}})})}});
  EXPECT_EQ(ValueDepth(v, deep), 4u);
  EXPECT_EQ(ValueBranchingFactor(v, deep), 1u);
}

TEST(StatsTest, InstanceAggregates) {
  Universe u;
  auto unit = ParseUnit(&u, R"(
    schema { class P : {D}; relation R : [D, D]; }
    instance {
      P(@bag);
      @bag = {"x", "y", "z"};
      R(1, 2);
      R(1, 3);
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  Instance inst(&unit->schema, &u);
  ASSERT_TRUE(ApplyFacts(*unit, &inst).ok());
  InstanceStats stats = ComputeInstanceStats(inst);
  EXPECT_EQ(stats.objects, 1u);
  EXPECT_EQ(stats.constants, 6u);  // x, y, z, 1, 2, 3
  EXPECT_EQ(stats.branching_factor, 3u);  // the 3-element set
  EXPECT_EQ(stats.ground_facts, 1u + 3u + 2u);  // P(bag), 3 elems, 2 R rows
}

TEST(StatsTest, Lemma57BranchingFactorBound) {
  // An invention-free, ptime-restricted program: output branching stays
  // within max(input branching, rule size).
  Universe u;
  auto unit = ParseUnit(&u, R"(
    schema {
      relation R1 : [D, {D}];
      relation R2 : [{D}, {D}];
    }
    input R1;
    output R2;
    program {
      R2(X, Y) :- R1(x, X), R1(y, Y).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto in_schema = unit->schema.Project({"R1"});
  ASSERT_TRUE(in_schema.ok());
  Instance input(std::make_shared<const Schema>(std::move(*in_schema)), &u);
  ValueStore& v = u.values();
  for (int g = 0; g < 4; ++g) {
    std::vector<ValueId> elems;
    for (int k = 0; k <= g; ++k) elems.push_back(v.ConstInt(10 * g + k));
    ASSERT_TRUE(input
                    .AddToRelation(
                        "R1",
                        v.Tuple({{PositionalAttr(&u, 1), v.ConstInt(g)},
                                 {PositionalAttr(&u, 2),
                                  v.Set(std::move(elems))}}))
                    .ok());
  }
  InstanceStats in_stats = ComputeInstanceStats(input);
  auto out = RunUnit(&u, &*unit, input);
  ASSERT_TRUE(out.ok()) << out.status();
  InstanceStats out_stats = ComputeInstanceStats(*out);
  // Rule size (symbols per rule) is small; the dominant bound is the
  // input's branching factor, which the program cannot exceed.
  size_t rule_size = 3;  // head + two body literals
  EXPECT_LE(out_stats.branching_factor,
            std::max(in_stats.branching_factor, rule_size));
  // And the output size is polynomial: |R2| = |R1|^2.
  EXPECT_EQ(out->Relation(u.Intern("R2")).size(), 16u);
}

}  // namespace
}  // namespace iqlkit
