// IQL+ (§4.4): the deterministic `choose` literal binds a head-only
// variable to an existing oid of its class, restoring completeness
// (Theorem 4.4.1) for queries like Figure 1's quadrangle, which plain IQL
// cannot express (Theorem 4.3.1) because it can only build all copies of a
// symmetric answer, never select one.

#include <gtest/gtest.h>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"
#include "transform/isomorphism.h"

namespace iqlkit {
namespace {

class ChooseTest : public ::testing::Test {
 protected:
  Universe u_;
};

TEST_F(ChooseTest, ChoosesExactlyOneExistingOid) {
  constexpr std::string_view kSource = R"(
    schema {
      relation R : D;
      class M : D;
      relation Mark : [D, M];
      relation Picked : M;
    }
    input R;
    output Picked, M;
    program {
      Mark(x, m) :- R(x).     # one marker oid per constant
      ;
      Picked(m) :- choose.    # select one marker
    }
  )";
  auto unit = ParseUnit(&u_, kSource);
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto in_schema = unit->schema.Project({"R"});
  ASSERT_TRUE(in_schema.ok());
  Instance input(std::make_shared<const Schema>(std::move(*in_schema)), &u_);
  for (const char* c : {"a", "b", "c"}) {
    ASSERT_TRUE(input.AddToRelation("R", u_.values().Const(c)).ok());
  }
  auto out = RunUnit(&u_, &*unit, input);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->Relation(u_.Intern("Picked")).size(), 1u);
}

TEST_F(ChooseTest, ChooseWithNoCandidatesDerivesNothing) {
  constexpr std::string_view kSource = R"(
    schema { relation R : D; class M : D; relation Picked : M; }
    input R;
    output Picked, M;
    program { Picked(m) :- choose, R(x). }
  )";
  auto unit = ParseUnit(&u_, kSource);
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto in_schema = unit->schema.Project({"R"});
  ASSERT_TRUE(in_schema.ok());
  Instance input(std::make_shared<const Schema>(std::move(*in_schema)), &u_);
  ASSERT_TRUE(input.AddToRelation("R", u_.values().Const("a")).ok());
  auto out = RunUnit(&u_, &*unit, input);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Relation(u_.Intern("Picked")).empty());
}

// The Figure 1 quadrangle as an IQL+ program: build one candidate answer
// per orientation of the two input constants, then choose one.
class QuadrangleTest : public ChooseTest {
 protected:
  static constexpr std::string_view kSource = R"(
    schema {
      relation R    : D;
      class M : D;                    # one marker per orientation (x, y)
      class Q : D;                    # quadrangle vertices
      relation M2   : [D, D, M];
      relation Quad : [M, Q, Q, Q, Q];
      relation EdgeC : [M, Q, (D | Q)];
      relation Pick : M;
      relation R'   : [Q, (D | Q)];
    }
    input R;
    output R', Q;
    program {
      M2(x, y, m) :- R(x), R(y), x != y.
      ;
      Quad(m, o1, o2, o3, o4) :- M2(x, y, m).
      ;
      # Figure 1: o1 and o3 attach to x; o2 and o4 attach to y;
      # the cycle is o1 -> o2 -> o3 -> o4 -> o1.
      EdgeC(m, o1, x)  :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
      EdgeC(m, o3, x)  :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
      EdgeC(m, o2, y)  :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
      EdgeC(m, o4, y)  :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
      EdgeC(m, o1, o2) :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
      EdgeC(m, o2, o3) :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
      EdgeC(m, o3, o4) :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
      EdgeC(m, o4, o1) :- M2(x, y, m), Quad(m, o1, o2, o3, o4).
      ;
      Pick(m) :- choose.
      ;
      R'(u, v) :- Pick(m), EdgeC(m, u, v).
    }
  )";

  Result<Instance> Run(EvalOptions options) {
    auto unit = ParseUnit(&u_, kSource);
    if (!unit.ok()) return unit.status();
    auto in_schema = unit->schema.Project({"R"});
    if (!in_schema.ok()) return in_schema.status();
    Instance input(std::make_shared<const Schema>(std::move(*in_schema)),
                   &u_);
    IQL_RETURN_IF_ERROR(input.AddToRelation("R", u_.values().Const("a")));
    IQL_RETURN_IF_ERROR(input.AddToRelation("R", u_.values().Const("b")));
    return RunUnit(&u_, &*unit, input, options);
  }
};

TEST_F(QuadrangleTest, ProducesTheFigure1Answer) {
  auto out = Run({});
  ASSERT_TRUE(out.ok()) << out.status();
  Symbol rp = u_.Intern("R'");
  // 8 edges: 4 vertex-constant, 4 vertex-vertex.
  EXPECT_EQ(out->Relation(rp).size(), 8u);
  // Exactly 4 distinct vertices occur.
  std::set<Oid> vertices;
  for (ValueId v : out->Relation(rp)) {
    u_.values().CollectOids(v, &vertices);
  }
  EXPECT_EQ(vertices.size(), 4u);
}

TEST_F(QuadrangleTest, BothChoicePoliciesGiveIsomorphicAnswers) {
  // The two candidate copies (orientation (a,b) vs (b,a)) are isomorphic:
  // whichever `choose` picks, the answer is the same up to oid renaming.
  // This is the genericity condition that makes this use of choose legal.
  EvalOptions min_policy;
  min_policy.choose_policy = EvalOptions::ChoosePolicy::kMinOid;
  EvalOptions max_policy;
  max_policy.choose_policy = EvalOptions::ChoosePolicy::kMaxOid;
  auto out_min = Run(min_policy);
  auto out_max = Run(max_policy);
  ASSERT_TRUE(out_min.ok()) << out_min.status();
  ASSERT_TRUE(out_max.ok()) << out_max.status();
  EXPECT_TRUE(OIsomorphic(*out_min, *out_max));
}

// N-IQL (the remark after Theorem 4.4.1): with a random choose policy,
// genericity is deliberately not enforced -- the language becomes
// nondeterministic-complete. Distinguishable candidates can yield
// observably different (non-isomorphic) answers across seeds, while a
// fixed seed stays reproducible.
class NIqlTest : public ChooseTest {
 protected:
  static constexpr std::string_view kSource = R"(
    schema {
      relation R : D;
      class M : D;
      relation Mark : [D, M];
      relation Picked : M;
      relation PickedName : D;
    }
    input R;
    output PickedName;
    program {
      Mark(x, m) :- R(x).
      ;
      Picked(m) :- choose.
      PickedName(x) :- Picked(m), Mark(x, m).
    }
  )";

  Result<Instance> Run(uint64_t seed) {
    auto unit = ParseUnit(&u_, kSource);
    if (!unit.ok()) return unit.status();
    auto in_schema = unit->schema.Project({"R"});
    if (!in_schema.ok()) return in_schema.status();
    Instance input(std::make_shared<const Schema>(std::move(*in_schema)),
                   &u_);
    for (const char* c : {"a", "b", "c", "d", "e"}) {
      IQL_RETURN_IF_ERROR(input.AddToRelation("R", u_.values().Const(c)));
    }
    EvalOptions options;
    options.choose_policy = EvalOptions::ChoosePolicy::kRandom;
    options.choose_seed = seed;
    return RunUnit(&u_, &*unit, input, options);
  }

  std::string PickedName(const Instance& out) {
    const auto& rel = out.Relation(u_.Intern("PickedName"));
    EXPECT_EQ(rel.size(), 1u);
    return u_.values().ToString(*rel.begin());
  }
};

TEST_F(NIqlTest, SameSeedIsReproducible) {
  auto a = Run(7);
  auto b = Run(7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(PickedName(*a), PickedName(*b));
}

TEST_F(NIqlTest, DifferentSeedsCanDiffer) {
  // Candidates are attached to distinct constants, so different picks are
  // observably different -- nondeterminism, not mere oid renaming.
  std::set<std::string> observed;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    auto out = Run(seed);
    ASSERT_TRUE(out.ok()) << out.status();
    observed.insert(PickedName(*out));
  }
  EXPECT_GT(observed.size(), 1u)
      << "16 seeds all picked the same candidate";
}

}  // namespace
}  // namespace iqlkit
