// Drain-under-load serving soak (the robustness acceptance test for the
// wire tier): many clients streaming paged results over in-memory
// connections while a graceful drain lands mid-stream, under seeded
// FaultSite::kNetwork injection (torn writes, disconnects, stalls,
// refused accepts), across seeds x scheduler worker counts {1, 2, 8}.
//
// The invariants, checked after every run:
//   - every query the scheduler admitted is in exactly one terminal
//     bucket: completed + tripped + failed + cancelled == admitted;
//   - every query a session accepted is either delivered (one terminal
//     PAGE hit the wire) or abandoned (its session died and the query was
//     cancelled in the scheduler): delivered + abandoned == accepted;
//   - the serve loop never crashes, hangs, or leaks a session.
//
// Run under TSan in CI (the server-soak job) to sweep the real-mode
// scheduler/session interleavings for data races.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "server/scheduler.h"
#include "server/serve_loop.h"

namespace iqlkit {
namespace server {
namespace {

constexpr const char* kTransitiveClosure = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  instance {
    E(["a", "b"]); E(["b", "c"]); E(["c", "d"]); E(["d", "e"]);
    E(["e", "f"]); E(["f", "g"]); E(["g", "h"]); E(["h", "i"]);
  }
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

class ServeSoakTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

std::vector<uint64_t> SoakSeeds() {
  int n = 3;
  if (const char* env = std::getenv("IQLKIT_SOAK_SEEDS")) {
    n = std::atoi(env);
    if (n < 1) n = 1;
  }
  std::vector<uint64_t> seeds;
  for (int i = 0; i < n; ++i) seeds.push_back(1000 + 17 * i);
  return seeds;
}

std::vector<SimClientSpec> SoakSpecs(size_t clients, size_t queries_each) {
  std::vector<SimClientSpec> specs(clients);
  for (size_t c = 0; c < clients; ++c) {
    specs[c].tenant = "tenant-" + std::to_string(c);
    for (size_t q = 0; q < queries_each; ++q) {
      SimQuery query;
      query.id = "q" + std::to_string(q);
      query.source = kTransitiveClosure;
      query.at_ms = q;  // spread submissions across the drain point
      if ((c + q) % 5 == 0) query.cancel_at_ms = q + 2;
      specs[c].queries.push_back(std::move(query));
    }
  }
  // One client disconnects abruptly mid-run: its in-flight queries must
  // be abandoned-and-cancelled, never leaked.
  specs[clients - 1].disconnect_at_ms = queries_each / 2 + 1;
  return specs;
}

void CheckInvariants(const Scheduler& scheduler, const ServeStats& stats,
                     const std::string& label) {
  auto c = scheduler.counters();
  EXPECT_EQ(c.admitted,
            c.completed + c.tripped_partial + c.failed + c.cancelled)
      << label << ": a scheduler-admitted query escaped its terminal bucket";
  const SessionCounters& t = stats.totals;
  EXPECT_EQ(t.queries_accepted,
            t.delivered_completed + t.delivered_tripped +
                t.delivered_cancelled + t.delivered_failed + t.abandoned)
      << label << ": a session-accepted query was neither delivered nor "
      << "abandoned";
}

// Deterministic-scheduler sweep: the drain lands while queries are still
// queued and clients are still submitting; network faults tear frames,
// drop connections, stall writes, and refuse accepts.
TEST_F(ServeSoakTest, DrainUnderLoadWithNetworkFaults) {
  for (uint64_t seed : SoakSeeds()) {
    auto config =
        FaultInjector::ParseSpec("network=0.02,seed=" + std::to_string(seed));
    ASSERT_TRUE(config.ok()) << config.status();
    FaultInjector::Global().Configure(*config);
    SchedulerOptions sched;
    sched.deterministic = true;
    sched.seed = seed;
    Scheduler scheduler(sched);
    ServeOptions options;
    options.session.max_inflight = 8;
    options.session.page_rows = 2;  // many pages -> many fault draws
    auto outcome = ServeSimulated(&scheduler, options, SoakSpecs(4, 6),
                                  /*drain_at_ms=*/3, /*max_ms=*/20000);
    CheckInvariants(scheduler, outcome.stats,
                    "seed=" + std::to_string(seed));
    FaultInjector::Global().Reset();
  }
}

// Real-mode sweep: the scheduler runs queries on its worker pool while
// the single serve thread pumps sessions, so TryWait/Cancel/BeginDrain/
// PreemptAll race real evaluations (TSan coverage). workers=1,2,8 per the
// robustness acceptance matrix.
TEST_F(ServeSoakTest, ThreadedSchedulerSweep) {
  for (size_t workers : {1u, 2u, 8u}) {
    for (uint64_t seed : SoakSeeds()) {
      auto config = FaultInjector::ParseSpec("network=0.01,seed=" +
                                             std::to_string(seed));
      ASSERT_TRUE(config.ok()) << config.status();
      FaultInjector::Global().Configure(*config);
      SchedulerOptions sched;
      sched.workers = workers;
      sched.seed = seed;
      sched.retry_base_seconds = 0.001;
      Scheduler scheduler(sched);
      ServeOptions options;
      options.session.max_inflight = 8;
      options.session.page_rows = 4;
      auto outcome = ServeSimulated(&scheduler, options, SoakSpecs(3, 5),
                                    /*drain_at_ms=*/2, /*max_ms=*/20000);
      CheckInvariants(scheduler, outcome.stats,
                      "workers=" + std::to_string(workers) +
                          " seed=" + std::to_string(seed));
      FaultInjector::Global().Reset();
    }
  }
}

// The trace-replay byte-identity acceptance test: the full serving
// transcript (scheduler events interleaved with session events, frame by
// frame) is a pure function of (specs, scheduler seed, fault seed).
TEST_F(ServeSoakTest, TraceReplayIsByteIdentical) {
  auto run = [&](uint64_t seed) {
    auto config =
        FaultInjector::ParseSpec("network=0.03,seed=" + std::to_string(seed));
    EXPECT_TRUE(config.ok());
    FaultInjector::Global().Configure(*config);
    std::ostringstream trace;
    SchedulerOptions sched;
    sched.deterministic = true;
    sched.seed = seed;
    sched.trace = &trace;
    Scheduler scheduler(sched);
    ServeOptions options;
    options.trace = &trace;
    options.session.page_rows = 2;
    ServeSimulated(&scheduler, options, SoakSpecs(3, 4), /*drain_at_ms=*/3,
                   /*max_ms=*/20000);
    FaultInjector::Global().Reset();
    return trace.str();
  };
  for (uint64_t seed : SoakSeeds()) {
    std::string first = run(seed);
    std::string replay = run(seed);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, replay) << "seed=" << seed;
  }
  EXPECT_NE(run(1), run(2));  // the seed genuinely steers the transcript
}

}  // namespace
}  // namespace server
}  // namespace iqlkit
