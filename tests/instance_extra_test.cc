// Instance mechanics not covered elsewhere: Absorb conflicts, projection
// typing, deletion primitives at the model level.

#include <gtest/gtest.h>

#include "model/instance.h"
#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class InstanceExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = u_.types();
    schema_ = std::make_unique<Schema>(&u_);
    ASSERT_TRUE(schema_->DeclareRelation("R", t.Base()).ok());
    ASSERT_TRUE(schema_->DeclareClass("P", t.Base()).ok());
    ASSERT_TRUE(schema_->DeclareClass("Q", t.Base()).ok());
    ASSERT_TRUE(schema_->DeclareClass("Bag", t.Set(t.Base())).ok());
  }

  Universe u_;
  std::unique_ptr<Schema> schema_;
};

TEST_F(InstanceExtraTest, AbsorbMergesFacts) {
  Instance a(schema_.get(), &u_);
  Instance b(schema_.get(), &u_);
  ASSERT_TRUE(a.AddToRelation("R", u_.values().Const("x")).ok());
  ASSERT_TRUE(b.AddToRelation("R", u_.values().Const("y")).ok());
  auto o = b.CreateOid("P");
  ASSERT_TRUE(o.ok());
  ASSERT_TRUE(b.SetOidValue(*o, u_.values().Const("v")).ok());
  ASSERT_TRUE(a.Absorb(b).ok());
  EXPECT_EQ(a.Relation(u_.Intern("R")).size(), 2u);
  EXPECT_EQ(a.ValueOf(*o), u_.values().Const("v"));
}

TEST_F(InstanceExtraTest, AbsorbRejectsClassConflicts) {
  Instance a(schema_.get(), &u_);
  Instance b(schema_.get(), &u_);
  Oid o{777};
  ASSERT_TRUE(a.AddOid(u_.Intern("P"), o).ok());
  ASSERT_TRUE(b.AddOid(u_.Intern("Q"), o).ok());
  EXPECT_EQ(a.Absorb(b).code(), StatusCode::kFailedPrecondition);
}

TEST_F(InstanceExtraTest, AbsorbRejectsNuConflicts) {
  Instance a(schema_.get(), &u_);
  Instance b(schema_.get(), &u_);
  Oid o{778};
  ASSERT_TRUE(a.AddOid(u_.Intern("P"), o).ok());
  ASSERT_TRUE(a.SetOidValue(o, u_.values().Const("a")).ok());
  ASSERT_TRUE(b.AddOid(u_.Intern("P"), o).ok());
  ASSERT_TRUE(b.SetOidValue(o, u_.values().Const("b")).ok());
  EXPECT_EQ(a.Absorb(b).code(), StatusCode::kFailedPrecondition);
}

TEST_F(InstanceExtraTest, RemoveFromRelationAndSet) {
  Instance a(schema_.get(), &u_);
  ValueId x = u_.values().Const("x");
  ASSERT_TRUE(a.AddToRelation("R", x).ok());
  EXPECT_TRUE(a.RemoveFromRelation(u_.Intern("R"), x));
  EXPECT_FALSE(a.RemoveFromRelation(u_.Intern("R"), x));  // already gone

  auto bag = a.CreateOid("Bag");
  ASSERT_TRUE(bag.ok());
  ASSERT_TRUE(a.AddToSetOid(*bag, x).ok());
  EXPECT_TRUE(a.RemoveFromSetOid(*bag, x));
  EXPECT_FALSE(a.RemoveFromSetOid(*bag, x));
  EXPECT_EQ(a.ValueOf(*bag), u_.values().EmptySet());
}

TEST_F(InstanceExtraTest, ClearOidValueSemantics) {
  Instance a(schema_.get(), &u_);
  auto p = a.CreateOid("P");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(a.ClearOidValue(*p));  // nothing to clear
  ASSERT_TRUE(a.SetOidValue(*p, u_.values().Const("v")).ok());
  EXPECT_TRUE(a.ClearOidValue(*p));
  EXPECT_FALSE(a.ValueOf(*p).has_value());
  // Set-valued: clearing resets to the empty set, never undefined.
  auto bag = a.CreateOid("Bag");
  ASSERT_TRUE(bag.ok());
  ASSERT_TRUE(a.AddToSetOid(*bag, u_.values().Const("e")).ok());
  EXPECT_TRUE(a.ClearOidValue(*bag));
  EXPECT_EQ(a.ValueOf(*bag), u_.values().EmptySet());
}

TEST_F(InstanceExtraTest, DeleteOidCascadeThroughMixedStructures) {
  TypePool& t = u_.types();
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareClass("N", t.Base()).ok());
  ASSERT_TRUE(s.DeclareClass("Wrap", t.Tuple({{u_.Intern("w"),
                                               t.ClassNamed("N")}}))
                  .ok());
  ASSERT_TRUE(s.DeclareClass("Pool", t.Set(t.ClassNamed("N"))).ok());
  ASSERT_TRUE(s.DeclareRelation("Uses",
                                t.Tuple({{u_.Intern("a"),
                                          t.ClassNamed("Wrap")}}))
                  .ok());
  Instance a(&s, &u_);
  ValueStore& v = u_.values();
  auto n = a.CreateOid("N");
  auto wrap = a.CreateOid("Wrap");
  auto pool = a.CreateOid("Pool");
  ASSERT_TRUE(n.ok() && wrap.ok() && pool.ok());
  ASSERT_TRUE(a.SetOidValue(*n, v.Const("n")).ok());
  ASSERT_TRUE(
      a.SetOidValue(*wrap, v.Tuple({{u_.Intern("w"), v.OfOid(*n)}})).ok());
  ASSERT_TRUE(a.AddToSetOid(*pool, v.OfOid(*n)).ok());
  ASSERT_TRUE(a.AddToRelation(
                   "Uses", v.Tuple({{u_.Intern("a"), v.OfOid(*wrap)}}))
                  .ok());
  // Deleting n kills wrap (value mentions n), strips pool's element, and
  // erases the Uses fact (it mentions wrap, which died).
  EXPECT_EQ(a.DeleteOidCascade(*n), 2u);
  EXPECT_FALSE(a.HasOid(*n));
  EXPECT_FALSE(a.HasOid(*wrap));
  EXPECT_TRUE(a.HasOid(*pool));
  EXPECT_EQ(a.ValueOf(*pool), v.EmptySet());
  EXPECT_TRUE(a.Relation(u_.Intern("Uses")).empty());
  EXPECT_TRUE(a.Validate().ok()) << a.Validate();
}

}  // namespace
}  // namespace iqlkit
