#include "server/scheduler.h"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

// The concurrent-query scheduler: admission control (bounded queue,
// per-class quotas, reservation fit), degrade/preempt under a global
// memory budget, jittered retry of transient failures, deterministic
// virtual-clock traces, and byte-identity of scheduled outputs with
// standalone serial runs.
namespace iqlkit {
namespace {

using server::ParseQueryClass;
using server::QueryClass;
using server::QueryClassName;
using server::QueryOutcome;
using server::QueryOutcomeName;
using server::QueryRequest;
using server::QueryResult;
using server::Scheduler;
using server::SchedulerOptions;

constexpr const char* kTransitiveClosure = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  instance {
    E(["a", "b"]); E(["b", "c"]); E(["c", "d"]); E(["d", "e"]);
  }
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

// Invents a fresh oid per step: diverges, so only a budget ends it. Used
// where a query must still be running when the scheduler intervenes.
constexpr const char* kDivergent = R"(
  schema { relation R3 : [P, P]; class P : D; }
  instance {
    P(@a); P(@b);
    R3([@a, @b]);
  }
  program {
    R3(y, z) :- R3(x, y).
  }
)";

// The injector is process-global; every test restores the disabled state.
class SchedulerTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// Reference output: a standalone serial evaluation of `source`, the
// byte-identity baseline every scheduled run must reproduce.
std::string SerialFacts(const char* source) {
  Universe u;
  auto unit = ParseUnit(&u, source);
  EXPECT_TRUE(unit.ok()) << unit.status();
  Instance input(&unit->schema, &u);
  Status applied = ApplyFacts(*unit, &input);
  EXPECT_TRUE(applied.ok()) << applied;
  EvalOptions options;
  options.num_threads = 1;
  auto result = RunUnit(&u, &*unit, input, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? WriteFacts(*result) : std::string();
}

QueryRequest MakeRequest(const std::string& id, const char* source) {
  QueryRequest request;
  request.id = id;
  request.source = source;
  return request;
}

TEST_F(SchedulerTest, NamesRoundTrip) {
  EXPECT_STREQ(QueryClassName(QueryClass::kInteractive), "interactive");
  EXPECT_STREQ(QueryClassName(QueryClass::kBatch), "batch");
  auto interactive = ParseQueryClass("interactive");
  ASSERT_TRUE(interactive.ok());
  EXPECT_EQ(*interactive, QueryClass::kInteractive);
  EXPECT_FALSE(ParseQueryClass("urgent").ok());
  EXPECT_STREQ(QueryOutcomeName(QueryOutcome::kCompleted), "completed");
  EXPECT_STREQ(QueryOutcomeName(QueryOutcome::kTrippedPartial),
               "tripped-partial");
  EXPECT_STREQ(QueryOutcomeName(QueryOutcome::kRejected), "rejected");
  EXPECT_STREQ(QueryOutcomeName(QueryOutcome::kFailed), "failed");
}

TEST_F(SchedulerTest, CompletedQueryIsByteIdenticalToSerialRun) {
  std::string reference = SerialFacts(kTransitiveClosure);
  ASSERT_FALSE(reference.empty());
  SchedulerOptions options;
  options.deterministic = true;
  Scheduler scheduler(options);
  auto ticket = scheduler.Submit(MakeRequest("tc", kTransitiveClosure));
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  QueryResult result = scheduler.Wait(*ticket);
  EXPECT_EQ(result.outcome, QueryOutcome::kCompleted);
  EXPECT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.attempts, 1);
  EXPECT_FALSE(result.preempted);
  EXPECT_EQ(result.facts, reference);
}

TEST_F(SchedulerTest, QueueFullRejectsWithStructuredStatus) {
  SchedulerOptions options;
  options.deterministic = true;  // nothing runs until RunUntilIdle
  options.queue_capacity = 2;
  Scheduler scheduler(options);
  ASSERT_TRUE(scheduler.Submit(MakeRequest("a", kTransitiveClosure)).ok());
  ASSERT_TRUE(scheduler.Submit(MakeRequest("b", kTransitiveClosure)).ok());
  auto rejected = scheduler.Submit(MakeRequest("c", kTransitiveClosure));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kQueueFull);
  auto counters = scheduler.counters();
  EXPECT_EQ(counters.rejected_queue_full, 1u);
  EXPECT_EQ(counters.admitted, 2u);
}

TEST_F(SchedulerTest, ClassQuotaRejectsWithOverload) {
  SchedulerOptions options;
  options.deterministic = true;
  options.class_quota[static_cast<int>(QueryClass::kInteractive)] = 1;
  Scheduler scheduler(options);
  QueryRequest first = MakeRequest("i1", kTransitiveClosure);
  first.cls = QueryClass::kInteractive;
  ASSERT_TRUE(scheduler.Submit(std::move(first)).ok());
  QueryRequest second = MakeRequest("i2", kTransitiveClosure);
  second.cls = QueryClass::kInteractive;
  auto rejected = scheduler.Submit(std::move(second));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  // The batch class has no quota, so batch admission is unaffected.
  EXPECT_TRUE(scheduler.Submit(MakeRequest("b1", kTransitiveClosure)).ok());
  EXPECT_EQ(scheduler.counters().rejected_overload, 1u);
}

TEST_F(SchedulerTest, ImpossibleReservationRejectsWithOverload) {
  SchedulerOptions options;
  options.deterministic = true;
  options.global_memory_budget = 1024;
  Scheduler scheduler(options);
  QueryRequest request = MakeRequest("huge", kTransitiveClosure);
  request.reserve_bytes = 4096;
  auto rejected = scheduler.Submit(std::move(request));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
}

TEST_F(SchedulerTest, DuplicateIdRejected) {
  SchedulerOptions options;
  options.deterministic = true;
  Scheduler scheduler(options);
  ASSERT_TRUE(scheduler.Submit(MakeRequest("q", kTransitiveClosure)).ok());
  auto dup = scheduler.Submit(MakeRequest("q", kTransitiveClosure));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SchedulerTest, DispatchOrderIsPriorityThenClassThenTicket) {
  std::ostringstream trace;
  SchedulerOptions options;
  options.deterministic = true;
  options.trace = &trace;
  Scheduler scheduler(options);
  QueryRequest low = MakeRequest("low", kTransitiveClosure);
  low.priority = -1;
  QueryRequest batch = MakeRequest("batch", kTransitiveClosure);
  QueryRequest interactive = MakeRequest("interactive", kTransitiveClosure);
  interactive.cls = QueryClass::kInteractive;
  QueryRequest high = MakeRequest("high", kTransitiveClosure);
  high.priority = 7;
  ASSERT_TRUE(scheduler.Submit(std::move(low)).ok());
  ASSERT_TRUE(scheduler.Submit(std::move(batch)).ok());
  ASSERT_TRUE(scheduler.Submit(std::move(interactive)).ok());
  ASSERT_TRUE(scheduler.Submit(std::move(high)).ok());
  scheduler.RunUntilIdle();
  std::vector<std::string> starts;
  std::istringstream lines(trace.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto pos = line.find(" START id=");
    if (pos == std::string::npos) continue;
    std::string id = line.substr(pos + 10);
    starts.push_back(id.substr(0, id.find(' ')));
  }
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts[0], "high");         // priority desc first
  EXPECT_EQ(starts[1], "interactive");  // class breaks priority ties
  EXPECT_EQ(starts[2], "batch");        // then submission order
  EXPECT_EQ(starts[3], "low");
}

TEST_F(SchedulerTest, InjectedDispatchFaultRetriesThenFailsWhenPersistent) {
  FaultInjector::Config faults;
  faults.p_sched = 1.0;  // every dispatch attempt fails
  FaultInjector::Global().Configure(faults);
  SchedulerOptions options;
  options.deterministic = true;
  options.max_retries = 2;
  Scheduler scheduler(options);
  auto ticket = scheduler.Submit(MakeRequest("doomed", kTransitiveClosure));
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  QueryResult result = scheduler.Wait(*ticket);
  EXPECT_EQ(result.outcome, QueryOutcome::kFailed);
  EXPECT_EQ(result.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(result.attempts, 3);  // initial + max_retries
  auto counters = scheduler.counters();
  EXPECT_EQ(counters.retries, 2u);
  EXPECT_EQ(counters.failed, 1u);
}

TEST_F(SchedulerTest, TransientFaultRetriesThenCompletes) {
  // Scan for a seed whose first kScheduler draw fails and a later one
  // succeeds: the query then completes on a retry with the same bytes a
  // fault-free serial run produces.
  std::string reference = SerialFacts(kTransitiveClosure);
  bool found = false;
  for (uint64_t seed = 0; seed < 64 && !found; ++seed) {
    FaultInjector::Config faults;
    faults.seed = seed;
    faults.p_sched = 0.5;
    FaultInjector::Global().Configure(faults);
    SchedulerOptions options;
    options.deterministic = true;
    options.max_retries = 3;
    options.seed = seed;
    Scheduler scheduler(options);
    auto ticket = scheduler.Submit(MakeRequest("flaky", kTransitiveClosure));
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    QueryResult result = scheduler.Wait(*ticket);
    if (result.outcome == QueryOutcome::kCompleted && result.attempts > 1) {
      EXPECT_EQ(result.facts, reference);
      EXPECT_GE(scheduler.counters().retries, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no seed in [0,64) produced a retried completion";
}

TEST_F(SchedulerTest, BackoffDelaysRetryByAtLeastTheBase) {
  FaultInjector::Config faults;
  faults.p_sched = 1.0;
  FaultInjector::Global().Configure(faults);
  SchedulerOptions options;
  options.deterministic = true;
  options.max_retries = 1;
  options.retry_base_seconds = 0.1;  // >= 50 virtual ticks after jitter
  Scheduler scheduler(options);
  auto ticket = scheduler.Submit(MakeRequest("slow", kTransitiveClosure));
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  QueryResult result = scheduler.Wait(*ticket);
  EXPECT_EQ(result.attempts, 2);
  // Jitter is in [0.5, 1.5), so the one backoff is at least base/2.
  EXPECT_GE(result.finish_tick - result.submit_tick, 50u);
}

TEST_F(SchedulerTest, DegradationYieldsPartialAndMarksPreempted) {
  SchedulerOptions options;
  options.deterministic = true;
  options.global_memory_budget = 32 * 1024;
  options.default_reserve_bytes = 1024;
  options.max_retries = 0;
  std::ostringstream trace;
  options.trace = &trace;
  Scheduler scheduler(options);
  // Two divergent queries with ample per-query ceilings: their combined
  // appetite crosses the global budget, so the scheduler must intervene.
  for (const char* id : {"d1", "d2"}) {
    QueryRequest request = MakeRequest(id, kDivergent);
    request.limits.max_steps_per_stage = 1000;
    ASSERT_TRUE(scheduler.Submit(std::move(request)).ok());
  }
  scheduler.RunUntilIdle();
  auto counters = scheduler.counters();
  EXPECT_GE(counters.degradations, 1u);
  EXPECT_EQ(counters.completed, 0u);
  EXPECT_EQ(counters.tripped_partial, 2u);
  for (uint64_t ticket : {uint64_t{1}, uint64_t{2}}) {
    QueryResult result = scheduler.Wait(ticket);
    EXPECT_EQ(result.outcome, QueryOutcome::kTrippedPartial);
    EXPECT_TRUE(result.preempted);
    EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
    // The rolled-back partial still serializes (at minimum the input).
    EXPECT_NE(result.facts.find("instance {"), std::string::npos);
  }
  EXPECT_NE(trace.str().find("DEGRADE"), std::string::npos);
}

TEST_F(SchedulerTest, PreemptionShedsRunnerWithinItsReservation) {
  SchedulerOptions options;
  options.deterministic = true;
  options.global_memory_budget = 1 << 20;
  options.max_retries = 0;
  Scheduler scheduler(options);
  // Both queries reserve the whole budget: each fits alone, but while one
  // runs the other's reservation keeps the total over budget, and the
  // runner stays within its own reservation -- so the scheduler must shed
  // (preempt) rather than degrade.
  for (const char* id : {"p1", "p2"}) {
    QueryRequest request = MakeRequest(id, kDivergent);
    request.reserve_bytes = 1 << 20;
    request.limits.max_steps_per_stage = 100;
    ASSERT_TRUE(scheduler.Submit(std::move(request)).ok());
  }
  scheduler.RunUntilIdle();
  auto counters = scheduler.counters();
  EXPECT_GE(counters.preemptions, 1u);
  QueryResult first = scheduler.Wait(1);
  EXPECT_EQ(first.outcome, QueryOutcome::kTrippedPartial);
  EXPECT_EQ(first.status.code(), StatusCode::kOverloaded);
  EXPECT_TRUE(first.preempted);
}

TEST_F(SchedulerTest, DeterministicTraceIsReproducible) {
  auto run = [](uint64_t seed) {
    FaultInjector::Config faults;
    faults.seed = seed;
    faults.p_sched = 0.3;
    faults.p_trip = 0.01;
    FaultInjector::Global().Configure(faults);
    std::ostringstream trace;
    SchedulerOptions options;
    options.deterministic = true;
    options.seed = seed;
    options.queue_capacity = 3;
    options.global_memory_budget = 64 * 1024;
    options.default_reserve_bytes = 8 * 1024;
    options.trace = &trace;
    Scheduler scheduler(options);
    int which = 0;
    for (const char* id : {"q1", "q2", "q3", "q4"}) {
      QueryRequest request =
          MakeRequest(id, which % 2 == 0 ? kTransitiveClosure : kDivergent);
      request.limits.max_steps_per_stage = 50;
      request.cls = which % 2 == 0 ? QueryClass::kInteractive
                                   : QueryClass::kBatch;
      ++which;
      (void)scheduler.Submit(std::move(request));
    }
    scheduler.RunUntilIdle();
    return trace.str();
  };
  std::string first = run(11);
  std::string second = run(11);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same seed must replay the same trace";
}

TEST_F(SchedulerTest, RealModeConcurrentOutputsAreByteIdentical) {
  std::string reference = SerialFacts(kTransitiveClosure);
  SchedulerOptions options;
  options.workers = 4;
  Scheduler scheduler(options);
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 8; ++i) {
    auto ticket = scheduler.Submit(
        MakeRequest("tc" + std::to_string(i), kTransitiveClosure));
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  for (uint64_t ticket : tickets) {
    QueryResult result = scheduler.Wait(ticket);
    EXPECT_EQ(result.outcome, QueryOutcome::kCompleted);
    EXPECT_EQ(result.facts, reference);
  }
  EXPECT_EQ(scheduler.counters().completed, 8u);
}

TEST_F(SchedulerTest, WaitOnUnknownTicketFailsCleanly) {
  SchedulerOptions options;
  options.deterministic = true;
  Scheduler scheduler(options);
  QueryResult result = scheduler.Wait(99);
  EXPECT_EQ(result.outcome, QueryOutcome::kFailed);
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
}

TEST_F(SchedulerTest, ParseErrorFailsWithoutRetry) {
  SchedulerOptions options;
  options.deterministic = true;
  Scheduler scheduler(options);
  auto ticket = scheduler.Submit(MakeRequest("bad", "schema { nope"));
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  QueryResult result = scheduler.Wait(*ticket);
  EXPECT_EQ(result.outcome, QueryOutcome::kFailed);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(scheduler.counters().retries, 0u);
}

}  // namespace
}  // namespace iqlkit
