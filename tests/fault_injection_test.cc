#include "base/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "base/governor.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

// The fault-injection harness: spec parsing, per-site determinism, and a
// randomized soak across thread counts asserting that every injected
// failure still leaves the instance on a completed-step boundary.
namespace iqlkit {
namespace {

// The injector is process-global; every test restores the disabled state.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, ParseSpecFull) {
  auto config =
      FaultInjector::ParseSpec("seed=42,alloc=0.25,task=0.5,trip=0.125");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->seed, 42u);
  EXPECT_DOUBLE_EQ(config->p_alloc, 0.25);
  EXPECT_DOUBLE_EQ(config->p_task, 0.5);
  EXPECT_DOUBLE_EQ(config->p_trip, 0.125);
  EXPECT_TRUE(config->enabled());
}

TEST_F(FaultInjectionTest, ParseSpecDefaultsAndEmpty) {
  auto config = FaultInjector::ParseSpec("seed=7");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->seed, 7u);
  EXPECT_FALSE(config->enabled());
  auto empty = FaultInjector::ParseSpec("");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_FALSE(empty->enabled());
}

TEST_F(FaultInjectionTest, ParseSpecRejectsGarbage) {
  EXPECT_FALSE(FaultInjector::ParseSpec("bogus=1").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("alloc=1.5").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("alloc=-0.1").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("alloc=abc").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("seed").ok());
}

TEST_F(FaultInjectionTest, SiteNamesAreStable) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kAllocation), "allocation");
  EXPECT_STREQ(FaultSiteName(FaultSite::kWorkerTask), "worker-task");
  EXPECT_STREQ(FaultSiteName(FaultSite::kGovernorTrip), "governor-trip");
  EXPECT_STREQ(FaultSiteName(FaultSite::kScheduler), "scheduler");
  EXPECT_STREQ(FaultSiteName(FaultSite::kStorage), "storage");
}

TEST_F(FaultInjectionTest, ParseSpecSchedulerSite) {
  auto config = FaultInjector::ParseSpec("seed=9,sched=0.25");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_DOUBLE_EQ(config->p_sched, 0.25);
  EXPECT_TRUE(config->enabled());
  EXPECT_FALSE(FaultInjector::ParseSpec("sched=2").ok());
}

TEST_F(FaultInjectionTest, ParseSpecStorageSite) {
  auto config = FaultInjector::ParseSpec("seed=9,storage=0.25");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_DOUBLE_EQ(config->p_storage, 0.25);
  EXPECT_TRUE(config->enabled());
  EXPECT_FALSE(FaultInjector::ParseSpec("storage=2").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("storage=abc").ok());
}

// CI's soak jobs run this binary with IQLKIT_FAULTS exported; the env
// tests below must put the variable back exactly as they found it.
class ScopedFaultsEnv {
 public:
  explicit ScopedFaultsEnv(const char* value) {
    const char* old = std::getenv("IQLKIT_FAULTS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv("IQLKIT_FAULTS", value, 1);
  }
  ~ScopedFaultsEnv() {
    if (had_) {
      setenv("IQLKIT_FAULTS", saved_.c_str(), 1);
    } else {
      unsetenv("IQLKIT_FAULTS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST_F(FaultInjectionTest, MalformedEnvSpecDisablesInjectionEntirely) {
  // Pre-load a live config: a malformed IQLKIT_FAULTS must not leave it
  // half-applied (or applied at all) -- the injector resets to disabled.
  FaultInjector::Config live;
  live.seed = 3;
  live.p_alloc = 0.5;
  FaultInjector::Global().Configure(live);
  ScopedFaultsEnv env("alloc=0.5,bogus=1");
  Status status = FaultInjector::Global().ConfigureFromEnv();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(FaultInjector::Global().config().enabled());
  EXPECT_DOUBLE_EQ(FaultInjector::Global().config().p_alloc, 0.0);
}

TEST_F(FaultInjectionTest, MalformedStorageSpecDisablesInjectionEntirely) {
  // The never-half-applied guarantee extends to the storage site: a typo
  // anywhere in a spec that also sets storage= must not leave any site live.
  FaultInjector::Config live;
  live.seed = 3;
  live.p_storage = 0.5;
  live.p_alloc = 0.25;
  FaultInjector::Global().Configure(live);
  ScopedFaultsEnv env("storage=0.5,alloc=nope");
  Status status = FaultInjector::Global().ConfigureFromEnv();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(FaultInjector::Global().config().enabled());
  EXPECT_DOUBLE_EQ(FaultInjector::Global().config().p_storage, 0.0);
  EXPECT_DOUBLE_EQ(FaultInjector::Global().config().p_alloc, 0.0);
}

TEST_F(FaultInjectionTest, WellFormedEnvSpecApplies) {
  ScopedFaultsEnv env("seed=5,sched=0.125");
  Status status = FaultInjector::Global().ConfigureFromEnv();
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(FaultInjector::Global().config().seed, 5u);
  EXPECT_DOUBLE_EQ(FaultInjector::Global().config().p_sched, 0.125);
}

TEST_F(FaultInjectionTest, DisabledInjectorNeverFails) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Reset();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.ShouldFail(FaultSite::kAllocation));
    EXPECT_FALSE(injector.ShouldFail(FaultSite::kWorkerTask));
    EXPECT_FALSE(injector.ShouldFail(FaultSite::kGovernorTrip));
  }
  EXPECT_EQ(injector.injected(FaultSite::kAllocation), 0u);
}

TEST_F(FaultInjectionTest, DecisionsAreDeterministicInSeedSiteAndCount) {
  FaultInjector& injector = FaultInjector::Global();
  FaultInjector::Config config;
  config.seed = 1234;
  config.p_alloc = 0.1;
  config.p_trip = 0.05;
  auto draw_sequence = [&](FaultSite site, int n) {
    std::vector<bool> decisions;
    decisions.reserve(n);
    for (int i = 0; i < n; ++i) decisions.push_back(injector.ShouldFail(site));
    return decisions;
  };
  injector.Configure(config);
  auto first = draw_sequence(FaultSite::kAllocation, 500);
  auto first_trip = draw_sequence(FaultSite::kGovernorTrip, 500);
  injector.Configure(config);  // resets counters
  EXPECT_EQ(draw_sequence(FaultSite::kAllocation, 500), first);
  EXPECT_EQ(draw_sequence(FaultSite::kGovernorTrip, 500), first_trip);
  // A different seed gives a different sequence (overwhelmingly likely for
  // 500 draws at p = 0.1).
  config.seed = 99;
  injector.Configure(config);
  EXPECT_NE(draw_sequence(FaultSite::kAllocation, 500), first);
}

TEST_F(FaultInjectionTest, InjectionRateTracksProbability) {
  FaultInjector& injector = FaultInjector::Global();
  FaultInjector::Config config;
  config.seed = 7;
  config.p_task = 0.2;
  injector.Configure(config);
  int failures = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (injector.ShouldFail(FaultSite::kWorkerTask)) ++failures;
  }
  EXPECT_EQ(injector.hits(FaultSite::kWorkerTask),
            static_cast<uint64_t>(kDraws));
  EXPECT_EQ(injector.injected(FaultSite::kWorkerTask),
            static_cast<uint64_t>(failures));
  // Loose 5-sigma-ish band around 1000 expected failures.
  EXPECT_GT(failures, 800);
  EXPECT_LT(failures, 1200);
}

// ---- randomized soak ------------------------------------------------------

// Fault configs for the soak: the IQLKIT_FAULTS env spec when CI sets one
// (so the workflow's seed loop drives real injection), otherwise a fixed
// internal sweep. Probabilities always come from the defaults below; only
// the seed is taken from the environment.
std::vector<FaultInjector::Config> SoakConfigs() {
  std::vector<uint64_t> seeds = {1, 17, 4242};
  const char* env = std::getenv("IQLKIT_FAULTS");
  if (env != nullptr) {
    auto parsed = FaultInjector::ParseSpec(env);
    if (parsed.ok()) seeds = {parsed->seed};
  }
  std::vector<FaultInjector::Config> configs;
  for (uint64_t seed : seeds) {
    FaultInjector::Config config;
    config.seed = seed;
    config.p_alloc = 0.002;
    config.p_task = 0.02;
    config.p_trip = 0.001;
    configs.push_back(config);
  }
  return configs;
}

constexpr const char* kDivergent = R"(
  schema { relation R3 : [P, P]; class P : D; }
  instance {
    P(@a); P(@b);
    R3([@a, @b]);
  }
  program {
    R3(y, z) :- R3(x, y).
  }
)";

struct SoakOutcome {
  Status status = Status::Ok();
  EvalStats stats;
  std::string partial_facts;
};

SoakOutcome RunDivergent(uint32_t threads, uint64_t max_steps) {
  SoakOutcome out;
  Universe u;
  auto unit = ParseUnit(&u, kDivergent);
  EXPECT_TRUE(unit.ok());
  Instance input(&unit->schema, &u);
  out.status = ApplyFacts(*unit, &input);
  if (!out.status.ok()) return out;
  EvalOptions options;
  options.num_threads = threads;
  options.limits.max_steps_per_stage = max_steps;
  std::optional<Instance> partial;
  options.partial = &partial;
  auto result = RunUnit(&u, &*unit, input, options, &out.stats);
  out.status = result.ok() ? Status::Ok() : result.status();
  if (partial.has_value()) out.partial_facts = WriteFacts(*partial);
  return out;
}

TEST_F(FaultInjectionTest, SoakRollbackInvariantAcrossSeedsAndThreads) {
  // Inject allocation failures, worker-task faults, and forced governor
  // trips at assorted rates; whatever fires, the run must end in a
  // structured trip whose rolled-back instance byte-compares equal to a
  // clean (fault-free) run truncated at the same completed-step count.
  FaultInjector& injector = FaultInjector::Global();
  for (const FaultInjector::Config& config : SoakConfigs()) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      injector.Configure(config);
      SoakOutcome faulty = RunDivergent(threads, 50);
      injector.Reset();

      ASSERT_FALSE(faulty.status.ok())
          << "seed " << config.seed << " threads " << threads;
      EXPECT_NE(faulty.stats.trip, TripReason::kNone);
      EXPECT_NE(faulty.status.message().find("resource report"),
                std::string::npos)
          << faulty.status;
      ASSERT_FALSE(faulty.partial_facts.empty());

      // Fault-free reference at the same completed-step count. The soak
      // run's step budget (50) also serves as the no-fault backstop: if no
      // fault fires, the run trips on STEPS and compares against itself.
      SoakOutcome reference = RunDivergent(1, faulty.stats.steps);
      EXPECT_EQ(faulty.partial_facts, reference.partial_facts)
          << "seed " << config.seed << " threads " << threads << " trip "
          << TripReasonName(faulty.stats.trip) << " at step "
          << faulty.stats.steps;
    }
  }
}

TEST_F(FaultInjectionTest, SoakConvergingWorkloadTripsOrMatchesCleanRun) {
  // Differential-style workload: transitive closure converges, so under
  // faults each run either finishes byte-identical to the clean result or
  // trips and rolls back -- never a third state.
  constexpr const char* kTC = R"(
    schema { relation E : [D, D]; relation TC : [D, D]; }
    instance {
      E(["a", "b"]); E(["b", "c"]); E(["c", "d"]); E(["d", "e"]);
      E(["e", "f"]); E(["f", "g"]); E(["g", "h"]); E(["h", "i"]);
    }
    program {
      TC(x, y) :- E(x, y).
      TC(x, z) :- TC(x, y), E(y, z).
    }
  )";
  auto run_tc = [&](uint32_t threads) {
    SoakOutcome out;
    Universe u;
    auto unit = ParseUnit(&u, kTC);
    EXPECT_TRUE(unit.ok());
    Instance input(&unit->schema, &u);
    out.status = ApplyFacts(*unit, &input);
    if (!out.status.ok()) return out;
    EvalOptions options;
    options.num_threads = threads;
    std::optional<Instance> partial;
    options.partial = &partial;
    auto result = RunUnit(&u, &*unit, input, options, &out.stats);
    if (result.ok()) {
      out.partial_facts = WriteFacts(*result);
    } else {
      out.status = result.status();
      if (partial.has_value()) out.partial_facts = WriteFacts(*partial);
    }
    return out;
  };
  FaultInjector& injector = FaultInjector::Global();
  injector.Reset();
  SoakOutcome clean = run_tc(1);
  ASSERT_TRUE(clean.status.ok()) << clean.status;
  for (const FaultInjector::Config& config : SoakConfigs()) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      injector.Configure(config);
      SoakOutcome faulty = run_tc(threads);
      injector.Reset();
      if (faulty.status.ok()) {
        EXPECT_EQ(faulty.partial_facts, clean.partial_facts)
            << "seed " << config.seed << " threads " << threads;
      } else {
        EXPECT_NE(faulty.stats.trip, TripReason::kNone) << faulty.status;
        // Rolled back: the partial equals a clean run truncated at the
        // same completed-step count.
        FaultInjector::Global().Reset();
        Universe u;
        auto unit = ParseUnit(&u, kTC);
        ASSERT_TRUE(unit.ok());
        Instance input(&unit->schema, &u);
        ASSERT_TRUE(ApplyFacts(*unit, &input).ok());
        EvalOptions options;
        options.limits.max_steps_per_stage = faulty.stats.steps;
        std::optional<Instance> partial;
        options.partial = &partial;
        EvalStats stats;
        auto reference = RunUnit(&u, &*unit, input, options, &stats);
        ASSERT_FALSE(reference.ok());
        ASSERT_TRUE(partial.has_value());
        EXPECT_EQ(faulty.partial_facts, WriteFacts(*partial))
            << "seed " << config.seed << " threads " << threads << " trip "
            << TripReasonName(faulty.stats.trip);
      }
    }
  }
}

// A VM-eligible converging chain for the register-VM soak below.
constexpr const char* kVmChain = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  instance {
    E(["a", "b"]); E(["b", "c"]); E(["c", "d"]); E(["d", "e"]);
    E(["e", "f"]); E(["f", "g"]); E(["g", "h"]); E(["h", "i"]);
  }
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

SoakOutcome RunVmChain(EvalOptions options) {
  SoakOutcome out;
  Universe u;
  auto unit = ParseUnit(&u, kVmChain);
  EXPECT_TRUE(unit.ok());
  Instance input(&unit->schema, &u);
  out.status = ApplyFacts(*unit, &input);
  if (!out.status.ok()) return out;
  std::optional<Instance> partial;
  options.partial = &partial;
  auto result = RunUnit(&u, &*unit, input, options, &out.stats);
  if (result.ok()) {
    out.partial_facts = WriteFacts(*result);
  } else {
    out.status = result.status();
    if (partial.has_value()) out.partial_facts = WriteFacts(*partial);
  }
  return out;
}

TEST_F(FaultInjectionTest, SoakVmEngineRollsBackLikeTheTreeWalker) {
  // The register VM under IQLKIT_FAULTS seeds: every (seed, threads) cell
  // either completes byte-identical to the clean tree-walk result or trips
  // and rolls back to a completed-step boundary -- the same two-state
  // contract the tree-walker satisfies, checked by budget-matching the
  // observed step count on a clean tree-walk run.
  FaultInjector& injector = FaultInjector::Global();
  injector.Reset();
  SoakOutcome clean = RunVmChain(EvalOptions{});
  ASSERT_TRUE(clean.status.ok()) << clean.status;
  for (const FaultInjector::Config& config : SoakConfigs()) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      injector.Configure(config);
      EvalOptions options;
      options.engine = EvalOptions::Engine::kVm;
      options.num_threads = threads;
      options.parallel_min_candidates = 1;  // let worker-task faults fire
      SoakOutcome faulty = RunVmChain(options);
      injector.Reset();
      if (faulty.status.ok()) {
        EXPECT_EQ(faulty.partial_facts, clean.partial_facts)
            << "vm seed " << config.seed << " threads " << threads;
        continue;
      }
      EXPECT_NE(faulty.stats.trip, TripReason::kNone) << faulty.status;
      EvalOptions ref;
      ref.limits.max_steps_per_stage = faulty.stats.steps;
      SoakOutcome reference = RunVmChain(ref);
      ASSERT_FALSE(reference.status.ok());
      EXPECT_EQ(faulty.partial_facts, reference.partial_facts)
          << "vm seed " << config.seed << " threads " << threads << " trip "
          << TripReasonName(faulty.stats.trip) << " at step "
          << faulty.stats.steps;
    }
  }
}

TEST_F(FaultInjectionTest, CertainWorkerTaskFaultTripsTheVmEngine) {
  // p_task = 1.0 with a parallel VM run: the first partitioned step's
  // worker task fault-trips the governor before the step commits.
  FaultInjector::Config config;
  config.seed = 1;
  config.p_task = 1.0;
  FaultInjector::Global().Configure(config);
  EvalOptions options;
  options.engine = EvalOptions::Engine::kVm;
  options.num_threads = 8;
  options.parallel_min_candidates = 1;
  SoakOutcome out = RunVmChain(options);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.stats.trip, TripReason::kFault);
  EXPECT_EQ(out.stats.steps, 0u);
}

TEST_F(FaultInjectionTest, CertainGovernorTripFaultsImmediately) {
  FaultInjector::Config config;
  config.seed = 1;
  config.p_trip = 1.0;
  FaultInjector::Global().Configure(config);
  SoakOutcome out = RunDivergent(1, 50);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.stats.trip, TripReason::kFault);
  EXPECT_EQ(out.stats.steps, 0u);  // tripped before the first step committed
}

TEST_F(FaultInjectionTest, CertainAllocationFaultSurfacesAsMemoryTrip) {
  FaultInjector::Config config;
  config.seed = 1;
  config.p_alloc = 1.0;
  FaultInjector::Global().Configure(config);
  SoakOutcome out = RunDivergent(1, 50);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.stats.trip, TripReason::kMemory);
}

}  // namespace
}  // namespace iqlkit
