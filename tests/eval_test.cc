#include "iql/eval.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  // Parses `source`, runs its program on an input instance built by
  // `fill` over the unit's input projection, and returns the projected
  // output (or full instance when no output is declared).
  Result<Instance> Run(std::string_view source,
                       const std::function<void(Instance*)>& fill,
                       EvalOptions options = {}) {
    auto unit = ParseUnit(&u_, source);
    if (!unit.ok()) return unit.status();
    unit_ = std::make_unique<ParsedUnit>(std::move(*unit));
    Result<Schema> in_schema = unit_->schema.Project(unit_->input_names);
    if (!in_schema.ok()) return in_schema.status();
    in_schema_ = std::make_unique<Schema>(std::move(*in_schema));
    Instance input(in_schema_.get(), &u_);
    fill(&input);
    Status valid = input.Validate();
    if (!valid.ok()) return valid;
    return RunUnit(&u_, unit_.get(), input, options, &stats_);
  }

  ValueId C(std::string_view s) { return u_.values().Const(s); }
  ValueId Pair(ValueId a, ValueId b) {
    return u_.values().Tuple(
        {{PositionalAttr(&u_, 1), a}, {PositionalAttr(&u_, 2), b}});
  }

  Universe u_;
  std::unique_ptr<ParsedUnit> unit_;
  std::unique_ptr<Schema> in_schema_;
  EvalStats stats_;
};

// ---- Datalog fragment -----------------------------------------------------

TEST_F(EvalTest, TransitiveClosure) {
  auto out = Run(R"(
    schema { relation E : [D, D]; relation TC : [D, D]; }
    input E;
    output TC;
    program {
      TC(x, y) :- E(x, y).
      TC(x, z) :- TC(x, y), E(y, z).
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("E", Pair(C("a"), C("b")))
                                   .ok());
                   ASSERT_TRUE(in->AddToRelation("E", Pair(C("b"), C("c")))
                                   .ok());
                   ASSERT_TRUE(in->AddToRelation("E", Pair(C("c"), C("d")))
                                   .ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Symbol tc = u_.Intern("TC");
  EXPECT_EQ(out->Relation(tc).size(), 6u);  // ab ac ad bc bd cd
  EXPECT_TRUE(out->RelationContains(tc, Pair(C("a"), C("d"))));
  EXPECT_FALSE(out->RelationContains(tc, Pair(C("b"), C("a"))));
}

TEST_F(EvalTest, InflationaryNegation) {
  // Complement of a unary relation w.r.t. another, via negation.
  auto out = Run(R"(
    schema { relation R : D; relation S : D; relation Diff : D; }
    input R, S;
    output Diff;
    program {
      Diff(x) :- R(x), !S(x).
    }
  )",
                 [&](Instance* in) {
                   for (const char* c : {"a", "b", "c"}) {
                     ASSERT_TRUE(in->AddToRelation("R", C(c)).ok());
                   }
                   ASSERT_TRUE(in->AddToRelation("S", C("b")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Symbol diff = u_.Intern("Diff");
  EXPECT_EQ(out->Relation(diff).size(), 2u);
  EXPECT_TRUE(out->RelationContains(diff, C("a")));
  EXPECT_TRUE(out->RelationContains(diff, C("c")));
}

TEST_F(EvalTest, NegativeLiteralWithUnboundVariableRangesOverExtent) {
  // y occurs only under negation: it ranges over the type extent
  // (constants(I)), per the paper's valuation semantics.
  auto out = Run(R"(
    schema { relation R : [D, D]; relation NotAll : D; }
    input R;
    output NotAll;
    program {
      # x such that R(x, y) fails for some constant y.
      NotAll(x) :- R(x, x'), !R(x, y).
    }
  )",
                 [&](Instance* in) {
                   // a relates to both a and b; b relates only to b.
                   ASSERT_TRUE(in->AddToRelation("R", Pair(C("a"), C("a")))
                                   .ok());
                   ASSERT_TRUE(in->AddToRelation("R", Pair(C("a"), C("b")))
                                   .ok());
                   ASSERT_TRUE(in->AddToRelation("R", Pair(C("b"), C("b")))
                                   .ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Symbol p = u_.Intern("NotAll");
  EXPECT_FALSE(out->RelationContains(p, C("a")));
  EXPECT_TRUE(out->RelationContains(p, C("b")));
}

TEST_F(EvalTest, SequentialCompositionStages) {
  // Stage 2 sees the fixpoint of stage 1.
  auto out = Run(R"(
    schema { relation R : D; relation S : D; relation T : D; }
    input R;
    output T;
    program {
      S(x) :- R(x).
      ;
      T(x) :- S(x), !R(x).
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("a")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  // S == R, so T is empty.
  EXPECT_TRUE(out->Relation(u_.Intern("T")).empty());
}

// ---- Example 1.2: acyclic -> cyclic graph re-encoding ----------------------

class GraphEncodingTest : public EvalTest {
 protected:
  static constexpr std::string_view kSource = R"(
    schema {
      relation R  : [D, D];
      relation R0 : D;
      relation R9 : [D, P, P'];
      class P  : [D, {P}];
      class P' : {P};
    }
    input R;
    program {
      R0(x) :- R(x, y).
      R0(x) :- R(y, x).
      R9(x, p, p') :- R0(x).
      p'^(q) :- R9(x, p, p'), R9(y, q, q'), R(x, y).
      ;
      p^ = [x, p'^] :- R9(x, p, p').
    }
  )";
};

TEST_F(GraphEncodingTest, EncodesCycleAsCyclicInstance) {
  auto out = Run(kSource, [&](Instance* in) {
    ASSERT_TRUE(in->AddToRelation("R", Pair(C("a"), C("b"))).ok());
    ASSERT_TRUE(in->AddToRelation("R", Pair(C("b"), C("c"))).ok());
    ASSERT_TRUE(in->AddToRelation("R", Pair(C("c"), C("a"))).ok());
  });
  ASSERT_TRUE(out.ok()) << out.status();
  Symbol p = u_.Intern("P");
  const auto& oids = out->ClassExtent(p);
  ASSERT_EQ(oids.size(), 3u);
  // Every node oid's value is [name, {successor oids}] and the successor
  // sets close the 3-cycle.
  ValueStore& v = u_.values();
  std::map<std::string, Oid> by_name;
  for (Oid o : oids) {
    auto val = out->ValueOf(o);
    ASSERT_TRUE(val.has_value());
    const ValueNode& n = v.node(*val);
    ASSERT_EQ(n.kind, ValueKind::kTuple);
    ASSERT_EQ(n.fields.size(), 2u);
    const ValueNode& name = v.node(n.fields[0].second);
    ASSERT_EQ(name.kind, ValueKind::kConst);
    by_name[std::string(u_.Name(name.atom))] = o;
  }
  ASSERT_EQ(by_name.size(), 3u);
  auto successors = [&](Oid o) {
    const ValueNode& n = v.node(*out->ValueOf(o));
    const ValueNode& succ = v.node(n.fields[1].second);
    EXPECT_EQ(succ.kind, ValueKind::kSet);
    std::set<Oid> s;
    for (ValueId e : succ.elems) s.insert(v.node(e).oid);
    return s;
  };
  EXPECT_EQ(successors(by_name["a"]), (std::set<Oid>{by_name["b"]}));
  EXPECT_EQ(successors(by_name["b"]), (std::set<Oid>{by_name["c"]}));
  EXPECT_EQ(successors(by_name["c"]), (std::set<Oid>{by_name["a"]}));
  // The output validates against the cyclic schema.
  EXPECT_TRUE(out->Validate().ok()) << out->Validate();
}

TEST_F(GraphEncodingTest, SharedSuccessorsAreSharedOids) {
  // Diamond: a->b, a->c, b->d, c->d. d's oid must be shared, not copied.
  auto out = Run(kSource, [&](Instance* in) {
    ASSERT_TRUE(in->AddToRelation("R", Pair(C("a"), C("b"))).ok());
    ASSERT_TRUE(in->AddToRelation("R", Pair(C("a"), C("c"))).ok());
    ASSERT_TRUE(in->AddToRelation("R", Pair(C("b"), C("d"))).ok());
    ASSERT_TRUE(in->AddToRelation("R", Pair(C("c"), C("d"))).ok());
  });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->ClassExtent(u_.Intern("P")).size(), 4u);
  // Exactly one oid per node: 4 node oids in P, 4 set oids in P'.
  EXPECT_EQ(out->ClassExtent(u_.Intern("P'")).size(), 4u);
}

TEST_F(GraphEncodingTest, SelfLoopProducesSelfReferentialValue) {
  auto out = Run(kSource, [&](Instance* in) {
    ASSERT_TRUE(in->AddToRelation("R", Pair(C("a"), C("a"))).ok());
  });
  ASSERT_TRUE(out.ok()) << out.status();
  Symbol p = u_.Intern("P");
  ASSERT_EQ(out->ClassExtent(p).size(), 1u);
  Oid o = *out->ClassExtent(p).begin();
  std::set<Oid> in_value;
  u_.values().CollectOids(*out->ValueOf(o), &in_value);
  EXPECT_TRUE(in_value.count(o)) << "value of the node must mention itself";
}

// ---- Example 3.4.1: nest / unnest ------------------------------------------

TEST_F(EvalTest, UnnestThenNestRoundTrips) {
  auto out = Run(R"(
    schema {
      relation R1 : [D, {D}];
      relation R2 : [D, D];
      relation R3 : [D, {D}];
      relation R4 : D;
      relation R5 : [D, P];
      class P : {D};
    }
    input R1;
    output R2, R3;
    program {
      R2(x, y) :- R1(x, Y), Y(y).
      ;
      R4(x) :- R2(x, y).
      R5(x, z) :- R4(x).
      z^(y) :- R2(x, y), R5(x, z).
      ;
      R3(x, z^) :- R5(x, z).
    }
  )",
                 [&](Instance* in) {
                   ValueStore& v = u_.values();
                   ASSERT_TRUE(
                       in->AddToRelation(
                             "R1", Pair(C("a"), v.Set({C("1"), C("2")})))
                           .ok());
                   ASSERT_TRUE(in->AddToRelation(
                                     "R1", Pair(C("b"), v.Set({C("3")})))
                                   .ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  ValueStore& v = u_.values();
  Symbol r2 = u_.Intern("R2");
  Symbol r3 = u_.Intern("R3");
  EXPECT_EQ(out->Relation(r2).size(), 3u);
  EXPECT_TRUE(out->RelationContains(r2, Pair(C("a"), C("2"))));
  // Nest rebuilds R1 exactly (no empty sets in this input).
  EXPECT_EQ(out->Relation(r3).size(), 2u);
  EXPECT_TRUE(out->RelationContains(
      r3, Pair(C("a"), v.Set({C("1"), C("2")}))));
  EXPECT_TRUE(out->RelationContains(r3, Pair(C("b"), v.Set({C("3")}))));
}

TEST_F(EvalTest, UnnestDropsEmptySets) {
  // [c, {}] unnests to nothing, so nest cannot recover it -- the known
  // asymmetry of unnest/nest.
  auto out = Run(R"(
    schema {
      relation R1 : [D, {D}];
      relation R2 : [D, D];
    }
    input R1;
    output R2;
    program { R2(x, y) :- R1(x, Y), Y(y). }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation(
                                     "R1",
                                     Pair(C("c"), u_.values().EmptySet()))
                                   .ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Relation(u_.Intern("R2")).empty());
}

// ---- Example 3.4.2: powerset ------------------------------------------------

TEST_F(EvalTest, PowersetViaUnrestrictedVariable) {
  auto out = Run(R"(
    schema { relation R : D; relation R1 : {D}; }
    input R;
    output R1;
    program {
      var X : {D};
      R1(X) :- X = X.
    }
  )",
                 [&](Instance* in) {
                   for (const char* c : {"d1", "d2", "d3"}) {
                     ASSERT_TRUE(in->AddToRelation("R", C(c)).ok());
                   }
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->Relation(u_.Intern("R1")).size(), 8u);  // 2^3
}

TEST_F(EvalTest, PowersetViaInventedOids) {
  auto out = Run(R"(
    schema {
      relation R  : D;
      relation R1 : {D};
      relation R2 : [{D}, {D}, P];
      class P : {D};
    }
    input R;
    output R1;
    program {
      R1({}).
      R1({x}) :- R(x).
      R2(X, Y, z) :- R1(X), R1(Y).
      z^(x) :- R2(X, Y, z), X(x).
      z^(y) :- R2(X, Y, z), Y(y).
      R1(z^) :- P(z).
    }
  )",
                 [&](Instance* in) {
                   for (const char* c : {"d1", "d2", "d3"}) {
                     ASSERT_TRUE(in->AddToRelation("R", C(c)).ok());
                   }
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->Relation(u_.Intern("R1")).size(), 8u);  // 2^3
}

TEST_F(EvalTest, RecursiveInventionDiverges) {
  // R3(y, z) :- R3(x, y): each step invents a fresh z -- the paper's
  // canonical non-terminating program. Must surface as budget exhaustion.
  EvalOptions options;
  options.limits.max_invented_oids = 1000;
  auto out = Run(R"(
    schema { relation R3 : [P, P]; class P : D; }
    input R3, P;
    program {
      R3(y, z) :- R3(x, y).
    }
  )",
                 [&](Instance* in) {
                   auto o1 = in->CreateOid("P");
                   auto o2 = in->CreateOid("P");
                   ASSERT_TRUE(o1.ok() && o2.ok());
                   ASSERT_TRUE(
                       in->AddToRelation("R3",
                                         Pair(u_.values().OfOid(*o1),
                                              u_.values().OfOid(*o2)))
                           .ok());
                 },
                 options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

// ---- invention + weak assignment mechanics ---------------------------------

TEST_F(EvalTest, InventionIsIdempotentAcrossSteps) {
  // One oid per distinct R0 element, even though the rule stays active
  // across several steps (val-dom's head filter).
  auto out = Run(R"(
    schema { relation R0 : D; relation R9 : [D, P]; class P : D; }
    input R0;
    program { R9(x, p) :- R0(x). }
  )",
                 [&](Instance* in) {
                   for (const char* c : {"a", "b"}) {
                     ASSERT_TRUE(in->AddToRelation("R0", C(c)).ok());
                   }
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->ClassExtent(u_.Intern("P")).size(), 2u);
  EXPECT_EQ(out->Relation(u_.Intern("R9")).size(), 2u);
  EXPECT_EQ(stats_.invented_oids, 2u);
}

TEST_F(EvalTest, WeakAssignmentConflictIsIgnored) {
  // Two distinct values derived for the same oid in the same step: both
  // are ignored (condition (*)), and the fixpoint leaves nu undefined...
  // but the rule then stays in val-dom forever; the evaluator detects the
  // no-change step and stops.
  auto out = Run(R"(
    schema { relation R : D; class P : D; relation Holder : P; }
    input R, P, Holder;
    program {
      p^ = x :- Holder(p), R(x).
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("v1")).ok());
                   ASSERT_TRUE(in->AddToRelation("R", C("v2")).ok());
                   auto o = in->CreateOid("P");
                   ASSERT_TRUE(o.ok());
                   ASSERT_TRUE(in->AddToRelation(
                                     "Holder", u_.values().OfOid(*o))
                                   .ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Oid o = *out->ClassExtent(u_.Intern("P")).begin();
  EXPECT_FALSE(out->ValueOf(o).has_value());
}

TEST_F(EvalTest, WeakAssignmentUniqueValueApplies) {
  auto out = Run(R"(
    schema { relation R : D; class P : D; relation Holder : P; }
    input R, P, Holder;
    program {
      p^ = x :- Holder(p), R(x).
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("only")).ok());
                   auto o = in->CreateOid("P");
                   ASSERT_TRUE(o.ok());
                   ASSERT_TRUE(in->AddToRelation(
                                     "Holder", u_.values().OfOid(*o))
                                   .ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Oid o = *out->ClassExtent(u_.Intern("P")).begin();
  EXPECT_EQ(out->ValueOf(o), C("only"));
}

TEST_F(EvalTest, WeakAssignmentNeverOverwrites) {
  // nu(o) defined in the input; a rule deriving a different value is
  // ignored.
  auto out = Run(R"(
    schema { relation R : D; class P : D; relation Holder : P; }
    input R, P, Holder;
    program {
      p^ = x :- Holder(p), R(x).
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("new")).ok());
                   auto o = in->CreateOid("P");
                   ASSERT_TRUE(o.ok());
                   ASSERT_TRUE(in->SetOidValue(*o, C("old")).ok());
                   ASSERT_TRUE(in->AddToRelation(
                                     "Holder", u_.values().OfOid(*o))
                                   .ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Oid o = *out->ClassExtent(u_.Intern("P")).begin();
  EXPECT_EQ(out->ValueOf(o), C("old"));
}

TEST_F(EvalTest, UndefinedDerefFailsBothPolarities) {
  // nu(p) undefined: neither p^ = x nor p^ != x is satisfied (a valuation
  // must be defined on the literal's terms).
  auto out = Run(R"(
    schema {
      relation R : D; class P : D; relation Holder : P;
      relation Pos : D; relation Neg : D;
    }
    input R, P, Holder;
    output Pos, Neg;
    program {
      Pos(x) :- Holder(p), R(x), p^ = x.
      Neg(x) :- Holder(p), R(x), p^ != x.
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("x")).ok());
                   auto o = in->CreateOid("P");
                   ASSERT_TRUE(o.ok());
                   ASSERT_TRUE(in->AddToRelation(
                                     "Holder", u_.values().OfOid(*o))
                                   .ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Relation(u_.Intern("Pos")).empty());
  EXPECT_TRUE(out->Relation(u_.Intern("Neg")).empty());
}

TEST_F(EvalTest, DeletionRequiresOptIn) {
  auto out = Run(R"(
    schema { relation R : D; relation S : D; }
    input R;
    program { !R(x) :- S(x). }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("a")).ok());
                 });
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EvalTest, OutputProjectionDropsTemporaries) {
  auto out = Run(R"(
    schema { relation R : D; relation Tmp : D; relation Out : D; }
    input R;
    output Out;
    program {
      Tmp(x) :- R(x).
      Out(x) :- Tmp(x).
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("a")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_FALSE(out->schema().HasRelation(u_.Intern("Tmp")));
  EXPECT_EQ(out->Relation(u_.Intern("Out")).size(), 1u);
}

}  // namespace
}  // namespace iqlkit
