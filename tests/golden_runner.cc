#include "golden_runner.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/diagnostic.h"
#include "gtest/gtest.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "iql/typecheck.h"
#include "model/universe.h"
#include "transform/isomorphism.h"

namespace iqlkit::golden {

bool regen = false;

namespace {

namespace fs = std::filesystem;

fs::path ExamplesDir() {
  return fs::path(IQLKIT_SOURCE_DIR) / "examples" / "iql";
}

fs::path GoldenDir() { return fs::path(IQLKIT_SOURCE_DIR) / "tests" / "golden"; }

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The `schema { ... }` block of a source unit, verbatim. Brace counting
// skips `#` comments and string literals, matching the lexer's rules.
std::string ExtractSchemaBlock(const std::string& source) {
  size_t start = source.find("schema");
  if (start == std::string::npos) return "";
  int depth = 0;
  bool seen_brace = false;
  for (size_t i = start; i < source.size(); ++i) {
    char c = source[i];
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
    } else if (c == '"') {
      for (++i; i < source.size() && source[i] != '"'; ++i) {
      }
    } else if (c == '{') {
      ++depth;
      seen_brace = true;
    } else if (c == '}') {
      if (--depth == 0 && seen_brace) {
        return source.substr(start, i - start + 1);
      }
    }
  }
  return "";
}

}  // namespace

std::set<std::string> ListExamples() {
  std::set<std::string> names;
  for (const auto& entry : fs::directory_iterator(ExamplesDir())) {
    if (entry.path().extension() == ".iql") {
      names.insert(entry.path().stem().string());
    }
  }
  return names;
}

std::set<std::string> ListGoldens() {
  std::set<std::string> names;
  if (!fs::exists(GoldenDir())) return names;
  for (const auto& entry : fs::directory_iterator(GoldenDir())) {
    if (entry.path().extension() == ".expected") {
      names.insert(entry.path().stem().string());
    }
  }
  return names;
}

void RunGolden(const std::string& name) {
  fs::path source_path = ExamplesDir() / (name + ".iql");
  std::string source = ReadFile(source_path);
  ASSERT_FALSE(source.empty());

  Universe u;
  DiagnosticSink diags;
  auto unit = ParseUnit(&u, source, &diags);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\n"
                         << RenderText(diags.diagnostics(), source,
                                       source_path.string());

  // Mirror iqlsh: the input instance lives over the input projection when
  // one is declared, otherwise over the full schema.
  std::shared_ptr<const Schema> input_schema;
  if (unit->input_names.empty()) {
    input_schema =
        std::shared_ptr<const Schema>(&unit->schema, [](const Schema*) {});
  } else {
    auto projected = unit->schema.Project(unit->input_names);
    ASSERT_TRUE(projected.ok()) << projected.status();
    input_schema = std::make_shared<const Schema>(std::move(*projected));
  }
  Instance input(input_schema, &u);
  ASSERT_TRUE(ApplyFacts(*unit, &input).ok());
  ASSERT_TRUE(input.Validate().ok());

  // Type check explicitly so a failure shows the caret-rendered
  // diagnostic, not just the Status headline; RunUnit skips the pass once
  // type_checked is set.
  Status checked = TypeCheck(&u, unit->schema, &unit->program, &diags);
  ASSERT_TRUE(checked.ok()) << checked << "\n"
                            << RenderText(diags.diagnostics(), source,
                                          source_path.string());

  EvalOptions options;
  options.allow_deletions = true;  // updates.iql exercises IQL*
  auto actual = RunUnit(&u, &*unit, input, options);
  ASSERT_TRUE(actual.ok()) << actual.status();

  fs::path golden_path = GoldenDir() / (name + ".expected");
  if (regen) {
    fs::create_directories(GoldenDir());
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << "# Golden output of examples/iql/" << name
        << ".iql -- compared up to O-isomorphism.\n"
        << "# Regenerate with: golden_test --regen\n"
        << WriteFacts(*actual);
    return;
  }

  ASSERT_TRUE(fs::exists(golden_path))
      << golden_path << " missing; run golden_test --regen and review it";
  std::string golden = ReadFile(golden_path);

  // Re-parse the golden instance block against the example's own schema,
  // in the same universe, then compare up to oid renaming: a semantic
  // drift in the evaluator fails, renumbered invented oids do not.
  std::string schema_block = ExtractSchemaBlock(source);
  ASSERT_FALSE(schema_block.empty());
  std::string golden_source = schema_block + "\n" + golden;
  DiagnosticSink golden_diags;
  auto golden_unit = ParseUnit(&u, golden_source, &golden_diags);
  ASSERT_TRUE(golden_unit.ok())
      << golden_unit.status() << "\n"
      << RenderText(golden_diags.diagnostics(), golden_source,
                    golden_path.string());
  std::shared_ptr<const Schema> expected_schema;
  if (unit->output_names.empty()) {
    expected_schema = std::shared_ptr<const Schema>(&golden_unit->schema,
                                                    [](const Schema*) {});
  } else {
    auto projected = golden_unit->schema.Project(unit->output_names);
    ASSERT_TRUE(projected.ok()) << projected.status();
    expected_schema = std::make_shared<const Schema>(std::move(*projected));
  }
  Instance expected(expected_schema, &u);
  ASSERT_TRUE(ApplyFacts(*golden_unit, &expected).ok());

  EXPECT_TRUE(OIsomorphic(*actual, expected))
      << name << ": output is not O-isomorphic to " << golden_path
      << "\n--- actual ---\n"
      << WriteFacts(*actual) << "--- golden ---\n"
      << WriteFacts(expected);
}

}  // namespace iqlkit::golden
