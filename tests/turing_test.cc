// Computational completeness, constructively: Turing machines compiled to
// IQL with invented time points and tape cells (the Prop 4.2.2 /
// Chandra-Harel simulation at working scale).

#include "transform/turing.h"

#include <gtest/gtest.h>

#include "model/universe.h"

namespace iqlkit {
namespace {

// Parity acceptor over {1}: accepts words with an even number of 1s.
// Scans right; the blank past the end decides.
TuringMachine ParityMachine() {
  TuringMachine tm;
  tm.start_state = "even";
  tm.accepting_states = {"acc"};
  tm.transitions = {
      {"even", "1", "odd", "1", 'R'},
      {"odd", "1", "even", "1", 'R'},
      {"even", "B", "acc", "B", 'R'},
      // odd on blank: no transition -> halt without accepting.
  };
  return tm;
}

// Binary increment: scans right to the end, then increments moving left
// with carry; overflow extends the tape leftward.
TuringMachine IncrementMachine() {
  TuringMachine tm;
  tm.start_state = "scan";
  tm.accepting_states = {"done"};
  tm.transitions = {
      {"scan", "0", "scan", "0", 'R'},
      {"scan", "1", "scan", "1", 'R'},
      {"scan", "B", "inc", "B", 'L'},
      {"inc", "1", "inc", "0", 'L'},   // carry ripples
      {"inc", "0", "done", "1", 'L'},
      {"inc", "B", "done", "1", 'L'},  // overflow onto a fresh left cell
  };
  return tm;
}

std::vector<std::string> Word(std::string_view bits) {
  std::vector<std::string> w;
  for (char c : bits) w.emplace_back(1, c);
  return w;
}

TEST(TuringTest, ParityAccepts) {
  Universe u;
  auto r = RunTuringMachine(&u, ParityMachine(), Word("11"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  // 2 symbol steps + blank step = 3 machine steps.
  EXPECT_EQ(r->steps, 3u);
}

TEST(TuringTest, ParityRejects) {
  Universe u;
  auto r = RunTuringMachine(&u, ParityMachine(), Word("111"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->accepted);
}

TEST(TuringTest, ParityOnEmptyWordAccepts) {
  Universe u;
  auto r = RunTuringMachine(&u, ParityMachine(), {});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
}

TEST(TuringTest, IncrementWithoutCarry) {
  Universe u;
  auto r = RunTuringMachine(&u, IncrementMachine(), Word("1010"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  EXPECT_EQ(r->final_tape, Word("1011"));
}

TEST(TuringTest, IncrementWithCarryChain) {
  Universe u;
  auto r = RunTuringMachine(&u, IncrementMachine(), Word("1011"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->final_tape, Word("1100"));
}

TEST(TuringTest, IncrementOverflowExtendsTapeLeft) {
  // 111 + 1 = 1000: the result is one digit longer, so the simulation
  // must invent a tape cell to the LEFT of the original word.
  Universe u;
  auto r = RunTuringMachine(&u, IncrementMachine(), Word("111"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  EXPECT_EQ(r->final_tape, Word("1000"));
}

TEST(TuringTest, RightExtensionHappens) {
  // The parity machine steps onto the blank past the word's right end:
  // that blank lives on an invented cell.
  Universe u;
  uint64_t before = u.next_oid_raw();
  auto r = RunTuringMachine(&u, ParityMachine(), Word("1"));
  ASSERT_TRUE(r.ok()) << r.status();
  // Invented oids: time points + at least one fresh cell.
  EXPECT_GT(u.next_oid_raw() - before,
            1u + 1u + r->steps);  // t0 + cell0 + one T per step, plus cells
}

TEST(TuringTest, NonHaltingMachineHitsBudget) {
  TuringMachine loop;
  loop.start_state = "s";
  loop.transitions = {
      {"s", "B", "s", "B", 'R'},  // runs right forever over fresh blanks
      {"s", "1", "s", "1", 'R'},
  };
  Universe u;
  EvalOptions options;
  options.limits.max_invented_oids = 60;
  auto r = RunTuringMachine(&u, loop, Word("1"), options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace iqlkit
