#include "storage/durable.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"
#include "storage/bytes.h"
#include "storage/checksum.h"
#include "storage/io.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "transform/isomorphism.h"

// The durability layer: checksummed snapshot round-trips (exact and
// canonical), the WAL of committed fixpoint steps, torn-tail recovery,
// crash-safe resume-from-partial with byte-identical output, graceful
// degradation on unwritable directories, and the seeded kStorage fault
// modes (short write, fsync failure, crash before rename).
namespace iqlkit {
namespace {

using storage::AppendLog;
using storage::AtomicWriteFile;
using storage::DecodeSnapshot;
using storage::DurabilityConfig;
using storage::EncodeSnapshot;
using storage::EncodeWalHeader;
using storage::FileExists;
using storage::QueryDurability;
using storage::ReadFileBytes;
using storage::RecoveredRun;
using storage::SchemaFingerprint;
using storage::SnapshotOptions;

// Two stages: a relational fixpoint, then invention with set-valued nu --
// so a mid-run crash can land before, inside, or after the invention stage.
constexpr const char* kChain = R"(
  schema {
    relation E : [D, D];
    relation TC : [D, D];
    relation Node : D;
    relation Box : [D, P];
    class P : {D};
  }
  instance {
    E(["a", "b"]); E(["b", "c"]); E(["c", "d"]); E(["d", "e"]);
  }
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
    Node(x) :- E(x, y).
    Node(y) :- E(x, y).
    ;
    Box(x, p) :- Node(x).
    p^(y) :- Box(x, p), TC(x, y).
  }
)";

// Every value shape the format must carry: named oids, cyclic tuple
// nu-values, sets of oids and of constants, an oid with undefined nu, a
// set-typed relation attribute, and (via the program) a deletion.
constexpr const char* kShapes = R"(
  schema {
    class P : [id: D, friends: {P}];
    relation R : [name: D, who: P, tags: {D}];
    relation Flag : D;
    relation Active : D;
  }
  instance {
    P(@adam); P(@eve); P(@loner);
    @adam = [id: "adam", friends: {@eve}];
    @eve  = [id: "eve", friends: {@adam, @eve}];
    R([name: "pair", who: @adam, tags: {"x", "y"}]);
    Flag("x");
    Active("x"); Active("y");
  }
  program {
    !Active(x) :- Flag(x).
  }
)";

// IQL+ choose: the picked oid is an arbitrary-but-deterministic class
// member, exercising snapshot round-trips of choose results.
constexpr const char* kChoose = R"(
  schema { relation Picked : M; class M : D; }
  instance { M(@a); M(@b); M(@c); }
  program { Picked(m) :- choose. }
)";

// A parsed unit plus its full-schema input instance. The unit lives on the
// heap so instances can keep pointing at its schema after moves.
struct LoadedUnit {
  std::unique_ptr<Universe> u;
  std::unique_ptr<ParsedUnit> unit;
  std::optional<Instance> input;

  // Non-owning alias for DecodeSnapshot / Recover.
  std::shared_ptr<const Schema> schema() const {
    return std::shared_ptr<const Schema>(std::shared_ptr<const Schema>(),
                                         &unit->schema);
  }
};

LoadedUnit Load(const char* source) {
  LoadedUnit l;
  l.u = std::make_unique<Universe>();
  auto unit = ParseUnit(l.u.get(), source);
  EXPECT_TRUE(unit.ok()) << unit.status();
  if (!unit.ok()) return l;
  l.unit = std::make_unique<ParsedUnit>(std::move(*unit));
  Instance input(&l.unit->schema, l.u.get());
  Status applied = ApplyFacts(*l.unit, &input);
  EXPECT_TRUE(applied.ok()) << applied;
  l.input.emplace(std::move(input));
  return l;
}

Result<Instance> Evaluate(LoadedUnit* l, const EvalOptions& options,
                          EvalStats* stats = nullptr) {
  return EvaluateProgram(l->u.get(), l->unit->schema, &l->unit->program,
                         *l->input, options, stats);
}

EvalOptions SerialOptions() {
  EvalOptions options;
  options.num_threads = 1;
  return options;
}

// Fresh (pre-wiped) per-test scratch directory.
std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/iqlkit_storage_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// The injector is process-global; every test restores the disabled state.
class StorageTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(StorageTest, SchemaFingerprintIsUniverseIndependent) {
  LoadedUnit a = Load(kChain);
  // Pre-interning unrelated symbols shifts every symbol id; the fingerprint
  // must not notice.
  LoadedUnit b;
  b.u = std::make_unique<Universe>();
  b.u->Intern("zzz");
  b.u->Intern("unrelated");
  auto unit = ParseUnit(b.u.get(), kChain);
  ASSERT_TRUE(unit.ok()) << unit.status();
  b.unit = std::make_unique<ParsedUnit>(std::move(*unit));
  EXPECT_EQ(SchemaFingerprint(a.unit->schema), SchemaFingerprint(b.unit->schema));

  LoadedUnit c = Load(kShapes);
  EXPECT_NE(SchemaFingerprint(a.unit->schema), SchemaFingerprint(c.unit->schema));
}

TEST_F(StorageTest, ExactSnapshotRoundTripsEvaluatedOutputByteForByte) {
  LoadedUnit l = Load(kChain);
  auto out = Evaluate(&l, SerialOptions());
  ASSERT_TRUE(out.ok()) << out.status();

  std::string bytes = EncodeSnapshot(*out, SnapshotOptions());

  LoadedUnit l2 = Load(kChain);
  auto loaded = DecodeSnapshot(bytes, l2.schema(), l2.u.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->canonical);
  EXPECT_FALSE(loaded->complete);
  EXPECT_EQ(loaded->next_oid_raw, l.u->next_oid_raw());
  l2.u->AdvanceOidCounter(loaded->next_oid_raw);
  EXPECT_EQ(WriteFacts(loaded->instance), WriteFacts(*out));
}

TEST_F(StorageTest, SnapshotCoversEveryValueShape) {
  // Named oids, cyclic nu tuples, oid sets, undefined nu, set-typed
  // relation attributes, and a deletion applied by the program.
  LoadedUnit l = Load(kShapes);
  EvalOptions options = SerialOptions();
  options.allow_deletions = true;
  auto out = Evaluate(&l, options);
  ASSERT_TRUE(out.ok()) << out.status();
  // The deletion really fired (Active("x") is gone).
  EXPECT_EQ(WriteFacts(*out).find("Active(\"x\")"), std::string::npos);

  std::string bytes = EncodeSnapshot(*out, SnapshotOptions());
  LoadedUnit l2 = Load(kShapes);
  auto loaded = DecodeSnapshot(bytes, l2.schema(), l2.u.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  l2.u->AdvanceOidCounter(loaded->next_oid_raw);
  EXPECT_EQ(WriteFacts(loaded->instance), WriteFacts(*out));
}

TEST_F(StorageTest, SnapshotRoundTripsChooseResults) {
  LoadedUnit l = Load(kChoose);
  EvalOptions options = SerialOptions();
  options.choose_policy = EvalOptions::ChoosePolicy::kMaxOid;
  auto out = Evaluate(&l, options);
  ASSERT_TRUE(out.ok()) << out.status();

  std::string bytes = EncodeSnapshot(*out, SnapshotOptions());
  LoadedUnit l2 = Load(kChoose);
  auto loaded = DecodeSnapshot(bytes, l2.schema(), l2.u.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(WriteFacts(loaded->instance), WriteFacts(*out));
}

TEST_F(StorageTest, CanonicalSnapshotIsStableUnderMonotoneRenaming) {
  LoadedUnit l = Load(kChain);
  auto out = Evaluate(&l, SerialOptions());
  ASSERT_TRUE(out.ok()) << out.status();

  SnapshotOptions canonical;
  canonical.canonical_oids = true;
  std::string b1 = EncodeSnapshot(*out, canonical);

  // A monotone raw-oid shift is invisible after canonical renumbering.
  Instance shifted =
      RenameOids(*out, [](Oid o) { return Oid{o.raw + 1000}; });
  EXPECT_EQ(EncodeSnapshot(shifted, canonical), b1);

  // Decoding yields an O-isomorphic instance; re-encoding it canonically is
  // byte-idempotent (save-load-save is a fixpoint).
  auto loaded = DecodeSnapshot(b1, l.schema(), l.u.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->canonical);
  EXPECT_TRUE(OIsomorphic(*out, loaded->instance));
  EXPECT_EQ(EncodeSnapshot(loaded->instance, canonical), b1);
}

TEST_F(StorageTest, SnapshotRejectsUnknownVersionCorruptionAndTruncation) {
  LoadedUnit l = Load(kChain);
  std::string bytes = EncodeSnapshot(*l.input, SnapshotOptions());

  {  // Unknown version byte (offset 4).
    std::string bad = bytes;
    bad[4] = static_cast<char>(42);
    auto r = DecodeSnapshot(bad, l.schema(), l.u.get());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("unsupported snapshot format version"),
              std::string::npos);
  }
  {  // Payload corruption is caught by the CRC.
    std::string bad = bytes;
    bad[bytes.size() - 1] ^= 0x40;
    auto r = DecodeSnapshot(bad, l.schema(), l.u.get());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Truncation (any prefix, including a torn header).
    for (size_t len : {size_t{0}, size_t{3}, size_t{12}, bytes.size() - 5}) {
      auto r =
          DecodeSnapshot(bytes.substr(0, len), l.schema(), l.u.get());
      ASSERT_FALSE(r.ok()) << "prefix length " << len;
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
  }
  {  // Wrong magic.
    std::string bad = bytes;
    bad[0] = 'X';
    auto r = DecodeSnapshot(bad, l.schema(), l.u.get());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(StorageTest, SnapshotRejectsSchemaFingerprintMismatch) {
  LoadedUnit l = Load(kChain);
  std::string bytes = EncodeSnapshot(*l.input, SnapshotOptions());
  LoadedUnit other = Load(kShapes);
  auto r = DecodeSnapshot(bytes, other.schema(), other.u.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// A StepCommitSink that persists the first `frames` commits and then fails
// like a dying process: the frame is never written and the evaluation ends
// with kUnavailable.
class CrashAfter : public StepCommitSink {
 public:
  CrashAfter(QueryDurability* d, uint64_t frames) : d_(d), frames_(frames) {}
  Status OnStepCommit(const StepCommit& commit) override {
    if (seen_ == frames_) return UnavailableError("simulated crash");
    ++seen_;
    return d_->OnStepCommit(commit);
  }

 private:
  QueryDurability* d_;
  uint64_t frames_;
  uint64_t seen_ = 0;
};

// Uninterrupted durable run of kChain: the byte-identity reference.
std::string ReferenceFacts(uint64_t* steps = nullptr) {
  LoadedUnit l = Load(kChain);
  EvalStats stats;
  auto out = Evaluate(&l, SerialOptions(), &stats);
  EXPECT_TRUE(out.ok()) << out.status();
  if (steps != nullptr) *steps = stats.steps;
  return out.ok() ? WriteFacts(*out) : std::string();
}

TEST_F(StorageTest, CrashedRunResumesFromWalByteIdentical) {
  uint64_t full_steps = 0;
  std::string reference = ReferenceFacts(&full_steps);
  ASSERT_FALSE(reference.empty());

  // Crash after every possible number of committed frames, including
  // crashes inside the second (invention) stage.
  for (uint64_t crash_at = 1; crash_at < full_steps; ++crash_at) {
    std::string dir = TestDir("resume_" + std::to_string(crash_at));
    {
      LoadedUnit l = Load(kChain);
      QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
      ASSERT_TRUE(d.active()) << d.warning();
      ASSERT_TRUE(d.BeginRun(*l.input).ok());
      CrashAfter sink(&d, crash_at);
      EvalOptions options = SerialOptions();
      options.durability.sink = &sink;
      auto out = Evaluate(&l, options);
      ASSERT_FALSE(out.ok());
      EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
    }
    {
      LoadedUnit l = Load(kChain);
      QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
      ASSERT_TRUE(d.active()) << d.warning();
      auto rec = d.Recover(l.schema(), l.schema(), l.u.get());
      ASSERT_TRUE(rec.ok()) << rec.status();
      ASSERT_TRUE(rec->has_value());
      ASSERT_FALSE((*rec)->complete);
      EXPECT_EQ((*rec)->frames_replayed, crash_at);
      EXPECT_FALSE((*rec)->tail_truncated);

      EvalStats stats;
      EvalOptions options = SerialOptions();
      options.durability.sink = &d;
      options.durability.resume = true;
      options.durability.resume_stage = (*rec)->resume_stage;
      options.durability.resume_step = (*rec)->resume_step;
      auto out = EvaluateProgram(l.u.get(), l.unit->schema, &l.unit->program,
                                 (*rec)->instance, options, &stats);
      ASSERT_TRUE(out.ok()) << out.status();
      EXPECT_EQ(WriteFacts(*out), reference) << "crash_at=" << crash_at;
      // Never re-derives: the resumed attempt executes only the steps the
      // crashed one had not committed.
      EXPECT_LT(stats.steps, full_steps) << "crash_at=" << crash_at;
    }
  }
}

TEST_F(StorageTest, TornWalTailIsTruncatedAndResumeStillMatches) {
  std::string reference = ReferenceFacts();
  std::string dir = TestDir("torn");
  {
    LoadedUnit l = Load(kChain);
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    ASSERT_TRUE(d.BeginRun(*l.input).ok());
    CrashAfter sink(&d, 2);
    EvalOptions options = SerialOptions();
    options.durability.sink = &sink;
    ASSERT_FALSE(Evaluate(&l, options).ok());
  }
  // A real torn frame: a plausible length prefix with too few bytes behind
  // it, as a short write would leave.
  std::string wal_path = dir + "/wal.iqw";
  uint64_t intact_size = std::filesystem::file_size(wal_path);
  {
    auto log = AppendLog::Open(wal_path);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE(log->Append(std::string("\x40\x00\x00\x00garbage", 11), true)
                    .ok());
  }
  {
    LoadedUnit l = Load(kChain);
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    auto rec = d.Recover(l.schema(), l.schema(), l.u.get());
    ASSERT_TRUE(rec.ok()) << rec.status();
    ASSERT_TRUE(rec->has_value());
    EXPECT_EQ((*rec)->frames_replayed, 2u);
    EXPECT_TRUE((*rec)->tail_truncated);
    // The torn tail is gone from disk.
    EXPECT_EQ(std::filesystem::file_size(wal_path), intact_size);

    EvalOptions options = SerialOptions();
    options.durability.sink = &d;
    options.durability.resume = true;
    options.durability.resume_stage = (*rec)->resume_stage;
    options.durability.resume_step = (*rec)->resume_step;
    auto out = EvaluateProgram(l.u.get(), l.unit->schema, &l.unit->program,
                               (*rec)->instance, options);
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(WriteFacts(*out), reference);
  }
}

TEST_F(StorageTest, CheckpointFoldsWalIntoSnapshotAndResumes) {
  std::string reference = ReferenceFacts();
  std::string dir = TestDir("checkpoint");
  uint32_t resume_stage = 0;
  uint64_t resume_step = 0;
  {
    // Trip the governor mid-run, checkpoint the rolled-back partial -- the
    // SIGINT / snapshot-on-drain path.
    LoadedUnit l = Load(kChain);
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    ASSERT_TRUE(d.BeginRun(*l.input).ok());
    std::optional<Instance> partial;
    EvalOptions options = SerialOptions();
    options.durability.sink = &d;
    options.partial = &partial;
    options.limits.max_steps_per_stage = 2;
    auto out = Evaluate(&l, options);
    ASSERT_FALSE(out.ok());
    ASSERT_TRUE(partial.has_value());
    ASSERT_TRUE(d.Checkpoint(*partial).ok());
    resume_stage = d.resume_stage();
    resume_step = d.resume_step();
    // The log was folded into the snapshot: header only.
    EXPECT_EQ(std::filesystem::file_size(dir + "/wal.iqw"), 16u);
  }
  {
    LoadedUnit l = Load(kChain);
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    auto rec = d.Recover(l.schema(), l.schema(), l.u.get());
    ASSERT_TRUE(rec.ok()) << rec.status();
    ASSERT_TRUE(rec->has_value());
    EXPECT_EQ((*rec)->frames_replayed, 0u);  // all state is in the snapshot
    EXPECT_EQ((*rec)->resume_stage, resume_stage);
    EXPECT_EQ((*rec)->resume_step, resume_step);

    EvalOptions options = SerialOptions();
    options.durability.sink = &d;
    options.durability.resume = true;
    options.durability.resume_stage = (*rec)->resume_stage;
    options.durability.resume_step = (*rec)->resume_step;
    auto out = EvaluateProgram(l.u.get(), l.unit->schema, &l.unit->program,
                               (*rec)->instance, options);
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(WriteFacts(*out), reference);
  }
}

TEST_F(StorageTest, FinalizeServesCompleteRunWithoutReEvaluating) {
  std::string dir = TestDir("done");
  std::string reference;
  {
    LoadedUnit l = Load(kChain);
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    ASSERT_TRUE(d.BeginRun(*l.input).ok());
    EvalOptions options = SerialOptions();
    options.durability.sink = &d;
    auto out = Evaluate(&l, options);
    ASSERT_TRUE(out.ok()) << out.status();
    reference = WriteFacts(*out);
    ASSERT_TRUE(d.Finalize(*out).ok());
    EXPECT_TRUE(FileExists(dir + "/DONE"));
    EXPECT_FALSE(FileExists(dir + "/wal.iqw"));
  }
  {
    LoadedUnit l = Load(kChain);
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    auto rec = d.Recover(l.schema(), l.schema(), l.u.get());
    ASSERT_TRUE(rec.ok()) << rec.status();
    ASSERT_TRUE(rec->has_value());
    EXPECT_TRUE((*rec)->complete);
    EXPECT_EQ(WriteFacts((*rec)->instance), reference);
  }
}

TEST_F(StorageTest, UnwritableDirDegradesToInMemoryWithWarning) {
  // /dev/null can never become a directory.
  QueryDurability d =
      QueryDurability::Open("/dev/null/iqlkit", DurabilityConfig());
  EXPECT_FALSE(d.active());
  EXPECT_EQ(d.warning().code(), StatusCode::kUnavailable);
  EXPECT_NE(d.warning().message().find("durability disabled"),
            std::string::npos);

  // Every later call is a harmless no-op; evaluation proceeds in memory.
  LoadedUnit l = Load(kChain);
  EXPECT_TRUE(d.BeginRun(*l.input).ok());
  auto rec = d.Recover(l.schema(), l.schema(), l.u.get());
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->has_value());
  EvalOptions options = SerialOptions();
  options.durability.sink = &d;
  auto out = Evaluate(&l, options);
  EXPECT_TRUE(out.ok()) << out.status();
}

TEST_F(StorageTest, InjectedFaultModesLeaveRealTornState) {
  std::string dir = TestDir("faults");
  ASSERT_TRUE(storage::EnsureDir(dir).ok());
  std::string path = dir + "/f.bin";
  const std::string payload = "0123456789ABCDEF";

  FaultInjector::Config config;
  config.p_storage = 1.0;
  FaultInjector::Global().Configure(config);

  // Injection 1: short write -- half the bytes really land in the tmp file.
  Status s1 = AtomicWriteFile(path, payload, true);
  ASSERT_FALSE(s1.ok());
  EXPECT_EQ(s1.code(), StatusCode::kUnavailable);
  EXPECT_NE(s1.message().find("short write"), std::string::npos);
  EXPECT_FALSE(FileExists(path));
  auto torn = ReadFileBytes(path + ".tmp");
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(torn->size(), payload.size() / 2);

  // Injection 2: fsync failure.
  Status s2 = AtomicWriteFile(path, payload, true);
  ASSERT_FALSE(s2.ok());
  EXPECT_NE(s2.message().find("fsync"), std::string::npos);
  EXPECT_FALSE(FileExists(path));

  // Injection 3: crash between write and rename -- the tmp file is complete
  // but the publish never happened.
  Status s3 = AtomicWriteFile(path, payload, true);
  ASSERT_FALSE(s3.ok());
  EXPECT_NE(s3.message().find("rename"), std::string::npos);
  EXPECT_FALSE(FileExists(path));
  auto tmp = ReadFileBytes(path + ".tmp");
  ASSERT_TRUE(tmp.ok());
  EXPECT_EQ(*tmp, payload);

  // With injection off the same call succeeds and readers see the content.
  FaultInjector::Global().Reset();
  ASSERT_TRUE(AtomicWriteFile(path, payload, true).ok());
  auto final_bytes = ReadFileBytes(path);
  ASSERT_TRUE(final_bytes.ok());
  EXPECT_EQ(*final_bytes, payload);
}

TEST_F(StorageTest, InjectedAppendFaultsLeaveRealTornTail) {
  std::string dir = TestDir("append_faults");
  ASSERT_TRUE(storage::EnsureDir(dir).ok());
  std::string path = dir + "/log";
  auto log = AppendLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status();

  FaultInjector::Config config;
  config.p_storage = 1.0;
  FaultInjector::Global().Configure(config);

  // Short write: half the frame really is appended (a torn tail recovery
  // must scan past).
  Status s1 = log->Append("ABCDEFGH", true);
  ASSERT_FALSE(s1.ok());
  EXPECT_EQ(std::filesystem::file_size(path), 4u);
  // Fsync failure: the bytes are in the file, durability is not promised.
  Status s2 = log->Append("ABCDEFGH", true);
  ASSERT_FALSE(s2.ok());
  EXPECT_EQ(std::filesystem::file_size(path), 12u);
  // Crash before the append: nothing lands.
  Status s3 = log->Append("ABCDEFGH", true);
  ASSERT_FALSE(s3.ok());
  EXPECT_EQ(std::filesystem::file_size(path), 12u);
}

TEST_F(StorageTest, FailedFrameAppendPoisonsTheWal) {
  std::string dir = TestDir("poison");
  LoadedUnit l = Load(kChain);
  QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
  ASSERT_TRUE(d.BeginRun(*l.input).ok());

  std::vector<FactOp> ops;
  StepCommit commit{0, 0, l.u->next_oid_raw(), &ops, &*l.input};

  FaultInjector::Config config;
  config.p_storage = 1.0;
  FaultInjector::Global().Configure(config);
  Status failed = d.OnStepCommit(commit);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);

  // Even after the fault clears, no frame may land beyond a torn region:
  // the wal stays poisoned until the next BeginRun/Checkpoint.
  FaultInjector::Global().Reset();
  Status still_broken = d.OnStepCommit(commit);
  ASSERT_FALSE(still_broken.ok());
  EXPECT_EQ(still_broken.code(), StatusCode::kUnavailable);
  EXPECT_EQ(d.frames_appended(), 0u);

  // BeginRun rewrites the log and clears the poison.
  ASSERT_TRUE(d.BeginRun(*l.input).ok());
  EXPECT_TRUE(d.OnStepCommit(commit).ok());
  EXPECT_EQ(d.frames_appended(), 1u);
}

TEST_F(StorageTest, DegradeOnWriteErrorTurnsFaultsIntoWarnings) {
  std::string dir = TestDir("degrade");
  LoadedUnit l = Load(kChain);
  DurabilityConfig config;
  config.degrade_on_write_error = true;
  QueryDurability d = QueryDurability::Open(dir, config);
  ASSERT_TRUE(d.BeginRun(*l.input).ok());

  FaultInjector::Config faults;
  faults.p_storage = 1.0;
  FaultInjector::Global().Configure(faults);

  EvalOptions options = SerialOptions();
  options.durability.sink = &d;
  auto out = Evaluate(&l, options);
  // The run completes in memory; the failure is a structured warning.
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_FALSE(d.active());
  EXPECT_EQ(d.warning().code(), StatusCode::kUnavailable);
  EXPECT_NE(d.warning().message().find("degraded to in-memory"),
            std::string::npos);
}

TEST_F(StorageTest, RecoverRejectsCrcValidButMalformedWal) {
  std::string dir = TestDir("malformed");
  LoadedUnit l = Load(kChain);
  {
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    ASSERT_TRUE(d.BeginRun(*l.input).ok());
  }
  // Hand-craft a frame whose CRC is correct but whose payload is garbage:
  // recovery must refuse (InvalidArgument), not silently skip.
  storage::ByteWriter payload;
  payload.U32(0);                      // stage
  payload.U64(0);                      // step
  payload.U64(l.u->next_oid_raw());    // next oid
  payload.U32(0);                      // empty symbol table
  payload.U32(0);                      // empty value table
  payload.U32(1);                      // one op ...
  payload.U8(0xEE);                    // ... of an unknown kind
  storage::ByteWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(storage::Crc32(payload.bytes()));
  frame.Bytes(payload.bytes());
  {
    auto log = AppendLog::Open(dir + "/wal.iqw");
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(frame.bytes(), true).ok());
  }
  LoadedUnit l2 = Load(kChain);
  QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
  auto rec = d.Recover(l2.schema(), l2.schema(), l2.u.get());
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace iqlkit
