// IQL* (§4.5): negative heads interpreted as deletions, allowing
// non-disjoint input-output schemas (updates). Deleting an oid propagates:
// facts whose values mention it are erased, and non-set objects whose value
// mentions it are deleted in cascade.

#include <gtest/gtest.h>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class IqlStarTest : public ::testing::Test {
 protected:
  Result<Instance> Run(std::string_view source,
                       const std::function<void(Instance*)>& fill) {
    auto unit = ParseUnit(&u_, source);
    if (!unit.ok()) return unit.status();
    unit_ = std::make_unique<ParsedUnit>(std::move(*unit));
    auto in_schema = unit_->schema.Project(unit_->input_names);
    if (!in_schema.ok()) return in_schema.status();
    in_schema_ = std::make_unique<Schema>(std::move(*in_schema));
    Instance input(in_schema_.get(), &u_);
    fill(&input);
    EvalOptions options;
    options.allow_deletions = true;
    return RunUnit(&u_, unit_.get(), input, options);
  }

  ValueId C(std::string_view s) { return u_.values().Const(s); }

  Universe u_;
  std::unique_ptr<ParsedUnit> unit_;
  std::unique_ptr<Schema> in_schema_;
};

TEST_F(IqlStarTest, DeletesRelationFacts) {
  auto out = Run(R"(
    schema { relation R : D; relation Kill : D; }
    input R, Kill;
    program { !R(x) :- Kill(x). }
  )",
                 [&](Instance* in) {
                   for (const char* c : {"a", "b", "c"}) {
                     ASSERT_TRUE(in->AddToRelation("R", C(c)).ok());
                   }
                   ASSERT_TRUE(in->AddToRelation("Kill", C("b")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Symbol r = u_.Intern("R");
  EXPECT_EQ(out->Relation(r).size(), 2u);
  EXPECT_FALSE(out->RelationContains(r, C("b")));
}

TEST_F(IqlStarTest, DeleteWinsOverInsertInSameStep) {
  // x is both derived into S and deleted from S in the same step; the
  // *-semantics applies deletions after insertions.
  auto out = Run(R"(
    schema { relation R : D; relation S : D; }
    input R;
    program {
      S(x) :- R(x).
      !S(x) :- R(x).
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("a")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Relation(u_.Intern("S")).empty());
}

TEST_F(IqlStarTest, SetElementRemoval) {
  auto out = Run(R"(
    schema { class P : {D}; relation Holder : P; relation Kill : D; }
    input P, Holder, Kill;
    program { !p^(x) :- Holder(p), Kill(x). }
  )",
                 [&](Instance* in) {
                   auto o = in->CreateOid("P");
                   ASSERT_TRUE(o.ok());
                   ASSERT_TRUE(in->AddToSetOid(*o, C("keep")).ok());
                   ASSERT_TRUE(in->AddToSetOid(*o, C("drop")).ok());
                   ASSERT_TRUE(
                       in->AddToRelation("Holder", u_.values().OfOid(*o))
                           .ok());
                   ASSERT_TRUE(in->AddToRelation("Kill", C("drop")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Oid o = *out->ClassExtent(u_.Intern("P")).begin();
  EXPECT_EQ(out->ValueOf(o), u_.values().Set({C("keep")}));
}

TEST_F(IqlStarTest, OidDeletionCascades) {
  // Deleting a Node oid erases the relation facts mentioning it and strips
  // it from set values; a non-set Wrapper whose value mentions it dies too.
  auto out = Run(R"(
    schema {
      class Node : D;
      class Bag : {Node};
      class Wrapper : Node;
      relation Edge : [Node, Node];
      relation Kill : Node;
    }
    input Node, Bag, Wrapper, Edge, Kill;
    program { !Node(n) :- Kill(n). }
  )",
                 [&](Instance* in) {
                   ValueStore& v = u_.values();
                   auto n1 = in->CreateOid("Node");
                   auto n2 = in->CreateOid("Node");
                   ASSERT_TRUE(n1.ok() && n2.ok());
                   ASSERT_TRUE(in->SetOidValue(*n1, C("n1")).ok());
                   ASSERT_TRUE(in->SetOidValue(*n2, C("n2")).ok());
                   auto bag = in->CreateOid("Bag");
                   ASSERT_TRUE(bag.ok());
                   ASSERT_TRUE(in->AddToSetOid(*bag, v.OfOid(*n1)).ok());
                   ASSERT_TRUE(in->AddToSetOid(*bag, v.OfOid(*n2)).ok());
                   auto wrap = in->CreateOid("Wrapper");
                   ASSERT_TRUE(wrap.ok());
                   ASSERT_TRUE(in->SetOidValue(*wrap, v.OfOid(*n1)).ok());
                   ASSERT_TRUE(
                       in->AddToRelation(
                             "Edge",
                             v.Tuple({{PositionalAttr(&u_, 1), v.OfOid(*n1)},
                                      {PositionalAttr(&u_, 2),
                                       v.OfOid(*n2)}}))
                           .ok());
                   ASSERT_TRUE(in->AddToRelation("Kill", v.OfOid(*n1)).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->ClassExtent(u_.Intern("Node")).size(), 1u);
  EXPECT_TRUE(out->ClassExtent(u_.Intern("Wrapper")).empty());
  EXPECT_TRUE(out->Relation(u_.Intern("Edge")).empty());
  Oid bag = *out->ClassExtent(u_.Intern("Bag")).begin();
  EXPECT_EQ(u_.values().node(*out->ValueOf(bag)).elems.size(), 1u);
  // Kill itself was cleaned of the dangling oid.
  EXPECT_TRUE(out->Relation(u_.Intern("Kill")).empty());
  EXPECT_TRUE(out->Validate().ok()) << out->Validate();
}

TEST_F(IqlStarTest, ValueRetraction) {
  auto out = Run(R"(
    schema { class P : D; relation Holder : P; }
    input P, Holder;
    program { !p^ = p^ :- Holder(p). }
  )",
                 [&](Instance* in) {
                   auto o = in->CreateOid("P");
                   ASSERT_TRUE(o.ok());
                   ASSERT_TRUE(in->SetOidValue(*o, C("gone")).ok());
                   ASSERT_TRUE(
                       in->AddToRelation("Holder", u_.values().OfOid(*o))
                           .ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Oid o = *out->ClassExtent(u_.Intern("P")).begin();
  EXPECT_FALSE(out->ValueOf(o).has_value());
}

TEST_F(IqlStarTest, InsertionsAndDeletionsExpressUpdates) {
  // Replace: move every S-marked element of R to T (delete from R, add to
  // T) -- a non-monotone transformation impossible in plain IQL.
  auto out = Run(R"(
    schema { relation R : D; relation S : D; relation T : D; }
    input R, S;
    program {
      T(x)  :- R(x), S(x).
      !R(x) :- S(x).
    }
  )",
                 [&](Instance* in) {
                   for (const char* c : {"a", "b"}) {
                     ASSERT_TRUE(in->AddToRelation("R", C(c)).ok());
                   }
                   ASSERT_TRUE(in->AddToRelation("S", C("a")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->Relation(u_.Intern("R")).size(), 1u);
  EXPECT_TRUE(out->RelationContains(u_.Intern("T"), C("a")));
}

}  // namespace
}  // namespace iqlkit
