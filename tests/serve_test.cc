// Serving tests: the session state machine over in-memory streams, the
// deterministic simulated-client serve loop, client-paced paging, cancel,
// per-session quotas, timeouts, graceful drain, and byte-identical
// trace replay per seed.

#include "server/serve_loop.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "server/wire.h"

namespace iqlkit {
namespace server {
namespace {

constexpr char kTcSource[] = R"(
schema {
  relation E  : [D, D];
  relation TC : [D, D];
}
input E;
output TC;
instance {
  E(1, 2);
  E(2, 3);
  E(3, 4);
}
program {
  TC(x, y) :- E(x, y).
  TC(x, z) :- TC(x, y), E(y, z).
}
)";

constexpr char kBadSource[] = "schema { this is not IQL ";

SchedulerOptions DetScheduler(uint64_t seed = 0) {
  SchedulerOptions options;
  options.deterministic = true;
  options.seed = seed;
  return options;
}

// A hand-driven client end of a MemoryDuplex for session-level tests.
struct TestClient {
  explicit TestClient(MemoryDuplex* duplex)
      : stream(duplex, /*server_side=*/false) {}

  void Send(const Frame& frame) {
    ASSERT_TRUE(stream.Write(EncodeFrame(frame)).ok());
  }
  void SendHello() {
    Frame hello;
    hello.type = FrameType::kHello;
    hello.body.SetInt("version", kWireVersion).SetString("tenant", "test");
    Send(hello);
  }
  void SendQuery(const std::string& id, const std::string& source) {
    Frame query;
    query.type = FrameType::kQuery;
    query.body.SetString("id", id).SetString("source", source);
    Send(query);
  }
  void SendWant(const std::string& id, int64_t want) {
    Frame page;
    page.type = FrameType::kPage;
    page.body.SetString("id", id).SetInt("want", want);
    Send(page);
  }

  std::vector<Frame> Drain() {
    std::vector<Frame> frames;
    for (;;) {
      std::string chunk;
      auto got = stream.Read(&chunk, 1 << 16);
      if (!got.ok() || *got == 0) break;
      decoder.Feed(chunk);
    }
    for (;;) {
      auto next = decoder.Next();
      if (!next.ok() || !next->has_value()) break;
      frames.push_back(std::move(**next));
    }
    return frames;
  }

  MemoryStream stream;
  FrameDecoder decoder;
};

class SessionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(SessionTest, HandshakeThenQueryThenPagedResult) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  SessionOptions options;
  options.page_rows = 2;  // force multiple pages
  Session session(1, &server_end, &scheduler, options, nullptr);
  TestClient client(&duplex);

  client.SendHello();
  ASSERT_TRUE(session.Pump(0));
  auto frames = client.Drain();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[0].body.GetInt("version").value(), kWireVersion);
  EXPECT_EQ(frames[0].body.GetInt("session").value(), 1);
  EXPECT_EQ(frames[0].body.GetInt("page_rows").value(), 2);

  client.SendQuery("q1", kTcSource);
  client.SendWant("q1", 0);
  ASSERT_TRUE(session.Pump(1));
  scheduler.RunUntilIdle();
  ASSERT_TRUE(session.Pump(2));

  // Page 0 arrives; request pages one at a time until done.
  std::string data;
  bool done = false;
  std::string outcome;
  for (int round = 0; round < 64 && !done; ++round) {
    for (const Frame& frame : client.Drain()) {
      ASSERT_EQ(frame.type, FrameType::kPage);
      data += frame.body.StringOr("data", "");
      if (frame.body.GetBool("done").value()) {
        done = true;
        outcome = frame.body.GetString("outcome").value();
      } else {
        client.SendWant("q1", frame.body.GetInt("seq").value() + 1);
      }
    }
    session.Pump(3 + round);
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(outcome, "completed");
  EXPECT_NE(data.find("TC("), std::string::npos);
  EXPECT_EQ(session.counters().delivered_completed, 1u);
  EXPECT_EQ(session.live_queries(), 0u);

  // The paged bytes are exactly a standalone evaluation's facts.
  Scheduler standalone(DetScheduler());
  QueryRequest request;
  request.id = "ref";
  request.source = kTcSource;
  auto ticket = standalone.Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(data, standalone.Wait(*ticket).facts);
}

TEST_F(SessionTest, VersionMismatchIsRefusedBeforeAnyQuery) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  Session session(1, &server_end, &scheduler, SessionOptions{}, nullptr);
  TestClient client(&duplex);
  Frame hello;
  hello.type = FrameType::kHello;
  hello.body.SetInt("version", 99);
  client.Send(hello);
  EXPECT_FALSE(session.Pump(0));
  EXPECT_EQ(session.close_reason(), SessionClose::kProtocolError);
  auto frames = client.Drain();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  EXPECT_EQ(frames[0].body.GetString("code").value(), "NETWORK_ERROR");
}

TEST_F(SessionTest, QueryBeforeHelloIsAProtocolError) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  Session session(1, &server_end, &scheduler, SessionOptions{}, nullptr);
  TestClient client(&duplex);
  client.SendQuery("q", kTcSource);
  EXPECT_FALSE(session.Pump(0));
  EXPECT_EQ(session.close_reason(), SessionClose::kProtocolError);
}

TEST_F(SessionTest, FailedQueryDeliversTerminalPageWithStatus) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  Session session(1, &server_end, &scheduler, SessionOptions{}, nullptr);
  TestClient client(&duplex);
  client.SendHello();
  session.Pump(0);
  client.Drain();
  client.SendQuery("bad", kBadSource);
  client.SendWant("bad", 0);
  session.Pump(1);
  scheduler.RunUntilIdle();
  session.Pump(2);
  auto frames = client.Drain();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kPage);
  EXPECT_TRUE(frames[0].body.GetBool("done").value());
  EXPECT_EQ(frames[0].body.GetString("outcome").value(), "failed");
  EXPECT_FALSE(frames[0].body.GetString("status").value().empty());
  EXPECT_EQ(session.counters().delivered_failed, 1u);
}

TEST_F(SessionTest, InflightQuotaRejectsLocally) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  SessionOptions options;
  options.max_inflight = 1;
  Session session(1, &server_end, &scheduler, options, nullptr);
  TestClient client(&duplex);
  client.SendHello();
  session.Pump(0);
  client.Drain();
  client.SendQuery("a", kTcSource);
  client.SendQuery("b", kTcSource);  // over quota
  client.SendQuery("a", kTcSource);  // duplicate id
  session.Pump(1);
  auto frames = client.Drain();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kError);
  EXPECT_EQ(frames[0].body.GetString("code").value(), "OVERLOAD");
  EXPECT_EQ(frames[0].body.GetString("id").value(), "b");
  EXPECT_EQ(frames[1].type, FrameType::kError);
  EXPECT_EQ(frames[1].body.GetString("code").value(), "ALREADY_EXISTS");
  EXPECT_EQ(session.counters().queries_accepted, 1u);
  EXPECT_EQ(session.counters().queries_rejected, 2u);
  // The session's rejects never reached scheduler admission.
  EXPECT_EQ(scheduler.counters().submitted, 1u);
}

TEST_F(SessionTest, CancelPushesATerminalPageUnasked) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  Session session(1, &server_end, &scheduler, SessionOptions{}, nullptr);
  TestClient client(&duplex);
  client.SendHello();
  session.Pump(0);
  client.Drain();
  client.SendQuery("q", kTcSource);
  session.Pump(1);  // admitted (queued; deterministic mode has not run it)
  Frame cancel;
  cancel.type = FrameType::kCancel;
  cancel.body.SetString("id", "q");
  client.Send(cancel);
  session.Pump(2);
  scheduler.RunUntilIdle();
  session.Pump(3);
  auto frames = client.Drain();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kPage);
  EXPECT_TRUE(frames[0].body.GetBool("done").value());
  EXPECT_EQ(frames[0].body.GetString("outcome").value(), "cancelled");
  EXPECT_EQ(session.counters().delivered_cancelled, 1u);
  EXPECT_EQ(scheduler.counters().cancelled, 1u);
}

TEST_F(SessionTest, IdleTimeoutClosesTheSession) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  SessionOptions options;
  options.idle_timeout_ms = 100;
  Session session(1, &server_end, &scheduler, options, nullptr);
  TestClient client(&duplex);
  client.SendHello();
  ASSERT_TRUE(session.Pump(0));
  ASSERT_TRUE(session.Pump(99));
  EXPECT_FALSE(session.Pump(100));
  EXPECT_EQ(session.close_reason(), SessionClose::kIdleTimeout);
}

TEST_F(SessionTest, HeartbeatsKeepAnIdleSessionAlive) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  SessionOptions options;
  options.idle_timeout_ms = 100;
  Session session(1, &server_end, &scheduler, options, nullptr);
  TestClient client(&duplex);
  client.SendHello();
  ASSERT_TRUE(session.Pump(0));
  for (uint64_t t = 80; t <= 400; t += 80) {
    Frame ping;
    ping.type = FrameType::kHello;
    ping.body.SetBool("ping", true);
    client.Send(ping);
    ASSERT_TRUE(session.Pump(t)) << "t=" << t;
  }
  EXPECT_EQ(session.counters().heartbeats, 5u);
  // Pongs came back alongside the HELLO ack.
  EXPECT_GE(client.Drain().size(), 6u);
}

TEST_F(SessionTest, TornFrameHitsTheReadTimeout) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  SessionOptions options;
  options.read_timeout_ms = 50;
  Session session(1, &server_end, &scheduler, options, nullptr);
  TestClient client(&duplex);
  std::string frame = EncodeFrame([] {
    Frame hello;
    hello.type = FrameType::kHello;
    hello.body.SetInt("version", kWireVersion);
    return hello;
  }());
  // Only half the frame ever arrives.
  ASSERT_TRUE(client.stream.Write(frame.substr(0, frame.size() / 2)).ok());
  ASSERT_TRUE(session.Pump(0));
  ASSERT_TRUE(session.Pump(49));
  EXPECT_FALSE(session.Pump(50));
  EXPECT_EQ(session.close_reason(), SessionClose::kReadTimeout);
}

TEST_F(SessionTest, SlowClientHitsTheWriteTimeout) {
  Scheduler scheduler(DetScheduler());
  // A tiny outbound pipe the "client" never drains: the HELLO ack fits,
  // result pages do not. The inbound direction stays roomy.
  MemoryDuplex duplex(/*c2s_capacity=*/1 << 20, /*s2c_capacity=*/160);
  MemoryStream server_end(&duplex, /*server_side=*/true);
  SessionOptions options;
  options.write_timeout_ms = 50;
  options.page_rows = 1024;
  Session session(1, &server_end, &scheduler, options, nullptr);
  TestClient client(&duplex);
  client.SendHello();
  ASSERT_TRUE(session.Pump(0));
  client.Drain();  // take the ack, then stop draining
  client.SendQuery("q", kTcSource);
  client.SendWant("q", 0);
  ASSERT_TRUE(session.Pump(1));
  scheduler.RunUntilIdle();
  ASSERT_TRUE(session.Pump(2));  // page stalls against the full pipe
  ASSERT_TRUE(session.Pump(51));
  EXPECT_FALSE(session.Pump(52));
  EXPECT_EQ(session.close_reason(), SessionClose::kWriteTimeout);
  // The undelivered query was cancelled in the scheduler, not leaked.
  EXPECT_EQ(session.counters().abandoned, 1u);
}

TEST_F(SessionTest, PeerDisappearingAbandonsAndCancels) {
  Scheduler scheduler(DetScheduler());
  MemoryDuplex duplex;
  MemoryStream server_end(&duplex, /*server_side=*/true);
  Session session(1, &server_end, &scheduler, SessionOptions{}, nullptr);
  TestClient client(&duplex);
  client.SendHello();
  session.Pump(0);
  client.Drain();
  client.SendQuery("q", kTcSource);
  session.Pump(1);
  client.stream.Close();
  EXPECT_FALSE(session.Pump(2));
  EXPECT_EQ(session.close_reason(), SessionClose::kPeerClosed);
  EXPECT_EQ(session.counters().abandoned, 1u);
  scheduler.RunUntilIdle();
  auto c = scheduler.counters();
  EXPECT_EQ(c.admitted, c.completed + c.tripped_partial + c.failed +
                            c.cancelled);
}

// ---- simulated serve loop --------------------------------------------------

std::vector<SimClientSpec> TwoClientSpecs() {
  std::vector<SimClientSpec> specs(2);
  specs[0].tenant = "alpha";
  specs[1].tenant = "beta";
  for (int q = 0; q < 3; ++q) {
    SimQuery query;
    query.id = "q" + std::to_string(q);
    query.source = kTcSource;
    query.at_ms = static_cast<uint64_t>(q);
    specs[0].queries.push_back(query);
    specs[1].queries.push_back(query);
  }
  return specs;
}

TEST_F(SessionTest, SimulatedClientsCompleteEverything) {
  Scheduler scheduler(DetScheduler(11));
  ServeOptions options;
  auto outcome = ServeSimulated(&scheduler, options, TwoClientSpecs(),
                                /*drain_at_ms=*/0, /*max_ms=*/5000);
  ASSERT_EQ(outcome.clients.size(), 2u);
  for (const auto& client : outcome.clients) {
    ASSERT_EQ(client.terminal.size(), 3u);
    for (const auto& [id, verdict] : client.terminal) {
      EXPECT_EQ(verdict, "outcome:completed") << id;
    }
  }
  EXPECT_EQ(outcome.stats.totals.delivered_completed, 6u);
  EXPECT_EQ(outcome.stats.totals.abandoned, 0u);
  // Both clients paged back byte-identical facts for the same query.
  EXPECT_EQ(outcome.clients[0].data.at("q0"), outcome.clients[1].data.at("q0"));
}

TEST_F(SessionTest, DrainMidStreamDeliversOrRejectsEverything) {
  Scheduler scheduler(DetScheduler(13));
  ServeOptions options;
  std::vector<SimClientSpec> specs(2);
  for (int c = 0; c < 2; ++c) {
    specs[c].tenant = "t" + std::to_string(c);
    for (int q = 0; q < 4; ++q) {
      SimQuery query;
      query.id = "q" + std::to_string(q);
      query.source = kTcSource;
      query.at_ms = static_cast<uint64_t>(q * 2);  // straddle the drain
      specs[c].queries.push_back(query);
    }
  }
  auto outcome = ServeSimulated(&scheduler, options, specs,
                                /*drain_at_ms=*/3, /*max_ms=*/5000);
  auto c = scheduler.counters();
  EXPECT_EQ(c.admitted,
            c.completed + c.tripped_partial + c.failed + c.cancelled);
  const auto& totals = outcome.stats.totals;
  EXPECT_EQ(totals.queries_accepted,
            totals.delivered_completed + totals.delivered_tripped +
                totals.delivered_cancelled + totals.delivered_failed +
                totals.abandoned);
  // Every client observed the drain and every pre-drain query got a
  // terminal verdict; post-drain submissions never happen (the sim client
  // stops submitting once DRAIN arrives).
  for (const auto& client : outcome.clients) {
    EXPECT_TRUE(client.drained);
    for (const auto& [id, verdict] : client.terminal) {
      EXPECT_TRUE(verdict.rfind("outcome:", 0) == 0 ||
                  verdict.rfind("error:", 0) == 0)
          << id << " -> " << verdict;
    }
  }
}

std::string RunTracedSim(uint64_t seed, const std::string& faults) {
  if (!faults.empty()) {
    auto config = FaultInjector::ParseSpec(faults);
    EXPECT_TRUE(config.ok());
    FaultInjector::Global().Configure(*config);
  }
  std::ostringstream trace;
  SchedulerOptions sched = DetScheduler(seed);
  sched.trace = &trace;
  Scheduler scheduler(sched);
  ServeOptions options;
  options.trace = &trace;
  ServeSimulated(&scheduler, options, TwoClientSpecs(), /*drain_at_ms=*/4,
                 /*max_ms=*/5000);
  FaultInjector::Global().Reset();
  return trace.str();
}

TEST_F(SessionTest, SimulatedTracesAreByteIdenticalPerSeed) {
  std::string first = RunTracedSim(42, "");
  std::string second = RunTracedSim(42, "");
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // ...including under injected network faults...
  std::string faulty1 = RunTracedSim(42, "network=0.05,seed=9");
  std::string faulty2 = RunTracedSim(42, "network=0.05,seed=9");
  EXPECT_EQ(faulty1, faulty2);
  // ...and a different fault seed really changes the transcript.
  std::string other = RunTracedSim(42, "network=0.05,seed=10");
  EXPECT_NE(faulty1, other);
}

TEST_F(SessionTest, RefusedAcceptsAreDeterministicAndReported) {
  auto config = FaultInjector::ParseSpec("network=1.0,seed=2");
  ASSERT_TRUE(config.ok());
  FaultInjector::Global().Configure(*config);
  Scheduler scheduler(DetScheduler());
  ServeOptions options;
  auto outcome = ServeSimulated(&scheduler, options, TwoClientSpecs(),
                                /*drain_at_ms=*/0, /*max_ms=*/200);
  // p=1.0: every accept draw refuses.
  EXPECT_EQ(outcome.stats.sessions_refused, 2u);
  EXPECT_EQ(outcome.stats.sessions_accepted, 0u);
  EXPECT_TRUE(outcome.clients[0].refused);
  EXPECT_TRUE(outcome.clients[1].refused);
  EXPECT_EQ(scheduler.counters().submitted, 0u);
}

}  // namespace
}  // namespace server
}  // namespace iqlkit
