// §5: the syntactic sublanguages IQLrr and IQLpr and their analyses.

#include "iql/restrict.h"

#include <gtest/gtest.h>

#include "iql/parser.h"
#include "iql/typecheck.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class RestrictTest : public ::testing::Test {
 protected:
  RestrictionReport Analyze(std::string_view source) {
    auto unit = ParseUnit(&u_, source);
    EXPECT_TRUE(unit.ok()) << unit.status();
    unit_ = std::make_unique<ParsedUnit>(std::move(*unit));
    Status s = TypeCheck(&u_, unit_->schema, &unit_->program);
    EXPECT_TRUE(s.ok()) << s;
    return AnalyzeRestrictions(&u_, unit_->schema, unit_->program);
  }

  Universe u_;
  std::unique_ptr<ParsedUnit> unit_;
};

TEST_F(RestrictTest, DatalogTransitiveClosureIsIqlRr) {
  RestrictionReport r = Analyze(R"(
    schema { relation E : [D, D]; relation TC : [D, D]; }
    program {
      TC(x, y) :- E(x, y).
      TC(x, z) :- TC(x, y), E(y, z).
    }
  )");
  EXPECT_TRUE(r.ptime_restricted);
  EXPECT_TRUE(r.range_restricted);
  EXPECT_TRUE(r.invention_free);
  EXPECT_FALSE(r.recursion_free);  // TC depends on TC
  EXPECT_TRUE(r.in_iql_rr);        // invention-free => controlled
  EXPECT_TRUE(r.in_iql_pr);
}

TEST_F(RestrictTest, UnrestrictedPowersetRejected) {
  RestrictionReport r = Analyze(R"(
    schema { relation R : D; relation R1 : {D}; }
    program { var X : {D}; R1(X) :- X = X. }
  )");
  EXPECT_FALSE(r.ptime_restricted);
  EXPECT_FALSE(r.range_restricted);
  EXPECT_FALSE(r.in_iql_pr);
  EXPECT_FALSE(r.in_iql_rr);
  ASSERT_FALSE(r.notes.empty());
}

TEST_F(RestrictTest, OidPowersetHasRecursionThroughInvention) {
  // Example 3.4.2's range-restricted powerset: every rule is
  // range-restricted, but its single stage recurses through invention
  // (P feeds R1 feeds R2 which invents into P), so it is (correctly)
  // outside IQLpr -- it computes an exponential result.
  RestrictionReport r = Analyze(R"(
    schema {
      relation R  : D;
      relation R1 : {D};
      relation R2 : [{D}, {D}, P];
      class P : {D};
    }
    program {
      R1({}).
      R1({x}) :- R(x).
      R2(X, Y, z) :- R1(X), R1(Y).
      z^(x) :- R2(X, Y, z), X(x).
      z^(y) :- R2(X, Y, z), Y(y).
      R1(z^) :- P(z).
    }
  )");
  EXPECT_FALSE(r.invention_free);
  EXPECT_FALSE(r.recursion_free);
  EXPECT_FALSE(r.in_iql_pr);
}

TEST_F(RestrictTest, Example341NestIsPtimeRestricted) {
  // The nest program of Example 3.4.1: the paper calls it
  // ptime-restricted. Stages separate invention from recursion.
  RestrictionReport r = Analyze(R"(
    schema {
      relation R2 : [D, D];
      relation R3 : [D, {D}];
      relation R4 : D;
      relation R5 : [D, P];
      class P : {D};
    }
    program {
      R4(x) :- R2(x, y).
      ;
      R5(x, z) :- R4(x).
      ;
      z^(y) :- R2(x, y), R5(x, z).
      ;
      R3(x, z^) :- R5(x, z).
    }
  )");
  EXPECT_TRUE(r.ptime_restricted);
  EXPECT_TRUE(r.in_iql_pr);
  // Not range-restricted: z^'s elements come via R2, but the set variable
  // rule R3(x, z^) has only class-typed-or-data vars... in fact all rules
  // here close from relations, and range-restriction's base case (class
  // variables) plus closure covers every variable.
  EXPECT_TRUE(r.in_iql_rr);
}

TEST_F(RestrictTest, StagingChangesTheVerdict) {
  // The graph-encoding program as one big stage mixes invention with
  // recursion; split into stages, every stage is controlled. Same
  // semantics, different syntactic classification -- Definition 5.3 is
  // about stages.
  RestrictionReport merged = Analyze(R"(
    schema {
      relation R  : [D, D];
      relation R0 : D;
      relation R9 : [D, P, P'];
      class P  : [D, {P}];
      class P' : {P};
    }
    program {
      R0(x) :- R(x, y).
      R0(x) :- R(y, x).
      R9(x, p, p') :- R0(x).
      p'^(q) :- R9(x, p, p'), R9(y, q, q'), R(x, y).
    }
  )");
  EXPECT_FALSE(merged.in_iql_rr);

  RestrictionReport staged = Analyze(R"(
    schema {
      relation R  : [D, D];
      relation R0 : D;
      relation R9 : [D, P, P'];
      class P  : [D, {P}];
      class P' : {P};
    }
    program {
      R0(x) :- R(x, y).
      R0(x) :- R(y, x).
      ;
      R9(x, p, p') :- R0(x).
      ;
      p'^(q) :- R9(x, p, p'), R9(y, q, q'), R(x, y).
    }
  )");
  EXPECT_TRUE(staged.in_iql_rr) << [&] {
    std::string all;
    for (const auto& n : staged.notes) all += n + "\n";
    return all;
  }();
}

TEST_F(RestrictTest, NonterminatingInventionRejected) {
  // R3(y, z) :- R3(x, y): invention inside recursion.
  RestrictionReport r = Analyze(R"(
    schema { relation R3 : [P, P]; class P : D; }
    program { R3(y, z) :- R3(x, y). }
  )");
  EXPECT_FALSE(r.invention_free);
  EXPECT_FALSE(r.recursion_free);
  EXPECT_FALSE(r.in_iql_pr);
}

TEST_F(RestrictTest, SetVariableBoundByRelationIsPtimeRestricted) {
  // X has a set type (not ptime base case) but is bound by R1(X):
  // closure through the membership literal restricts it.
  RestrictionReport r = Analyze(R"(
    schema { relation R1 : {D}; relation Out : D; }
    program { Out(x) :- R1(X), X(x). }
  )");
  EXPECT_TRUE(r.ptime_restricted);
  EXPECT_TRUE(r.in_iql_pr);
}

TEST_F(RestrictTest, RangeRestrictionIsStricterThanPtime) {
  // A variable of type D with no binding literal: ptime-restricted by the
  // base case (set-free type), but not range-restricted.
  RestrictionReport r = Analyze(R"(
    schema { relation R : D; relation Out : [D, D]; }
    program { Out(x, y) :- R(x), y = y. }
  )");
  EXPECT_TRUE(r.ptime_restricted);
  EXPECT_FALSE(r.range_restricted);
  EXPECT_TRUE(r.in_iql_pr);
  EXPECT_FALSE(r.in_iql_rr);
}

}  // namespace
}  // namespace iqlkit
