#include "base/governor.h"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "datalog/datalog.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

// Exercises the evaluation governor end to end: every trip reason, across
// the naive, semi-naive, and parallel pipelines, asserting the
// transactional-rollback contract -- a tripped run's instance byte-compares
// (via WriteFacts) equal to the last completed fixpoint step, reproducible
// by re-running with the observed step count as the budget.
namespace iqlkit {
namespace {

// The paper's canonical divergent program (Example 3.4.2 shape): each step
// invents a fresh oid, so the fixpoint never terminates and every limit is
// reachable deterministically.
constexpr const char* kDivergent = R"(
  schema { relation R3 : [P, P]; class P : D; }
  instance {
    P(@a); P(@b);
    R3([@a, @b]);
  }
  program {
    R3(y, z) :- R3(x, y).
  }
)";

// A converging program, for clean-run metrics and overhead checks.
constexpr const char* kTransitiveClosure = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  instance {
    E(["a", "b"]); E(["b", "c"]); E(["c", "d"]); E(["d", "e"]);
  }
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

struct RunOutcome {
  Status status = Status::Ok();
  EvalStats stats;
  EvalMetrics metrics;
  // WriteFacts of the rolled-back instance on a trip, of the output on
  // success; empty if the run failed without a partial (e.g. type error).
  std::string facts;
  bool tripped = false;
};

// Parses and runs `source` in a fresh universe. Each call is fully
// independent, so two outcomes can be byte-compared without sharing any
// interning state.
RunOutcome RunSource(const char* source, EvalOptions options) {
  RunOutcome out;
  Universe u;
  auto unit = ParseUnit(&u, source);
  if (!unit.ok()) {
    out.status = unit.status();
    return out;
  }
  Instance input(&unit->schema, &u);
  out.status = ApplyFacts(*unit, &input);
  if (!out.status.ok()) return out;
  std::optional<Instance> partial;
  options.partial = &partial;
  options.metrics = &out.metrics;
  auto result = RunUnit(&u, &*unit, input, options, &out.stats);
  if (result.ok()) {
    out.facts = WriteFacts(*result);
    return out;
  }
  out.status = result.status();
  out.tripped = out.stats.trip != TripReason::kNone;
  if (partial.has_value()) out.facts = WriteFacts(*partial);
  return out;
}

EvalOptions ModeOptions(bool seminaive, uint32_t threads) {
  EvalOptions options;
  options.enable_seminaive = seminaive;
  options.num_threads = threads;
  return options;
}

// The three pipelines the rollback contract must hold for, per the
// acceptance criteria: naive, semi-naive serial, and parallel.
struct Mode {
  const char* name;
  bool seminaive;
  uint32_t threads;
};
const Mode kModes[] = {
    {"naive", false, 1},
    {"seminaive", true, 1},
    {"parallel2", true, 2},
    {"parallel8", true, 8},
};

TEST(GovernorTest, StepTripRollsBackToLastCompletedStep) {
  // All pipelines commit bit-identical steps, so with the same step budget
  // every mode's partial must byte-compare equal -- and equal to a
  // *smaller-budget* reference plus the extra steps, i.e. the partial is
  // exactly the last completed step, not some mid-step state.
  std::string reference;
  for (const Mode& mode : kModes) {
    EvalOptions options = ModeOptions(mode.seminaive, mode.threads);
    options.limits.max_steps_per_stage = 4;
    RunOutcome out = RunSource(kDivergent, options);
    ASSERT_FALSE(out.status.ok()) << mode.name;
    EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted) << mode.name;
    EXPECT_EQ(out.stats.trip, TripReason::kSteps) << mode.name;
    EXPECT_EQ(out.stats.steps, 4u) << mode.name;
    EXPECT_NE(out.status.message().find("resource report"),
              std::string::npos)
        << mode.name;
    ASSERT_FALSE(out.facts.empty()) << mode.name;
    if (reference.empty()) {
      reference = out.facts;
    } else {
      EXPECT_EQ(out.facts, reference) << mode.name;
    }
  }
}

TEST(GovernorTest, DerivationTripIsTransactional) {
  for (const Mode& mode : kModes) {
    EvalOptions options = ModeOptions(mode.seminaive, mode.threads);
    options.limits.max_derivations = 5;
    RunOutcome out = RunSource(kDivergent, options);
    ASSERT_FALSE(out.status.ok()) << mode.name;
    EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted) << mode.name;
    EXPECT_EQ(out.stats.trip, TripReason::kDerivations) << mode.name;
    // Reproduce the tripped state in the same mode by step budget: the
    // partial must equal the last completed step.
    EvalOptions ref = ModeOptions(mode.seminaive, mode.threads);
    ref.limits.max_steps_per_stage = out.stats.steps;
    RunOutcome reference = RunSource(kDivergent, ref);
    EXPECT_EQ(reference.stats.trip, TripReason::kSteps) << mode.name;
    EXPECT_EQ(out.facts, reference.facts) << mode.name;
  }
}

TEST(GovernorTest, InventedOidTripIsTransactional) {
  for (const Mode& mode : kModes) {
    EvalOptions options = ModeOptions(mode.seminaive, mode.threads);
    options.limits.max_invented_oids = 6;
    RunOutcome out = RunSource(kDivergent, options);
    ASSERT_FALSE(out.status.ok()) << mode.name;
    EXPECT_EQ(out.stats.trip, TripReason::kInventedOids) << mode.name;
    EvalOptions ref = ModeOptions(mode.seminaive, mode.threads);
    ref.limits.max_steps_per_stage = out.stats.steps;
    RunOutcome reference = RunSource(kDivergent, ref);
    EXPECT_EQ(out.facts, reference.facts) << mode.name;
  }
}

TEST(GovernorTest, MemoryTripIsTransactional) {
  for (const Mode& mode : kModes) {
    EvalOptions options = ModeOptions(mode.seminaive, mode.threads);
    options.limits.max_memory_bytes = 4096;
    RunOutcome out = RunSource(kDivergent, options);
    ASSERT_FALSE(out.status.ok()) << mode.name;
    EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted) << mode.name;
    EXPECT_EQ(out.stats.trip, TripReason::kMemory) << mode.name;
    EXPECT_GT(out.stats.peak_memory_bytes, 4096u) << mode.name;
    EvalOptions ref = ModeOptions(mode.seminaive, mode.threads);
    ref.limits.max_steps_per_stage = out.stats.steps;
    RunOutcome reference = RunSource(kDivergent, ref);
    EXPECT_EQ(out.facts, reference.facts) << mode.name;
  }
}

TEST(GovernorTest, DeadlineTripIsTransactional) {
  for (const Mode& mode : kModes) {
    EvalOptions options = ModeOptions(mode.seminaive, mode.threads);
    options.limits.deadline_seconds = 0.02;
    RunOutcome out = RunSource(kDivergent, options);
    ASSERT_FALSE(out.status.ok()) << mode.name;
    EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded) << mode.name;
    EXPECT_EQ(out.stats.trip, TripReason::kDeadline) << mode.name;
    EXPECT_GE(out.stats.elapsed_seconds, 0.02) << mode.name;
    // The step count at which the deadline fired is nondeterministic, but
    // the committed state is not: re-run with that count as the budget.
    EvalOptions ref = ModeOptions(mode.seminaive, mode.threads);
    ref.limits.max_steps_per_stage = out.stats.steps;
    RunOutcome reference = RunSource(kDivergent, ref);
    EXPECT_EQ(out.facts, reference.facts) << mode.name;
  }
}

TEST(GovernorTest, CancellationTripIsTransactional) {
  for (const Mode& mode : kModes) {
    // A pre-fired token: evaluation must stop at the very first governor
    // check, before any step commits -- the partial is the input closure
    // at step 0 for the round-0 check.
    CancellationToken token;
    token.Cancel();
    EvalOptions options = ModeOptions(mode.seminaive, mode.threads);
    options.cancel = &token;
    RunOutcome out = RunSource(kDivergent, options);
    ASSERT_FALSE(out.status.ok()) << mode.name;
    EXPECT_EQ(out.status.code(), StatusCode::kCancelled) << mode.name;
    EXPECT_EQ(out.stats.trip, TripReason::kCancelled) << mode.name;
    EXPECT_EQ(out.stats.steps, 0u) << mode.name;
  }
}

TEST(GovernorTest, ExtentTripCarriesReason) {
  // An unrestricted set-typed variable ranges over a powerset extent; a
  // tiny extent budget trips with kExtent during enumeration.
  constexpr const char* kPowerset = R"(
    schema { relation In : D; relation Out : {D}; }
    instance {
      In("a"); In("b"); In("c"); In("d"); In("e");
    }
    program {
      var X : {D};
      Out(X) :- X = X.
    }
  )";
  for (const Mode& mode : kModes) {
    EvalOptions options = ModeOptions(mode.seminaive, mode.threads);
    options.limits.extent_budget = 8;
    RunOutcome out = RunSource(kPowerset, options);
    ASSERT_FALSE(out.status.ok()) << mode.name;
    EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted) << mode.name;
    EXPECT_EQ(out.stats.trip, TripReason::kExtent) << mode.name;
    EXPECT_EQ(out.stats.steps, 0u) << mode.name;
  }
}

TEST(GovernorTest, CleanRunReportsMetricsAndNoTrip) {
  RunOutcome out = RunSource(kTransitiveClosure, ModeOptions(true, 1));
  ASSERT_TRUE(out.status.ok()) << out.status;
  EXPECT_EQ(out.stats.trip, TripReason::kNone);
  EXPECT_GT(out.stats.elapsed_seconds, 0.0);
  EXPECT_GT(out.stats.peak_memory_bytes, 0u);
  std::string json = out.metrics.ToJson();
  EXPECT_NE(json.find("\"trip\":\"NONE\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"elapsed_seconds\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"peak_memory_bytes\":"), std::string::npos) << json;
}

TEST(GovernorTest, TrippedMetricsNameTheReason) {
  EvalOptions options = ModeOptions(true, 1);
  options.limits.max_steps_per_stage = 2;
  RunOutcome out = RunSource(kDivergent, options);
  ASSERT_FALSE(out.status.ok());
  std::string json = out.metrics.ToJson();
  EXPECT_NE(json.find("\"trip\":\"STEPS\""), std::string::npos) << json;
}

TEST(GovernorTest, TripReasonNamesAreStable) {
  EXPECT_STREQ(TripReasonName(TripReason::kNone), "NONE");
  EXPECT_STREQ(TripReasonName(TripReason::kDeadline), "DEADLINE");
  EXPECT_STREQ(TripReasonName(TripReason::kCancelled), "CANCELLED");
  EXPECT_STREQ(TripReasonName(TripReason::kMemory), "MEMORY");
  EXPECT_STREQ(TripReasonName(TripReason::kSteps), "STEPS");
  EXPECT_STREQ(TripReasonName(TripReason::kDerivations), "DERIVATIONS");
  EXPECT_STREQ(TripReasonName(TripReason::kInventedOids), "INVENTED_OIDS");
  EXPECT_STREQ(TripReasonName(TripReason::kExtent), "EXTENT");
  EXPECT_STREQ(TripReasonName(TripReason::kFault), "FAULT");
}

TEST(GovernorTest, FirstTripWinsAndIsSticky) {
  Governor governor(ResourceLimits{});
  EXPECT_FALSE(governor.tripped());
  EXPECT_TRUE(governor.Poll().ok());
  Status first = governor.TripNow(TripReason::kDerivations);
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted);
  // A later trip with a different reason does not overwrite the first.
  Status second = governor.TripNow(TripReason::kDeadline);
  EXPECT_EQ(governor.trip_reason(), TripReason::kDerivations);
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(governor.Poll().ok());
}

TEST(GovernorTest, CancellationTokenResets) {
  CancellationToken token;
  ResourceLimits limits;
  {
    Governor governor(limits, &token);
    token.Cancel();
    Status status = governor.CheckNow();
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
  }
  token.Reset();
  Governor fresh(limits, &token);
  EXPECT_TRUE(fresh.CheckNow().ok());
}

TEST(GovernorTest, MemoryAccountantTracksPeak) {
  MemoryAccountant accountant;
  accountant.Charge(1000);
  accountant.Charge(500);
  accountant.Release(800);
  EXPECT_EQ(accountant.bytes(), 700u);
  EXPECT_EQ(accountant.peak_bytes(), 1500u);
}

// ---- scheduler hooks: tightening, preemption, poll stride -----------------

TEST(GovernorTest, PreemptTripsStickyWithOverloadedStatus) {
  Governor governor(ResourceLimits{});
  Status status = governor.Preempt();
  EXPECT_EQ(status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(governor.trip_reason(), TripReason::kPreempted);
  // Sticky trips bypass the poll stride: the very next Poll observes it.
  EXPECT_FALSE(governor.Poll().ok());
  EXPECT_STREQ(TripReasonName(TripReason::kPreempted), "PREEMPTED");
}

TEST(GovernorTest, TightenOnlyEverLowersEffectiveLimits) {
  ResourceLimits limits;
  limits.max_steps_per_stage = 100;
  limits.max_memory_bytes = 1000;
  limits.deadline_seconds = 60;
  Governor governor(limits);
  EXPECT_FALSE(governor.tightened());
  // Loosening attempts are ignored: effective limits are monotone.
  governor.TightenSteps(200);
  governor.TightenMemory(2000);
  governor.TightenDeadline(120);
  EXPECT_EQ(governor.max_steps(), 100u);
  EXPECT_EQ(governor.max_memory_bytes(), 1000u);
  EXPECT_FALSE(governor.tightened());
  governor.TightenSteps(10);
  governor.TightenMemory(500);
  governor.TightenDeadline(30);
  EXPECT_EQ(governor.max_steps(), 10u);
  EXPECT_EQ(governor.max_memory_bytes(), 500u);
  EXPECT_NEAR(governor.deadline_seconds(), 30.0, 1e-6);
  EXPECT_TRUE(governor.tightened());
}

TEST(GovernorTest, TightenedMemoryCeilingTripsAtTheLowerBound) {
  ResourceLimits limits;
  limits.max_memory_bytes = 1 << 20;
  Governor governor(limits);
  governor.accountant()->Charge(4096);
  EXPECT_TRUE(governor.CheckNow().ok());
  governor.TightenMemory(1024);
  Status status = governor.CheckNow();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.trip_reason(), TripReason::kMemory);
  // The tightened() flag lets a scheduler classify this trip as transient
  // (its own doing) rather than the query hitting an organic ceiling.
  EXPECT_TRUE(governor.tightened());
}

TEST(GovernorTest, TightenedDeadlineExpiresImmediately) {
  ResourceLimits limits;
  limits.deadline_seconds = 3600;
  Governor governor(limits);
  EXPECT_TRUE(governor.CheckNow().ok());
  governor.TightenDeadline(0.0000001);
  Status status = governor.CheckNow();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(governor.trip_reason(), TripReason::kDeadline);
}

TEST(GovernorTest, PollStrideBoundsExternalObservationLatency) {
  // A memory overrun is an *external* condition: Poll only notices it on a
  // full check, which the stride gates. The trip must land within one
  // stride's worth of polls -- and with stride 1, on the very first.
  for (uint64_t stride : {uint64_t{1}, uint64_t{4}}) {
    ResourceLimits limits;
    limits.max_memory_bytes = 100;
    limits.poll_stride = stride;
    Governor governor(limits);
    governor.accountant()->Charge(1000);
    uint64_t polls = 0;
    while (governor.Poll().ok()) {
      ASSERT_LT(++polls, stride + 1) << "stride " << stride;
    }
    EXPECT_LE(polls, stride) << "stride " << stride;
    if (stride == 1) {
      EXPECT_EQ(polls, 0u);
    }
    EXPECT_EQ(governor.trip_reason(), TripReason::kMemory);
  }
}

TEST(GovernorTest, PressureHookRunsOnEveryFullCheck) {
  ResourceLimits limits;
  limits.poll_stride = 1;
  Governor governor(limits);
  int calls = 0;
  governor.set_pressure_hook([&] { ++calls; });
  EXPECT_TRUE(governor.CheckNow().ok());
  EXPECT_TRUE(governor.Poll().ok());
  EXPECT_EQ(calls, 2);
  // The hook may trip the governor it is attached to; the same check
  // observes the trip (this is how scheduler preemption lands in-band).
  governor.set_pressure_hook([&governor] {
    governor.Preempt();
  });
  EXPECT_EQ(governor.CheckNow().code(), StatusCode::kOverloaded);
}

// ---- register VM engine ---------------------------------------------------

// A longer converging chain than kTransitiveClosure, so tight budgets trip
// mid-run with several committed steps to compare. Both rules are
// VM-eligible (no invention, no choose), so engine = kVm actually runs the
// register VM rather than falling back.
std::string ChainTc(int n) {
  std::ostringstream source;
  source << "schema { relation E : [D, D]; relation TC : [D, D]; }\n"
            "instance {\n";
  for (int i = 0; i < n; ++i) {
    source << "  E([\"n" << i << "\", \"n" << i + 1 << "\"]);\n";
  }
  source << "}\nprogram {\n"
            "  TC(x, y) :- E(x, y).\n"
            "  TC(x, z) :- TC(x, y), E(y, z).\n"
            "}\n";
  return source.str();
}

EvalOptions VmOptions(bool seminaive, uint32_t threads) {
  EvalOptions options = ModeOptions(seminaive, threads);
  options.engine = EvalOptions::Engine::kVm;
  return options;
}

TEST(GovernorTest, VmStepTripMatchesTreeWalkerPartial) {
  // Committed steps are bit-identical across engines, so with the same
  // step budget the VM's rolled-back partial must byte-compare equal to
  // the tree-walker's, in every pipeline.
  std::string source = ChainTc(24);
  for (const Mode& mode : kModes) {
    EvalOptions tree = ModeOptions(mode.seminaive, mode.threads);
    tree.limits.max_steps_per_stage = 3;
    RunOutcome tw = RunSource(source.c_str(), tree);
    ASSERT_FALSE(tw.status.ok()) << mode.name;
    EXPECT_EQ(tw.stats.trip, TripReason::kSteps) << mode.name;
    ASSERT_FALSE(tw.facts.empty()) << mode.name;

    // The IL optimizer only skips candidates that provably fail a filter,
    // and fusion only collapses dispatches around the same candidate walk,
    // so committed steps stay bit-identical with either (or both) on.
    for (auto [il_opt, il_fuse] :
         {std::pair{false, false}, {true, false}, {true, true}}) {
      EvalOptions vm = VmOptions(mode.seminaive, mode.threads);
      vm.il_opt = il_opt;
      vm.il_fuse = il_fuse;
      vm.limits.max_steps_per_stage = 3;
      RunOutcome vo = RunSource(source.c_str(), vm);
      ASSERT_FALSE(vo.status.ok())
          << mode.name << ", il_opt " << il_opt << ", il_fuse " << il_fuse;
      EXPECT_EQ(vo.stats.trip, TripReason::kSteps)
          << mode.name << ", il_opt " << il_opt << ", il_fuse " << il_fuse;
      EXPECT_EQ(vo.stats.steps, tw.stats.steps)
          << mode.name << ", il_opt " << il_opt << ", il_fuse " << il_fuse;
      EXPECT_EQ(vo.facts, tw.facts)
          << mode.name << ", il_opt " << il_opt << ", il_fuse " << il_fuse;
    }
  }
}

TEST(GovernorTest, VmDerivationTripFiresAtTheSameStep) {
  // The per-step derivation count is plan-independent (each satisfying
  // valuation is enumerated exactly once under any join order), so the
  // kDerivations budget crosses its threshold during the same step under
  // both engines: equal committed-step counts, byte-equal partials.
  std::string source = ChainTc(24);
  for (const Mode& mode : kModes) {
    EvalOptions tree = ModeOptions(mode.seminaive, mode.threads);
    tree.limits.max_derivations = 40;
    RunOutcome tw = RunSource(source.c_str(), tree);
    ASSERT_FALSE(tw.status.ok()) << mode.name;
    EXPECT_EQ(tw.stats.trip, TripReason::kDerivations) << mode.name;

    // Derivations count satisfying valuations, which neither the optimizer
    // nor the fusion pass changes (both only skip candidates that would
    // fail), so the trip lands at the same step in every tier.
    for (auto [il_opt, il_fuse] :
         {std::pair{false, false}, {true, false}, {true, true}}) {
      EvalOptions vm = VmOptions(mode.seminaive, mode.threads);
      vm.il_opt = il_opt;
      vm.il_fuse = il_fuse;
      vm.limits.max_derivations = 40;
      RunOutcome vo = RunSource(source.c_str(), vm);
      ASSERT_FALSE(vo.status.ok())
          << mode.name << ", il_opt " << il_opt << ", il_fuse " << il_fuse;
      EXPECT_EQ(vo.stats.trip, TripReason::kDerivations)
          << mode.name << ", il_opt " << il_opt << ", il_fuse " << il_fuse;
      EXPECT_EQ(vo.stats.steps, tw.stats.steps)
          << mode.name << ", il_opt " << il_opt << ", il_fuse " << il_fuse;
      EXPECT_EQ(vo.facts, tw.facts)
          << mode.name << ", il_opt " << il_opt << ", il_fuse " << il_fuse;
    }
  }
}

TEST(GovernorTest, VmMemoryTripRollsBackToAStepBoundary) {
  // Allocation patterns legitimately differ between engines (the VM skips
  // the tree-walker's per-visit scratch), so the memory trip may land in a
  // different step; the contract is rollback to a completed-step boundary,
  // checked by budget-matching the observed step count on the tree-walker.
  std::string source = ChainTc(32);
  for (const Mode& mode : kModes) {
    EvalOptions vm = VmOptions(mode.seminaive, mode.threads);
    vm.limits.max_memory_bytes = 8192;
    RunOutcome vo = RunSource(source.c_str(), vm);
    ASSERT_FALSE(vo.status.ok()) << mode.name;
    EXPECT_EQ(vo.stats.trip, TripReason::kMemory) << mode.name;

    EvalOptions ref = ModeOptions(mode.seminaive, mode.threads);
    ref.limits.max_steps_per_stage = vo.stats.steps;
    RunOutcome reference = RunSource(source.c_str(), ref);
    EXPECT_EQ(reference.stats.trip, TripReason::kSteps) << mode.name;
    EXPECT_EQ(vo.facts, reference.facts) << mode.name;
  }
}

TEST(GovernorTest, VmDeadlineTripRollsBackToAStepBoundary) {
  std::string source = ChainTc(220);
  EvalOptions vm = VmOptions(true, 1);
  vm.limits.deadline_seconds = 0.005;
  RunOutcome vo = RunSource(source.c_str(), vm);
  if (vo.status.ok()) GTEST_SKIP() << "machine finished under the deadline";
  EXPECT_EQ(vo.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(vo.stats.trip, TripReason::kDeadline);
  EvalOptions ref = ModeOptions(true, 1);
  ref.limits.max_steps_per_stage = vo.stats.steps;
  RunOutcome reference = RunSource(source.c_str(), ref);
  EXPECT_EQ(vo.facts, reference.facts);
}

TEST(GovernorTest, VmPreemptionRollsBackToAStepBoundary) {
  // Scheduler-style preemption from the pressure hook while the VM is
  // enumerating: the run ends kPreempted/kOverloaded, and the partial is
  // the last completed step, reproduced by a budget-matched tree-walk run.
  std::string source = ChainTc(24);
  ResourceLimits limits;
  limits.poll_stride = 1;
  Governor governor(limits);
  int calls = 0;
  governor.set_pressure_hook([&] {
    if (++calls == 400) governor.Preempt();
  });
  EvalOptions options;
  options.engine = EvalOptions::Engine::kVm;
  options.governor = &governor;
  RunOutcome out = RunSource(source.c_str(), options);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(out.stats.trip, TripReason::kPreempted);
  EXPECT_GT(out.stats.steps, 0u);

  EvalOptions ref = ModeOptions(true, 1);
  ref.limits.max_steps_per_stage = out.stats.steps;
  RunOutcome reference = RunSource(source.c_str(), ref);
  EXPECT_EQ(out.facts, reference.facts);
}

// ---- datalog engine -------------------------------------------------------

datalog::Program TcProgram(datalog::Database* db, int chain) {
  using datalog::Term;
  auto e = db->AddRelation("e", 2);
  auto tc = db->AddRelation("tc", 2);
  EXPECT_TRUE(e.ok() && tc.ok());
  for (int i = 0; i < chain; ++i) {
    db->AddFact(*e, {db->InternConstant(i), db->InternConstant(i + 1)});
  }
  datalog::Program program;
  program.rules.push_back(
      {{*tc, {Term::Var(0), Term::Var(1)}},
       {{*e, {Term::Var(0), Term::Var(1)}}},
       {}});
  program.rules.push_back(
      {{*tc, {Term::Var(0), Term::Var(2)}},
       {{*tc, {Term::Var(0), Term::Var(1)}},
        {*e, {Term::Var(1), Term::Var(2)}}},
       {}});
  return program;
}

TEST(GovernorTest, DatalogStepTripRollsBackAcrossModesAndThreads) {
  // Reference: a clean full run, then per-(mode, threads) tripped runs
  // whose database must equal a budget-matched clean truncation.
  for (auto mode : {datalog::EvalMode::kNaive, datalog::EvalMode::kSemiNaive,
                    datalog::EvalMode::kSemiNaiveIndexed,
                    datalog::EvalMode::kVm}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      datalog::Database tripped_db;
      datalog::Program program = TcProgram(&tripped_db, 64);
      ResourceLimits limits;
      limits.max_steps_per_stage = 3;
      Governor governor(limits);
      datalog::Stats stats;
      Status status = datalog::Evaluate(program, &tripped_db, mode, &stats,
                                        threads, &governor);
      ASSERT_FALSE(status.ok());
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(governor.trip_reason(), TripReason::kSteps);
      EXPECT_EQ(stats.iterations, 3u);
      EXPECT_NE(status.message().find("resource report"), std::string::npos);

      // The serial engine with the same budget is the reference state.
      datalog::Database reference_db;
      datalog::Program ref_program = TcProgram(&reference_db, 64);
      Governor ref_governor(limits);
      Status ref_status = datalog::Evaluate(ref_program, &reference_db, mode,
                                            nullptr, 1, &ref_governor);
      ASSERT_FALSE(ref_status.ok());
      ASSERT_EQ(tripped_db.relation_count(), reference_db.relation_count());
      for (int r = 0; r < tripped_db.relation_count(); ++r) {
        EXPECT_EQ(tripped_db.Facts(r), reference_db.Facts(r))
            << "relation " << r << " threads " << threads;
      }
    }
  }
}

TEST(GovernorTest, DatalogCancellationDrainsWorkers) {
  datalog::Database db;
  datalog::Program program = TcProgram(&db, 256);
  CancellationToken token;
  token.Cancel();
  ResourceLimits limits;
  Governor governor(limits, &token);
  Status status = datalog::Evaluate(program, &db, datalog::EvalMode::kSemiNaive,
                                    nullptr, 8, &governor);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  // Round-0 check fires before anything derives: only the EDB remains.
  auto tc = db.FindRelation("tc");
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(db.FactCount(*tc), 0u);
}

TEST(GovernorTest, DatalogWithoutGovernorIsUnchanged) {
  datalog::Database db;
  datalog::Program program = TcProgram(&db, 16);
  Status status =
      datalog::Evaluate(program, &db, datalog::EvalMode::kSemiNaive);
  ASSERT_TRUE(status.ok()) << status;
  auto tc = db.FindRelation("tc");
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(db.FactCount(*tc), 16u * 17u / 2u);
}

}  // namespace
}  // namespace iqlkit
