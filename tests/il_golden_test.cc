// Golden IL corpus: for every examples/iql/*.iql program, the flat IL its
// rules compile to (il::DumpProgramIl after parse + type check) is
// compared against tests/golden_il/<name>.expected, the verified
// optimizer's output (iql/ilopt.h) against
// tests/golden_il_opt/<name>.expected, and the superinstruction fusion
// pass's output (optimizer + FuseRule, the full execution tier) against
// tests/golden_il_fused/<name>.expected. All dumps include the semi-naive
// delta variants, so the corpus pins every lowering the evaluator can
// request. Unlike the evaluation goldens, which compare up to
// O-isomorphism, IL text is fully deterministic -- registers, shapes, and
// probe specs depend only on the source -- so the comparison is exact
// string equality. Pass --regen to rewrite the corpora after an
// intentional lowering or pass change (then review the diff: a changed
// dump means a changed plan, which the differential suites must still
// prove byte-equivalent to the tree-walker).

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "iql/il.h"
#include "iql/ilopt.h"
#include "iql/parser.h"
#include "iql/typecheck.h"
#include "model/universe.h"

namespace iqlkit::golden_il {

bool regen = false;

namespace {

namespace fs = std::filesystem;

fs::path ExampleDir() {
  return fs::path(IQLKIT_SOURCE_DIR) / "examples" / "iql";
}

// The three pinned tiers: raw lowering, optimized, and the execution tier
// the fused VM runs (optimizer followed by superinstruction fusion).
enum class Tier { kRaw, kOpt, kFused };

fs::path GoldenDir(Tier tier) {
  const char* dir = tier == Tier::kRaw     ? "golden_il"
                    : tier == Tier::kOpt   ? "golden_il_opt"
                                           : "golden_il_fused";
  return fs::path(IQLKIT_SOURCE_DIR) / "tests" / dir;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> ListStems(const fs::path& dir, const char* ext) {
  std::set<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ext) {
      out.insert(entry.path().stem().string());
    }
  }
  return out;
}

// Parses and type checks examples/iql/<name>.iql and renders its IL at
// the requested tier, delta variants included.
std::string DumpFor(const std::string& name, Tier tier) {
  Universe u;
  auto unit = ParseUnit(&u, ReadFile(ExampleDir() / (name + ".iql")));
  EXPECT_TRUE(unit.ok()) << unit.status();
  if (!unit.ok()) return "<parse error>";
  Status checked = TypeCheck(&u, unit->schema, &unit->program);
  EXPECT_TRUE(checked.ok()) << checked;
  if (!checked.ok()) return "<type error>";
  il::IlDumpOptions opts;
  opts.optimize = tier != Tier::kRaw;
  opts.fuse = tier == Tier::kFused;
  opts.delta_variants = true;
  return il::DumpProgramIl(unit->program, u.symbols(), u.types(), opts);
}

void CheckAgainst(const std::string& name, Tier tier) {
  std::string dump = DumpFor(name, tier);
  fs::path golden = GoldenDir(tier) / (name + ".expected");
  if (regen) {
    fs::create_directories(GoldenDir(tier));
    std::ofstream out(golden);
    ASSERT_TRUE(out.good()) << "cannot write " << golden;
    out << dump;
    return;
  }
  ASSERT_TRUE(fs::exists(golden))
      << golden << " is missing; run il_golden_test --regen";
  EXPECT_EQ(ReadFile(golden), dump)
      << "IL drift for " << name
      << "; if intentional, run il_golden_test --regen and review the diff";
}

void RunIlGolden(const std::string& name) {
  CheckAgainst(name, Tier::kRaw);
  CheckAgainst(name, Tier::kOpt);
  CheckAgainst(name, Tier::kFused);
}

TEST(IlGoldenTest, Genesis) { RunIlGolden("genesis"); }
TEST(IlGoldenTest, GraphEncoding) { RunIlGolden("graph_encoding"); }
TEST(IlGoldenTest, Powerset) { RunIlGolden("powerset"); }
TEST(IlGoldenTest, Tc) { RunIlGolden("tc"); }
TEST(IlGoldenTest, Updates) { RunIlGolden("updates"); }

// Coverage guard: a new example without goldens (or a TEST above), or a
// stale golden without an example, fails here -- for both corpora.
TEST(IlGoldenTest, EveryExampleHasAGolden) {
  if (regen) GTEST_SKIP() << "goldens are being regenerated";
  std::set<std::string> examples = ListStems(ExampleDir(), ".iql");
  EXPECT_EQ(examples, ListStems(GoldenDir(Tier::kRaw), ".expected"));
  EXPECT_EQ(examples, ListStems(GoldenDir(Tier::kOpt), ".expected"));
  EXPECT_EQ(examples, ListStems(GoldenDir(Tier::kFused), ".expected"));
  std::set<std::string> covered = {"genesis", "graph_encoding", "powerset",
                                   "tc", "updates"};
  EXPECT_EQ(examples, covered)
      << "examples/iql changed: add an IlGoldenTest case and regen";
}

}  // namespace
}  // namespace iqlkit::golden_il

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") iqlkit::golden_il::regen = true;
  }
  return RUN_ALL_TESTS();
}
