// Golden-file tests over the example programs: every examples/iql/*.iql is
// evaluated and compared -- up to O-isomorphism -- against
// tests/golden/<name>.expected. Pass --regen to rewrite the goldens after
// an intentional semantic change (then review the diff).

#include <string>

#include "golden_runner.h"
#include "gtest/gtest.h"

namespace iqlkit::golden {
namespace {

TEST(GoldenTest, Genesis) { RunGolden("genesis"); }
TEST(GoldenTest, GraphEncoding) { RunGolden("graph_encoding"); }
TEST(GoldenTest, Powerset) { RunGolden("powerset"); }
TEST(GoldenTest, Tc) { RunGolden("tc"); }
TEST(GoldenTest, Updates) { RunGolden("updates"); }

// Coverage guard: a new example without a golden (or a TEST above), or a
// stale golden without an example, fails here.
TEST(GoldenTest, EveryExampleHasAGolden) {
  if (regen) GTEST_SKIP() << "goldens are being regenerated";
  EXPECT_EQ(ListExamples(), ListGoldens());
  std::set<std::string> covered = {"genesis", "graph_encoding", "powerset",
                                   "tc", "updates"};
  EXPECT_EQ(ListExamples(), covered)
      << "examples/iql changed: add a GoldenTest case and regen";
}

}  // namespace
}  // namespace iqlkit::golden

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") iqlkit::golden::regen = true;
  }
  return RUN_ALL_TESTS();
}
