// Example 3.4.3: encoding a union-typed schema S into a union-free schema
// S' and back, losslessly. Exercises body-equality coercion, invention,
// weak assignment on tuple values, and the polymorphic empty set.

#include <gtest/gtest.h>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"
#include "transform/isomorphism.h"

namespace iqlkit {
namespace {

// Shared schema for both directions. T(P) = (P | [P, P]);
// T(P') = [{P'}, {[P', P']}].
constexpr std::string_view kEncode = R"(
  schema {
    class P  : (P | [P, P]);
    class P' : [{P'}, {[P', P']}];
    relation R : [P, P'];
  }
  input P;
  output P';
  program {
    R(x, x') :- P(x).
    ;
    x'^ = [{y'}, {}] :- R(x, x'), R(y, y'), y = x^.
    x'^ = [{}, {[y', z']}] :- R(x, x'), R(y, y'), R(z, z'), [y, z] = x^.
  }
)";

constexpr std::string_view kDecode = R"(
  schema {
    class P  : (P | [P, P]);
    class P' : [{P'}, {[P', P']}];
    relation R2 : [P, P'];
  }
  input P';
  output P;
  program {
    var w : (P | [P, P]);
    R2(x, x') :- P'(x').
    ;
    x^ = w :- R2(x, x'), R2(y, y'), y = w, x'^ = [{y'}, {}].
    x^ = w :- R2(x, x'), R2(y, y'), R2(z, z'), [y, z] = w,
              x'^ = [{}, {[y', z']}].
  }
)";

class UnionCoercionTest : public ::testing::Test {
 protected:
  // Builds a P-instance: p1 -> p2 (class branch), p2 -> [p3, p1] (tuple
  // branch), p3 undefined (incomplete information).
  Instance BuildInput(const Schema* schema) {
    Instance in(schema, &u_);
    ValueStore& v = u_.values();
    auto p1 = in.CreateOid("P");
    auto p2 = in.CreateOid("P");
    auto p3 = in.CreateOid("P");
    EXPECT_TRUE(p1.ok() && p2.ok() && p3.ok());
    EXPECT_TRUE(in.SetOidValue(*p1, v.OfOid(*p2)).ok());
    EXPECT_TRUE(
        in.SetOidValue(*p2,
                       v.Tuple({{PositionalAttr(&u_, 1), v.OfOid(*p3)},
                                {PositionalAttr(&u_, 2), v.OfOid(*p1)}}))
            .ok());
    return in;
  }

  Universe u_;
};

TEST_F(UnionCoercionTest, EncodeProducesUnionFreeInstance) {
  auto unit = ParseUnit(&u_, kEncode);
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto in_schema = unit->schema.Project({"P"});
  ASSERT_TRUE(in_schema.ok());
  auto in_schema_ptr = std::make_shared<const Schema>(std::move(*in_schema));
  Instance input = BuildInput(in_schema_ptr.get());
  auto out = RunUnit(&u_, &*unit, input);
  ASSERT_TRUE(out.ok()) << out.status();
  // One P' per P; defined values use exactly one branch-set each.
  EXPECT_EQ(out->ClassExtent(u_.Intern("P'")).size(), 3u);
  ValueStore& v = u_.values();
  int defined = 0;
  for (Oid o : out->ClassExtent(u_.Intern("P'"))) {
    auto val = out->ValueOf(o);
    if (!val.has_value()) continue;
    ++defined;
    const ValueNode& n = v.node(*val);
    ASSERT_EQ(n.kind, ValueKind::kTuple);
    size_t b1 = v.node(n.fields[0].second).elems.size();
    size_t b2 = v.node(n.fields[1].second).elems.size();
    EXPECT_EQ(b1 + b2, 1u) << "exactly one union branch populated";
  }
  EXPECT_EQ(defined, 2);  // p3 was undefined and stays so
}

TEST_F(UnionCoercionTest, EncodeDecodeRoundTripsUpToIsomorphism) {
  // Encode.
  auto enc = ParseUnit(&u_, kEncode);
  ASSERT_TRUE(enc.ok()) << enc.status();
  auto p_schema = enc->schema.Project({"P"});
  ASSERT_TRUE(p_schema.ok());
  auto p_schema_ptr = std::make_shared<const Schema>(std::move(*p_schema));
  Instance input = BuildInput(p_schema_ptr.get());
  auto encoded = RunUnit(&u_, &*enc, input);
  ASSERT_TRUE(encoded.ok()) << encoded.status();

  // Decode the encoded P'-instance with a separate unit (the decode input
  // carries only P' facts, so fresh P oids are invented).
  auto dec = ParseUnit(&u_, kDecode);
  ASSERT_TRUE(dec.ok()) << dec.status();
  auto decoded = RunUnit(&u_, &*dec, *encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  // Compare original and round-tripped P-instances up to oid renaming.
  Instance original = input.Project(p_schema_ptr);
  Instance round_tripped = decoded->Project(p_schema_ptr);
  EXPECT_TRUE(OIsomorphic(original, round_tripped))
      << "original:\n"
      << original.ToString() << "round-tripped:\n"
      << round_tripped.ToString();
}

}  // namespace
}  // namespace iqlkit
