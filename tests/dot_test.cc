#include "model/dot.h"

#include <gtest/gtest.h>

#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class DotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = u_.types();
    schema_ = std::make_unique<Schema>(&u_);
    ASSERT_TRUE(schema_
                    ->DeclareClass("Node",
                                   t.Tuple({{u_.Intern("name"), t.Base()},
                                            {u_.Intern("succ"),
                                             t.Set(t.ClassNamed("Node"))}}))
                    .ok());
    ASSERT_TRUE(schema_->DeclareRelation("Root", t.ClassNamed("Node")).ok());
  }

  Universe u_;
  std::unique_ptr<Schema> schema_;
};

TEST_F(DotTest, CyclicInstanceRendersCyclicGraph) {
  Instance inst(schema_.get(), &u_);
  ValueStore& v = u_.values();
  auto a = inst.CreateOid("Node");
  auto b = inst.CreateOid("Node");
  ASSERT_TRUE(a.ok() && b.ok());
  inst.NameOid(*a, "alpha");
  ASSERT_TRUE(inst.SetOidValue(
                      *a, v.Tuple({{u_.Intern("name"), v.Const("a")},
                                   {u_.Intern("succ"),
                                    v.Set({v.OfOid(*b)})}}))
                  .ok());
  ASSERT_TRUE(inst.SetOidValue(
                      *b, v.Tuple({{u_.Intern("name"), v.Const("b")},
                                   {u_.Intern("succ"),
                                    v.Set({v.OfOid(*a)})}}))
                  .ok());
  ASSERT_TRUE(inst.AddToRelation("Root", v.OfOid(*a)).ok());

  std::string dot = InstanceToDot(inst, "test");
  EXPECT_NE(dot.find("digraph \"test\""), std::string::npos);
  // Both oid nodes, with label and class.
  EXPECT_NE(dot.find("alpha : Node"), std::string::npos);
  // Both directions of the cycle appear as edges with the attribute path.
  std::string fwd = "oid" + std::to_string(a->raw) + " -> oid" +
                    std::to_string(b->raw);
  std::string bwd = "oid" + std::to_string(b->raw) + " -> oid" +
                    std::to_string(a->raw);
  EXPECT_NE(dot.find(fwd), std::string::npos);
  EXPECT_NE(dot.find(bwd), std::string::npos);
  EXPECT_NE(dot.find("succ{}"), std::string::npos);
  // The relation fact renders as a separate node pointing at alpha.
  EXPECT_NE(dot.find("Root"), std::string::npos);
  EXPECT_NE(dot.find("fact0 -> oid"), std::string::npos);
}

TEST_F(DotTest, UndefinedValuesRenderDashed) {
  Instance inst(schema_.get(), &u_);
  ASSERT_TRUE(inst.CreateOid("Node").ok());
  std::string dot = InstanceToDot(inst);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST_F(DotTest, QuotesEscapedInFactLabels) {
  // Constants appear as text only in relation-fact labels; a quoted
  // constant there must be escaped.
  Schema schema(&u_);
  ASSERT_TRUE(schema.DeclareRelation("Tag", u_.types().Base()).ok());
  Instance inst(&schema, &u_);
  ASSERT_TRUE(
      inst.AddToRelation("Tag", u_.values().Const("say \"hi\"")).ok());
  std::string dot = InstanceToDot(inst);
  EXPECT_EQ(dot.find("say \"hi\""), std::string::npos);
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

}  // namespace
}  // namespace iqlkit
