#include "server/scheduler.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

// Overload soak (the robustness acceptance test): dozens of queries whose
// combined ceilings exceed the global memory budget, under deterministic
// fault injection, across seeds x worker counts. The scheduler must never
// crash, every query must land in exactly one terminal state -- completed
// (possibly after retries), tripped-with-partial, failed on a persistent
// injected fault, or rejected at admission -- and every completed query's
// output must byte-compare equal to a standalone serial run. Run under
// TSan in CI (the scheduler-soak job) to sweep for data races.
namespace iqlkit {
namespace {

using server::QueryClass;
using server::QueryOutcome;
using server::QueryRequest;
using server::QueryResult;
using server::Scheduler;
using server::SchedulerOptions;

constexpr const char* kTransitiveClosure = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  instance {
    E(["a", "b"]); E(["b", "c"]); E(["c", "d"]); E(["d", "e"]);
    E(["e", "f"]); E(["f", "g"]); E(["g", "h"]); E(["h", "i"]);
  }
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

// Diverges by inventing an oid per step; its step ceiling ends it with an
// organic (non-retryable) trip and a rollback partial.
constexpr const char* kDivergent = R"(
  schema { relation R3 : [P, P]; class P : D; }
  instance {
    P(@a); P(@b);
    R3([@a, @b]);
  }
  program {
    R3(y, z) :- R3(x, y).
  }
)";

class SchedulerSoakTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

std::string SerialFacts(const char* source) {
  Universe u;
  auto unit = ParseUnit(&u, source);
  EXPECT_TRUE(unit.ok()) << unit.status();
  Instance input(&unit->schema, &u);
  Status applied = ApplyFacts(*unit, &input);
  EXPECT_TRUE(applied.ok()) << applied;
  EvalOptions options;
  options.num_threads = 1;
  auto result = RunUnit(&u, &*unit, input, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? WriteFacts(*result) : std::string();
}

// Seeds for the sweep: CI's scheduler-soak job widens this through
// IQLKIT_SOAK_SEEDS=n (same convention as the fault-injection soak).
std::vector<uint64_t> SoakSeeds() {
  int n = 3;
  if (const char* env = std::getenv("IQLKIT_SOAK_SEEDS")) {
    n = std::max(1, std::atoi(env));
  }
  std::vector<uint64_t> seeds;
  for (int i = 0; i < n; ++i) seeds.push_back(0x50AC + 17 * i);
  return seeds;
}

void RunSoak(uint64_t seed, size_t workers, bool deterministic) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " workers=" + std::to_string(workers) +
               (deterministic ? " deterministic" : ""));
  // The previous sweep iteration left the global injector armed; the
  // fault-free serial reference must run disabled.
  FaultInjector::Global().Reset();
  std::string reference = SerialFacts(kTransitiveClosure);
  ASSERT_FALSE(reference.empty());

  FaultInjector::Config faults;
  faults.seed = seed;
  faults.p_sched = 0.1;
  faults.p_alloc = 0.002;
  faults.p_trip = 0.002;
  FaultInjector::Global().Configure(faults);

  SchedulerOptions options;
  options.workers = workers;
  options.deterministic = deterministic;
  options.seed = seed;
  options.queue_capacity = 16;  // < the submission burst: some QUEUE_FULL
  options.class_quota[static_cast<int>(QueryClass::kInteractive)] = 8;
  // Every query may individually use 64 KiB, far over 24 queries' share of
  // the global budget, so degradations/preemptions are guaranteed.
  options.global_memory_budget = 192 * 1024;
  options.default_reserve_bytes = 8 * 1024;
  options.max_retries = 2;
  options.retry_base_seconds = deterministic ? 0.01 : 0.0005;

  constexpr int kQueries = 24;
  struct Submitted {
    uint64_t ticket = 0;
    bool admitted = false;
    bool divergent = false;
    Status rejection;
  };
  std::vector<Submitted> submitted;

  uint64_t completed = 0, tripped = 0, failed = 0, rejected = 0;
  {
    Scheduler scheduler(options);
    for (int i = 0; i < kQueries; ++i) {
      Submitted sub;
      sub.divergent = i % 3 == 2;
      QueryRequest request;
      request.id = "q" + std::to_string(i);
      request.source = sub.divergent ? kDivergent : kTransitiveClosure;
      request.cls = i % 4 == 0 ? QueryClass::kInteractive : QueryClass::kBatch;
      request.priority = i % 5;
      request.limits.max_memory_bytes = 64 * 1024;
      if (sub.divergent) request.limits.max_steps_per_stage = 40;
      auto ticket = scheduler.Submit(std::move(request));
      if (ticket.ok()) {
        sub.admitted = true;
        sub.ticket = *ticket;
      } else {
        sub.rejection = ticket.status();
      }
      submitted.push_back(sub);
    }
    for (const auto& sub : submitted) {
      if (!sub.admitted) {
        ++rejected;
        // Rejections are structured backpressure, never a generic error.
        EXPECT_TRUE(sub.rejection.code() == StatusCode::kQueueFull ||
                    sub.rejection.code() == StatusCode::kOverloaded)
            << sub.rejection;
        continue;
      }
      QueryResult result = scheduler.Wait(sub.ticket);
      switch (result.outcome) {
        case QueryOutcome::kCompleted:
          ++completed;
          EXPECT_TRUE(result.status.ok()) << result.status;
          // Byte-identity with the standalone serial run, retries or not.
          if (!sub.divergent) {
            EXPECT_EQ(result.facts, reference);
          }
          break;
        case QueryOutcome::kTrippedPartial:
          ++tripped;
          EXPECT_FALSE(result.status.ok());
          // The rollback partial serializes (at minimum the input facts).
          EXPECT_NE(result.facts.find("instance {"), std::string::npos);
          break;
        case QueryOutcome::kFailed:
          ++failed;
          // Only a persistent injected dispatch fault fails a well-formed
          // query: the status says OVERLOAD and the retry budget was spent.
          EXPECT_EQ(result.status.code(), StatusCode::kOverloaded)
              << result.status;
          EXPECT_EQ(result.attempts, options.max_retries + 1);
          break;
        case QueryOutcome::kRejected:
          ADD_FAILURE() << "Wait() returned kRejected for an admitted query";
          break;
      }
      EXPECT_GE(result.attempts, 1);
      EXPECT_LE(result.attempts, options.max_retries + 1);
    }
    // Every query is in exactly one terminal bucket and the counters agree.
    auto counters = scheduler.counters();
    EXPECT_EQ(counters.submitted, static_cast<uint64_t>(kQueries));
    EXPECT_EQ(counters.admitted + counters.rejected_queue_full +
                  counters.rejected_overload,
              static_cast<uint64_t>(kQueries));
    EXPECT_EQ(counters.completed + counters.tripped_partial + counters.failed,
              counters.admitted);
    EXPECT_EQ(counters.completed, completed);
    EXPECT_EQ(counters.tripped_partial, tripped);
    EXPECT_EQ(counters.failed, failed);
    EXPECT_EQ(counters.rejected_queue_full + counters.rejected_overload,
              rejected);
  }
  EXPECT_EQ(completed + tripped + failed + rejected,
            static_cast<uint64_t>(kQueries));
}

TEST_F(SchedulerSoakTest, OverloadDeterministic) {
  for (uint64_t seed : SoakSeeds()) RunSoak(seed, 1, /*deterministic=*/true);
}

TEST_F(SchedulerSoakTest, OverloadOneWorker) {
  for (uint64_t seed : SoakSeeds()) RunSoak(seed, 1, /*deterministic=*/false);
}

TEST_F(SchedulerSoakTest, OverloadTwoWorkers) {
  for (uint64_t seed : SoakSeeds()) RunSoak(seed, 2, /*deterministic=*/false);
}

TEST_F(SchedulerSoakTest, OverloadEightWorkers) {
  for (uint64_t seed : SoakSeeds()) RunSoak(seed, 8, /*deterministic=*/false);
}

// The deterministic sweep must also *replay*: same seed, same trace.
TEST_F(SchedulerSoakTest, DeterministicSoakTraceReplays) {
  auto run = [](uint64_t seed) {
    FaultInjector::Config faults;
    faults.seed = seed;
    faults.p_sched = 0.1;
    faults.p_alloc = 0.002;
    faults.p_trip = 0.002;
    FaultInjector::Global().Configure(faults);
    std::ostringstream trace;
    SchedulerOptions options;
    options.deterministic = true;
    options.seed = seed;
    options.queue_capacity = 8;
    options.global_memory_budget = 96 * 1024;
    options.default_reserve_bytes = 8 * 1024;
    options.trace = &trace;
    Scheduler scheduler(options);
    for (int i = 0; i < 12; ++i) {
      QueryRequest request;
      request.id = "q" + std::to_string(i);
      request.source = i % 3 == 2 ? kDivergent : kTransitiveClosure;
      if (i % 3 == 2) request.limits.max_steps_per_stage = 30;
      (void)scheduler.Submit(std::move(request));
    }
    scheduler.RunUntilIdle();
    return trace.str();
  };
  for (uint64_t seed : SoakSeeds()) {
    std::string first = run(seed);
    std::string second = run(seed);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

}  // namespace
}  // namespace iqlkit
