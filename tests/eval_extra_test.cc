// Additional evaluator corner cases: names as terms (theta-R = rho(R),
// §3.2), extents of classes as set values, empty programs, multi-stage
// interactions, and the ground-facts dump.

#include <gtest/gtest.h>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class EvalExtraTest : public ::testing::Test {
 protected:
  Result<Instance> Run(std::string_view source,
                       const std::function<void(Instance*)>& fill,
                       EvalOptions options = {}) {
    auto unit = ParseUnit(&u_, source);
    if (!unit.ok()) return unit.status();
    unit_ = std::make_unique<ParsedUnit>(std::move(*unit));
    auto in_schema = unit_->schema.Project(unit_->input_names);
    if (!in_schema.ok()) return in_schema.status();
    in_schema_ = std::make_unique<Schema>(std::move(*in_schema));
    Instance input(in_schema_.get(), &u_);
    fill(&input);
    return RunUnit(&u_, unit_.get(), input, options);
  }

  ValueId C(std::string_view s) { return u_.values().Const(s); }

  Universe u_;
  std::unique_ptr<ParsedUnit> unit_;
  std::unique_ptr<Schema> in_schema_;
};

TEST_F(EvalExtraTest, RelationNameAsTermDenotesItsExtent) {
  // theta-R = rho(R): the relation name used as a term is the *set* of
  // its tuples, so Snapshot collects rho(R) as a single set value.
  auto out = Run(R"(
    schema { relation R : D; relation Snapshot : {D}; }
    input R;
    output Snapshot;
    program {
      Snapshot(R) :- R(x).
    }
  )",
                 [&](Instance* in) {
                   for (const char* c : {"a", "b"}) {
                     ASSERT_TRUE(in->AddToRelation("R", C(c)).ok());
                   }
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  const auto& snap = out->Relation(u_.Intern("Snapshot"));
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(*snap.begin(), u_.values().Set({C("a"), C("b")}));
}

TEST_F(EvalExtraTest, ClassNameAsTermDenotesItsOidSet) {
  auto out = Run(R"(
    schema { class P : D; relation All : {P}; relation Seed : D; }
    input P, Seed;
    output All, P;
    program {
      All(P) :- Seed(x).
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->CreateOid("P").ok());
                   ASSERT_TRUE(in->CreateOid("P").ok());
                   ASSERT_TRUE(in->AddToRelation("Seed", C("go")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  const auto& all = out->Relation(u_.Intern("All"));
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(u_.values().node(*all.begin()).elems.size(), 2u);
}

TEST_F(EvalExtraTest, EmptyProgramIsIdentityOnInput) {
  auto out = Run(R"(
    schema { relation R : D; }
    input R;
    program { }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("a")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->Relation(u_.Intern("R")).size(), 1u);
}

TEST_F(EvalExtraTest, FactOnlyProgram) {
  auto out = Run(R"(
    schema { relation R : [D, D]; }
    input;
    program {
      R("a", "b").
      R("b", "c").
    }
  )",
                 [](Instance*) {});
  // "input;" with no names is a parse error; expect that.
  if (!out.ok()) {
    // Retry without the input clause.
    auto out2 = Run(R"(
      schema { relation R : [D, D]; }
      program {
        R("a", "b").
        R("b", "c").
      }
    )",
                    [](Instance*) {});
    ASSERT_TRUE(out2.ok()) << out2.status();
    EXPECT_EQ(out2->Relation(u_.Intern("R")).size(), 2u);
  } else {
    EXPECT_EQ(out->Relation(u_.Intern("R")).size(), 2u);
  }
}

TEST_F(EvalExtraTest, ConstantsInRuleHeadsEnlargeConstants) {
  // A head constant not present in the input becomes part of
  // constants(I) and is visible to later extents.
  auto out = Run(R"(
    schema { relation R : D; relation S : D; relation T : [D, D]; }
    input R;
    output T;
    program {
      S("tag") :- R(x).
      ;
      # y ranges over constants(I), which now includes "tag".
      T(x, y) :- R(x), y != x.
    }
  )",
                 [&](Instance* in) {
                   ASSERT_TRUE(in->AddToRelation("R", C("a")).ok());
                 });
  ASSERT_TRUE(out.ok()) << out.status();
  Symbol t = u_.Intern("T");
  EXPECT_TRUE(out->RelationContains(
      t, u_.values().Tuple({{PositionalAttr(&u_, 1), C("a")},
                            {PositionalAttr(&u_, 2), C("tag")}})));
}

TEST_F(EvalExtraTest, SemiNaiveMatchesNaiveWithSetValues) {
  // An eligible stage whose facts carry *set* values (derived sets flow
  // through delta positions).
  constexpr std::string_view kSource = R"(
    schema {
      relation In : [D, {D}];
      relation Out : [D, {D}];
      relation Pick : {D};
    }
    input In;
    output Out, Pick;
    program {
      Out(x, Y) :- In(x, Y).
      Pick(Y) :- Out(x, Y), Y(x).
    }
  )";
  auto fill = [&](Instance* in) {
    ValueStore& v = u_.values();
    ASSERT_TRUE(in->AddToRelation(
                        "In", v.Tuple({{PositionalAttr(&u_, 1), C("a")},
                                       {PositionalAttr(&u_, 2),
                                        v.Set({C("a"), C("b")})}}))
                    .ok());
    ASSERT_TRUE(in->AddToRelation(
                        "In", v.Tuple({{PositionalAttr(&u_, 1), C("c")},
                                       {PositionalAttr(&u_, 2),
                                        v.Set({C("b")})}}))
                    .ok());
  };
  auto fast = Run(kSource, fill);
  ASSERT_TRUE(fast.ok()) << fast.status();
  EvalOptions naive;
  naive.enable_seminaive = false;
  auto slow = Run(kSource, fill, naive);
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_EQ(fast->Relation(u_.Intern("Pick")),
            slow->Relation(u_.Intern("Pick")));
  EXPECT_EQ(fast->Relation(u_.Intern("Pick")).size(), 1u);  // {a, b} ∋ a
}

TEST_F(EvalExtraTest, GroundFactsNotation) {
  auto unit = ParseUnit(&u_, R"(
    schema { class P : {D}; relation R : D; }
    instance {
      P(@bag);
      @bag = {"x"};
      R("r");
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  Instance inst(&unit->schema, &u_);
  ASSERT_TRUE(ApplyFacts(*unit, &inst).ok());
  std::string facts = inst.GroundFactsToString();
  EXPECT_NE(facts.find("R(\"r\").\n"), std::string::npos) << facts;
  EXPECT_NE(facts.find("P(bag).\n"), std::string::npos) << facts;
  EXPECT_NE(facts.find("bag^(\"x\").\n"), std::string::npos) << facts;
}

}  // namespace
}  // namespace iqlkit
