#ifndef IQLKIT_TESTS_GOLDEN_RUNNER_H_
#define IQLKIT_TESTS_GOLDEN_RUNNER_H_

#include <set>
#include <string>

// Golden-file harness for the example .iql programs: each
// examples/iql/<name>.iql is evaluated against its embedded instance block
// and the result is compared -- up to O-isomorphism, so oid numbering is
// free to drift -- with tests/golden/<name>.expected, a re-parseable
// instance block produced by WriteFacts. Regenerate with
//   golden_test --regen
// after an intentional semantic change, and review the diff like any other
// code change.
namespace iqlkit::golden {

// Set by golden_test's main when --regen is passed: RunGolden rewrites the
// .expected file instead of comparing against it.
extern bool regen;

// Evaluates examples/iql/<name>.iql and compares (or regenerates) its
// golden. Reports failures through GTest assertions.
void RunGolden(const std::string& name);

// The <name>s of every examples/iql/*.iql (sorted).
std::set<std::string> ListExamples();

// The <name>s of every tests/golden/*.expected (sorted).
std::set<std::string> ListGoldens();

}  // namespace iqlkit::golden

#endif  // IQLKIT_TESTS_GOLDEN_RUNNER_H_
