// EvalMetrics: per-rule and per-round counters on small fixed programs
// where every number is checkable by hand.

#include <memory>
#include <string>
#include <string_view>

#include "gtest/gtest.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/instance.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

constexpr std::string_view kTcSource = R"(
schema {
  relation E  : [D, D];
  relation TC : [D, D];
}
input E;
output TC;
program {
  TC(x, y) :- E(x, y).
  TC(x, z) :- TC(x, y), E(y, z).
}
)";

// A parsed TC unit with E = the chain 1 -> 2 -> ... -> 5.
struct ChainRun {
  ChainRun() {
    auto parsed = ParseUnit(&universe, kTcSource);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    unit = std::make_unique<ParsedUnit>(std::move(*parsed));
    auto in = unit->schema.Project(unit->input_names);
    EXPECT_TRUE(in.ok());
    input_schema = std::make_shared<const Schema>(std::move(*in));
    input = std::make_unique<Instance>(input_schema, &universe);
    ValueStore& v = universe.values();
    for (int a = 1; a <= 4; ++a) {
      ValueId t =
          v.Tuple({{PositionalAttr(&universe, 1), v.ConstInt(a)},
                   {PositionalAttr(&universe, 2), v.ConstInt(a + 1)}});
      EXPECT_TRUE(input->AddToRelation("E", t).ok());
    }
  }

  Universe universe;
  std::unique_ptr<ParsedUnit> unit;
  std::shared_ptr<const Schema> input_schema;
  std::unique_ptr<Instance> input;
};

TEST(EvalMetricsTest, SemiNaiveRoundsAndPerRuleCounts) {
  ChainRun run;
  EvalMetrics metrics;
  EvalOptions options;
  options.metrics = &metrics;
  EvalStats stats;
  auto out = RunUnit(&run.universe, run.unit.get(), *run.input, options,
                     &stats);
  ASSERT_TRUE(out.ok()) << out.status();
  // The 5-chain closes to C(5,2) = 10 TC facts.
  EXPECT_EQ(out->Relation(run.universe.Intern("TC")).size(), 10u);

  // Rounds: the initial full round derives the 4 base facts, then deltas
  // of 3, 2, 1, and an empty round that detects the fixpoint.
  ASSERT_EQ(metrics.rounds.size(), 5u);
  uint64_t expected_delta[] = {4, 3, 2, 1, 0};
  for (size_t i = 0; i < metrics.rounds.size(); ++i) {
    EXPECT_TRUE(metrics.rounds[i].seminaive);
    EXPECT_EQ(metrics.rounds[i].round, i);
    EXPECT_EQ(metrics.rounds[i].delta_facts, expected_delta[i]) << i;
  }
  // Final instance: 4 E facts + 10 TC facts.
  EXPECT_EQ(metrics.rounds.back().total_facts, 14u);
  EXPECT_EQ(stats.steps, 5u);

  // Per rule: the base rule fires once (its body never appears in a
  // delta); the recursive rule runs in every round.
  ASSERT_EQ(metrics.rules.size(), 2u);
  EXPECT_EQ(metrics.rules[0].invocations, 1u);
  EXPECT_EQ(metrics.rules[0].derivations, 4u);
  EXPECT_EQ(metrics.rules[0].facts_added, 4u);
  EXPECT_EQ(metrics.rules[1].invocations, 5u);
  EXPECT_EQ(metrics.rules[1].derivations, 6u);
  EXPECT_EQ(metrics.rules[1].facts_added, 6u);
  EXPECT_NE(metrics.rules[1].text.find(":-"), std::string::npos);

  // The recursive rule's E lookup is served by the hash index.
  EXPECT_GT(metrics.index_probes, 0u);
  EXPECT_GT(metrics.index_hits, 0u);
  EXPECT_GT(metrics.index_builds, 0u);

  std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"rules\":["), std::string::npos);
  EXPECT_NE(json.find("\"delta_facts\":4"), std::string::npos);
}

TEST(EvalMetricsTest, NaiveRoundsWhenSemiNaiveDisabled) {
  ChainRun run;
  EvalMetrics metrics;
  EvalOptions options;
  options.metrics = &metrics;
  options.enable_seminaive = false;
  auto out = RunUnit(&run.universe, run.unit.get(), *run.input, options);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->Relation(run.universe.Intern("TC")).size(), 10u);
  // Naive steps add 4, 3, 2, 1 facts; the empty fifth val-dom returns
  // before a round is recorded.
  ASSERT_EQ(metrics.rounds.size(), 4u);
  uint64_t expected_delta[] = {4, 3, 2, 1};
  for (size_t i = 0; i < metrics.rounds.size(); ++i) {
    EXPECT_FALSE(metrics.rounds[i].seminaive);
    EXPECT_EQ(metrics.rounds[i].delta_facts, expected_delta[i]) << i;
  }
}

TEST(EvalMetricsTest, TogglesDoNotChangeResults) {
  // {indexing, scheduling} off in every combination: identical facts (the
  // program is invention-free, so bit-for-bit equality is required).
  ChainRun base;
  EvalOptions plain;
  plain.enable_indexing = false;
  plain.enable_scheduling = false;
  auto reference = RunUnit(&base.universe, base.unit.get(), *base.input,
                           plain);
  ASSERT_TRUE(reference.ok());
  for (bool indexing : {false, true}) {
    for (bool scheduling : {false, true}) {
      for (bool seminaive : {false, true}) {
        EvalOptions options;
        options.enable_indexing = indexing;
        options.enable_scheduling = scheduling;
        options.enable_seminaive = seminaive;
        auto out = RunUnit(&base.universe, base.unit.get(), *base.input,
                           options);
        ASSERT_TRUE(out.ok());
        EXPECT_TRUE(out->EqualGroundFacts(*reference))
            << "indexing=" << indexing << " scheduling=" << scheduling
            << " seminaive=" << seminaive;
      }
    }
  }
}

TEST(EvalMetricsTest, IndexCountersZeroWhenDisabled) {
  ChainRun run;
  EvalMetrics metrics;
  EvalOptions options;
  options.metrics = &metrics;
  options.enable_indexing = false;
  auto out = RunUnit(&run.universe, run.unit.get(), *run.input, options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(metrics.index_builds, 0u);
  EXPECT_EQ(metrics.index_probes, 0u);
  EXPECT_EQ(metrics.index_hits, 0u);
  for (const RuleMetrics& r : metrics.rules) {
    EXPECT_EQ(r.index_probes, 0u);
  }
}

}  // namespace
}  // namespace iqlkit
