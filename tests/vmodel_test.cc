// §7: the value-based data model -- regular trees, bisimulation equality,
// duplicate elimination, and the phi/psi translations with
// psi(phi(I)) == I (Prop 7.1.4).

#include "vmodel/encode.h"

#include <gtest/gtest.h>

#include "model/universe.h"
#include "vmodel/bisim.h"
#include "vmodel/rtree.h"

namespace iqlkit {
namespace {

class RtreeTest : public ::testing::Test {
 protected:
  SymbolTable syms_;
  TermGraph g_{&syms_};
};

TEST_F(RtreeTest, FiniteValues) {
  RNodeId c = g_.AddConst("x");
  RNodeId t = g_.AddTuple({{syms_.Intern("A"), c}});
  RNodeId s = g_.AddSet({t, c});
  EXPECT_TRUE(g_.Complete(s));
  EXPECT_EQ(g_.ToString(t), "[A: \"x\"]");
}

TEST_F(RtreeTest, CyclesViaPlaceholders) {
  RNodeId self = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillTuple(self, {{syms_.Intern("succ"), self}}).ok());
  EXPECT_TRUE(g_.Complete(self));
  EXPECT_EQ(g_.ToString(self), "#0=[succ: #0]");
}

TEST_F(RtreeTest, IncompleteDetected) {
  RNodeId hole = g_.AddPlaceholder();
  RNodeId t = g_.AddTuple({{syms_.Intern("A"), hole}});
  EXPECT_FALSE(g_.Complete(t));
}

TEST_F(RtreeTest, DoubleFillRejected) {
  RNodeId p = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillConst(p, syms_.Intern("x")).ok());
  EXPECT_FALSE(g_.FillConst(p, syms_.Intern("y")).ok());
}

class BisimTest : public RtreeTest {};

TEST_F(BisimTest, ConstEquality) {
  EXPECT_TRUE(Bisimilar(g_, g_.AddConst("x"), g_.AddConst("x")));
  EXPECT_FALSE(Bisimilar(g_, g_.AddConst("x"), g_.AddConst("y")));
}

TEST_F(BisimTest, UnrolledCycleBisimilarToTightCycle) {
  // #0=[s:#0]  vs  a two-node cycle a=[s:b], b=[s:a]: same infinite tree.
  RNodeId tight = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillTuple(tight, {{syms_.Intern("s"), tight}}).ok());
  RNodeId a = g_.AddPlaceholder();
  RNodeId b = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillTuple(a, {{syms_.Intern("s"), b}}).ok());
  ASSERT_TRUE(g_.FillTuple(b, {{syms_.Intern("s"), a}}).ok());
  EXPECT_TRUE(Bisimilar(g_, tight, a));
  EXPECT_TRUE(Bisimilar(g_, a, b));
}

TEST_F(BisimTest, DifferentPeriodicityDistinguished) {
  // x-cycle of labels (p,q) vs constant label p: different trees.
  Symbol l = syms_.Intern("l");
  Symbol s = syms_.Intern("s");
  RNodeId p2a = g_.AddPlaceholder();
  RNodeId p2b = g_.AddPlaceholder();
  ASSERT_TRUE(
      g_.FillTuple(p2a, {{l, g_.AddConst("p")}, {s, p2b}}).ok());
  ASSERT_TRUE(
      g_.FillTuple(p2b, {{l, g_.AddConst("q")}, {s, p2a}}).ok());
  RNodeId p1 = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillTuple(p1, {{l, g_.AddConst("p")}, {s, p1}}).ok());
  EXPECT_FALSE(Bisimilar(g_, p2a, p1));
  EXPECT_FALSE(Bisimilar(g_, p2a, p2b));
}

TEST_F(BisimTest, SetsCompareAsSets) {
  RNodeId x = g_.AddConst("x");
  RNodeId x2 = g_.AddConst("x");
  RNodeId y = g_.AddConst("y");
  // {x, x', y} == {y, x} since x and x' are bisimilar.
  EXPECT_TRUE(Bisimilar(g_, g_.AddSet({x, x2, y}), g_.AddSet({y, x})));
  EXPECT_FALSE(Bisimilar(g_, g_.AddSet({x}), g_.AddSet({x, y})));
  EXPECT_FALSE(Bisimilar(g_, g_.AddSet({}), g_.AddSet({x})));
}

TEST_F(BisimTest, PlaceholdersAreUnknowns) {
  EXPECT_FALSE(
      Bisimilar(g_, g_.AddPlaceholder(), g_.AddPlaceholder()));
}

TEST_F(BisimTest, UnfoldingOfSelfLoop) {
  Symbol s_attr = syms_.Intern("s");
  RNodeId self = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillTuple(self, {{s_attr, self}}).ok());
  RNodeId root;
  TermGraph u2 = UnfoldToDepth(g_, self, 2, &root);
  // Depth 2: [s: [s: ?]] -- acyclic, frontier becomes a placeholder.
  EXPECT_EQ(u2.ToString(root), "[s: [s: ?]]");
  EXPECT_FALSE(u2.Complete(root));
}

TEST_F(BisimTest, BisimilarNodesUnfoldIdentically) {
  // Property: for bisimilar nodes, the depth-k unfoldings are bisimilar
  // (indeed equal as finite trees) for every k.
  Symbol s = syms_.Intern("s");
  RNodeId tight = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillTuple(tight, {{s, tight}}).ok());
  RNodeId a = g_.AddPlaceholder();
  RNodeId b = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillTuple(a, {{s, b}}).ok());
  ASSERT_TRUE(g_.FillTuple(b, {{s, a}}).ok());
  ASSERT_TRUE(Bisimilar(g_, tight, a));
  for (int depth = 1; depth <= 5; ++depth) {
    RNodeId r1, r2;
    TermGraph u1 = UnfoldToDepth(g_, tight, depth, &r1);
    TermGraph u2 = UnfoldToDepth(g_, a, depth, &r2);
    EXPECT_EQ(u1.ToString(r1), u2.ToString(r2)) << "depth " << depth;
  }
}

TEST_F(BisimTest, NonBisimilarNodesUnfoldDifferentlyAtSomeDepth) {
  Symbol l = syms_.Intern("l");
  Symbol s = syms_.Intern("s");
  RNodeId p2a = g_.AddPlaceholder();
  RNodeId p2b = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillTuple(p2a, {{l, g_.AddConst("p")}, {s, p2b}}).ok());
  ASSERT_TRUE(g_.FillTuple(p2b, {{l, g_.AddConst("q")}, {s, p2a}}).ok());
  RNodeId p1 = g_.AddPlaceholder();
  ASSERT_TRUE(g_.FillTuple(p1, {{l, g_.AddConst("p")}, {s, p1}}).ok());
  bool differs = false;
  for (int depth = 1; depth <= 4 && !differs; ++depth) {
    RNodeId r1, r2;
    TermGraph u1 = UnfoldToDepth(g_, p2a, depth, &r1);
    TermGraph u2 = UnfoldToDepth(g_, p1, depth, &r2);
    differs = u1.ToString(r1) != u2.ToString(r2);
  }
  EXPECT_TRUE(differs);
}

TEST_F(BisimTest, QuotientMergesBisimilarNodes) {
  RNodeId a = g_.AddPlaceholder();
  RNodeId b = g_.AddPlaceholder();
  Symbol s = syms_.Intern("s");
  ASSERT_TRUE(g_.FillTuple(a, {{s, b}}).ok());
  ASSERT_TRUE(g_.FillTuple(b, {{s, a}}).ok());
  std::vector<RNodeId> node_map;
  TermGraph q = QuotientGraph(g_, &node_map);
  EXPECT_EQ(node_map[a], node_map[b]);
  // The quotient is the tight self-loop.
  const RNode& n = q.node(node_map[a]);
  ASSERT_EQ(n.kind, RNodeKind::kTuple);
  EXPECT_EQ(n.fields[0].second, node_map[a]);
}

// ---- psi / phi -------------------------------------------------------------

class EncodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = u_.types();
    schema_ = std::make_shared<Schema>(&u_);
    // A v-schema: nodes carry a name and a set of successor nodes.
    ASSERT_TRUE(schema_
                    ->DeclareClass(
                        "Node",
                        t.Tuple({{u_.Intern("name"), t.Base()},
                                 {u_.Intern("succ"),
                                  t.Set(t.ClassNamed("Node"))}}))
                    .ok());
    ASSERT_TRUE(ValidateVSchema(*schema_).ok());
  }

  // Builds an object instance: a ring of n nodes all named `name`.
  Instance Ring(int n, std::string_view name) {
    Instance inst(schema_.get(), &u_);
    ValueStore& v = u_.values();
    std::vector<Oid> oids;
    for (int i = 0; i < n; ++i) {
      auto o = inst.CreateOid("Node");
      EXPECT_TRUE(o.ok());
      oids.push_back(*o);
    }
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(
          inst.SetOidValue(
                  oids[i],
                  v.Tuple({{u_.Intern("name"), v.Const(name)},
                           {u_.Intern("succ"),
                            v.Set({v.OfOid(oids[(i + 1) % n])})}}))
              .ok());
    }
    return inst;
  }

  Universe u_;
  std::shared_ptr<Schema> schema_;
};

TEST_F(EncodeTest, VSchemaValidation) {
  TypePool& t = u_.types();
  Schema bad1(&u_);
  ASSERT_TRUE(bad1.DeclareClass("P", t.ClassNamed("P")).ok());
  EXPECT_FALSE(ValidateVSchema(bad1).ok());  // bare class name
  Schema bad2(&u_);
  ASSERT_TRUE(
      bad2.DeclareClass("P", t.Union2(t.Base(), t.Set(t.Base()))).ok());
  EXPECT_FALSE(ValidateVSchema(bad2).ok());  // union type
  Schema bad3(&u_);
  ASSERT_TRUE(bad3.DeclareRelation("R", t.Base()).ok());
  EXPECT_FALSE(ValidateVSchema(bad3).ok());  // relations
}

TEST_F(EncodeTest, PsiEliminatesDuplicateValues) {
  // All nodes of a uniformly-labeled ring have the *same* infinite
  // unfolding: psi collapses them into one pure value (the paper: "for oi
  // and oj distinct, vi and vj may be the same").
  Instance ring = Ring(4, "n");
  auto v = Psi(ring);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->classes.at(u_.Intern("Node")).size(), 1u);
}

TEST_F(EncodeTest, PsiKeepsDistinguishableValues) {
  // Distinct names: the two nodes of a 2-ring unfold differently.
  Instance inst(schema_.get(), &u_);
  ValueStore& val = u_.values();
  auto a = inst.CreateOid("Node");
  auto b = inst.CreateOid("Node");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(inst.SetOidValue(
                      *a, val.Tuple({{u_.Intern("name"), val.Const("a")},
                                     {u_.Intern("succ"),
                                      val.Set({val.OfOid(*b)})}}))
                  .ok());
  ASSERT_TRUE(inst.SetOidValue(
                      *b, val.Tuple({{u_.Intern("name"), val.Const("b")},
                                     {u_.Intern("succ"),
                                      val.Set({val.OfOid(*a)})}}))
                  .ok());
  auto v = Psi(inst);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->classes.at(u_.Intern("Node")).size(), 2u);
}

TEST_F(EncodeTest, PsiRequiresTotalNu) {
  Instance inst(schema_.get(), &u_);
  ASSERT_TRUE(inst.CreateOid("Node").ok());
  EXPECT_FALSE(Psi(inst).ok());
}

TEST_F(EncodeTest, PhiRebuildsObjectInstance) {
  // Build the pure value #0=[name:"n", succ:{#0}] directly and phi it.
  VInstance v(&u_.symbols());
  RNodeId self = v.graph.AddPlaceholder();
  ASSERT_TRUE(
      v.graph
          .FillTuple(self, {{u_.Intern("name"), v.graph.AddConst("n")},
                            {u_.Intern("succ"), v.graph.AddSet({self})}})
          .ok());
  v.classes[u_.Intern("Node")] = {self};
  auto inst = Phi(&u_, schema_, v);
  ASSERT_TRUE(inst.ok()) << inst.status();
  ASSERT_EQ(inst->ClassExtent(u_.Intern("Node")).size(), 1u);
  Oid o = *inst->ClassExtent(u_.Intern("Node")).begin();
  std::set<Oid> in_value;
  u_.values().CollectOids(*inst->ValueOf(o), &in_value);
  EXPECT_TRUE(in_value.count(o));  // cyclic through nu
  EXPECT_TRUE(inst->Validate().ok()) << inst->Validate();
}

TEST_F(EncodeTest, Proposition714PsiPhiIdentity) {
  // psi(phi(V)) == V for v-instances V.
  VInstance v(&u_.symbols());
  Symbol name = u_.Intern("name");
  Symbol succ = u_.Intern("succ");
  // Two values: x -> y -> x (2-cycle with distinct names).
  RNodeId x = v.graph.AddPlaceholder();
  RNodeId y = v.graph.AddPlaceholder();
  ASSERT_TRUE(v.graph
                  .FillTuple(x, {{name, v.graph.AddConst("x")},
                                 {succ, v.graph.AddSet({y})}})
                  .ok());
  ASSERT_TRUE(v.graph
                  .FillTuple(y, {{name, v.graph.AddConst("y")},
                                 {succ, v.graph.AddSet({x})}})
                  .ok());
  v.classes[u_.Intern("Node")] = {x, y};

  auto inst = Phi(&u_, schema_, v);
  ASSERT_TRUE(inst.ok()) << inst.status();
  auto back = Psi(*inst);
  ASSERT_TRUE(back.ok()) << back.status();
  Canonicalize(&v);
  EXPECT_TRUE(VInstanceEqual(v, *back));
}

TEST_F(EncodeTest, PhiPsiRoundTripFromObjects) {
  // Starting from objects: phi(psi(I)) is I with duplicates eliminated --
  // isomorphic for duplicate-free I, smaller otherwise.
  Instance two_ring = Ring(2, "n");
  auto v = Psi(two_ring);
  ASSERT_TRUE(v.ok()) << v.status();
  auto rebuilt = Phi(&u_, schema_, *v);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  // The uniformly-labeled 2-ring collapses to one self-loop object.
  EXPECT_EQ(rebuilt->ClassExtent(u_.Intern("Node")).size(), 1u);
  // psi of the rebuilt instance equals psi of the original (same pure
  // values).
  auto v2 = Psi(*rebuilt);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(VInstanceEqual(*v, *v2));
}

TEST_F(EncodeTest, PhiRejectsDanglingClassReference) {
  // A succ-set that references a value not in Node's extent.
  VInstance v(&u_.symbols());
  RNodeId orphan = v.graph.AddTuple(
      {{u_.Intern("name"), v.graph.AddConst("o")},
       {u_.Intern("succ"), v.graph.AddSet({})}});
  RNodeId root = v.graph.AddTuple(
      {{u_.Intern("name"), v.graph.AddConst("r")},
       {u_.Intern("succ"), v.graph.AddSet({orphan})}});
  v.classes[u_.Intern("Node")] = {root};  // orphan not registered
  EXPECT_FALSE(Phi(&u_, schema_, v).ok());
}

}  // namespace
}  // namespace iqlkit
