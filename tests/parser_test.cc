#include "iql/parser.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/diagnostic.h"
#include "iql/lexer.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("R0(x) :- R(x, y).  # comment\n x != y");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kLParen,
                       TokenKind::kIdent, TokenKind::kRParen,
                       TokenKind::kTurnstile, TokenKind::kIdent,
                       TokenKind::kLParen, TokenKind::kIdent,
                       TokenKind::kComma, TokenKind::kIdent,
                       TokenKind::kRParen, TokenKind::kDot,
                       TokenKind::kIdent, TokenKind::kNeq,
                       TokenKind::kIdent, TokenKind::kEof}));
}

TEST(LexerTest, StringsAndInts) {
  auto tokens = Lex("R(\"Adam\", 42)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[2].text, "Adam");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[4].text, "42");
}

TEST(LexerTest, PrimedIdentifiers) {
  auto tokens = Lex("R' x''");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "R'");
  EXPECT_EQ((*tokens)[1].text, "x''");
}

TEST(LexerTest, ErrorsCarryPosition) {
  auto tokens = Lex("R(x)\n  $");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Lex("\"abc").ok());
}

class ParserTest : public ::testing::Test {
 protected:
  Universe u_;
};

TEST_F(ParserTest, ParsesTypes) {
  auto t = ParseTypeText(&u_, "[name: D, kids: {P | Q}]");
  ASSERT_TRUE(t.ok()) << t.status();
  TypePool& types = u_.types();
  EXPECT_EQ(types.ToString(*t), "[name: D, kids: {(P | Q)}]");
}

TEST_F(ParserTest, ParsesPositionalTupleTypes) {
  auto t = ParseTypeText(&u_, "[D, D]");
  ASSERT_TRUE(t.ok());
  // Positional tuples print positionally (re-parseable).
  EXPECT_EQ(u_.types().ToString(*t), "[D, D]");
  // Internally the attributes are #1, #2.
  EXPECT_EQ(u_.Name(u_.types().node(*t).fields[0].first), "#1");
}

TEST_F(ParserTest, RejectsMixedTupleFields) {
  EXPECT_FALSE(ParseTypeText(&u_, "[D, A: D]").ok());
}

TEST_F(ParserTest, ParsesIntersectionAndEmpty) {
  auto t = ParseTypeText(&u_, "(P & Q) | empty");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(u_.types().ToString(*t), "(P & Q)");
}

TEST_F(ParserTest, ParsesSchema) {
  auto s = ParseSchemaText(&u_, R"(
    schema {
      relation R : [D, D];
      class P : [D, {P}];
    }
  )");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_TRUE(s->HasRelation(u_.Intern("R")));
  EXPECT_TRUE(s->HasClass(u_.Intern("P")));
}

TEST_F(ParserTest, SchemaValidatesClassReferences) {
  auto s = ParseSchemaText(&u_, "relation R : Ghost;");
  EXPECT_FALSE(s.ok());
}

TEST_F(ParserTest, ParsesFullUnit) {
  auto unit = ParseUnit(&u_, R"(
    schema {
      relation R  : [D, D];
      relation R0 : D;
    }
    input R;
    output R0;
    program {
      R0(x) :- R(x, y).
      R0(x) :- R(y, x).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->input_names, std::vector<std::string>{"R"});
  EXPECT_EQ(unit->output_names, std::vector<std::string>{"R0"});
  ASSERT_EQ(unit->program.stages.size(), 1u);
  EXPECT_EQ(unit->program.stages[0].size(), 2u);
}

TEST_F(ParserTest, StageSeparator) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation R : D; relation S : D; }
    program {
      S(x) :- R(x).
      ;
      R(x) :- S(x).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->program.stages.size(), 2u);
}

TEST_F(ParserTest, ParsesDerefHeadsAndBodies) {
  auto unit = ParseUnit(&u_, R"(
    schema {
      relation R5 : [D, P];
      class P : {D};
    }
    program {
      z^(y) :- R5(y, z).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  const Rule& rule = unit->program.stages[0][0];
  const Term& lhs = unit->program.term(rule.head.lhs);
  EXPECT_EQ(lhs.kind, Term::Kind::kDeref);
  EXPECT_EQ(u_.Name(lhs.name), "z");
}

TEST_F(ParserTest, ParsesWeakAssignmentHead) {
  auto unit = ParseUnit(&u_, R"(
    schema {
      relation R9 : [D, P, P'];
      class P  : [D, {P}];
      class P' : {P};
    }
    program {
      p^ = [x, q^] :- R9(x, p, q).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  const Rule& rule = unit->program.stages[0][0];
  EXPECT_EQ(rule.head.kind, Literal::Kind::kEquality);
}

TEST_F(ParserTest, ParsesVarDeclarations) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation R : D; relation R1 : {D}; }
    program {
      var X : {D};
      R1(X) :- X = X.
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto it = unit->program.declared_var_types.find(u_.Intern("X"));
  ASSERT_NE(it, unit->program.declared_var_types.end());
  EXPECT_EQ(u_.types().ToString(it->second), "{D}");
}

TEST_F(ParserTest, ParsesNegationAndChoose) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation R : D; relation S : D; class P : D; }
    program {
      S(x) :- R(x), !S(x), choose.
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  const Rule& rule = unit->program.stages[0][0];
  EXPECT_TRUE(rule.has_choose);
  EXPECT_FALSE(rule.body[1].positive);
}

TEST_F(ParserTest, ParsesDeletionRule) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation R : D; relation S : D; }
    program {
      !R(x) :- S(x).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(unit->program.stages[0][0].head_negative);
}

TEST_F(ParserTest, FactRuleWithEmptyBody) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation R1 : {D}; }
    program {
      R1({}).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(unit->program.stages[0][0].body.empty());
}

TEST_F(ParserTest, RejectsUndeclaredHeadPredicate) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation R : D; }
    program { S(x) :- R(x). }
  )");
  EXPECT_FALSE(unit.ok());
}

TEST_F(ParserTest, RejectsPathologicallyDeepTypes) {
  // 300 nested set braces: past the parser's recursion cap, rejected as a
  // proper E006 diagnostic instead of overflowing the C++ stack.
  std::string source = "schema { relation R : ";
  for (int i = 0; i < 300; ++i) source += '{';
  source += 'D';
  for (int i = 0; i < 300; ++i) source += '}';
  source += "; }";
  DiagnosticSink diags;
  auto unit = ParseUnit(&u_, source, &diags);
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("nested deeper"),
            std::string::npos)
      << unit.status();
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.diagnostics().back().code, "E006");
}

TEST_F(ParserTest, RejectsPathologicallyDeepTerms) {
  std::string source = "schema { relation R : {D}; } program { R(";
  for (int i = 0; i < 300; ++i) source += '{';
  source += "\"c\"";
  for (int i = 0; i < 300; ++i) source += '}';
  source += "). }";
  DiagnosticSink diags;
  auto unit = ParseUnit(&u_, source, &diags);
  ASSERT_FALSE(unit.ok());
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.diagnostics().back().code, "E006");
}

TEST_F(ParserTest, RejectsPathologicallyDeepValues) {
  std::string source = "schema { class P : {D}; } instance { @o = ";
  for (int i = 0; i < 300; ++i) source += '{';
  source += "\"c\"";
  for (int i = 0; i < 300; ++i) source += '}';
  source += "; }";
  DiagnosticSink diags;
  auto unit = ParseUnit(&u_, source, &diags);
  ASSERT_FALSE(unit.ok());
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.diagnostics().back().code, "E006");
}

TEST_F(ParserTest, DeepButReasonableNestingStillParses) {
  // Well under the cap: nesting alone must not be rejected.
  std::string source = "schema { relation R : ";
  for (int i = 0; i < 50; ++i) source += '{';
  source += 'D';
  for (int i = 0; i < 50; ++i) source += '}';
  source += "; }";
  auto unit = ParseUnit(&u_, source);
  EXPECT_TRUE(unit.ok()) << unit.status();
}

TEST_F(ParserTest, RoundTripsThroughToString) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation R : [D, D]; relation R0 : D; }
    program {
      R0(x) :- R(x, y), x != y.
    }
  )");
  ASSERT_TRUE(unit.ok());
  std::string text = unit->program.ToString(u_.symbols());
  EXPECT_EQ(text, "R0(x) :- R([x, y]), x != y.\n");
}

}  // namespace
}  // namespace iqlkit
