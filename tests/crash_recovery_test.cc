#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"
#include "server/scheduler.h"
#include "storage/durable.h"

// Crash-recovery soak: kill evaluations at random committed fixpoint steps
// (including repeatedly, on every attempt), recover from the snapshot + WAL
// prefix, and require the resumed run to reproduce the uninterrupted run
// byte-for-byte -- at 1, 2, and 8 evaluation threads -- plus the
// scheduler-level resume paths (restart-served finals, retry-after-storage-
// fault, tripped-partial checkpoints picked up by a later scheduler).
namespace iqlkit {
namespace {

using server::QueryOutcome;
using server::QueryRequest;
using server::QueryResult;
using server::Scheduler;
using server::SchedulerOptions;
using storage::DurabilityConfig;
using storage::QueryDurability;

constexpr const char* kChain = R"(
  schema {
    relation E : [D, D];
    relation TC : [D, D];
    relation Node : D;
    relation Box : [D, P];
    class P : {D};
  }
  instance {
    E(["a", "b"]); E(["b", "c"]); E(["c", "d"]);
    E(["d", "e"]); E(["e", "f"]); E(["f", "g"]);
  }
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
    Node(x) :- E(x, y).
    Node(y) :- E(x, y).
    ;
    Box(x, p) :- Node(x).
    p^(y) :- Box(x, p), TC(x, y).
  }
)";

struct LoadedUnit {
  std::unique_ptr<Universe> u;
  std::unique_ptr<ParsedUnit> unit;
  std::optional<Instance> input;

  std::shared_ptr<const Schema> schema() const {
    return std::shared_ptr<const Schema>(std::shared_ptr<const Schema>(),
                                         &unit->schema);
  }
};

LoadedUnit Load(const char* source) {
  LoadedUnit l;
  l.u = std::make_unique<Universe>();
  auto unit = ParseUnit(l.u.get(), source);
  EXPECT_TRUE(unit.ok()) << unit.status();
  if (!unit.ok()) return l;
  l.unit = std::make_unique<ParsedUnit>(std::move(*unit));
  Instance input(&l.unit->schema, l.u.get());
  Status applied = ApplyFacts(*l.unit, &input);
  EXPECT_TRUE(applied.ok()) << applied;
  l.input.emplace(std::move(input));
  return l;
}

// Naive-only evaluation options: with semi-naive off the step counter is an
// exact program counter, so "never re-derives" is an equality, not a bound.
EvalOptions NaiveOptions(uint32_t threads) {
  EvalOptions options;
  options.num_threads = threads;
  options.enable_seminaive = false;
  return options;
}

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/iqlkit_crash_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Persists the first `frames` commits, then fails like a dying process.
class CrashAfter : public StepCommitSink {
 public:
  CrashAfter(QueryDurability* d, uint64_t frames) : d_(d), frames_(frames) {}
  Status OnStepCommit(const StepCommit& commit) override {
    if (seen_ == frames_) return UnavailableError("simulated crash");
    ++seen_;
    return d_->OnStepCommit(commit);
  }

 private:
  QueryDurability* d_;
  uint64_t frames_;
  uint64_t seen_ = 0;
};

// One uninterrupted durable run: reference facts and exact step count.
void Reference(uint32_t threads, std::string* facts, uint64_t* steps) {
  LoadedUnit l = Load(kChain);
  EvalStats stats;
  auto out = EvaluateProgram(l.u.get(), l.unit->schema, &l.unit->program,
                             *l.input, NaiveOptions(threads), &stats);
  ASSERT_TRUE(out.ok()) << out.status();
  *facts = WriteFacts(*out);
  *steps = stats.steps;
}

// Crash once after `crash_at` committed frames, then recover and resume to
// completion; the output must match `reference` byte-for-byte and the
// resumed attempt must execute exactly the steps the crash skipped.
void CrashResumeOnce(uint32_t threads, uint64_t crash_at,
                     const std::string& reference, uint64_t full_steps,
                     const std::string& dir) {
  {
    LoadedUnit l = Load(kChain);
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    ASSERT_TRUE(d.active()) << d.warning();
    ASSERT_TRUE(d.BeginRun(*l.input).ok());
    CrashAfter sink(&d, crash_at);
    EvalOptions options = NaiveOptions(threads);
    options.durability.sink = &sink;
    auto out = EvaluateProgram(l.u.get(), l.unit->schema, &l.unit->program,
                               *l.input, options);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
  }
  LoadedUnit l = Load(kChain);
  QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
  auto rec = d.Recover(l.schema(), l.schema(), l.u.get());
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_TRUE(rec->has_value());
  ASSERT_FALSE((*rec)->complete);
  EXPECT_EQ((*rec)->frames_replayed, crash_at);

  EvalStats stats;
  EvalOptions options = NaiveOptions(threads);
  options.durability.sink = &d;
  options.durability.resume = true;
  options.durability.resume_stage = (*rec)->resume_stage;
  options.durability.resume_step = (*rec)->resume_step;
  auto out = EvaluateProgram(l.u.get(), l.unit->schema, &l.unit->program,
                             (*rec)->instance, options, &stats);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(WriteFacts(*out), reference)
      << "threads=" << threads << " crash_at=" << crash_at;
  // Never re-derives: committed steps + resumed steps == uninterrupted
  // steps, exactly.
  EXPECT_EQ(crash_at + stats.steps, full_steps)
      << "threads=" << threads << " crash_at=" << crash_at;
}

void SoakAtThreads(uint32_t threads) {
  std::string reference;
  uint64_t full_steps = 0;
  Reference(threads, &reference, &full_steps);
  ASSERT_GT(full_steps, 2u);

  std::mt19937_64 rng(0x9E3779B97F4A7C15ull ^ threads);
  for (int round = 0; round < 6; ++round) {
    uint64_t crash_at = 1 + rng() % (full_steps - 1);
    CrashResumeOnce(threads, crash_at, reference, full_steps,
                    TestDir("soak_t" + std::to_string(threads) + "_r" +
                            std::to_string(round)));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashRecoverySoak, KillAtRandomCommittedStepsSerial) { SoakAtThreads(1); }
TEST(CrashRecoverySoak, KillAtRandomCommittedStepsTwoThreads) {
  SoakAtThreads(2);
}
TEST(CrashRecoverySoak, KillAtRandomCommittedStepsEightThreads) {
  SoakAtThreads(8);
}

TEST(CrashRecoverySoak, CrashOnEveryAttemptStillConverges) {
  // The adversarial schedule: every attempt dies after committing exactly
  // one more frame. Progress is one step per attempt, but the final output
  // must still be byte-identical to the uninterrupted run.
  std::string reference;
  uint64_t full_steps = 0;
  Reference(1, &reference, &full_steps);
  std::string dir = TestDir("every_attempt");

  {
    LoadedUnit l = Load(kChain);
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    ASSERT_TRUE(d.BeginRun(*l.input).ok());
  }
  std::string final_facts;
  uint64_t attempts = 0;
  for (; attempts < 4 * full_steps; ++attempts) {
    LoadedUnit l = Load(kChain);
    QueryDurability d = QueryDurability::Open(dir, DurabilityConfig());
    auto rec = d.Recover(l.schema(), l.schema(), l.u.get());
    ASSERT_TRUE(rec.ok()) << rec.status();
    EvalOptions options = NaiveOptions(1);
    options.durability.resume = rec->has_value();
    CrashAfter sink(&d, 1);
    options.durability.sink = &sink;
    const Instance* input = &*l.input;
    if (rec->has_value()) {
      options.durability.resume_stage = (*rec)->resume_stage;
      options.durability.resume_step = (*rec)->resume_step;
      input = &(*rec)->instance;
    }
    auto out = EvaluateProgram(l.u.get(), l.unit->schema, &l.unit->program,
                               *input, options);
    if (out.ok()) {
      final_facts = WriteFacts(*out);
      break;
    }
    ASSERT_EQ(out.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(final_facts, reference);
  EXPECT_GE(attempts, full_steps - 2);  // real one-step-per-attempt progress
}

// ---- scheduler-level resume paths ----------------------------------------

class SchedulerDurabilityTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

QueryRequest MakeRequest(const std::string& id, const char* source) {
  QueryRequest request;
  request.id = id;
  request.source = source;
  return request;
}

std::string SerialFacts(const char* source, uint64_t* steps = nullptr) {
  LoadedUnit l = Load(source);
  EvalStats stats;
  EvalOptions options;
  options.num_threads = 1;
  auto result = RunUnit(l.u.get(), l.unit.get(), *l.input, options, &stats);
  EXPECT_TRUE(result.ok()) << result.status();
  if (steps != nullptr) *steps = stats.steps;
  return result.ok() ? WriteFacts(*result) : std::string();
}

TEST_F(SchedulerDurabilityTest, FinishedQueryIsServedFromSnapshotAfterRestart) {
  std::string reference = SerialFacts(kChain);
  std::string dir = TestDir("sched_restart");
  SchedulerOptions options;
  options.deterministic = true;
  options.data_dir = dir;
  {
    Scheduler scheduler(options);
    auto ticket = scheduler.Submit(MakeRequest("tc", kChain));
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    QueryResult result = scheduler.Wait(*ticket);
    EXPECT_EQ(result.outcome, QueryOutcome::kCompleted);
    EXPECT_FALSE(result.resumed);
    EXPECT_EQ(result.facts, reference);
  }
  {
    // Same data dir, fresh scheduler: the final snapshot answers without a
    // single evaluation step.
    Scheduler scheduler(options);
    auto ticket = scheduler.Submit(MakeRequest("tc", kChain));
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    QueryResult result = scheduler.Wait(*ticket);
    EXPECT_EQ(result.outcome, QueryOutcome::kCompleted);
    EXPECT_TRUE(result.resumed);
    EXPECT_EQ(result.stats.steps, 0u);
    EXPECT_EQ(result.facts, reference);
  }
}

TEST_F(SchedulerDurabilityTest, TrippedPartialIsCheckpointedAndResumedLater) {
  uint64_t full_steps = 0;
  std::string reference = SerialFacts(kChain, &full_steps);
  std::string dir = TestDir("sched_trip");
  {
    // A tight step budget trips the governor; the scheduler checkpoints the
    // rolled-back partial on drain.
    SchedulerOptions options;
    options.deterministic = true;
    options.data_dir = dir;
    Scheduler scheduler(options);
    QueryRequest request = MakeRequest("tc", kChain);
    request.limits.max_steps_per_stage = 2;
    auto ticket = scheduler.Submit(std::move(request));
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    QueryResult result = scheduler.Wait(*ticket);
    EXPECT_EQ(result.outcome, QueryOutcome::kTrippedPartial);
  }
  {
    // A later scheduler (an operator re-admitting the preempted/degraded
    // query with a saner budget) resumes from the checkpoint: it never
    // re-derives the committed prefix.
    SchedulerOptions options;
    options.deterministic = true;
    options.data_dir = dir;
    Scheduler scheduler(options);
    auto ticket = scheduler.Submit(MakeRequest("tc", kChain));
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    QueryResult result = scheduler.Wait(*ticket);
    EXPECT_EQ(result.outcome, QueryOutcome::kCompleted);
    EXPECT_TRUE(result.resumed);
    EXPECT_GT(result.resume_step, 0u);
    EXPECT_LT(result.stats.steps, full_steps);
    EXPECT_EQ(result.facts, reference);
  }
}

TEST_F(SchedulerDurabilityTest, StorageFaultsRetryWithBackoffAndResume) {
  std::string reference = SerialFacts(kChain);
  bool saw_resumed_retry = false;
  for (uint64_t seed = 1; seed <= 12 && !saw_resumed_retry; ++seed) {
    FaultInjector::Config faults;
    faults.seed = seed;
    faults.p_storage = 0.25;
    FaultInjector::Global().Configure(faults);

    SchedulerOptions options;
    options.deterministic = true;
    options.data_dir = TestDir("sched_fault_" + std::to_string(seed));
    options.max_retries = 10;
    options.retry_base_seconds = 0.001;
    Scheduler scheduler(options);
    auto ticket = scheduler.Submit(MakeRequest("tc", kChain));
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    QueryResult result = scheduler.Wait(*ticket);
    if (result.outcome != QueryOutcome::kCompleted) {
      // This seed exhausted the retry budget; its final status must still
      // be the transient storage classification.
      EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
      continue;
    }
    EXPECT_EQ(result.facts, reference) << "seed=" << seed;
    if (result.attempts > 1 && result.resumed && result.resume_step > 0) {
      saw_resumed_retry = true;
    }
  }
  FaultInjector::Global().Reset();
  // At p=0.25 some seed must have faulted mid-run and then resumed from the
  // durable prefix rather than starting over.
  EXPECT_TRUE(saw_resumed_retry);
}

TEST_F(SchedulerDurabilityTest, UnwritableDataDirDegradesWithWarning) {
  std::string reference = SerialFacts(kChain);
  SchedulerOptions options;
  options.deterministic = true;
  options.data_dir = "/dev/null/iqlkit";
  Scheduler scheduler(options);
  auto ticket = scheduler.Submit(MakeRequest("tc", kChain));
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  QueryResult result = scheduler.Wait(*ticket);
  EXPECT_EQ(result.outcome, QueryOutcome::kCompleted);
  EXPECT_EQ(result.facts, reference);
  EXPECT_FALSE(result.storage_warning.empty());
  EXPECT_FALSE(result.resumed);
}

}  // namespace
}  // namespace iqlkit
