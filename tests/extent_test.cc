// The type-extent enumerator: how unrestricted variables range (§3.2's
// "constants from constants(I)" valuation condition).

#include "iql/extent.h"

#include <gtest/gtest.h>

#include "model/universe.h"

namespace iqlkit {
namespace {

class ExtentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypePool& t = u_.types();
    schema_ = std::make_unique<Schema>(&u_);
    ASSERT_TRUE(schema_->DeclareRelation("R", t.Base()).ok());
    ASSERT_TRUE(schema_->DeclareClass("P", t.Base()).ok());
    ASSERT_TRUE(schema_->DeclareClass("Q", t.Base()).ok());
    inst_ = std::make_unique<Instance>(schema_.get(), &u_);
    for (const char* c : {"a", "b", "c"}) {
      ASSERT_TRUE(inst_->AddToRelation("R", u_.values().Const(c)).ok());
    }
    ASSERT_TRUE(inst_->CreateOid("P").ok());
    ASSERT_TRUE(inst_->CreateOid("P").ok());
  }

  Universe u_;
  std::unique_ptr<Schema> schema_;
  std::unique_ptr<Instance> inst_;
};

TEST_F(ExtentTest, BaseIsConstantsOfInstance) {
  ExtentEnumerator e(inst_.get(), 1000);
  auto ext = e.Enumerate(u_.types().Base());
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ((*ext)->size(), 3u);
}

TEST_F(ExtentTest, ClassIsItsCurrentOids) {
  ExtentEnumerator e(inst_.get(), 1000);
  auto p = e.Enumerate(u_.types().ClassNamed("P"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->size(), 2u);
  auto q = e.Enumerate(u_.types().ClassNamed("Q"));
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE((*q)->empty());
}

TEST_F(ExtentTest, SetTypeIsPowerset) {
  ExtentEnumerator e(inst_.get(), 1000);
  auto ext = e.Enumerate(u_.types().Set(u_.types().Base()));
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ((*ext)->size(), 8u);  // 2^3
}

TEST_F(ExtentTest, TupleTypeIsCrossProduct) {
  TypePool& t = u_.types();
  ExtentEnumerator e(inst_.get(), 1000);
  auto ext = e.Enumerate(
      t.Tuple({{u_.Intern("A"), t.Base()}, {u_.Intern("B"), t.Base()}}));
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ((*ext)->size(), 9u);  // 3 x 3
}

TEST_F(ExtentTest, UnionUnions) {
  TypePool& t = u_.types();
  ExtentEnumerator e(inst_.get(), 1000);
  auto ext = e.Enumerate(t.Union2(t.Base(), t.ClassNamed("P")));
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ((*ext)->size(), 5u);  // 3 constants + 2 oids
}

TEST_F(ExtentTest, IntersectionEliminatedFirst) {
  TypePool& t = u_.types();
  ExtentEnumerator e(inst_.get(), 1000);
  // P & Q over a disjoint assignment: empty.
  auto ext = e.Enumerate(t.Intersect2(t.ClassNamed("P"),
                                      t.ClassNamed("Q")));
  ASSERT_TRUE(ext.ok());
  EXPECT_TRUE((*ext)->empty());
}

TEST_F(ExtentTest, BudgetGuardsExponentialTypes) {
  TypePool& t = u_.types();
  ExtentEnumerator e(inst_.get(), 10);
  // {{D}} has 2^(2^3) = 256 members: over a budget of 10.
  auto ext = e.Enumerate(t.Set(t.Set(t.Base())));
  ASSERT_FALSE(ext.ok());
  EXPECT_EQ(ext.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ExtentTest, ResultsAreCachedAndDeterministic) {
  ExtentEnumerator e(inst_.get(), 1000);
  auto a = e.Enumerate(u_.types().Set(u_.types().Base()));
  auto b = e.Enumerate(u_.types().Set(u_.types().Base()));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);  // same cached pointer
  ExtentEnumerator e2(inst_.get(), 1000);
  auto c = e2.Enumerate(u_.types().Set(u_.types().Base()));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(**a, **c);  // same deterministic contents
}

TEST_F(ExtentTest, EmptyTypeEmptyExtent) {
  ExtentEnumerator e(inst_.get(), 1000);
  auto ext = e.Enumerate(u_.types().Empty());
  ASSERT_TRUE(ext.ok());
  EXPECT_TRUE((*ext)->empty());
}

}  // namespace
}  // namespace iqlkit
