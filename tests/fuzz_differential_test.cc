// Randomized differential testing: generate random safe Datalog programs
// (negation over EDB relations only, so inflationary and stratified
// semantics coincide), run them through BOTH the IQL naive inflationary
// evaluator and the flat relational engine, and require identical results.
// This cross-checks the entire IQL pipeline -- parser, type inference,
// solver, valuation-domain filter, fixpoint -- against an independent
// implementation on the shared fragment (§3.4).

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "datalog/datalog.h"
#include "iql/eval.h"
#include "iql/il.h"
#include "iql/ilcheck.h"
#include "iql/ilopt.h"
#include "iql/parser.h"
#include "iql/typecheck.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

struct GenAtom {
  int relation;              // index into relations
  std::vector<int> vars;     // variable ids
};

struct GenRule {
  GenAtom head;
  std::vector<GenAtom> body;      // positive
  std::vector<GenAtom> negated;   // EDB only
};

struct GenProgram {
  // Relations 0..1: binary EDB; 2: unary EDB; 3..4: binary IDB; 5: unary
  // IDB.
  static constexpr int kRelations = 6;
  static int Arity(int r) { return (r == 2 || r == 5) ? 1 : 2; }
  static bool IsEdb(int r) { return r < 3; }
  static const char* Name(int r) {
    static const char* kNames[] = {"E1", "E2", "U", "I1", "I2", "J"};
    return kNames[r];
  }

  std::vector<GenRule> rules;
};

GenProgram GenerateProgram(std::mt19937* rng) {
  GenProgram prog;
  std::uniform_int_distribution<int> rule_count(2, 5);
  std::uniform_int_distribution<int> body_count(1, 3);
  std::uniform_int_distribution<int> any_rel(0, GenProgram::kRelations - 1);
  std::uniform_int_distribution<int> idb_rel(3, 5);
  std::uniform_int_distribution<int> edb_rel(0, 2);
  std::uniform_int_distribution<int> var(0, 3);
  std::uniform_int_distribution<int> coin(0, 3);
  int n = rule_count(*rng);
  for (int i = 0; i < n; ++i) {
    GenRule rule;
    // Positive body.
    int k = body_count(*rng);
    std::set<int> positive_vars;
    for (int j = 0; j < k; ++j) {
      GenAtom atom;
      atom.relation = any_rel(*rng);
      for (int a = 0; a < GenProgram::Arity(atom.relation); ++a) {
        int v = var(*rng);
        atom.vars.push_back(v);
        positive_vars.insert(v);
      }
      rule.body.push_back(atom);
    }
    // Head over covered variables only (safety).
    std::vector<int> covered(positive_vars.begin(), positive_vars.end());
    GenAtom head;
    head.relation = idb_rel(*rng);
    for (int a = 0; a < GenProgram::Arity(head.relation); ++a) {
      head.vars.push_back(
          covered[(*rng)() % covered.size()]);
    }
    rule.head = head;
    // Occasionally one negated EDB atom over covered variables.
    if (coin(*rng) == 0) {
      GenAtom neg;
      neg.relation = edb_rel(*rng);
      for (int a = 0; a < GenProgram::Arity(neg.relation); ++a) {
        neg.vars.push_back(covered[(*rng)() % covered.size()]);
      }
      rule.negated.push_back(neg);
    }
    prog.rules.push_back(rule);
  }
  return prog;
}

std::string ToIqlSource(const GenProgram& prog) {
  std::ostringstream out;
  out << "schema {\n";
  for (int r = 0; r < GenProgram::kRelations; ++r) {
    out << "  relation " << GenProgram::Name(r) << " : "
        << (GenProgram::Arity(r) == 1 ? "D" : "[D, D]") << ";\n";
  }
  out << "}\ninput E1, E2, U;\nprogram {\n";
  auto atom = [&](const GenAtom& a) {
    out << GenProgram::Name(a.relation) << "(";
    for (size_t i = 0; i < a.vars.size(); ++i) {
      if (i) out << ", ";
      out << "v" << a.vars[i];
    }
    out << ")";
  };
  for (const GenRule& rule : prog.rules) {
    atom(rule.head);
    out << " :- ";
    bool first = true;
    for (const GenAtom& a : rule.body) {
      if (!first) out << ", ";
      first = false;
      atom(a);
    }
    for (const GenAtom& a : rule.negated) {
      out << ", !";
      atom(a);
    }
    out << ".\n";
  }
  out << "}\n";
  return out.str();
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzDifferentialTest, IqlMatchesDatalogOnRandomPrograms) {
  std::mt19937 rng(GetParam() * 2654435761u + 1);
  GenProgram prog = GenerateProgram(&rng);

  // Random EDB facts over a small constant domain.
  int domain = 4 + rng() % 4;
  std::uniform_int_distribution<int> constant(0, domain - 1);
  std::vector<std::vector<std::vector<int>>> edb(3);
  for (int r = 0; r < 3; ++r) {
    int facts = 3 + rng() % 6;
    for (int f = 0; f < facts; ++f) {
      std::vector<int> t;
      for (int a = 0; a < GenProgram::Arity(r); ++a) {
        t.push_back(constant(rng));
      }
      edb[r].push_back(t);
    }
  }

  // --- Datalog run ---
  datalog::Database db;
  std::vector<int> rel_ids;
  for (int r = 0; r < GenProgram::kRelations; ++r) {
    rel_ids.push_back(
        *db.AddRelation(GenProgram::Name(r), GenProgram::Arity(r)));
  }
  datalog::Program dprog;
  for (const GenRule& rule : prog.rules) {
    datalog::Rule dr;
    auto convert = [&](const GenAtom& a) {
      datalog::Atom atom;
      atom.relation = rel_ids[a.relation];
      for (int v : a.vars) atom.terms.push_back(datalog::Term::Var(v));
      return atom;
    };
    dr.head = convert(rule.head);
    for (const GenAtom& a : rule.body) dr.body.push_back(convert(a));
    for (const GenAtom& a : rule.negated) {
      dr.negated.push_back(convert(a));
    }
    dprog.rules.push_back(dr);
  }
  for (int r = 0; r < 3; ++r) {
    for (const auto& t : edb[r]) {
      datalog::Tuple tuple;
      for (int c : t) tuple.push_back(db.InternConstant(c));
      db.AddFact(rel_ids[r], std::move(tuple));
    }
  }
  ASSERT_TRUE(
      datalog::Evaluate(dprog, &db, datalog::EvalMode::kSemiNaive).ok());

  // --- IQL run ---
  Universe u;
  std::string source = ToIqlSource(prog);
  auto unit = ParseUnit(&u, source);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\n" << source;
  auto in_schema = unit->schema.Project({"E1", "E2", "U"});
  ASSERT_TRUE(in_schema.ok());
  Instance input(std::make_shared<const Schema>(std::move(*in_schema)), &u);
  ValueStore& v = u.values();
  for (int r = 0; r < 3; ++r) {
    for (const auto& t : edb[r]) {
      ValueId fact;
      if (t.size() == 1) {
        fact = v.ConstInt(t[0]);
      } else {
        fact = v.Tuple({{PositionalAttr(&u, 1), v.ConstInt(t[0])},
                        {PositionalAttr(&u, 2), v.ConstInt(t[1])}});
      }
      ASSERT_TRUE(
          input.AddToRelation(GenProgram::Name(r), fact).ok());
    }
  }
  auto out = RunUnit(&u, &*unit, input);
  ASSERT_TRUE(out.ok()) << out.status() << "\n" << source;

  // The delta-driven mode must agree bit-for-bit with the naive operator.
  EvalOptions naive_only;
  naive_only.enable_seminaive = false;
  auto out_naive = RunUnit(&u, &*unit, input, naive_only);
  ASSERT_TRUE(out_naive.ok()) << out_naive.status() << "\n" << source;
  for (int r = 3; r < GenProgram::kRelations; ++r) {
    EXPECT_EQ(out->Relation(u.Intern(GenProgram::Name(r))),
              out_naive->Relation(u.Intern(GenProgram::Name(r))))
        << "semi-naive vs naive divergence, seed " << GetParam() << "\n"
        << source;
  }

  // Indexing and scheduling are pure optimizations: turning both off (the
  // default `out` runs with both on) must not change a single fact.
  EvalOptions plain;
  plain.enable_indexing = false;
  plain.enable_scheduling = false;
  auto out_plain = RunUnit(&u, &*unit, input, plain);
  ASSERT_TRUE(out_plain.ok()) << out_plain.status() << "\n" << source;
  for (int r = 3; r < GenProgram::kRelations; ++r) {
    EXPECT_EQ(out->Relation(u.Intern(GenProgram::Name(r))),
              out_plain->Relation(u.Intern(GenProgram::Name(r))))
        << "indexed vs plain divergence, seed " << GetParam() << "\n"
        << source;
  }

  // Worker-pool parallel enumeration must be invisible: a randomized
  // thread count (2..8) with fan-out forced on even tiny candidate lists
  // yields the same facts as the serial default run. Relational facts are
  // rehomed into the shared store at merge time, so id-level set equality
  // is the right comparison.
  EvalOptions parallel;
  parallel.num_threads = 2 + rng() % 7;
  parallel.parallel_min_candidates = 1;
  auto out_parallel = RunUnit(&u, &*unit, input, parallel);
  ASSERT_TRUE(out_parallel.ok()) << out_parallel.status() << "\n" << source;
  for (int r = 3; r < GenProgram::kRelations; ++r) {
    EXPECT_EQ(out->Relation(u.Intern(GenProgram::Name(r))),
              out_parallel->Relation(u.Intern(GenProgram::Name(r))))
        << "parallel (" << parallel.num_threads
        << " threads) vs serial divergence, seed " << GetParam() << "\n"
        << source;
  }

  // Every rule this fuzzer generates must compile to verifier-clean IL,
  // and the optimizer must keep it that way: optimize each lowering the
  // evaluator can request (full and delta variants) and re-run the
  // verifier on the output. A fresh universe keeps the front end here
  // independent of the evaluation runs above.
  {
    Universe u2;
    auto unit2 = ParseUnit(&u2, source);
    ASSERT_TRUE(unit2.ok()) << unit2.status() << "\n" << source;
    ASSERT_TRUE(TypeCheck(&u2, unit2->schema, &unit2->program).ok());
    const Program& p = unit2->program;
    for (const auto& stage : p.stages) {
      for (const Rule& rule : stage) {
        std::vector<size_t> variants = {il::kNoDelta};
        for (size_t d = 0; d < rule.body.size(); ++d) {
          const Literal& lit = rule.body[d];
          if (lit.kind == Literal::Kind::kMembership && lit.positive &&
              p.term(lit.lhs).kind == Term::Kind::kRelName) {
            variants.push_back(d);
          }
        }
        for (size_t delta : variants) {
          auto cr = il::CompileRule(p, rule, delta);
          if (!cr.has_value()) continue;
          auto violations = il::VerifyRule(*cr);
          EXPECT_TRUE(violations.empty())
              << "compiled IL fails verification: " << violations[0].detail
              << ", seed " << GetParam() << "\n" << source;
          il::OptResult opt = il::OptimizeRule(*cr);
          auto opt_violations = il::VerifyRule(opt.rule);
          EXPECT_TRUE(opt_violations.empty())
              << "optimized IL fails verification: "
              << opt_violations[0].detail << ", seed " << GetParam() << "\n"
              << source;
          // The fusion pass must keep the verifier happy on both raw and
          // optimized input, and must be idempotent.
          for (const il::CompiledRule* base : {&*cr, &opt.rule}) {
            il::FuseResult fused = il::FuseRule(*base);
            auto fused_violations = il::VerifyRule(fused.rule);
            EXPECT_TRUE(fused_violations.empty())
                << "fused IL fails verification: "
                << fused_violations[0].detail << ", seed " << GetParam()
                << "\n" << source;
            il::FuseResult again = il::FuseRule(fused.rule);
            EXPECT_EQ(again.fused_keyed_scans, 0u);
            EXPECT_EQ(again.fused_destructures, 0u);
            EXPECT_EQ(again.fused_cmp_chains, 0u);
          }
        }
      }
    }
  }

  // The register VM must be byte-equivalent to the tree-walker: serial,
  // under the naive operator, inside the worker-pool fan-out with a
  // randomized thread count, and with the IL optimizer on in each of
  // those configurations.
  {
    EvalOptions vm;
    vm.engine = EvalOptions::Engine::kVm;
    auto out_vm = RunUnit(&u, &*unit, input, vm);
    ASSERT_TRUE(out_vm.ok()) << out_vm.status() << "\n" << source;
    vm.enable_seminaive = false;
    auto out_vm_naive = RunUnit(&u, &*unit, input, vm);
    ASSERT_TRUE(out_vm_naive.ok()) << out_vm_naive.status() << "\n" << source;
    vm.enable_seminaive = true;
    vm.num_threads = 2 + rng() % 7;
    vm.parallel_min_candidates = 1;
    auto out_vm_par = RunUnit(&u, &*unit, input, vm);
    ASSERT_TRUE(out_vm_par.ok()) << out_vm_par.status() << "\n" << source;
    EvalOptions vm_opt;
    vm_opt.engine = EvalOptions::Engine::kVm;
    vm_opt.il_opt = true;
    auto out_opt = RunUnit(&u, &*unit, input, vm_opt);
    ASSERT_TRUE(out_opt.ok()) << out_opt.status() << "\n" << source;
    vm_opt.enable_seminaive = false;
    auto out_opt_naive = RunUnit(&u, &*unit, input, vm_opt);
    ASSERT_TRUE(out_opt_naive.ok())
        << out_opt_naive.status() << "\n" << source;
    vm_opt.enable_seminaive = true;
    vm_opt.num_threads = vm.num_threads;
    vm_opt.parallel_min_candidates = 1;
    auto out_opt_par = RunUnit(&u, &*unit, input, vm_opt);
    ASSERT_TRUE(out_opt_par.ok()) << out_opt_par.status() << "\n" << source;
    // The fused tier (optimizer + superinstruction fusion), serially and
    // under the fan-out, and once more on the portable switch dispatch.
    EvalOptions vm_fused;
    vm_fused.engine = EvalOptions::Engine::kVm;
    vm_fused.il_opt = true;
    vm_fused.il_fuse = true;
    auto out_fused = RunUnit(&u, &*unit, input, vm_fused);
    ASSERT_TRUE(out_fused.ok()) << out_fused.status() << "\n" << source;
    vm_fused.num_threads = vm.num_threads;
    vm_fused.parallel_min_candidates = 1;
    auto out_fused_par = RunUnit(&u, &*unit, input, vm_fused);
    ASSERT_TRUE(out_fused_par.ok())
        << out_fused_par.status() << "\n" << source;
    vm_fused.num_threads = 1;
    vm_fused.dispatch = EvalOptions::Dispatch::kSwitch;
    auto out_fused_sw = RunUnit(&u, &*unit, input, vm_fused);
    ASSERT_TRUE(out_fused_sw.ok()) << out_fused_sw.status() << "\n" << source;
    for (int r = 3; r < GenProgram::kRelations; ++r) {
      Symbol name = u.Intern(GenProgram::Name(r));
      EXPECT_EQ(out->Relation(name), out_vm->Relation(name))
          << "vm vs tree-walk divergence, seed " << GetParam() << "\n"
          << source;
      EXPECT_EQ(out->Relation(name), out_vm_naive->Relation(name))
          << "vm (naive) vs tree-walk divergence, seed " << GetParam()
          << "\n" << source;
      EXPECT_EQ(out->Relation(name), out_vm_par->Relation(name))
          << "vm (" << vm.num_threads
          << " threads) vs tree-walk divergence, seed " << GetParam()
          << "\n" << source;
      EXPECT_EQ(out->Relation(name), out_opt->Relation(name))
          << "vm+il_opt vs tree-walk divergence, seed " << GetParam()
          << "\n" << source;
      EXPECT_EQ(out->Relation(name), out_opt_naive->Relation(name))
          << "vm+il_opt (naive) vs tree-walk divergence, seed " << GetParam()
          << "\n" << source;
      EXPECT_EQ(out->Relation(name), out_opt_par->Relation(name))
          << "vm+il_opt (" << vm_opt.num_threads
          << " threads) vs tree-walk divergence, seed " << GetParam()
          << "\n" << source;
      EXPECT_EQ(out->Relation(name), out_fused->Relation(name))
          << "vm fused tier vs tree-walk divergence, seed " << GetParam()
          << "\n" << source;
      EXPECT_EQ(out->Relation(name), out_fused_par->Relation(name))
          << "vm fused tier (" << vm.num_threads
          << " threads) vs tree-walk divergence, seed " << GetParam()
          << "\n" << source;
      EXPECT_EQ(out->Relation(name), out_fused_sw->Relation(name))
          << "vm fused tier (switch dispatch) vs tree-walk divergence, "
             "seed " << GetParam() << "\n" << source;
    }
  }

  // The flat engine's indexed mode against its own scan-based mode.
  {
    datalog::Database db2;
    for (int r = 0; r < GenProgram::kRelations; ++r) {
      ASSERT_TRUE(
          db2.AddRelation(GenProgram::Name(r), GenProgram::Arity(r)).ok());
    }
    for (int r = 0; r < 3; ++r) {
      for (const auto& t : edb[r]) {
        datalog::Tuple tuple;
        for (int c : t) tuple.push_back(db2.InternConstant(c));
        db2.AddFact(rel_ids[r], std::move(tuple));
      }
    }
    ASSERT_TRUE(datalog::Evaluate(dprog, &db2,
                                  datalog::EvalMode::kSemiNaiveIndexed)
                    .ok());
    for (int r = 3; r < GenProgram::kRelations; ++r) {
      ASSERT_EQ(db2.FactCount(rel_ids[r]), db.FactCount(rel_ids[r]))
          << "indexed datalog divergence, seed " << GetParam() << "\n"
          << source;
      for (const auto& t : db2.Facts(rel_ids[r])) {
        EXPECT_TRUE(db.Contains(rel_ids[r], t))
            << "indexed datalog divergence, seed " << GetParam() << "\n"
            << source;
      }
    }

    // The compiled kVm engine mirrors kSemiNaiveIndexed candidate for
    // candidate, so its fact *insertion order* -- not just the fact set --
    // must match exactly, serially and at a randomized thread count, under
    // each matcher variant (threaded dispatch, forced switch dispatch, and
    // the fused check/bind phase split).
    constexpr datalog::VmOptions kVmVariants[] = {
        {/*threaded=*/true, /*fuse=*/false},
        {/*threaded=*/false, /*fuse=*/false},
        {/*threaded=*/true, /*fuse=*/true},
    };
    for (const datalog::VmOptions& vopts : kVmVariants) {
      for (uint32_t threads : {1u, 2 + static_cast<uint32_t>(rng() % 7)}) {
        datalog::Database db3;
        for (int r = 0; r < GenProgram::kRelations; ++r) {
          ASSERT_TRUE(
              db3.AddRelation(GenProgram::Name(r), GenProgram::Arity(r))
                  .ok());
        }
        for (int r = 0; r < 3; ++r) {
          for (const auto& t : edb[r]) {
            datalog::Tuple tuple;
            for (int c : t) tuple.push_back(db3.InternConstant(c));
            db3.AddFact(rel_ids[r], std::move(tuple));
          }
        }
        ASSERT_TRUE(datalog::Evaluate(dprog, &db3, datalog::EvalMode::kVm,
                                      nullptr, threads, nullptr, vopts)
                        .ok());
        for (int r = 3; r < GenProgram::kRelations; ++r) {
          EXPECT_EQ(db3.Facts(rel_ids[r]), db2.Facts(rel_ids[r]))
              << "datalog vm (" << threads << " threads, threaded "
              << vopts.threaded << ", fuse " << vopts.fuse
              << ") vs indexed insertion-order divergence, seed "
              << GetParam() << "\n" << source;
        }
      }
    }
  }

  // --- compare all IDB relations ---
  for (int r = 3; r < GenProgram::kRelations; ++r) {
    const auto& iql_rel = out->Relation(u.Intern(GenProgram::Name(r)));
    ASSERT_EQ(iql_rel.size(), db.FactCount(rel_ids[r]))
        << "relation " << GenProgram::Name(r) << ", seed " << GetParam()
        << "\n" << source;
    for (ValueId fact : iql_rel) {
      datalog::Tuple key;
      const ValueNode& n = v.node(fact);
      if (n.kind == ValueKind::kConst) {
        key.push_back(db.InternConstant(std::string(u.Name(n.atom))));
      } else {
        for (const auto& [attr, child] : n.fields) {
          key.push_back(
              db.InternConstant(std::string(u.Name(v.node(child).atom))));
        }
      }
      EXPECT_TRUE(db.Contains(rel_ids[r], key))
          << "relation " << GenProgram::Name(r) << ", seed " << GetParam()
          << "\n" << source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range<uint32_t>(0, 40));

}  // namespace
}  // namespace iqlkit
