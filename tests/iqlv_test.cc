// Theorem 7.1.5 / Figure 2: IQL as a query language for the pure
// value-based model -- phi, evaluate, psi -- with automatic copy
// elimination through bisimulation.

#include "vmodel/iqlv.h"

#include <gtest/gtest.h>

#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class IqlvTest : public ::testing::Test {
 protected:
  // Full schema: input v-class In (labeled nodes with successors), output
  // v-class Out (same shape), temporaries for the rewiring.
  static constexpr std::string_view kSource = R"(
    schema {
      class In  : [name: D, succ: {In}];
      class Out : [name: D, succ: {Out}];
      relation Map : [In, Out];
    }
    program {
      Map(x, y) :- In(x).
      ;
      # Rebuild the same graph in Out, renaming every label to "n".
      y^ = [name: "n", succ: S] :-
          Map(x, y), x^ = [name: m, succ: X], Rewire(X, y, S).
    }
  )";

  Universe u_;
};

TEST_F(IqlvTest, UniformizingLabelsCollapsesValues) {
  // Simpler program: copy In to Out with all names forced to "n". On the
  // value level, a labeled 2-cycle collapses to ONE pure value (a
  // self-loop): psi's bisimulation quotient performs the copy
  // elimination that makes IQLv complete without the up-to-copy caveat.
  constexpr std::string_view kUniform = R"(
    schema {
      class In  : [name: D, succ: {In}];
      class Out : [name: D, succ: {Out}];
      relation Map : [In, Out];
    }
    program {
      Map(x, y) :- In(x).
      ;
      t^(q) :- Map(x, y), Map(p, q), x^ = [name: m, succ: X], X(p),
               HoldsSucc(y, t).
    }
  )";
  (void)kUniform;  // The full rewiring needs a successor holder; use the
                   // direct builder version below instead.

  // Build the program via a holder class for the successor sets.
  constexpr std::string_view kProgram = R"(
    schema {
      class In  : [name: D, succ: {In}];
      class Out : [name: D, succ: {Out}];
      class Succ : {Out};
      relation Map : [In, Out, Succ];
    }
    program {
      Map(x, y, s) :- In(x).
      ;
      s^(q) :- Map(x, y, s), Map(p, q, t), x^ = [name: m, succ: X], X(p).
      ;
      y^ = [name: "n", succ: s^] :- Map(x, y, s).
    }
  )";
  auto unit = ParseUnit(&u_, kProgram);
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto schema = std::make_shared<const Schema>(std::move(unit->schema));
  auto in = std::make_shared<const Schema>(*schema->Project({"In"}));
  auto out = std::make_shared<const Schema>(*schema->Project({"Out"}));

  // Input pure values: a 2-cycle with distinct labels (2 distinct values).
  VInstance input(&u_.symbols());
  Symbol name = u_.Intern("name");
  Symbol succ = u_.Intern("succ");
  RNodeId a = input.graph.AddPlaceholder();
  RNodeId b = input.graph.AddPlaceholder();
  ASSERT_TRUE(input.graph
                  .FillTuple(a, {{name, input.graph.AddConst("a")},
                                 {succ, input.graph.AddSet({b})}})
                  .ok());
  ASSERT_TRUE(input.graph
                  .FillTuple(b, {{name, input.graph.AddConst("b")},
                                 {succ, input.graph.AddSet({a})}})
                  .ok());
  input.classes[u_.Intern("In")] = {a, b};

  auto result = RunOnValues(&u_, schema, in, out, &unit->program, input);
  ASSERT_TRUE(result.ok()) << result.status();
  // Two objects were built, but as pure values they are bisimilar after
  // the renaming: ONE canonical value, the uniform self-loop.
  const auto& values = result->classes.at(u_.Intern("Out"));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(result->graph.ToString(values[0]),
            "#0=[name: \"n\", succ: {#0}]");
}

TEST_F(IqlvTest, IdentityTransportPreservesValues) {
  // Copy In to Out verbatim; the output v-instance equals the input
  // (modulo the class renaming).
  constexpr std::string_view kProgram = R"(
    schema {
      class In  : [name: D, succ: {In}];
      class Out : [name: D, succ: {Out}];
      class Succ : {Out};
      relation Map : [In, Out, Succ];
    }
    program {
      Map(x, y, s) :- In(x).
      ;
      s^(q) :- Map(x, y, s), Map(p, q, t), x^ = [name: m, succ: X], X(p).
      ;
      y^ = [name: m, succ: s^] :- Map(x, y, s), x^ = [name: m, succ: X].
    }
  )";
  auto unit = ParseUnit(&u_, kProgram);
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto schema = std::make_shared<const Schema>(std::move(unit->schema));
  auto in = std::make_shared<const Schema>(*schema->Project({"In"}));
  auto out = std::make_shared<const Schema>(*schema->Project({"Out"}));

  VInstance input(&u_.symbols());
  Symbol name = u_.Intern("name");
  Symbol succ = u_.Intern("succ");
  RNodeId x = input.graph.AddPlaceholder();
  RNodeId y = input.graph.AddPlaceholder();
  ASSERT_TRUE(input.graph
                  .FillTuple(x, {{name, input.graph.AddConst("x")},
                                 {succ, input.graph.AddSet({y})}})
                  .ok());
  ASSERT_TRUE(input.graph
                  .FillTuple(y, {{name, input.graph.AddConst("y")},
                                 {succ, input.graph.AddSet({x})}})
                  .ok());
  input.classes[u_.Intern("In")] = {x, y};

  auto result = RunOnValues(&u_, schema, in, out, &unit->program, input);
  ASSERT_TRUE(result.ok()) << result.status();
  // Rename the output class to In and compare as v-instances.
  VInstance renamed(&u_.symbols());
  std::map<RNodeId, RNodeId> copied;
  for (RNodeId r : result->classes.at(u_.Intern("Out"))) {
    renamed.classes[u_.Intern("In")].push_back(
        CopySubgraph(&renamed.graph, result->graph, r, &copied));
  }
  Canonicalize(&input);
  EXPECT_TRUE(VInstanceEqual(input, renamed));
}

TEST_F(IqlvTest, RejectsNonVSchemaProjections) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation R : D; class P : D; }
    program { R(x) :- R(x). }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto schema = std::make_shared<const Schema>(std::move(unit->schema));
  auto bad = std::make_shared<const Schema>(*schema->Project({"R"}));
  auto good = std::make_shared<const Schema>(*schema->Project({"P"}));
  VInstance empty(&u_.symbols());
  EXPECT_FALSE(RunOnValues(&u_, schema, bad, good, &unit->program, empty)
                   .ok());
}

}  // namespace
}  // namespace iqlkit
