// Wire-protocol codec tests: frame layout, the flat-JSON payload subset,
// incremental decoding, CRC detection of torn/corrupt frames, the bounded
// in-memory streams, and FaultSite::kNetwork injection.

#include "server/wire.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "base/fault_injection.h"
#include "storage/bytes.h"
#include "storage/checksum.h"

namespace iqlkit {
namespace server {
namespace {

Frame MakeQuery(const std::string& id, const std::string& source) {
  Frame f;
  f.type = FrameType::kQuery;
  f.body.SetString("id", id).SetString("source", source);
  return f;
}

TEST(WireObject, TypedGettersEnforceKinds) {
  WireObject obj;
  obj.SetString("s", "hello").SetInt("n", -42).SetBool("b", true);
  EXPECT_EQ(obj.GetString("s").value(), "hello");
  EXPECT_EQ(obj.GetInt("n").value(), -42);
  EXPECT_TRUE(obj.GetBool("b").value());
  EXPECT_FALSE(obj.GetString("n").ok());
  EXPECT_FALSE(obj.GetInt("missing").ok());
  EXPECT_EQ(obj.GetInt("missing").status().code(), StatusCode::kNetworkError);
  EXPECT_EQ(obj.StringOr("missing", "fb"), "fb");
  EXPECT_EQ(obj.IntOr("s", 7), 7);  // wrong kind falls back too
}

TEST(WireObject, JsonRoundTripPreservesOrderAndValues) {
  WireObject obj;
  obj.SetString("id", "q1")
      .SetInt("seq", 3)
      .SetBool("done", false)
      .SetString("data", "line \"quoted\"\nwith\ttabs\x01");
  std::string json = obj.ToJson();
  auto parsed = WireObject::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToJson(), json);  // deterministic re-encoding
  EXPECT_EQ(parsed->GetString("data").value(), "line \"quoted\"\nwith\ttabs\x01");
}

TEST(WireObject, RefusesRichJson) {
  EXPECT_FALSE(WireObject::FromJson(R"({"a":[1,2]})").ok());
  EXPECT_FALSE(WireObject::FromJson(R"({"a":{"b":1}})").ok());
  EXPECT_FALSE(WireObject::FromJson(R"({"a":1.5})").ok());
  EXPECT_FALSE(WireObject::FromJson(R"({"a":1e3})").ok());
  EXPECT_FALSE(WireObject::FromJson(R"({"a":null})").ok());
  EXPECT_FALSE(WireObject::FromJson(R"({"a":1} trailing)").ok());
  EXPECT_FALSE(
      WireObject::FromJson(R"({"a":99999999999999999999999})").ok());
  EXPECT_TRUE(WireObject::FromJson(R"({})").ok());
  EXPECT_TRUE(WireObject::FromJson(" { \"a\" : -3 } ").ok());
}

TEST(Framing, LayoutIsLengthTypeCrcPayload) {
  Frame frame = MakeQuery("q", "src");
  std::string bytes = EncodeFrame(frame);
  std::string payload = frame.body.ToJson();
  ASSERT_EQ(bytes.size(), 4 + 1 + 4 + payload.size());
  storage::ByteReader r(bytes);
  EXPECT_EQ(r.U32(), 1 + 4 + payload.size());                // len
  EXPECT_EQ(r.U8(), static_cast<uint8_t>(FrameType::kQuery));  // type
  std::string crc_input;
  crc_input.push_back(static_cast<char>(FrameType::kQuery));
  crc_input.append(payload);
  EXPECT_EQ(r.U32(), storage::Crc32(crc_input));  // crc over type+payload
  EXPECT_EQ(bytes.substr(9), payload);
}

TEST(Framing, DecoderReassemblesByteAtATime) {
  std::string bytes = EncodeFrame(MakeQuery("q1", "a")) +
                      EncodeFrame(MakeQuery("q2", "b"));
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char c : bytes) {
    decoder.Feed(std::string_view(&c, 1));
    for (;;) {
      auto next = decoder.Next();
      ASSERT_TRUE(next.ok()) << next.status();
      if (!next->has_value()) break;
      frames.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].body.GetString("id").value(), "q1");
  EXPECT_EQ(frames[1].body.GetString("id").value(), "q2");
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Framing, CrcMismatchPoisonsTheDecoder) {
  std::string bytes = EncodeFrame(MakeQuery("q1", "a"));
  bytes[bytes.size() - 1] ^= 0x40;  // flip a payload bit
  FrameDecoder decoder;
  decoder.Feed(bytes);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kNetworkError);
  // Sticky: feeding a good frame afterwards cannot resynchronize.
  decoder.Feed(EncodeFrame(MakeQuery("q2", "b")));
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(Framing, OversizeAndUndersizeLengthsAreRejected) {
  {
    storage::ByteWriter w;
    w.U32(1 + 4 + kMaxFramePayload + 1);
    FrameDecoder decoder;
    decoder.Feed(w.Take());
    EXPECT_FALSE(decoder.Next().ok());
  }
  {
    storage::ByteWriter w;
    w.U32(3);  // below the 5-byte frame header
    FrameDecoder decoder;
    decoder.Feed(w.Take());
    EXPECT_FALSE(decoder.Next().ok());
  }
}

TEST(Framing, UnknownTypeByteIsRejected) {
  std::string payload = "{}";
  std::string crc_input;
  crc_input.push_back(static_cast<char>(17));
  crc_input.append(payload);
  storage::ByteWriter w;
  w.U32(static_cast<uint32_t>(1 + 4 + payload.size()));
  w.U8(17);
  w.U32(storage::Crc32(crc_input));
  w.Bytes(payload);
  FrameDecoder decoder;
  decoder.Feed(w.Take());
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("unknown frame type"),
            std::string::npos);
}

TEST(MemoryStreams, DuplexMovesBytesAndSignalsEof) {
  MemoryDuplex duplex;
  MemoryStream client(&duplex, /*server_side=*/false);
  MemoryStream server(&duplex, /*server_side=*/true);
  ASSERT_TRUE(client.Write("hello").ok());
  std::string got;
  ASSERT_EQ(server.Read(&got, 64).value(), 5u);
  EXPECT_EQ(got, "hello");
  // Empty and open: would-block, not EOF.
  got.clear();
  EXPECT_EQ(server.Read(&got, 64).value(), 0u);
  EXPECT_FALSE(server.closed());
  client.Close();
  EXPECT_EQ(server.Read(&got, 64).value(), 0u);
  EXPECT_TRUE(server.closed());
}

TEST(MemoryStreams, BoundedPipeStallsWholeFrames) {
  MemoryDuplex duplex(/*capacity=*/8);
  MemoryStream client(&duplex, /*server_side=*/false);
  Status first = client.Write("12345678");
  ASSERT_TRUE(first.ok());
  Status stalled = client.Write("9");
  ASSERT_FALSE(stalled.ok());
  EXPECT_TRUE(IsStallError(stalled));
  // All-or-nothing: the stalled byte was not queued, so draining and
  // retrying cannot duplicate anything.
  std::string got;
  MemoryStream server(&duplex, /*server_side=*/true);
  ASSERT_EQ(server.Read(&got, 64).value(), 8u);
  ASSERT_TRUE(client.Write("9").ok());
  ASSERT_EQ(server.Read(&got, 64).value(), 1u);
  EXPECT_EQ(got, "123456789");
}

class NetworkFaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Global().Reset();
    unsetenv("IQLKIT_FAULTS");
  }

  void Arm(const std::string& spec) {
    auto config = FaultInjector::ParseSpec(spec);
    ASSERT_TRUE(config.ok()) << config.status();
    FaultInjector::Global().Configure(*config);
  }
};

TEST_F(NetworkFaultTest, SpecParsesAndModesCycle) {
  Arm("network=1.0,seed=5");
  NetworkFaultMode mode;
  // p=1: every draw injects; modes cycle by injected count (n%3 with the
  // same mapping as the storage site's short-write/fsync/lost-rename).
  ASSERT_TRUE(InjectNetworkFault(&mode));
  EXPECT_EQ(mode, NetworkFaultMode::kTornWrite);  // count 1
  ASSERT_TRUE(InjectNetworkFault(&mode));
  EXPECT_EQ(mode, NetworkFaultMode::kDisconnect);  // count 2
  ASSERT_TRUE(InjectNetworkFault(&mode));
  EXPECT_EQ(mode, NetworkFaultMode::kStall);  // count 3
  ASSERT_TRUE(InjectNetworkFault(&mode));
  EXPECT_EQ(mode, NetworkFaultMode::kTornWrite);  // count 4
}

TEST_F(NetworkFaultTest, MalformedNetworkSpecFullyResets) {
  // Malformed network= values are structured parse errors, exactly like
  // the storage site's.
  EXPECT_FALSE(FaultInjector::ParseSpec("network=banana").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("network=1.5").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("network=0.5,bogus=1").ok());
  // And via the environment: a bad spec never half-applies on top of a
  // live config -- the injector is fully reset.
  Arm("network=1.0,seed=1");
  setenv("IQLKIT_FAULTS", "network=0.5,storage=nope", 1);
  EXPECT_FALSE(FaultInjector::Global().ConfigureFromEnv().ok());
  NetworkFaultMode mode;
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(InjectNetworkFault(&mode));
  }
}

TEST_F(NetworkFaultTest, TornWriteDeliversAPrefixThenKillsTheStream) {
  Arm("network=1.0,seed=3");
  MemoryDuplex duplex;
  MemoryStream raw(&duplex, /*server_side=*/false);
  FaultyStream faulty(&raw);
  std::string frame = EncodeFrame(MakeQuery("q", "some source text"));
  Status wrote = faulty.Write(frame);  // first injection: torn write
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.code(), StatusCode::kNetworkError);
  MemoryStream server(&duplex, /*server_side=*/true);
  std::string got;
  ASSERT_TRUE(server.Read(&got, 1 << 16).ok());
  EXPECT_EQ(got.size(), frame.size() / 2);  // exactly half reached the wire
  // The receiver's decoder refuses the torn frame: either it waits for
  // bytes that never come (stream closed) or the CRC fails.
  FrameDecoder decoder;
  decoder.Feed(got);
  auto next = decoder.Next();
  if (next.ok()) {
    EXPECT_FALSE(next->has_value());
    EXPECT_TRUE(server.closed());
  }
}

TEST_F(NetworkFaultTest, StallErrorsAreDistinguished) {
  EXPECT_TRUE(IsStallError(NetworkError("injected write stall: slow client")));
  EXPECT_FALSE(IsStallError(NetworkError("injected disconnect on write")));
  EXPECT_FALSE(IsStallError(UnavailableError("stall")));  // wrong code
}

}  // namespace
}  // namespace server
}  // namespace iqlkit
