// Differential and parameterized property tests: the IQL evaluator checked
// against the independent flat Datalog engine on the shared relational
// fragment, determinacy/genericity sweeps, and phi/psi round trips on
// random cyclic instances.

#include <gtest/gtest.h>

#include <random>

#include "datalog/datalog.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"
#include "transform/isomorphism.h"
#include "vmodel/encode.h"

namespace iqlkit {
namespace {

std::vector<std::pair<int, int>> RandomEdges(int n, int m, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node(0, n - 1);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < m; ++i) edges.emplace_back(node(rng), node(rng));
  return edges;
}

// ---- IQL vs Datalog on transitive closure ---------------------------------

class TcDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TcDifferentialTest, IqlAndDatalogAgree) {
  uint32_t seed = GetParam();
  int n = 8 + seed % 8;
  auto edges = RandomEdges(n, 2 * n, seed);

  // Datalog reference result.
  datalog::Database db;
  int e = *db.AddRelation("E", 2);
  int tc = *db.AddRelation("TC", 2);
  datalog::Program dprog;
  using datalog::Atom;
  using datalog::Term;
  dprog.rules.push_back(datalog::Rule{
      Atom{tc, {Term::Var(0), Term::Var(1)}},
      {Atom{e, {Term::Var(0), Term::Var(1)}}},
      {}});
  dprog.rules.push_back(datalog::Rule{
      Atom{tc, {Term::Var(0), Term::Var(2)}},
      {Atom{tc, {Term::Var(0), Term::Var(1)}},
       Atom{e, {Term::Var(1), Term::Var(2)}}},
      {}});
  for (auto [a, b] : edges) {
    db.AddFact(e, {db.InternConstant(a), db.InternConstant(b)});
  }
  ASSERT_TRUE(
      datalog::Evaluate(dprog, &db, datalog::EvalMode::kSemiNaive).ok());

  // IQL result.
  Universe u;
  auto unit = ParseUnit(&u, R"(
    schema { relation E : [D, D]; relation TC : [D, D]; }
    input E;
    output TC;
    program {
      TC(x, y) :- E(x, y).
      TC(x, z) :- TC(x, y), E(y, z).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto in_schema = unit->schema.Project({"E"});
  ASSERT_TRUE(in_schema.ok());
  Instance input(std::make_shared<const Schema>(std::move(*in_schema)), &u);
  ValueStore& v = u.values();
  for (auto [a, b] : edges) {
    ASSERT_TRUE(
        input
            .AddToRelation(
                "E", v.Tuple({{PositionalAttr(&u, 1), v.ConstInt(a)},
                              {PositionalAttr(&u, 2), v.ConstInt(b)}}))
            .ok());
  }
  // Three evaluator configurations -- naive, semi-naive without indexes,
  // semi-naive with indexing and scheduling -- must all reproduce the
  // reference result.
  struct ModeConfig {
    const char* name;
    bool seminaive;
    bool indexing;
    bool scheduling;
  };
  constexpr ModeConfig kModes[] = {
      {"naive", false, false, false},
      {"seminaive", true, false, false},
      {"seminaive+indexed", true, true, true},
  };
  for (const ModeConfig& mode : kModes) {
    EvalOptions options;
    options.enable_seminaive = mode.seminaive;
    options.enable_indexing = mode.indexing;
    options.enable_scheduling = mode.scheduling;
    auto out = RunUnit(&u, &*unit, input, options);
    ASSERT_TRUE(out.ok()) << out.status();

    // Same cardinality and same pairs.
    const auto& iql_tc = out->Relation(u.Intern("TC"));
    ASSERT_EQ(iql_tc.size(), db.FactCount(tc))
        << "seed " << seed << " mode " << mode.name;
    for (ValueId t2 : iql_tc) {
      const ValueNode& node = v.node(t2);
      ASSERT_EQ(node.fields.size(), 2u);
      datalog::Tuple key = {
          db.InternConstant(
              std::string(u.Name(v.node(node.fields[0].second).atom))),
          db.InternConstant(
              std::string(u.Name(v.node(node.fields[1].second).atom)))};
      EXPECT_TRUE(db.Contains(tc, key))
          << "seed " << seed << " mode " << mode.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcDifferentialTest,
                         ::testing::Range<uint32_t>(0, 12));

// ---- determinacy sweep (Theorem 4.1.3) -------------------------------------

class DeterminacySweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DeterminacySweepTest, GraphEncodingDeterminateUpToIsomorphism) {
  uint32_t seed = GetParam();
  constexpr std::string_view kSource = R"(
    schema {
      relation R  : [D, D];
      relation R0 : D;
      relation R9 : [D, P, P'];
      class P  : [D, {P}];
      class P' : {P};
    }
    input R;
    output P, P';
    program {
      R0(x) :- R(x, y).
      R0(x) :- R(y, x).
      R9(x, p, p') :- R0(x).
      p'^(q) :- R9(x, p, p'), R9(y, q, q'), R(x, y).
      ;
      p^ = [x, p'^] :- R9(x, p, p').
    }
  )";
  Universe u;
  int n = 4 + seed % 5;
  auto edges = RandomEdges(n, n + 2, seed * 31 + 1);
  auto run_once = [&](const EvalOptions& options) {
    auto unit = ParseUnit(&u, kSource);
    EXPECT_TRUE(unit.ok());
    auto in_schema = unit->schema.Project({"R"});
    EXPECT_TRUE(in_schema.ok());
    Instance input(std::make_shared<const Schema>(std::move(*in_schema)),
                   &u);
    ValueStore& v = u.values();
    for (auto [a, b] : edges) {
      EXPECT_TRUE(
          input
              .AddToRelation(
                  "R", v.Tuple({{PositionalAttr(&u, 1), v.ConstInt(a)},
                                {PositionalAttr(&u, 2), v.ConstInt(b)}}))
              .ok());
    }
    auto out = RunUnit(&u, &*unit, input, options);
    EXPECT_TRUE(out.ok()) << out.status();
    auto out_schema = unit->schema.Project({"P", "P'"});
    EXPECT_TRUE(out_schema.ok());
    return out->Project(
        std::make_shared<const Schema>(std::move(*out_schema)));
  };
  Instance out1 = run_once(EvalOptions{});
  Instance out2 = run_once(EvalOptions{});
  EXPECT_TRUE(OIsomorphic(out1, out2)) << "seed " << seed;
  // An invention program under each evaluator configuration: join order
  // and indexing may renumber invented oids, but the result must stay
  // O-isomorphic (Theorem 4.1.3).
  EvalOptions naive;
  naive.enable_seminaive = false;
  naive.enable_indexing = false;
  naive.enable_scheduling = false;
  Instance out_naive = run_once(naive);
  EXPECT_TRUE(OIsomorphic(out1, out_naive)) << "seed " << seed;
  EvalOptions unindexed;
  unindexed.enable_indexing = false;
  Instance out_unindexed = run_once(unindexed);
  EXPECT_TRUE(OIsomorphic(out1, out_unindexed)) << "seed " << seed;
  EvalOptions unscheduled;
  unscheduled.enable_scheduling = false;
  Instance out_unscheduled = run_once(unscheduled);
  EXPECT_TRUE(OIsomorphic(out1, out_unscheduled)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminacySweepTest,
                         ::testing::Range<uint32_t>(0, 8));

// ---- psi/phi round trips on random cyclic object graphs --------------------

class PsiPhiSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PsiPhiSweepTest, PsiOfPhiIsIdentity) {
  uint32_t seed = GetParam();
  std::mt19937 rng(seed);
  Universe u;
  TypePool& t = u.types();
  auto schema = std::make_shared<Schema>(&u);
  ASSERT_TRUE(schema
                  ->DeclareClass("Node",
                                 t.Tuple({{u.Intern("name"), t.Base()},
                                          {u.Intern("succ"),
                                           t.Set(t.ClassNamed("Node"))}}))
                  .ok());
  // Random object graph with a small label alphabet (forces some
  // collapses) and random successor sets.
  int n = 3 + seed % 6;
  Instance inst(schema.get(), &u);
  ValueStore& v = u.values();
  std::vector<Oid> oids;
  for (int i = 0; i < n; ++i) {
    auto o = inst.CreateOid("Node");
    ASSERT_TRUE(o.ok());
    oids.push_back(*o);
  }
  std::uniform_int_distribution<int> label(0, 1);
  std::uniform_int_distribution<int> pick(0, n - 1);
  for (int i = 0; i < n; ++i) {
    std::vector<ValueId> succ;
    int degree = static_cast<int>(rng() % 3);
    for (int k = 0; k < degree; ++k) {
      succ.push_back(v.OfOid(oids[pick(rng)]));
    }
    ASSERT_TRUE(
        inst.SetOidValue(oids[i],
                         v.Tuple({{u.Intern("name"),
                                   v.ConstInt(label(rng))},
                                  {u.Intern("succ"),
                                   v.Set(std::move(succ))}}))
            .ok());
  }
  auto pure = Psi(inst);
  ASSERT_TRUE(pure.ok()) << pure.status();
  auto objects = Phi(&u, schema, *pure);
  ASSERT_TRUE(objects.ok()) << objects.status();
  EXPECT_TRUE(objects->Validate().ok());
  auto pure2 = Psi(*objects);
  ASSERT_TRUE(pure2.ok()) << pure2.status();
  EXPECT_TRUE(VInstanceEqual(*pure, *pure2)) << "seed " << seed;
  // phi(psi(.)) never grows the instance (duplicate elimination only).
  EXPECT_LE(objects->ClassExtent(u.Intern("Node")).size(),
            inst.ClassExtent(u.Intern("Node")).size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsiPhiSweepTest,
                         ::testing::Range<uint32_t>(0, 16));

// ---- naive vs semi-naive Datalog sweep -------------------------------------

class DatalogModesTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DatalogModesTest, SameGenerationAgrees) {
  uint32_t seed = GetParam();
  int n = 6 + seed % 6;
  auto edges = RandomEdges(n, n, seed * 7 + 3);
  auto build = [&](datalog::EvalMode mode, size_t* count,
                   std::set<datalog::Tuple>* result) {
    datalog::Database db;
    int par = *db.AddRelation("Par", 2);
    int sg = *db.AddRelation("SG", 2);
    datalog::Program p;
    using datalog::Atom;
    using datalog::Term;
    p.rules.push_back(datalog::Rule{
        Atom{sg, {Term::Var(0), Term::Var(1)}},
        {Atom{par, {Term::Var(0), Term::Var(2)}},
         Atom{par, {Term::Var(1), Term::Var(2)}}},
        {}});
    p.rules.push_back(datalog::Rule{
        Atom{sg, {Term::Var(0), Term::Var(1)}},
        {Atom{par, {Term::Var(0), Term::Var(2)}},
         Atom{sg, {Term::Var(2), Term::Var(3)}},
         Atom{par, {Term::Var(1), Term::Var(3)}}},
        {}});
    for (auto [a, b] : edges) {
      db.AddFact(par, {db.InternConstant(a), db.InternConstant(b)});
    }
    ASSERT_TRUE(datalog::Evaluate(p, &db, mode).ok());
    *count = db.FactCount(sg);
    for (const auto& tuple : db.Facts(sg)) result->insert(tuple);
  };
  size_t naive_count = 0, semi_count = 0, indexed_count = 0;
  std::set<datalog::Tuple> naive_result, semi_result, indexed_result;
  build(datalog::EvalMode::kNaive, &naive_count, &naive_result);
  build(datalog::EvalMode::kSemiNaive, &semi_count, &semi_result);
  build(datalog::EvalMode::kSemiNaiveIndexed, &indexed_count,
        &indexed_result);
  EXPECT_EQ(naive_count, semi_count) << "seed " << seed;
  EXPECT_EQ(naive_result, semi_result) << "seed " << seed;
  EXPECT_EQ(naive_count, indexed_count) << "seed " << seed;
  EXPECT_EQ(naive_result, indexed_result) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogModesTest,
                         ::testing::Range<uint32_t>(0, 12));

}  // namespace
}  // namespace iqlkit
