#include "model/type.h"

#include <gtest/gtest.h>

#include <set>

#include "base/interner.h"

namespace iqlkit {
namespace {

class TypeTest : public ::testing::Test {
 protected:
  Symbol Sym(std::string_view s) { return syms_.Intern(s); }

  SymbolTable syms_;
  TypePool pool_{&syms_};
};

TEST_F(TypeTest, LeafInterning) {
  EXPECT_EQ(pool_.Empty(), pool_.Empty());
  EXPECT_EQ(pool_.Base(), pool_.Base());
  EXPECT_EQ(pool_.ClassNamed("P"), pool_.ClassNamed("P"));
  EXPECT_NE(pool_.ClassNamed("P"), pool_.ClassNamed("Q"));
  EXPECT_NE(pool_.Base(), pool_.Empty());
}

TEST_F(TypeTest, TupleAttrOrderCanonical) {
  TypeId d = pool_.Base();
  TypeId t1 = pool_.Tuple({{Sym("A"), d}, {Sym("B"), d}});
  TypeId t2 = pool_.Tuple({{Sym("B"), d}, {Sym("A"), d}});
  EXPECT_EQ(t1, t2);
}

TEST_F(TypeTest, TupleWithEmptyFieldCollapses) {
  // [A1: {}] is equivalent to the empty type (§2.2).
  TypeId t = pool_.Tuple({{Sym("A"), pool_.Empty()}});
  EXPECT_EQ(t, pool_.Empty());
}

TEST_F(TypeTest, SetOfEmptyIsNotEmpty) {
  // {<empty>} contains the empty set, so it must not collapse (§2.2).
  EXPECT_NE(pool_.Set(pool_.Empty()), pool_.Empty());
}

TEST_F(TypeTest, UnionFlattensSortsDedups) {
  TypeId d = pool_.Base();
  TypeId p = pool_.ClassNamed("P");
  TypeId q = pool_.ClassNamed("Q");
  TypeId u1 = pool_.Union({pool_.Union({d, p}), q, p});
  TypeId u2 = pool_.Union({q, p, d});
  EXPECT_EQ(u1, u2);
}

TEST_F(TypeTest, UnionDropsEmptyAndCollapsesSingleton) {
  TypeId d = pool_.Base();
  EXPECT_EQ(pool_.Union({d, pool_.Empty()}), d);
  EXPECT_EQ(pool_.Union({}), pool_.Empty());
}

TEST_F(TypeTest, IntersectEmptyAnnihilates) {
  TypeId d = pool_.Base();
  EXPECT_EQ(pool_.Intersect({d, pool_.Empty()}), pool_.Empty());
}

TEST_F(TypeTest, IntersectIdempotent) {
  TypeId p = pool_.ClassNamed("P");
  EXPECT_EQ(pool_.Intersect({p, p}), p);
}

TEST_F(TypeTest, CollectClassesTransitive) {
  TypeId t = pool_.Tuple(
      {{Sym("A"), pool_.Set(pool_.ClassNamed("P"))},
       {Sym("B"), pool_.Union({pool_.Base(), pool_.ClassNamed("Q")})}});
  std::set<Symbol> classes;
  pool_.CollectClasses(t, &classes);
  EXPECT_EQ(classes, (std::set<Symbol>{Sym("P"), Sym("Q")}));
}

TEST_F(TypeTest, IntersectionFreePredicate) {
  TypeId p = pool_.ClassNamed("P");
  TypeId q = pool_.ClassNamed("Q");
  EXPECT_TRUE(pool_.IsIntersectionFree(pool_.Union({p, q})));
  EXPECT_FALSE(pool_.IsIntersectionFree(pool_.Intersect({p, q})));
  EXPECT_FALSE(pool_.IsIntersectionFree(
      pool_.Tuple({{Sym("A"), pool_.Intersect({p, q})}})));
}

TEST_F(TypeTest, IntersectionReducedPredicate) {
  TypeId p = pool_.ClassNamed("P");
  TypeId q = pool_.ClassNamed("Q");
  // P & Q is reduced (only class leaves under the intersection).
  EXPECT_TRUE(pool_.IsIntersectionReduced(pool_.Intersect({p, q})));
  // ([A:D] & [A:D]) collapses by interning, so build ([A:D] & P): a tuple
  // below an intersection node is not reduced.
  TypeId tup = pool_.Tuple({{Sym("A"), pool_.Base()}});
  EXPECT_FALSE(pool_.IsIntersectionReduced(pool_.Intersect({tup, p})));
}

TEST_F(TypeTest, ContainsSetPredicate) {
  EXPECT_FALSE(pool_.ContainsSet(pool_.Tuple({{Sym("A"), pool_.Base()}})));
  EXPECT_TRUE(pool_.ContainsSet(pool_.Tuple({{Sym("A"), pool_.Set(pool_.Base())}})));
}

TEST_F(TypeTest, ToStringPaperNotation) {
  TypeId t = pool_.Tuple(
      {{Sym("name"), pool_.Base()},
       {Sym("children"), pool_.Set(pool_.ClassNamed("Person"))}});
  // Attribute order is canonical (symbol interning order: name first here).
  EXPECT_EQ(pool_.ToString(t), "[name: D, children: {Person}]");
  EXPECT_EQ(pool_.ToString(pool_.Union({pool_.Base(), pool_.ClassNamed("P")})),
            "(D | P)");
  EXPECT_EQ(pool_.ToString(pool_.Empty()), "empty");
}

}  // namespace
}  // namespace iqlkit
