#include "model/schema.h"

#include <gtest/gtest.h>

#include "model/universe.h"

namespace iqlkit {
namespace {

class SchemaTest : public ::testing::Test {
 protected:
  Symbol Sym(std::string_view s) { return u_.Intern(s); }

  Universe u_;
};

TEST_F(SchemaTest, DeclareAndLookup) {
  Schema s(&u_);
  TypeId d = u_.types().Base();
  ASSERT_TRUE(s.DeclareRelation("R", d).ok());
  ASSERT_TRUE(s.DeclareClass("P", u_.types().Set(d)).ok());
  EXPECT_TRUE(s.HasRelation(Sym("R")));
  EXPECT_FALSE(s.HasRelation(Sym("P")));
  EXPECT_TRUE(s.HasClass(Sym("P")));
  EXPECT_EQ(s.RelationType(Sym("R")), d);
  EXPECT_EQ(s.ClassType(Sym("P")), u_.types().Set(d));
  EXPECT_EQ(s.RelationType(Sym("missing")), kInvalidType);
}

TEST_F(SchemaTest, SharedNamespaceRejectsDuplicates) {
  Schema s(&u_);
  TypeId d = u_.types().Base();
  ASSERT_TRUE(s.DeclareRelation("R", d).ok());
  EXPECT_EQ(s.DeclareRelation("R", d).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(s.DeclareClass("R", d).code(), StatusCode::kAlreadyExists);
}

TEST_F(SchemaTest, SetValuedClassDetection) {
  Schema s(&u_);
  TypeId d = u_.types().Base();
  ASSERT_TRUE(s.DeclareClass("SetP", u_.types().Set(d)).ok());
  ASSERT_TRUE(s.DeclareClass("TupP", u_.types().Tuple({{Sym("A"), d}})).ok());
  EXPECT_TRUE(s.IsSetValuedClass(Sym("SetP")));
  EXPECT_FALSE(s.IsSetValuedClass(Sym("TupP")));
}

TEST_F(SchemaTest, ValidateCatchesUndeclaredClassReference) {
  Schema s(&u_);
  ASSERT_TRUE(
      s.DeclareRelation("R", u_.types().ClassNamed("Ghost")).ok());
  Status st = s.Validate();
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST_F(SchemaTest, ValidateAcceptsRecursiveClassTypes) {
  // Cyclic schemas are legal: T(Person) references Person (§2.2, Ex 1.1).
  Schema s(&u_);
  TypeId person_type = u_.types().Tuple(
      {{Sym("name"), u_.types().Base()},
       {Sym("spouse"), u_.types().ClassNamed("Person")}});
  ASSERT_TRUE(s.DeclareClass("Person", person_type).ok());
  EXPECT_TRUE(s.Validate().ok());
}

TEST_F(SchemaTest, ProjectionKeepsSubset) {
  Schema s(&u_);
  TypeId d = u_.types().Base();
  ASSERT_TRUE(s.DeclareRelation("R1", d).ok());
  ASSERT_TRUE(s.DeclareRelation("R2", d).ok());
  ASSERT_TRUE(s.DeclareClass("P", u_.types().Set(d)).ok());
  auto sub = s.Project({"R1", "P"});
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->HasRelation(Sym("R1")));
  EXPECT_FALSE(sub->HasRelation(Sym("R2")));
  EXPECT_TRUE(sub->HasClass(Sym("P")));
}

TEST_F(SchemaTest, ProjectionRejectsDanglingClassReference) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareClass("P", u_.types().Set(u_.types().Base())).ok());
  ASSERT_TRUE(s.DeclareRelation("R", u_.types().ClassNamed("P")).ok());
  // Keeping R but dropping P leaves R's type dangling.
  auto sub = s.Project({"R"});
  EXPECT_FALSE(sub.ok());
}

TEST_F(SchemaTest, ProjectionRejectsUnknownName) {
  Schema s(&u_);
  auto sub = s.Project({"Nope"});
  EXPECT_EQ(sub.status().code(), StatusCode::kNotFound);
}

TEST_F(SchemaTest, ToStringPaperDeclarationSyntax) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareRelation("R", u_.types().Base()).ok());
  ASSERT_TRUE(s.DeclareClass("P", u_.types().Set(u_.types().Base())).ok());
  EXPECT_EQ(s.ToString(), "relation R : D;\nclass P : {D};\n");
}

}  // namespace
}  // namespace iqlkit
