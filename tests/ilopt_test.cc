// The verified IL optimizer (iql/ilopt.h): per-pass unit checks on small
// programs, idempotence of the pass pipeline, the L-series lint codes it
// powers, the strictness of optimized probe scans on both the indexed and
// unindexed paths, and -- the property everything else exists to protect --
// WriteFacts byte-identity of optimized runs against two independent
// oracles (the tree-walker and the unoptimized VM) across evaluation
// modes, with the vm_instructions metric shrinking, never growing.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "iql/eval.h"
#include "iql/il.h"
#include "iql/ilcheck.h"
#include "iql/ilopt.h"
#include "iql/parser.h"
#include "iql/typecheck.h"
#include "model/universe.h"

namespace iqlkit::il {
namespace {

// Keeps the universe and parsed unit alive next to the compiled rules.
struct Compiled {
  std::unique_ptr<Universe> u = std::make_unique<Universe>();
  std::optional<ParsedUnit> unit;

  explicit Compiled(const std::string& source) {
    auto parsed = ParseUnit(u.get(), source);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    if (!parsed.ok()) return;
    unit.emplace(std::move(*parsed));
    Status checked = TypeCheck(u.get(), unit->schema, &unit->program);
    EXPECT_TRUE(checked.ok()) << checked;
  }

  const Rule& rule(size_t stage, size_t index) const {
    return unit->program.stages[stage][index];
  }

  CompiledRule compile(size_t stage, size_t index,
                       size_t delta = kNoDelta) const {
    auto cr = CompileRule(unit->program, rule(stage, index), delta);
    EXPECT_TRUE(cr.has_value());
    return cr.value_or(CompiledRule{});
  }

  std::string disasm(const CompiledRule& cr) const {
    return Disassemble(cr, u->symbols(), u->types());
  }
};

const char* kTc = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  input E; output TC;
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

bool HasReason(const OptResult& opt, RemoveReason reason) {
  for (const RemovedInstr& rm : opt.removed) {
    if (rm.reason == reason) return true;
  }
  return false;
}

// ---- pass units -----------------------------------------------------------

TEST(IlOptTest, JoinProbeBecomesStrictAndImpliedCompareDrops) {
  Compiled c(kTc);
  CompiledRule cr = c.compile(0, 1);
  OptResult opt = OptimizeRule(cr);
  EXPECT_TRUE(VerifyRule(opt.rule).empty());
  ASSERT_EQ(opt.strict_scans.size(), 1u);
  EXPECT_TRUE(HasReason(opt, RemoveReason::kProbeImplied));  // the cmp
  EXPECT_TRUE(HasReason(opt, RemoveReason::kDeadValue));     // the field
  EXPECT_FALSE(opt.statically_empty.has_value());
  EXPECT_LT(opt.rule.code.size(), cr.code.size());
  // The probe survives, strict; the original rule is untouched.
  EXPECT_NE(c.disasm(opt.rule).find("probe!["), std::string::npos);
  EXPECT_EQ(c.disasm(cr).find("probe!["), std::string::npos);
  // Every removal carries provenance into the source rule's body.
  for (const RemovedInstr& rm : opt.removed) {
    EXPECT_LT(rm.pc, cr.code.size());
    EXPECT_LT(rm.src, c.rule(0, 1).body.size());
  }
}

TEST(IlOptTest, DeltaVariantOptimizesLikeTheFullVariant) {
  Compiled c(kTc);
  CompiledRule dv = c.compile(0, 1, /*delta=*/0);
  OptResult opt = OptimizeRule(dv);
  EXPECT_TRUE(VerifyRule(opt.rule).empty());
  EXPECT_EQ(opt.rule.delta_literal, 0u);
  EXPECT_EQ(opt.strict_scans.size(), 1u);
}

TEST(IlOptTest, EqualityPropagationCollapsesDuplicateConstants) {
  Compiled c(R"(
    schema { relation R : D; relation S : D; }
    input R; output S;
    program { S(x) :- R(x), x = "a", x = "a". }
  )");
  CompiledRule cr = c.compile(0, 0);
  OptResult opt = OptimizeRule(cr);
  EXPECT_TRUE(VerifyRule(opt.rule).empty());
  // The two kLoadConst "a" value-number together and the repeated
  // equality is recognized (as a redundant check or a tautology on the
  // unified class).
  EXPECT_TRUE(HasReason(opt, RemoveReason::kValueNumbered));
  EXPECT_TRUE(HasReason(opt, RemoveReason::kRedundantCheck) ||
              HasReason(opt, RemoveReason::kTautology));
  EXPECT_FALSE(opt.statically_empty.has_value());
}

TEST(IlOptTest, ContradictoryConstantsAreStaticallyEmpty) {
  Compiled c(R"(
    schema { relation R : D; relation S : D; }
    input R; output S;
    program { S(x) :- R(x), x = "a", x = "b". }
  )");
  CompiledRule cr = c.compile(0, 0);
  OptResult opt = OptimizeRule(cr);
  EXPECT_TRUE(VerifyRule(opt.rule).empty());
  ASSERT_TRUE(opt.statically_empty.has_value());
  // The contradicting check stays in place: it fails fast at runtime and
  // the emitted set (empty) is unchanged.
  EXPECT_LT(opt.statically_empty->src, c.rule(0, 0).body.size());
}

TEST(IlOptTest, InequalityOfDistinctConstantsIsTautological) {
  Compiled c(R"(
    schema { relation R : D; relation S : D; }
    input R; output S;
    program { S(x) :- R(x), "a" != "b". }
  )");
  CompiledRule cr = c.compile(0, 0);
  OptResult opt = OptimizeRule(cr);
  EXPECT_TRUE(VerifyRule(opt.rule).empty());
  EXPECT_TRUE(HasReason(opt, RemoveReason::kTautology));
  EXPECT_FALSE(opt.statically_empty.has_value());
}

TEST(IlOptTest, OptimizeIsIdempotentOnEveryCompiledRule) {
  for (const char* source : {kTc, R"(
    schema { relation R : [D, D]; relation S : [D, D]; relation T : [D, D]; }
    input R, S; output T;
    program {
      T(x, z) :- R(x, y), S(y, z).
      T(x, y) :- R(x, y), S(x, y).
      T(x, x) :- R(x, x).
    }
  )"}) {
    Compiled c(source);
    for (const auto& stage : c.unit->program.stages) {
      for (const Rule& rule : stage) {
        auto cr = CompileRule(c.unit->program, rule);
        if (!cr.has_value()) continue;
        OptResult once = OptimizeRule(*cr);
        OptResult twice = OptimizeRule(once.rule);
        EXPECT_TRUE(twice.removed.empty())
            << "second pass still removes instructions";
        EXPECT_EQ(c.disasm(once.rule), c.disasm(twice.rule));
      }
    }
  }
}

// ---- superinstruction fusion ----------------------------------------------

TEST(IlFuseTest, OptimizedJoinFusesKeyedScanAndDestructure) {
  Compiled c(kTc);
  CompiledRule cr = c.compile(0, 1);
  OptResult opt = OptimizeRule(cr);
  FuseResult fused = FuseRule(opt.rule);
  EXPECT_TRUE(VerifyRule(fused.rule).empty());
  // The strict probe scan absorbs its guard; the outer scan's guard and
  // field extraction collapse into one destructure.
  EXPECT_EQ(fused.fused_keyed_scans, 1u);
  EXPECT_GE(fused.fused_destructures, 1u);
  std::string disasm = c.disasm(fused.rule);
  EXPECT_NE(disasm.find("scan_rel_keyed"), std::string::npos) << disasm;
  EXPECT_NE(disasm.find("destructure"), std::string::npos) << disasm;
  EXPECT_LT(fused.rule.code.size(), opt.rule.code.size());
}

TEST(IlFuseTest, UnoptimizedIlStillFusesDestructure) {
  Compiled c(kTc);
  CompiledRule cr = c.compile(0, 1);
  FuseResult fused = FuseRule(cr);
  EXPECT_TRUE(VerifyRule(fused.rule).empty());
  // Without the optimizer no scan is strict, so no keyed fusion -- but
  // guard-plus-gets sequences still collapse.
  EXPECT_EQ(fused.fused_keyed_scans, 0u);
  EXPECT_GE(fused.fused_destructures, 1u);
}

TEST(IlFuseTest, ConsecutiveComparesFuseToCmpN) {
  Compiled c(R"(
    schema { relation R : [D, D]; relation T : D; }
    input R; output T;
    program { T(x) :- R(x, y), x = y, x = y. }
  )");
  CompiledRule cr = c.compile(0, 0);
  FuseResult fused = FuseRule(cr);
  EXPECT_TRUE(VerifyRule(fused.rule).empty());
  EXPECT_GE(fused.fused_cmp_chains, 1u);
  EXPECT_NE(c.disasm(fused.rule).find("cmp_n"), std::string::npos)
      << c.disasm(fused.rule);
}

TEST(IlFuseTest, FusionIsIdempotent) {
  Compiled c(kTc);
  for (size_t rule : {0u, 1u}) {
    for (bool optimize : {false, true}) {
      CompiledRule cr = c.compile(0, rule);
      if (optimize) cr = OptimizeForExecution(cr);
      FuseResult once = FuseRule(cr);
      FuseResult twice = FuseRule(once.rule);
      EXPECT_EQ(twice.fused_keyed_scans, 0u);
      EXPECT_EQ(twice.fused_destructures, 0u);
      EXPECT_EQ(twice.fused_cmp_chains, 0u);
      EXPECT_EQ(c.disasm(once.rule), c.disasm(twice.rule));
    }
  }
}

TEST(IlFuseTest, OptimizeRulePassesFusedInputThrough) {
  Compiled c(kTc);
  CompiledRule fused = FuseForExecution(OptimizeForExecution(c.compile(0, 1)));
  OptResult opt = OptimizeRule(fused);
  EXPECT_TRUE(opt.removed.empty());
  EXPECT_EQ(c.disasm(opt.rule), c.disasm(fused));
}

// ---- L-series lint --------------------------------------------------------

std::map<std::string, int> CodeCounts(const DiagnosticSink& sink) {
  std::map<std::string, int> counts;
  for (const Diagnostic& d : sink.diagnostics()) ++counts[d.code];
  return counts;
}

TEST(IlLintTest, JoinRuleReportsDeadInstructions) {
  Compiled c(kTc);
  DiagnosticSink sink;
  LintProgramIl(c.unit->program, c.u->symbols(), c.u->types(), &sink);
  auto counts = CodeCounts(sink);
  EXPECT_GE(counts["L001"], 2);  // the implied cmp and the dead field
  EXPECT_EQ(counts["L003"], 0);
  EXPECT_EQ(counts["L004"], 0);
  for (const Diagnostic& d : sink.diagnostics()) {
    EXPECT_TRUE(d.span.valid()) << d.code << ": " << d.message;
  }
}

TEST(IlLintTest, UnbindableJoinScanReportsL002) {
  Compiled c(R"(
    schema { relation R : [D, D]; relation S : [D, D]; relation T : [D, D]; }
    input R, S; output T;
    program { T(x, w) :- R(x, y), S(z, w). }
  )");
  DiagnosticSink sink;
  LintProgramIl(c.unit->program, c.u->symbols(), c.u->types(), &sink);
  auto counts = CodeCounts(sink);
  EXPECT_GE(counts["L002"], 1);
}

TEST(IlLintTest, StaticallyEmptyBodyReportsL003Warning) {
  Compiled c(R"(
    schema { relation R : D; relation S : D; }
    input R; output S;
    program { S(x) :- R(x), x = "a", x = "b". }
  )");
  DiagnosticSink sink;
  LintProgramIl(c.unit->program, c.u->symbols(), c.u->types(), &sink);
  auto counts = CodeCounts(sink);
  EXPECT_EQ(counts["L003"], 1);
  EXPECT_EQ(sink.max_severity(), Severity::kWarning);
}

TEST(IlLintTest, MalformedIlReportsL004Error) {
  Compiled c(kTc);
  CompiledRule cr = c.compile(0, 1);
  cr.code[2].a = 40;  // corrupt: read of an out-of-range register
  DiagnosticSink sink;
  LintCompiledRule(cr, c.rule(0, 1), c.u->symbols(), c.u->types(), &sink);
  auto counts = CodeCounts(sink);
  EXPECT_GE(counts["L004"], 1);
  EXPECT_EQ(sink.max_severity(), Severity::kError);
  // A malformed rule is not fed to the optimizer: no L001/L003 noise.
  EXPECT_EQ(counts["L001"], 0);
  EXPECT_EQ(counts["L003"], 0);
}

// ---- execution equivalence ------------------------------------------------

std::string RunToFacts(const std::string& source, EvalOptions options,
                       EvalMetrics* metrics = nullptr) {
  Universe u;
  auto unit = ParseUnit(&u, source);
  EXPECT_TRUE(unit.ok()) << unit.status();
  if (!unit.ok()) return "<parse error>";
  std::shared_ptr<const Schema> input_schema;
  if (unit->input_names.empty()) {
    input_schema = std::make_shared<const Schema>(unit->schema);
  } else {
    auto projected = unit->schema.Project(unit->input_names);
    EXPECT_TRUE(projected.ok()) << projected.status();
    if (!projected.ok()) return "<projection error>";
    input_schema = std::make_shared<const Schema>(std::move(*projected));
  }
  Instance input(input_schema, &u);
  EXPECT_TRUE(ApplyFacts(*unit, &input).ok());
  options.metrics = metrics;
  auto out = RunUnit(&u, &*unit, input, options);
  EXPECT_TRUE(out.ok()) << out.status();
  if (!out.ok()) return "<eval error>";
  return WriteFacts(*out);
}

// A join-heavy program whose optimized IL contains a strict probe, with
// enough facts that hash buckets and candidate lists are non-trivial.
std::string JoinProgram() {
  std::string source =
      "schema { relation E : [D, D]; relation TC : [D, D]; }\n"
      "input E;\noutput TC;\ninstance {\n";
  uint64_t x = 11;
  for (int i = 0; i < 90; ++i) {
    x = x * 6364136223846793005u + 1442695040888963407u;
    source += "  E(" + std::to_string((x >> 33) % 30) + ", " +
              std::to_string((x >> 13) % 30) + ");\n";
  }
  source +=
      "}\nprogram {\n"
      "  TC(x, y) :- E(x, y).\n"
      "  TC(x, z) :- TC(x, y), E(y, z).\n"
      "}\n";
  return source;
}

TEST(IlOptDifferentialTest, OptimizedRunsMatchBothOracles) {
  std::string source = JoinProgram();
  for (bool seminaive : {false, true}) {
    for (bool indexing : {false, true}) {
      EvalOptions options;
      options.enable_seminaive = seminaive;
      options.enable_indexing = indexing;
      // Oracle 1: the tree-walker. Oracle 2: the unoptimized VM.
      std::string tree = RunToFacts(source, options);
      options.engine = EvalOptions::Engine::kVm;
      std::string vm = RunToFacts(source, options);
      options.il_opt = true;
      std::string vm_opt = RunToFacts(source, options);
      options.il_fuse = true;
      std::string vm_fused = RunToFacts(source, options);
      options.dispatch = EvalOptions::Dispatch::kSwitch;
      std::string vm_fused_sw = RunToFacts(source, options);
      EXPECT_EQ(tree, vm) << "seminaive " << seminaive << ", indexing "
                          << indexing;
      EXPECT_EQ(vm, vm_opt) << "seminaive " << seminaive << ", indexing "
                            << indexing;
      EXPECT_EQ(vm, vm_fused) << "fused tier: seminaive " << seminaive
                              << ", indexing " << indexing;
      EXPECT_EQ(vm, vm_fused_sw)
          << "fused tier, switch dispatch: seminaive " << seminaive
          << ", indexing " << indexing;
    }
  }
}

TEST(IlOptDifferentialTest, StaticallyEmptyRuleStillRunsByteIdentical) {
  std::string source = R"(
    schema { relation R : D; relation S : D; }
    input R; output S;
    instance { R("a"); R("b"); R("c"); }
    program {
      S(x) :- R(x), x = "a", x = "b".
      S(x) :- R(x), x = "c".
    }
  )";
  EvalOptions options;
  std::string tree = RunToFacts(source, options);
  options.engine = EvalOptions::Engine::kVm;
  options.il_opt = true;
  EXPECT_EQ(tree, RunToFacts(source, options));
}

TEST(IlOptDifferentialTest, OptimizerShrinksVmInstructionCount) {
  std::string source = JoinProgram();
  EvalOptions options;
  options.engine = EvalOptions::Engine::kVm;
  EvalMetrics plain;
  RunToFacts(source, options, &plain);
  options.il_opt = true;
  EvalMetrics optimized;
  RunToFacts(source, options, &optimized);
  uint64_t plain_instrs = 0;
  uint64_t opt_instrs = 0;
  for (const RuleMetrics& r : plain.rules) plain_instrs += r.vm_instructions;
  for (const RuleMetrics& r : optimized.rules) {
    opt_instrs += r.vm_instructions;
  }
  EXPECT_GT(plain_instrs, 0u);
  EXPECT_GT(opt_instrs, 0u);
  EXPECT_LT(opt_instrs, plain_instrs);
  // The JSON rendering exposes the counter for the bench harness.
  EXPECT_NE(optimized.ToJson().find("\"vm_instructions\":"),
            std::string::npos);
}

TEST(IlOptDifferentialTest, FusionAccountsConstituentsAndDispatches) {
  std::string source = JoinProgram();
  EvalOptions options;
  options.engine = EvalOptions::Engine::kVm;
  options.il_opt = true;
  EvalMetrics unfused;
  RunToFacts(source, options, &unfused);
  options.il_fuse = true;
  EvalMetrics fused;
  RunToFacts(source, options, &fused);
  uint64_t unfused_instrs = 0;
  uint64_t fused_instrs = 0;
  uint64_t fused_dispatches = 0;
  for (const RuleMetrics& r : unfused.rules) {
    unfused_instrs += r.vm_instructions;
    EXPECT_EQ(r.vm_fused_dispatches, 0u);
  }
  for (const RuleMetrics& r : fused.rules) {
    fused_instrs += r.vm_instructions;
    fused_dispatches += r.vm_fused_dispatches;
  }
  // Fused ops charge their constituent count along the executed path, so
  // the instruction metric stays comparable with the unfused tier (the
  // keyed scan only skips work for candidates the unfused guard would
  // reject anyway); the separate dispatch counter is the fusion signal.
  EXPECT_GT(fused_instrs, 0u);
  EXPECT_LE(fused_instrs, unfused_instrs);
  EXPECT_GT(fused_dispatches, 0u);
  EXPECT_NE(fused.ToJson().find("\"vm_fused_dispatches\":"),
            std::string::npos);
}

}  // namespace
}  // namespace iqlkit::il
