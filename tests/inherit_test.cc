// §6: type inheritance -- isa hierarchies, inherited oid assignments, the
// *-interpretation, tau_P, and the compilation of schemas-with-isa into
// plain schemas with union types on which stock IQL runs unchanged.

#include "inherit/isa.h"

#include <gtest/gtest.h>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class IsaTest : public ::testing::Test {
 protected:
  Symbol Sym(std::string_view s) { return u_.Intern(s); }
  Universe u_;
  IsaHierarchy isa_;
};

TEST_F(IsaTest, ReflexiveTransitive) {
  ASSERT_TRUE(isa_.Declare(Sym("ta"), Sym("student")).ok());
  ASSERT_TRUE(isa_.Declare(Sym("student"), Sym("person")).ok());
  EXPECT_TRUE(isa_.IsSubclass(Sym("ta"), Sym("ta")));
  EXPECT_TRUE(isa_.IsSubclass(Sym("ta"), Sym("person")));
  EXPECT_FALSE(isa_.IsSubclass(Sym("person"), Sym("ta")));
}

TEST_F(IsaTest, CyclesRejected) {
  ASSERT_TRUE(isa_.Declare(Sym("a"), Sym("b")).ok());
  ASSERT_TRUE(isa_.Declare(Sym("b"), Sym("c")).ok());
  EXPECT_EQ(isa_.Declare(Sym("c"), Sym("a")).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IsaTest, StarMeetUnitesTupleAttributes) {
  // The §6 motivating example:
  // [A1:D, A2:D] & [A2:D, A3:D] == [A1:D, A2:D, A3:D] under *.
  TypePool& t = u_.types();
  TypeId d = t.Base();
  TypeId lhs = t.Tuple({{Sym("A1"), d}, {Sym("A2"), d}});
  TypeId rhs = t.Tuple({{Sym("A2"), d}, {Sym("A3"), d}});
  EXPECT_EQ(StarMeet(&t, lhs, rhs),
            t.Tuple({{Sym("A1"), d}, {Sym("A2"), d}, {Sym("A3"), d}}));
  // Under the ordinary interpretation the same meet is empty.
  EXPECT_EQ(IntersectionReduce(&t, t.Intersect2(lhs, rhs)), t.Empty());
}

TEST_F(IsaTest, StarMeetSharedAttributesMeetRecursively) {
  TypePool& t = u_.types();
  TypeId p1 = t.ClassNamed("P1");
  TypeId p2 = t.ClassNamed("P2");
  TypeId lhs = t.Tuple({{Sym("A"), t.Set(p1)}});
  TypeId rhs = t.Tuple({{Sym("A"), t.Set(p2)}});
  EXPECT_EQ(StarMeet(&t, lhs, rhs),
            t.Tuple({{Sym("A"), t.Set(t.Intersect2(p1, p2))}}));
}

TEST_F(IsaTest, StarMeetMismatchedShapesEmpty) {
  TypePool& t = u_.types();
  EXPECT_EQ(StarMeet(&t, t.Base(), t.Set(t.Base())), t.Empty());
  EXPECT_EQ(StarMeet(&t, t.Tuple({{Sym("A"), t.Base()}}), t.Base()),
            t.Empty());
}

// The university schema of Examples 6.1.2 / 6.2.1.
class UniversityTest : public IsaTest {
 protected:
  void SetUp() override {
    TypePool& t = u_.types();
    TypeId d = t.Base();
    schema_ = std::make_unique<Schema>(&u_);
    // §6.2.1's succinct declaration: each class declares only its own
    // structure; isa forces the sharing.
    ASSERT_TRUE(schema_
                    ->DeclareClass("person",
                                   t.Tuple({{Sym("name"), d}}))
                    .ok());
    ASSERT_TRUE(schema_
                    ->DeclareClass("student",
                                   t.Tuple({{Sym("course_taken"), d}}))
                    .ok());
    ASSERT_TRUE(schema_
                    ->DeclareClass("instructor",
                                   t.Tuple({{Sym("course_taught"), d}}))
                    .ok());
    ASSERT_TRUE(schema_->DeclareClass("ta", t.EmptyTuple()).ok());
    ASSERT_TRUE(
        schema_
            ->DeclareRelation(
                "Teaches", t.Tuple({{Sym("s"), t.ClassNamed("student")},
                                    {Sym("i"),
                                     t.ClassNamed("instructor")}}))
            .ok());
    ASSERT_TRUE(isa_.Declare(Sym("student"), Sym("person")).ok());
    ASSERT_TRUE(isa_.Declare(Sym("instructor"), Sym("person")).ok());
    ASSERT_TRUE(isa_.Declare(Sym("ta"), Sym("student")).ok());
    ASSERT_TRUE(isa_.Declare(Sym("ta"), Sym("instructor")).ok());
  }

  std::unique_ptr<Schema> schema_;
};

TEST_F(UniversityTest, TauTypesMatchExample612) {
  TypePool& t = u_.types();
  TypeId d = t.Base();
  auto tau = [&](std::string_view cls) {
    auto r = TauType(&u_, *schema_, isa_, Sym(cls));
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  };
  EXPECT_EQ(tau("person"), t.Tuple({{Sym("name"), d}}));
  EXPECT_EQ(tau("student"),
            t.Tuple({{Sym("name"), d}, {Sym("course_taken"), d}}));
  EXPECT_EQ(tau("instructor"),
            t.Tuple({{Sym("name"), d}, {Sym("course_taught"), d}}));
  EXPECT_EQ(tau("ta"), t.Tuple({{Sym("name"), d},
                                {Sym("course_taken"), d},
                                {Sym("course_taught"), d}}));
}

TEST_F(UniversityTest, InheritedResolverPoolsSubclasses) {
  Instance inst(schema_.get(), &u_);
  auto ta = inst.CreateOid("ta");
  auto stu = inst.CreateOid("student");
  ASSERT_TRUE(ta.ok() && stu.ok());
  InheritedResolver resolver(&inst, &isa_);
  EXPECT_TRUE(resolver.OidInClass(*ta, Sym("ta")));
  EXPECT_TRUE(resolver.OidInClass(*ta, Sym("student")));
  EXPECT_TRUE(resolver.OidInClass(*ta, Sym("instructor")));
  EXPECT_TRUE(resolver.OidInClass(*ta, Sym("person")));
  EXPECT_FALSE(resolver.OidInClass(*stu, Sym("ta")));
  EXPECT_TRUE(resolver.OidInClass(*stu, Sym("person")));
}

TEST_F(UniversityTest, ValidateWithInheritanceDirectly) {
  // Definition 6.2.2, no compilation: a ta may appear at student- and
  // instructor-typed positions; its value must have exactly tau_ta's
  // attributes.
  Instance inst(schema_.get(), &u_);
  ValueStore& v = u_.values();
  auto alice = inst.CreateOid("student");
  auto bob = inst.CreateOid("ta");
  ASSERT_TRUE(alice.ok() && bob.ok());
  ASSERT_TRUE(inst.SetOidValue(
                      *alice,
                      v.Tuple({{Sym("name"), v.Const("alice")},
                               {Sym("course_taken"), v.Const("db")}}))
                  .ok());
  ASSERT_TRUE(inst.SetOidValue(
                      *bob,
                      v.Tuple({{Sym("name"), v.Const("bob")},
                               {Sym("course_taken"), v.Const("th")},
                               {Sym("course_taught"), v.Const("db")}}))
                  .ok());
  // A ta teaches: legal under pi-bar (bob in instructor-bar).
  ASSERT_TRUE(inst.AddToRelation("Teaches",
                                 v.Tuple({{Sym("s"), v.OfOid(*alice)},
                                          {Sym("i"), v.OfOid(*bob)}}))
                  .ok());
  EXPECT_TRUE(ValidateWithInheritance(inst, *schema_, isa_).ok())
      << ValidateWithInheritance(inst, *schema_, isa_);

  // A plain student at an instructor position is NOT legal.
  Instance bad(schema_.get(), &u_);
  auto carol = bad.CreateOid("student");
  ASSERT_TRUE(carol.ok());
  ASSERT_TRUE(bad.SetOidValue(
                      *carol,
                      v.Tuple({{Sym("name"), v.Const("carol")},
                               {Sym("course_taken"), v.Const("db")}}))
                  .ok());
  ASSERT_TRUE(bad.AddToRelation("Teaches",
                                v.Tuple({{Sym("s"), v.OfOid(*carol)},
                                         {Sym("i"), v.OfOid(*carol)}}))
                  .ok());
  EXPECT_EQ(ValidateWithInheritance(bad, *schema_, isa_).code(),
            StatusCode::kTypeError);
}

TEST_F(UniversityTest, ValidateWithInheritanceRejectsWrongShape) {
  // A ta whose value lacks the inherited attributes fails tau_ta.
  Instance inst(schema_.get(), &u_);
  ValueStore& v = u_.values();
  auto bob = inst.CreateOid("ta");
  ASSERT_TRUE(bob.ok());
  ASSERT_TRUE(inst.SetOidValue(
                      *bob, v.Tuple({{Sym("name"), v.Const("bob")}}))
                  .ok());
  EXPECT_EQ(ValidateWithInheritance(inst, *schema_, isa_).code(),
            StatusCode::kTypeError);
}

TEST_F(UniversityTest, CompiledSchemaUsesSubclassUnions) {
  auto compiled = CompileInheritance(&u_, *schema_, isa_);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  TypePool& t = u_.types();
  // Teaches: [s: (student | ta), i: (instructor | ta)].
  TypeId expected = t.Tuple(
      {{Sym("s"), t.Union2(t.ClassNamed("student"), t.ClassNamed("ta"))},
       {Sym("i"),
        t.Union2(t.ClassNamed("instructor"), t.ClassNamed("ta"))}});
  EXPECT_EQ(compiled->RelationType(Sym("Teaches")), expected);
  // ta's value type is the full three-attribute tuple.
  EXPECT_EQ(compiled->ClassType(Sym("ta")),
            t.Tuple({{Sym("name"), t.Base()},
                     {Sym("course_taken"), t.Base()},
                     {Sym("course_taught"), t.Base()}}));
}

TEST_F(UniversityTest, StockIqlRunsOnCompiledSchema) {
  // "IQL can be used at no cost of expressive power" (§6): a ta can teach
  // a student, and a query over persons sees everyone.
  auto compiled_schema = CompileInheritance(&u_, *schema_, isa_);
  ASSERT_TRUE(compiled_schema.ok()) << compiled_schema.status();
  auto schema = std::make_shared<const Schema>(std::move(*compiled_schema));

  Instance inst(schema, &u_);
  ValueStore& v = u_.values();
  auto mk = [&](std::string_view cls, std::string_view name,
                std::vector<std::pair<std::string, std::string>> attrs) {
    auto o = inst.CreateOid(cls);
    EXPECT_TRUE(o.ok());
    std::vector<std::pair<Symbol, ValueId>> fields = {
        {Sym("name"), v.Const(name)}};
    for (const auto& [attr, val] : attrs) {
      fields.emplace_back(Sym(attr), v.Const(val));
    }
    EXPECT_TRUE(inst.SetOidValue(*o, v.Tuple(std::move(fields))).ok());
    return *o;
  };
  Oid alice = mk("student", "alice", {{"course_taken", "db"}});
  Oid bob = mk("ta", "bob",
               {{"course_taken", "theory"}, {"course_taught", "db"}});
  mk("instructor", "carol", {{"course_taught", "theory"}});
  ASSERT_TRUE(inst.AddToRelation(
                      "Teaches",
                      v.Tuple({{Sym("s"), v.OfOid(alice)},
                               {Sym("i"), v.OfOid(bob)}}))  // a ta teaches
                  .ok());
  ASSERT_TRUE(inst.Validate().ok()) << inst.Validate();

  // Query: names of everyone who is a person (any subclass).
  auto program = ParseProgramText(&u_, *schema, R"(
    var x : (person | student | instructor | ta);
    var n : D;
    Names(n) :- person(x), x^ = [name: n].
    Names(n) :- student(x), x^ = [name: n, course_taken: c].
    Names(n) :- instructor(x), x^ = [name: n, course_taught: c].
    Names(n) :- ta(x), x^ = [name: n, course_taken: c, course_taught: c'].
  )");
  // Names is not declared yet -- extend the schema first.
  ASSERT_FALSE(program.ok());

  Schema extended = *schema;
  ASSERT_TRUE(extended.DeclareRelation("Names", u_.types().Base()).ok());
  auto program2 = ParseProgramText(&u_, extended, R"(
    Names(n) :- person(x), x^ = [name: n].
    Names(n) :- student(x), x^ = [name: n, course_taken: c].
    Names(n) :- instructor(x), x^ = [name: n, course_taught: c].
    Names(n) :- ta(x), x^ = [name: n, course_taken: c, course_taught: c'].
  )");
  ASSERT_TRUE(program2.ok()) << program2.status();
  auto out = EvaluateProgram(&u_, extended, &*program2, inst);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->Relation(Sym("Names")).size(), 3u);
}

}  // namespace
}  // namespace iqlkit
