#include "model/instance.h"

#include <gtest/gtest.h>

#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  Symbol Sym(std::string_view s) { return u_.Intern(s); }
  TypePool& T() { return u_.types(); }
  ValueStore& V() { return u_.values(); }

  Universe u_;
};

TEST_F(InstanceTest, RelationInsertAndDuplicateElimination) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareRelation("R", T().Base()).ok());
  Instance inst(&s, &u_);
  ValueId x = V().Const("x");
  ASSERT_TRUE(inst.AddToRelation("R", x).ok());
  ASSERT_TRUE(inst.AddToRelation("R", x).ok());
  EXPECT_EQ(inst.Relation(Sym("R")).size(), 1u);
  EXPECT_TRUE(inst.RelationContains(Sym("R"), x));
}

TEST_F(InstanceTest, UnknownRelationRejected) {
  Schema s(&u_);
  Instance inst(&s, &u_);
  EXPECT_EQ(inst.AddToRelation("R", V().Const("x")).code(),
            StatusCode::kNotFound);
}

TEST_F(InstanceTest, DisjointnessEnforced) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareClass("P1", T().Base()).ok());
  ASSERT_TRUE(s.DeclareClass("P2", T().Base()).ok());
  Instance inst(&s, &u_);
  auto o = inst.CreateOid("P1");
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(inst.AddOid(Sym("P2"), *o).code(),
            StatusCode::kFailedPrecondition);
  // Re-adding to the same class is a no-op.
  EXPECT_TRUE(inst.AddOid(Sym("P1"), *o).ok());
}

TEST_F(InstanceTest, SetValuedClassDefaultsToEmptySet) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareClass("P", T().Set(T().Base())).ok());
  Instance inst(&s, &u_);
  auto o = inst.CreateOid("P");
  ASSERT_TRUE(o.ok());
  auto v = inst.ValueOf(*o);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, V().EmptySet());
}

TEST_F(InstanceTest, NonSetOidStartsUndefined) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareClass("P", T().Base()).ok());
  Instance inst(&s, &u_);
  auto o = inst.CreateOid("P");
  ASSERT_TRUE(o.ok());
  EXPECT_FALSE(inst.ValueOf(*o).has_value());
}

TEST_F(InstanceTest, ValuesAreWriteOnce) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareClass("P", T().Base()).ok());
  Instance inst(&s, &u_);
  auto o = inst.CreateOid("P");
  ASSERT_TRUE(o.ok());
  ASSERT_TRUE(inst.SetOidValue(*o, V().Const("a")).ok());
  EXPECT_TRUE(inst.SetOidValue(*o, V().Const("a")).ok());  // same value ok
  EXPECT_EQ(inst.SetOidValue(*o, V().Const("b")).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(InstanceTest, AddToSetOidAccumulates) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareClass("P", T().Set(T().Base())).ok());
  Instance inst(&s, &u_);
  auto o = inst.CreateOid("P");
  ASSERT_TRUE(o.ok());
  ASSERT_TRUE(inst.AddToSetOid(*o, V().Const("a")).ok());
  ASSERT_TRUE(inst.AddToSetOid(*o, V().Const("b")).ok());
  ASSERT_TRUE(inst.AddToSetOid(*o, V().Const("a")).ok());
  EXPECT_EQ(inst.ValueOf(*o), V().Set({V().Const("a"), V().Const("b")}));
}

TEST_F(InstanceTest, AddToSetOidRejectsNonSetClass) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareClass("P", T().Base()).ok());
  Instance inst(&s, &u_);
  auto o = inst.CreateOid("P");
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(inst.AddToSetOid(*o, V().Const("a")).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(InstanceTest, ValidateChecksRelationTypes) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareRelation("R", T().Base()).ok());
  Instance inst(&s, &u_);
  ASSERT_TRUE(inst.AddToRelation("R", V().EmptySet()).ok());
  EXPECT_EQ(inst.Validate().code(), StatusCode::kTypeError);
}

TEST_F(InstanceTest, ValidateChecksOidClosure) {
  Schema s(&u_);
  ASSERT_TRUE(s.DeclareClass("P", T().Base()).ok());
  ASSERT_TRUE(s.DeclareRelation("R", T().ClassNamed("P")).ok());
  Instance inst(&s, &u_);
  // Oid{99} was never placed in any class.
  ASSERT_TRUE(inst.AddToRelation("R", V().OfOid(Oid{99})).ok());
  EXPECT_EQ(inst.Validate().code(), StatusCode::kTypeError);
}

// Builds the full Genesis instance of Example 1.1 and validates it.
class GenesisTest : public InstanceTest {
 protected:
  void SetUp() override {
    TypeId str = T().Base();
    TypeId gen1 = T().ClassNamed("FirstGeneration");
    TypeId gen2 = T().ClassNamed("SecondGeneration");
    schema_ = std::make_unique<Schema>(&u_);
    ASSERT_TRUE(schema_
                    ->DeclareClass(
                        "FirstGeneration",
                        T().Tuple({{Sym("name"), str},
                                   {Sym("spouse"), gen1},
                                   {Sym("children"), T().Set(gen2)}}))
                    .ok());
    ASSERT_TRUE(schema_
                    ->DeclareClass(
                        "SecondGeneration",
                        T().Tuple({{Sym("name"), str},
                                   {Sym("occupations"), T().Set(str)}}))
                    .ok());
    ASSERT_TRUE(schema_->DeclareRelation("FoundedLineage", gen2).ok());
    ASSERT_TRUE(
        schema_
            ->DeclareRelation(
                "AncestorOfCelebrity",
                T().Tuple({{Sym("anc"), gen2},
                           {Sym("desc"),
                            T().Union2(str, T().Tuple({{Sym("spouse"),
                                                        str}}))}}))
            .ok());
    ASSERT_TRUE(schema_->Validate().ok());

    inst_ = std::make_unique<Instance>(schema_.get(), &u_);
    auto mk = [&](std::string_view cls, std::string_view name) {
      auto o = inst_->CreateOid(cls);
      EXPECT_TRUE(o.ok());
      inst_->NameOid(*o, name);
      return *o;
    };
    adam_ = mk("FirstGeneration", "adam");
    eve_ = mk("FirstGeneration", "eve");
    cain_ = mk("SecondGeneration", "cain");
    abel_ = mk("SecondGeneration", "abel");
    seth_ = mk("SecondGeneration", "seth");
    other_ = mk("SecondGeneration", "other");

    ValueId children = V().Set({V().OfOid(cain_), V().OfOid(abel_),
                                V().OfOid(seth_), V().OfOid(other_)});
    ASSERT_TRUE(inst_->SetOidValue(
                         adam_, V().Tuple({{Sym("name"), V().Const("Adam")},
                                           {Sym("spouse"), V().OfOid(eve_)},
                                           {Sym("children"), children}}))
                    .ok());
    ASSERT_TRUE(inst_->SetOidValue(
                         eve_, V().Tuple({{Sym("name"), V().Const("Eve")},
                                          {Sym("spouse"), V().OfOid(adam_)},
                                          {Sym("children"), children}}))
                    .ok());
    auto person = [&](std::string_view name,
                      std::vector<std::string> occupations) {
      std::vector<ValueId> occ;
      for (const auto& oc : occupations) occ.push_back(V().Const(oc));
      return V().Tuple({{Sym("name"), V().Const(name)},
                        {Sym("occupations"), V().Set(std::move(occ))}});
    };
    ASSERT_TRUE(inst_->SetOidValue(
                         cain_, person("Cain", {"Farmer", "Nomad",
                                                "Artisan"}))
                    .ok());
    ASSERT_TRUE(inst_->SetOidValue(abel_, person("Abel", {"Shepherd"})).ok());
    ASSERT_TRUE(inst_->SetOidValue(seth_, person("Seth", {})).ok());
    // nu(other) stays undefined ("Genesis is rather vague on this point").

    for (Oid founder : {cain_, seth_, other_}) {
      ASSERT_TRUE(
          inst_->AddToRelation("FoundedLineage", V().OfOid(founder)).ok());
    }
    ASSERT_TRUE(inst_->AddToRelation(
                         "AncestorOfCelebrity",
                         V().Tuple({{Sym("anc"), V().OfOid(seth_)},
                                    {Sym("desc"), V().Const("Noah")}}))
                    .ok());
    ASSERT_TRUE(
        inst_->AddToRelation(
                 "AncestorOfCelebrity",
                 V().Tuple({{Sym("anc"), V().OfOid(cain_)},
                            {Sym("desc"),
                             V().Tuple({{Sym("spouse"), V().Const("Ada")}})}}))
            .ok());
  }

  std::unique_ptr<Schema> schema_;
  std::unique_ptr<Instance> inst_;
  Oid adam_, eve_, cain_, abel_, seth_, other_;
};

TEST_F(GenesisTest, ValidatesAgainstSchema) {
  EXPECT_TRUE(inst_->Validate().ok()) << inst_->Validate();
}

TEST_F(GenesisTest, CyclicValuesThroughNu) {
  // adam's value references eve whose value references adam: the instance
  // is cyclic through nu, while each o-value stays a finite tree.
  auto adam_val = inst_->ValueOf(adam_);
  ASSERT_TRUE(adam_val.has_value());
  std::set<Oid> in_adam;
  V().CollectOids(*adam_val, &in_adam);
  EXPECT_TRUE(in_adam.count(eve_));
  auto eve_val = inst_->ValueOf(eve_);
  std::set<Oid> in_eve;
  V().CollectOids(*eve_val, &in_eve);
  EXPECT_TRUE(in_eve.count(adam_));
}

TEST_F(GenesisTest, UnionTypedRelationAcceptsBothBranches) {
  // "Noah" (a string) and [spouse: "Ada"] (a tuple) both inhabit
  // (string | [spouse: string]).
  EXPECT_EQ(inst_->Relation(Sym("AncestorOfCelebrity")).size(), 2u);
  EXPECT_TRUE(inst_->Validate().ok());
}

TEST_F(GenesisTest, UndefinedValueModelsIncompleteInformation) {
  EXPECT_FALSE(inst_->ValueOf(other_).has_value());
  EXPECT_TRUE(inst_->Validate().ok());
}

TEST_F(GenesisTest, ObjectsAndConstants) {
  EXPECT_EQ(inst_->Objects().size(), 6u);
  std::set<Symbol> consts = inst_->ConstantAtoms();
  EXPECT_TRUE(consts.count(Sym("Adam")));
  EXPECT_TRUE(consts.count(Sym("Shepherd")));
  EXPECT_TRUE(consts.count(Sym("Ada")));
  // The oid adam is distinct from the string "Adam" (Ex 1.1).
  EXPECT_NE(V().OfOid(adam_), V().Const("Adam"));
}

TEST_F(GenesisTest, ProjectionToSubschema) {
  auto sub_schema = schema_->Project({"FirstGeneration", "SecondGeneration",
                                      "FoundedLineage"});
  ASSERT_TRUE(sub_schema.ok());
  Instance sub = inst_->Project(&*sub_schema);
  EXPECT_EQ(sub.Relation(Sym("FoundedLineage")).size(), 3u);
  EXPECT_EQ(sub.ClassExtent(Sym("FirstGeneration")).size(), 2u);
  EXPECT_TRUE(sub.Validate().ok());
}

TEST_F(GenesisTest, ToStringMentionsNamedOids) {
  std::string text = inst_->ToString();
  EXPECT_NE(text.find("nu(adam) = "), std::string::npos);
  EXPECT_NE(text.find("\"Eve\""), std::string::npos);
}

TEST_F(GenesisTest, GroundFactCountMatchesPaperRepresentation) {
  // pi facts: 2 + 4 = 6; rho facts: 3 + 2 = 5; nu facts: adam, eve, cain,
  // abel, seth defined (5 non-set assignments), other undefined (0).
  EXPECT_EQ(inst_->GroundFactCount(), 6u + 5u + 5u);
}

}  // namespace
}  // namespace iqlkit
