// Parser robustness: random garbage and mutated valid sources must yield
// Status errors, never crashes or hangs.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

constexpr std::string_view kValid = R"(
  schema {
    relation R  : [D, D];
    class P : [name: D, succ: {P}];
  }
  input R;
  instance {
    P(@a);
    @a = [name: "x", succ: {@a}];
    R(1, 2);
  }
  program {
    var X : {D};
    R(x, y) :- R(y, x), !R(x, x), x != y.
  }
)";

class ParserFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  std::mt19937 rng(GetParam() * 48271 + 5);
  static const char* kAtoms[] = {
      "schema", "relation", "class", "program", "input", "output",
      "instance", "var", "choose", "empty", "D", "{", "}", "[", "]", "(",
      ")", ",", ":", ";", ".", "^", "=", "!=", "!", ":-", "|", "&", "@",
      "R", "P", "x", "42", "\"s\"", "#c\n"};
  for (int trial = 0; trial < 50; ++trial) {
    std::string source;
    int len = 1 + rng() % 40;
    for (int i = 0; i < len; ++i) {
      source += kAtoms[rng() % (sizeof(kAtoms) / sizeof(kAtoms[0]))];
      source += ' ';
    }
    Universe u;
    auto unit = ParseUnit(&u, source);  // must return, either way
    (void)unit;
  }
}

TEST_P(ParserFuzzTest, MutatedValidSourceNeverCrashes) {
  std::mt19937 rng(GetParam() * 2246822519u + 3);
  for (int trial = 0; trial < 60; ++trial) {
    std::string source(kValid);
    int mutations = 1 + rng() % 4;
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng() % source.size();
      switch (rng() % 3) {
        case 0:
          source.erase(pos, 1 + rng() % 3);
          break;
        case 1:
          source.insert(pos, 1, static_cast<char>(' ' + rng() % 95));
          break;
        default:
          source[pos] = static_cast<char>(' ' + rng() % 95);
          break;
      }
    }
    Universe u;
    auto unit = ParseUnit(&u, source);
    (void)unit;
  }
}

TEST_P(ParserFuzzTest, TruncatedValidSourceNeverCrashes) {
  std::mt19937 rng(GetParam() + 17);
  for (int trial = 0; trial < 40; ++trial) {
    std::string source(kValid.substr(0, rng() % kValid.size()));
    Universe u;
    auto unit = ParseUnit(&u, source);
    (void)unit;
  }
}

TEST(ParserFuzzSanityTest, TheValidSourceActuallyParses) {
  Universe u;
  auto unit = ParseUnit(&u, kValid);
  EXPECT_TRUE(unit.ok()) << unit.status();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint32_t>(0, 6));

}  // namespace
}  // namespace iqlkit
