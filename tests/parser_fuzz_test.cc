// Parser robustness: random garbage and mutated valid sources must yield
// Status errors, never crashes or hangs. Every input is also pushed
// through the full lint pipeline (type check + analyzer passes), which
// must likewise survive and may only report spans inside the buffer.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

// Parses and lints `source`; asserts that every diagnostic (and every
// attached note and fix-it) carries a span that lies inside the buffer.
void ParseAndLint(const std::string& source) {
  {
    Universe u;
    auto unit = ParseUnit(&u, source);  // must return, either way
    (void)unit;
  }
  Universe u;
  DiagnosticSink sink;
  LintSource(&u, source, AnalyzerOptions{}, &sink);
  auto check_span = [&](const SourceSpan& span) {
    if (!span.valid()) return;
    EXPECT_GE(span.line, 1);
    EXPECT_GE(span.column, 1);
    EXPECT_GE(span.offset, 0);
    EXPECT_GE(span.length, 0);
    EXPECT_LE(static_cast<size_t>(span.offset) +
                  static_cast<size_t>(span.length),
              source.size())
        << "span [" << span.offset << ", +" << span.length
        << ") escapes a " << source.size() << "-byte buffer";
  };
  for (const Diagnostic& d : sink.diagnostics()) {
    check_span(d.span);
    for (const DiagnosticNote& note : d.notes) check_span(note.span);
    if (d.fixit) check_span(d.fixit->span);
  }
}

// Seed corpus: every example program doubles as a fuzz seed, so mutation
// starts from realistic inputs that exercise deep parser paths.
std::vector<std::pair<std::string, std::string>> SeedCorpus() {
  std::vector<std::pair<std::string, std::string>> corpus;
  std::filesystem::path dir =
      std::filesystem::path(IQLKIT_SOURCE_DIR) / "examples" / "iql";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".iql") continue;
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    corpus.emplace_back(entry.path().stem().string(), text.str());
  }
  std::sort(corpus.begin(), corpus.end());
  return corpus;
}

constexpr std::string_view kValid = R"(
  schema {
    relation R  : [D, D];
    class P : [name: D, succ: {P}];
  }
  input R;
  instance {
    P(@a);
    @a = [name: "x", succ: {@a}];
    R(1, 2);
  }
  program {
    var X : {D};
    R(x, y) :- R(y, x), !R(x, x), x != y.
  }
)";

class ParserFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  std::mt19937 rng(GetParam() * 48271 + 5);
  static const char* kAtoms[] = {
      "schema", "relation", "class", "program", "input", "output",
      "instance", "var", "choose", "empty", "D", "{", "}", "[", "]", "(",
      ")", ",", ":", ";", ".", "^", "=", "!=", "!", ":-", "|", "&", "@",
      "R", "P", "x", "42", "\"s\"", "#c\n"};
  for (int trial = 0; trial < 50; ++trial) {
    std::string source;
    int len = 1 + rng() % 40;
    for (int i = 0; i < len; ++i) {
      source += kAtoms[rng() % (sizeof(kAtoms) / sizeof(kAtoms[0]))];
      source += ' ';
    }
    ParseAndLint(source);
  }
}

TEST_P(ParserFuzzTest, MutatedValidSourceNeverCrashes) {
  std::mt19937 rng(GetParam() * 2246822519u + 3);
  for (int trial = 0; trial < 60; ++trial) {
    std::string source(kValid);
    int mutations = 1 + rng() % 4;
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng() % source.size();
      switch (rng() % 3) {
        case 0:
          source.erase(pos, 1 + rng() % 3);
          break;
        case 1:
          source.insert(pos, 1, static_cast<char>(' ' + rng() % 95));
          break;
        default:
          source[pos] = static_cast<char>(' ' + rng() % 95);
          break;
      }
    }
    ParseAndLint(source);
  }
}

TEST_P(ParserFuzzTest, TruncatedValidSourceNeverCrashes) {
  std::mt19937 rng(GetParam() + 17);
  for (int trial = 0; trial < 40; ++trial) {
    std::string source(kValid.substr(0, rng() % kValid.size()));
    ParseAndLint(source);
  }
}

TEST(ParserFuzzSanityTest, TheValidSourceActuallyParses) {
  Universe u;
  auto unit = ParseUnit(&u, kValid);
  EXPECT_TRUE(unit.ok()) << unit.status();
}

TEST(ParserFuzzSanityTest, EveryCorpusSeedParses) {
  auto corpus = SeedCorpus();
  ASSERT_GE(corpus.size(), 5u);
  for (const auto& [name, source] : corpus) {
    Universe u;
    auto unit = ParseUnit(&u, source);
    EXPECT_TRUE(unit.ok()) << name << ": " << unit.status();
  }
}

TEST_P(ParserFuzzTest, MutatedCorpusSeedNeverCrashes) {
  static const auto corpus = SeedCorpus();
  std::mt19937 rng(GetParam() * 2654435761u + 11);
  for (int trial = 0; trial < 30; ++trial) {
    std::string source = corpus[rng() % corpus.size()].second;
    int mutations = 1 + rng() % 5;
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng() % source.size();
      switch (rng() % 4) {
        case 0:
          source.erase(pos, 1 + rng() % 8);
          break;
        case 1:
          source.insert(pos, 1, static_cast<char>(' ' + rng() % 95));
          break;
        case 2:
          // Splice a random chunk of another seed in.
          {
            const std::string& other =
                corpus[rng() % corpus.size()].second;
            size_t start = rng() % other.size();
            size_t len = rng() % 30;
            source.insert(pos, other.substr(start, len));
          }
          break;
        default:
          source[pos] = static_cast<char>(' ' + rng() % 95);
          break;
      }
    }
    ParseAndLint(source);
  }
}

TEST_P(ParserFuzzTest, TruncatedCorpusSeedNeverCrashes) {
  static const auto corpus = SeedCorpus();
  std::mt19937 rng(GetParam() * 69069u + 29);
  for (int trial = 0; trial < 30; ++trial) {
    const std::string& full = corpus[rng() % corpus.size()].second;
    std::string source = full.substr(0, rng() % full.size());
    ParseAndLint(source);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint32_t>(0, 6));

}  // namespace
}  // namespace iqlkit
