// Golden snapshot corpus: canonical-mode snapshot images of fixed
// instances, compared byte-for-byte against tests/golden_storage/. The
// canonical encoder is a pure function of the abstract instance (dense oid
// renumbering, name-ordered symbols and values), so these images pin the
// on-disk format itself -- magic, version byte, header layout, table
// encodings. Any byte drift here is a format change: bump
// storage::kSnapshotVersion and teach DecodeSnapshot the old version, or
// existing data directories stop loading. Pass --regen to rewrite the
// corpus after an intentional format change (then review the diff).

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"
#include "storage/snapshot.h"

namespace iqlkit::golden_storage {

bool regen = false;

namespace {

namespace fs = std::filesystem;

using storage::DecodeSnapshot;
using storage::EncodeSnapshot;
using storage::SnapshotOptions;

fs::path GoldenDir() {
  return fs::path(IQLKIT_SOURCE_DIR) / "tests" / "golden_storage";
}

// Pure relational facts: constants, positional tuples.
constexpr const char* kRelational = R"(
  schema { relation E : [D, D]; relation Tag : D; }
  instance {
    E(["a", "b"]); E(["b", "c"]);
    Tag("x"); Tag("a long constant with spaces");
  }
)";

// Oid-heavy: named oids, cyclic tuple nu-values, oid sets, an oid with
// undefined nu, set-typed relation attributes.
constexpr const char* kObjects = R"(
  schema {
    class P : [id: D, friends: {P}];
    relation R : [name: D, who: P, tags: {D}];
  }
  instance {
    P(@adam); P(@eve); P(@loner);
    @adam = [id: "adam", friends: {@eve}];
    @eve  = [id: "eve", friends: {@adam, @eve}];
    R([name: "pair", who: @adam, tags: {"x", "y"}]);
  }
)";

// An evaluated output with invented oids and set-valued nu: pins how run
// results (not just inputs) serialize.
constexpr const char* kInvention = R"(
  schema {
    relation E : [D, D];
    relation Box : [D, P];
    class P : {D};
  }
  instance { E(["a", "b"]); E(["b", "c"]); }
  program {
    Box(x, p) :- E(x, y).
    p^(y) :- Box(x, p), E(x, y).
  }
)";

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// 16 bytes per line, offset-prefixed: stable, reviewable diffs.
std::string HexDump(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < bytes.size(); i += 16) {
    char offset[32];
    std::snprintf(offset, sizeof(offset), "%06zx ", i);
    out += offset;
    for (size_t j = i; j < i + 16 && j < bytes.size(); ++j) {
      uint8_t b = static_cast<uint8_t>(bytes[j]);
      out += ' ';
      out += kHex[b >> 4];
      out += kHex[b & 0xF];
    }
    out += '\n';
  }
  return out;
}

// Canonical snapshot of `source`'s instance; with `evaluate`, of its
// program's output (serial, deterministic choose) instead.
std::string SnapshotBytes(const char* source, bool evaluate) {
  Universe u;
  auto unit = ParseUnit(&u, source);
  EXPECT_TRUE(unit.ok()) << unit.status();
  if (!unit.ok()) return {};
  Instance input(&unit->schema, &u);
  Status applied = ApplyFacts(*unit, &input);
  EXPECT_TRUE(applied.ok()) << applied;
  SnapshotOptions options;
  options.canonical_oids = true;
  if (!evaluate) return EncodeSnapshot(input, options);
  EvalOptions eval;
  eval.num_threads = 1;
  auto out = EvaluateProgram(&u, unit->schema, &unit->program, input, eval);
  EXPECT_TRUE(out.ok()) << out.status();
  if (!out.ok()) return {};
  return EncodeSnapshot(*out, options);
}

void RunGolden(const std::string& name, const char* source, bool evaluate) {
  std::string bytes = SnapshotBytes(source, evaluate);
  ASSERT_FALSE(bytes.empty());

  // The pinned header prefix, independent of the golden files.
  ASSERT_GE(bytes.size(), 20u);
  EXPECT_EQ(bytes.substr(0, 4), "IQS1");
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), storage::kSnapshotVersion);
  EXPECT_EQ(static_cast<uint8_t>(bytes[5]) & 1, 1);  // canonical flag

  // The image must load back (self-check before pinning it).
  Universe u;
  auto unit = ParseUnit(&u, source);
  ASSERT_TRUE(unit.ok());
  auto loaded = DecodeSnapshot(
      bytes,
      std::shared_ptr<const Schema>(std::shared_ptr<const Schema>(),
                                    &unit->schema),
      &u);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  std::string dump = HexDump(bytes);
  fs::path golden = GoldenDir() / (name + ".expected");
  if (regen) {
    fs::create_directories(GoldenDir());
    std::ofstream out(golden);
    ASSERT_TRUE(out.good()) << "cannot write " << golden;
    out << dump;
    return;
  }
  ASSERT_TRUE(fs::exists(golden))
      << golden << " is missing; run storage_golden_test --regen";
  EXPECT_EQ(ReadFile(golden), dump)
      << "snapshot format drift for " << name
      << "; an intentional change needs a kSnapshotVersion bump and a "
         "--regen (old images must still decode)";
}

TEST(StorageGoldenTest, Relational) { RunGolden("relational", kRelational, false); }
TEST(StorageGoldenTest, Objects) { RunGolden("objects", kObjects, false); }
TEST(StorageGoldenTest, Invention) { RunGolden("invention", kInvention, true); }

// The version gate itself is part of the pinned contract: a future-version
// image must be refused, never half-decoded.
TEST(StorageGoldenTest, FutureVersionByteIsRejected) {
  std::string bytes = SnapshotBytes(kRelational, false);
  ASSERT_GE(bytes.size(), 20u);
  bytes[4] = static_cast<char>(storage::kSnapshotVersion + 1);
  Universe u;
  auto unit = ParseUnit(&u, kRelational);
  ASSERT_TRUE(unit.ok());
  auto loaded = DecodeSnapshot(
      bytes,
      std::shared_ptr<const Schema>(std::shared_ptr<const Schema>(),
                                    &unit->schema),
      &u);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(
      loaded.status().message().find("unsupported snapshot format version"),
      std::string::npos);
}

}  // namespace
}  // namespace iqlkit::golden_storage

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") iqlkit::golden_storage::regen = true;
  }
  return RUN_ALL_TESTS();
}
