// Text round trips: schemas, types, programs, and instances survive
// ToString/Write followed by re-parsing.

#include <gtest/gtest.h>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"
#include "transform/isomorphism.h"

namespace iqlkit {
namespace {

TEST(RoundtripTest, TypesReparseToSameIds) {
  Universe u;
  for (const char* text :
       {"D", "empty", "{D}", "[A: D, B: {P}]", "[D, D, {D}]",
        "(D | P | [A: D])", "(P & Q)", "{[name: D, succ: {P}]}"}) {
    auto t1 = ParseTypeText(&u, text);
    ASSERT_TRUE(t1.ok()) << text << ": " << t1.status();
    std::string printed = u.types().ToString(*t1);
    auto t2 = ParseTypeText(&u, printed);
    ASSERT_TRUE(t2.ok()) << printed << ": " << t2.status();
    EXPECT_EQ(*t1, *t2) << text << " -> " << printed;
  }
}

TEST(RoundtripTest, SchemaReparsesEquivalently) {
  Universe u;
  auto s1 = ParseSchemaText(&u, R"(
    schema {
      relation R : [D, (D | P)];
      class P : [name: D, succ: {P}];
      class Q : {D};
    }
  )");
  ASSERT_TRUE(s1.ok()) << s1.status();
  std::string printed = s1->ToString();
  Universe u2;
  auto s2 = ParseSchemaText(&u2, printed);
  ASSERT_TRUE(s2.ok()) << printed << ": " << s2.status();
  EXPECT_EQ(s2->ToString(), printed);
}

TEST(RoundtripTest, ProgramReparsesToSameText) {
  Universe u;
  auto unit = ParseUnit(&u, R"(
    schema {
      relation R : [D, D];
      relation S : D;
      class P : {D};
    }
    program {
      S(x) :- R(x, y), !S(y), x != y.
      ;
      p^(x) :- S(x), P(p).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  std::string printed = unit->program.ToString(u.symbols());
  auto reparsed = ParseProgramText(&u, unit->schema, printed);
  ASSERT_TRUE(reparsed.ok()) << printed << ": " << reparsed.status();
  EXPECT_EQ(reparsed->ToString(u.symbols()), printed);
}

TEST(RoundtripTest, InstanceWriteFactsReadBack) {
  Universe u;
  auto unit = ParseUnit(&u, R"(
    schema {
      class Person : [name: D, friends: {Person}];
      class Bag : {D};
      relation Pair : [D, D];
      relation Vip : Person;
    }
    instance {
      Person(@ann);
      Person(@bo);
      Bag(@bag);
      @ann = [name: "Ann \"the ant\"", friends: {@bo, @ann}];
      @bo  = [name: "Bo", friends: {}];
      @bag = {"x", "y"};
      Pair(1, 2);
      Vip(@ann);
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  Instance original(&unit->schema, &u);
  ASSERT_TRUE(ApplyFacts(*unit, &original).ok());
  ASSERT_TRUE(original.Validate().ok()) << original.Validate();

  std::string facts = WriteFacts(original);
  // Re-assemble a full unit: the schema plus the serialized facts.
  std::string source = "schema {\n" + unit->schema.ToString() + "}\n" +
                       facts;
  auto unit2 = ParseUnit(&u, source);
  ASSERT_TRUE(unit2.ok()) << source << "\n" << unit2.status();
  Instance restored(&unit2->schema, &u);
  ASSERT_TRUE(ApplyFacts(*unit2, &restored).ok());
  EXPECT_TRUE(OIsomorphic(original, restored)) << facts;
  // Labels survive: the restored instance knows "ann".
  bool found_ann = false;
  for (Oid o : restored.Objects()) {
    if (restored.OidLabel(o) == "ann") found_ann = true;
  }
  EXPECT_TRUE(found_ann) << facts;
}

TEST(RoundtripTest, WriteFactsHandlesUnnamedOidsAndPositionalTuples) {
  Universe u;
  TypePool& t = u.types();
  Schema schema(&u);
  ASSERT_TRUE(schema.DeclareClass("N", t.Base()).ok());
  ASSERT_TRUE(
      schema
          .DeclareRelation("E", t.Tuple({{u.Intern("#1"), t.ClassNamed("N")},
                                         {u.Intern("#2"),
                                          t.ClassNamed("N")}}))
          .ok());
  Instance original(&schema, &u);
  auto a = original.CreateOid("N");
  auto b = original.CreateOid("N");
  ASSERT_TRUE(a.ok() && b.ok());
  ValueStore& v = u.values();
  ASSERT_TRUE(original
                  .AddToRelation("E",
                                 v.Tuple({{u.Intern("#1"), v.OfOid(*a)},
                                          {u.Intern("#2"), v.OfOid(*b)}}))
                  .ok());
  std::string facts = WriteFacts(original);
  // Positional rendering, no named #-attributes.
  EXPECT_EQ(facts.find("#1:"), std::string::npos) << facts;

  std::string source = "schema {\n" + schema.ToString() + "}\n" + facts;
  auto unit = ParseUnit(&u, source);
  ASSERT_TRUE(unit.ok()) << source << "\n" << unit.status();
  Instance restored(&unit->schema, &u);
  ASSERT_TRUE(ApplyFacts(*unit, &restored).ok());
  EXPECT_TRUE(OIsomorphic(original, restored)) << facts;
}

}  // namespace
}  // namespace iqlkit
