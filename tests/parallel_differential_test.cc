// Bit-identity of the worker-pool parallel evaluator: for every example
// program and a set of inline invention / choose / deletion programs,
// running with num_threads in {2, 8} must serialize to *byte-identical*
// facts -- not merely O-isomorphic ones -- as the num_threads = 1 run, in
// both naive and semi-naive configurations. Each run uses a fresh
// universe, so invented oids only coincide if the parallel merge fires
// every derivation in exactly the serial order.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<fs::path> ExamplePaths() {
  std::vector<fs::path> out;
  for (const auto& entry :
       fs::directory_iterator(fs::path(IQLKIT_SOURCE_DIR) / "examples" /
                              "iql")) {
    if (entry.path().extension() == ".iql") out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Parses `source` into a fresh universe, applies its embedded instance
// block over the declared input projection, evaluates, and serializes the
// result. Everything oid-related restarts from zero, so two calls agree
// byte-for-byte only if evaluation is fully deterministic.
std::string RunToFacts(const std::string& source, EvalOptions options) {
  Universe u;
  auto unit = ParseUnit(&u, source);
  EXPECT_TRUE(unit.ok()) << unit.status();
  if (!unit.ok()) return "<parse error>";
  std::shared_ptr<const Schema> input_schema;
  if (unit->input_names.empty()) {
    input_schema = std::make_shared<const Schema>(unit->schema);
  } else {
    auto projected = unit->schema.Project(unit->input_names);
    EXPECT_TRUE(projected.ok()) << projected.status();
    if (!projected.ok()) return "<projection error>";
    input_schema = std::make_shared<const Schema>(std::move(*projected));
  }
  Instance input(input_schema, &u);
  EXPECT_TRUE(ApplyFacts(*unit, &input).ok());
  auto out = RunUnit(&u, &*unit, input, options);
  EXPECT_TRUE(out.ok()) << out.status();
  if (!out.ok()) return "<eval error>";
  return WriteFacts(*out);
}

struct ModeConfig {
  const char* name;
  bool seminaive;
  bool indexing;
  bool scheduling;
};

constexpr ModeConfig kModes[] = {
    {"naive", false, false, false},
    {"seminaive+indexed", true, true, true},
};

// The VM-only dimensions: optimizer, fusion, and dispatch loop. Fusion is
// tested with and without the optimizer underneath, and the portable
// switch dispatch is pinned against the (default) threaded loop on the
// fully tiered configuration.
struct VmConfig {
  const char* name;
  bool il_opt;
  bool il_fuse;
  EvalOptions::Dispatch dispatch;
};

constexpr VmConfig kVmConfigs[] = {
    {"plain", false, false, EvalOptions::Dispatch::kThreaded},
    {"opt", true, false, EvalOptions::Dispatch::kThreaded},
    {"fuse", false, true, EvalOptions::Dispatch::kThreaded},
    {"opt+fuse", true, true, EvalOptions::Dispatch::kThreaded},
    {"opt+fuse+switch", true, true, EvalOptions::Dispatch::kSwitch},
};

void ExpectBitIdenticalAcrossThreadCounts(const std::string& source) {
  for (const ModeConfig& mode : kModes) {
    EvalOptions options;
    options.enable_seminaive = mode.seminaive;
    options.enable_indexing = mode.indexing;
    options.enable_scheduling = mode.scheduling;
    options.allow_deletions = true;
    // Fan out even tiny candidate lists so the corpus actually exercises
    // the partition / private-buffer / rehoming merge pipeline.
    options.parallel_min_candidates = 1;
    options.num_threads = 1;
    std::string serial = RunToFacts(source, options);
    // Every (engine, vm config, thread count) cell must reproduce the
    // serial tree-walker byte-for-byte -- the VM included, at one thread
    // and under the fan-out, across optimizer / fusion / dispatch.
    for (uint32_t threads : {2u, 8u}) {
      options.num_threads = threads;
      options.engine = EvalOptions::Engine::kTreeWalk;
      EXPECT_EQ(RunToFacts(source, options), serial)
          << "mode " << mode.name << ", engine tree-walk, num_threads "
          << threads;
    }
    options.engine = EvalOptions::Engine::kVm;
    for (const VmConfig& vc : kVmConfigs) {
      options.il_opt = vc.il_opt;
      options.il_fuse = vc.il_fuse;
      options.dispatch = vc.dispatch;
      for (uint32_t threads : {1u, 2u, 8u}) {
        options.num_threads = threads;
        EXPECT_EQ(RunToFacts(source, options), serial)
            << "mode " << mode.name << ", engine vm, config " << vc.name
            << ", num_threads " << threads;
      }
    }
  }
}

class ExampleParallelTest : public ::testing::TestWithParam<int> {};

TEST_P(ExampleParallelTest, BitIdenticalAcrossThreadCounts) {
  std::vector<fs::path> paths = ExamplePaths();
  ASSERT_LT(static_cast<size_t>(GetParam()), paths.size());
  const fs::path& path = paths[GetParam()];
  SCOPED_TRACE(path.filename().string());
  ExpectBitIdenticalAcrossThreadCounts(ReadFile(path));
}

// One instantiation per examples/iql/*.iql (sorted): genesis,
// graph_encoding (invention + weak assignment), powerset (set-type
// extents), tc, updates (IQL* deletions).
INSTANTIATE_TEST_SUITE_P(Examples, ExampleParallelTest,
                         ::testing::Range(0, 5));

TEST(ParallelDifferentialTest, ExampleCorpusIsWhatWeExpect) {
  // If examples are added, widen the Range above so they are covered.
  EXPECT_EQ(ExamplePaths().size(), 5u);
}

// A relational workload wide enough that every thread count above actually
// splits it into multiple chunks per round.
TEST(ParallelDifferentialTest, WideTransitiveClosure) {
  std::ostringstream source;
  source << "schema { relation E : [D, D]; relation TC : [D, D]; }\n"
            "input E;\noutput TC;\ninstance {\n";
  uint64_t x = 7;
  for (int i = 0; i < 120; ++i) {
    x = x * 6364136223846793005u + 1442695040888963407u;
    source << "  E(" << (x >> 33) % 40 << ", " << (x >> 13) % 40 << ");\n";
  }
  source << "}\nprogram {\n"
            "  TC(x, y) :- E(x, y).\n"
            "  TC(x, z) :- TC(x, y), E(y, z).\n"
            "}\n";
  ExpectBitIdenticalAcrossThreadCounts(source.str());
}

// Invention inside the fan-out: one oid minted per satisfying valuation,
// in canonical order, plus weak assignment of its nu-value.
TEST(ParallelDifferentialTest, InventionOrderIsCanonical) {
  std::ostringstream source;
  source << "schema {\n"
            "  relation E : [D, D];\n"
            "  class P : [D, D];\n"
            "  relation Tag : [D, P];\n"
            "}\n"
            "input E;\noutput Tag, P;\ninstance {\n";
  uint64_t x = 3;
  for (int i = 0; i < 60; ++i) {
    x = x * 6364136223846793005u + 1442695040888963407u;
    source << "  E(" << (x >> 33) % 24 << ", " << (x >> 13) % 24 << ");\n";
  }
  source << "}\nprogram {\n"
            "  Tag(a, p) :- E(a, b).\n"
            "  ;\n"
            "  p^ = [a, a] :- Tag(a, p).\n"
            "}\n";
  ExpectBitIdenticalAcrossThreadCounts(source.str());
}

// Choose (IQL+) after a parallel stage: the choose policy must see the
// same class extent and the same derivation order under every thread
// count, including the seeded kRandom policy.
TEST(ParallelDifferentialTest, ChooseSeesCanonicalOrder) {
  std::string source = R"(
    schema {
      relation R : D;
      class M : D;
      relation Mark : [D, M];
      relation Picked : M;
    }
    input R;
    output Picked, M;
    instance {
      R("a"); R("b"); R("c"); R("d"); R("e"); R("f"); R("g"); R("h");
    }
    program {
      Mark(x, m) :- R(x).
      ;
      Picked(m) :- choose.
    }
  )";
  for (auto policy : {EvalOptions::ChoosePolicy::kMinOid,
                      EvalOptions::ChoosePolicy::kMaxOid,
                      EvalOptions::ChoosePolicy::kRandom}) {
    EvalOptions options;
    options.choose_policy = policy;
    options.choose_seed = 42;
    options.parallel_min_candidates = 1;
    options.num_threads = 1;
    std::string serial = RunToFacts(source, options);
    // Under engine=kVm the choose rule itself falls back to the
    // tree-walker (its pick is enumeration-order sensitive) while the
    // first stage runs compiled; the composition must stay byte-stable.
    for (EvalOptions::Engine engine :
         {EvalOptions::Engine::kTreeWalk, EvalOptions::Engine::kVm}) {
      options.engine = engine;
      for (uint32_t threads : {1u, 2u, 8u}) {
        if (engine == EvalOptions::Engine::kTreeWalk && threads == 1) {
          continue;
        }
        options.num_threads = threads;
        EXPECT_EQ(RunToFacts(source, options), serial)
            << "policy " << static_cast<int>(policy) << ", engine "
            << (engine == EvalOptions::Engine::kVm ? "vm" : "tree-walk")
            << ", num_threads " << threads;
      }
    }
  }
}

// Deletions (IQL*) mixed with inserts: the canonical derivation order
// must also drive the deletion application order.
TEST(ParallelDifferentialTest, DeletionsStayDeterministic) {
  std::ostringstream source;
  source << "schema {\n"
            "  relation Active : D;\n"
            "  relation Flagged : D;\n"
            "  relation Alumni : D;\n"
            "}\ninstance {\n";
  for (int i = 0; i < 30; ++i) {
    source << "  Active(" << i << ");\n";
    if (i % 3 == 0) source << "  Flagged(" << i << ");\n";
  }
  source << "}\nprogram {\n"
            "  Alumni(x)  :- Active(x), Flagged(x).\n"
            "  !Active(x) :- Flagged(x).\n"
            "}\n";
  ExpectBitIdenticalAcrossThreadCounts(source.str());
}

// The metrics satellite: a parallel run reports its thread count and the
// partitions its rules were split into, and the shard sums match the
// serial derivation counts.
TEST(ParallelDifferentialTest, MetricsReportThreadsAndPartitions) {
  std::ostringstream source;
  source << "schema { relation E : [D, D]; relation TC : [D, D]; }\n"
            "input E;\noutput TC;\ninstance {\n";
  for (int i = 0; i < 30; ++i) {
    source << "  E(" << i << ", " << (i + 1) % 30 << ");\n";
  }
  source << "}\nprogram {\n"
            "  TC(x, y) :- E(x, y).\n"
            "  TC(x, z) :- TC(x, y), E(y, z).\n"
            "}\n";

  EvalMetrics serial_metrics;
  EvalOptions options;
  options.parallel_min_candidates = 1;
  options.num_threads = 1;
  options.metrics = &serial_metrics;
  RunToFacts(source.str(), options);
  EXPECT_EQ(serial_metrics.threads, 1u);

  EvalMetrics metrics;
  options.num_threads = 4;
  options.metrics = &metrics;
  RunToFacts(source.str(), options);
  EXPECT_EQ(metrics.threads, 4u);
  ASSERT_EQ(metrics.rules.size(), serial_metrics.rules.size());
  uint64_t partitions = 0;
  for (size_t i = 0; i < metrics.rules.size(); ++i) {
    partitions += metrics.rules[i].parallel_partitions;
    EXPECT_EQ(metrics.rules[i].derivations, serial_metrics.rules[i].derivations)
        << "rule " << i;
  }
  EXPECT_GT(partitions, 0u);
  std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(json.find("\"parallel_partitions\":"), std::string::npos);
}

// Trace output stays in step order under parallelism (the coordinator
// writes it after each merge), and annotates partitioned steps.
TEST(ParallelDifferentialTest, TraceStaysInStepOrder) {
  std::string source =
      "schema { relation E : [D, D]; relation TC : [D, D]; }\n"
      "input E;\noutput TC;\ninstance {\n"
      "  E(1, 2); E(2, 3); E(3, 4); E(4, 5); E(5, 6); E(6, 7);\n"
      "}\nprogram {\n"
      "  TC(x, y) :- E(x, y).\n"
      "  TC(x, z) :- TC(x, y), E(y, z).\n"
      "}\n";
  std::ostringstream trace;
  EvalOptions options;
  options.num_threads = 4;
  options.parallel_min_candidates = 1;
  options.enable_seminaive = false;
  options.trace = &trace;
  RunToFacts(source, options);
  std::string text = trace.str();
  EXPECT_NE(text.find("parallel partitions"), std::string::npos);
  // Step numbers appear in ascending order.
  size_t last_pos = 0;
  for (int step = 0;; ++step) {
    std::string needle = "step " + std::to_string(step) + ":";
    size_t pos = text.find(needle);
    if (pos == std::string::npos) {
      EXPECT_GE(step, 2) << "expected at least two traced steps:\n" << text;
      break;
    }
    EXPECT_GE(pos, last_pos) << text;
    last_pos = pos;
  }
}

}  // namespace
}  // namespace iqlkit
