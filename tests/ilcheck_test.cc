// The IL verifier and the dataflow analyses under it (iql/ilcheck.h):
// every compiled example rule (delta variants included) verifies clean,
// and a hand-written corpus of malformed rules -- use-before-def, double
// defs, bad aux/shape/probe encodings, misplaced terminators, broken
// theta -- is rejected with the expected violation. The corpus is exactly
// the invariant set the VM executes without runtime guards.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "iql/il.h"
#include "iql/ilcheck.h"
#include "iql/parser.h"
#include "iql/typecheck.h"
#include "model/universe.h"

namespace iqlkit::il {
namespace {

// A minimal well-formed body: one extent scan feeding kEmit.
CompiledRule Base() {
  CompiledRule cr;
  Instr scan;
  scan.op = Op::kScanExtent;
  scan.dst = 0;
  Instr emit;
  emit.op = Op::kEmit;
  cr.code = {scan, emit};
  cr.num_regs = 1;
  return cr;
}

void ExpectViolation(const CompiledRule& cr, const std::string& needle) {
  std::vector<IlViolation> violations = VerifyRule(cr);
  ASSERT_FALSE(violations.empty()) << "expected a violation: " << needle;
  for (const IlViolation& v : violations) {
    if (v.detail.find(needle) != std::string::npos) return;
  }
  std::string all;
  for (const IlViolation& v : violations) all += v.detail + "; ";
  FAIL() << "no violation mentions '" << needle << "'; got: " << all;
}

TEST(IlVerifierTest, MinimalRuleIsClean) {
  EXPECT_TRUE(VerifyRule(Base()).empty());
}

TEST(IlVerifierTest, EmptyBody) {
  CompiledRule cr;
  ExpectViolation(cr, "empty body");
}

TEST(IlVerifierTest, EmitBeforeEnd) {
  CompiledRule cr = Base();
  std::swap(cr.code[0], cr.code[1]);
  ExpectViolation(cr, "kEmit before the end");
  ExpectViolation(cr, "last instruction is not kEmit");
}

TEST(IlVerifierTest, UseBeforeDef) {
  CompiledRule cr = Base();
  Instr deref;
  deref.op = Op::kDeref;
  deref.dst = 1;
  deref.a = 1;  // reads its own (not yet defined) register
  cr.code.insert(cr.code.begin(), deref);
  cr.num_regs = 2;
  ExpectViolation(cr, "use of r1 before definition");
}

TEST(IlVerifierTest, RegisterOutOfRange) {
  CompiledRule cr = Base();
  Instr cmp;
  cmp.op = Op::kCmp;
  cmp.a = 0;
  cmp.b = 7;  // num_regs is 1
  cr.code.insert(cr.code.begin() + 1, cmp);
  ExpectViolation(cr, "register r7 out of range");
}

TEST(IlVerifierTest, DoubleDefinition) {
  CompiledRule cr = Base();
  Instr load;
  load.op = Op::kLoadConst;
  load.dst = 0;  // the scan already defines r0
  cr.code.insert(cr.code.begin() + 1, load);
  ExpectViolation(cr, "defined twice");
}

TEST(IlVerifierTest, AuxOnAuxFreeInstruction) {
  CompiledRule cr = Base();
  cr.code[0].op = Op::kScanDelta;
  cr.delta_literal = 0;
  cr.code[0].naux = 2;
  cr.aux = {0, 0};
  // Reported both as misplaced aux and as a probe on a delta scan.
  ExpectViolation(cr, "probe spec on a delta/extent scan");
  cr.code[0].op = Op::kScanExtent;
  cr.delta_literal = kNoDelta;
  ExpectViolation(cr, "aux operands on an instruction that takes none");
}

TEST(IlVerifierTest, AuxRangeOutOfBounds) {
  CompiledRule cr = Base();
  cr.code[0].op = Op::kScanRel;
  cr.code[0].aux = 4;
  cr.code[0].naux = 2;
  cr.aux = {0, 0};  // [4, 6) does not fit
  ExpectViolation(cr, "aux range");
}

TEST(IlVerifierTest, OddProbeSpec) {
  CompiledRule cr = Base();
  cr.code[0].op = Op::kScanRel;
  cr.code[0].naux = 1;
  cr.aux = {3};
  ExpectViolation(cr, "odd operand count");
}

TEST(IlVerifierTest, ProbeAttrsNotAscending) {
  CompiledRule cr;
  Instr load;
  load.op = Op::kLoadConst;
  load.dst = 0;
  Instr scan;
  scan.op = Op::kScanRel;
  scan.dst = 1;
  scan.aux = 0;
  scan.naux = 4;
  Instr emit;
  emit.op = Op::kEmit;
  cr.code = {load, scan, emit};
  cr.aux = {5, 0, 5, 0};  // duplicate attr 5
  cr.num_regs = 2;
  ExpectViolation(cr, "not strictly ascending");
}

TEST(IlVerifierTest, StrictWithoutProbeSpec) {
  CompiledRule cr = Base();
  cr.code[0].op = Op::kScanRel;
  cr.code[0].strict = true;  // naux == 0
  ExpectViolation(cr, "strict flag without a container-scan probe spec");
}

TEST(IlVerifierTest, ProbeKeyUnbound) {
  CompiledRule cr;
  Instr scan;
  scan.op = Op::kScanRel;
  scan.dst = 0;
  scan.aux = 0;
  scan.naux = 2;
  Instr emit;
  emit.op = Op::kEmit;
  cr.code = {scan, emit};
  cr.aux = {3, 1};  // key register r1 is never defined
  cr.num_regs = 2;
  ExpectViolation(cr, "use of r1 before definition");
}

TEST(IlVerifierTest, ShapeIndexOutOfRange) {
  CompiledRule cr = Base();
  Instr match;
  match.op = Op::kMatchTuple;
  match.a = 0;
  match.imm = 3;  // no shapes at all
  cr.code.insert(cr.code.begin() + 1, match);
  ExpectViolation(cr, "shape index 3 out of range");
}

TEST(IlVerifierTest, TupleOperandCountMismatch) {
  CompiledRule cr = Base();
  Instr mk;
  mk.op = Op::kMakeTuple;
  mk.dst = 1;
  mk.imm = 0;
  mk.aux = 0;
  mk.naux = 1;
  cr.code.insert(cr.code.begin() + 1, mk);
  cr.aux = {0};
  cr.shapes = {{1, 2}};  // two attrs, one operand
  cr.num_regs = 2;
  ExpectViolation(cr, "tuple operand count does not match its shape");
}

TEST(IlVerifierTest, UnguardedGetField) {
  CompiledRule cr = Base();
  Instr get;
  get.op = Op::kGetField;
  get.dst = 1;
  get.a = 0;
  cr.code.insert(cr.code.begin() + 1, get);
  cr.num_regs = 2;
  ExpectViolation(cr, "without a dominating kMatchTuple");
}

TEST(IlVerifierTest, GetFieldPastGuardShape) {
  CompiledRule cr = Base();
  Instr match;
  match.op = Op::kMatchTuple;
  match.a = 0;
  match.imm = 0;
  Instr get;
  get.op = Op::kGetField;
  get.dst = 1;
  get.a = 0;
  get.imm = 5;  // shape has one field
  cr.code.insert(cr.code.begin() + 1, get);
  cr.code.insert(cr.code.begin() + 1, match);
  cr.shapes = {{4}};
  cr.num_regs = 2;
  ExpectViolation(cr, "out of range for the guarding");
}

// ---- fused superinstructions ----------------------------------------------

TEST(IlVerifierTest, DestructureRequiresEvenNonEmptyPairList) {
  CompiledRule cr = Base();
  Instr d;
  d.op = Op::kDestructure;
  d.a = 0;
  d.imm = 0;
  d.aux = 0;
  d.naux = 1;  // odd
  cr.code.insert(cr.code.begin() + 1, d);
  cr.aux = {0};
  cr.shapes = {{4}};
  ExpectViolation(cr, "even, non-empty aux pair list");
}

TEST(IlVerifierTest, DestructurePositionPastShape) {
  CompiledRule cr = Base();
  Instr d;
  d.op = Op::kDestructure;
  d.a = 0;
  d.imm = 0;
  d.aux = 0;
  d.naux = 2;
  cr.code.insert(cr.code.begin() + 1, d);
  cr.aux = {1, 1};  // position 1, but the shape has one field
  cr.shapes = {{4}};
  cr.num_regs = 2;
  ExpectViolation(cr, "out of range for the fused shape");
}

TEST(IlVerifierTest, DestructurePositionsNotAscending) {
  CompiledRule cr = Base();
  Instr d;
  d.op = Op::kDestructure;
  d.a = 0;
  d.imm = 0;
  d.aux = 0;
  d.naux = 4;
  cr.code.insert(cr.code.begin() + 1, d);
  cr.aux = {1, 1, 0, 2};  // positions 1 then 0
  cr.shapes = {{4, 5}};
  cr.num_regs = 3;
  ExpectViolation(cr, "fused field positions not strictly ascending");
}

TEST(IlVerifierTest, DestructureDstsObeySingleDef) {
  CompiledRule cr = Base();
  Instr d;
  d.op = Op::kDestructure;
  d.a = 0;
  d.imm = 0;
  d.aux = 0;
  d.naux = 2;
  cr.code.insert(cr.code.begin() + 1, d);
  cr.aux = {0, 0};  // dst r0 is already defined by the scan
  cr.shapes = {{4}};
  ExpectViolation(cr, "defined twice");
}

TEST(IlVerifierTest, KeyedScanRequiresStrictFlag) {
  CompiledRule cr;
  Instr load;
  load.op = Op::kLoadConst;
  load.dst = 0;
  Instr scan;
  scan.op = Op::kScanRelKeyed;
  scan.dst = 1;
  scan.imm = 0;
  scan.aux = 0;
  scan.naux = 2;
  scan.strict = false;
  Instr emit;
  emit.op = Op::kEmit;
  cr.code = {load, scan, emit};
  cr.aux = {0, 0};  // (field 0, key r0)
  cr.shapes = {{4}};
  cr.num_regs = 2;
  ExpectViolation(cr, "kScanRelKeyed without the strict flag");
}

TEST(IlVerifierTest, KeyedScanGuardsGetFieldLikeMatchTuple) {
  CompiledRule cr;
  Instr load;
  load.op = Op::kLoadConst;
  load.dst = 0;
  Instr scan;
  scan.op = Op::kScanRelKeyed;
  scan.dst = 1;
  scan.imm = 0;
  scan.aux = 0;
  scan.naux = 2;
  scan.strict = true;
  Instr get;
  get.op = Op::kGetField;
  get.dst = 2;
  get.a = 1;
  get.imm = 1;  // second field of the candidate shape
  Instr emit;
  emit.op = Op::kEmit;
  cr.code = {load, scan, get, emit};
  cr.aux = {0, 0};
  cr.shapes = {{4, 5}};
  cr.num_regs = 3;
  EXPECT_TRUE(VerifyRule(cr).empty());
  cr.code[2].imm = 5;  // past the keyed scan's shape
  ExpectViolation(cr, "out of range for the guarding");
}

TEST(IlVerifierTest, CmpNRequiresEvenNonEmptyPairList) {
  CompiledRule cr = Base();
  Instr cmp;
  cmp.op = Op::kCmpN;
  cmp.aux = 0;
  cmp.naux = 3;
  cr.code.insert(cr.code.begin() + 1, cmp);
  cr.aux = {0, 0, 0};
  ExpectViolation(cr, "kCmpN without an even, non-empty register pair list");
}

TEST(IlVerifierTest, CmpNReadsEveryPairRegister) {
  CompiledRule cr = Base();
  Instr cmp;
  cmp.op = Op::kCmpN;
  cmp.aux = 0;
  cmp.naux = 2;
  cr.code.insert(cr.code.begin() + 1, cmp);
  cr.aux = {0, 1};  // r1 never defined
  cr.num_regs = 2;
  ExpectViolation(cr, "use of r1 before definition");
}

TEST(IlVerifierTest, DeltaOpInFullVariant) {
  CompiledRule cr = Base();
  cr.code[0].op = Op::kScanDelta;
  ExpectViolation(cr, "delta op in a full-evaluation variant");
}

TEST(IlVerifierTest, DeltaVariantWithoutDeltaOp) {
  CompiledRule cr = Base();
  cr.delta_literal = 0;
  ExpectViolation(cr, "delta variant without a delta op");
}

TEST(IlVerifierTest, MultipleDeltaOps) {
  CompiledRule cr = Base();
  cr.delta_literal = 0;
  cr.code[0].op = Op::kScanDelta;
  Instr check;
  check.op = Op::kCheckDelta;
  check.b = 0;
  cr.code.insert(cr.code.begin() + 1, check);
  ExpectViolation(cr, "multiple delta ops");
}

TEST(IlVerifierTest, ThetaBroken) {
  CompiledRule cr = Base();
  cr.theta = {{7, 0}, {3, 0}};  // not sorted by symbol
  ExpectViolation(cr, "theta not strictly sorted");
  cr = Base();
  cr.theta = {{3, 9}};
  ExpectViolation(cr, "theta register r9 out of range");
}

TEST(IlVerifierTest, GetFieldOnProvableNonTuple) {
  CompiledRule cr;
  Instr load;
  load.op = Op::kLoadConst;
  load.dst = 0;
  load.sym = 11;
  Instr match;
  match.op = Op::kMatchTuple;
  match.a = 0;
  match.imm = 0;
  Instr get;
  get.op = Op::kGetField;
  get.dst = 1;
  get.a = 0;
  get.imm = 0;
  Instr emit;
  emit.op = Op::kEmit;
  cr.code = {load, match, get, emit};
  cr.shapes = {{4}};
  cr.num_regs = 2;
  ExpectViolation(cr, "statically never a tuple");
}

// ---- compiled-rule coverage ----------------------------------------------

const char* kTc = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  input E; output TC;
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

TEST(IlVerifierTest, CompiledRulesVerifyClean) {
  Universe u;
  auto unit = ParseUnit(&u, kTc);
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_TRUE(TypeCheck(&u, unit->schema, &unit->program).ok());
  for (const auto& stage : unit->program.stages) {
    for (const Rule& rule : stage) {
      auto cr = CompileRule(unit->program, rule);
      ASSERT_TRUE(cr.has_value());
      EXPECT_TRUE(VerifyRule(*cr).empty());
      for (size_t d = 0; d < rule.body.size(); ++d) {
        auto dv = CompileRule(unit->program, rule, d);
        if (dv.has_value()) {
          EXPECT_TRUE(VerifyRule(*dv).empty());
        }
      }
    }
  }
}

TEST(IlDataflowTest, DefUseAndLiveness) {
  Universe u;
  auto unit = ParseUnit(&u, kTc);
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_TRUE(TypeCheck(&u, unit->schema, &unit->program).ok());
  // Rule 1: TC(x, z) :- TC(x, y), E(y, z): two scans, the join register.
  const Rule& join = unit->program.stages[0][1];
  auto cr = CompileRule(unit->program, join);
  ASSERT_TRUE(cr.has_value());
  DefUse du = BuildDefUse(*cr);
  ASSERT_EQ(du.def.size(), cr->num_regs);
  for (uint16_t r = 0; r < cr->num_regs; ++r) {
    EXPECT_GE(du.def[r], 0) << "r" << r << " never defined";
    for (uint32_t use : du.uses[r]) {
      EXPECT_GT(static_cast<int>(use), du.def[r])
          << "use of r" << r << " at or before its def";
    }
  }
  // The outer tuple's first field (x) is read only before the inner scan
  // but stays live across it: it is a theta register, read at kEmit.
  std::vector<LiveRange> live = ComputeLiveRanges(*cr);
  int inner_scan = -1;
  int scans = 0;
  for (size_t pc = 0; pc < cr->code.size(); ++pc) {
    Op op = cr->code[pc].op;
    if (op == Op::kScanRel || op == Op::kScanDelta) {
      if (++scans == 2) inner_scan = static_cast<int>(pc);
    }
  }
  ASSERT_GT(inner_scan, 0);
  bool some_register_crosses = false;
  for (const LiveRange& lr : live) some_register_crosses |= lr.crosses_scan;
  EXPECT_TRUE(some_register_crosses);
}

TEST(IlDataflowTest, AbstractValuesAndDistinctness) {
  AbsVal any;
  AbsVal c1{AbsVal::Kind::kConst, 1, 0};
  AbsVal c2{AbsVal::Kind::kConst, 2, 0};
  AbsVal t0{AbsVal::Kind::kTuple, kInvalidSymbol, 0};
  AbsVal t1{AbsVal::Kind::kTuple, kInvalidSymbol, 1};
  AbsVal s{AbsVal::Kind::kSet, kInvalidSymbol, 0};
  AbsVal rel{AbsVal::Kind::kRelValue, 5, 0};
  EXPECT_FALSE(ProvablyDistinct(any, c1));
  EXPECT_TRUE(ProvablyDistinct(c1, c2));
  EXPECT_FALSE(ProvablyDistinct(c1, c1));
  EXPECT_TRUE(ProvablyDistinct(t0, t1));
  EXPECT_TRUE(ProvablyDistinct(c1, t0));
  // Set-family values may be extensionally equal however they were built.
  EXPECT_FALSE(ProvablyDistinct(s, rel));
  EXPECT_TRUE(NeverSet(c1));
  EXPECT_TRUE(NeverSet(t0));
  EXPECT_FALSE(NeverSet(any));
  EXPECT_FALSE(NeverSet(s));
  EXPECT_TRUE(NeverTuple(c1));
  EXPECT_TRUE(NeverTuple(s));
  EXPECT_FALSE(NeverTuple(any));
}

}  // namespace
}  // namespace iqlkit::il
