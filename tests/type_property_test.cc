// Randomized property tests over the type algebra: soundness of
// assignability, membership preservation of the Prop 2.2.1 rewrites, and
// canonicalization laws.

#include <gtest/gtest.h>

#include <random>

#include "iql/typecheck.h"
#include "model/type_algebra.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

// Small disjoint world: two classes with a few oids each, three constants.
class World : public ClassResolver {
 public:
  explicit World(Universe* u) : u_(u) {
    p_ = u->Intern("P");
    q_ = u->Intern("Q");
    class_of_[Oid{1}] = p_;
    class_of_[Oid{2}] = p_;
    class_of_[Oid{3}] = q_;
  }

  bool OidInClass(Oid o, Symbol cls) const override {
    auto it = class_of_.find(o);
    return it != class_of_.end() && it->second == cls;
  }

  TypeId RandomType(std::mt19937* rng, int depth) {
    TypePool& t = u_->types();
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 3 : 7);
    switch (pick(*rng)) {
      case 0: return t.Base();
      case 1: return t.Class(p_);
      case 2: return t.Class(q_);
      case 3: return t.Empty();
      case 4: return t.Set(RandomType(rng, depth - 1));
      case 5: {
        std::vector<std::pair<Symbol, TypeId>> fields;
        int k = 1 + (*rng)() % 2;
        for (int i = 0; i < k; ++i) {
          fields.emplace_back(u_->Intern("A" + std::to_string(i)),
                              RandomType(rng, depth - 1));
        }
        return t.Tuple(std::move(fields));
      }
      case 6:
        return t.Union2(RandomType(rng, depth - 1),
                        RandomType(rng, depth - 1));
      default:
        return t.Intersect2(RandomType(rng, depth - 1),
                            RandomType(rng, depth - 1));
    }
  }

  ValueId RandomValue(std::mt19937* rng, int depth) {
    ValueStore& v = u_->values();
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 3 : 5);
    switch (pick(*rng)) {
      case 0: return v.Const("c" + std::to_string((*rng)() % 3));
      case 1: return v.OfOid(Oid{1 + (*rng)() % 3});
      case 2: return v.EmptySet();
      case 3: return v.EmptyTuple();
      case 4: {
        std::vector<ValueId> elems;
        int k = (*rng)() % 3;
        for (int i = 0; i < k; ++i) {
          elems.push_back(RandomValue(rng, depth - 1));
        }
        return v.Set(std::move(elems));
      }
      default: {
        std::vector<std::pair<Symbol, ValueId>> fields;
        int k = 1 + (*rng)() % 2;
        for (int i = 0; i < k; ++i) {
          fields.emplace_back(u_->Intern("A" + std::to_string(i)),
                              RandomValue(rng, depth - 1));
        }
        return v.Tuple(std::move(fields));
      }
    }
  }

 private:
  Universe* u_;
  Symbol p_, q_;
  std::map<Oid, Symbol> class_of_;
};

class TypePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TypePropertyTest, AssignabilityImpliesContainment) {
  Universe u;
  World w(&u);
  std::mt19937 rng(GetParam() * 7919 + 13);
  for (int i = 0; i < 60; ++i) {
    TypeId a = w.RandomType(&rng, 2);
    TypeId b = w.RandomType(&rng, 2);
    if (!AssignableType(&u.types(), a, b)) continue;
    TypeMembership ma(&u.types(), &u.values(), &w);
    TypeMembership mb(&u.types(), &u.values(), &w);
    for (int j = 0; j < 30; ++j) {
      ValueId v = w.RandomValue(&rng, 2);
      if (ma.Contains(a, v)) {
        EXPECT_TRUE(mb.Contains(b, v))
            << u.types().ToString(a) << " <= " << u.types().ToString(b)
            << " but " << u.values().ToString(v) << " only in the former";
      }
    }
  }
}

TEST_P(TypePropertyTest, EliminationPreservesMembershipOverDisjoint) {
  Universe u;
  World w(&u);
  std::mt19937 rng(GetParam() * 104729 + 1);
  for (int i = 0; i < 40; ++i) {
    TypeId t = w.RandomType(&rng, 3);
    TypeId reduced = IntersectionReduce(&u.types(), t);
    TypeId eliminated = EliminateIntersection(&u.types(), t);
    TypeId normalized = NormalizeDisjoint(&u.types(), t);
    EXPECT_TRUE(u.types().IsIntersectionReduced(reduced));
    EXPECT_TRUE(u.types().IsIntersectionFree(eliminated));
    TypeMembership m0(&u.types(), &u.values(), &w);
    TypeMembership m1(&u.types(), &u.values(), &w);
    TypeMembership m2(&u.types(), &u.values(), &w);
    TypeMembership m3(&u.types(), &u.values(), &w);
    for (int j = 0; j < 40; ++j) {
      ValueId v = w.RandomValue(&rng, 2);
      bool in = m0.Contains(t, v);
      EXPECT_EQ(in, m1.Contains(reduced, v))
          << u.types().ToString(t) << " vs reduced "
          << u.types().ToString(reduced) << " on "
          << u.values().ToString(v);
      EXPECT_EQ(in, m2.Contains(eliminated, v))
          << u.types().ToString(t) << " vs eliminated "
          << u.types().ToString(eliminated) << " on "
          << u.values().ToString(v);
      EXPECT_EQ(in, m3.Contains(normalized, v))
          << u.types().ToString(t) << " vs normalized "
          << u.types().ToString(normalized) << " on "
          << u.values().ToString(v);
    }
  }
}

TEST_P(TypePropertyTest, CanonicalizationLaws) {
  Universe u;
  World w(&u);
  std::mt19937 rng(GetParam() * 31 + 7);
  TypePool& t = u.types();
  for (int i = 0; i < 60; ++i) {
    TypeId a = w.RandomType(&rng, 2);
    TypeId b = w.RandomType(&rng, 2);
    TypeId c = w.RandomType(&rng, 2);
    // Union: commutative, associative, idempotent; empty is the unit.
    EXPECT_EQ(t.Union2(a, b), t.Union2(b, a));
    EXPECT_EQ(t.Union2(t.Union2(a, b), c), t.Union2(a, t.Union2(b, c)));
    EXPECT_EQ(t.Union2(a, a), a);
    EXPECT_EQ(t.Union2(a, t.Empty()), a);
    // Intersection: commutative, idempotent; empty annihilates.
    EXPECT_EQ(t.Intersect2(a, b), t.Intersect2(b, a));
    EXPECT_EQ(t.Intersect2(a, a), a);
    EXPECT_EQ(t.Intersect2(a, t.Empty()), t.Empty());
    // Equivalence over disjoint assignments is reflexive and respects
    // normalization.
    EXPECT_TRUE(EquivalentOverDisjoint(&t, a, a));
    EXPECT_TRUE(
        EquivalentOverDisjoint(&t, a, NormalizeDisjoint(&t, a)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypePropertyTest,
                         ::testing::Range<uint32_t>(0, 10));

}  // namespace
}  // namespace iqlkit
