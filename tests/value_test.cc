#include "model/value.h"

#include <gtest/gtest.h>

#include <set>

#include "base/interner.h"
#include "model/oid.h"

namespace iqlkit {
namespace {

class ValueTest : public ::testing::Test {
 protected:
  SymbolTable syms_;
  ValueStore store_{&syms_};
};

TEST_F(ValueTest, ConstInterning) {
  EXPECT_EQ(store_.Const("a"), store_.Const("a"));
  EXPECT_NE(store_.Const("a"), store_.Const("b"));
}

TEST_F(ValueTest, ConstIntInternsAsDecimalAtom) {
  EXPECT_EQ(store_.ConstInt(42), store_.Const("42"));
}

TEST_F(ValueTest, OidValuesDistinctFromConsts) {
  ValueId c = store_.Const("7");
  ValueId o = store_.OfOid(Oid{7});
  EXPECT_NE(c, o);
  EXPECT_EQ(store_.node(o).kind, ValueKind::kOid);
  EXPECT_EQ(store_.node(o).oid, (Oid{7}));
}

TEST_F(ValueTest, TupleFieldOrderIsCanonical) {
  Symbol a = syms_.Intern("A");
  Symbol b = syms_.Intern("B");
  ValueId x = store_.Const("x");
  ValueId y = store_.Const("y");
  ValueId t1 = store_.Tuple({{a, x}, {b, y}});
  ValueId t2 = store_.Tuple({{b, y}, {a, x}});
  EXPECT_EQ(t1, t2);
}

TEST_F(ValueTest, TuplesWithDifferentAttrsDiffer) {
  Symbol a = syms_.Intern("A");
  Symbol b = syms_.Intern("B");
  ValueId x = store_.Const("x");
  EXPECT_NE(store_.Tuple({{a, x}}), store_.Tuple({{b, x}}));
}

TEST_F(ValueTest, EmptyTupleDistinctFromEmptySet) {
  EXPECT_NE(store_.EmptyTuple(), store_.EmptySet());
}

TEST_F(ValueTest, SetDeduplicatesAndSorts) {
  ValueId x = store_.Const("x");
  ValueId y = store_.Const("y");
  ValueId s1 = store_.Set({x, y, x});
  ValueId s2 = store_.Set({y, x});
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(store_.node(s1).elems.size(), 2u);
}

TEST_F(ValueTest, SingletonSetNotElement) {
  ValueId x = store_.Const("x");
  EXPECT_NE(store_.Set({x}), x);
}

TEST_F(ValueTest, SetOfEmptySetNotEmptySet) {
  // {} vs {{}} -- the paper stresses this distinction for types; the value
  // level must keep it too.
  ValueId empty = store_.EmptySet();
  ValueId nested = store_.Set({empty});
  EXPECT_NE(empty, nested);
}

TEST_F(ValueTest, SetInsertIsIdempotent) {
  ValueId x = store_.Const("x");
  ValueId s = store_.EmptySet();
  ValueId s1 = store_.SetInsert(s, x);
  ValueId s2 = store_.SetInsert(s1, x);
  EXPECT_EQ(s1, s2);
  EXPECT_TRUE(store_.SetContains(s1, x));
  EXPECT_FALSE(store_.SetContains(s, x));
}

TEST_F(ValueTest, SetUnionMatchesInsertion) {
  ValueId x = store_.Const("x");
  ValueId y = store_.Const("y");
  ValueId z = store_.Const("z");
  ValueId a = store_.Set({x, y});
  ValueId b = store_.Set({y, z});
  EXPECT_EQ(store_.SetUnion(a, b), store_.Set({x, y, z}));
}

TEST_F(ValueTest, DeepStructuralSharing) {
  Symbol a = syms_.Intern("A");
  ValueId leaf = store_.Const("leaf");
  ValueId t1 = store_.Tuple({{a, store_.Set({leaf})}});
  ValueId t2 = store_.Tuple({{a, store_.Set({leaf})}});
  EXPECT_EQ(t1, t2);
}

TEST_F(ValueTest, CollectOidsTransitive) {
  Symbol a = syms_.Intern("A");
  ValueId inner = store_.Set({store_.OfOid(Oid{1}), store_.OfOid(Oid{2})});
  ValueId v = store_.Tuple({{a, inner}});
  std::set<Oid> oids;
  store_.CollectOids(v, &oids);
  EXPECT_EQ(oids, (std::set<Oid>{Oid{1}, Oid{2}}));
}

TEST_F(ValueTest, CollectConstsTransitive) {
  Symbol a = syms_.Intern("A");
  ValueId v = store_.Tuple({{a, store_.Set({store_.Const("x")})}});
  std::set<Symbol> consts;
  store_.CollectConsts(v, &consts);
  ASSERT_EQ(consts.size(), 1u);
  EXPECT_EQ(syms_.name(*consts.begin()), "x");
}

TEST_F(ValueTest, RewriteOidsAppliesRenaming) {
  Symbol a = syms_.Intern("A");
  ValueId v = store_.Tuple({{a, store_.Set({store_.OfOid(Oid{1})})}});
  ValueId w =
      store_.RewriteOids(v, [](Oid o) { return Oid{o.raw + 100}; });
  std::set<Oid> oids;
  store_.CollectOids(w, &oids);
  EXPECT_EQ(oids, (std::set<Oid>{Oid{101}}));
}

TEST_F(ValueTest, RewriteOidsIdentityIsNoop) {
  Symbol a = syms_.Intern("A");
  ValueId v = store_.Tuple({{a, store_.OfOid(Oid{5})}});
  EXPECT_EQ(store_.RewriteOids(v, [](Oid o) { return o; }), v);
}

TEST_F(ValueTest, ToStringPaperNotation) {
  Symbol name = syms_.Intern("name");
  Symbol kids = syms_.Intern("children");
  ValueId v = store_.Tuple(
      {{name, store_.Const("Adam")},
       {kids, store_.Set({store_.OfOid(Oid{3})})}});
  // Attribute order is canonical (symbol interning order: name first here).
  EXPECT_EQ(store_.ToString(v), "[name: \"Adam\", children: {@3}]");
}

TEST_F(ValueTest, ManyValuesStayInterned) {
  // Insert a few thousand values and re-derive them; ids must agree.
  Symbol a = syms_.Intern("A");
  std::vector<ValueId> first;
  for (int i = 0; i < 3000; ++i) {
    first.push_back(store_.Tuple({{a, store_.ConstInt(i)}}));
  }
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(store_.Tuple({{a, store_.ConstInt(i)}}), first[i]);
  }
}

}  // namespace
}  // namespace iqlkit
