// The `instance { ... }` ground-fact syntax and ApplyFacts.

#include <gtest/gtest.h>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"

namespace iqlkit {
namespace {

class FactsTest : public ::testing::Test {
 protected:
  Universe u_;
};

TEST_F(FactsTest, RelationFactsPositionalAndUnary) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation E : [D, D]; relation N : D; }
    instance {
      E(1, 2);
      E("a", "b");
      N(7);
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  Instance inst(&unit->schema, &u_);
  ASSERT_TRUE(ApplyFacts(*unit, &inst).ok());
  EXPECT_EQ(inst.Relation(u_.Intern("E")).size(), 2u);
  EXPECT_TRUE(inst.RelationContains(u_.Intern("N"), u_.values().Const("7")));
  EXPECT_TRUE(inst.Validate().ok());
}

TEST_F(FactsTest, NamedOidsAndCyclicValues) {
  auto unit = ParseUnit(&u_, R"(
    schema { class P : [name: D, next: P]; }
    instance {
      P(@a);
      P(@b);
      @a = [name: "a", next: @b];   # forward reference to @b is fine
      @b = [name: "b", next: @a];
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  Instance inst(&unit->schema, &u_);
  ASSERT_TRUE(ApplyFacts(*unit, &inst).ok());
  EXPECT_TRUE(inst.Validate().ok()) << inst.Validate();
  EXPECT_EQ(inst.ClassExtent(u_.Intern("P")).size(), 2u);
  // The debug names carried over.
  Oid a = unit->named_oids.at("a");
  EXPECT_EQ(inst.OidLabel(a), "a");
}

TEST_F(FactsTest, SetValuedOidsTakeSetLiterals) {
  auto unit = ParseUnit(&u_, R"(
    schema { class Bag : {D}; }
    instance {
      Bag(@b);
      @b = {1, 2, 3};
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  Instance inst(&unit->schema, &u_);
  ASSERT_TRUE(ApplyFacts(*unit, &inst).ok());
  Oid b = unit->named_oids.at("b");
  EXPECT_EQ(u_.values().node(*inst.ValueOf(b)).elems.size(), 3u);
}

TEST_F(FactsTest, OidValueBeforeClassFactRejected) {
  auto unit = ParseUnit(&u_, R"(
    schema { class P : D; }
    instance { @ghost = "x"; }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  Instance inst(&unit->schema, &u_);
  EXPECT_EQ(ApplyFacts(*unit, &inst).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FactsTest, UnknownPredicateRejectedAtParse) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation R : D; }
    instance { S(1); }
  )");
  EXPECT_EQ(unit.status().code(), StatusCode::kParseError);
}

TEST_F(FactsTest, FactsFeedEvaluation) {
  auto unit = ParseUnit(&u_, R"(
    schema { relation E : [D, D]; relation TC : [D, D]; }
    input E;
    output TC;
    instance {
      E(1, 2);
      E(2, 3);
    }
    program {
      TC(x, y) :- E(x, y).
      TC(x, z) :- TC(x, y), E(y, z).
    }
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto in_schema = unit->schema.Project(unit->input_names);
  ASSERT_TRUE(in_schema.ok());
  Instance input(std::make_shared<const Schema>(std::move(*in_schema)),
                 &u_);
  ASSERT_TRUE(ApplyFacts(*unit, &input).ok());
  auto out = RunUnit(&u_, &*unit, input);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->Relation(u_.Intern("TC")).size(), 3u);
}

}  // namespace
}  // namespace iqlkit
