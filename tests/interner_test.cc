#include "base/interner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace iqlkit {
namespace {

TEST(InternerTest, SameStringSameSymbol) {
  SymbolTable t;
  Symbol a = t.Intern("alpha");
  Symbol b = t.Intern("alpha");
  EXPECT_EQ(a, b);
}

TEST(InternerTest, DistinctStringsDistinctSymbols) {
  SymbolTable t;
  EXPECT_NE(t.Intern("alpha"), t.Intern("beta"));
}

TEST(InternerTest, NameRoundTrip) {
  SymbolTable t;
  Symbol a = t.Intern("alpha");
  EXPECT_EQ(t.name(a), "alpha");
}

TEST(InternerTest, FindWithoutIntern) {
  SymbolTable t;
  EXPECT_EQ(t.Find("missing"), kInvalidSymbol);
  Symbol a = t.Intern("present");
  EXPECT_EQ(t.Find("present"), a);
}

TEST(InternerTest, EmptyStringIsInternable) {
  SymbolTable t;
  Symbol e = t.Intern("");
  EXPECT_EQ(t.name(e), "");
  EXPECT_EQ(t.Intern(""), e);
}

TEST(InternerTest, StableAcrossManyInsertions) {
  // Guards against dangling string_view keys when storage grows.
  SymbolTable t;
  std::vector<Symbol> syms;
  for (int i = 0; i < 10000; ++i) {
    syms.push_back(t.Intern("sym_" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(t.Find("sym_" + std::to_string(i)), syms[i]);
    EXPECT_EQ(t.name(syms[i]), "sym_" + std::to_string(i));
  }
  EXPECT_EQ(t.size(), 10000u);
}

}  // namespace
}  // namespace iqlkit
