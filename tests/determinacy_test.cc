// Theorem 4.1.3: IQL programs are determinate -- all outputs for a given
// input are O-isomorphic -- and generic: renaming input atoms commutes with
// evaluation. These tests run programs twice with different fresh-oid
// supplies (or renamed inputs) and check isomorphism of the results.

#include <gtest/gtest.h>

#include <string>

#include "iql/eval.h"
#include "iql/parser.h"
#include "model/universe.h"
#include "transform/isomorphism.h"

namespace iqlkit {
namespace {

constexpr std::string_view kGraphEncoding = R"(
  schema {
    relation R  : [D, D];
    relation R0 : D;
    relation R9 : [D, P, P'];
    class P  : [D, {P}];
    class P' : {P};
  }
  input R;
  output P, P';
  program {
    R0(x) :- R(x, y).
    R0(x) :- R(y, x).
    R9(x, p, p') :- R0(x).
    p'^(q) :- R9(x, p, p'), R9(y, q, q'), R(x, y).
    ;
    p^ = [x, p'^] :- R9(x, p, p').
  }
)";

class DeterminacyTest : public ::testing::Test {
 protected:
  ValueId Pair(std::string_view a, std::string_view b) {
    ValueStore& v = u_.values();
    return v.Tuple({{PositionalAttr(&u_, 1), v.Const(a)},
                    {PositionalAttr(&u_, 2), v.Const(b)}});
  }

  // Runs the graph-encoding program on the edge list; each call consumes
  // fresh oids from the shared universe, so two runs produce disjoint
  // invented oids.
  Instance RunOnce(const std::vector<std::pair<std::string, std::string>>&
                       edges) {
    auto unit = ParseUnit(&u_, kGraphEncoding);
    EXPECT_TRUE(unit.ok()) << unit.status();
    auto in_schema = unit->schema.Project({"R"});
    EXPECT_TRUE(in_schema.ok());
    Instance input(std::make_shared<const Schema>(std::move(*in_schema)),
                   &u_);
    for (const auto& [a, b] : edges) {
      EXPECT_TRUE(input.AddToRelation("R", Pair(a, b)).ok());
    }
    auto out = RunUnit(&u_, &*unit, input);
    EXPECT_TRUE(out.ok()) << out.status();
    // Keep the output schema alive via shared ownership.
    auto out_schema = unit->schema.Project({"P", "P'"});
    EXPECT_TRUE(out_schema.ok());
    return out->Project(
        std::make_shared<const Schema>(std::move(*out_schema)));
  }

  Universe u_;
};

TEST_F(DeterminacyTest, TwoRunsProduceIsomorphicOutputs) {
  std::vector<std::pair<std::string, std::string>> edges = {
      {"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "c"}};
  Instance out1 = RunOnce(edges);
  Instance out2 = RunOnce(edges);
  // Different invented oids...
  std::set<Oid> o1 = out1.Objects(), o2 = out2.Objects();
  for (Oid o : o1) EXPECT_FALSE(o2.count(o));
  // ...but O-isomorphic results.
  EXPECT_TRUE(OIsomorphic(out1, out2));
}

TEST_F(DeterminacyTest, NonIsomorphicInputsDistinguished) {
  Instance path = RunOnce({{"a", "b"}, {"b", "c"}});
  Instance cycle = RunOnce({{"a", "b"}, {"b", "c"}, {"c", "a"}});
  EXPECT_FALSE(OIsomorphic(path, cycle));
}

TEST_F(DeterminacyTest, GenericityUnderConstantRenaming) {
  // Evaluate, then rename constants in the *input* and evaluate again: the
  // outputs must be isomorphic up to the same constant renaming
  // (Definition 4.1.1, condition (3)).
  Instance out_ab = RunOnce({{"a", "b"}, {"b", "a"}});
  Instance out_uv = RunOnce({{"u", "v"}, {"v", "u"}});
  Symbol a = u_.Intern("a"), b = u_.Intern("b");
  Symbol uu = u_.Intern("u"), vv = u_.Intern("v");
  Instance renamed = RenameInstance(
      out_ab, [](Oid o) { return o; },
      [&](Symbol s) { return s == a ? uu : (s == b ? vv : s); });
  EXPECT_TRUE(OIsomorphic(renamed, out_uv));
  EXPECT_FALSE(OIsomorphic(out_ab, out_uv));
}

}  // namespace
}  // namespace iqlkit
