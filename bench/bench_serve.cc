// Serving-tier throughput and latency. The qps series runs the full
// deterministic serve loop (simulated clients over in-memory duplexes,
// real worker-pool scheduler underneath) and reports sustained completed
// queries per second; the first-page series pumps one session by hand
// and samples the wall-clock gap from QUERY to the terminal PAGE, so the
// p50/p99 counters are true end-to-end wire latencies (frame encode,
// admission, evaluation, page materialization, frame decode).
// bench/run_all.sh records both under `.serve` in BENCH_RESULTS.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "server/scheduler.h"
#include "server/serve_loop.h"
#include "server/session.h"
#include "server/wire.h"

namespace iqlkit::bench {
namespace {

using server::Frame;
using server::FrameDecoder;
using server::FrameType;
using server::MemoryDuplex;
using server::MemoryStream;
using server::Scheduler;
using server::SchedulerOptions;
using server::ServeOptions;
using server::ServeSimulated;
using server::Session;
using server::SessionCloseName;
using server::SessionOptions;
using server::SimClientSpec;
using server::SimQuery;
using server::kWireVersion;

// A self-contained transitive-closure unit over a deterministic random
// graph: the server re-parses per query, so the facts ride in the source
// text (exactly what a wire client submits).
std::string TcSource(int nodes, int edges, uint32_t seed) {
  std::ostringstream source;
  source << "schema { relation E : [D, D]; relation TC : [D, D]; }\n"
            "input E;\noutput TC;\ninstance {\n";
  for (auto [a, b] : RandomGraph(nodes, edges, seed)) {
    source << "  E([\"" << a << "\", \"" << b << "\"]);\n";
  }
  source << "}\nprogram {\n"
            "  TC(x, y) :- E(x, y).\n"
            "  TC(x, z) :- TC(x, y), E(y, z).\n"
            "}\n";
  return source.str();
}

// Sustained throughput: N simulated clients, 8 queries each, paged
// results, no drain, real scheduler workers underneath. The rate counter
// divides total delivered queries by wall time.
void BM_Serve_Qps(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t queries_each = 8;
  std::string source = TcSource(24, 48, 11);
  uint64_t delivered = 0;
  for (auto _ : state) {
    SchedulerOptions sched;
    sched.workers = 4;
    Scheduler scheduler(sched);
    ServeOptions options;
    options.session.max_inflight = queries_each;
    options.session.page_rows = 64;
    std::vector<SimClientSpec> specs(clients);
    for (size_t c = 0; c < clients; ++c) {
      specs[c].tenant = "bench-" + std::to_string(c);
      for (size_t q = 0; q < queries_each; ++q) {
        SimQuery query;
        query.id = "q" + std::to_string(q);
        query.source = source;
        specs[c].queries.push_back(std::move(query));
      }
    }
    auto outcome = ServeSimulated(&scheduler, options, specs,
                                  /*drain_at_ms=*/0, /*max_ms=*/600000);
    IQL_CHECK(outcome.stats.totals.delivered_completed ==
              clients * queries_each)
        << outcome.stats.totals.delivered_completed;
    delivered += outcome.stats.totals.delivered_completed;
  }
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(delivered),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Serve_Qps)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// One hand-pumped wire client against a real Session (the same frames a
// TCP client sends), sampling QUERY -> terminal-PAGE wall latency.
struct BenchClient {
  MemoryDuplex duplex{1 << 22, 1 << 22};
  MemoryStream server_end{&duplex, true};
  MemoryStream client_end{&duplex, false};
  FrameDecoder decoder;

  void Send(const Frame& frame) {
    IQL_CHECK(client_end.Write(server::EncodeFrame(frame)).ok());
  }
  std::optional<Frame> Poll() {
    std::string chunk;
    auto got = client_end.Read(&chunk, 1 << 16);
    if (got.ok() && *got > 0) decoder.Feed(chunk);
    auto next = decoder.Next();
    IQL_CHECK(next.ok()) << next.status();
    return *next;
  }
};

void BM_Serve_FirstPage(benchmark::State& state) {
  std::string source = TcSource(static_cast<int>(state.range(0)),
                                2 * static_cast<int>(state.range(0)), 11);
  SchedulerOptions sched;
  sched.workers = 2;
  Scheduler scheduler(sched);
  SessionOptions options;
  options.page_rows = 1 << 16;  // one page: first page == terminal page
  BenchClient client;
  Session session(1, &client.server_end, &scheduler, options, nullptr);
  uint64_t now = 0;
  Frame hello;
  hello.type = FrameType::kHello;
  hello.body.SetInt("version", kWireVersion).SetString("tenant", "bench");
  client.Send(hello);
  session.Pump(++now);
  IQL_CHECK(client.Poll().has_value());  // HELLO ack

  std::vector<double> samples_us;
  uint64_t id = 0;
  for (auto _ : state) {
    std::string wire_id = "q" + std::to_string(id++);
    Frame query;
    query.type = FrameType::kQuery;
    query.body.SetString("id", wire_id).SetString("source", source);
    Frame want;
    want.type = FrameType::kPage;
    want.body.SetString("id", wire_id).SetInt("want", 0);
    auto start = std::chrono::steady_clock::now();
    client.Send(query);
    client.Send(want);
    // One virtual tick per query: the clock must not advance while the
    // busy-wait spins, or the session's idle timeout would fire after a
    // few real milliseconds of evaluation.
    ++now;
    for (;;) {
      session.Pump(now);
      IQL_CHECK(session.open()) << SessionCloseName(session.close_reason());
      auto frame = client.Poll();
      if (!frame.has_value()) continue;
      IQL_CHECK(frame->type == FrameType::kPage)
          << server::FrameTypeName(frame->type);
      IQL_CHECK(frame->body.BoolOr("done", false));
      break;
    }
    auto elapsed = std::chrono::steady_clock::now() - start;
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  std::sort(samples_us.begin(), samples_us.end());
  auto quantile = [&](double q) {
    size_t index = static_cast<size_t>(q * (samples_us.size() - 1));
    return samples_us[index];
  };
  if (!samples_us.empty()) {
    state.counters["p50_us"] = quantile(0.50);
    state.counters["p99_us"] = quantile(0.99);
  }
}
BENCHMARK(BM_Serve_FirstPage)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace
}  // namespace iqlkit::bench
