// Scheduler overhead and multiplexing throughput. The scheduled path adds
// admission, a per-attempt governor with the pressure hook armed, and the
// task-pool handoff on top of the same parse+load+evaluate pipeline a
// direct call runs, so Scheduled(workers=1)/Direct on identical queries is
// the true cost of going through the scheduler: bench/run_all.sh records
// the mean ratio into BENCH_RESULTS.json as `.scheduler` (target: < 10%
// on these sub-millisecond queries; the absolute gap is a fixed few
// microseconds of bookkeeping per query). The throughput sweep records
// how a fixed 16-query batch scales with the worker count.

#include <benchmark/benchmark.h>

#include <chrono>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "server/scheduler.h"

namespace iqlkit::bench {
namespace {

using server::QueryOutcome;
using server::QueryRequest;
using server::Scheduler;
using server::SchedulerOptions;

// A self-contained transitive-closure unit over a deterministic random
// graph: the scheduler re-parses per attempt, so the facts ride in the
// source text (exactly what iqlserve submits).
std::string TcSource(int nodes, int edges, uint32_t seed) {
  std::ostringstream source;
  source << "schema { relation E : [D, D]; relation TC : [D, D]; }\n"
            "input E;\noutput TC;\ninstance {\n";
  for (auto [a, b] : RandomGraph(nodes, edges, seed)) {
    source << "  E([\"" << a << "\", \"" << b << "\"]);\n";
  }
  source << "}\nprogram {\n"
            "  TC(x, y) :- E(x, y).\n"
            "  TC(x, z) :- TC(x, y), E(y, z).\n"
            "}\n";
  return source.str();
}

// Baseline: the exact pipeline one scheduler attempt runs (fresh universe,
// parse, load, serial evaluation, serialization), with no scheduler.
void BM_Scheduler_Direct(benchmark::State& state) {
  std::string source = TcSource(static_cast<int>(state.range(0)),
                                2 * static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    Universe universe;
    auto unit = ParseUnit(&universe, source);
    IQL_CHECK(unit.ok()) << unit.status();
    Instance input(&unit->schema, &universe);
    IQL_CHECK(ApplyFacts(*unit, &input).ok());
    EvalOptions options;
    options.num_threads = 1;
    auto out = RunUnit(&universe, &*unit, input, options);
    IQL_CHECK(out.ok()) << out.status();
    std::string facts = WriteFacts(*out);
    benchmark::DoNotOptimize(facts);
  }
}
BENCHMARK(BM_Scheduler_Direct)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->Unit(benchmark::kMillisecond);

// One query at a time through a one-worker scheduler: admission + governor
// + pool handoff on top of the Direct pipeline. Scheduler construction and
// teardown stay outside the timed region (manual time).
void BM_Scheduler_Scheduled(benchmark::State& state) {
  std::string source = TcSource(static_cast<int>(state.range(0)),
                                2 * static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    SchedulerOptions options;
    options.workers = 1;
    Scheduler scheduler(options);
    auto start = std::chrono::steady_clock::now();
    QueryRequest request;
    request.id = "q";
    request.source = source;
    auto ticket = scheduler.Submit(std::move(request));
    IQL_CHECK(ticket.ok()) << ticket.status();
    auto result = scheduler.Wait(*ticket);
    IQL_CHECK(result.outcome == QueryOutcome::kCompleted) << result.status;
    auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
}
BENCHMARK(BM_Scheduler_Scheduled)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// A fixed 16-query batch against 1/2/4/8 workers: the multiplexing win of
// one shared pool across concurrent serial evaluations.
void BM_Scheduler_Throughput(benchmark::State& state) {
  std::string source = TcSource(64, 128, 11);
  constexpr int kBatch = 16;
  for (auto _ : state) {
    SchedulerOptions options;
    options.workers = static_cast<size_t>(state.range(0));
    options.queue_capacity = kBatch;
    Scheduler scheduler(options);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) {
      QueryRequest request;
      request.id = "q" + std::to_string(i);
      request.source = source;
      auto ticket = scheduler.Submit(std::move(request));
      IQL_CHECK(ticket.ok()) << ticket.status();
    }
    scheduler.RunUntilIdle();
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(scheduler.counters().completed == kBatch);
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["queries"] = kBatch;
}
BENCHMARK(BM_Scheduler_Throughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Admission-path cost under rejection pressure: a full queue turns every
// Submit into a structured QUEUE_FULL rejection; this is the hot shed path
// during overload, so it must stay trivially cheap.
void BM_Scheduler_RejectionPath(benchmark::State& state) {
  SchedulerOptions options;
  options.deterministic = true;  // nothing runs until RunUntilIdle
  options.queue_capacity = 4;
  Scheduler scheduler(options);
  std::string source = TcSource(8, 16, 11);
  for (int i = 0; i < 4; ++i) {
    QueryRequest request;
    request.id = "fill" + std::to_string(i);
    request.source = source;
    IQL_CHECK(scheduler.Submit(std::move(request)).ok());
  }
  for (auto _ : state) {
    QueryRequest request;
    request.id = "reject";
    request.source = source;
    auto rejected = scheduler.Submit(std::move(request));
    IQL_CHECK(!rejected.ok());
    benchmark::DoNotOptimize(rejected);
  }
}
BENCHMARK(BM_Scheduler_RejectionPath);

}  // namespace
}  // namespace iqlkit::bench
