// Experiment E5 (Example 3.4.3): the lossless union-type encode/decode
// pair. Sweeps the number of objects in the union-typed class P; encode
// and decode each invent one oid per object and assign one tuple value, so
// the curve must stay near-linear (the joins are over the pairing
// relation R).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kEncode = R"(
  schema {
    class P  : (P | [P, P]);
    class P' : [{P'}, {[P', P']}];
    relation R : [P, P'];
  }
  input P;
  output P';
  program {
    R(x, x') :- P(x).
    ;
    x'^ = [{y'}, {}] :- R(x, x'), R(y, y'), y = x^.
    x'^ = [{}, {[y', z']}] :- R(x, x'), R(y, y'), R(z, z'), [y, z] = x^.
  }
)";

void BM_UnionEncode(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PreparedRun run(kEncode);
    ValueStore& v = run.universe.values();
    // Build n objects: even ones point at a successor (class branch), odd
    // ones pair their two neighbours (tuple branch).
    std::vector<Oid> oids;
    for (int i = 0; i < n; ++i) {
      auto o = run.input->CreateOid("P");
      IQL_CHECK(o.ok());
      oids.push_back(*o);
    }
    for (int i = 0; i < n; ++i) {
      if (i % 2 == 0) {
        IQL_CHECK(run.input
                      ->SetOidValue(oids[i], v.OfOid(oids[(i + 1) % n]))
                      .ok());
      } else {
        IQL_CHECK(
            run.input
                ->SetOidValue(
                    oids[i],
                    v.Tuple({{PositionalAttr(&run.universe, 1),
                              v.OfOid(oids[(i + 1) % n])},
                             {PositionalAttr(&run.universe, 2),
                              v.OfOid(oids[(i + n - 1) % n])}}))
                .ok());
      }
    }
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run();
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    IQL_CHECK(out->ClassExtent(run.universe.Intern("P'")).size() ==
              static_cast<size_t>(n));
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UnionEncode)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace
}  // namespace iqlkit::bench
