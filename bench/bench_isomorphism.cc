// Experiment E6 (Theorem 4.1.3): the cost of *verifying* determinacy --
// O-isomorphism checking between instances. Color refinement makes
// labeled/asymmetric instances near-linear; highly symmetric inputs
// (uniform rings) stress the backtracking search.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "transform/isomorphism.h"

namespace iqlkit::bench {
namespace {

struct RingFixture {
  explicit RingFixture(Universe* u) : universe(u), schema(u) {
    TypePool& t = u->types();
    IQL_CHECK(schema
                  .DeclareClass("Node",
                                t.Tuple({{u->Intern("name"), t.Base()},
                                         {u->Intern("succ"),
                                          t.Set(t.ClassNamed("Node"))}}))
                  .ok());
  }

  // labeled: distinct names break symmetry; unlabeled: uniform names.
  Instance Ring(int n, bool labeled) {
    Instance inst(&schema, universe);
    ValueStore& v = universe->values();
    std::vector<Oid> oids;
    for (int i = 0; i < n; ++i) {
      auto o = inst.CreateOid("Node");
      IQL_CHECK(o.ok());
      oids.push_back(*o);
    }
    for (int i = 0; i < n; ++i) {
      ValueId name = labeled ? v.ConstInt(i) : v.Const("n");
      IQL_CHECK(inst.SetOidValue(
                        oids[i],
                        v.Tuple({{universe->Intern("name"), name},
                                 {universe->Intern("succ"),
                                  v.Set({v.OfOid(oids[(i + 1) % n])})}}))
                    .ok());
    }
    return inst;
  }

  Universe* universe;
  Schema schema;
};

void BM_Isomorphism(benchmark::State& state, bool labeled) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  RingFixture fixture(&u);
  Instance a = fixture.Ring(n, labeled);
  Instance b = fixture.Ring(n, labeled);
  for (auto _ : state) {
    bool iso = OIsomorphic(a, b);
    IQL_CHECK(iso);
    benchmark::DoNotOptimize(iso);
  }
  state.SetComplexityN(n);
}

void BM_Isomorphism_Labeled(benchmark::State& state) {
  BM_Isomorphism(state, /*labeled=*/true);
}
BENCHMARK(BM_Isomorphism_Labeled)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_Isomorphism_SymmetricRing(benchmark::State& state) {
  BM_Isomorphism(state, /*labeled=*/false);
}
BENCHMARK(BM_Isomorphism_SymmetricRing)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_Isomorphism_NegativeCase(benchmark::State& state) {
  // A ring vs a path: refinement distinguishes quickly.
  int n = static_cast<int>(state.range(0));
  Universe u;
  RingFixture fixture(&u);
  Instance a = fixture.Ring(n, true);
  Instance b = fixture.Ring(n + 1, true);
  for (auto _ : state) {
    bool iso = OIsomorphic(a, b);
    IQL_CHECK(!iso);
    benchmark::DoNotOptimize(iso);
  }
}
BENCHMARK(BM_Isomorphism_NegativeCase)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iqlkit::bench
