// Experiment E4 (Example 3.4.2): the powerset in IQL, two ways.
//
// Paper claim: powerset "is expensive: it is exponential in the input
// size", whether written with an unrestricted set variable or in the
// range-restricted style with invented oids. Both series below must grow
// ~2^n in output size and time; the oid version additionally pays ~4^n
// invented pair-oids (one per pair of subsets).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kUnrestricted = R"(
  schema { relation R : D; relation R1 : {D}; }
  input R;
  output R1;
  program {
    var X : {D};
    R1(X) :- X = X.
  }
)";

constexpr std::string_view kViaOids = R"(
  schema {
    relation R  : D;
    relation R1 : {D};
    relation R2 : [{D}, {D}, P];
    class P : {D};
  }
  input R;
  output R1;
  program {
    R1({}).
    R1({x}) :- R(x).
    R2(X, Y, z) :- R1(X), R1(Y).
    z^(x) :- R2(X, Y, z), X(x).
    z^(y) :- R2(X, Y, z), Y(y).
    R1(z^) :- P(z).
  }
)";

void RunPowerset(benchmark::State& state, std::string_view source) {
  int n = static_cast<int>(state.range(0));
  size_t result_size = 0;
  for (auto _ : state) {
    PreparedRun run(source);
    for (int i = 0; i < n; ++i) run.AddUnary("R", i);
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run();
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    result_size = out->Relation(run.universe.Intern("R1")).size();
    IQL_CHECK(result_size == (size_t{1} << n));
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["subsets"] = static_cast<double>(result_size);
}

void BM_Powerset_Unrestricted(benchmark::State& state) {
  RunPowerset(state, kUnrestricted);
}
BENCHMARK(BM_Powerset_Unrestricted)
    ->DenseRange(2, 10, 2)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Powerset_ViaInventedOids(benchmark::State& state) {
  RunPowerset(state, kViaOids);
}
BENCHMARK(BM_Powerset_ViaInventedOids)
    ->DenseRange(2, 6, 1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iqlkit::bench
