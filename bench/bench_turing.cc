// E16: cost of the completeness construction -- the TM-in-IQL simulator.
// Each machine step re-derives a full tape copy under the naive operator,
// so runtime grows ~ steps^2 x tape (time points accumulate and the
// val-dom rescans them); the point is feasibility and shape, not speed.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "transform/turing.h"

namespace iqlkit::bench {
namespace {

TuringMachine IncrementMachine() {
  TuringMachine tm;
  tm.start_state = "scan";
  tm.accepting_states = {"done"};
  tm.transitions = {
      {"scan", "0", "scan", "0", 'R'}, {"scan", "1", "scan", "1", 'R'},
      {"scan", "B", "inc", "B", 'L'},  {"inc", "1", "inc", "0", 'L'},
      {"inc", "0", "done", "1", 'L'},  {"inc", "B", "done", "1", 'L'},
  };
  return tm;
}

void BM_TuringIncrement(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // All-ones input: maximal carry chain, 2n+2 machine steps, left growth.
  std::vector<std::string> word(n, "1");
  size_t steps = 0;
  for (auto _ : state) {
    Universe u;
    auto start = std::chrono::steady_clock::now();
    auto r = RunTuringMachine(&u, IncrementMachine(), word);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(r.ok()) << r.status();
    IQL_CHECK(r->final_tape.size() == word.size() + 1);  // 1...1 -> 10...0
    steps = r->steps;
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["machine_steps"] = static_cast<double>(steps);
  state.SetComplexityN(n);
}
BENCHMARK(BM_TuringIncrement)
    ->DenseRange(2, 10, 2)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace
}  // namespace iqlkit::bench
