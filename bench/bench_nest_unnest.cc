// Experiment E3 (Example 3.4.1): nest/unnest throughput. Unnest flattens a
// [D, {D}] relation through a set variable; nest rebuilds it via invented
// set-valued oids (the COL data-function simulated with invention, §3.4).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kUnnest = R"(
  schema { relation R1 : [D, {D}]; relation R2 : [D, D]; }
  input R1;
  output R2;
  program { R2(x, y) :- R1(x, Y), Y(y). }
)";

constexpr std::string_view kNest = R"(
  schema {
    relation R2 : [D, D];
    relation R3 : [D, {D}];
    relation R4 : D;
    relation R5 : [D, P];
    class P : {D};
  }
  input R2;
  output R3;
  program {
    R4(x) :- R2(x, y).
    R5(x, z) :- R4(x).
    z^(y) :- R2(x, y), R5(x, z).
    ;
    R3(x, z^) :- R5(x, z).
  }
)";

// groups * fanout facts.
void BM_Unnest(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  int fanout = static_cast<int>(state.range(1));
  for (auto _ : state) {
    PreparedRun run(kUnnest);
    ValueStore& v = run.universe.values();
    for (int g = 0; g < groups; ++g) {
      std::vector<ValueId> elems;
      for (int k = 0; k < fanout; ++k) {
        elems.push_back(v.ConstInt(g * fanout + k));
      }
      ValueId t = v.Tuple(
          {{PositionalAttr(&run.universe, 1), v.ConstInt(g)},
           {PositionalAttr(&run.universe, 2), v.Set(std::move(elems))}});
      IQL_CHECK(run.input->AddToRelation("R1", t).ok());
    }
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run();
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    IQL_CHECK(out->Relation(run.universe.Intern("R2")).size() ==
              static_cast<size_t>(groups * fanout));
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
}
BENCHMARK(BM_Unnest)
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({16, 16})
    ->Args({64, 16})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Nest(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  int fanout = static_cast<int>(state.range(1));
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats{};
    PreparedRun run(kNest);
    for (int g = 0; g < groups; ++g) {
      for (int k = 0; k < fanout; ++k) {
        run.AddEdge("R2", g, g * fanout + k);
      }
    }
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run({}, &stats);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    IQL_CHECK(out->Relation(run.universe.Intern("R3")).size() ==
              static_cast<size_t>(groups));
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["invented"] = static_cast<double>(stats.invented_oids);
}
BENCHMARK(BM_Nest)
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({16, 16})
    ->Args({64, 16})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iqlkit::bench
