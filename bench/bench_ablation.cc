// Ablation: the valuation-domain head filter. The paper's semantics asks,
// per candidate valuation, whether *some extension* satisfies the head
// (§3.2); implemented literally that is a scan-and-match over the head
// predicate's extent, but for fully-bound heads (every rule without
// invention) it collapses to a single membership lookup. This benchmark
// quantifies the difference the fast path makes on transitive closure --
// the design note DESIGN.md calls out.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kTC = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  input E;
  output TC;
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

void RunTC(benchmark::State& state, bool disable_fast_path) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomGraph(n, 2 * n, 11);
  for (auto _ : state) {
    PreparedRun run(kTC);
    for (auto [a, b] : edges) run.AddEdge("E", a, b);
    EvalOptions options;
    options.enable_seminaive = false;  // measure the naive operator
    options.disable_head_fast_path = disable_fast_path;
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
}

void BM_HeadFilter_FastPath(benchmark::State& state) {
  RunTC(state, /*disable_fast_path=*/false);
}
BENCHMARK(BM_HeadFilter_FastPath)
    ->RangeMultiplier(2)
    ->Range(16, 64)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_HeadFilter_LiteralScan(benchmark::State& state) {
  RunTC(state, /*disable_fast_path=*/true);
}
BENCHMARK(BM_HeadFilter_LiteralScan)
    ->RangeMultiplier(2)
    ->Range(16, 64)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iqlkit::bench
