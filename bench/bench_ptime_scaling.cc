// Experiment E9 (Theorem 5.4): IQLrr/IQLpr programs have PTIME data
// complexity. The series below sweep input size for three programs the §5
// classifier admits; their running time must grow polynomially (contrast
// with bench_powerset's exponential curves for programs the classifier
// rejects).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "iql/restrict.h"
#include "iql/typecheck.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kTransitiveClosure = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  input E;
  output TC;
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

// Invention, one stage per phase: in IQLrr by the staged classification.
constexpr std::string_view kInventPerNode = R"(
  schema {
    relation E  : [D, D];
    relation R0 : D;
    relation R9 : [D, P];
    class P : {D};
  }
  input E;
  output R9, P;
  program {
    R0(x) :- E(x, y).
    R0(x) :- E(y, x).
    ;
    R9(x, p) :- R0(x).
    ;
    p^(y) :- R9(x, p), E(x, y).
  }
)";

// Negation + composition: nodes with no outgoing edge.
constexpr std::string_view kSinks = R"(
  schema {
    relation E : [D, D];
    relation Node : D;
    relation HasOut : D;
    relation Sink : D;
  }
  input E;
  output Sink;
  program {
    Node(x) :- E(x, y).
    Node(x) :- E(y, x).
    HasOut(x) :- E(x, y).
    ;
    Sink(x) :- Node(x), !HasOut(x).
  }
)";

void RunScaling(benchmark::State& state, std::string_view source,
                bool expect_rr, bool indexed) {
  int n = static_cast<int>(state.range(0));
  EvalStats stats;
  EvalMetrics metrics;
  for (auto _ : state) {
    stats = EvalStats{};
    metrics = EvalMetrics{};
    PreparedRun run(source);
    // Verify the classifier's verdict once (cheap).
    Status tc = TypeCheck(&run.universe, run.unit->schema,
                          &run.unit->program);
    IQL_CHECK(tc.ok()) << tc;
    RestrictionReport report = AnalyzeRestrictions(
        &run.universe, run.unit->schema, run.unit->program);
    IQL_CHECK(report.in_iql_pr);
    IQL_CHECK(report.in_iql_rr == expect_rr);
    for (auto [a, b] : RandomGraph(n, 2 * n, 7)) run.AddEdge("E", a, b);
    EvalOptions options;
    options.enable_seminaive = false;  // Theorem 5.4 is about the naive
                                       // operator; see bench_datalog_baseline
                                       // for the semi-naive optimization
    options.enable_indexing = indexed;
    options.enable_scheduling = indexed;
    options.metrics = &metrics;
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options, &stats);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["derivations"] = static_cast<double>(stats.derivations);
  ExportMetrics(state, metrics);
  state.SetComplexityN(n);
}

void BM_IqlRr_TransitiveClosure(benchmark::State& state) {
  RunScaling(state, kTransitiveClosure, /*expect_rr=*/true,
             /*indexed=*/false);
}
BENCHMARK(BM_IqlRr_TransitiveClosure)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// Same naive operator, but generators probe hash indexes and the greedy
// scheduler orders the body literals: the tentpole's win on this workload.
void BM_IqlRr_TransitiveClosure_Indexed(benchmark::State& state) {
  RunScaling(state, kTransitiveClosure, /*expect_rr=*/true,
             /*indexed=*/true);
}
BENCHMARK(BM_IqlRr_TransitiveClosure_Indexed)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_IqlRr_InventPerNode(benchmark::State& state) {
  RunScaling(state, kInventPerNode, /*expect_rr=*/true, /*indexed=*/false);
}
BENCHMARK(BM_IqlRr_InventPerNode)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_IqlRr_InventPerNode_Indexed(benchmark::State& state) {
  RunScaling(state, kInventPerNode, /*expect_rr=*/true, /*indexed=*/true);
}
BENCHMARK(BM_IqlRr_InventPerNode_Indexed)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_IqlPr_NegationSinks(benchmark::State& state) {
  RunScaling(state, kSinks, /*expect_rr=*/true, /*indexed=*/false);
}
BENCHMARK(BM_IqlPr_NegationSinks)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_IqlPr_NegationSinks_Indexed(benchmark::State& state) {
  RunScaling(state, kSinks, /*expect_rr=*/true, /*indexed=*/true);
}
BENCHMARK(BM_IqlPr_NegationSinks_Indexed)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace
}  // namespace iqlkit::bench
