// Experiment E8 (§4.5, IQL*): deletion workloads -- bulk retraction of
// relation facts and cascading oid deletion, the operations the paper
// notes "require more involved evaluation mechanisms, e.g. with reference
// counts or garbage collection".

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kBulkDelete = R"(
  schema { relation R : [D, D]; relation Kill : D; }
  input R, Kill;
  program { !R(x, y) :- R(x, y), Kill(x). }
)";

void BM_BulkFactDeletion(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PreparedRun run(kBulkDelete);
    for (auto [a, b] : RandomGraph(n, 4 * n, 17)) run.AddEdge("R", a, b);
    for (int i = 0; i < n / 2; ++i) run.AddUnary("Kill", i);
    EvalOptions options;
    options.allow_deletions = true;
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BulkFactDeletion)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// Cascade: deleting the head of a chain of wrapper objects erases the
// whole chain (update propagation).
void BM_CascadeOidDeletion(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  constexpr std::string_view kSource = R"(
    schema {
      class Node : (D | Node);
      relation Kill : Node;
    }
    input Node, Kill;
    program { !Node(x) :- Kill(x). }
  )";
  for (auto _ : state) {
    PreparedRun run(kSource);
    ValueStore& v = run.universe.values();
    // Chain: node_i's value mentions node_{i-1}; deleting node_0 cascades
    // through all n.
    Oid prev{};
    for (int i = 0; i < n; ++i) {
      auto o = run.input->CreateOid("Node");
      IQL_CHECK(o.ok());
      IQL_CHECK(run.input
                    ->SetOidValue(*o, i == 0 ? v.Const("base")
                                             : v.OfOid(prev))
                    .ok());
      prev = *o;
      if (i == 0) {
        IQL_CHECK(run.input->AddToRelation("Kill", v.OfOid(*o)).ok());
      }
    }
    EvalOptions options;
    options.allow_deletions = true;
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    IQL_CHECK(out->ClassExtent(run.universe.Intern("Node")).empty());
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CascadeOidDeletion)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace
}  // namespace iqlkit::bench
