// Experiment E10 (§3.4, "each Datalog program can be viewed as a valid IQL
// program"): transitive closure on the same random graphs under
//   (a) the flat relational Datalog engine, naive evaluation,
//   (b) the same engine, semi-naive evaluation,
//   (c) the IQL naive inflationary evaluator (objects, typed terms).
// Expected shape: semi-naive < naive < IQL-naive, with all three
// polynomial; the gap (a)->(c) is the price of the object machinery, the
// gap (b)->(a) the classic semi-naive win.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datalog/datalog.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kIqlTC = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  input E;
  output TC;
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

void BM_Datalog_TC(benchmark::State& state, datalog::EvalMode mode) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomGraph(n, 2 * n, 11);
  size_t closure = 0;
  for (auto _ : state) {
    datalog::Database db;
    int e = *db.AddRelation("E", 2);
    int tc = *db.AddRelation("TC", 2);
    datalog::Program prog;
    using datalog::Atom;
    using datalog::Term;
    prog.rules.push_back(datalog::Rule{
        Atom{tc, {Term::Var(0), Term::Var(1)}},
        {Atom{e, {Term::Var(0), Term::Var(1)}}},
        {}});
    prog.rules.push_back(datalog::Rule{
        Atom{tc, {Term::Var(0), Term::Var(2)}},
        {Atom{tc, {Term::Var(0), Term::Var(1)}},
         Atom{e, {Term::Var(1), Term::Var(2)}}},
        {}});
    for (auto [a, b] : edges) {
      db.AddFact(e, {db.InternConstant(a), db.InternConstant(b)});
    }
    auto start = std::chrono::steady_clock::now();
    Status s = datalog::Evaluate(prog, &db, mode);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(s.ok()) << s;
    closure = db.FactCount(tc);
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["tc_facts"] = static_cast<double>(closure);
}

void BM_Datalog_TC_Naive(benchmark::State& state) {
  BM_Datalog_TC(state, datalog::EvalMode::kNaive);
}
BENCHMARK(BM_Datalog_TC_Naive)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Datalog_TC_SemiNaive(benchmark::State& state) {
  BM_Datalog_TC(state, datalog::EvalMode::kSemiNaive);
}
BENCHMARK(BM_Datalog_TC_SemiNaive)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Delta joins answered by the per-(relation, bound-positions) hash
// indexes instead of full scans.
void BM_Datalog_TC_SemiNaiveIndexed(benchmark::State& state) {
  BM_Datalog_TC(state, datalog::EvalMode::kSemiNaiveIndexed);
}
BENCHMARK(BM_Datalog_TC_SemiNaiveIndexed)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Iql_TC(benchmark::State& state, bool seminaive, bool indexed) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomGraph(n, 2 * n, 11);
  size_t closure = 0;
  EvalMetrics metrics;
  for (auto _ : state) {
    metrics = EvalMetrics{};
    PreparedRun run(kIqlTC);
    for (auto [a, b] : edges) run.AddEdge("E", a, b);
    EvalOptions options;
    options.enable_seminaive = seminaive;
    options.enable_indexing = indexed;
    options.enable_scheduling = indexed;
    options.metrics = &metrics;
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    closure = out->Relation(run.universe.Intern("TC")).size();
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["tc_facts"] = static_cast<double>(closure);
  ExportMetrics(state, metrics);
}

void BM_Iql_TC_Naive(benchmark::State& state) {
  BM_Iql_TC(state, /*seminaive=*/false, /*indexed=*/false);
}
BENCHMARK(BM_Iql_TC_Naive)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// The engine's delta-driven mode on the same eligible stage: the IQL
// counterpart of the classical semi-naive optimization.
void BM_Iql_TC_SemiNaive(benchmark::State& state) {
  BM_Iql_TC(state, /*seminaive=*/true, /*indexed=*/false);
}
BENCHMARK(BM_Iql_TC_SemiNaive)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Semi-naive deltas + hash-indexed generators + greedy scheduling: the
// full pipeline, directly comparable to the flat engine's indexed mode.
void BM_Iql_TC_SemiNaiveIndexed(benchmark::State& state) {
  BM_Iql_TC(state, /*seminaive=*/true, /*indexed=*/true);
}
BENCHMARK(BM_Iql_TC_SemiNaiveIndexed)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iqlkit::bench
