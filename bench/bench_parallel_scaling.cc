// Parallel scaling: the same three workloads the per-experiment benches
// measure serially -- transitive closure (E10's IQL side), powerset via
// invented oids (E4), and the flagship graph encoding (E2) -- swept over
// EvalOptions::num_threads in {1, 2, 4, 8}. The merge is deterministic, so
// every sweep point computes the identical instance; only wall time may
// move. Speedup over the 1-thread row is the figure of merit, and the
// `eval_threads` / `partitions` counters record what the run actually used
// (on a machine with fewer cores than the sweep point, extra workers just
// time-slice, so scaling tops out at the physical core count).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datalog/datalog.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kTc = R"(
  schema {
    relation E  : [D, D];
    relation TC : [D, D];
  }
  input E;
  output TC;
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

constexpr std::string_view kPowerset = R"(
  schema {
    relation R  : D;
    relation R1 : {D};
    relation R2 : [{D}, {D}, P];
    class P : {D};
  }
  input R;
  output R1;
  program {
    R1({}).
    R1({x}) :- R(x).
    R2(X, Y, z) :- R1(X), R1(Y).
    z^(x) :- R2(X, Y, z), X(x).
    z^(y) :- R2(X, Y, z), Y(y).
    R1(z^) :- P(z).
  }
)";

constexpr std::string_view kGraphEncoding = R"(
  schema {
    relation R  : [D, D];
    relation R0 : D;
    relation R9 : [D, P, P'];
    class P  : [D, {P}];
    class P' : {P};
  }
  input R;
  output P, P';
  program {
    R0(x) :- R(x, y).
    R0(x) :- R(y, x).
    R9(x, p, p') :- R0(x).
    p'^(q) :- R9(x, p, p'), R9(y, q, q'), R(x, y).
    ;
    p^ = [x, p'^] :- R9(x, p, p').
  }
)";

// Shared driver: builds the input with `fill`, runs with the sweep
// point's thread count, and exports the resolved thread count and total
// partitions next to the wall time.
template <typename Fill>
void RunScaling(benchmark::State& state, std::string_view source,
                Fill fill) {
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  EvalMetrics metrics;
  for (auto _ : state) {
    metrics = EvalMetrics{};
    EvalOptions options;
    options.num_threads = threads;
    options.metrics = &metrics;
    PreparedRun run(source);
    fill(run);
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  uint64_t partitions = 0;
  for (const RuleMetrics& r : metrics.rules) {
    partitions += r.parallel_partitions;
  }
  // "threads" would collide with google-benchmark's own JSON field.
  state.counters["eval_threads"] = static_cast<double>(metrics.threads);
  state.counters["partitions"] = static_cast<double>(partitions);
}

void BM_ParallelTc(benchmark::State& state) {
  auto edges = RandomGraph(160, 480, 29);
  RunScaling(state, kTc, [&](PreparedRun& run) {
    for (auto [a, b] : edges) run.AddEdge("E", a, b);
  });
}
BENCHMARK(BM_ParallelTc)
    ->DenseRange(1, 8, 1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_ParallelPowerset(benchmark::State& state) {
  RunScaling(state, kPowerset, [](PreparedRun& run) {
    for (int i = 0; i < 6; ++i) run.AddUnary("R", i);
  });
}
BENCHMARK(BM_ParallelPowerset)
    ->DenseRange(1, 8, 1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_ParallelGraphEncoding(benchmark::State& state) {
  auto edges = RandomGraph(96, 192, 13);
  RunScaling(state, kGraphEncoding, [&](PreparedRun& run) {
    for (auto [a, b] : edges) run.AddEdge("R", a, b);
  });
}
BENCHMARK(BM_ParallelGraphEncoding)
    ->DenseRange(1, 8, 1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// The flat Datalog engine's parallel join on the same closure, as a
// baseline for the object evaluator's scaling curve.
void BM_ParallelDatalogTc(benchmark::State& state) {
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  auto edges = RandomGraph(160, 480, 29);
  for (auto _ : state) {
    datalog::Database db;
    datalog::Program prog;
    int e = *db.AddRelation("E", 2);
    int tc = *db.AddRelation("TC", 2);
    using datalog::Atom;
    using datalog::Term;
    prog.rules.push_back(datalog::Rule{
        Atom{tc, {Term::Var(0), Term::Var(1)}},
        {Atom{e, {Term::Var(0), Term::Var(1)}}},
        {}});
    prog.rules.push_back(datalog::Rule{
        Atom{tc, {Term::Var(0), Term::Var(2)}},
        {Atom{tc, {Term::Var(0), Term::Var(1)}},
         Atom{e, {Term::Var(1), Term::Var(2)}}},
        {}});
    for (auto [a, b] : edges) {
      db.AddFact(e, {db.InternConstant(a), db.InternConstant(b)});
    }
    auto start = std::chrono::steady_clock::now();
    auto status = datalog::Evaluate(prog, &db,
                                    datalog::EvalMode::kSemiNaiveIndexed,
                                    nullptr, threads);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(status.ok()) << status;
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
}
BENCHMARK(BM_ParallelDatalogTc)
    ->DenseRange(1, 8, 1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iqlkit::bench
