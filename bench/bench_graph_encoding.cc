// Experiment E2 (Example 1.2): re-encoding a flat edge relation into a
// cyclic class-based representation -- the paper's flagship IQL program
// (invention, set accretion through temporary oids, weak assignment,
// composition). Measures end-to-end evaluation vs graph size; the oid
// count must equal the node count (one node oid + one set oid per node).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kSource = R"(
  schema {
    relation R  : [D, D];
    relation R0 : D;
    relation R9 : [D, P, P'];
    class P  : [D, {P}];
    class P' : {P};
  }
  input R;
  output P, P';
  program {
    R0(x) :- R(x, y).
    R0(x) :- R(y, x).
    R9(x, p, p') :- R0(x).
    p'^(q) :- R9(x, p, p'), R9(y, q, q'), R(x, y).
    ;
    p^ = [x, p'^] :- R9(x, p, p').
  }
)";

void BM_GraphEncoding(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomGraph(n, 2 * n, 13);
  EvalStats stats;
  size_t nodes = 0;
  for (auto _ : state) {
    stats = EvalStats{};
    PreparedRun run(kSource);
    for (auto [a, b] : edges) run.AddEdge("R", a, b);
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run({}, &stats);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    nodes = out->ClassExtent(run.universe.Intern("P")).size();
    IQL_CHECK(nodes ==
              out->ClassExtent(run.universe.Intern("P'")).size());
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["node_oids"] = static_cast<double>(nodes);
  state.counters["invented"] = static_cast<double>(stats.invented_oids);
  state.SetComplexityN(n);
}
BENCHMARK(BM_GraphEncoding)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// Cycle graph: worst case sharing structure (every node reachable).
void BM_GraphEncoding_Cycle(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PreparedRun run(kSource);
    for (int i = 0; i < n; ++i) run.AddEdge("R", i, (i + 1) % n);
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run();
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GraphEncoding_Cycle)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace
}  // namespace iqlkit::bench
