// Register-VM engine vs the tree-walking solver on matched workloads.
//
// Every series below runs the same program on the same input twice, once
// per `EvalOptions::engine`, so the _TreeWalk/_Vm pairs differ only in
// how rule bodies are executed: recursive Solver descent vs the flat IL
// interpreted by vm::VmSolver. The outputs are byte-identical by the
// differential suites; this file measures the cost of that equivalence.
// `bench/run_all.sh` matches the pairs by name and records the mean
// speedup under `.vm` in BENCH_RESULTS.json. The _VmOpt series rerun the
// IQL graph workloads with `EvalOptions::il_opt` (the verified optimizer
// of iql/ilopt.h); run_all.sh pairs them with _Vm under `.vm_opt`,
// together with instructions retired per emitted fact from the
// vm_instructions counter. The _VmFused series add the full second
// execution tier on top -- threaded dispatch plus superinstruction
// fusion (EvalOptions::il_fuse) -- and run_all.sh pairs them with
// _VmOpt (or _Vm where no _VmOpt series exists) under `.vm_fused`. The
// powerset series keeps its invention rules on the tree-walker (IL
// compilation declines them), so it bounds the win when only part of a
// program is VM-eligible; the Datalog pairs compare EvalMode::kVm
// (plain and fused plans) against kSemiNaiveIndexed.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datalog/datalog.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kTC = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  input E;
  output TC;
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

// Three-way cyclic join: every body is a pure scan/probe/compare chain,
// the best case for the flat IL.
constexpr std::string_view kTriangles = R"(
  schema { relation E : [D, D]; relation T : [D, D]; }
  input E;
  output T;
  program {
    T(x, z) :- E(x, y), E(y, z), E(z, x).
  }
)";

constexpr std::string_view kPowerset = R"(
  schema {
    relation R  : D;
    relation R1 : {D};
    relation R2 : [{D}, {D}, P];
    class P : {D};
  }
  input R;
  output R1;
  program {
    R1({}).
    R1({x}) :- R(x).
    R2(X, Y, z) :- R1(X), R1(Y).
    z^(x) :- R2(X, Y, z), X(x).
    z^(y) :- R2(X, Y, z), Y(y).
    R1(z^) :- P(z).
  }
)";

EvalOptions EngineOptions(EvalOptions::Engine engine) {
  EvalOptions options;
  options.engine = engine;
  return options;
}

void RunGraphProgram(benchmark::State& state, std::string_view source,
                     std::string_view out_rel, EvalOptions::Engine engine,
                     bool il_opt = false, bool il_fuse = false) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomGraph(n, 2 * n, 17);
  size_t result_size = 0;
  EvalMetrics metrics;
  for (auto _ : state) {
    metrics = EvalMetrics{};
    PreparedRun run(source);
    for (auto [a, b] : edges) run.AddEdge("E", a, b);
    EvalOptions options = EngineOptions(engine);
    options.il_opt = il_opt;
    options.il_fuse = il_fuse;
    options.metrics = &metrics;
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    result_size = out->Relation(run.universe.Intern(out_rel)).size();
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["output_facts"] = static_cast<double>(result_size);
  ExportMetrics(state, metrics);
}

void BM_Vm_Tc_TreeWalk(benchmark::State& state) {
  RunGraphProgram(state, kTC, "TC", EvalOptions::Engine::kTreeWalk);
}
BENCHMARK(BM_Vm_Tc_TreeWalk)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Tc_Vm(benchmark::State& state) {
  RunGraphProgram(state, kTC, "TC", EvalOptions::Engine::kVm);
}
BENCHMARK(BM_Vm_Tc_Vm)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Tc_VmOpt(benchmark::State& state) {
  RunGraphProgram(state, kTC, "TC", EvalOptions::Engine::kVm,
                  /*il_opt=*/true);
}
BENCHMARK(BM_Vm_Tc_VmOpt)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Tc_VmFused(benchmark::State& state) {
  RunGraphProgram(state, kTC, "TC", EvalOptions::Engine::kVm,
                  /*il_opt=*/true, /*il_fuse=*/true);
}
BENCHMARK(BM_Vm_Tc_VmFused)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Join_TreeWalk(benchmark::State& state) {
  RunGraphProgram(state, kTriangles, "T", EvalOptions::Engine::kTreeWalk);
}
BENCHMARK(BM_Vm_Join_TreeWalk)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Join_Vm(benchmark::State& state) {
  RunGraphProgram(state, kTriangles, "T", EvalOptions::Engine::kVm);
}
BENCHMARK(BM_Vm_Join_Vm)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Join_VmOpt(benchmark::State& state) {
  RunGraphProgram(state, kTriangles, "T", EvalOptions::Engine::kVm,
                  /*il_opt=*/true);
}
BENCHMARK(BM_Vm_Join_VmOpt)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Join_VmFused(benchmark::State& state) {
  RunGraphProgram(state, kTriangles, "T", EvalOptions::Engine::kVm,
                  /*il_opt=*/true, /*il_fuse=*/true);
}
BENCHMARK(BM_Vm_Join_VmFused)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void RunPowerset(benchmark::State& state, EvalOptions::Engine engine,
                 bool il_fuse = false) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PreparedRun run(kPowerset);
    for (int i = 0; i < n; ++i) run.AddUnary("R", i);
    EvalOptions options = EngineOptions(engine);
    options.il_opt = il_fuse;
    options.il_fuse = il_fuse;
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    size_t subsets = out->Relation(run.universe.Intern("R1")).size();
    IQL_CHECK(subsets == (size_t{1} << n));
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
}

void BM_Vm_Powerset_TreeWalk(benchmark::State& state) {
  RunPowerset(state, EvalOptions::Engine::kTreeWalk);
}
BENCHMARK(BM_Vm_Powerset_TreeWalk)
    ->DenseRange(3, 5, 1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Powerset_Vm(benchmark::State& state) {
  RunPowerset(state, EvalOptions::Engine::kVm);
}
BENCHMARK(BM_Vm_Powerset_Vm)
    ->DenseRange(3, 5, 1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Powerset_VmFused(benchmark::State& state) {
  RunPowerset(state, EvalOptions::Engine::kVm, /*il_fuse=*/true);
}
BENCHMARK(BM_Vm_Powerset_VmFused)
    ->DenseRange(3, 5, 1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Datalog core: the compiled bind/check plans (EvalMode::kVm) against the
// indexed interpreter they were lowered from.
void RunDatalogTc(benchmark::State& state, datalog::EvalMode mode,
                  datalog::VmOptions vm = {}) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomGraph(n, 2 * n, 17);
  size_t result_size = 0;
  for (auto _ : state) {
    datalog::Database db;
    int e = *db.AddRelation("E", 2);
    int tc = *db.AddRelation("TC", 2);
    datalog::Program prog;
    using datalog::Atom;
    using datalog::Term;
    prog.rules.push_back(datalog::Rule{
        Atom{tc, {Term::Var(0), Term::Var(1)}},
        {Atom{e, {Term::Var(0), Term::Var(1)}}},
        {}});
    prog.rules.push_back(datalog::Rule{
        Atom{tc, {Term::Var(0), Term::Var(2)}},
        {Atom{tc, {Term::Var(0), Term::Var(1)}},
         Atom{e, {Term::Var(1), Term::Var(2)}}},
        {}});
    for (auto [a, b] : edges) {
      db.AddFact(e, {db.InternConstant(a), db.InternConstant(b)});
    }
    auto start = std::chrono::steady_clock::now();
    Status s = datalog::Evaluate(prog, &db, mode, /*stats=*/nullptr,
                                 /*num_threads=*/1, /*governor=*/nullptr,
                                 vm);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(s.ok()) << s;
    result_size = db.FactCount(tc);
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["output_facts"] = static_cast<double>(result_size);
}

void BM_Vm_Datalog_TreeWalk(benchmark::State& state) {
  RunDatalogTc(state, datalog::EvalMode::kSemiNaiveIndexed);
}
BENCHMARK(BM_Vm_Datalog_TreeWalk)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Datalog_Vm(benchmark::State& state) {
  RunDatalogTc(state, datalog::EvalMode::kVm);
}
BENCHMARK(BM_Vm_Datalog_Vm)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Vm_Datalog_VmFused(benchmark::State& state) {
  RunDatalogTc(state, datalog::EvalMode::kVm,
               datalog::VmOptions{/*threaded=*/true, /*fuse=*/true});
}
BENCHMARK(BM_Vm_Datalog_VmFused)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iqlkit::bench
