// Durability overhead: the same serial transitive-closure evaluation with
// no durability, with a snapshot + per-step WAL frames (fsync off: the
// process-crash guarantee, the mode benchmarks and tests run), and with
// full fsync (the power-failure guarantee). bench/run_all.sh records the
// mean Durable(no-fsync)/Plain real-time ratio into BENCH_RESULTS.json as
// `.durability` (target: < 1.5x on these small fixpoints -- one frame
// encode + append per committed step); the fsync series is reported for
// the absolute numbers but kept out of the ratio, since it measures the
// disk, not the encoder. The recovery series times Recover itself: decode
// the input snapshot and replay every WAL frame of a crashed run.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "storage/durable.h"

namespace iqlkit::bench {
namespace {

using storage::DurabilityConfig;
using storage::QueryDurability;

constexpr std::string_view kTcSource = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  input E;
  output TC;
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

// PreparedRun owns a Universe and is not movable, so populate in place.
void AddGraph(PreparedRun& run, int nodes) {
  for (auto [a, b] : RandomGraph(nodes, 2 * nodes, 17)) {
    run.AddEdge("E", a, b);
  }
}

std::string ScratchDir() {
  std::string dir =
      std::filesystem::temp_directory_path() / "iqlkit_bench_durability";
  std::filesystem::remove_all(dir);
  return dir;
}

EvalOptions SerialOptions() {
  EvalOptions options;
  options.num_threads = 1;
  return options;
}

void BM_Durability_Plain(benchmark::State& state) {
  PreparedRun run(kTcSource);
  AddGraph(run, static_cast<int>(state.range(0)));
  uint64_t steps = 0;
  for (auto _ : state) {
    EvalStats stats;
    auto out = run.Run(SerialOptions(), &stats);
    IQL_CHECK(out.ok()) << out.status();
    benchmark::DoNotOptimize(out->GroundFactCount());
    steps = stats.steps;
  }
  state.counters["steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_Durability_Plain)->Arg(32)->Arg(128)->Arg(512);

void DurableRun(benchmark::State& state, bool fsync) {
  PreparedRun run(kTcSource);
  AddGraph(run, static_cast<int>(state.range(0)));
  std::string dir = ScratchDir();
  DurabilityConfig config;
  config.fsync = fsync;
  uint64_t frames = 0;
  for (auto _ : state) {
    QueryDurability durable = QueryDurability::Open(dir, config);
    IQL_CHECK(durable.active()) << durable.warning();
    // The full durable lifecycle one scheduler attempt pays: input
    // snapshot, one WAL frame per committed step, final snapshot + DONE.
    Instance base(&run.unit->schema, &run.universe);
    IQL_CHECK(base.Absorb(*run.input).ok());
    IQL_CHECK(durable.BeginRun(base).ok());
    EvalOptions options = SerialOptions();
    options.durability.sink = &durable;
    EvalStats stats;
    auto out = run.Run(options, &stats);
    IQL_CHECK(out.ok()) << out.status();
    IQL_CHECK(durable.Finalize(*out).ok());
    benchmark::DoNotOptimize(out->GroundFactCount());
    frames = stats.steps;
  }
  state.counters["wal_frames"] = static_cast<double>(frames);
  std::filesystem::remove_all(dir);
}

void BM_Durability_Durable(benchmark::State& state) {
  DurableRun(state, /*fsync=*/false);
}
BENCHMARK(BM_Durability_Durable)->Arg(32)->Arg(128)->Arg(512);

void BM_Durability_DurableFsync(benchmark::State& state) {
  DurableRun(state, /*fsync=*/true);
}
BENCHMARK(BM_Durability_DurableFsync)->Arg(32)->Arg(128);

// Crash recovery cost: decode the input snapshot and replay a full run's
// worth of WAL frames. Setup runs one durable evaluation and keeps the
// directory; each iteration recovers from it into a fresh universe.
void BM_Durability_Recover(benchmark::State& state) {
  PreparedRun run(kTcSource);
  AddGraph(run, static_cast<int>(state.range(0)));
  std::string dir = ScratchDir();
  DurabilityConfig config;
  config.fsync = false;
  {
    QueryDurability durable = QueryDurability::Open(dir, config);
    IQL_CHECK(durable.active()) << durable.warning();
    Instance base(&run.unit->schema, &run.universe);
    IQL_CHECK(base.Absorb(*run.input).ok());
    IQL_CHECK(durable.BeginRun(base).ok());
    EvalOptions options = SerialOptions();
    options.durability.sink = &durable;
    auto out = run.Run(options);
    IQL_CHECK(out.ok()) << out.status();
    // No Finalize: the directory holds a snapshot plus every frame, the
    // state a crash at the last committed step leaves behind.
  }
  uint64_t frames = 0;
  for (auto _ : state) {
    Universe universe;
    auto unit = ParseUnit(&universe, kTcSource);
    IQL_CHECK(unit.ok()) << unit.status();
    std::shared_ptr<const Schema> schema(std::shared_ptr<const Schema>(),
                                         &unit->schema);
    QueryDurability durable = QueryDurability::Open(dir, config);
    auto recovered = durable.Recover(schema, schema, &universe);
    IQL_CHECK(recovered.ok()) << recovered.status();
    IQL_CHECK(recovered->has_value());
    frames = (*recovered)->frames_replayed;
    benchmark::DoNotOptimize((*recovered)->instance.GroundFactCount());
  }
  state.counters["wal_frames"] = static_cast<double>(frames);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Durability_Recover)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace iqlkit::bench
