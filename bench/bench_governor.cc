// Governor overhead: the evaluation governor polls every enumeration loop
// (candidate scans, extent construction, datalog join inner loops), so its
// cost on a never-tripping run must stay in the noise. The datalog engine
// takes the governor as an optional parameter, giving a true
// with/without-polls comparison on the same binary:
// bench/run_all.sh computes the governed/ungoverned ratio into
// BENCH_RESULTS.json as `governor_overhead` (target: < 3%). The IQL pair
// records the governed evaluator's absolute numbers under generous vs
// tight-but-never-tripping limits for cross-release tracking.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datalog/datalog.h"

namespace iqlkit::bench {
namespace {

constexpr std::string_view kTC = R"(
  schema { relation E : [D, D]; relation TC : [D, D]; }
  input E;
  output TC;
  program {
    TC(x, y) :- E(x, y).
    TC(x, z) :- TC(x, y), E(y, z).
  }
)";

void RunGovernedTC(benchmark::State& state, const ResourceLimits& limits) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomGraph(n, 2 * n, 11);
  for (auto _ : state) {
    PreparedRun run(kTC);
    for (auto [a, b] : edges) run.AddEdge("E", a, b);
    EvalOptions options;
    options.limits = limits;
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
}

void BM_Governor_IQL_DefaultLimits(benchmark::State& state) {
  RunGovernedTC(state, ResourceLimits{});
}
BENCHMARK(BM_Governor_IQL_DefaultLimits)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Governor_IQL_TightLimits(benchmark::State& state) {
  // Deadline + memory ceiling armed (so every CheckNow consults the clock
  // and the accountant) but generous enough to never trip.
  ResourceLimits limits;
  limits.deadline_seconds = 3600;
  limits.max_memory_bytes = uint64_t{1} << 40;
  RunGovernedTC(state, limits);
}
BENCHMARK(BM_Governor_IQL_TightLimits)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

datalog::Program DatalogTC(datalog::Database* db,
                           const std::vector<std::pair<int, int>>& edges) {
  using datalog::Term;
  auto e = db->AddRelation("e", 2);
  auto tc = db->AddRelation("tc", 2);
  IQL_CHECK(e.ok() && tc.ok());
  for (auto [a, b] : edges) {
    db->AddFact(*e, {db->InternConstant(a), db->InternConstant(b)});
  }
  datalog::Program program;
  program.rules.push_back({{*tc, {Term::Var(0), Term::Var(1)}},
                           {{*e, {Term::Var(0), Term::Var(1)}}},
                           {}});
  program.rules.push_back({{*tc, {Term::Var(0), Term::Var(2)}},
                           {{*tc, {Term::Var(0), Term::Var(1)}},
                            {*e, {Term::Var(1), Term::Var(2)}}},
                           {}});
  return program;
}

void RunDatalogTC(benchmark::State& state, bool governed) {
  int n = static_cast<int>(state.range(0));
  auto edges = RandomGraph(n, 2 * n, 11);
  for (auto _ : state) {
    datalog::Database db;
    datalog::Program program = DatalogTC(&db, edges);
    ResourceLimits limits;
    limits.deadline_seconds = 3600;
    limits.max_memory_bytes = uint64_t{1} << 40;
    Governor governor(limits);
    auto start = std::chrono::steady_clock::now();
    Status status = datalog::Evaluate(
        program, &db, datalog::EvalMode::kSemiNaiveIndexed, nullptr, 1,
        governed ? &governor : nullptr);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(status.ok()) << status;
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
}

void BM_Governor_Datalog_Ungoverned(benchmark::State& state) {
  RunDatalogTC(state, /*governed=*/false);
}
BENCHMARK(BM_Governor_Datalog_Ungoverned)
    ->RangeMultiplier(2)
    ->Range(256, 1024)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_Governor_Datalog_Governed(benchmark::State& state) {
  RunDatalogTC(state, /*governed=*/true);
}
BENCHMARK(BM_Governor_Datalog_Governed)
    ->RangeMultiplier(2)
    ->Range(256, 1024)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iqlkit::bench
