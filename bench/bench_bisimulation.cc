// Experiment E12 (§7): partition-refinement bisimulation over term graphs
// -- the engine behind psi's duplicate elimination (Prop 7.1.4) and pure-
// value equality. Sweeps graph size for (a) a uniform ring that collapses
// to one block and (b) a labeled ring that stays fully distinguished.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "vmodel/bisim.h"
#include "vmodel/encode.h"

namespace iqlkit::bench {
namespace {

TermGraph BuildRing(SymbolTable* syms, int n, bool labeled) {
  TermGraph g(syms);
  Symbol name = syms->Intern("name");
  Symbol succ = syms->Intern("succ");
  std::vector<RNodeId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(g.AddPlaceholder());
  for (int i = 0; i < n; ++i) {
    RNodeId label =
        labeled ? g.AddConst(std::to_string(i)) : g.AddConst("n");
    IQL_CHECK(g.FillTuple(nodes[i], {{name, label},
                                     {succ, nodes[(i + 1) % n]}})
                  .ok());
  }
  return g;
}

void BM_Bisimulation(benchmark::State& state, bool labeled) {
  int n = static_cast<int>(state.range(0));
  SymbolTable syms;
  TermGraph g = BuildRing(&syms, n, labeled);
  size_t blocks = 0;
  for (auto _ : state) {
    std::vector<uint32_t> b = BisimulationBlocks(g);
    blocks = std::set<uint32_t>(b.begin(), b.end()).size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["blocks"] = static_cast<double>(blocks);
  state.SetComplexityN(n);
}

void BM_Bisimulation_UniformRing(benchmark::State& state) {
  BM_Bisimulation(state, /*labeled=*/false);
}
BENCHMARK(BM_Bisimulation_UniformRing)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_Bisimulation_LabeledRing(benchmark::State& state) {
  BM_Bisimulation(state, /*labeled=*/true);
}
BENCHMARK(BM_Bisimulation_LabeledRing)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// End-to-end psi: objects -> canonical pure values.
void BM_PsiCanonicalization(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  auto schema = std::make_shared<Schema>(&u);
  TypePool& t = u.types();
  IQL_CHECK(schema
                ->DeclareClass("Node",
                               t.Tuple({{u.Intern("name"), t.Base()},
                                        {u.Intern("succ"),
                                         t.Set(t.ClassNamed("Node"))}}))
                .ok());
  Instance inst(schema.get(), &u);
  ValueStore& v = u.values();
  std::vector<Oid> oids;
  for (int i = 0; i < n; ++i) {
    auto o = inst.CreateOid("Node");
    IQL_CHECK(o.ok());
    oids.push_back(*o);
  }
  for (int i = 0; i < n; ++i) {
    IQL_CHECK(inst.SetOidValue(
                      oids[i],
                      v.Tuple({{u.Intern("name"), v.Const("n")},
                               {u.Intern("succ"),
                                v.Set({v.OfOid(oids[(i + 1) % n])})}}))
                  .ok());
  }
  size_t canonical = 0;
  for (auto _ : state) {
    auto vi = Psi(inst);
    IQL_CHECK(vi.ok()) << vi.status();
    canonical = vi->classes.at(u.Intern("Node")).size();
    benchmark::DoNotOptimize(vi);
  }
  state.counters["canonical_values"] = static_cast<double>(canonical);
  state.SetComplexityN(n);
}
BENCHMARK(BM_PsiCanonicalization)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace
}  // namespace iqlkit::bench
