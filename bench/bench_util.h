#ifndef IQLKIT_BENCH_BENCH_UTIL_H_
#define IQLKIT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <random>
#include <string_view>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "iql/eval.h"
#include "iql/parser.h"
#include "model/instance.h"
#include "model/universe.h"

namespace iqlkit::bench {

// Publishes the evaluator-internal counters of a run into the benchmark's
// counter set. Every bench binary emits machine-readable results with
// `--benchmark_format=json`; `bench/run_all.sh` drives all of them that
// way and merges the outputs (wall times, these counters, thread counts)
// into BENCH_RESULTS.json at the repository root.
inline void ExportMetrics(benchmark::State& state,
                          const EvalMetrics& metrics) {
  state.counters["rounds"] = static_cast<double>(metrics.rounds.size());
  state.counters["index_builds"] =
      static_cast<double>(metrics.index_builds);
  state.counters["index_probes"] =
      static_cast<double>(metrics.index_probes);
  state.counters["index_hits"] = static_cast<double>(metrics.index_hits);
  uint64_t derivations = 0;
  uint64_t scans = 0;
  uint64_t vm_instructions = 0;
  uint64_t vm_fused_dispatches = 0;
  for (const RuleMetrics& r : metrics.rules) {
    derivations += r.derivations;
    scans += r.index_scans;
    vm_instructions += r.vm_instructions;
    vm_fused_dispatches += r.vm_fused_dispatches;
  }
  state.counters["rule_derivations"] = static_cast<double>(derivations);
  // kIsRate divides by elapsed time, recording derivations per second.
  state.counters["derivations_per_sec"] = benchmark::Counter(
      static_cast<double>(derivations), benchmark::Counter::kIsRate);
  state.counters["extent_scans"] = static_cast<double>(scans);
  // Zero under the tree-walker; under kVm, the dispatch count whose
  // reduction is the IL optimizer's whole point (run_all.sh divides by
  // rule_derivations for instructions retired per emitted fact).
  state.counters["vm_instructions"] =
      static_cast<double>(vm_instructions);
  // Fused superinstructions dispatched (il_fuse runs only).
  // vm_instructions stays in constituent units either way, so the gap
  // between the two is the dispatch overhead fusion removed.
  state.counters["vm_fused_dispatches"] =
      static_cast<double>(vm_fused_dispatches);
  // "threads" would collide with google-benchmark's own field of that
  // name in the JSON output.
  state.counters["eval_threads"] = static_cast<double>(metrics.threads);
}

// Deterministic random digraph: `n` nodes, `m` edges (duplicates collapse).
inline std::vector<std::pair<int, int>> RandomGraph(int n, int m,
                                                    uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node(0, n - 1);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(m);
  for (int i = 0; i < m; ++i) edges.emplace_back(node(rng), node(rng));
  return edges;
}

// Parses a unit and loads edge facts into its input projection of a binary
// relation named `rel`.
struct PreparedRun {
  explicit PreparedRun(std::string_view source) {
    auto parsed = ParseUnit(&universe, source);
    IQL_CHECK(parsed.ok()) << parsed.status();
    unit = std::make_unique<ParsedUnit>(std::move(*parsed));
    auto in = unit->schema.Project(unit->input_names);
    IQL_CHECK(in.ok()) << in.status();
    input_schema = std::make_shared<const Schema>(std::move(*in));
    input = std::make_unique<Instance>(input_schema, &universe);
  }

  void AddEdge(std::string_view rel, int a, int b) {
    ValueStore& v = universe.values();
    ValueId t = v.Tuple({{PositionalAttr(&universe, 1), v.ConstInt(a)},
                         {PositionalAttr(&universe, 2), v.ConstInt(b)}});
    IQL_CHECK(input->AddToRelation(rel, t).ok());
  }

  void AddUnary(std::string_view rel, int a) {
    IQL_CHECK(
        input->AddToRelation(rel, universe.values().ConstInt(a)).ok());
  }

  Result<Instance> Run(const EvalOptions& options = {},
                       EvalStats* stats = nullptr) {
    return RunUnit(&universe, unit.get(), *input, options, stats);
  }

  Universe universe;
  std::unique_ptr<ParsedUnit> unit;
  std::shared_ptr<const Schema> input_schema;
  std::unique_ptr<Instance> input;
};

}  // namespace iqlkit::bench

#endif  // IQLKIT_BENCH_BENCH_UTIL_H_
