#!/usr/bin/env bash
# Runs every benchmark binary in JSON mode and merges the outputs into one
# BENCH_RESULTS.json at the repository root, so a single file records the
# numbers behind DESIGN.md's experiment table.
#
# Usage: bench/run_all.sh [build-dir] [min-time-seconds]
#
# Each google-benchmark binary is invoked with --benchmark_format=json;
# per-binary results land in <build-dir>/bench/*.json and are merged with
# host context (cores, date, build type) under "runs". Pass a larger
# min-time for publication-quality numbers; the default 0.05s keeps a full
# sweep under a few minutes.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MIN_TIME="${2:-0.05}"
OUT="BENCH_RESULTS.json"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found; build the project first" >&2
  exit 1
fi

benches=()
for bin in "$BUILD_DIR"/bench/bench_*; do
  [[ -x "$bin" && ! "$bin" == *.json ]] || continue
  benches+=("$bin")
done
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries under $BUILD_DIR/bench" >&2
  exit 1
fi

jsons=()
for bin in "${benches[@]}"; do
  name="$(basename "$bin")"
  json="$BUILD_DIR/bench/$name.json"
  echo "== $name"
  "$bin" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    > "$json"
  jsons+=("$json")
done

# Merge: {"context": {...host facts...}, "runs": {bench name: output}}.
jq -n \
  --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  --arg cores "$(nproc)" \
  --arg build_type "$(grep -m1 CMAKE_BUILD_TYPE "$BUILD_DIR/CMakeCache.txt" \
                      | cut -d= -f2)" \
  --arg min_time "$MIN_TIME" \
  '{context: {date: $date, cores: ($cores | tonumber),
              build_type: $build_type,
              min_time_seconds: ($min_time | tonumber)},
    runs: {}}' > "$OUT.tmp"
for json in "${jsons[@]}"; do
  name="$(basename "$json" .json)"
  jq --arg name "$name" --slurpfile run "$json" \
    '.runs[$name] = $run[0]' "$OUT.tmp" > "$OUT.tmp2"
  mv "$OUT.tmp2" "$OUT.tmp"
done
# Governor overhead: mean governed/ungoverned real-time ratio across the
# matched bench_governor datalog size points (the only with/without-polls
# pair on identical work). Recorded under .governor so regressions against
# the < 3% target show up in the merged file, not just in a CI log.
jq '
  (.runs.bench_governor.benchmarks // []) as $b
  | [ $b[] | select(.name | startswith("BM_Governor_Datalog_Governed/"))
      | {size: (.name | split("/")[1]), t: .real_time} ] as $gov
  | [ $b[] | select(.name | startswith("BM_Governor_Datalog_Ungoverned/"))
      | {size: (.name | split("/")[1]), t: .real_time} ] as $base
  | [ $gov[] as $g | $base[] | select(.size == $g.size)
      | ($g.t / .t) ] as $ratios
  | if ($ratios | length) > 0 then
      .governor = {overhead_ratio: (($ratios | add) / ($ratios | length)),
                   target_max_ratio: 1.03,
                   points: ($ratios | length)}
    else . end
' "$OUT.tmp" > "$OUT.tmp2"
mv "$OUT.tmp2" "$OUT.tmp"
# Scheduler overhead: mean Scheduled(1-worker)/Direct real-time ratio on
# matched bench_scheduler size points (identical parse+load+evaluate work,
# with vs without admission/governor/pool bookkeeping), plus the 16-query
# batch wall time per worker count. Recorded under .scheduler.
jq '
  (.runs.bench_scheduler.benchmarks // []) as $b
  | [ $b[] | select(.name | startswith("BM_Scheduler_Scheduled/"))
      | {size: (.name | split("/")[1]), t: .real_time} ] as $sched
  | [ $b[] | select(.name | startswith("BM_Scheduler_Direct/"))
      | {size: (.name | split("/")[1]), t: .real_time} ] as $direct
  | [ $sched[] as $s | $direct[] | select(.size == $s.size)
      | ($s.t / .t) ] as $ratios
  | [ $b[] | select(.name | startswith("BM_Scheduler_Throughput/"))
      | {workers: (.name | split("/")[1]), batch_ms: .real_time} ]
      as $throughput
  | if ($ratios | length) > 0 then
      .scheduler = {overhead_ratio: (($ratios | add) / ($ratios | length)),
                    target_max_ratio: 1.10,
                    points: ($ratios | length),
                    throughput: $throughput}
    else . end
' "$OUT.tmp" > "$OUT.tmp2"
mv "$OUT.tmp2" "$OUT.tmp"
# Register-VM engine: per-workload speedup of the flat-IL VM over the
# tree-walker on matched bench_vm series (identical program + input; the
# _TreeWalk/_Vm name pairs differ only in EvalOptions::engine, or in
# EvalMode kSemiNaiveIndexed vs kVm for the Datalog pair). Recorded under
# .vm so the VM-vs-tree-walk trajectory lives in the merged file.
jq '
  (.runs.bench_vm.benchmarks // []) as $b
  | [ $b[] | select(.name | contains("_Vm/"))
      | {key: (.name | sub("_Vm/"; "/")), t: .real_time} ] as $vm
  | [ $b[] | select(.name | contains("_TreeWalk/"))
      | {key: (.name | sub("_TreeWalk/"; "/")), t: .real_time} ] as $tree
  | [ $vm[] as $v | $tree[] | select(.key == $v.key)
      | {workload: $v.key, speedup: (.t / $v.t)} ] as $pairs
  | if ($pairs | length) > 0 then
      .vm = {mean_speedup: (([$pairs[].speedup] | add) / ($pairs | length)),
             points: ($pairs | length),
             pairs: $pairs}
    else . end
' "$OUT.tmp" > "$OUT.tmp2"
mv "$OUT.tmp2" "$OUT.tmp"
# IL optimizer: matched _Vm/_VmOpt bench_vm pairs (identical program,
# input, and engine; the only difference is EvalOptions::il_opt). Records
# the wall-clock speedup and, from the vm_instructions counter, the VM
# instructions retired per emitted fact with the optimizer off and on --
# the dispatch reduction is the optimizer's direct effect, visible even
# when wall time is noise-bound. Recorded under .vm_opt.
jq '
  (.runs.bench_vm.benchmarks // []) as $b
  | [ $b[] | select(.name | contains("_VmOpt/"))
      | {key: (.name | sub("_VmOpt/"; "/")), t: .real_time,
         ipe: (if (.rule_derivations // 0) > 0
               then (.vm_instructions / .rule_derivations) else null end)} ]
      as $opt
  | [ $b[] | select((.name | contains("_Vm/")) and
                    (.name | contains("_VmOpt/") | not))
      | {key: (.name | sub("_Vm/"; "/")), t: .real_time,
         ipe: (if (.rule_derivations // 0) > 0
               then (.vm_instructions / .rule_derivations) else null end)} ]
      as $plain
  | [ $opt[] as $o | $plain[] | select(.key == $o.key)
      | {workload: $o.key, speedup: (.t / $o.t),
         instructions_per_emit: .ipe,
         instructions_per_emit_opt: $o.ipe} ] as $pairs
  | if ($pairs | length) > 0 then
      .vm_opt = {mean_speedup:
                   (([$pairs[].speedup] | add) / ($pairs | length)),
                 points: ($pairs | length),
                 pairs: $pairs}
    else . end
' "$OUT.tmp" > "$OUT.tmp2"
mv "$OUT.tmp2" "$OUT.tmp"
# Fused execution tier: matched _VmFused bench_vm series (threaded
# dispatch + EvalOptions::il_fuse on top of il_opt) against the best
# non-fused baseline -- _VmOpt where that series exists, plain _Vm
# otherwise (powerset, Datalog). Also records fused superinstructions
# dispatched and constituent instructions per emitted fact, so the
# dispatch reduction is visible even when wall time is noise-bound.
# Recorded under .vm_fused.
jq '
  (.runs.bench_vm.benchmarks // []) as $b
  | [ $b[] | select(.name | contains("_VmFused/"))
      | {key: (.name | sub("_VmFused/"; "/")), t: .real_time,
         fused: (.vm_fused_dispatches // 0),
         ipe: (if (.rule_derivations // 0) > 0
               then (.vm_instructions / .rule_derivations) else null end)} ]
      as $fused
  | [ $b[] | select(.name | contains("_VmOpt/"))
      | {key: (.name | sub("_VmOpt/"; "/")), t: .real_time} ] as $opt
  | [ $b[] | select((.name | contains("_Vm/")) and
                    (.name | contains("_VmOpt/") | not))
      | {key: (.name | sub("_Vm/"; "/")), t: .real_time} ] as $plain
  | [ $fused[] as $f
      | [ $opt[] | select(.key == $f.key) ] as $o
      | (($o + [$plain[] | select(.key == $f.key)]) | first) as $base
      | select($base != null)
      | {workload: $f.key,
         baseline: (if ($o | length) > 0 then "vm_opt" else "vm" end),
         speedup: ($base.t / $f.t),
         fused_dispatches: $f.fused,
         instructions_per_emit: $f.ipe} ] as $pairs
  | if ($pairs | length) > 0 then
      .vm_fused = {mean_speedup:
                     (([$pairs[].speedup] | add) / ($pairs | length)),
                   points: ($pairs | length),
                   pairs: $pairs}
    else . end
' "$OUT.tmp" > "$OUT.tmp2"
mv "$OUT.tmp2" "$OUT.tmp"
# Durability overhead: mean Durable(no-fsync)/Plain real-time ratio on
# matched bench_durability size points (identical serial TC fixpoint; the
# durable run adds an input snapshot, one checksummed WAL frame per
# committed step, and a final snapshot + DONE marker). The fsync series is
# reported in the raw run but kept out of the ratio -- it measures the
# disk, not the encoder. Mean Recover wall time rides along so recovery
# cost is tracked in the same entry. Recorded under .durability.
jq '
  (.runs.bench_durability.benchmarks // []) as $b
  | [ $b[] | select(.name | startswith("BM_Durability_Durable/"))
      | {size: (.name | split("/")[1]), t: .real_time} ] as $durable
  | [ $b[] | select(.name | startswith("BM_Durability_Plain/"))
      | {size: (.name | split("/")[1]), t: .real_time} ] as $plain
  | [ $durable[] as $d | $plain[] | select(.size == $d.size)
      | ($d.t / .t) ] as $ratios
  | [ $b[] | select(.name | startswith("BM_Durability_Recover/"))
      | {size: (.name | split("/")[1]), recover_ms: (.real_time / 1e6),
         wal_frames: (.wal_frames // 0)} ] as $recover
  | if ($ratios | length) > 0 then
      .durability = {overhead_ratio: (($ratios | add) / ($ratios | length)),
                     target_max_ratio: 1.5,
                     points: ($ratios | length),
                     recover: $recover}
    else . end
' "$OUT.tmp" > "$OUT.tmp2"
mv "$OUT.tmp2" "$OUT.tmp"
# Serving tier: sustained completed-queries-per-second from the simulated
# serve loop (per client count), and the wall-clock QUERY -> terminal-PAGE
# latency of a hand-pumped wire session (p50/p99 sampled inside
# bench_serve and exported as counters). Recorded under .serve.
jq '
  (.runs.bench_serve.benchmarks // []) as $b
  | [ $b[] | select(.name | startswith("BM_Serve_Qps/"))
      | {clients: (.name | split("/")[1] | split(":")[0]),
         qps: (.qps // 0)} ] as $qps
  | [ $b[] | select(.name | startswith("BM_Serve_FirstPage/"))
      | {size: (.name | split("/")[1] | split(":")[0]),
         p50_us: (.p50_us // 0), p99_us: (.p99_us // 0)} ] as $lat
  | if ($qps | length) > 0 then
      .serve = {qps: $qps,
                peak_qps: ([$qps[].qps] | max),
                first_page: $lat}
    else . end
' "$OUT.tmp" > "$OUT.tmp2"
mv "$OUT.tmp2" "$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "wrote $OUT ($(jq '.runs | length' "$OUT") benchmark binaries)"
if jq -e '.governor' "$OUT" > /dev/null; then
  echo "governor overhead ratio: $(jq '.governor.overhead_ratio' "$OUT")" \
       "(target <= $(jq '.governor.target_max_ratio' "$OUT"))"
fi
if jq -e '.scheduler' "$OUT" > /dev/null; then
  echo "scheduler overhead ratio: $(jq '.scheduler.overhead_ratio' "$OUT")" \
       "(target <= $(jq '.scheduler.target_max_ratio' "$OUT"))"
fi
if jq -e '.vm' "$OUT" > /dev/null; then
  echo "vm mean speedup over tree-walker: $(jq '.vm.mean_speedup' "$OUT")" \
       "($(jq '.vm.points' "$OUT") matched points)"
fi
if jq -e '.vm_opt' "$OUT" > /dev/null; then
  echo "il_opt mean speedup over plain vm:" \
       "$(jq '.vm_opt.mean_speedup' "$OUT")" \
       "($(jq '.vm_opt.points' "$OUT") matched points)"
fi
if jq -e '.vm_fused' "$OUT" > /dev/null; then
  echo "fused tier mean speedup over non-fused baseline:" \
       "$(jq '.vm_fused.mean_speedup' "$OUT")" \
       "($(jq '.vm_fused.points' "$OUT") matched points)"
fi
if jq -e '.durability' "$OUT" > /dev/null; then
  echo "durability overhead ratio: $(jq '.durability.overhead_ratio' "$OUT")" \
       "(target <= $(jq '.durability.target_max_ratio' "$OUT"))"
fi
if jq -e '.serve' "$OUT" > /dev/null; then
  echo "serve peak sustained qps: $(jq '.serve.peak_qps' "$OUT");" \
       "first-page p50/p99 us:" \
       "$(jq -c '[.serve.first_page[] | {size, p50_us, p99_us}]' "$OUT")"
fi
