// The Prop 4.2.2 relational flattening as a serialization path:
// encode/decode throughput vs instance size. Hash-consing makes the
// encoding linear in the value DAG, not the unfolded trees.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "transform/isomorphism.h"
#include "transform/relational.h"

namespace iqlkit::bench {
namespace {

struct Fixture {
  explicit Fixture(Universe* u) : universe(u) {
    TypePool& t = u->types();
    schema = std::make_shared<Schema>(u);
    IQL_CHECK(schema
                  ->DeclareClass("Node",
                                 t.Tuple({{u->Intern("name"), t.Base()},
                                          {u->Intern("succ"),
                                           t.Set(t.ClassNamed("Node"))}}))
                  .ok());
    auto v = RelationalVocabulary(u);
    IQL_CHECK(v.ok());
    vocab = std::make_shared<const Schema>(std::move(*v));
  }

  Instance Ring(int n) {
    Instance inst(schema.get(), universe);
    ValueStore& v = universe->values();
    std::vector<Oid> oids;
    for (int i = 0; i < n; ++i) {
      auto o = inst.CreateOid("Node");
      IQL_CHECK(o.ok());
      oids.push_back(*o);
    }
    for (int i = 0; i < n; ++i) {
      IQL_CHECK(inst.SetOidValue(
                        oids[i],
                        v.Tuple({{universe->Intern("name"), v.ConstInt(i)},
                                 {universe->Intern("succ"),
                                  v.Set({v.OfOid(oids[(i + 1) % n])})}}))
                    .ok());
    }
    return inst;
  }

  Universe* universe;
  std::shared_ptr<Schema> schema;
  std::shared_ptr<const Schema> vocab;
};

void BM_RelationalEncode(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  Fixture f(&u);
  Instance inst = f.Ring(n);
  for (auto _ : state) {
    auto flat = EncodeRelational(inst, f.vocab);
    IQL_CHECK(flat.ok());
    benchmark::DoNotOptimize(flat);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RelationalEncode)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_RelationalRoundTrip(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  Fixture f(&u);
  Instance inst = f.Ring(n);
  for (auto _ : state) {
    auto flat = EncodeRelational(inst, f.vocab);
    IQL_CHECK(flat.ok());
    auto back = DecodeRelational(*flat, f.schema);
    IQL_CHECK(back.ok());
    benchmark::DoNotOptimize(back);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RelationalRoundTrip)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace
}  // namespace iqlkit::bench
