// The Prop 4.2.2 relational flattening as a serialization path:
// encode/decode throughput vs instance size. Hash-consing makes the
// encoding linear in the value DAG, not the unfolded trees.

#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "transform/isomorphism.h"
#include "transform/relational.h"

namespace iqlkit::bench {
namespace {

struct Fixture {
  explicit Fixture(Universe* u) : universe(u) {
    TypePool& t = u->types();
    schema = std::make_shared<Schema>(u);
    IQL_CHECK(schema
                  ->DeclareClass("Node",
                                 t.Tuple({{u->Intern("name"), t.Base()},
                                          {u->Intern("succ"),
                                           t.Set(t.ClassNamed("Node"))}}))
                  .ok());
    auto v = RelationalVocabulary(u);
    IQL_CHECK(v.ok());
    vocab = std::make_shared<const Schema>(std::move(*v));
  }

  Instance Ring(int n) {
    Instance inst(schema.get(), universe);
    ValueStore& v = universe->values();
    std::vector<Oid> oids;
    for (int i = 0; i < n; ++i) {
      auto o = inst.CreateOid("Node");
      IQL_CHECK(o.ok());
      oids.push_back(*o);
    }
    for (int i = 0; i < n; ++i) {
      IQL_CHECK(inst.SetOidValue(
                        oids[i],
                        v.Tuple({{universe->Intern("name"), v.ConstInt(i)},
                                 {universe->Intern("succ"),
                                  v.Set({v.OfOid(oids[(i + 1) % n])})}}))
                    .ok());
    }
    return inst;
  }

  Universe* universe;
  std::shared_ptr<Schema> schema;
  std::shared_ptr<const Schema> vocab;
};

void BM_RelationalEncode(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  Fixture f(&u);
  Instance inst = f.Ring(n);
  for (auto _ : state) {
    auto flat = EncodeRelational(inst, f.vocab);
    IQL_CHECK(flat.ok());
    benchmark::DoNotOptimize(flat);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RelationalEncode)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_RelationalRoundTrip(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  Fixture f(&u);
  Instance inst = f.Ring(n);
  for (auto _ : state) {
    auto flat = EncodeRelational(inst, f.vocab);
    IQL_CHECK(flat.ok());
    auto back = DecodeRelational(*flat, f.schema);
    IQL_CHECK(back.ok());
    benchmark::DoNotOptimize(back);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RelationalRoundTrip)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// Querying the flattening: Prop 4.2.2's point is that the encoding IS a
// relational database, so reachability in the original object graph
// becomes a pointer chase over the vocabulary relations plus a transitive
// closure. Four-way joins and a recursive rule make this the natural
// harness for the indexed generator path.
constexpr std::string_view kReachOverEncoding = R"(
  schema {
    relation NuValue    : [D, D];
    relation TupleField : [D, D, D];
    relation SetElem    : [D, D];
    relation RefNode    : [D, D];
    relation Succ  : [D, D];
    relation Reach : [D, D];
  }
  input NuValue, TupleField, SetElem, RefNode;
  output Reach;
  program {
    Succ(o, p) :- NuValue(o, t), TupleField(t, a, s), SetElem(s, r),
                  RefNode(r, p).
    ;
    Reach(x, y) :- Succ(x, y).
    Reach(x, z) :- Reach(x, y), Succ(y, z).
  }
)";

void AddFlat(PreparedRun& run, std::string_view rel,
             const std::vector<int>& t) {
  ValueStore& v = run.universe.values();
  std::vector<std::pair<Symbol, ValueId>> fields;
  for (size_t i = 0; i < t.size(); ++i) {
    fields.emplace_back(
        PositionalAttr(&run.universe, static_cast<int>(i) + 1),
        v.ConstInt(t[i]));
  }
  IQL_CHECK(run.input->AddToRelation(rel, v.Tuple(std::move(fields))).ok());
}

void BM_RelationalReachability(benchmark::State& state, bool indexed) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  Fixture f(&u);
  Instance inst = f.Ring(n);
  auto flat = EncodeRelational(inst, f.vocab);
  IQL_CHECK(flat.ok());
  // Dense-number every node the encoding mentions; hash-consing keeps the
  // numbering consistent across the four relations.
  std::unordered_map<ValueId, int> dense;
  static const char* kRels[] = {"NuValue", "TupleField", "SetElem",
                                "RefNode"};
  std::vector<std::vector<std::vector<int>>> facts(4);
  for (int r = 0; r < 4; ++r) {
    for (ValueId fact : flat->Relation(u.Intern(kRels[r]))) {
      std::vector<int> t;
      for (const auto& [attr, child] : u.values().node(fact).fields) {
        t.push_back(
            dense.emplace(child, static_cast<int>(dense.size()))
                .first->second);
      }
      facts[r].push_back(std::move(t));
    }
  }
  size_t reach = 0;
  EvalMetrics metrics;
  for (auto _ : state) {
    metrics = EvalMetrics{};
    PreparedRun run(kReachOverEncoding);
    for (int r = 0; r < 4; ++r) {
      for (const auto& t : facts[r]) AddFlat(run, kRels[r], t);
    }
    EvalOptions options;
    options.enable_indexing = indexed;
    options.enable_scheduling = indexed;
    options.metrics = &metrics;
    auto start = std::chrono::steady_clock::now();
    auto out = run.Run(options);
    auto end = std::chrono::steady_clock::now();
    IQL_CHECK(out.ok()) << out.status();
    reach = out->Relation(run.universe.Intern("Reach")).size();
    IQL_CHECK(reach == static_cast<size_t>(n) * n);  // ring closure
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.counters["reach_facts"] = static_cast<double>(reach);
  ExportMetrics(state, metrics);
  state.SetComplexityN(n);
}

void BM_RelationalReachability_Plain(benchmark::State& state) {
  BM_RelationalReachability(state, /*indexed=*/false);
}
BENCHMARK(BM_RelationalReachability_Plain)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_RelationalReachability_Indexed(benchmark::State& state) {
  BM_RelationalReachability(state, /*indexed=*/true);
}
BENCHMARK(BM_RelationalReachability_Indexed)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace
}  // namespace iqlkit::bench
