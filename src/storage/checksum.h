#ifndef IQLKIT_STORAGE_CHECKSUM_H_
#define IQLKIT_STORAGE_CHECKSUM_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace iqlkit {
namespace storage {

// CRC-32 (the reflected 0xEDB88320 polynomial, as in zlib/gzip) over a byte
// range. Every on-disk payload — snapshot body and each WAL frame — carries
// its CRC so recovery can tell a torn or bit-rotted tail from a complete
// record without trusting lengths alone.
inline uint32_t Crc32(std::string_view data, uint32_t crc = 0) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  for (unsigned char b : data) {
    crc = kTable[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace storage
}  // namespace iqlkit

#endif  // IQLKIT_STORAGE_CHECKSUM_H_
