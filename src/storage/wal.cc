#include "storage/wal.h"

#include <unistd.h>

#include <cstring>

#include "base/logging.h"
#include "storage/bytes.h"
#include "storage/checksum.h"
#include "storage/codec.h"

namespace iqlkit {
namespace storage {

namespace {

constexpr char kMagic[4] = {'I', 'Q', 'W', '1'};
constexpr size_t kHeaderBytes = 16;

Status ApplyOp(Instance* inst, FactOp::Kind kind, Symbol name, Oid oid,
               ValueId value, std::string_view text) {
  switch (kind) {
    case FactOp::Kind::kRelationAdd:
      return inst->AddToRelation(name, value);
    case FactOp::Kind::kRelationRemove:
      inst->RemoveFromRelation(name, value);
      return Status::Ok();
    case FactOp::Kind::kOidAdd:
      return inst->AddOid(name, oid);
    case FactOp::Kind::kOidValue:
      return inst->SetOidValue(oid, value);
    case FactOp::Kind::kSetAdd:
      return inst->AddToSetOid(oid, value);
    case FactOp::Kind::kSetRemove:
      inst->RemoveFromSetOid(oid, value);
      return Status::Ok();
    case FactOp::Kind::kOidValueClear:
      inst->ClearOidValue(oid);
      return Status::Ok();
    case FactOp::Kind::kOidDelete:
      inst->DeleteOidCascade(oid);
      return Status::Ok();
    case FactOp::Kind::kOidName:
      inst->NameOid(oid, text);
      return Status::Ok();
  }
  return InvalidArgumentError("wal frame: unknown op kind");
}

}  // namespace

std::string EncodeWalHeader(uint64_t schema_fingerprint) {
  ByteWriter w;
  w.Bytes(std::string_view(kMagic, 4));
  w.U8(kWalVersion);
  w.U8(0);
  w.U16(0);
  w.U64(schema_fingerprint);
  return w.Take();
}

std::string EncodeWalFrame(const StepCommit& commit) {
  IQL_CHECK(commit.instance != nullptr && commit.ops != nullptr)
      << "EncodeWalFrame needs the post-step instance and its journal";
  const ValueStore& values = commit.instance->universe()->values();
  TableBuilder tables(&values, /*oid_map=*/nullptr);
  ByteWriter ops;
  ops.U32(static_cast<uint32_t>(commit.ops->size()));
  for (const FactOp& op : *commit.ops) {
    ops.U8(static_cast<uint8_t>(op.kind));
    ops.U32(op.name == kInvalidSymbol ? kNoRef : tables.SymRef(op.name));
    ops.U64(op.oid.raw);
    ops.U32(op.value == kInvalidValue ? kNoRef : tables.ValueRef(op.value));
    ops.Str(op.text);
  }
  ByteWriter payload;
  payload.U32(static_cast<uint32_t>(commit.stage));
  payload.U64(commit.step);
  payload.U64(commit.next_oid_raw);
  tables.EmitSymbols(&payload);
  tables.EmitValues(&payload);
  payload.Bytes(ops.bytes());

  ByteWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload.bytes()));
  frame.Bytes(payload.bytes());
  return frame.Take();
}

Result<WalRecovery> ReplayWal(std::string_view bytes,
                              uint64_t expected_fingerprint,
                              Instance* instance) {
  if (bytes.size() < kHeaderBytes) {
    return InvalidArgumentError("wal header truncated");
  }
  ByteReader header(bytes.substr(0, kHeaderBytes));
  char magic[4];
  for (char& c : magic) c = static_cast<char>(header.U8());
  if (std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    return InvalidArgumentError("not an iqlkit wal (bad magic)");
  }
  uint8_t version = header.U8();
  if (version != kWalVersion) {
    return InvalidArgumentError("unsupported wal format version " +
                                std::to_string(version));
  }
  header.U8();
  header.U16();
  uint64_t fingerprint = header.U64();
  if (fingerprint != expected_fingerprint) {
    return FailedPreconditionError(
        "wal was written under a different schema (fingerprint mismatch)");
  }

  WalRecovery out;
  out.valid_bytes = kHeaderBytes;
  Universe* universe = instance->universe();
  size_t pos = kHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) break;  // torn length/crc prefix
    uint32_t len, crc;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (bytes.size() - pos - 8 < len) break;  // torn payload
    std::string_view payload = bytes.substr(pos + 8, len);
    if (Crc32(payload) != crc) break;  // corrupt tail
    ByteReader r(payload);
    uint32_t stage = r.U32();
    uint64_t step = r.U64();
    uint64_t next_oid = r.U64();
    TableReader tables;
    if (!r.ok() || !tables.Read(&r, universe)) {
      return InvalidArgumentError("wal frame " +
                                  std::to_string(out.frames_replayed) +
                                  " is malformed despite a valid checksum");
    }
    uint32_t nops = r.U32();
    if (!r.ok() || nops > r.remaining()) {
      return InvalidArgumentError("wal frame op count out of range");
    }
    for (uint32_t i = 0; i < nops; ++i) {
      uint8_t kind = r.U8();
      uint32_t name = r.U32();
      uint64_t oid = r.U64();
      uint32_t value = r.U32();
      std::string_view text = r.Str();
      if (!r.ok() || kind > static_cast<uint8_t>(FactOp::Kind::kOidName) ||
          (name != kNoRef && !tables.SymOk(name)) ||
          (value != kNoRef && !tables.ValueOk(value))) {
        return InvalidArgumentError("wal frame op is malformed");
      }
      IQL_RETURN_IF_ERROR(ApplyOp(
          instance, static_cast<FactOp::Kind>(kind),
          name == kNoRef ? kInvalidSymbol : tables.Sym(name), Oid{oid},
          value == kNoRef ? kInvalidValue : tables.Value(value), text));
    }
    if (!r.AtEnd()) {
      return InvalidArgumentError("wal frame has trailing bytes");
    }
    pos += 8 + len;
    out.valid_bytes = pos;
    ++out.frames_replayed;
    out.last_stage = stage;
    out.last_step = step;
    out.next_oid_raw = next_oid;
    universe->AdvanceOidCounter(next_oid);
  }
  out.tail_truncated = out.valid_bytes < bytes.size();
  return out;
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return UnavailableError("truncate failed for '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace iqlkit
