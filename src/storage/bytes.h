#ifndef IQLKIT_STORAGE_BYTES_H_
#define IQLKIT_STORAGE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace iqlkit {
namespace storage {

// Little-endian byte emitter for the on-disk formats. Fixed-width encodings
// (no varints) keep the format trivially seekable and the golden images
// stable; compactness comes from the file-local symbol/value tables, not
// from integer packing.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void Bytes(std::string_view s) { out_.append(s.data(), s.size()); }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  // The build targets little-endian hosts only (x86-64 / aarch64); a
  // byte-swapping port would localize here.
  void Raw(const void* p, size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string out_;
};

// Bounds-checked little-endian reader. Overruns latch ok() to false and
// yield zeros, so decoders can parse straight-line and check once per
// record; counts must still be sanity-capped against remaining() before
// reserving memory.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : data_(bytes) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  uint16_t U16() {
    uint16_t v = 0;
    Raw(&v, 2);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  std::string_view Str() {
    uint32_t n = U32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  void Raw(void* p, size_t n) {
    if (n > remaining()) {
      ok_ = false;
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace storage
}  // namespace iqlkit

#endif  // IQLKIT_STORAGE_BYTES_H_
