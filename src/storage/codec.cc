#include "storage/codec.h"

#include <algorithm>
#include <numeric>

namespace iqlkit {
namespace storage {

namespace {

int CompareStrings(std::string_view a, std::string_view b) {
  return a < b ? -1 : a > b ? 1 : 0;
}

// Tuple fields sorted by attribute *name* (the store keeps them sorted by
// symbol id, which is an interning-order artifact).
std::vector<size_t> FieldOrderByName(const ValueStore& store,
                                     const ValueNode& n) {
  const SymbolTable& symbols = *store.symbols();
  std::vector<size_t> order(n.fields.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return symbols.name(n.fields[a].first) < symbols.name(n.fields[b].first);
  });
  return order;
}

}  // namespace

int CompareValuesByName(const ValueStore& store, ValueId a, ValueId b) {
  if (a == b) return 0;
  const SymbolTable& symbols = *store.symbols();
  const ValueNode& na = store.node(a);
  const ValueNode& nb = store.node(b);
  if (na.kind != nb.kind) {
    return static_cast<int>(na.kind) < static_cast<int>(nb.kind) ? -1 : 1;
  }
  switch (na.kind) {
    case ValueKind::kConst:
      return CompareStrings(symbols.name(na.atom), symbols.name(nb.atom));
    case ValueKind::kOid:
      return na.oid.raw < nb.oid.raw ? -1 : na.oid.raw > nb.oid.raw ? 1 : 0;
    case ValueKind::kTuple: {
      std::vector<size_t> oa = FieldOrderByName(store, na);
      std::vector<size_t> ob = FieldOrderByName(store, nb);
      size_t k = std::min(oa.size(), ob.size());
      for (size_t i = 0; i < k; ++i) {
        const auto& fa = na.fields[oa[i]];
        const auto& fb = nb.fields[ob[i]];
        int c = CompareStrings(symbols.name(fa.first), symbols.name(fb.first));
        if (c != 0) return c;
        c = CompareValuesByName(store, fa.second, fb.second);
        if (c != 0) return c;
      }
      return oa.size() < ob.size() ? -1 : oa.size() > ob.size() ? 1 : 0;
    }
    case ValueKind::kSet: {
      // Canonical set order already sorts elements structurally; re-sorting
      // by name keeps the comparison interning-order independent.
      std::vector<ValueId> ea = na.elems;
      std::vector<ValueId> eb = nb.elems;
      auto by_name = [&](ValueId x, ValueId y) {
        return CompareValuesByName(store, x, y) < 0;
      };
      std::sort(ea.begin(), ea.end(), by_name);
      std::sort(eb.begin(), eb.end(), by_name);
      size_t k = std::min(ea.size(), eb.size());
      for (size_t i = 0; i < k; ++i) {
        int c = CompareValuesByName(store, ea[i], eb[i]);
        if (c != 0) return c;
      }
      return ea.size() < eb.size() ? -1 : ea.size() > eb.size() ? 1 : 0;
    }
  }
  return 0;
}

uint32_t TableBuilder::SymRef(Symbol s) {
  auto it = sym_index_.find(s);
  if (it != sym_index_.end()) return it->second;
  uint32_t ref = static_cast<uint32_t>(syms_.size());
  sym_index_.emplace(s, ref);
  syms_.push_back(s);
  return ref;
}

uint64_t TableBuilder::MapOid(Oid o) const {
  if (oid_map_ == nullptr) return o.raw;
  auto it = oid_map_->find(o.raw);
  return it == oid_map_->end() ? o.raw : it->second;
}

uint32_t TableBuilder::ValueRef(ValueId v) {
  auto it = val_index_.find(v);
  if (it != val_index_.end()) return it->second;
  const ValueNode& n = store_->node(v);
  ByteWriter w;
  w.U8(static_cast<uint8_t>(n.kind));
  switch (n.kind) {
    case ValueKind::kConst:
      w.U32(SymRef(n.atom));
      break;
    case ValueKind::kOid:
      w.U64(MapOid(n.oid));
      break;
    case ValueKind::kTuple: {
      w.U32(static_cast<uint32_t>(n.fields.size()));
      for (size_t i : FieldOrderByName(*store_, n)) {
        // Children recurse before this node's ref is assigned, keeping the
        // table in children-first order.
        uint32_t attr = SymRef(n.fields[i].first);
        uint32_t child = ValueRef(n.fields[i].second);
        w.U32(attr);
        w.U32(child);
      }
      break;
    }
    case ValueKind::kSet: {
      std::vector<ValueId> elems = n.elems;
      std::sort(elems.begin(), elems.end(), [&](ValueId a, ValueId b) {
        return CompareValuesByName(*store_, a, b) < 0;
      });
      w.U32(static_cast<uint32_t>(elems.size()));
      for (ValueId e : elems) w.U32(ValueRef(e));
      break;
    }
  }
  uint32_t ref = static_cast<uint32_t>(nodes_.size());
  val_index_.emplace(v, ref);
  nodes_.push_back(w.Take());
  return ref;
}

void TableBuilder::EmitSymbols(ByteWriter* w) const {
  w->U32(static_cast<uint32_t>(syms_.size()));
  for (Symbol s : syms_) w->Str(store_->symbols()->name(s));
}

void TableBuilder::EmitValues(ByteWriter* w) const {
  w->U32(static_cast<uint32_t>(nodes_.size()));
  for (const std::string& n : nodes_) w->Bytes(n);
}

bool TableReader::Read(ByteReader* r, Universe* universe) {
  uint32_t nsyms = r->U32();
  if (!r->ok() || nsyms > r->remaining() / 4) return false;
  syms_.reserve(nsyms);
  for (uint32_t i = 0; i < nsyms; ++i) {
    std::string_view s = r->Str();
    if (!r->ok()) return false;
    syms_.push_back(universe->Intern(s));
  }
  uint32_t nvals = r->U32();
  if (!r->ok() || nvals > r->remaining()) return false;
  vals_.reserve(nvals);
  ValueStore& values = universe->values();
  for (uint32_t i = 0; i < nvals; ++i) {
    uint8_t kind = r->U8();
    switch (static_cast<ValueKind>(kind)) {
      case ValueKind::kConst: {
        uint32_t s = r->U32();
        if (!r->ok() || !SymOk(s)) return false;
        vals_.push_back(values.ConstSymbol(Sym(s)));
        break;
      }
      case ValueKind::kOid: {
        uint64_t raw = r->U64();
        if (!r->ok()) return false;
        vals_.push_back(values.OfOid(Oid{raw}));
        break;
      }
      case ValueKind::kTuple: {
        uint32_t nfields = r->U32();
        if (!r->ok() || nfields > r->remaining() / 8) return false;
        std::vector<std::pair<Symbol, ValueId>> fields;
        fields.reserve(nfields);
        for (uint32_t f = 0; f < nfields; ++f) {
          uint32_t attr = r->U32();
          uint32_t child = r->U32();
          if (!r->ok() || !SymOk(attr) || !ValueOk(child)) return false;
          fields.emplace_back(Sym(attr), Value(child));
        }
        vals_.push_back(values.Tuple(std::move(fields)));
        break;
      }
      case ValueKind::kSet: {
        uint32_t nelems = r->U32();
        if (!r->ok() || nelems > r->remaining() / 4) return false;
        std::vector<ValueId> elems;
        elems.reserve(nelems);
        for (uint32_t e = 0; e < nelems; ++e) {
          uint32_t child = r->U32();
          if (!r->ok() || !ValueOk(child)) return false;
          elems.push_back(Value(child));
        }
        vals_.push_back(values.Set(std::move(elems)));
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

}  // namespace storage
}  // namespace iqlkit
