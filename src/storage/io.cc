#include "storage/io.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "base/fault_injection.h"

namespace iqlkit {
namespace storage {

namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  return UnavailableError(what + " '" + path + "': " + ::strerror(errno));
}

// Deterministic failure-mode selector: the n-th injected storage fault
// (process-wide) cycles through the three modes, so a seeded soak run hits
// all of them in a reproducible order.
enum class StorageFaultMode { kShortWrite, kFsyncFail, kLostRename };

bool InjectStorageFault(StorageFaultMode* mode) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.ShouldFail(FaultSite::kStorage)) return false;
  uint64_t n = injector.injected(FaultSite::kStorage);
  switch (n % 3) {
    case 1:
      *mode = StorageFaultMode::kShortWrite;
      break;
    case 2:
      *mode = StorageFaultMode::kFsyncFail;
      break;
    default:
      *mode = StorageFaultMode::kLostRename;
      break;
  }
  return true;
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write failed on", path);
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status FsyncDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("open directory", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoError("fsync directory", dir);
  return Status::Ok();
}

}  // namespace

Status EnsureDir(const std::string& path) {
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    prefix = path.substr(0, slash);
    pos = slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return ErrnoError("mkdir failed for", prefix);
    }
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return UnavailableError("'" + path + "' is not a directory");
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoError("unlink failed for", path);
  }
  return Status::Ok();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return NotFoundError("no such file: '" + path + "'");
    return ErrnoError("open failed for", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      Status s = ErrnoError("read failed on", path);
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       bool fsync) {
  StorageFaultMode mode;
  bool inject = InjectStorageFault(&mode);
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return ErrnoError("open failed for", tmp);
  size_t n = bytes.size();
  if (inject && mode == StorageFaultMode::kShortWrite) n /= 2;
  Status s = WriteAll(fd, bytes.data(), n, tmp);
  if (s.ok() && inject && mode == StorageFaultMode::kShortWrite) {
    s = UnavailableError("injected short write to '" + tmp + "'");
  }
  if (s.ok() && fsync && ::fsync(fd) != 0) s = ErrnoError("fsync failed on", tmp);
  if (s.ok() && inject && mode == StorageFaultMode::kFsyncFail) {
    s = UnavailableError("injected fsync failure on '" + tmp + "'");
  }
  ::close(fd);
  if (!s.ok()) return s;
  if (inject && mode == StorageFaultMode::kLostRename) {
    // The crash-between-write-and-rename window: the tmp file is complete
    // and durable but the publish never happens.
    return UnavailableError("injected crash before rename of '" + tmp + "'");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoError("rename failed for", tmp);
  }
  if (fsync) IQL_RETURN_IF_ERROR(FsyncDirOf(path));
  return Status::Ok();
}

AppendLog& AppendLog::operator=(AppendLog&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<AppendLog> AppendLog::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
  if (fd < 0) return ErrnoError("open failed for", path);
  return AppendLog(fd);
}

Status AppendLog::Append(std::string_view bytes, bool fsync) {
  if (fd_ < 0) return UnavailableError("append log is closed");
  StorageFaultMode mode;
  bool inject = InjectStorageFault(&mode);
  size_t n = bytes.size();
  // kLostRename has no rename to lose on an append path; treat it as a
  // crash immediately after the buffered write, i.e. nothing made it to
  // the file — the frame is simply reported unwritten.
  if (inject && mode == StorageFaultMode::kLostRename) {
    return UnavailableError("injected crash before append");
  }
  if (inject && mode == StorageFaultMode::kShortWrite) n /= 2;
  IQL_RETURN_IF_ERROR(WriteAll(fd_, bytes.data(), n, "<wal>"));
  if (inject && mode == StorageFaultMode::kShortWrite) {
    return UnavailableError("injected short write to append log");
  }
  if (fsync && ::fsync(fd_) != 0) return ErrnoError("fsync failed on", "<wal>");
  if (inject && mode == StorageFaultMode::kFsyncFail) {
    return UnavailableError("injected fsync failure on append log");
  }
  return Status::Ok();
}

void AppendLog::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace storage
}  // namespace iqlkit
