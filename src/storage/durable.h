#ifndef IQLKIT_STORAGE_DURABLE_H_
#define IQLKIT_STORAGE_DURABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "base/result.h"
#include "model/instance.h"
#include "model/schema.h"
#include "model/universe.h"
#include "storage/io.h"

namespace iqlkit {
namespace storage {

struct DurabilityConfig {
  // fsync every WAL frame and snapshot. Turning it off trades the
  // power-failure guarantee for speed; process crashes are still covered.
  bool fsync = true;
  // What a failed snapshot/frame write does mid-run: strict (false, the
  // default) aborts the evaluation with kUnavailable — the scheduler
  // classifies that as transient and the retry resumes from the durable
  // prefix — while true silently degrades to in-memory evaluation with the
  // failure recorded as warning().
  bool degrade_on_write_error = false;
};

// Everything recovery reconstructed from a query's durable directory.
struct RecoveredRun {
  Instance instance;
  bool complete = false;        // final output of a finished run
  uint32_t resume_stage = 0;    // next stage to evaluate
  uint64_t resume_step = 0;     // next step within that stage
  uint64_t next_oid_raw = 0;    // universe counter to restore
  uint64_t frames_replayed = 0;
  bool tail_truncated = false;  // the wal had a torn tail (now truncated)
};

// Durable state of one query: a directory holding the last snapshot
// (snapshot.iqs), the write-ahead log of committed steps since that
// snapshot (wal.iqw), and a DONE marker for finished runs. Doubles as the
// evaluator's StepCommitSink, appending one frame per committed fixpoint
// step.
//
// Open never fails hard: when the directory cannot be created or written
// the object comes back inactive (degraded to in-memory) with a structured
// kUnavailable warning(), and every later call is a no-op — evaluation
// proceeds exactly as without durability.
class QueryDurability : public StepCommitSink {
 public:
  static QueryDurability Open(std::string dir, const DurabilityConfig& config);

  QueryDurability(QueryDurability&&) = default;
  QueryDurability& operator=(QueryDurability&&) = default;

  bool active() const { return !degraded_; }
  // Non-OK when degraded (unwritable dir at Open, or a tolerated write
  // error under degrade_on_write_error).
  const Status& warning() const { return warning_; }
  const std::string& dir() const { return dir_; }

  // Reconstructs persisted state, if any: loads the snapshot, replays every
  // complete WAL frame onto it, truncates a torn tail in place, and reports
  // where evaluation should resume. nullopt means a fresh start (no usable
  // state). A complete run decodes against `output_schema`; a partial one
  // against `schema` (the full unit schema). The universe's oid counter is
  // advanced to the recovered position.
  Result<std::optional<RecoveredRun>> Recover(
      std::shared_ptr<const Schema> schema,
      std::shared_ptr<const Schema> output_schema, Universe* universe);

  // Starts (or restarts) a run: snapshots `input` with exact oids, opens a
  // fresh WAL, clears any DONE marker.
  Status BeginRun(const Instance& input);

  // StepCommitSink: appends one frame per committed step.
  Status OnStepCommit(const StepCommit& commit) override;

  // Folds the WAL into a fresh snapshot of `instance` (a partial sitting on
  // the last committed step boundary) and resets the log — the
  // snapshot-on-drain / SIGINT-flush compaction path.
  Status Checkpoint(const Instance& instance);

  // Records a finished run: final snapshot of the (projected) output, DONE
  // marker, WAL removed.
  Status Finalize(const Instance& output);

  // Coordinates the next committed step would have (== where a resumed run
  // continues). Exposed for scheduler step-accounting assertions.
  uint32_t resume_stage() const { return resume_stage_; }
  uint64_t resume_step() const { return resume_step_; }
  uint64_t frames_appended() const { return frames_appended_; }

  std::string SnapshotPath() const { return dir_ + "/snapshot.iqs"; }
  std::string WalPath() const { return dir_ + "/wal.iqw"; }
  std::string DonePath() const { return dir_ + "/DONE"; }

 private:
  QueryDurability(std::string dir, const DurabilityConfig& config)
      : dir_(std::move(dir)), config_(config) {}

  // Applies the configured write-error policy: degrade (record warning,
  // return Ok) or propagate.
  Status WriteError(Status s);

  std::string dir_;
  DurabilityConfig config_;
  bool degraded_ = false;
  bool wal_broken_ = false;  // a frame append failed; stop appending
  Status warning_;
  AppendLog wal_;
  uint64_t fingerprint_ = 0;
  uint32_t resume_stage_ = 0;
  uint64_t resume_step_ = 0;
  uint64_t frames_appended_ = 0;
};

}  // namespace storage
}  // namespace iqlkit

#endif  // IQLKIT_STORAGE_DURABLE_H_
