#include "storage/durable.h"

#include <fcntl.h>
#include <unistd.h>

#include "storage/snapshot.h"
#include "storage/wal.h"

namespace iqlkit {
namespace storage {

namespace {

// Raw writability probe, deliberately outside the fault-injected IO paths:
// Open's degrade decision reflects the real filesystem, not a seeded fault.
bool DirWritable(const std::string& dir) {
  std::string probe = dir + "/.probe";
  int fd = ::open(probe.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return false;
  ::close(fd);
  ::unlink(probe.c_str());
  return true;
}

}  // namespace

QueryDurability QueryDurability::Open(std::string dir,
                                      const DurabilityConfig& config) {
  QueryDurability out(std::move(dir), config);
  Status s = EnsureDir(out.dir_);
  if (s.ok() && !DirWritable(out.dir_)) {
    s = UnavailableError("data dir '" + out.dir_ + "' is not writable");
  }
  if (!s.ok()) {
    out.degraded_ = true;
    out.warning_ = UnavailableError(
        "durability disabled, evaluating in memory only: " + s.message());
  }
  return out;
}

Status QueryDurability::WriteError(Status s) {
  if (config_.degrade_on_write_error) {
    degraded_ = true;
    warning_ = UnavailableError(
        "durability degraded to in-memory mid-run: " + s.message());
    wal_.Close();
    return Status::Ok();
  }
  wal_broken_ = true;
  return s;
}

Result<std::optional<RecoveredRun>> QueryDurability::Recover(
    std::shared_ptr<const Schema> schema,
    std::shared_ptr<const Schema> output_schema, Universe* universe) {
  if (degraded_) return std::optional<RecoveredRun>();
  fingerprint_ = SchemaFingerprint(*schema);
  Result<std::string> bytes = ReadFileBytes(SnapshotPath());
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return std::optional<RecoveredRun>();  // fresh start
    }
    return bytes.status();
  }
  // The complete flag lives in the header (byte 5, bit 1); a finished run's
  // snapshot is the *projected* output, so it decodes against the output
  // schema rather than the full one.
  bool complete = bytes->size() > 5 && (static_cast<uint8_t>((*bytes)[5]) & 2);
  IQL_ASSIGN_OR_RETURN(
      LoadedSnapshot snap,
      DecodeSnapshot(*bytes, complete ? output_schema : schema, universe));
  universe->AdvanceOidCounter(snap.next_oid_raw);

  RecoveredRun run{std::move(snap.instance), snap.complete,
                   snap.resume_stage,        snap.resume_step,
                   snap.next_oid_raw,        0,
                   false};
  if (snap.complete) {
    return std::optional<RecoveredRun>(std::move(run));
  }

  Result<std::string> wal_bytes = ReadFileBytes(WalPath());
  if (wal_bytes.ok()) {
    if (wal_bytes->size() < 16) {
      // Crash inside the header write: no frame can exist, start the log
      // over from the snapshot.
      run.tail_truncated = !wal_bytes->empty();
      IQL_RETURN_IF_ERROR(
          AtomicWriteFile(WalPath(), EncodeWalHeader(fingerprint_),
                          config_.fsync));
    } else {
      IQL_ASSIGN_OR_RETURN(
          WalRecovery rec,
          ReplayWal(*wal_bytes, fingerprint_, &run.instance));
      run.frames_replayed = rec.frames_replayed;
      run.tail_truncated = rec.tail_truncated;
      if (rec.frames_replayed > 0) {
        run.resume_stage = rec.last_stage;
        run.resume_step = rec.last_step + 1;
        run.next_oid_raw = rec.next_oid_raw;
      }
      if (rec.tail_truncated) {
        IQL_RETURN_IF_ERROR(TruncateWal(WalPath(), rec.valid_bytes));
      }
    }
  } else if (wal_bytes.status().code() == StatusCode::kNotFound) {
    // Crash between the snapshot and the WAL create: seed a fresh log.
    IQL_RETURN_IF_ERROR(AtomicWriteFile(
        WalPath(), EncodeWalHeader(fingerprint_), config_.fsync));
  } else {
    return wal_bytes.status();
  }

  IQL_ASSIGN_OR_RETURN(wal_, AppendLog::Open(WalPath()));
  resume_stage_ = run.resume_stage;
  resume_step_ = run.resume_step;
  return std::optional<RecoveredRun>(std::move(run));
}

Status QueryDurability::BeginRun(const Instance& input) {
  if (degraded_) return Status::Ok();
  fingerprint_ = SchemaFingerprint(input.schema());
  IQL_RETURN_IF_ERROR(RemoveFileIfExists(DonePath()));
  SnapshotOptions options;  // exact oids, resume at (0, 0)
  Status s =
      AtomicWriteFile(SnapshotPath(), EncodeSnapshot(input, options),
                      config_.fsync);
  if (s.ok()) {
    s = AtomicWriteFile(WalPath(), EncodeWalHeader(fingerprint_),
                        config_.fsync);
  }
  if (!s.ok()) return WriteError(std::move(s));
  IQL_ASSIGN_OR_RETURN(wal_, AppendLog::Open(WalPath()));
  resume_stage_ = 0;
  resume_step_ = 0;
  frames_appended_ = 0;
  wal_broken_ = false;
  return Status::Ok();
}

Status QueryDurability::OnStepCommit(const StepCommit& commit) {
  if (degraded_) return Status::Ok();
  if (wal_broken_) {
    return UnavailableError("wal is broken by an earlier failed append");
  }
  Status s = wal_.Append(EncodeWalFrame(commit), config_.fsync);
  if (!s.ok()) return WriteError(std::move(s));
  ++frames_appended_;
  resume_stage_ = static_cast<uint32_t>(commit.stage);
  resume_step_ = commit.step + 1;
  return Status::Ok();
}

Status QueryDurability::Checkpoint(const Instance& instance) {
  if (degraded_) return Status::Ok();
  SnapshotOptions options;
  options.resume_stage = resume_stage_;
  options.resume_step = resume_step_;
  Status s = AtomicWriteFile(SnapshotPath(),
                             EncodeSnapshot(instance, options), config_.fsync);
  if (s.ok()) {
    // The snapshot now covers every logged step; restart the log.
    wal_.Close();
    s = AtomicWriteFile(WalPath(), EncodeWalHeader(fingerprint_),
                        config_.fsync);
  }
  if (!s.ok()) return WriteError(std::move(s));
  IQL_ASSIGN_OR_RETURN(wal_, AppendLog::Open(WalPath()));
  wal_broken_ = false;
  return Status::Ok();
}

Status QueryDurability::Finalize(const Instance& output) {
  if (degraded_) return Status::Ok();
  wal_.Close();
  SnapshotOptions options;
  options.complete = true;
  Status s = AtomicWriteFile(SnapshotPath(),
                             EncodeSnapshot(output, options), config_.fsync);
  if (s.ok()) s = AtomicWriteFile(DonePath(), "done\n", config_.fsync);
  if (s.ok()) s = RemoveFileIfExists(WalPath());
  if (!s.ok()) return WriteError(std::move(s));
  return Status::Ok();
}

}  // namespace storage
}  // namespace iqlkit
