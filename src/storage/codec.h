#ifndef IQLKIT_STORAGE_CODEC_H_
#define IQLKIT_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/universe.h"
#include "model/value.h"
#include "storage/bytes.h"

namespace iqlkit {
namespace storage {

inline constexpr uint32_t kNoRef = 0xFFFFFFFFu;

// Name-based structural order on o-values: like CompareValues, but
// constants compare by their symbol *text* and tuple fields by attribute
// *text*, never by symbol id. Two universes that interned the same strings
// in different orders still order structurally-equal values identically, so
// every byte the encoder emits is a function of the abstract instance alone
// — the property behind canonical-snapshot idempotence and the golden
// corpus.
int CompareValuesByName(const ValueStore& store, ValueId a, ValueId b);

// Builds the file-local symbol and o-value tables shared by snapshots and
// WAL frames. Symbols are registered in first-use order; values are emitted
// children-first, so a decoder resolves every reference against
// already-decoded entries. Oid leaves are emitted through `oid_map` (raw ->
// on-disk raw; identity when null), which is where canonical renumbering
// plugs in.
class TableBuilder {
 public:
  TableBuilder(const ValueStore* store,
               const std::unordered_map<uint64_t, uint64_t>* oid_map)
      : store_(store), oid_map_(oid_map) {}

  uint32_t SymRef(Symbol s);
  uint32_t ValueRef(ValueId v);

  // On-disk raw for a universe oid (identity without a map).
  uint64_t MapOid(Oid o) const;

  void EmitSymbols(ByteWriter* w) const;
  void EmitValues(ByteWriter* w) const;

 private:
  const ValueStore* store_;
  const std::unordered_map<uint64_t, uint64_t>* oid_map_;
  std::unordered_map<Symbol, uint32_t> sym_index_;
  std::vector<Symbol> syms_;
  std::unordered_map<ValueId, uint32_t> val_index_;
  std::vector<std::string> nodes_;  // pre-encoded, children first
};

// Decodes the symbol and value tables into `universe`, interning as it
// goes. Hash-consing dedups against anything the universe already holds.
class TableReader {
 public:
  // Returns false on malformed input (truncation, out-of-range refs).
  bool Read(ByteReader* r, Universe* universe);

  bool SymOk(uint32_t ref) const { return ref < syms_.size(); }
  Symbol Sym(uint32_t ref) const { return syms_[ref]; }
  bool ValueOk(uint32_t ref) const { return ref < vals_.size(); }
  ValueId Value(uint32_t ref) const { return vals_[ref]; }

 private:
  std::vector<Symbol> syms_;
  std::vector<ValueId> vals_;
};

}  // namespace storage
}  // namespace iqlkit

#endif  // IQLKIT_STORAGE_CODEC_H_
