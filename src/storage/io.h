#ifndef IQLKIT_STORAGE_IO_H_
#define IQLKIT_STORAGE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/result.h"
#include "base/status.h"

namespace iqlkit {
namespace storage {

// Low-level durable-file primitives. Every write path consults the
// FaultSite::kStorage injection site; when the site fires, the n-th
// injected fault deterministically picks one of three real failure modes
// (short write, fsync failure, crash between write and rename), leaving the
// filesystem in exactly the torn state a real crash would — the recovery
// path must then cope with it, which is what the crash soak exercises.

// Creates `path` (and missing parents) as a directory. EEXIST is success.
Status EnsureDir(const std::string& path);

// True if `path` exists (any file type).
bool FileExists(const std::string& path);

// Removes `path` if present; missing is success.
Status RemoveFileIfExists(const std::string& path);

// Whole-file read. NotFound when the file does not exist.
Result<std::string> ReadFileBytes(const std::string& path);

// Crash-atomic whole-file replace: write `path`.tmp, fsync, rename over
// `path`, fsync the directory. Readers see either the old or the new
// content, never a mix. Injected faults surface as kUnavailable and may
// leave a stale .tmp behind (which recovery ignores).
Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       bool fsync);

// Append-only log file handle. Open creates the file when missing and
// positions at the end; Append writes one pre-framed record and optionally
// fsyncs. An injected short write really does leave a torn tail on disk.
class AppendLog {
 public:
  AppendLog() = default;
  AppendLog(AppendLog&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  AppendLog& operator=(AppendLog&& other) noexcept;
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;
  ~AppendLog() { Close(); }

  static Result<AppendLog> Open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  Status Append(std::string_view bytes, bool fsync);
  void Close();

 private:
  explicit AppendLog(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace storage
}  // namespace iqlkit

#endif  // IQLKIT_STORAGE_IO_H_
