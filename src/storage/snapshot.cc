#include "storage/snapshot.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "storage/bytes.h"
#include "storage/checksum.h"
#include "storage/codec.h"

namespace iqlkit {
namespace storage {

namespace {

constexpr char kMagic[4] = {'I', 'Q', 'S', '1'};
constexpr uint8_t kFlagCanonical = 1u << 0;
constexpr uint8_t kFlagComplete = 1u << 1;

uint64_t Fnv1a(std::string_view s, uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t SchemaFingerprint(const Schema& schema) {
  const Universe& u = *schema.universe();
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (Symbol r : schema.relation_names()) {
    h = Fnv1a(u.Name(r), h);
    h = Fnv1a("\x01", h);
    h = Fnv1a(u.types().ToString(schema.RelationType(r)), h);
    h = Fnv1a("\x02", h);
  }
  for (Symbol p : schema.class_names()) {
    h = Fnv1a(u.Name(p), h);
    h = Fnv1a(schema.IsSetValuedClass(p) ? "\x03" : "\x04", h);
    h = Fnv1a(u.types().ToString(schema.ClassType(p)), h);
    h = Fnv1a("\x05", h);
  }
  return h;
}

std::string EncodeSnapshot(const Instance& instance,
                           const SnapshotOptions& options) {
  Universe& u = *instance.universe();
  const ValueStore& values = u.values();

  // Every oid the snapshot must carry: classed oids plus any oid occurring
  // inside a stored value, in ascending raw order (= canonical renumbering
  // order).
  std::set<Oid> oids = instance.Objects();
  std::unordered_map<uint64_t, uint64_t> renumber;
  const std::unordered_map<uint64_t, uint64_t>* oid_map = nullptr;
  uint64_t next_oid = options.next_oid_raw;
  if (options.canonical_oids) {
    uint64_t next = 1;
    for (Oid o : oids) renumber[o.raw] = next++;
    oid_map = &renumber;
    next_oid = next;
  } else if (next_oid == 0) {
    next_oid = u.next_oid_raw();
  }

  TableBuilder tables(&values, oid_map);
  ByteWriter body;

  // Oid table, ascending disk raw (== ascending original raw in both
  // modes, since renumbering is monotone).
  body.U32(static_cast<uint32_t>(oids.size()));
  for (Oid o : oids) {
    body.U64(tables.MapOid(o));
    auto cls = instance.ClassOf(o);
    body.U32(cls.has_value() ? tables.SymRef(*cls) : kNoRef);
    std::string label = instance.OidLabel(o);
    bool named = !label.empty() && label[0] != '@';
    body.U8(named ? 1 : 0);
    if (named) body.Str(label);
  }

  // Relation extents in schema declaration order; tuples in the
  // universe-independent name-based structural order.
  std::vector<std::pair<Symbol, std::vector<ValueId>>> rels;
  for (Symbol r : instance.schema().relation_names()) {
    const ValueIdSet& extent = instance.Relation(r);
    if (extent.empty()) continue;
    std::vector<ValueId> tuples(extent.begin(), extent.end());
    std::sort(tuples.begin(), tuples.end(), [&](ValueId a, ValueId b) {
      return CompareValuesByName(values, a, b) < 0;
    });
    rels.emplace_back(r, std::move(tuples));
  }
  body.U32(static_cast<uint32_t>(rels.size()));
  for (const auto& [r, tuples] : rels) {
    body.U32(tables.SymRef(r));
    body.U32(static_cast<uint32_t>(tuples.size()));
    for (ValueId v : tuples) body.U32(tables.ValueRef(v));
  }

  // nu entries in ascending raw order; the set-valued default (empty set)
  // is implied by class membership and omitted.
  ValueId empty_set = u.values().EmptySet();
  std::vector<std::pair<Oid, ValueId>> nu;
  for (Oid o : oids) {
    auto cls = instance.ClassOf(o);
    if (!cls.has_value()) continue;
    auto v = instance.ValueOf(o);
    if (!v.has_value()) continue;
    if (instance.schema().IsSetValuedClass(*cls) && *v == empty_set) continue;
    nu.emplace_back(o, *v);
  }
  body.U32(static_cast<uint32_t>(nu.size()));
  for (const auto& [o, v] : nu) {
    body.U64(tables.MapOid(o));
    body.U32(tables.ValueRef(v));
  }

  ByteWriter payload;
  payload.U64(SchemaFingerprint(instance.schema()));
  payload.U64(next_oid);
  payload.U32(options.resume_stage);
  payload.U64(options.resume_step);
  tables.EmitSymbols(&payload);
  tables.EmitValues(&payload);
  payload.Bytes(body.bytes());

  ByteWriter out;
  out.Bytes(std::string_view(kMagic, 4));
  out.U8(kSnapshotVersion);
  uint8_t flags = 0;
  if (options.canonical_oids) flags |= kFlagCanonical;
  if (options.complete) flags |= kFlagComplete;
  out.U8(flags);
  out.U16(0);
  out.U32(Crc32(payload.bytes()));
  out.U64(payload.size());
  out.Bytes(payload.bytes());
  return out.Take();
}

Result<LoadedSnapshot> DecodeSnapshot(std::string_view bytes,
                                      std::shared_ptr<const Schema> schema,
                                      Universe* universe) {
  ByteReader header(bytes);
  char magic[4] = {};
  magic[0] = static_cast<char>(header.U8());
  magic[1] = static_cast<char>(header.U8());
  magic[2] = static_cast<char>(header.U8());
  magic[3] = static_cast<char>(header.U8());
  if (!header.ok() || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    return InvalidArgumentError("not an iqlkit snapshot (bad magic)");
  }
  uint8_t version = header.U8();
  if (version != kSnapshotVersion) {
    return InvalidArgumentError(
        "unsupported snapshot format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  uint8_t flags = header.U8();
  header.U16();  // reserved
  uint32_t crc = header.U32();
  uint64_t payload_len = header.U64();
  if (!header.ok() || payload_len != header.remaining()) {
    return InvalidArgumentError("snapshot truncated: payload length " +
                                std::to_string(payload_len) + " vs " +
                                std::to_string(header.remaining()) +
                                " bytes on disk");
  }
  std::string_view payload = bytes.substr(bytes.size() - payload_len);
  if (Crc32(payload) != crc) {
    return InvalidArgumentError("snapshot payload checksum mismatch");
  }

  ByteReader r(payload);
  uint64_t fingerprint = r.U64();
  uint64_t next_oid = r.U64();
  uint32_t resume_stage = r.U32();
  uint64_t resume_step = r.U64();
  if (fingerprint != SchemaFingerprint(*schema)) {
    return FailedPreconditionError(
        "snapshot was written under a different schema (fingerprint "
        "mismatch)");
  }

  TableReader tables;
  if (!tables.Read(&r, universe)) {
    return InvalidArgumentError("snapshot value table is malformed");
  }

  LoadedSnapshot out{Instance(std::move(schema), universe),
                     (flags & kFlagCanonical) != 0,
                     (flags & kFlagComplete) != 0,
                     resume_stage,
                     resume_step,
                     next_oid};
  Instance& inst = out.instance;

  uint32_t noids = r.U32();
  if (!r.ok() || noids > r.remaining() / 13) {
    return InvalidArgumentError("snapshot oid table is malformed");
  }
  for (uint32_t i = 0; i < noids; ++i) {
    uint64_t raw = r.U64();
    uint32_t cls = r.U32();
    uint8_t named = r.U8();
    std::string_view name;
    if (named != 0) name = r.Str();
    if (!r.ok()) return InvalidArgumentError("snapshot oid table truncated");
    Oid o{raw};
    if (cls != kNoRef) {
      if (!tables.SymOk(cls)) {
        return InvalidArgumentError("snapshot oid class out of range");
      }
      IQL_RETURN_IF_ERROR(inst.AddOid(tables.Sym(cls), o));
    }
    if (named != 0) inst.NameOid(o, name);
  }

  uint32_t nrels = r.U32();
  if (!r.ok() || nrels > r.remaining() / 8) {
    return InvalidArgumentError("snapshot relation section is malformed");
  }
  for (uint32_t i = 0; i < nrels; ++i) {
    uint32_t rel = r.U32();
    uint32_t ntuples = r.U32();
    if (!r.ok() || !tables.SymOk(rel) || ntuples > r.remaining() / 4) {
      return InvalidArgumentError("snapshot relation section is malformed");
    }
    for (uint32_t t = 0; t < ntuples; ++t) {
      uint32_t v = r.U32();
      if (!r.ok() || !tables.ValueOk(v)) {
        return InvalidArgumentError("snapshot relation tuple out of range");
      }
      IQL_RETURN_IF_ERROR(inst.AddToRelation(tables.Sym(rel), tables.Value(v)));
    }
  }

  uint32_t nnu = r.U32();
  if (!r.ok() || nnu > r.remaining() / 12) {
    return InvalidArgumentError("snapshot nu section is malformed");
  }
  const ValueStore& values = universe->values();
  for (uint32_t i = 0; i < nnu; ++i) {
    uint64_t raw = r.U64();
    uint32_t vref = r.U32();
    if (!r.ok() || !tables.ValueOk(vref)) {
      return InvalidArgumentError("snapshot nu section out of range");
    }
    Oid o{raw};
    ValueId v = tables.Value(vref);
    auto cls = inst.ClassOf(o);
    if (!cls.has_value()) {
      return InvalidArgumentError("snapshot nu entry for unclassed oid @" +
                                  std::to_string(raw));
    }
    if (inst.schema().IsSetValuedClass(*cls)) {
      if (values.node(v).kind != ValueKind::kSet) {
        return InvalidArgumentError("snapshot nu entry: set-valued oid @" +
                                    std::to_string(raw) +
                                    " carries a non-set value");
      }
      for (ValueId e : values.node(v).elems) {
        IQL_RETURN_IF_ERROR(inst.AddToSetOid(o, e));
      }
    } else {
      IQL_RETURN_IF_ERROR(inst.SetOidValue(o, v));
    }
  }
  if (!r.AtEnd()) {
    return InvalidArgumentError("snapshot has trailing bytes");
  }
  return out;
}

}  // namespace storage
}  // namespace iqlkit
