#ifndef IQLKIT_STORAGE_SNAPSHOT_H_
#define IQLKIT_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "base/result.h"
#include "model/instance.h"
#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {
namespace storage {

// On-disk snapshot format (version 1, little-endian):
//
//   +0   magic "IQS1"
//   +4   u8  version (= kSnapshotVersion)
//   +5   u8  flags (bit0: canonical oid renumbering, bit1: complete run)
//   +6   u16 reserved (0)
//   +8   u32 CRC-32 of the payload
//   +12  u64 payload length
//   +20  payload:
//          u64 schema fingerprint        u64 next-oid counter
//          u32 resume stage              u64 resume step
//          symbol table                  value table (children first)
//          oid table (raw, class, name)  relation extents   nu entries
//
// Every multi-byte ordering inside the payload is universe-independent
// (schema declaration order, ascending oid raws, name-based structural
// value order), so encoding is a pure function of the abstract instance:
// the same facts produce the same bytes no matter which universe holds
// them or in which order its symbols were interned.
inline constexpr uint8_t kSnapshotVersion = 1;

struct SnapshotOptions {
  // Renumber oids densely to 1..n (ascending original raw) and set the
  // stored counter to n+1. The result is O-isomorphic to the input — the
  // stable form for archival and the golden corpus. Exact mode (false)
  // preserves raw oids and the live counter, which is what crash recovery
  // needs for byte-identical WriteFacts resumption.
  bool canonical_oids = false;
  bool complete = false;  // marks a finished run's final state
  uint32_t resume_stage = 0;
  uint64_t resume_step = 0;
  // Fresh-oid counter to record; 0 means the instance universe's live
  // counter (exact mode) or the dense renumbering's n+1 (canonical mode).
  uint64_t next_oid_raw = 0;
};

struct LoadedSnapshot {
  Instance instance;
  bool canonical = false;
  bool complete = false;
  uint32_t resume_stage = 0;
  uint64_t resume_step = 0;
  uint64_t next_oid_raw = 0;
};

// Stable 64-bit digest of a schema's relation/class declarations (names and
// rendered types, in declaration order). Snapshots and WALs embed it so
// recovery refuses to replay state onto a different schema.
uint64_t SchemaFingerprint(const Schema& schema);

// Serializes `instance` (which must cover every fact it holds under its
// schema) into the format above.
std::string EncodeSnapshot(const Instance& instance,
                           const SnapshotOptions& options);

// Decodes a snapshot into a fresh instance over `schema` (the full unit
// schema), interning symbols/values into `universe`. The caller is
// responsible for advancing the universe's oid counter to
// LoadedSnapshot::next_oid_raw. Unknown version bytes, checksum mismatches,
// and truncations are InvalidArgument; a schema fingerprint mismatch is
// FailedPrecondition.
Result<LoadedSnapshot> DecodeSnapshot(std::string_view bytes,
                                      std::shared_ptr<const Schema> schema,
                                      Universe* universe);

}  // namespace storage
}  // namespace iqlkit

#endif  // IQLKIT_STORAGE_SNAPSHOT_H_
