#ifndef IQLKIT_STORAGE_WAL_H_
#define IQLKIT_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/result.h"
#include "model/instance.h"
#include "storage/io.h"

namespace iqlkit {
namespace storage {

// Write-ahead log of governor-committed fixpoint steps (version 1):
//
//   header (16 bytes): magic "IQW1", u8 version, u8+u16 reserved,
//                      u64 schema fingerprint
//   then zero or more frames, each self-contained:
//     u32 payload length | u32 payload CRC-32 | payload:
//       u32 stage   u64 step   u64 next-oid counter after the step
//       symbol table   value table   u32 op count, then per op:
//         u8 kind   u32 name ref   u64 oid raw   u32 value ref   str text
//
// One frame per committed step. A frame is logically appended only once its
// bytes (and, with fsync on, its durability) are complete; recovery scans
// sequentially, stops at the first short/corrupt frame, and reports the
// byte offset so the torn tail can be truncated before appending resumes.
inline constexpr uint8_t kWalVersion = 1;

// Serialized 16-byte header for a fresh log.
std::string EncodeWalHeader(uint64_t schema_fingerprint);

// Serializes one committed step as a frame. Values are resolved against
// `commit.instance`'s universe; oids keep their exact raws.
std::string EncodeWalFrame(const StepCommit& commit);

struct WalRecovery {
  uint64_t frames_replayed = 0;
  bool tail_truncated = false;  // trailing bytes did not form a full frame
  uint64_t valid_bytes = 0;     // prefix length holding header + full frames
  // Coordinates of the last replayed frame (meaningful when frames > 0).
  uint32_t last_stage = 0;
  uint64_t last_step = 0;
  uint64_t next_oid_raw = 0;
};

// Replays every complete frame of `bytes` onto `instance` through its
// public mutators. A torn tail is normal (reported, not an error); a bad
// header or a CRC-valid frame that fails to decode is InvalidArgument; a
// fingerprint mismatch is FailedPrecondition.
Result<WalRecovery> ReplayWal(std::string_view bytes,
                              uint64_t expected_fingerprint,
                              Instance* instance);

// Truncates the log file to its valid prefix (recovery's valid_bytes).
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

}  // namespace storage
}  // namespace iqlkit

#endif  // IQLKIT_STORAGE_WAL_H_
