#include "base/governor.h"

#include <sstream>

#include "base/fault_injection.h"

namespace iqlkit {

const char* TripReasonName(TripReason reason) {
  switch (reason) {
    case TripReason::kNone:
      return "NONE";
    case TripReason::kDeadline:
      return "DEADLINE";
    case TripReason::kCancelled:
      return "CANCELLED";
    case TripReason::kMemory:
      return "MEMORY";
    case TripReason::kSteps:
      return "STEPS";
    case TripReason::kDerivations:
      return "DERIVATIONS";
    case TripReason::kInventedOids:
      return "INVENTED_OIDS";
    case TripReason::kExtent:
      return "EXTENT";
    case TripReason::kFault:
      return "FAULT";
  }
  return "NONE";
}

std::string ResourceReport::ToString() const {
  std::ostringstream os;
  os << "trip=" << TripReasonName(trip) << " elapsed=" << elapsed_seconds
     << "s memory=" << memory_bytes << "B peak_memory=" << peak_memory_bytes
     << "B steps=" << steps << " derivations=" << derivations
     << " invented_oids=" << invented_oids;
  return os.str();
}

Governor::Governor(const ResourceLimits& limits, CancellationToken* cancel)
    : limits_(limits),
      cancel_(cancel),
      start_(std::chrono::steady_clock::now()) {}

Status Governor::CheckNow() {
  TripReason t = trip_.load(std::memory_order_relaxed);
  if (t != TripReason::kNone) return TripStatus(t);
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return TripNow(TripReason::kCancelled);
  }
  if (accountant_.injected_failure() ||
      (limits_.max_memory_bytes > 0 &&
       accountant_.bytes() > limits_.max_memory_bytes)) {
    return TripNow(TripReason::kMemory);
  }
  if (limits_.deadline_seconds > 0 &&
      elapsed_seconds() > limits_.deadline_seconds) {
    return TripNow(TripReason::kDeadline);
  }
  if (FaultInjector::Global().ShouldFail(FaultSite::kGovernorTrip)) {
    return TripNow(TripReason::kFault);
  }
  return Status::Ok();
}

Status Governor::TripNow(TripReason reason) {
  TripReason expected = TripReason::kNone;
  trip_.compare_exchange_strong(expected, reason,
                                std::memory_order_relaxed);
  // On a lost race the first trip wins; report that one.
  return TripStatus(trip_.load(std::memory_order_relaxed));
}

Status Governor::TripStatus(TripReason reason) const {
  std::string detail;
  switch (reason) {
    case TripReason::kNone:
      return Status::Ok();
    case TripReason::kDeadline:
      detail = "wall-clock deadline of " +
               std::to_string(limits_.deadline_seconds) + "s exceeded";
      break;
    case TripReason::kCancelled:
      detail = "evaluation cancelled by the caller";
      break;
    case TripReason::kMemory:
      detail = accountant_.injected_failure()
                   ? "allocation failure (fault injection)"
                   : "memory accounting crossed " +
                         std::to_string(limits_.max_memory_bytes) + " bytes";
      break;
    case TripReason::kSteps:
      detail = "fixpoint not reached within " +
               std::to_string(limits_.max_steps_per_stage) +
               " steps (IQL programs may legitimately diverge; see "
               "Example 3.4.2)";
      break;
    case TripReason::kDerivations:
      detail = "derivation budget of " +
               std::to_string(limits_.max_derivations) + " exhausted";
      break;
    case TripReason::kInventedOids:
      detail = "oid-invention budget of " +
               std::to_string(limits_.max_invented_oids) +
               " exhausted (invention inside a recursive loop diverges; "
               "see §3.4)";
      break;
    case TripReason::kExtent:
      detail = "type-extent enumeration exceeded its budget of " +
               std::to_string(limits_.extent_budget) + " values";
      break;
    case TripReason::kFault:
      detail = "governor trip forced by fault injection";
      break;
  }
  // The caller (EvaluateProgram / datalog::Evaluate) appends the full
  // resource report; the governor alone cannot see the evaluator's
  // counters.
  std::string message =
      detail + "; the instance is rolled back to the last completed step";
  switch (reason) {
    case TripReason::kCancelled:
      return CancelledError(message);
    case TripReason::kDeadline:
      return DeadlineExceededError(message);
    default:
      return ResourceExhaustedError(message);
  }
}

ResourceReport Governor::Report() const {
  ResourceReport report;
  report.trip = trip_.load(std::memory_order_relaxed);
  report.elapsed_seconds = elapsed_seconds();
  report.memory_bytes = accountant_.bytes();
  report.peak_memory_bytes = accountant_.peak_bytes();
  return report;
}

}  // namespace iqlkit
