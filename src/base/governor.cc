#include "base/governor.h"

#include <limits>
#include <sstream>

#include "base/fault_injection.h"

namespace iqlkit {
namespace {

// Smallest power of two >= n (n clamped to [1, 2^63]).
uint64_t RoundUpPow2(uint64_t n) {
  if (n <= 1) return 1;
  uint64_t p = 1;
  while (p < n && p < (uint64_t{1} << 63)) p <<= 1;
  return p;
}

int64_t DeadlineNanos(double seconds) {
  if (seconds <= 0) return std::numeric_limits<int64_t>::max();
  double ns = seconds * 1e9;
  if (ns >= static_cast<double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(ns);
}

}  // namespace

const char* TripReasonName(TripReason reason) {
  switch (reason) {
    case TripReason::kNone:
      return "NONE";
    case TripReason::kDeadline:
      return "DEADLINE";
    case TripReason::kCancelled:
      return "CANCELLED";
    case TripReason::kMemory:
      return "MEMORY";
    case TripReason::kSteps:
      return "STEPS";
    case TripReason::kDerivations:
      return "DERIVATIONS";
    case TripReason::kInventedOids:
      return "INVENTED_OIDS";
    case TripReason::kExtent:
      return "EXTENT";
    case TripReason::kFault:
      return "FAULT";
    case TripReason::kPreempted:
      return "PREEMPTED";
  }
  return "NONE";
}

std::string ResourceReport::ToString() const {
  std::ostringstream os;
  os << "trip=" << TripReasonName(trip) << " elapsed=" << elapsed_seconds
     << "s memory=" << memory_bytes << "B peak_memory=" << peak_memory_bytes
     << "B steps=" << steps << " derivations=" << derivations
     << " invented_oids=" << invented_oids;
  return os.str();
}

Governor::Governor(const ResourceLimits& limits, CancellationToken* cancel)
    : limits_(limits),
      cancel_(cancel),
      start_(std::chrono::steady_clock::now()),
      eff_steps_(limits.max_steps_per_stage),
      eff_memory_(limits.max_memory_bytes == 0
                      ? std::numeric_limits<uint64_t>::max()
                      : limits.max_memory_bytes),
      eff_deadline_ns_(DeadlineNanos(limits.deadline_seconds)),
      poll_mask_(RoundUpPow2(limits.poll_stride) - 1) {}

double Governor::deadline_seconds() const {
  int64_t ns = eff_deadline_ns_.load(std::memory_order_relaxed);
  if (ns == std::numeric_limits<int64_t>::max()) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(ns) * 1e-9;
}

void Governor::TightenSteps(uint64_t max_steps) {
  uint64_t cur = eff_steps_.load(std::memory_order_relaxed);
  while (max_steps < cur) {
    if (eff_steps_.compare_exchange_weak(cur, max_steps,
                                         std::memory_order_relaxed)) {
      if (max_steps < limits_.max_steps_per_stage) {
        tightened_.store(true, std::memory_order_relaxed);
      }
      return;
    }
  }
}

void Governor::TightenMemory(uint64_t max_bytes) {
  if (max_bytes == 0) return;
  uint64_t ceiling = limits_.max_memory_bytes == 0
                         ? std::numeric_limits<uint64_t>::max()
                         : limits_.max_memory_bytes;
  uint64_t cur = eff_memory_.load(std::memory_order_relaxed);
  while (max_bytes < cur) {
    if (eff_memory_.compare_exchange_weak(cur, max_bytes,
                                          std::memory_order_relaxed)) {
      if (max_bytes < ceiling) {
        tightened_.store(true, std::memory_order_relaxed);
      }
      return;
    }
  }
}

void Governor::TightenDeadline(double seconds_from_start) {
  // seconds <= 0 means "now": DeadlineNanos maps it to "none", so pin to 0.
  int64_t ns = seconds_from_start <= 0 ? 0 : DeadlineNanos(seconds_from_start);
  int64_t cur = eff_deadline_ns_.load(std::memory_order_relaxed);
  while (ns < cur) {
    if (eff_deadline_ns_.compare_exchange_weak(cur, ns,
                                               std::memory_order_relaxed)) {
      if (ns < DeadlineNanos(limits_.deadline_seconds)) {
        tightened_.store(true, std::memory_order_relaxed);
      }
      return;
    }
  }
}

Status Governor::CheckNow() {
  TripReason t = trip_.load(std::memory_order_relaxed);
  if (t != TripReason::kNone) return TripStatus(t);
  if (pressure_hook_) {
    pressure_hook_();
    // The hook may have tripped this governor (Preempt) or tightened a
    // limit; re-read before the ordinary checks so both take effect here.
    t = trip_.load(std::memory_order_relaxed);
    if (t != TripReason::kNone) return TripStatus(t);
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return TripNow(TripReason::kCancelled);
  }
  if (accountant_.injected_failure() ||
      accountant_.bytes() > eff_memory_.load(std::memory_order_relaxed)) {
    return TripNow(TripReason::kMemory);
  }
  int64_t deadline_ns = eff_deadline_ns_.load(std::memory_order_relaxed);
  if (deadline_ns != std::numeric_limits<int64_t>::max()) {
    int64_t elapsed_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    if (elapsed_ns > deadline_ns) {
      return TripNow(TripReason::kDeadline);
    }
  }
  if (FaultInjector::Global().ShouldFail(FaultSite::kGovernorTrip)) {
    return TripNow(TripReason::kFault);
  }
  return Status::Ok();
}

Status Governor::TripNow(TripReason reason) {
  TripReason expected = TripReason::kNone;
  trip_.compare_exchange_strong(expected, reason,
                                std::memory_order_relaxed);
  // On a lost race the first trip wins; report that one.
  return TripStatus(trip_.load(std::memory_order_relaxed));
}

Status Governor::TripStatus(TripReason reason) const {
  std::string detail;
  bool tightened = tightened_.load(std::memory_order_relaxed);
  switch (reason) {
    case TripReason::kNone:
      return Status::Ok();
    case TripReason::kDeadline: {
      // A kDeadline trip implies a finite effective deadline.
      detail = "wall-clock deadline of " + std::to_string(deadline_seconds()) +
               "s exceeded";
      if (tightened) detail += " (tightened by the scheduler)";
      break;
    }
    case TripReason::kCancelled:
      detail = "evaluation cancelled by the caller";
      break;
    case TripReason::kMemory: {
      uint64_t limit = eff_memory_.load(std::memory_order_relaxed);
      detail = accountant_.injected_failure()
                   ? "allocation failure (fault injection)"
                   : "memory accounting crossed " + std::to_string(limit) +
                         " bytes";
      if (tightened && !accountant_.injected_failure()) {
        detail += " (tightened by the scheduler)";
      }
      break;
    }
    case TripReason::kSteps:
      detail = "fixpoint not reached within " +
               std::to_string(eff_steps_.load(std::memory_order_relaxed)) +
               " steps (IQL programs may legitimately diverge; see "
               "Example 3.4.2)";
      break;
    case TripReason::kDerivations:
      detail = "derivation budget of " +
               std::to_string(limits_.max_derivations) + " exhausted";
      break;
    case TripReason::kInventedOids:
      detail = "oid-invention budget of " +
               std::to_string(limits_.max_invented_oids) +
               " exhausted (invention inside a recursive loop diverges; "
               "see §3.4)";
      break;
    case TripReason::kExtent:
      detail = "type-extent enumeration exceeded its budget of " +
               std::to_string(limits_.extent_budget) + " values";
      break;
    case TripReason::kFault:
      detail = "governor trip forced by fault injection";
      break;
    case TripReason::kPreempted:
      detail =
          "preempted by the scheduler under global resource pressure; "
          "retry when the backlog drains";
      break;
  }
  // The caller (EvaluateProgram / datalog::Evaluate) appends the full
  // resource report; the governor alone cannot see the evaluator's
  // counters.
  std::string message =
      detail + "; the instance is rolled back to the last completed step";
  switch (reason) {
    case TripReason::kCancelled:
      return CancelledError(message);
    case TripReason::kDeadline:
      return DeadlineExceededError(message);
    case TripReason::kPreempted:
      return OverloadedError(message);
    default:
      return ResourceExhaustedError(message);
  }
}

ResourceReport Governor::Report() const {
  ResourceReport report;
  report.trip = trip_.load(std::memory_order_relaxed);
  report.elapsed_seconds = elapsed_seconds();
  report.memory_bytes = accountant_.bytes();
  report.peak_memory_bytes = accountant_.peak_bytes();
  return report;
}

}  // namespace iqlkit
