#ifndef IQLKIT_BASE_THREAD_POOL_H_
#define IQLKIT_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iqlkit {

// Resolves an EvalOptions-style thread-count knob: 0 means "one worker per
// hardware thread", anything else passes through. Always returns >= 1.
size_t ResolveThreadCount(size_t requested);

// A minimal persistent worker pool for fork/join fan-outs.
//
// The evaluator's unit of parallelism is one fixpoint round: the coordinator
// calls ParallelRun(n, fn), every worker executes fn(worker_index) against
// immutable shared state, and the call returns once all of them finish.
// There is no task queue -- partitioning work among workers is the caller's
// job (the evaluator uses an atomic chunk counter), which keeps the pool
// free of scheduling policy and makes the merge phase trivially serial.
//
// Workers are started lazily on the first ParallelRun so that programs whose
// rounds never exceed the parallel threshold pay nothing. The pool itself is
// not thread-safe: only one ParallelRun may be in flight at a time (the
// evaluator is a single coordinator, so this never constrains it).
class ThreadPool {
 public:
  // `workers` is the maximum fan-out; clamped to at least 1.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return workers_; }

  // Runs fn(0) .. fn(n-1) concurrently (n clamped to workers()) and blocks
  // until every invocation returns. fn must not throw. Index n-1 runs on
  // the calling thread, so a pool of 1 never context-switches.
  void ParallelRun(size_t n, const std::function<void(size_t)>& fn);

 private:
  void Start();
  void WorkerLoop(size_t index);

  size_t workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_fanout_ = 0;     // workers participating in the current job
  uint64_t job_epoch_ = 0;    // bumped per ParallelRun to wake workers
  size_t job_remaining_ = 0;  // workers yet to finish the current job
  bool shutdown_ = false;
  bool started_ = false;
};

// A thread-safe FIFO task pool: `workers` persistent threads pull queued
// closures and run each to completion. This is the complement of
// ThreadPool's single-coordinator fork/join contract -- Post may be called
// from any thread at any time, which is what the concurrent-query
// scheduler needs to multiplex many independent evaluations over one set
// of threads instead of one pool per evaluation. There is no result
// channel: tasks communicate through their own captures.
//
// Destruction drains: tasks already queued still run, then workers join.
// Posting after destruction has begun is a caller bug.
class TaskPool {
 public:
  explicit TaskPool(size_t workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  size_t workers() const { return workers_; }

  // Enqueues `task` for the next free worker. Never blocks; admission
  // control (bounding the backlog) is the caller's policy, not the pool's.
  void Post(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle. Note tasks
  // posted concurrently with Drain may or may not be covered.
  void Drain();

 private:
  void WorkerLoop();

  size_t workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;  // tasks currently executing
  bool shutdown_ = false;
};

}  // namespace iqlkit

#endif  // IQLKIT_BASE_THREAD_POOL_H_
