#include "base/thread_pool.h"

#include <algorithm>

namespace iqlkit {

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t workers) : workers_(std::max<size_t>(workers, 1)) {}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Start() {
  started_ = true;
  threads_.reserve(workers_ - 1);
  for (size_t i = 0; i + 1 < workers_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ThreadPool::WorkerLoop(size_t index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || (job_epoch_ != seen_epoch && index < job_fanout_);
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    (*job)(index);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--job_remaining_ == 0) work_done_.notify_all();
    }
  }
}

TaskPool::TaskPool(size_t workers) : workers_(std::max<size_t>(workers, 1)) {
  threads_.reserve(workers_);
  for (size_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::Post(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void TaskPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void TaskPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelRun(size_t n, const std::function<void(size_t)>& fn) {
  n = std::min(std::max<size_t>(n, 1), workers_);
  if (n == 1) {
    fn(0);
    return;
  }
  if (!started_) Start();
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = &fn;
    job_fanout_ = n - 1;  // pool threads run indices 0 .. n-2
    job_remaining_ = n - 1;
    ++job_epoch_;
  }
  work_ready_.notify_all();
  fn(n - 1);  // the coordinator is worker n-1
  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [&] { return job_remaining_ == 0; });
    job_ = nullptr;
  }
}

}  // namespace iqlkit
