#ifndef IQLKIT_BASE_RESULT_H_
#define IQLKIT_BASE_RESULT_H_

#include <optional>
#include <utility>

#include "base/logging.h"
#include "base/status.h"

namespace iqlkit {

// Either a value of type T or a non-ok Status explaining why the value could
// not be produced. Mirrors absl::StatusOr<T>.
//
//   Result<TypeId> r = pool.Parse("...");
//   if (!r.ok()) return r.status();
//   TypeId t = *r;
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return SomeStatusError(...)` and
  // `return value` both work inside functions returning Result<T>.
  Result(Status status) : status_(std::move(status)) {
    IQL_CHECK(!status_.ok()) << "Result constructed from OK status";
  }
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    IQL_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    IQL_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    IQL_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace iqlkit

// Evaluates a Result-returning expression; on error returns the Status, on
// success binds the value to `lhs`.
#define IQL_ASSIGN_OR_RETURN(lhs, expr)                     \
  IQL_ASSIGN_OR_RETURN_IMPL_(                               \
      IQL_RESULT_CONCAT_(_iql_result, __LINE__), lhs, expr)

#define IQL_RESULT_CONCAT_INNER_(a, b) a##b
#define IQL_RESULT_CONCAT_(a, b) IQL_RESULT_CONCAT_INNER_(a, b)

#define IQL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // IQLKIT_BASE_RESULT_H_
