#ifndef IQLKIT_BASE_STATUS_H_
#define IQLKIT_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace iqlkit {

// Error category for a failed operation. The library does not use C++
// exceptions; every fallible API returns a Status (or a Result<T>, see
// base/result.h) that the caller must inspect.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,    // malformed request or value
  kNotFound = 2,           // named entity does not exist
  kAlreadyExists = 3,      // named entity already declared
  kFailedPrecondition = 4, // operation not valid in current state
  kOutOfRange = 5,         // index or budget bound exceeded
  kResourceExhausted = 6,  // evaluation budget (steps/facts/oids) exhausted
  kUnimplemented = 7,
  kInternal = 8,           // invariant violation; indicates a library bug
  kParseError = 9,         // concrete-syntax error with position info
  kTypeError = 10,         // IQL/schema type-checking failure
  kCancelled = 11,         // caller cancelled the operation (cooperative)
  kDeadlineExceeded = 12,  // wall-clock deadline elapsed mid-operation
  kQueueFull = 13,         // scheduler admission queue at capacity; backoff
  kOverloaded = 14,        // transient overload (quota, preemption); retry
  kUnavailable = 15,       // durable storage unreachable or torn; transient
  kNetworkError = 16,      // wire-level failure (torn frame, disconnect, CRC)
};

// Returns a stable human-readable name, e.g. "TYPE_ERROR".
std::string_view StatusCodeName(StatusCode code);

// Value-type carrying either success (ok) or an error code plus message.
// Cheap to copy in the ok case (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "TYPE_ERROR: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, mirroring absl::*Error.
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status InternalError(std::string_view message);
Status ParseError(std::string_view message);
Status TypeError(std::string_view message);
Status CancelledError(std::string_view message);
Status DeadlineExceededError(std::string_view message);
Status QueueFullError(std::string_view message);
Status OverloadedError(std::string_view message);
Status UnavailableError(std::string_view message);
Status NetworkError(std::string_view message);

}  // namespace iqlkit

// Propagates a non-ok Status out of the enclosing function.
#define IQL_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::iqlkit::Status _iql_status = (expr);         \
    if (!_iql_status.ok()) return _iql_status;     \
  } while (false)

#endif  // IQLKIT_BASE_STATUS_H_
