#include "base/interner.h"

#include <memory>

#include "base/logging.h"

namespace iqlkit {

Symbol SymbolTable::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  IQL_CHECK(names_.size() < kInvalidSymbol) << "symbol table overflow";
  names_.emplace_back(s);
  Symbol sym = static_cast<Symbol>(names_.size() - 1);
  index_.emplace(std::string_view(names_.back()), sym);
  return sym;
}

Symbol SymbolTable::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidSymbol : it->second;
}

std::string_view SymbolTable::name(Symbol sym) const {
  IQL_CHECK(sym < names_.size()) << "invalid symbol " << sym;
  return names_[sym];
}

}  // namespace iqlkit
