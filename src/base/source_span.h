#ifndef IQLKIT_BASE_SOURCE_SPAN_H_
#define IQLKIT_BASE_SOURCE_SPAN_H_

namespace iqlkit {

// A half-open region of a source buffer, carried from the lexer through the
// parser into AST nodes so every diagnostic can point at the text that
// produced it. `line`/`column` are 1-based and name the first character;
// `offset`/`length` are byte positions into the original buffer (a span may
// cross lines, e.g. a whole rule -- renderers clamp the caret run to the
// first line). A default-constructed span (line 0) means "no position".
struct SourceSpan {
  int line = 0;
  int column = 1;
  int offset = 0;
  int length = 0;

  bool valid() const { return line > 0; }

  // The smallest span covering both operands; invalid spans are identities.
  static SourceSpan Cover(const SourceSpan& a, const SourceSpan& b) {
    if (!a.valid()) return b;
    if (!b.valid()) return a;
    const SourceSpan& first = b.offset < a.offset ? b : a;
    int end_a = a.offset + a.length;
    int end_b = b.offset + b.length;
    SourceSpan out = first;
    out.length = (end_a > end_b ? end_a : end_b) - first.offset;
    return out;
  }
};

}  // namespace iqlkit

#endif  // IQLKIT_BASE_SOURCE_SPAN_H_
