#ifndef IQLKIT_BASE_FAULT_INJECTION_H_
#define IQLKIT_BASE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "base/result.h"
#include "base/status.h"

namespace iqlkit {

// Deterministic points where the harness can force a failure. Each site has
// its own per-process decision counter, so the n-th consultation of a site
// fails (or not) as a pure function of (seed, site, n) -- independent of
// thread interleaving, which is what makes soak runs reproducible.
enum class FaultSite : uint8_t {
  kAllocation = 0,   // value interning; surfaces as a MEMORY governor trip
  kWorkerTask = 1,   // parallel evaluation chunk; fails the chunk's Status
  kGovernorTrip = 2, // Governor::CheckNow; forces a FAULT trip
  kScheduler = 3,    // scheduler dispatch; fails the attempt (retryable)
  kStorage = 4,      // durability I/O; short write / fsync fail / lost rename
  kNetwork = 5,      // wire I/O; torn frame / disconnect / stall / refused accept
};

inline constexpr int kNumFaultSites = 6;

const char* FaultSiteName(FaultSite site);

// Process-wide fault injector. Disabled (all probabilities zero) unless
// configured explicitly or via the IQLKIT_FAULTS environment variable:
//
//   IQLKIT_FAULTS="seed=42,alloc=0.001,task=0.01,trip=0.0005,sched=0.01,storage=0.01,network=0.01"
//
// Probabilities are per-consultation in [0,1]; omitted keys default to 0.
// The injector is intentionally a singleton: fault sites are sprinkled
// through hot paths that have no room for a plumbing parameter, and tests
// Reset() it between cases.
class FaultInjector {
 public:
  struct Config {
    uint64_t seed = 0;
    double p_alloc = 0;
    double p_task = 0;
    double p_trip = 0;
    double p_sched = 0;
    double p_storage = 0;
    double p_network = 0;

    bool enabled() const {
      return p_alloc > 0 || p_task > 0 || p_trip > 0 || p_sched > 0 ||
             p_storage > 0 || p_network > 0;
    }
  };

  static FaultInjector& Global();

  // Parses an "key=value,..." spec (see above). Unknown keys and malformed
  // values are errors so CI typos fail loudly.
  static Result<Config> ParseSpec(std::string_view spec);

  // Installs `config` and resets all site counters.
  void Configure(const Config& config);

  // Reads IQLKIT_FAULTS if set; no-op (injector stays disabled) otherwise.
  // Called once from main()s that opt in (tests, iqlsh, iqlserve). A
  // malformed spec is never half-applied: the error is reported on stderr,
  // the injector is reset to disabled, and the parse error is returned so
  // CI typos fail loudly instead of silently running fault-free.
  Status ConfigureFromEnv();

  // Back to disabled, counters zeroed.
  void Reset() { Configure(Config{}); }

  // True if the n-th consultation of `site` should fail. Deterministic in
  // (seed, site, n); thread-safe (the counter is the only shared state).
  bool ShouldFail(FaultSite site);

  const Config& config() const { return config_; }
  uint64_t hits(FaultSite site) const {
    return hits_[static_cast<int>(site)].load(std::memory_order_relaxed);
  }
  uint64_t injected(FaultSite site) const {
    return injected_[static_cast<int>(site)].load(std::memory_order_relaxed);
  }

 private:
  FaultInjector() = default;

  Config config_;
  std::atomic<uint64_t> hits_[kNumFaultSites] = {};
  std::atomic<uint64_t> injected_[kNumFaultSites] = {};
};

}  // namespace iqlkit

#endif  // IQLKIT_BASE_FAULT_INJECTION_H_
