#ifndef IQLKIT_BASE_LOGGING_H_
#define IQLKIT_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace iqlkit::internal_logging {

// Accumulates a failure message and aborts the process when destroyed.
// Used only for internal invariant violations (library bugs), never for
// data-dependent errors, which are reported via Status.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Converts a streamed CheckFailure chain to void with precedence lower
// than operator<<, so `IQL_CHECK(x) << "why";` parses as intended.
struct Voidify {
  void operator&(const CheckFailure&) {}
};

}  // namespace iqlkit::internal_logging

// Aborts with a message if `condition` is false. Supports streaming extra
// context: IQL_CHECK(n < size) << "n=" << n;
#define IQL_CHECK(condition)                                       \
  (condition) ? (void)0                                            \
              : ::iqlkit::internal_logging::Voidify() &            \
                    ::iqlkit::internal_logging::CheckFailure(      \
                        __FILE__, __LINE__, #condition)

#define IQL_DCHECK(condition) IQL_CHECK(condition)

#endif  // IQLKIT_BASE_LOGGING_H_
