#ifndef IQLKIT_BASE_GOVERNOR_H_
#define IQLKIT_BASE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "base/status.h"

namespace iqlkit {

// Why an evaluation was stopped early. kNone means the run is (so far)
// within every limit. Names are stable strings (TripReasonName) used in
// Status messages, EvalMetrics::ToJson, and the iqlsh partial report.
enum class TripReason : uint8_t {
  kNone = 0,
  kDeadline,      // wall-clock deadline elapsed
  kCancelled,     // cooperative cancellation token fired
  kMemory,        // byte-level memory accounting crossed max_memory_bytes
  kSteps,         // fixpoint step/round budget exhausted
  kDerivations,   // (rule, valuation) firing budget exhausted
  kInventedOids,  // oid-invention budget exhausted
  kExtent,        // type-extent enumeration budget exhausted
  kFault,         // fault injection forced a trip (tests/CI only)
};

// Stable upper-case name, e.g. "DEADLINE", "INVENTED_OIDS"; "NONE" for
// kNone.
const char* TripReasonName(TripReason reason);

// Unified resource limits for one evaluation. The four counters are the
// former ad-hoc EvalOptions budgets; deadline and memory are enforced by
// the Governor's poll. A zero deadline/memory limit means "unlimited" --
// the counters have explicit large defaults instead because IQL programs
// legitimately diverge (Example 3.4.2) and an unbounded default would hang.
struct ResourceLimits {
  uint64_t max_steps_per_stage = 100000;  // fixpoint iterations / rounds
  uint64_t max_invented_oids = 1 << 20;
  uint64_t max_derivations = uint64_t{1} << 26;  // (rule, valuation) firings
  uint64_t extent_budget = uint64_t{1} << 22;    // per-step type extents
  double deadline_seconds = 0;    // 0 = no wall-clock deadline
  uint64_t max_memory_bytes = 0;  // 0 = no memory ceiling
};

// A cooperative cancellation flag, safe to set from any thread or from a
// signal handler (a lock-free atomic store). Evaluation loops observe it
// through Governor::Poll; cancellation is honored at the next poll point,
// never mid-commit, so the instance stays on a completed-step boundary.
class CancellationToken {
 public:
  void Cancel() { flag_.store(true, std::memory_order_release); }
  bool cancelled() const { return flag_.load(std::memory_order_acquire); }
  void Reset() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// Thread-safe byte accounting for one evaluation. ValueStore/ValueArena
// charge approximate node footprints as they intern (see
// ValueStore::set_accountant); the evaluator charges per derived fact.
// `bytes` tracks live charge (side stores release on destruction), `peak`
// the high-water mark the metrics report.
class MemoryAccountant {
 public:
  void Charge(uint64_t n) {
    uint64_t now = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void Release(uint64_t n) { bytes_.fetch_sub(n, std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  // Fault injection (FaultSite::kAllocation) marks a forced allocation
  // failure here; the governor surfaces it as a memory trip at the next
  // poll -- interning itself cannot unwind mid-node.
  void MarkInjectedFailure() {
    injected_failure_.store(true, std::memory_order_relaxed);
  }
  bool injected_failure() const {
    return injected_failure_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<bool> injected_failure_{false};
};

// Everything a tripped Status reports about where the run stopped. The
// counter fields are filled by the evaluator (they live in EvalStats);
// elapsed/memory/trip come from the governor itself.
struct ResourceReport {
  TripReason trip = TripReason::kNone;
  double elapsed_seconds = 0;
  uint64_t memory_bytes = 0;
  uint64_t peak_memory_bytes = 0;
  uint64_t steps = 0;
  uint64_t derivations = 0;
  uint64_t invented_oids = 0;

  // "trip=DEADLINE elapsed=1.204s peak_memory=1048576B steps=17 ..."
  std::string ToString() const;
};

// The evaluation governor: one per evaluation, shared (by pointer) with
// every enumeration loop and worker. Poll() is the single cooperative
// check -- a relaxed atomic load on the fast path, with the wall clock,
// cancellation token, memory accountant, and fault injector re-examined
// every kPollStride calls. A trip is sticky: the first reason wins, every
// later Poll on any thread returns the same error immediately, which is
// what drains in-flight pool workers promptly.
//
// Trips are only raised from enumeration (and step boundaries), never from
// the commit phase, so a tripped evaluation always leaves the instance
// identical to the last completed fixpoint step.
class Governor {
 public:
  explicit Governor(const ResourceLimits& limits,
                    CancellationToken* cancel = nullptr);

  const ResourceLimits& limits() const { return limits_; }
  MemoryAccountant* accountant() { return &accountant_; }

  // Fast cooperative check; call from every enumeration loop. Ok while no
  // limit is exceeded; the sticky trip Status afterwards.
  Status Poll() {
    TripReason t = trip_.load(std::memory_order_relaxed);
    if (t != TripReason::kNone) return TripStatus(t);
    thread_local uint64_t poll_count = 0;
    if ((++poll_count & (kPollStride - 1)) != 0) return Status::Ok();
    return CheckNow();
  }

  // Full check (clock + token + memory + injector), unconditionally. Used
  // at step/round boundaries where polls are rare but cheapness irrelevant.
  Status CheckNow();

  // Trips the governor with `reason` (first trip wins) and returns the
  // trip Status. Used by the evaluator's counter budgets and by tests.
  Status TripNow(TripReason reason);

  bool tripped() const {
    return trip_.load(std::memory_order_relaxed) != TripReason::kNone;
  }
  TripReason trip_reason() const {
    return trip_.load(std::memory_order_relaxed);
  }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  // Elapsed/memory/trip fields of the report; the evaluator merges in its
  // own counters before attaching the report to a Status or the metrics.
  ResourceReport Report() const;

 private:
  // Full checks every this many Poll() calls (per thread). Small enough
  // that a deadline is honored within microseconds of candidate
  // enumeration, large enough that the steady_clock read amortizes away.
  static constexpr uint64_t kPollStride = 1024;

  Status TripStatus(TripReason reason) const;

  ResourceLimits limits_;
  CancellationToken* cancel_;
  MemoryAccountant accountant_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<TripReason> trip_{TripReason::kNone};
};

}  // namespace iqlkit

#endif  // IQLKIT_BASE_GOVERNOR_H_
