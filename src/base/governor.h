#ifndef IQLKIT_BASE_GOVERNOR_H_
#define IQLKIT_BASE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "base/status.h"

namespace iqlkit {

// Why an evaluation was stopped early. kNone means the run is (so far)
// within every limit. Names are stable strings (TripReasonName) used in
// Status messages, EvalMetrics::ToJson, and the iqlsh partial report.
enum class TripReason : uint8_t {
  kNone = 0,
  kDeadline,      // wall-clock deadline elapsed
  kCancelled,     // cooperative cancellation token fired
  kMemory,        // byte-level memory accounting crossed max_memory_bytes
  kSteps,         // fixpoint step/round budget exhausted
  kDerivations,   // (rule, valuation) firing budget exhausted
  kInventedOids,  // oid-invention budget exhausted
  kExtent,        // type-extent enumeration budget exhausted
  kFault,         // fault injection forced a trip (tests/CI only)
  kPreempted,     // scheduler preempted the run under global pressure
};

// Stable upper-case name, e.g. "DEADLINE", "INVENTED_OIDS"; "NONE" for
// kNone.
const char* TripReasonName(TripReason reason);

// Unified resource limits for one evaluation. The four counters are the
// former ad-hoc EvalOptions budgets; deadline and memory are enforced by
// the Governor's poll. A zero deadline/memory limit means "unlimited" --
// the counters have explicit large defaults instead because IQL programs
// legitimately diverge (Example 3.4.2) and an unbounded default would hang.
struct ResourceLimits {
  uint64_t max_steps_per_stage = 100000;  // fixpoint iterations / rounds
  uint64_t max_invented_oids = 1 << 20;
  uint64_t max_derivations = uint64_t{1} << 26;  // (rule, valuation) firings
  uint64_t extent_budget = uint64_t{1} << 22;    // per-step type extents
  double deadline_seconds = 0;    // 0 = no wall-clock deadline
  uint64_t max_memory_bytes = 0;  // 0 = no memory ceiling
  // Full-check cadence of Governor::Poll: the wall clock, cancellation
  // token, memory accountant, and fault injector are re-examined every
  // `poll_stride` calls (rounded up to a power of two, minimum 1). The
  // default amortizes the steady_clock read over enumeration; scheduler
  // preemption-latency tests tighten it so an external trip is observed
  // within a few candidates instead of ~1024.
  uint64_t poll_stride = 1024;
};

// A cooperative cancellation flag, safe to set from any thread or from a
// signal handler (a lock-free atomic store). Evaluation loops observe it
// through Governor::Poll; cancellation is honored at the next poll point,
// never mid-commit, so the instance stays on a completed-step boundary.
class CancellationToken {
 public:
  void Cancel() { flag_.store(true, std::memory_order_release); }
  bool cancelled() const { return flag_.load(std::memory_order_acquire); }
  void Reset() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// Thread-safe byte accounting for one evaluation. ValueStore/ValueArena
// charge approximate node footprints as they intern (see
// ValueStore::set_accountant); the evaluator charges per derived fact.
// `bytes` tracks live charge (side stores release on destruction), `peak`
// the high-water mark the metrics report.
class MemoryAccountant {
 public:
  void Charge(uint64_t n) {
    uint64_t now = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void Release(uint64_t n) { bytes_.fetch_sub(n, std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  // Fault injection (FaultSite::kAllocation) marks a forced allocation
  // failure here; the governor surfaces it as a memory trip at the next
  // poll -- interning itself cannot unwind mid-node.
  void MarkInjectedFailure() {
    injected_failure_.store(true, std::memory_order_relaxed);
  }
  bool injected_failure() const {
    return injected_failure_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<bool> injected_failure_{false};
};

// Everything a tripped Status reports about where the run stopped. The
// counter fields are filled by the evaluator (they live in EvalStats);
// elapsed/memory/trip come from the governor itself.
struct ResourceReport {
  TripReason trip = TripReason::kNone;
  double elapsed_seconds = 0;
  uint64_t memory_bytes = 0;
  uint64_t peak_memory_bytes = 0;
  uint64_t steps = 0;
  uint64_t derivations = 0;
  uint64_t invented_oids = 0;

  // "trip=DEADLINE elapsed=1.204s peak_memory=1048576B steps=17 ..."
  std::string ToString() const;
};

// The evaluation governor: one per evaluation, shared (by pointer) with
// every enumeration loop and worker. Poll() is the single cooperative
// check -- a relaxed atomic load on the fast path, with the wall clock,
// cancellation token, memory accountant, and fault injector re-examined
// every limits.poll_stride calls. A trip is sticky: the first reason wins,
// every later Poll on any thread returns the same error immediately, which
// is what drains in-flight pool workers promptly.
//
// Trips are only raised from enumeration (and step boundaries), never from
// the commit phase, so a tripped evaluation always leaves the instance
// identical to the last completed fixpoint step.
//
// The deadline, memory, and step limits are *effective* limits: they start
// at the construction-time ResourceLimits and an external owner (the
// concurrent-query scheduler) may lower -- never raise -- them mid-run via
// the Tighten* hooks, from any thread. Enumeration loops and step
// boundaries read the effective values, so a tightening takes hold at the
// next poll. Preempt() is the blunt form: an asynchronous sticky
// kPreempted trip, observed exactly like cancellation.
class Governor {
 public:
  explicit Governor(const ResourceLimits& limits,
                    CancellationToken* cancel = nullptr);

  // Construction-time limits. The tightenable trio (deadline, memory,
  // steps) may since have been lowered; see the effective accessors.
  const ResourceLimits& limits() const { return limits_; }
  MemoryAccountant* accountant() { return &accountant_; }

  // Fast cooperative check; call from every enumeration loop. Ok while no
  // limit is exceeded; the sticky trip Status afterwards.
  Status Poll() {
    TripReason t = trip_.load(std::memory_order_relaxed);
    if (t != TripReason::kNone) return TripStatus(t);
    thread_local uint64_t poll_count = 0;
    if ((++poll_count & poll_mask_) != 0) return Status::Ok();
    return CheckNow();
  }

  // Full check (clock + token + memory + injector), unconditionally. Used
  // at step/round boundaries where polls are rare but cheapness irrelevant.
  Status CheckNow();

  // Trips the governor with `reason` (first trip wins) and returns the
  // trip Status. Used by the evaluator's counter budgets and by tests.
  Status TripNow(TripReason reason);

  bool tripped() const {
    return trip_.load(std::memory_order_relaxed) != TripReason::kNone;
  }
  TripReason trip_reason() const {
    return trip_.load(std::memory_order_relaxed);
  }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  // ---- external control (scheduler hooks) --------------------------------
  //
  // All of these are safe to call from any thread while the evaluation
  // runs. Tighten* only ever lower the effective limit; a looser value is
  // ignored, so the per-query ceiling remains an upper bound.

  // Lowers the effective step budget (fixpoint rounds per stage).
  void TightenSteps(uint64_t max_steps);
  // Lowers the effective memory ceiling (bytes; 0 is ignored, not
  // "unlimited" -- tightening can only constrain).
  void TightenMemory(uint64_t max_bytes);
  // Lowers the effective deadline, measured in seconds from the governor's
  // start. TightenDeadline(elapsed_seconds()) trips at the next full check.
  void TightenDeadline(double seconds_from_start);
  // True once any Tighten* call actually lowered a limit -- how the
  // scheduler's retry policy tells a degradation-induced trip (transient,
  // retryable) from an organic trip at the query's own ceiling.
  bool tightened() const {
    return tightened_.load(std::memory_order_relaxed);
  }

  // Asynchronous preemption: sticky kPreempted trip (first trip still
  // wins), observed at the victim's next poll. Returns the trip Status.
  Status Preempt() { return TripNow(TripReason::kPreempted); }

  // Effective (possibly tightened) limits, read by the evaluator at step
  // boundaries and by CheckNow.
  uint64_t max_steps() const {
    return eff_steps_.load(std::memory_order_relaxed);
  }
  uint64_t max_memory_bytes() const {  // UINT64_MAX = unlimited
    return eff_memory_.load(std::memory_order_relaxed);
  }
  double deadline_seconds() const;  // +inf = none

  // Optional callback run at the top of every full check (so once per
  // poll stride per thread, and at step boundaries) while the run is
  // trip-free. The scheduler uses it as its global-pressure sampling
  // point: the hook may Tighten* or Preempt() this or any other governor.
  // Must be installed before the evaluation starts and not changed while
  // it runs; the callee synchronizes its own state.
  void set_pressure_hook(std::function<void()> hook) {
    pressure_hook_ = std::move(hook);
  }

  // Elapsed/memory/trip fields of the report; the evaluator merges in its
  // own counters before attaching the report to a Status or the metrics.
  ResourceReport Report() const;

 private:
  Status TripStatus(TripReason reason) const;

  ResourceLimits limits_;
  CancellationToken* cancel_;
  MemoryAccountant accountant_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<TripReason> trip_{TripReason::kNone};
  // Effective limits (see Tighten*). Deadline is nanoseconds from start_
  // (INT64_MAX = none); memory is bytes (UINT64_MAX = none).
  std::atomic<uint64_t> eff_steps_;
  std::atomic<uint64_t> eff_memory_;
  std::atomic<int64_t> eff_deadline_ns_;
  std::atomic<bool> tightened_{false};
  uint64_t poll_mask_;  // limits_.poll_stride rounded up to 2^k, minus 1
  std::function<void()> pressure_hook_;
};

}  // namespace iqlkit

#endif  // IQLKIT_BASE_GOVERNOR_H_
