#ifndef IQLKIT_BASE_INTERNER_H_
#define IQLKIT_BASE_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace iqlkit {

// Interned string handle. Two Symbols from the same SymbolTable compare
// equal iff their strings are equal, so symbol comparison is O(1).
using Symbol = uint32_t;

inline constexpr Symbol kInvalidSymbol = 0xFFFFFFFFu;

// Bidirectional string <-> Symbol map. Append-only; symbols are dense ids
// starting at 0. Not thread-safe (the library is single-threaded by design;
// evaluators own their universe).
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the symbol for `s`, creating it on first use.
  Symbol Intern(std::string_view s);

  // Returns the symbol for `s` or kInvalidSymbol if never interned.
  Symbol Find(std::string_view s) const;

  // Returns the string for a valid symbol. Precondition: sym < size().
  std::string_view name(Symbol sym) const;

  size_t size() const { return names_.size(); }

 private:
  // deque: element addresses are stable, so the string_view keys in index_
  // (which point into these strings) never dangle. A vector would move
  // small strings' SSO buffers on reallocation.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, Symbol> index_;  // views into names_
};

}  // namespace iqlkit

#endif  // IQLKIT_BASE_INTERNER_H_
