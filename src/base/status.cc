#include "base/status.h"

namespace iqlkit {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kTypeError:
      return "TYPE_ERROR";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kQueueFull:
      return "QUEUE_FULL";
    case StatusCode::kOverloaded:
      return "OVERLOAD";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kNetworkError:
      return "NETWORK_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}
Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, std::string(message));
}
Status AlreadyExistsError(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, std::string(message));
}
Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, std::string(message));
}
Status OutOfRangeError(std::string_view message) {
  return Status(StatusCode::kOutOfRange, std::string(message));
}
Status ResourceExhaustedError(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, std::string(message));
}
Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, std::string(message));
}
Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, std::string(message));
}
Status ParseError(std::string_view message) {
  return Status(StatusCode::kParseError, std::string(message));
}
Status TypeError(std::string_view message) {
  return Status(StatusCode::kTypeError, std::string(message));
}
Status CancelledError(std::string_view message) {
  return Status(StatusCode::kCancelled, std::string(message));
}
Status DeadlineExceededError(std::string_view message) {
  return Status(StatusCode::kDeadlineExceeded, std::string(message));
}
Status QueueFullError(std::string_view message) {
  return Status(StatusCode::kQueueFull, std::string(message));
}
Status OverloadedError(std::string_view message) {
  return Status(StatusCode::kOverloaded, std::string(message));
}
Status UnavailableError(std::string_view message) {
  return Status(StatusCode::kUnavailable, std::string(message));
}
Status NetworkError(std::string_view message) {
  return Status(StatusCode::kNetworkError, std::string(message));
}

}  // namespace iqlkit
