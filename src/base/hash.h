#ifndef IQLKIT_BASE_HASH_H_
#define IQLKIT_BASE_HASH_H_

#include <cstddef>
#include <cstdint>

namespace iqlkit {

// 64-bit mix in the style of MurmurHash3's finalizer; good avalanche for
// hash-consing keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

// Hashes a contiguous range of integral values.
template <typename It>
uint64_t HashRange(It begin, It end, uint64_t seed = 0) {
  uint64_t h = seed;
  for (It it = begin; it != end; ++it) {
    h = HashCombine(h, static_cast<uint64_t>(*it));
  }
  return h;
}

}  // namespace iqlkit

#endif  // IQLKIT_BASE_HASH_H_
