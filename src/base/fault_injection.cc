#include "base/fault_injection.h"

#include <cstdio>
#include <cstdlib>

namespace iqlkit {
namespace {

// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix. Good enough
// to turn (seed, site, counter) into an unbiased coin flip.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Result<double> ParseProbability(std::string_view key, std::string_view text) {
  char* end = nullptr;
  std::string buf(text);
  double p = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || p < 0 || p > 1) {
    return InvalidArgumentError("fault spec: '" + std::string(key) +
                                "' wants a probability in [0,1], got '" +
                                buf + "'");
  }
  return p;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAllocation:
      return "allocation";
    case FaultSite::kWorkerTask:
      return "worker-task";
    case FaultSite::kGovernorTrip:
      return "governor-trip";
    case FaultSite::kScheduler:
      return "scheduler";
    case FaultSite::kStorage:
      return "storage";
    case FaultSite::kNetwork:
      return "network";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Result<FaultInjector::Config> FaultInjector::ParseSpec(std::string_view spec) {
  Config config;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError("fault spec: expected key=value, got '" +
                                  std::string(item) + "'");
    }
    std::string_view key = item.substr(0, eq);
    std::string_view value = item.substr(eq + 1);
    if (key == "seed") {
      char* end = nullptr;
      std::string buf(value);
      config.seed = std::strtoull(buf.c_str(), &end, 10);
      if (end != buf.c_str() + buf.size()) {
        return InvalidArgumentError("fault spec: bad seed '" + buf + "'");
      }
    } else if (key == "alloc") {
      IQL_ASSIGN_OR_RETURN(config.p_alloc, ParseProbability(key, value));
    } else if (key == "task") {
      IQL_ASSIGN_OR_RETURN(config.p_task, ParseProbability(key, value));
    } else if (key == "trip") {
      IQL_ASSIGN_OR_RETURN(config.p_trip, ParseProbability(key, value));
    } else if (key == "sched") {
      IQL_ASSIGN_OR_RETURN(config.p_sched, ParseProbability(key, value));
    } else if (key == "storage") {
      IQL_ASSIGN_OR_RETURN(config.p_storage, ParseProbability(key, value));
    } else if (key == "network") {
      IQL_ASSIGN_OR_RETURN(config.p_network, ParseProbability(key, value));
    } else {
      return InvalidArgumentError("fault spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  return config;
}

void FaultInjector::Configure(const Config& config) {
  config_ = config;
  for (int i = 0; i < kNumFaultSites; ++i) {
    hits_[i].store(0, std::memory_order_relaxed);
    injected_[i].store(0, std::memory_order_relaxed);
  }
}

Status FaultInjector::ConfigureFromEnv() {
  const char* spec = std::getenv("IQLKIT_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return Status::Ok();
  Result<Config> config = ParseSpec(spec);
  if (!config.ok()) {
    // A half-parsed spec must not half-apply: disable injection outright
    // and complain where a CI log will show it, in addition to returning
    // the error for callers that gate on it.
    std::fprintf(stderr,
                 "iqlkit: invalid IQLKIT_FAULTS spec '%s': %s "
                 "(fault injection disabled)\n",
                 spec, config.status().message().c_str());
    Reset();
    return config.status();
  }
  Configure(*config);
  return Status::Ok();
}

bool FaultInjector::ShouldFail(FaultSite site) {
  double p = 0;
  switch (site) {
    case FaultSite::kAllocation:
      p = config_.p_alloc;
      break;
    case FaultSite::kWorkerTask:
      p = config_.p_task;
      break;
    case FaultSite::kGovernorTrip:
      p = config_.p_trip;
      break;
    case FaultSite::kScheduler:
      p = config_.p_sched;
      break;
    case FaultSite::kStorage:
      p = config_.p_storage;
      break;
    case FaultSite::kNetwork:
      p = config_.p_network;
      break;
  }
  if (p <= 0) return false;
  int index = static_cast<int>(site);
  uint64_t n = hits_[index].fetch_add(1, std::memory_order_relaxed);
  uint64_t h = Mix64(config_.seed ^ (uint64_t{0x5151} << (8 * index)) ^
                     Mix64(n + 1));
  // Top 53 bits give a uniform double in [0,1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= p) return false;
  injected_[index].fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace iqlkit
