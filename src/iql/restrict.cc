#include "iql/restrict.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "base/logging.h"

namespace iqlkit {

namespace {

// Shared closure for Definitions 5.1 and 5.2; `base_case` decides which
// variables start out restricted.
template <typename BaseCaseFn>
bool AllBodyVarsRestricted(const Program& program, const Rule& rule,
                           const BaseCaseFn& base_case) {
  std::set<Symbol> body_vars;
  for (const Literal& lit : rule.body) program.CollectVars(lit, &body_vars);
  std::set<Symbol> restricted;
  for (Symbol v : body_vars) {
    if (base_case(rule.var_types.at(v))) restricted.insert(v);
  }
  auto all_restricted = [&](TermId t) {
    std::set<Symbol> vars;
    program.CollectVars(t, &vars);
    for (Symbol v : vars) {
      if (!restricted.count(v)) return false;
    }
    return true;
  };
  auto mark = [&](TermId t, bool* changed) {
    std::set<Symbol> vars;
    program.CollectVars(t, &vars);
    for (Symbol v : vars) {
      if (restricted.insert(v).second) *changed = true;
    }
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& lit : rule.body) {
      if (!lit.positive || lit.kind == Literal::Kind::kChoose) continue;
      if (lit.kind == Literal::Kind::kMembership) {
        if (all_restricted(lit.lhs)) mark(lit.rhs, &changed);
      } else {  // equality: closure runs in both directions
        if (all_restricted(lit.lhs)) mark(lit.rhs, &changed);
        if (all_restricted(lit.rhs)) mark(lit.lhs, &changed);
      }
    }
  }
  return restricted.size() == body_vars.size();
}

// The head predicate node ("leftmost symbol"): the relation or class name
// of a membership head, or the class of x for x^-heads.
Symbol HeadNode(Universe* universe, const Program& program,
                const Rule& rule) {
  const Term& lhs = program.term(rule.head.lhs);
  if (lhs.kind == Term::Kind::kRelName ||
      lhs.kind == Term::Kind::kClassName) {
    return lhs.name;
  }
  IQL_CHECK(lhs.kind == Term::Kind::kDeref);
  const TypeNode& t = universe->types().node(rule.var_types.at(lhs.name));
  IQL_CHECK(t.kind == TypeKind::kClass);
  return t.class_name;
}

}  // namespace

bool IsPtimeRestrictedRule(Universe* universe, const Program& program,
                           const Rule& rule) {
  TypePool& types = universe->types();
  return AllBodyVarsRestricted(program, rule, [&](TypeId t) {
    return !types.ContainsSet(t);  // Def 5.1 (1): set-free type
  });
}

bool IsRangeRestrictedRule(Universe* universe, const Program& program,
                           const Rule& rule) {
  TypePool& types = universe->types();
  return AllBodyVarsRestricted(program, rule, [&](TypeId t) {
    return types.node(t).kind == TypeKind::kClass;  // Def 5.2 (1)
  });
}

bool IsInventionFreeStage(const std::vector<Rule>& stage) {
  for (const Rule& rule : stage) {
    if (!rule.invented_vars.empty()) return false;
  }
  return true;
}

bool IsRecursionFreeStage(Universe* universe, const Program& program,
                          const std::vector<Rule>& stage) {
  // Build G(Gamma) and test acyclicity by DFS.
  std::map<Symbol, std::set<Symbol>> edges;
  for (const Rule& rule : stage) {
    // Sources: predicate names in the body and classes in the types of
    // body variables.
    std::set<Symbol> sources;
    std::set<Symbol> body_vars;
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kChoose) continue;
      program.CollectVars(lit, &body_vars);
      for (TermId t : {lit.lhs, lit.rhs}) {
        // Walk the term for predicate names.
        std::vector<TermId> stack = {t};
        while (!stack.empty()) {
          const Term& term = program.term(stack.back());
          stack.pop_back();
          if (term.kind == Term::Kind::kRelName ||
              term.kind == Term::Kind::kClassName) {
            sources.insert(term.name);
          }
          for (const auto& [attr, child] : term.fields) {
            stack.push_back(child);
          }
          for (TermId child : term.elems) stack.push_back(child);
        }
      }
    }
    for (Symbol v : body_vars) {
      universe->types().CollectClasses(rule.var_types.at(v), &sources);
    }
    // Targets: the head predicate and the classes of invented variables.
    std::set<Symbol> targets = {HeadNode(universe, program, rule)};
    for (Symbol v : rule.invented_vars) {
      const TypeNode& t = universe->types().node(rule.var_types.at(v));
      targets.insert(t.class_name);
    }
    for (Symbol src : sources) {
      for (Symbol dst : targets) edges[src].insert(dst);
    }
  }
  // DFS cycle detection.
  std::map<Symbol, int> state;  // 0 unseen, 1 on stack, 2 done
  std::function<bool(Symbol)> has_cycle = [&](Symbol n) -> bool {
    int& s = state[n];
    if (s == 1) return true;
    if (s == 2) return false;
    s = 1;
    auto it = edges.find(n);
    if (it != edges.end()) {
      for (Symbol next : it->second) {
        if (has_cycle(next)) return true;
      }
    }
    s = 2;
    return false;
  };
  for (const auto& [n, outs] : edges) {
    if (has_cycle(n)) return false;
  }
  return true;
}

RestrictionReport AnalyzeRestrictions(Universe* universe,
                                      const Schema& schema,
                                      const Program& program) {
  (void)schema;
  IQL_CHECK(program.type_checked)
      << "AnalyzeRestrictions requires a type-checked program";
  RestrictionReport report;
  const SymbolTable& syms = universe->symbols();
  for (const auto& stage : program.stages) {
    bool stage_pr = true;
    bool stage_rr = true;
    for (const Rule& rule : stage) {
      if (!IsPtimeRestrictedRule(universe, program, rule)) {
        stage_pr = false;
        report.ptime_restricted = false;
        report.notes.push_back("not ptime-restricted: " +
                               program.RuleToString(rule, syms));
      }
      if (!IsRangeRestrictedRule(universe, program, rule)) {
        stage_rr = false;
        report.range_restricted = false;
        report.notes.push_back("not range-restricted: " +
                               program.RuleToString(rule, syms));
      }
    }
    bool inv_free = IsInventionFreeStage(stage);
    bool rec_free = IsRecursionFreeStage(universe, program, stage);
    if (!inv_free) report.invention_free = false;
    if (!rec_free) report.recursion_free = false;
    bool controlled = rec_free || inv_free;
    if (!controlled) {
      report.notes.push_back(
          "stage has recursion through oid invention (neither "
          "recursion-free nor invention-free)");
    }
    if (!(stage_pr && controlled)) report.in_iql_pr = false;
    if (!(stage_rr && controlled)) report.in_iql_rr = false;
  }
  return report;
}

}  // namespace iqlkit
