#include "iql/ast.h"

#include <algorithm>

#include "base/logging.h"

namespace iqlkit {

TermId Program::Var(Symbol name, SourceSpan span) {
  Term t;
  t.kind = Term::Kind::kVar;
  t.name = name;
  t.span = span;
  return AddTerm(std::move(t));
}

TermId Program::Const(Symbol atom, SourceSpan span) {
  Term t;
  t.kind = Term::Kind::kConst;
  t.name = atom;
  t.span = span;
  return AddTerm(std::move(t));
}

TermId Program::RelName(Symbol name, SourceSpan span) {
  Term t;
  t.kind = Term::Kind::kRelName;
  t.name = name;
  t.span = span;
  return AddTerm(std::move(t));
}

TermId Program::ClassName(Symbol name, SourceSpan span) {
  Term t;
  t.kind = Term::Kind::kClassName;
  t.name = name;
  t.span = span;
  return AddTerm(std::move(t));
}

TermId Program::Deref(Symbol var, SourceSpan span) {
  Term t;
  t.kind = Term::Kind::kDeref;
  t.name = var;
  t.span = span;
  return AddTerm(std::move(t));
}

TermId Program::TupleTerm(std::vector<std::pair<Symbol, TermId>> fields,
                          SourceSpan span) {
  std::sort(fields.begin(), fields.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < fields.size(); ++i) {
    IQL_CHECK(fields[i - 1].first != fields[i].first)
        << "duplicate attribute in tuple term";
  }
  Term t;
  t.kind = Term::Kind::kTuple;
  t.fields = std::move(fields);
  t.span = span;
  return AddTerm(std::move(t));
}

TermId Program::SetTerm(std::vector<TermId> elems, SourceSpan span) {
  Term t;
  t.kind = Term::Kind::kSet;
  t.elems = std::move(elems);
  t.span = span;
  return AddTerm(std::move(t));
}

std::vector<const Rule*> Program::AllRules() const {
  std::vector<const Rule*> out;
  for (const auto& stage : stages) {
    for (const Rule& r : stage) out.push_back(&r);
  }
  return out;
}

void Program::CollectVars(TermId id, std::set<Symbol>* out) const {
  const Term& t = term(id);
  switch (t.kind) {
    case Term::Kind::kVar:
    case Term::Kind::kDeref:
      out->insert(t.name);
      return;
    case Term::Kind::kConst:
    case Term::Kind::kRelName:
    case Term::Kind::kClassName:
      return;
    case Term::Kind::kTuple:
      for (const auto& [attr, child] : t.fields) CollectVars(child, out);
      return;
    case Term::Kind::kSet:
      for (TermId child : t.elems) CollectVars(child, out);
      return;
  }
}

void Program::CollectVars(const Literal& lit, std::set<Symbol>* out) const {
  if (lit.kind == Literal::Kind::kChoose) return;
  CollectVars(lit.lhs, out);
  CollectVars(lit.rhs, out);
}

std::string Program::TermToString(TermId id, const SymbolTable& syms) const {
  const Term& t = term(id);
  switch (t.kind) {
    case Term::Kind::kVar:
      return std::string(syms.name(t.name));
    case Term::Kind::kConst:
      return "\"" + std::string(syms.name(t.name)) + "\"";
    case Term::Kind::kRelName:
    case Term::Kind::kClassName:
      return std::string(syms.name(t.name));
    case Term::Kind::kDeref:
      return std::string(syms.name(t.name)) + "^";
    case Term::Kind::kTuple: {
      bool positional = true;
      for (size_t i = 0; i < t.fields.size(); ++i) {
        if (syms.name(t.fields[i].first) != "#" + std::to_string(i + 1)) {
          positional = false;
          break;
        }
      }
      std::string out = "[";
      bool first = true;
      for (const auto& [attr, child] : t.fields) {
        if (!first) out += ", ";
        first = false;
        if (!positional) out += std::string(syms.name(attr)) + ": ";
        out += TermToString(child, syms);
      }
      return out + "]";
    }
    case Term::Kind::kSet: {
      std::string out = "{";
      bool first = true;
      for (TermId child : t.elems) {
        if (!first) out += ", ";
        first = false;
        out += TermToString(child, syms);
      }
      return out + "}";
    }
  }
  return "?";
}

std::string Program::LiteralToString(const Literal& lit,
                                     const SymbolTable& syms) const {
  switch (lit.kind) {
    case Literal::Kind::kChoose:
      return "choose";
    case Literal::Kind::kMembership: {
      std::string out = lit.positive ? "" : "!";
      out += TermToString(lit.lhs, syms) + "(" +
             TermToString(lit.rhs, syms) + ")";
      return out;
    }
    case Literal::Kind::kEquality:
      return TermToString(lit.lhs, syms) +
             (lit.positive ? " = " : " != ") + TermToString(lit.rhs, syms);
  }
  return "?";
}

std::string Program::RuleToString(const Rule& rule,
                                  const SymbolTable& syms) const {
  std::string out = rule.head_negative ? "!" : "";
  out += LiteralToString(rule.head, syms);
  if (!rule.body.empty()) {
    out += " :- ";
    bool first = true;
    for (const Literal& lit : rule.body) {
      if (!first) out += ", ";
      first = false;
      out += LiteralToString(lit, syms);
    }
  }
  return out + ".";
}

std::string Program::ToString(const SymbolTable& syms) const {
  std::string out;
  bool first_stage = true;
  for (const auto& stage : stages) {
    if (!first_stage) out += ";\n";
    first_stage = false;
    for (const Rule& r : stage) {
      out += RuleToString(r, syms);
      out += "\n";
    }
  }
  return out;
}

}  // namespace iqlkit
