// Register VM for the flat rule IL (iql/il.h). One VmSolver enumerates
// the satisfying valuations of one compiled rule body against a frozen
// instance, through exactly the machinery the tree-walking RuleSolver
// uses -- RelationIndex probes and scans, ExtentEnumerator extents, the
// (possibly per-worker) ValueArena, governor Poll once per candidate --
// so the two engines are byte-for-byte interchangeable wherever the
// evaluator consumes valuations.
//
// The VM also mirrors the solver's parallel protocol: SetProbe makes the
// first executed scan report its candidate-list width and stop (the
// coordinator's probe-then-slice sizing pass), SetSlice clamps that scan
// to [begin, end) so each worker enumerates a contiguous chunk of the
// top-level candidates.

#ifndef IQLKIT_IQL_VM_H_
#define IQLKIT_IQL_VM_H_

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "base/governor.h"
#include "base/interner.h"
#include "base/status.h"
#include "iql/eval.h"
#include "iql/extent.h"
#include "iql/il.h"
#include "iql/index.h"
#include "model/instance.h"
#include "model/type_algebra.h"
#include "model/value.h"

namespace iqlkit::vm {

// The evaluator-owned machinery one VM run executes against; mirrors the
// tree-walker's SolverContext field for field.
struct VmContext {
  ExtentEnumerator* extents = nullptr;   // required
  RelationIndex* index = nullptr;        // null: indexing disabled
  RuleMetrics* rule_metrics = nullptr;   // null: metrics disabled
  ValueArena* values = nullptr;          // required (worker side store aware)
  Governor* governor = nullptr;          // polled once per candidate
};

class VmSolver {
 public:
  using Valuation = std::map<Symbol, ValueId>;
  using Callback = std::function<Status(const Valuation&)>;

  // `cr` and `delta_facts` must outlive the solver. `delta_facts` is the
  // sorted new-facts vector of the rule's delta literal (required exactly
  // when cr.delta_literal is set).
  VmSolver(const il::CompiledRule& cr, const Instance& inst,
           const VmContext& ctx,
           const std::vector<ValueId>* delta_facts = nullptr);

  VmSolver(const VmSolver&) = delete;
  VmSolver& operator=(const VmSolver&) = delete;

  // Runs the compiled body to exhaustion, firing `cb` once per satisfying
  // valuation. A non-ok callback or governor status aborts and propagates.
  Status Solve(const Callback& cb);

  // Probe mode: the first executed scan records its candidate count into
  // `width` and enumeration stops (mirrors RuleSolver::SetProbe).
  void SetProbe(size_t* width) { probe_width_ = width; }

  // Restricts the first executed scan to candidates [begin, end).
  void SetSlice(size_t begin, size_t end) {
    slice_begin_ = begin;
    slice_end_ = end;
  }

 private:
  struct Frame {
    uint32_t pc = 0;    // the scan instruction this frame belongs to
    uint16_t dst = 0;   // register iterated over the candidates
    const std::vector<ValueId>* elems = nullptr;  // null: use `owned`
    std::vector<ValueId> owned;
    size_t idx = 0;
    size_t end = 0;
  };

  const il::CompiledRule& cr_;
  const Instance& inst_;
  VmContext ctx_;
  const std::vector<ValueId>* delta_facts_;
  TypeMembership membership_;

  std::vector<ValueId> regs_;
  std::vector<Frame> frames_;
  Valuation theta_;

  size_t* probe_width_ = nullptr;
  size_t slice_begin_ = 0;
  size_t slice_end_ = static_cast<size_t>(-1);
  bool at_first_branch_ = true;
};

}  // namespace iqlkit::vm

#endif  // IQLKIT_IQL_VM_H_
