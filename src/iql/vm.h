// Register VM for the flat rule IL (iql/il.h). One VmSolver enumerates
// the satisfying valuations of one compiled rule body against a frozen
// instance, through exactly the machinery the tree-walking RuleSolver
// uses -- RelationIndex probes and scans, ExtentEnumerator extents, the
// (possibly per-worker) ValueArena, governor Poll once per candidate --
// so the two engines are byte-for-byte interchangeable wherever the
// evaluator consumes valuations.
//
// The VM also mirrors the solver's parallel protocol: SetProbe makes the
// first executed scan report its candidate-list width and stop (the
// coordinator's probe-then-slice sizing pass), SetSlice clamps that scan
// to [begin, end) so each worker enumerates a contiguous chunk of the
// top-level candidates.

#ifndef IQLKIT_IQL_VM_H_
#define IQLKIT_IQL_VM_H_

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "base/governor.h"
#include "base/interner.h"
#include "base/status.h"
#include "iql/eval.h"
#include "iql/extent.h"
#include "iql/il.h"
#include "iql/index.h"
#include "model/instance.h"
#include "model/type_algebra.h"
#include "model/value.h"

namespace iqlkit::vm {

// Per-rule prepared state: the pure-function-of-the-frozen-instance work
// a Solve call repays on every invocation within a fixpoint round --
// kLoadRel / kLoadClass set materialization, and index-off container-scan
// candidate lists. The coordinator prepares once per (rule, round) before
// forking workers (so side-store-aware arenas resolve the same hash-
// consed ids) and shares the result read-only; the cache is invalidated
// at commit, exactly the stage boundaries the semi-naive delta machinery
// tracks. Probe buckets and kScanSet / kScanDelta lists are not
// cacheable: their inputs vary per outer candidate or per round.
struct PreparedRule {
  struct Entry {
    bool has_value = false;
    ValueId value = kInvalidValue;  // kLoadRel / kLoadClass result
    bool has_elems = false;
    std::vector<ValueId> elems;     // index-off scan candidate list
  };
  std::vector<Entry> at;  // indexed by pc, sized to the rule's code
};

// Builds the prepared state for `cr` against the frozen `inst`. Set
// values are always prepared; candidate lists only when
// `indexing_enabled` is false (with an index, scans borrow the index's
// lists and materialize nothing).
PreparedRule PrepareRule(const il::CompiledRule& cr, const Instance& inst,
                         ValueArena& values, bool indexing_enabled);

// The evaluator-owned machinery one VM run executes against; mirrors the
// tree-walker's SolverContext field for field.
struct VmContext {
  ExtentEnumerator* extents = nullptr;   // required
  RelationIndex* index = nullptr;        // null: indexing disabled
  RuleMetrics* rule_metrics = nullptr;   // null: metrics disabled
  ValueArena* values = nullptr;          // required (worker side store aware)
  Governor* governor = nullptr;          // polled once per candidate
  // Prepared state for the executed rule (must match it pc for pc), or
  // null to materialize per call.
  const PreparedRule* prepared = nullptr;
  // Use the computed-goto dispatch loop when the build has it (GCC/Clang
  // without IQLKIT_FORCE_SWITCH_DISPATCH); ignored -- the switch loop
  // runs -- when it was compiled out. Same op bodies either way.
  bool threaded = true;
};

class VmSolver {
 public:
  using Valuation = std::map<Symbol, ValueId>;
  using Callback = std::function<Status(const Valuation&)>;

  // `cr` and `delta_facts` must outlive the solver. `delta_facts` is the
  // sorted new-facts vector of the rule's delta literal (required exactly
  // when cr.delta_literal is set).
  VmSolver(const il::CompiledRule& cr, const Instance& inst,
           const VmContext& ctx,
           const std::vector<ValueId>* delta_facts = nullptr);

  VmSolver(const VmSolver&) = delete;
  VmSolver& operator=(const VmSolver&) = delete;

  // Runs the compiled body to exhaustion, firing `cb` once per satisfying
  // valuation. A non-ok callback or governor status aborts and propagates.
  Status Solve(const Callback& cb);

  // Probe mode: the first executed scan records its candidate count into
  // `width` and enumeration stops (mirrors RuleSolver::SetProbe).
  void SetProbe(size_t* width) { probe_width_ = width; }

  // Restricts the first executed scan to candidates [begin, end).
  void SetSlice(size_t begin, size_t end) {
    slice_begin_ = begin;
    slice_end_ = end;
  }

 private:
  struct Frame {
    uint32_t pc = 0;    // the scan instruction this frame belongs to
    uint16_t dst = 0;   // register iterated over the candidates
    const std::vector<ValueId>* elems = nullptr;  // null: use `owned`
    std::vector<ValueId> owned;
    size_t idx = 0;
    size_t end = 0;
  };

  const il::CompiledRule& cr_;
  const Instance& inst_;
  VmContext ctx_;
  const std::vector<ValueId>* delta_facts_;
  TypeMembership membership_;

  // Positional strict-probe fast path: for a strict scan whose guard (the
  // next instruction) pins the candidate shape, the constructor resolves
  // each keyed attr to its field position once; candidates of that exact
  // shape then compare keyed fields by position instead of searching the
  // field list (the search remains the fallback for heterogeneous
  // candidates). Indexed by scan pc.
  struct StrictPos {
    bool valid = false;
    uint32_t shape = 0;  // shape index of the guard
    std::vector<std::pair<uint32_t, uint16_t>> keys;  // (field pos, key reg)
  };
  std::vector<StrictPos> strict_pos_;

  std::vector<ValueId> regs_;
  std::vector<Frame> frames_;
  Valuation theta_;

  size_t* probe_width_ = nullptr;
  size_t slice_begin_ = 0;
  size_t slice_end_ = static_cast<size_t>(-1);
  bool at_first_branch_ = true;
};

}  // namespace iqlkit::vm

#endif  // IQLKIT_IQL_VM_H_
