#ifndef IQLKIT_IQL_EVAL_H_
#define IQLKIT_IQL_EVAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "base/governor.h"
#include "base/result.h"
#include "iql/ast.h"
#include "iql/parser.h"
#include "model/instance.h"
#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {

// Per-rule evaluation counters (see EvalMetrics).
struct RuleMetrics {
  int stage = 0;
  int index = 0;        // rule index within its stage
  std::string text;     // the rule, rendered in the concrete syntax
  uint64_t invocations = 0;   // solver runs (one per step, or per delta)
  uint64_t derivations = 0;   // satisfying body valuations enumerated
  uint64_t facts_added = 0;   // new facts this rule actually contributed
  uint64_t index_probes = 0;  // generator visits served by an index bucket
  uint64_t index_scans = 0;   // generator visits that fell back to a scan
  // Partitions this rule's enumeration was split into across the run (0
  // when every solver invocation ran serially).
  uint64_t parallel_partitions = 0;
  // IL instructions the register VM dispatched for this rule (0 under the
  // tree-walker); with EvalOptions::il_opt this is the retired-work number
  // the optimizer shrinks. Fused superinstructions count as their
  // constituent instructions along the executed path (a kDestructure that
  // extracts three fields counts four), so the number stays comparable
  // across EvalOptions::il_fuse; the failing-path approximation is exact
  // actual-dispatch counting via vm_fused_dispatches below.
  uint64_t vm_instructions = 0;
  // Fused superinstruction dispatches (kDestructure, kCmpN, and one per
  // kScanRelKeyed candidate-list resolution). 0 without il_fuse.
  uint64_t vm_fused_dispatches = 0;
  double seconds = 0.0;       // wall time spent inside this rule's solver
};

// Per-fixpoint-round counters (see EvalMetrics).
struct RoundMetrics {
  int stage = 0;
  uint64_t round = 0;
  bool seminaive = false;
  uint64_t delta_facts = 0;  // facts added by this round
  uint64_t total_facts = 0;  // ground facts after the round
  double seconds = 0.0;
};

// Where fixpoint time goes: filled when EvalOptions::metrics is set.
// Per-rule entries appear in program order (all stages); per-round entries
// in execution order. Index counters aggregate over the whole run.
struct EvalMetrics {
  std::vector<RuleMetrics> rules;
  std::vector<RoundMetrics> rounds;
  uint64_t index_builds = 0;
  uint64_t index_probes = 0;
  uint64_t index_hits = 0;  // probes that returned a non-empty bucket
  uint32_t threads = 1;     // resolved worker count the run executed with
  double elapsed_seconds = 0;       // governor wall clock for the run
  uint64_t peak_memory_bytes = 0;   // MemoryAccountant high-water mark
  // Governor trip that ended the run, or kNone on a clean fixpoint.
  // Rendered in ToJson as the stable TripReasonName string.
  TripReason trip = TripReason::kNone;

  // Renders the metrics as a JSON object (stable key order), for --metrics
  // dumps and the benchmark harness.
  std::string ToJson() const;
};

// Budgets and policies for the naive inflationary evaluator (§3.2). IQL is
// computationally complete, so programs can legitimately diverge
// (Example 3.4.2's R3(y,z) :- R3(x,y)); budgets turn divergence into a
// RESOURCE_EXHAUSTED error instead of a hang.
struct EvalOptions {
  // Unified resource limits (counters, wall-clock deadline, memory ceiling)
  // enforced by the evaluation governor. See base/governor.h; the counter
  // fields keep the defaults of the former ad-hoc EvalOptions budgets.
  ResourceLimits limits;

  // Optional cooperative cancellation: when set and Cancel()ed (from any
  // thread, or a signal handler), evaluation stops at the next governor
  // poll with a kCancelled Status and a rolled-back instance.
  CancellationToken* cancel = nullptr;

  // Externally owned governor: when set, the evaluation runs under *this*
  // governor instead of constructing its own -- the handle a concurrent-
  // query scheduler keeps so it can tighten limits (TightenSteps/Memory/
  // Deadline) or Preempt() the run from another thread while it executes.
  // `limits` and `cancel` above are then ignored; every budget comes from
  // the governor (its construction limits for the counters, its effective
  // limits for deadline/memory/steps). The governor must outlive the call
  // and must not be reused across evaluations (its clock and accountant
  // are per-run).
  Governor* governor = nullptr;

  // When set and a governor trip ends the run, receives the instance as of
  // the last completed fixpoint step (the transactional-rollback state).
  // Untouched on success and on non-trip errors (e.g. type errors).
  std::optional<Instance>* partial = nullptr;

  // IQL+ choose policy: which existing oid a choose-rule's head-only
  // variable is bound to. kMinOid/kMaxOid are deterministic; running a
  // program under both and checking O-isomorphism of the results is an
  // effective genericity test (§4.4). kRandom implements N-IQL (the
  // Remark after Thm 4.4.1): choice may violate genericity, yielding the
  // nondeterministic-complete language; seeded for reproducibility.
  enum class ChoosePolicy { kMinOid, kMaxOid, kRandom };
  ChoosePolicy choose_policy = ChoosePolicy::kMinOid;
  uint64_t choose_seed = 0;

  // Ablation switch for bench_ablation: disables the bound-head O(log n)
  // membership fast path in the valuation-domain filter, falling back to
  // the literal scan-and-match formulation. Semantics are identical.
  bool disable_head_fast_path = false;

  // Semi-naive (delta-driven) evaluation for *eligible* stages: every rule
  // head is a positive relation fact, no invention, no choose, no
  // deletions, and no negation over a relation derived in the same stage.
  // On such stages new derivations must use at least one fact added in the
  // previous round, so ranging one body literal over the delta is
  // complete, and relation inserts are idempotent, so over-derivation is
  // harmless -- the fixpoint is bit-for-bit the naive one (the
  // differential test suite cross-checks this). Ineligible stages always
  // run the paper's naive operator.
  bool enable_seminaive = true;

  // Hash-indexed generators: when a positive membership literal ranges
  // over a relation (or a bound set value) with a tuple pattern whose
  // fields are partially bound, the solver probes a per-step hash index on
  // the bound fields instead of scanning the full extent (iql/index.h).
  // Pure optimization -- every candidate is still pattern-matched -- so
  // results are identical with it off; the differential tests check this.
  bool enable_indexing = true;

  // Greedy selectivity-aware generator scheduling: at each choice point the
  // solver picks the eligible generator with the smallest estimated result
  // (bound-field selectivity via model/stats, extent cardinality) instead
  // of the first eligible literal in body order. Join order never changes
  // the set of satisfying valuations, only the work to enumerate them.
  bool enable_scheduling = true;

  // When set, per-rule and per-round evaluation metrics are accumulated
  // here (appended; zero-initialize to measure one run).
  EvalMetrics* metrics = nullptr;

  // Permit negative heads (IQL*, §4.5). Off by default: plain IQL is
  // inflationary, and a deletion rule is rejected at evaluation time.
  bool allow_deletions = false;

  // When set, a one-line summary of every one-step-operator application
  // (stage, step, |val-dom|, facts added so far) is streamed here. Trace
  // lines are emitted by the coordinator after each step's merge, so they
  // stay in step order regardless of num_threads.
  std::ostream* trace = nullptr;

  // Worker-pool parallel enumeration. 0 = hardware concurrency, 1 = the
  // serial evaluator (bit-for-bit today's path, no pool, no probes). With
  // N > 1 workers, each fixpoint step partitions the candidate list at a
  // rule's first multi-way branch across workers; workers enumerate into
  // private buffers against the immutable start-of-round instance,
  // interning new values into per-worker side stores, and a deterministic
  // serial merge rehomes and applies them in canonical (rule, partition,
  // sequence) order. Outputs are bit-for-bit identical for every N.
  uint32_t num_threads = 0;

  // A rule's enumeration only fans out when the candidate list at its
  // first multi-way branch has at least this many entries; below the
  // threshold the serial path is cheaper than the fork/join.
  uint32_t parallel_min_candidates = 16;

  // Rule enumeration engine. kTreeWalk interprets rule bodies with the
  // backtracking tree-walker; kVm lowers each invention-free, choose-free
  // rule to the flat IL of iql/il.h once and runs the register VM of
  // iql/vm.h over it (rules outside that fragment silently fall back to
  // the tree-walker -- their minting / choose order is enumeration-order
  // sensitive). Both engines drive the same index, extent, arena, and
  // governor machinery and produce byte-identical output at every thread
  // count; the differential suites enforce this.
  enum class Engine { kTreeWalk, kVm };
  Engine engine = Engine::kTreeWalk;

  // Run the verified IL optimizer (iql/ilopt.h) over every compiled rule
  // (full and delta variants) before the VM executes it: dead/duplicate
  // instruction elimination, equality propagation, and filter sinking
  // into strict probe keys. Only meaningful with engine == kVm. Pure
  // optimization -- emitted valuations, and therefore WriteFacts output
  // and governor derivation trips, are byte-identical with it off; the
  // differential suites enforce this.
  bool il_opt = false;

  // VM dispatch tier. kThreaded uses the computed-goto (labels-as-values)
  // loop when the build supports it -- GCC/Clang without
  // -DIQLKIT_FORCE_SWITCH_DISPATCH -- replicating the indirect jump at
  // every instruction end so the branch predictor sees one history per
  // opcode pair; kSwitch forces the portable switch loop. Both tiers run
  // the same op bodies, so the choice is invisible in the output; the
  // dispatch-matrix CI job runs the differential suites under both
  // compile-time configurations.
  enum class Dispatch { kSwitch, kThreaded };
  Dispatch dispatch = Dispatch::kThreaded;

  // Run the superinstruction fusion pass (FuseRule, iql/ilopt.h) over
  // every compiled rule after the optimizer: kMatchTuple + kGetField*
  // collapse to kDestructure, strict kScanRel + guard to kScanRelKeyed
  // (the VM compares keyed fields positionally per candidate), and
  // equality-filter runs to kCmpN. Only meaningful with engine == kVm.
  // Pure optimization: emitted valuations and WriteFacts output are
  // byte-identical with it off, enforced by the engine x dispatch x
  // fusion x threads differential matrix.
  bool il_fuse = false;

  // Durable evaluation. When `sink` is set the work instance keeps a
  // per-step journal of fact operations, and after every committed fixpoint
  // step -- the same boundary at which a governor trip would roll back --
  // the sink receives a StepCommit carrying the stage, step, post-step oid
  // counter, the journal, and the post-step instance. A non-OK sink status
  // ends the run with that status and, when `partial` is set, the state as
  // of the last *successfully sunk* step (so on-disk and in-memory agree).
  //
  // When `resume` is set, evaluation continues a recovered partial: `input`
  // must already hold the state as of (resume_stage, resume_step), stages
  // before resume_stage are skipped outright, and the resume stage starts
  // counting at resume_step. A resumed stage always runs the naive
  // operator -- WAL frames are defined over naive step boundaries, and the
  // differential suites prove naive and semi-naive reach bit-identical
  // fixpoints -- and later stages evaluate exactly as in a fresh run. The
  // naive one-step operator is a deterministic function of (instance,
  // rules, choose policy, oid counter), so a resumed run reproduces the
  // uninterrupted run byte-for-byte (kRandom choose excepted).
  struct Durability {
    StepCommitSink* sink = nullptr;
    bool resume = false;
    uint32_t resume_stage = 0;
    uint64_t resume_step = 0;
  };
  Durability durability;
};

struct EvalStats {
  uint64_t steps = 0;         // one-step operator applications
  uint64_t derivations = 0;   // satisfying (rule, valuation) pairs fired
  uint64_t invented_oids = 0;
  uint64_t facts_added = 0;
  uint64_t facts_deleted = 0;
  double elapsed_seconds = 0;      // governor wall clock
  uint64_t peak_memory_bytes = 0;  // accountant high-water mark
  TripReason trip = TripReason::kNone;  // kNone on a clean fixpoint
};

// Evaluates `program` on `input` under the paper's semantics: per stage,
// repeat the one-step inflationary operator gamma_1 -- compute the
// valuation-domain against the step's start instance, pick the (canonical)
// valuation-map, fire all derivations in parallel, apply weak assignment
// per condition (*) -- until a fixpoint. Stages (';') compose sequentially.
//
// `input` must be an instance over a projection of `schema` sharing
// `universe`. The result is the fixpoint instance over the full `schema`;
// project it onto the output schema with Instance::Project.
//
// The program is type checked first (its rules' var_types are filled in).
// Invented oids come from the universe's counter: running the same program
// from universes with different oid seeds yields O-isomorphic outputs
// (Theorem 4.1.3), which the test suite verifies.
Result<Instance> EvaluateProgram(Universe* universe, const Schema& schema,
                                 Program* program, const Instance& input,
                                 const EvalOptions& options = {},
                                 EvalStats* stats = nullptr);

// Convenience wrapper: parse, type check, evaluate, and project a full
// source unit (schema + input/output + program). The input instance must
// be over the unit's input projection.
Result<Instance> RunUnit(Universe* universe, ParsedUnit* unit,
                         const Instance& input,
                         const EvalOptions& options = {},
                         EvalStats* stats = nullptr);

// A static scheduling report against `input`: for each rule, the greedy
// generator order the solver would choose from an empty valuation, with
// extent cardinalities and the fields each probe can be indexed on. Type
// checks the program if needed. This is the `:explain` view -- estimates
// come from the *input* instance, so they describe the first round; the
// solver re-plans dynamically as extents grow.
Result<std::string> ExplainSchedule(Universe* universe, const Schema& schema,
                                    Program* program, const Instance& input);

}  // namespace iqlkit

#endif  // IQLKIT_IQL_EVAL_H_
