#ifndef IQLKIT_IQL_EXTENT_H_
#define IQLKIT_IQL_EXTENT_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/governor.h"
#include "base/result.h"
#include "model/instance.h"
#include "model/type.h"
#include "model/value.h"

namespace iqlkit {

// Enumerates the interpretation ⟦t⟧pi of a type restricted to the current
// instance: the base domain D contributes constants(I) only (the paper's
// valuation condition that constants in theta-x come from constants(I),
// §3.2), classes contribute their current extents, sets contribute all
// finite subsets, tuples cross products, unions set unions.
//
// This is how the naive evaluator ranges a variable that no body literal
// binds -- the unrestricted-variable powerset program of Example 3.4.2 is
// the canonical (exponential) client, so every step is budget-guarded and
// overflow surfaces as RESOURCE_EXHAUSTED rather than a hang.
//
// Intersections are eliminated first (instances have disjoint oid
// assignments, so Prop 2.2.1(2) applies).
//
// The result is ordered by the canonical structural value order, which
// depends only on the values themselves -- parallel workers with private
// side stores enumerate extents in exactly the same sequence. One
// enumerator is built per fixpoint step (or per worker per fan-out); it
// caches per-type results against the step's instance.
class ExtentEnumerator {
 public:
  // Serial form: interns through the universe's shared store.
  ExtentEnumerator(const Instance* instance, uint64_t budget)
      : instance_(instance),
        budget_(budget),
        owned_arena_(
            ValueArena::Passthrough(&instance->universe()->values())),
        arena_(&*owned_arena_) {}

  // Worker form: interns into `arena` (a snapshot over the shared store).
  // The caller must only enumerate intersection-free types in this form --
  // intersection elimination would mutate the shared TypePool.
  ExtentEnumerator(const Instance* instance, uint64_t budget,
                   ValueArena* arena)
      : instance_(instance), budget_(budget), arena_(arena) {}

  // Optional evaluation governor: when set, the subset/cross-product
  // construction loops poll it (deadline/cancel/memory are honored inside
  // a single huge extent, not just between them) and a budget overflow
  // trips it with TripReason::kExtent instead of returning a bare error.
  void set_governor(Governor* governor) { governor_ = governor; }

  // All values of ⟦t⟧ w.r.t. the instance. The returned pointer is owned by
  // the enumerator's cache and stays valid until destruction.
  Result<const std::vector<ValueId>*> Enumerate(TypeId t);

  uint64_t produced() const { return produced_; }

  // Cache effectiveness over the enumerator's lifetime: a hit is an
  // Enumerate call answered from the per-type cache, a miss is one that had
  // to compute the interpretation (including nested Enumerate calls made
  // while computing set/tuple/union extents).
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

 private:
  Result<std::vector<ValueId>> Compute(TypeId t);
  Status Charge(uint64_t n);

  const Instance* instance_;
  uint64_t budget_;
  Governor* governor_ = nullptr;
  std::optional<ValueArena> owned_arena_;
  ValueArena* arena_;
  uint64_t produced_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  std::unordered_map<TypeId, std::vector<ValueId>> cache_;
};

}  // namespace iqlkit

#endif  // IQLKIT_IQL_EXTENT_H_
