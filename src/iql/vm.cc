#include "iql/vm.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "model/universe.h"

// Dispatch tier selection. GCC and Clang support labels-as-values, which
// lets VM_NEXT() replicate the indirect jump at the end of every op body
// (one branch-history slot per opcode pair, the classic threaded-code
// win). -DIQLKIT_FORCE_SWITCH_DISPATCH compiles the threaded loop out --
// the CI dispatch matrix builds both ways -- and unknown compilers fall
// back automatically; either way the same op bodies run through the
// switch loop, so the tiers are observationally identical.
#if defined(__GNUC__) && !defined(IQLKIT_FORCE_SWITCH_DISPATCH)
#define IQLKIT_THREADED_DISPATCH 1
#endif

namespace iqlkit::vm {

// The jump table in Solve is written in Op declaration order; anchor the
// order here so an enum edit cannot silently skew the table.
static_assert(static_cast<size_t>(il::Op::kLoadConst) == 0 &&
                  static_cast<size_t>(il::Op::kCheckDelta) == 14 &&
                  static_cast<size_t>(il::Op::kScanRel) == 15 &&
                  static_cast<size_t>(il::Op::kEmit) == 20 &&
                  static_cast<size_t>(il::Op::kDestructure) == 21 &&
                  static_cast<size_t>(il::Op::kScanRelKeyed) == 22 &&
                  static_cast<size_t>(il::Op::kCmpN) == 23 &&
                  il::kNumOps == 24,
              "the VM jump table tracks the Op declaration order");

PreparedRule PrepareRule(const il::CompiledRule& cr, const Instance& inst,
                         ValueArena& values, bool indexing_enabled) {
  PreparedRule p;
  p.at.resize(cr.code.size());
  for (size_t pc = 0; pc < cr.code.size(); ++pc) {
    const il::Instr& in = cr.code[pc];
    PreparedRule::Entry& e = p.at[pc];
    switch (in.op) {
      case il::Op::kLoadRel: {
        const ValueIdSet& tuples = inst.Relation(in.sym);
        e.value =
            values.Set(std::vector<ValueId>(tuples.begin(), tuples.end()));
        e.has_value = true;
        break;
      }
      case il::Op::kLoadClass: {
        std::vector<ValueId> oids;
        for (Oid o : inst.ClassExtent(in.sym)) oids.push_back(values.OfOid(o));
        e.value = values.Set(std::move(oids));
        e.has_value = true;
        break;
      }
      case il::Op::kScanRel:
      case il::Op::kScanRelKeyed: {
        // With an index the scan borrows the index's candidate list; only
        // the index-off materialized copy is worth caching.
        if (indexing_enabled) break;
        const ValueIdSet& tuples = inst.Relation(in.sym);
        e.elems.assign(tuples.begin(), tuples.end());
        e.has_elems = true;
        break;
      }
      case il::Op::kScanClass: {
        if (indexing_enabled) break;
        for (Oid o : inst.ClassExtent(in.sym)) {
          e.elems.push_back(values.OfOid(o));
        }
        e.has_elems = true;
        break;
      }
      default:
        // kScanSet / kScanDelta candidate lists and probe buckets depend
        // on registers or per-round deltas: not cacheable.
        break;
    }
  }
  return p;
}

VmSolver::VmSolver(const il::CompiledRule& cr, const Instance& inst,
                   const VmContext& ctx,
                   const std::vector<ValueId>* delta_facts)
    : cr_(cr),
      inst_(inst),
      ctx_(ctx),
      delta_facts_(delta_facts),
      membership_(&inst.universe()->types(), ctx.values, &inst) {
  assert(ctx.prepared == nullptr ||
         ctx.prepared->at.size() == cr.code.size());
  // Positional strict-probe fast path: an unfused strict scan is always
  // followed by its kMatchTuple guard (the optimizer's filter sinking
  // requires it and the rebuild keeps them adjacent), so the guard's
  // shape pins where each keyed attr sits in a well-shaped candidate.
  strict_pos_.assign(cr.code.size(), StrictPos{});
  for (size_t pc = 0; pc + 1 < cr.code.size(); ++pc) {
    const il::Instr& sin = cr.code[pc];
    if (!sin.strict || sin.naux == 0) continue;
    if (sin.op != il::Op::kScanRel && sin.op != il::Op::kScanClass &&
        sin.op != il::Op::kScanSet) {
      continue;
    }
    const il::Instr& g = cr.code[pc + 1];
    if (g.op != il::Op::kMatchTuple || g.a != sin.dst) continue;
    if (g.imm >= cr.shapes.size()) continue;
    const std::vector<Symbol>& shape = cr.shapes[g.imm];
    StrictPos sp;
    sp.shape = g.imm;
    bool ok = true;
    for (uint32_t k = 0; k + 1 < sin.naux; k += 2) {
      Symbol attr = static_cast<Symbol>(cr.aux[sin.aux + k]);
      auto it = std::lower_bound(shape.begin(), shape.end(), attr);
      if (it == shape.end() || *it != attr) {
        ok = false;
        break;
      }
      sp.keys.emplace_back(static_cast<uint32_t>(it - shape.begin()),
                           static_cast<uint16_t>(cr.aux[sin.aux + k + 1]));
    }
    if (!ok) continue;
    sp.valid = true;
    strict_pos_[pc] = std::move(sp);
  }
}

// Advance to the next instruction (or backtrack on failure). In the
// threaded tier this replicates the indirect dispatch at every use site;
// otherwise (or when the run asked for the switch tier) it funnels into
// the shared switch dispatcher.
#ifdef IQLKIT_THREADED_DISPATCH
#define VM_NEXT()                                        \
  do {                                                   \
    if (fail) goto backtrack;                            \
    ++pc;                                                \
    if (threaded) {                                      \
      in = &code[pc];                                    \
      fail = false;                                      \
      ++dispatched;                                      \
      goto* kJumpTable[static_cast<size_t>(in->op)];     \
    }                                                    \
    goto dispatch_switch;                                \
  } while (0)
#else
#define VM_NEXT()             \
  do {                        \
    if (fail) goto backtrack; \
    ++pc;                     \
    goto dispatch_switch;     \
  } while (0)
#endif

Status VmSolver::Solve(const Callback& cb) {
  const std::vector<il::Instr>& code = cr_.code;
  ValueArena& values = *ctx_.values;
  const PreparedRule* prepared = ctx_.prepared;
  regs_.assign(cr_.num_regs, kInvalidValue);
  frames_.clear();
  at_first_branch_ = true;

  // Dispatched-instruction counts, accumulated locally and flushed once
  // on every exit path (including the early returns the error macros
  // expand to) by the guard's destructor. Fused ops add their absorbed
  // constituents to `dispatched` along the executed path, keeping
  // vm_instructions comparable across il_fuse; `fused_dispatched` is the
  // exact count of fused-op dispatches.
  uint64_t dispatched = 0;
  uint64_t fused_dispatched = 0;
  struct Flusher {
    const uint64_t& count;
    const uint64_t& fused;
    RuleMetrics* metrics;
    ~Flusher() {
      if (metrics != nullptr) {
        metrics->vm_instructions += count;
        metrics->vm_fused_dispatches += fused;
      }
    }
  } flusher{dispatched, fused_dispatched, ctx_.rule_metrics};

  // A strict scan (Instr::strict, set by the IL optimizer's filter
  // sinking) admits only candidates whose keyed fields equal the key
  // registers exactly -- index buckets prefilter by hash, so this is the
  // re-match the optimizer deleted from the instruction stream. Raw-id
  // comparison is structural because the arena hash-conses (side stores
  // intern structurally-shared values to the shared id). When the
  // constructor pinned field positions (strict_pos_), a candidate of the
  // guard's exact shape compares positionally; anything else falls back
  // to the attr search.
  auto strict_ok = [&](const il::Instr& sin, size_t spc, ValueId cand) {
    const ValueNode& n = values.node(cand);
    if (n.kind != ValueKind::kTuple) return false;
    const StrictPos& sp = strict_pos_[spc];
    if (sp.valid) {
      const std::vector<Symbol>& shape = cr_.shapes[sp.shape];
      if (n.fields.size() == shape.size()) {
        bool aligned = true;
        for (const auto& [pos, reg] : sp.keys) {
          if (n.fields[pos].first != shape[pos]) {
            aligned = false;
            break;
          }
        }
        if (aligned) {
          for (const auto& [pos, reg] : sp.keys) {
            if (n.fields[pos].second != regs_[reg]) return false;
          }
          return true;
        }
      }
      // Heterogeneous candidate: the attr may sit elsewhere; search.
    }
    for (uint32_t k = 0; k + 1 < sin.naux; k += 2) {
      Symbol attr = static_cast<Symbol>(cr_.aux[sin.aux + k]);
      ValueId key = regs_[cr_.aux[sin.aux + k + 1]];
      bool match = false;
      for (const auto& [a, v] : n.fields) {
        if (a == attr) {
          match = v == key;
          break;
        }
      }
      if (!match) return false;
    }
    return true;
  };
  // kScanRelKeyed's admission check: the absorbed kMatchTuple guard
  // (exact shape), then keyed fields by position. A candidate of any
  // other shape is refused here exactly as the guard would have refused
  // it one dispatch later.
  auto keyed_ok = [&](const il::Instr& sin, ValueId cand) {
    const ValueNode& n = values.node(cand);
    const std::vector<Symbol>& shape = cr_.shapes[sin.imm];
    if (n.kind != ValueKind::kTuple || n.fields.size() != shape.size()) {
      return false;
    }
    for (size_t k = 0; k < shape.size(); ++k) {
      if (n.fields[k].first != shape[k]) return false;
    }
    for (uint32_t k = 0; k + 1 < sin.naux; k += 2) {
      if (n.fields[cr_.aux[sin.aux + k]].second !=
          regs_[cr_.aux[sin.aux + k + 1]]) {
        return false;
      }
    }
    return true;
  };
  auto admit = [&](const il::Instr& sin, size_t spc, ValueId cand) {
    return sin.op == il::Op::kScanRelKeyed ? keyed_ok(sin, cand)
                                           : strict_ok(sin, spc, cand);
  };
  auto frame_elem = [](const Frame& f, size_t i) {
    return (f.elems != nullptr) ? (*f.elems)[i] : f.owned[i];
  };

#ifdef IQLKIT_THREADED_DISPATCH
  // Computed-goto jump table, in exact Op declaration order (anchored by
  // the file-scope static_assert); the five unfused scans share one body.
  static const void* const kJumpTable[] = {
      &&op_load_const, &&op_load_rel,    &&op_load_class,
      &&op_deref,      &&op_get_field,   &&op_make_tuple,
      &&op_make_set,   &&op_match_tuple, &&op_bind_type,
      &&op_cmp,        &&op_check_rel,   &&op_check_class,
      &&op_check_in,   &&op_check_eq,    &&op_check_delta,
      &&op_scan,       &&op_scan,        &&op_scan,
      &&op_scan,       &&op_scan,        &&op_emit,
      &&op_destructure, &&op_scan_rel_keyed, &&op_cmp_n,
  };
  static_assert(sizeof(kJumpTable) / sizeof(kJumpTable[0]) == il::kNumOps,
                "jump table must cover every opcode");
  const bool threaded = ctx_.threaded;
#endif

  size_t pc = 0;
  const il::Instr* in = nullptr;
  bool fail = false;
  Frame f;  // scan-resolution workspace, committed into frames_
  bool present = true;

#ifdef IQLKIT_THREADED_DISPATCH
  if (threaded) {
    in = &code[pc];
    fail = false;
    ++dispatched;
    goto* kJumpTable[static_cast<size_t>(in->op)];
  }
#endif
dispatch_switch:
  in = &code[pc];
  fail = false;
  ++dispatched;
  switch (in->op) {
    case il::Op::kLoadConst: goto op_load_const;
    case il::Op::kLoadRel: goto op_load_rel;
    case il::Op::kLoadClass: goto op_load_class;
    case il::Op::kDeref: goto op_deref;
    case il::Op::kGetField: goto op_get_field;
    case il::Op::kMakeTuple: goto op_make_tuple;
    case il::Op::kMakeSet: goto op_make_set;
    case il::Op::kMatchTuple: goto op_match_tuple;
    case il::Op::kBindType: goto op_bind_type;
    case il::Op::kCmp: goto op_cmp;
    case il::Op::kCheckRel: goto op_check_rel;
    case il::Op::kCheckClass: goto op_check_class;
    case il::Op::kCheckIn: goto op_check_in;
    case il::Op::kCheckEq: goto op_check_eq;
    case il::Op::kCheckDelta: goto op_check_delta;
    case il::Op::kScanRel:
    case il::Op::kScanClass:
    case il::Op::kScanSet:
    case il::Op::kScanDelta:
    case il::Op::kScanExtent: goto op_scan;
    case il::Op::kEmit: goto op_emit;
    case il::Op::kDestructure: goto op_destructure;
    case il::Op::kScanRelKeyed: goto op_scan_rel_keyed;
    case il::Op::kCmpN: goto op_cmp_n;
  }
  // The switch is exhaustive over Op; not reached.
  fail = true;
  VM_NEXT();

op_load_const: {
  regs_[in->dst] = values.ConstSymbol(in->sym);
  VM_NEXT();
}
op_load_rel: {
  if (prepared != nullptr && prepared->at[pc].has_value) {
    regs_[in->dst] = prepared->at[pc].value;
  } else {
    const ValueIdSet& tuples = inst_.Relation(in->sym);
    regs_[in->dst] =
        values.Set(std::vector<ValueId>(tuples.begin(), tuples.end()));
  }
  VM_NEXT();
}
op_load_class: {
  if (prepared != nullptr && prepared->at[pc].has_value) {
    regs_[in->dst] = prepared->at[pc].value;
  } else {
    std::vector<ValueId> oids;
    for (Oid o : inst_.ClassExtent(in->sym)) oids.push_back(values.OfOid(o));
    regs_[in->dst] = values.Set(std::move(oids));
  }
  VM_NEXT();
}
op_deref: {
  const ValueNode& n = values.node(regs_[in->a]);
  if (n.kind != ValueKind::kOid) {
    fail = true;
  } else {
    std::optional<ValueId> v = inst_.ValueOf(n.oid);
    if (!v.has_value()) {
      fail = true;  // nu undefined, as EvalTerm's nullopt
    } else {
      regs_[in->dst] = *v;
    }
  }
  VM_NEXT();
}
op_get_field: {
  // Guarded by a dominating kMatchTuple / kDestructure / kScanRelKeyed.
  regs_[in->dst] = values.node(regs_[in->a]).fields[in->imm].second;
  VM_NEXT();
}
op_make_tuple: {
  const std::vector<Symbol>& shape = cr_.shapes[in->imm];
  std::vector<std::pair<Symbol, ValueId>> fields;
  fields.reserve(in->naux);
  for (uint32_t k = 0; k < in->naux; ++k) {
    fields.emplace_back(shape[k], regs_[cr_.aux[in->aux + k]]);
  }
  regs_[in->dst] = values.Tuple(std::move(fields));
  VM_NEXT();
}
op_make_set: {
  std::vector<ValueId> elems;
  elems.reserve(in->naux);
  for (uint32_t k = 0; k < in->naux; ++k) {
    elems.push_back(regs_[cr_.aux[in->aux + k]]);
  }
  regs_[in->dst] = values.Set(std::move(elems));
  VM_NEXT();
}
op_match_tuple: {
  const ValueNode& n = values.node(regs_[in->a]);
  const std::vector<Symbol>& shape = cr_.shapes[in->imm];
  if (n.kind != ValueKind::kTuple || n.fields.size() != shape.size()) {
    fail = true;
  } else {
    for (size_t k = 0; k < shape.size(); ++k) {
      if (n.fields[k].first != shape[k]) {
        fail = true;
        break;
      }
    }
  }
  VM_NEXT();
}
op_bind_type: {
  fail = !membership_.Contains(static_cast<TypeId>(in->imm), regs_[in->a]);
  VM_NEXT();
}
op_cmp: {
  fail = regs_[in->a] != regs_[in->b];
  VM_NEXT();
}
op_check_rel: {
  // A side-store id is structurally new, hence never in a shared
  // relation extent; otherwise raw-id membership is structural.
  ValueId v = regs_[in->b];
  bool contains = !values.IsSide(v) && inst_.RelationContains(in->sym, v);
  fail = contains != in->pol;
  VM_NEXT();
}
op_check_class: {
  // No side shortcut here: a side OfOid value is structurally equal
  // to the shared one for the same oid.
  const ValueNode& n = values.node(regs_[in->b]);
  bool contains =
      n.kind == ValueKind::kOid && inst_.OidInClass(n.oid, in->sym);
  fail = contains != in->pol;
  VM_NEXT();
}
op_check_in: {
  const ValueNode& n = values.node(regs_[in->a]);
  if (n.kind != ValueKind::kSet) {
    fail = true;  // non-set lhs fails either polarity (mirror Check)
  } else {
    fail = values.ElemsContain(n.elems, regs_[in->b]) != in->pol;
  }
  VM_NEXT();
}
op_check_eq: {
  fail = (regs_[in->a] == regs_[in->b]) != in->pol;
  VM_NEXT();
}
op_check_delta: {
  fail = delta_facts_ == nullptr ||
         !std::binary_search(delta_facts_->begin(), delta_facts_->end(),
                             regs_[in->b]);
  VM_NEXT();
}

op_scan: {
  // Resolve the candidate list: delta facts, an extent, an index probe
  // or scan, a prepared list, or a materialized copy when indexing is
  // off. `present` distinguishes an unresolved list -- a probe that
  // missed every bucket, or a non-set container -- from a resolved but
  // empty one: only a resolved list consumes the first-branch
  // probe/slice state, exactly as in GenerateMembership.
  f = Frame();
  f.pc = static_cast<uint32_t>(pc);
  f.dst = in->dst;
  present = true;
  if (in->op == il::Op::kScanDelta) {
    if (delta_facts_ == nullptr) {
      present = false;
    } else {
      f.elems = delta_facts_;
    }
  } else if (in->op == il::Op::kScanExtent) {
    auto extent = ctx_.extents->Enumerate(static_cast<TypeId>(in->imm));
    if (!extent.ok()) return extent.status();
    f.elems = *extent;
  } else if (in->op == il::Op::kScanSet &&
             values.node(regs_[in->a]).kind != ValueKind::kSet) {
    present = false;  // the tree-walker's "impossible" container
  } else {
    RelationIndex::Container c;
    if (in->op == il::Op::kScanRel) {
      c = RelationIndex::Container::Relation(in->sym);
    } else if (in->op == il::Op::kScanClass) {
      c = RelationIndex::Container::Class(in->sym);
    } else {
      c = RelationIndex::Container::SetValue(regs_[in->a]);
    }
    if (ctx_.index != nullptr && in->naux > 0) {
      std::vector<Symbol> attrs;
      std::vector<ValueId> key;
      attrs.reserve(in->naux / 2);
      key.reserve(in->naux / 2);
      for (uint32_t k = 0; k + 1 < in->naux; k += 2) {
        attrs.push_back(static_cast<Symbol>(cr_.aux[in->aux + k]));
        key.push_back(regs_[cr_.aux[in->aux + k + 1]]);
      }
      const std::vector<ValueId>* bucket = ctx_.index->Probe(c, attrs, key);
      if (ctx_.rule_metrics != nullptr) {
        ++ctx_.rule_metrics->index_probes;
      }
      if (bucket == nullptr) {
        present = false;
      } else {
        f.elems = bucket;
      }
    } else if (ctx_.index != nullptr) {
      f.elems = &ctx_.index->Elems(c);
      if (ctx_.rule_metrics != nullptr) {
        ++ctx_.rule_metrics->index_scans;
      }
    } else {
      // No index: a prepared candidate list when the coordinator built
      // one, else materialize a private copy, as the tree-walker's
      // ContainerElems does per generator visit.
      if (prepared != nullptr && prepared->at[pc].has_elems) {
        f.elems = &prepared->at[pc].elems;
      } else if (in->op == il::Op::kScanRel) {
        const ValueIdSet& tuples = inst_.Relation(in->sym);
        f.owned.assign(tuples.begin(), tuples.end());
      } else if (in->op == il::Op::kScanClass) {
        for (Oid o : inst_.ClassExtent(in->sym)) {
          f.owned.push_back(values.OfOid(o));
        }
      } else {
        f.owned = values.node(regs_[in->a]).elems;
      }
      if (ctx_.rule_metrics != nullptr) {
        ++ctx_.rule_metrics->index_scans;
      }
    }
  }
  goto scan_commit;
}

op_scan_rel_keyed: {
  // Fused strict kScanRel: candidates are exactly shapes[imm] tuples
  // whose keyed fields (by position) equal the key registers; keyed_ok
  // checks the absorbed guard per candidate.
  ++fused_dispatched;
  f = Frame();
  f.pc = static_cast<uint32_t>(pc);
  f.dst = in->dst;
  present = true;
  if (ctx_.index != nullptr) {
    // Probe on the attrs the positions name: the shape is attr-sorted,
    // so ascending positions give the Probe order's ascending attrs.
    RelationIndex::Container c = RelationIndex::Container::Relation(in->sym);
    const std::vector<Symbol>& shape = cr_.shapes[in->imm];
    std::vector<Symbol> attrs;
    std::vector<ValueId> key;
    attrs.reserve(in->naux / 2);
    key.reserve(in->naux / 2);
    for (uint32_t k = 0; k + 1 < in->naux; k += 2) {
      attrs.push_back(shape[cr_.aux[in->aux + k]]);
      key.push_back(regs_[cr_.aux[in->aux + k + 1]]);
    }
    const std::vector<ValueId>* bucket = ctx_.index->Probe(c, attrs, key);
    if (ctx_.rule_metrics != nullptr) {
      ++ctx_.rule_metrics->index_probes;
    }
    if (bucket == nullptr) {
      present = false;
    } else {
      f.elems = bucket;
    }
  } else {
    if (prepared != nullptr && prepared->at[pc].has_elems) {
      f.elems = &prepared->at[pc].elems;
    } else {
      const ValueIdSet& tuples = inst_.Relation(in->sym);
      f.owned.assign(tuples.begin(), tuples.end());
    }
    if (ctx_.rule_metrics != nullptr) {
      ++ctx_.rule_metrics->index_scans;
    }
  }
  goto scan_commit;
}

scan_commit: {
  size_t lo = 0;
  size_t hi = 0;
  if (present) {
    hi = (f.elems != nullptr) ? f.elems->size() : f.owned.size();
    // The first executed scan is the parallel partition point: report
    // its width in probe mode, or clamp to this worker's slice of the
    // candidates.
    if (at_first_branch_) {
      at_first_branch_ = false;
      if (probe_width_ != nullptr) {
        *probe_width_ = hi;
        return Status::Ok();
      }
      lo = std::min(slice_begin_, hi);
      hi = std::min(slice_end_, hi);
    }
  }
  f.idx = lo;
  f.end = hi;
  // Strict skip is lazy and runs AFTER the probe/slice bookkeeping: the
  // parallel protocol reports and partitions the unfiltered candidate
  // list, so optimized probe and slice runs agree.
  if (in->strict) {
    while (f.idx < f.end && !admit(*in, pc, frame_elem(f, f.idx))) {
      ++f.idx;
    }
  }
  if (f.idx >= f.end) {
    fail = true;
    VM_NEXT();
  }
  frames_.push_back(std::move(f));
  f = Frame();  // normalize the moved-from workspace
  // An admitted keyed-scan candidate passed the absorbed guard: count the
  // kMatchTuple dispatch the unfused tier would have retired.
  if (in->op == il::Op::kScanRelKeyed) ++dispatched;
  // Poll once per *admitted* candidate, as the tree-walker does per
  // generator visit; strictly-skipped candidates are not poll points,
  // which only coarsens cancellation granularity.
  if (ctx_.governor != nullptr) {
    IQL_RETURN_IF_ERROR(ctx_.governor->Poll());
  }
  {
    const Frame& top = frames_.back();
    regs_[top.dst] =
        (top.elems != nullptr) ? (*top.elems)[top.idx] : top.owned[top.idx];
  }
  VM_NEXT();
}

op_emit: {
  theta_.clear();
  for (const auto& [var, r] : cr_.theta) {
    theta_.emplace_hint(theta_.end(), var, regs_[r]);
  }
  IQL_RETURN_IF_ERROR(cb(theta_));
  fail = true;  // backtrack into the next valuation
  VM_NEXT();
}

op_destructure: {
  // The absorbed kMatchTuple guard, then every absorbed kGetField, in
  // one dispatch.
  ++fused_dispatched;
  const ValueNode& n = values.node(regs_[in->a]);
  const std::vector<Symbol>& shape = cr_.shapes[in->imm];
  if (n.kind != ValueKind::kTuple || n.fields.size() != shape.size()) {
    fail = true;
  } else {
    for (size_t k = 0; k < shape.size(); ++k) {
      if (n.fields[k].first != shape[k]) {
        fail = true;
        break;
      }
    }
  }
  if (!fail) {
    for (uint32_t k = 0; k + 1 < in->naux; k += 2) {
      regs_[cr_.aux[in->aux + k + 1]] = n.fields[cr_.aux[in->aux + k]].second;
    }
    dispatched += in->naux / 2;  // the absorbed kGetFields
  }
  VM_NEXT();
}

op_cmp_n: {
  // A fused equality run: FAIL on the first unequal pair. Constituent
  // accounting adds every pair checked, inclusive of the failing one;
  // the dispatch itself already counted the first.
  ++fused_dispatched;
  uint32_t k = 0;
  for (; k + 1 < in->naux; k += 2) {
    if (regs_[cr_.aux[in->aux + k]] != regs_[cr_.aux[in->aux + k + 1]]) {
      fail = true;
      break;
    }
  }
  dispatched += (fail ? k / 2 + 1 : in->naux / 2) - 1;
  VM_NEXT();
}

backtrack:
  // Backtrack: advance the innermost open scan, or finish.
  for (;;) {
    if (frames_.empty()) return Status::Ok();
    Frame& fr = frames_.back();
    const il::Instr& sin = code[fr.pc];
    ++fr.idx;
    if (sin.strict) {
      while (fr.idx < fr.end && !admit(sin, fr.pc, frame_elem(fr, fr.idx))) {
        ++fr.idx;
      }
    }
    if (fr.idx >= fr.end) {
      frames_.pop_back();
      continue;
    }
    if (sin.op == il::Op::kScanRelKeyed) ++dispatched;  // the absorbed guard
    if (ctx_.governor != nullptr) {
      IQL_RETURN_IF_ERROR(ctx_.governor->Poll());
    }
    regs_[fr.dst] =
        (fr.elems != nullptr) ? (*fr.elems)[fr.idx] : fr.owned[fr.idx];
    pc = fr.pc + 1;
#ifdef IQLKIT_THREADED_DISPATCH
    if (threaded) {
      in = &code[pc];
      fail = false;
      ++dispatched;
      goto* kJumpTable[static_cast<size_t>(in->op)];
    }
#endif
    goto dispatch_switch;
  }
}

#undef VM_NEXT

}  // namespace iqlkit::vm
