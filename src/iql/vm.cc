#include "iql/vm.h"

#include <algorithm>
#include <utility>

#include "model/universe.h"

namespace iqlkit::vm {

VmSolver::VmSolver(const il::CompiledRule& cr, const Instance& inst,
                   const VmContext& ctx,
                   const std::vector<ValueId>* delta_facts)
    : cr_(cr),
      inst_(inst),
      ctx_(ctx),
      delta_facts_(delta_facts),
      membership_(&inst.universe()->types(), ctx.values, &inst) {}

Status VmSolver::Solve(const Callback& cb) {
  const std::vector<il::Instr>& code = cr_.code;
  ValueArena& values = *ctx_.values;
  regs_.assign(cr_.num_regs, kInvalidValue);
  frames_.clear();
  at_first_branch_ = true;

  // Dispatched-instruction count, accumulated locally and flushed once on
  // every exit path (including the early returns the error macros expand
  // to) by the guard's destructor.
  uint64_t dispatched = 0;
  struct Flusher {
    const uint64_t& count;
    RuleMetrics* metrics;
    ~Flusher() {
      if (metrics != nullptr) metrics->vm_instructions += count;
    }
  } flusher{dispatched, ctx_.rule_metrics};

  // A strict scan (Instr::strict, set by the IL optimizer's filter
  // sinking) admits only candidates whose keyed fields equal the key
  // registers exactly -- index buckets prefilter by hash, so this is the
  // re-match the optimizer deleted from the instruction stream. Raw-id
  // comparison is structural because the arena hash-conses (side stores
  // intern structurally-shared values to the shared id).
  auto strict_ok = [&](const il::Instr& sin, ValueId cand) {
    const ValueNode& n = values.node(cand);
    if (n.kind != ValueKind::kTuple) return false;
    for (uint32_t k = 0; k + 1 < sin.naux; k += 2) {
      Symbol attr = static_cast<Symbol>(cr_.aux[sin.aux + k]);
      ValueId key = regs_[cr_.aux[sin.aux + k + 1]];
      bool match = false;
      for (const auto& [a, v] : n.fields) {
        if (a == attr) {
          match = v == key;
          break;
        }
      }
      if (!match) return false;
    }
    return true;
  };
  auto frame_elem = [](const Frame& f, size_t i) {
    return (f.elems != nullptr) ? (*f.elems)[i] : f.owned[i];
  };

  size_t pc = 0;
  for (;;) {
    const il::Instr& in = code[pc];
    bool fail = false;
    ++dispatched;
    switch (in.op) {
      case il::Op::kLoadConst:
        regs_[in.dst] = values.ConstSymbol(in.sym);
        break;
      case il::Op::kLoadRel: {
        const ValueIdSet& tuples = inst_.Relation(in.sym);
        regs_[in.dst] =
            values.Set(std::vector<ValueId>(tuples.begin(), tuples.end()));
        break;
      }
      case il::Op::kLoadClass: {
        std::vector<ValueId> oids;
        for (Oid o : inst_.ClassExtent(in.sym)) oids.push_back(values.OfOid(o));
        regs_[in.dst] = values.Set(std::move(oids));
        break;
      }
      case il::Op::kDeref: {
        const ValueNode& n = values.node(regs_[in.a]);
        if (n.kind != ValueKind::kOid) {
          fail = true;
          break;
        }
        std::optional<ValueId> v = inst_.ValueOf(n.oid);
        if (!v.has_value()) {
          fail = true;  // nu undefined, as EvalTerm's nullopt
          break;
        }
        regs_[in.dst] = *v;
        break;
      }
      case il::Op::kGetField:
        // Guarded by the kMatchTuple the compiler emits first.
        regs_[in.dst] = values.node(regs_[in.a]).fields[in.imm].second;
        break;
      case il::Op::kMakeTuple: {
        const std::vector<Symbol>& shape = cr_.shapes[in.imm];
        std::vector<std::pair<Symbol, ValueId>> fields;
        fields.reserve(in.naux);
        for (uint32_t k = 0; k < in.naux; ++k) {
          fields.emplace_back(shape[k], regs_[cr_.aux[in.aux + k]]);
        }
        regs_[in.dst] = values.Tuple(std::move(fields));
        break;
      }
      case il::Op::kMakeSet: {
        std::vector<ValueId> elems;
        elems.reserve(in.naux);
        for (uint32_t k = 0; k < in.naux; ++k) {
          elems.push_back(regs_[cr_.aux[in.aux + k]]);
        }
        regs_[in.dst] = values.Set(std::move(elems));
        break;
      }
      case il::Op::kMatchTuple: {
        const ValueNode& n = values.node(regs_[in.a]);
        const std::vector<Symbol>& shape = cr_.shapes[in.imm];
        if (n.kind != ValueKind::kTuple || n.fields.size() != shape.size()) {
          fail = true;
          break;
        }
        for (size_t k = 0; k < shape.size(); ++k) {
          if (n.fields[k].first != shape[k]) {
            fail = true;
            break;
          }
        }
        break;
      }
      case il::Op::kBindType:
        fail = !membership_.Contains(static_cast<TypeId>(in.imm), regs_[in.a]);
        break;
      case il::Op::kCmp:
        fail = regs_[in.a] != regs_[in.b];
        break;
      case il::Op::kCheckRel: {
        // A side-store id is structurally new, hence never in a shared
        // relation extent; otherwise raw-id membership is structural.
        ValueId v = regs_[in.b];
        bool contains = !values.IsSide(v) && inst_.RelationContains(in.sym, v);
        fail = contains != in.pol;
        break;
      }
      case il::Op::kCheckClass: {
        // No side shortcut here: a side OfOid value is structurally equal
        // to the shared one for the same oid.
        const ValueNode& n = values.node(regs_[in.b]);
        bool contains =
            n.kind == ValueKind::kOid && inst_.OidInClass(n.oid, in.sym);
        fail = contains != in.pol;
        break;
      }
      case il::Op::kCheckIn: {
        const ValueNode& n = values.node(regs_[in.a]);
        if (n.kind != ValueKind::kSet) {
          fail = true;  // non-set lhs fails either polarity (mirror Check)
          break;
        }
        fail = values.ElemsContain(n.elems, regs_[in.b]) != in.pol;
        break;
      }
      case il::Op::kCheckEq:
        fail = (regs_[in.a] == regs_[in.b]) != in.pol;
        break;
      case il::Op::kCheckDelta:
        fail = delta_facts_ == nullptr ||
               !std::binary_search(delta_facts_->begin(), delta_facts_->end(),
                                   regs_[in.b]);
        break;

      case il::Op::kScanRel:
      case il::Op::kScanClass:
      case il::Op::kScanSet:
      case il::Op::kScanDelta:
      case il::Op::kScanExtent: {
        // Resolve the candidate list: delta facts, an extent, an index
        // probe or scan, or a materialized copy when indexing is off.
        // `present` distinguishes an *empty bucket probe* (nullptr, the
        // first branch stays unconsumed, as in the tree-walker) from an
        // empty-but-resolved list.
        Frame f;
        f.pc = static_cast<uint32_t>(pc);
        f.dst = in.dst;
        // `present` distinguishes an unresolved list -- a probe that
        // missed every bucket, or a non-set container -- from a resolved
        // but empty one: only a resolved list consumes the first-branch
        // probe/slice state, exactly as in GenerateMembership.
        bool present = true;
        if (in.op == il::Op::kScanDelta) {
          if (delta_facts_ == nullptr) {
            present = false;
          } else {
            f.elems = delta_facts_;
          }
        } else if (in.op == il::Op::kScanExtent) {
          auto extent = ctx_.extents->Enumerate(static_cast<TypeId>(in.imm));
          if (!extent.ok()) return extent.status();
          f.elems = *extent;
        } else if (in.op == il::Op::kScanSet &&
                   values.node(regs_[in.a]).kind != ValueKind::kSet) {
          present = false;  // the tree-walker's "impossible" container
        } else {
          RelationIndex::Container c;
          if (in.op == il::Op::kScanRel) {
            c = RelationIndex::Container::Relation(in.sym);
          } else if (in.op == il::Op::kScanClass) {
            c = RelationIndex::Container::Class(in.sym);
          } else {
            c = RelationIndex::Container::SetValue(regs_[in.a]);
          }
          if (ctx_.index != nullptr && in.naux > 0) {
            std::vector<Symbol> attrs;
            std::vector<ValueId> key;
            attrs.reserve(in.naux / 2);
            key.reserve(in.naux / 2);
            for (uint32_t k = 0; k + 1 < in.naux; k += 2) {
              attrs.push_back(static_cast<Symbol>(cr_.aux[in.aux + k]));
              key.push_back(regs_[cr_.aux[in.aux + k + 1]]);
            }
            const std::vector<ValueId>* bucket =
                ctx_.index->Probe(c, attrs, key);
            if (ctx_.rule_metrics != nullptr) {
              ++ctx_.rule_metrics->index_probes;
            }
            if (bucket == nullptr) {
              present = false;
            } else {
              f.elems = bucket;
            }
          } else if (ctx_.index != nullptr) {
            f.elems = &ctx_.index->Elems(c);
            if (ctx_.rule_metrics != nullptr) {
              ++ctx_.rule_metrics->index_scans;
            }
          } else {
            // No index: materialize a private copy, as the tree-walker's
            // ContainerElems does per generator visit.
            if (in.op == il::Op::kScanRel) {
              const ValueIdSet& tuples = inst_.Relation(in.sym);
              f.owned.assign(tuples.begin(), tuples.end());
            } else if (in.op == il::Op::kScanClass) {
              for (Oid o : inst_.ClassExtent(in.sym)) {
                f.owned.push_back(values.OfOid(o));
              }
            } else {
              f.owned = values.node(regs_[in.a]).elems;
            }
            if (ctx_.rule_metrics != nullptr) {
              ++ctx_.rule_metrics->index_scans;
            }
          }
        }
        size_t lo = 0;
        size_t hi = 0;
        if (present) {
          hi = (f.elems != nullptr) ? f.elems->size() : f.owned.size();
          // The first executed scan is the parallel partition point:
          // report its width in probe mode, or clamp to this worker's
          // slice of the candidates.
          if (at_first_branch_) {
            at_first_branch_ = false;
            if (probe_width_ != nullptr) {
              *probe_width_ = hi;
              return Status::Ok();
            }
            lo = std::min(slice_begin_, hi);
            hi = std::min(slice_end_, hi);
          }
        }
        f.idx = lo;
        f.end = hi;
        // Strict skip is lazy and runs AFTER the probe/slice bookkeeping:
        // the parallel protocol reports and partitions the unfiltered
        // candidate list, so optimized probe and slice runs agree.
        if (in.strict) {
          while (f.idx < f.end && !strict_ok(in, frame_elem(f, f.idx))) {
            ++f.idx;
          }
        }
        if (f.idx >= f.end) {
          fail = true;
          break;
        }
        frames_.push_back(std::move(f));
        // Poll once per *admitted* candidate, as the tree-walker does per
        // generator visit; strictly-skipped candidates are not poll
        // points, which only coarsens cancellation granularity.
        if (ctx_.governor != nullptr) {
          IQL_RETURN_IF_ERROR(ctx_.governor->Poll());
        }
        const Frame& top = frames_.back();
        regs_[top.dst] =
            (top.elems != nullptr) ? (*top.elems)[top.idx] : top.owned[top.idx];
        break;
      }

      case il::Op::kEmit: {
        theta_.clear();
        for (const auto& [var, r] : cr_.theta) {
          theta_.emplace_hint(theta_.end(), var, regs_[r]);
        }
        IQL_RETURN_IF_ERROR(cb(theta_));
        fail = true;  // backtrack into the next valuation
        break;
      }
    }

    if (!fail) {
      ++pc;
      continue;
    }
    // Backtrack: advance the innermost open scan, or finish.
    for (;;) {
      if (frames_.empty()) return Status::Ok();
      Frame& f = frames_.back();
      ++f.idx;
      if (code[f.pc].strict) {
        while (f.idx < f.end && !strict_ok(code[f.pc], frame_elem(f, f.idx))) {
          ++f.idx;
        }
      }
      if (f.idx >= f.end) {
        frames_.pop_back();
        continue;
      }
      if (ctx_.governor != nullptr) {
        IQL_RETURN_IF_ERROR(ctx_.governor->Poll());
      }
      regs_[f.dst] = (f.elems != nullptr) ? (*f.elems)[f.idx] : f.owned[f.idx];
      pc = f.pc + 1;
      break;
    }
  }
}

}  // namespace iqlkit::vm
