#include "iql/lexer.h"

#include <cctype>
#include <unordered_map>

#include "analysis/diagnostic.h"

namespace iqlkit {

namespace {

const std::unordered_map<std::string_view, TokenKind>& Keywords() {
  static const auto* kKeywords =
      new std::unordered_map<std::string_view, TokenKind>{
          {"schema", TokenKind::kKwSchema},
          {"relation", TokenKind::kKwRelation},
          {"class", TokenKind::kKwClass},
          {"program", TokenKind::kKwProgram},
          {"var", TokenKind::kKwVar},
          {"input", TokenKind::kKwInput},
          {"output", TokenKind::kKwOutput},
          {"choose", TokenKind::kKwChoose},
          {"empty", TokenKind::kKwEmpty},
          {"instance", TokenKind::kKwInstance},
          {"D", TokenKind::kKwBase},
      };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

}  // namespace

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kInt: return "integer";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'!='";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kTurnstile: return "':-'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kKwSchema: return "'schema'";
    case TokenKind::kKwRelation: return "'relation'";
    case TokenKind::kKwClass: return "'class'";
    case TokenKind::kKwProgram: return "'program'";
    case TokenKind::kKwVar: return "'var'";
    case TokenKind::kKwInput: return "'input'";
    case TokenKind::kKwOutput: return "'output'";
    case TokenKind::kKwChoose: return "'choose'";
    case TokenKind::kKwEmpty: return "'empty'";
    case TokenKind::kKwInstance: return "'instance'";
    case TokenKind::kKwBase: return "'D'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Lex(std::string_view source,
                               DiagnosticSink* diags) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n && i < source.size(); ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  auto error = [&](std::string_view what) {
    if (diags != nullptr) {
      SourceSpan span{line, column, static_cast<int>(i),
                      i < source.size() ? 1 : 0};
      diags->Error("E001", span, std::string(what));
    }
    return ParseError(std::string(what) + " at line " +
                      std::to_string(line) + ", column " +
                      std::to_string(column));
  };
  // `to` is the byte offset where the token's lexeme starts; by the time
  // push runs, `i` sits one past its last byte, so the length falls out.
  auto push = [&](TokenKind kind, std::string text, int l, int c,
                  size_t to) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = l;
    t.column = c;
    t.offset = static_cast<int>(to);
    t.length = static_cast<int>(i - to);
    tokens.push_back(std::move(t));
  };

  while (i < source.size()) {
    char c = source[i];
    int tl = line, tc = column;
    size_t to = i;
    // whitespace
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // comments
    if (c == '#' || (c == '/' && i + 1 < source.size() &&
                     source[i + 1] == '/')) {
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) advance();
      std::string_view word = source.substr(start, i - start);
      auto kw = Keywords().find(word);
      if (kw != Keywords().end()) {
        push(kw->second, std::string(word), tl, tc, to);
      } else {
        push(TokenKind::kIdent, std::string(word), tl, tc, to);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance();
      }
      push(TokenKind::kInt, std::string(source.substr(start, i - start)), tl,
           tc, to);
      continue;
    }
    if (c == '"') {
      advance();
      std::string text;
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\n') return error("unterminated string literal");
        if (source[i] == '\\' && i + 1 < source.size()) {
          advance();
          text.push_back(source[i]);
          advance();
          continue;
        }
        text.push_back(source[i]);
        advance();
      }
      if (i >= source.size()) return error("unterminated string literal");
      advance();  // closing quote
      push(TokenKind::kString, std::move(text), tl, tc, to);
      continue;
    }
    auto push1 = [&](TokenKind kind, const char* text) {
      advance();
      push(kind, text, tl, tc, to);
    };
    switch (c) {
      case '(': push1(TokenKind::kLParen, "("); continue;
      case ')': push1(TokenKind::kRParen, ")"); continue;
      case '[': push1(TokenKind::kLBracket, "["); continue;
      case ']': push1(TokenKind::kRBracket, "]"); continue;
      case '{': push1(TokenKind::kLBrace, "{"); continue;
      case '}': push1(TokenKind::kRBrace, "}"); continue;
      case ',': push1(TokenKind::kComma, ","); continue;
      case ';': push1(TokenKind::kSemi, ";"); continue;
      case '.': push1(TokenKind::kDot, "."); continue;
      case '^': push1(TokenKind::kCaret, "^"); continue;
      case '=': push1(TokenKind::kEq, "="); continue;
      case '|': push1(TokenKind::kPipe, "|"); continue;
      case '&': push1(TokenKind::kAmp, "&"); continue;
      case '@': push1(TokenKind::kAt, "@"); continue;
      case ':':
        if (i + 1 < source.size() && source[i + 1] == '-') {
          advance(2);
          push(TokenKind::kTurnstile, ":-", tl, tc, to);
        } else {
          push1(TokenKind::kColon, ":");
        }
        continue;
      case '!':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          advance(2);
          push(TokenKind::kNeq, "!=", tl, tc, to);
        } else {
          push1(TokenKind::kBang, "!");
        }
        continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenKind::kEof, "", line, column, i);
  return tokens;
}

}  // namespace iqlkit
