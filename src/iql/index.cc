#include "iql/index.h"

#include <algorithm>

namespace iqlkit {

const ValueNode& RelationIndex::NodeOf(ValueId v) const {
  return arena_ != nullptr ? arena_->node(v)
                           : instance_->universe()->values().node(v);
}

const std::vector<ValueId>& RelationIndex::Elems(Container c) {
  auto it = elems_.find(Key(c));
  if (it != elems_.end()) return it->second;
  std::vector<ValueId> out;
  switch (c.kind) {
    case Container::Kind::kRelation: {
      const auto& tuples = instance_->Relation(static_cast<Symbol>(c.id));
      out.assign(tuples.begin(), tuples.end());
      break;
    }
    case Container::Kind::kClass: {
      for (Oid o : instance_->ClassExtent(static_cast<Symbol>(c.id))) {
        out.push_back(arena_ != nullptr
                          ? arena_->OfOid(o)
                          : instance_->universe()->values().OfOid(o));
      }
      break;
    }
    case Container::Kind::kSetValue: {
      const ValueNode& n = NodeOf(static_cast<ValueId>(c.id));
      if (n.kind == ValueKind::kSet) out = n.elems;
      break;
    }
  }
  return elems_.emplace(Key(c), std::move(out)).first->second;
}

bool RelationIndex::ElementKey(ValueId elem,
                               const std::vector<Symbol>& attrs,
                               uint64_t* out) const {
  const ValueNode& n = NodeOf(elem);
  if (n.kind != ValueKind::kTuple) return false;
  uint64_t h = 0;
  // Both n.fields and attrs are ascending: one linear merge.
  auto field = n.fields.begin();
  for (Symbol attr : attrs) {
    while (field != n.fields.end() && field->first < attr) ++field;
    if (field == n.fields.end() || field->first != attr) return false;
    h = HashCombine(h, field->second);
  }
  *out = h;
  return true;
}

void RelationIndex::InsertElement(Index* index, ValueId elem) {
  uint64_t h = 0;
  if (!ElementKey(elem, index->attrs, &h)) return;
  index->buckets[h].push_back(elem);
}

const std::vector<ValueId>* RelationIndex::Probe(
    Container c, const std::vector<Symbol>& attrs,
    const std::vector<ValueId>& key) {
  IndexKey ik{Key(c), attrs};
  auto it = indexes_.find(ik);
  if (it == indexes_.end()) {
    Index index;
    index.attrs = attrs;
    it = indexes_.emplace(std::move(ik), std::move(index)).first;
    for (ValueId elem : Elems(c)) InsertElement(&it->second, elem);
    if (c.kind == Container::Kind::kRelation) {
      by_relation_[static_cast<Symbol>(c.id)].push_back(&it->second);
    }
    ++counters_.builds;
  }
  ++counters_.probes;
  // Buckets are keyed by the hash of the keyed-field values; a collision
  // merely enlarges a bucket (the caller re-matches every candidate), it
  // cannot lose matches.
  uint64_t h = HashRange(key.begin(), key.end());
  auto bucket = it->second.buckets.find(h);
  if (bucket == it->second.buckets.end() || bucket->second.empty()) {
    return nullptr;
  }
  ++counters_.hits;
  return &bucket->second;
}

void RelationIndex::AddRelationFact(Symbol r, ValueId fact) {
  auto elems = elems_.find(Key(Container::Relation(r)));
  if (elems != elems_.end()) elems->second.push_back(fact);
  auto built = by_relation_.find(r);
  if (built == by_relation_.end()) return;
  for (Index* index : built->second) InsertElement(index, fact);
}

}  // namespace iqlkit
