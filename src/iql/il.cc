#include "iql/il.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

#include "iql/ilcheck.h"

namespace iqlkit::il {
namespace {

// Lowers one rule body. The planner mirrors the tree-walking solver's
// strategy -- checks for fully-bound literals first, then the cheapest
// generator, then an extent range over the least unbound variable -- but
// commits to the order statically. That is sound because the set of
// satisfying valuations (and hence the derivation count the governor
// meters) is join-order independent: every candidate list is
// duplicate-free and each full variable assignment is reached through
// exactly one path of any plan.
class Compiler {
 public:
  Compiler(const Program& prog, const Rule& rule, size_t delta_literal)
      : prog_(prog), rule_(rule), delta_(delta_literal) {}

  std::optional<CompiledRule> Run();

 private:
  uint16_t NewReg() {
    if (next_reg_ == 0xFFFF) {
      bailed_ = true;
      return 0;
    }
    return static_cast<uint16_t>(next_reg_++);
  }

  void Emit(Instr in) {
    in.src = cur_src_;
    out_.code.push_back(in);
  }

  void PackAux(Instr* in, const std::vector<uint32_t>& operands) {
    in->aux = static_cast<uint32_t>(out_.aux.size());
    in->naux = static_cast<uint32_t>(operands.size());
    out_.aux.insert(out_.aux.end(), operands.begin(), operands.end());
  }

  uint32_t InternShape(const std::vector<std::pair<Symbol, TermId>>& fields) {
    std::vector<Symbol> attrs;
    attrs.reserve(fields.size());
    for (const auto& [attr, child] : fields) attrs.push_back(attr);
    auto it = shape_ids_.find(attrs);
    if (it != shape_ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(out_.shapes.size());
    out_.shapes.push_back(attrs);
    shape_ids_.emplace(std::move(attrs), id);
    return id;
  }

  bool Bound(Symbol v) const { return var_reg_.count(v) > 0; }

  bool AllVarsBound(TermId id) const {
    std::set<Symbol> vars;
    prog_.CollectVars(id, &vars);
    for (Symbol v : vars) {
      if (!Bound(v)) return false;
    }
    return true;
  }

  // Static mirror of the solver's TermReady: the term can be *matched*
  // once variables under a dereference or inside a set constructor are
  // bound.
  bool StaticReady(TermId id) const {
    const Term& t = prog_.term(id);
    switch (t.kind) {
      case Term::Kind::kVar:
      case Term::Kind::kConst:
      case Term::Kind::kRelName:
      case Term::Kind::kClassName:
        return true;
      case Term::Kind::kDeref:
        return Bound(t.name);
      case Term::Kind::kTuple:
        for (const auto& [attr, child] : t.fields) {
          if (!StaticReady(child)) return false;
        }
        return true;
      case Term::Kind::kSet:
        return AllVarsBound(id);
    }
    return false;
  }

  // Emits instructions computing the value of a fully-bound term,
  // returning its register. Mirrors EvalTerm; a kDeref over an undefined
  // nu FAILs at runtime, which prunes the subtree exactly as EvalTerm's
  // nullopt does.
  uint16_t CompileEval(TermId id) {
    const Term& t = prog_.term(id);
    switch (t.kind) {
      case Term::Kind::kVar: {
        auto it = var_reg_.find(t.name);
        if (it == var_reg_.end()) {
          bailed_ = true;
          return 0;
        }
        return it->second;
      }
      case Term::Kind::kConst: {
        Instr in;
        in.op = Op::kLoadConst;
        in.dst = NewReg();
        in.sym = t.name;
        Emit(in);
        return in.dst;
      }
      case Term::Kind::kRelName: {
        Instr in;
        in.op = Op::kLoadRel;
        in.dst = NewReg();
        in.sym = t.name;
        Emit(in);
        return in.dst;
      }
      case Term::Kind::kClassName: {
        Instr in;
        in.op = Op::kLoadClass;
        in.dst = NewReg();
        in.sym = t.name;
        Emit(in);
        return in.dst;
      }
      case Term::Kind::kDeref: {
        auto it = var_reg_.find(t.name);
        if (it == var_reg_.end()) {
          bailed_ = true;
          return 0;
        }
        Instr in;
        in.op = Op::kDeref;
        in.dst = NewReg();
        in.a = it->second;
        Emit(in);
        return in.dst;
      }
      case Term::Kind::kTuple: {
        std::vector<uint32_t> regs;
        regs.reserve(t.fields.size());
        for (const auto& [attr, child] : t.fields) {
          regs.push_back(CompileEval(child));
        }
        Instr in;
        in.op = Op::kMakeTuple;
        in.imm = InternShape(t.fields);
        PackAux(&in, regs);
        in.dst = NewReg();
        Emit(in);
        return in.dst;
      }
      case Term::Kind::kSet: {
        std::vector<uint32_t> regs;
        regs.reserve(t.elems.size());
        for (TermId child : t.elems) regs.push_back(CompileEval(child));
        Instr in;
        in.op = Op::kMakeSet;
        PackAux(&in, regs);
        in.dst = NewReg();
        Emit(in);
        return in.dst;
      }
    }
    bailed_ = true;
    return 0;
  }

  // Emits instructions matching pattern `id` against the value in `c`,
  // binding first-occurrence variables to the candidate / field register
  // (a type-membership check, no copy). Mirrors MatchTerm.
  void CompileMatch(TermId id, uint16_t c) {
    const Term& t = prog_.term(id);
    switch (t.kind) {
      case Term::Kind::kVar: {
        auto it = var_reg_.find(t.name);
        if (it != var_reg_.end()) {
          Instr in;
          in.op = Op::kCmp;
          in.a = c;
          in.b = it->second;
          Emit(in);
          return;
        }
        auto ty = rule_.var_types.find(t.name);
        if (ty == rule_.var_types.end()) {
          bailed_ = true;
          return;
        }
        Instr in;
        in.op = Op::kBindType;
        in.a = c;
        in.imm = ty->second;
        Emit(in);
        var_reg_.emplace(t.name, c);
        return;
      }
      case Term::Kind::kTuple: {
        Instr shape;
        shape.op = Op::kMatchTuple;
        shape.a = c;
        shape.imm = InternShape(t.fields);
        Emit(shape);
        for (size_t i = 0; i < t.fields.size(); ++i) {
          Instr get;
          get.op = Op::kGetField;
          get.dst = NewReg();
          get.a = c;
          get.imm = static_cast<uint32_t>(i);
          Emit(get);
          CompileMatch(t.fields[i].second, get.dst);
        }
        return;
      }
      default: {
        // Const / rel-name / class-name / deref / set: evaluate and
        // compare, as MatchTerm does.
        uint16_t r = CompileEval(id);
        Instr in;
        in.op = Op::kCmp;
        in.a = c;
        in.b = r;
        Emit(in);
        return;
      }
    }
  }

  // Emits the check for a literal whose variables are all bound,
  // mirroring the solver's Check (rhs evaluated first; the delta literal
  // becomes a sorted-vector membership test).
  void CompileCheck(size_t i) {
    cur_src_ = static_cast<uint32_t>(i);
    const Literal& lit = rule_.body[i];
    uint16_t rv = CompileEval(lit.rhs);
    if (bailed_) return;
    if (i == delta_) {
      Instr in;
      in.op = Op::kCheckDelta;
      in.b = rv;
      Emit(in);
      return;
    }
    if (lit.kind == Literal::Kind::kEquality) {
      Instr in;
      in.op = Op::kCheckEq;
      in.a = CompileEval(lit.lhs);
      in.b = rv;
      in.pol = lit.positive;
      Emit(in);
      return;
    }
    const Term& lhs = prog_.term(lit.lhs);
    if (lhs.kind == Term::Kind::kRelName) {
      Instr in;
      in.op = Op::kCheckRel;
      in.b = rv;
      in.sym = lhs.name;
      in.pol = lit.positive;
      Emit(in);
      return;
    }
    if (lhs.kind == Term::Kind::kClassName) {
      Instr in;
      in.op = Op::kCheckClass;
      in.b = rv;
      in.sym = lhs.name;
      in.pol = lit.positive;
      Emit(in);
      return;
    }
    Instr in;
    in.op = Op::kCheckIn;
    in.a = CompileEval(lit.lhs);
    in.b = rv;
    in.pol = lit.positive;
    Emit(in);
  }

  // Which way a positive equality can generate: true = evaluate lhs and
  // match rhs, false = the reverse, nullopt = neither side is ready.
  std::optional<bool> EqualityDirection(const Literal& lit) const {
    if (AllVarsBound(lit.lhs) && StaticReady(lit.rhs)) return true;
    if (AllVarsBound(lit.rhs) && StaticReady(lit.lhs)) return false;
    return std::nullopt;
  }

  // Generator preference, lower is better; negative = ineligible. The
  // delta literal always wins (semi-naive locality), then equalities
  // (single candidate), then container scans preferring more statically
  // bound key fields and shared extents over set values.
  double Score(size_t i) const {
    const Literal& lit = rule_.body[i];
    if (!lit.positive) return -1;
    if (lit.kind == Literal::Kind::kChoose) return -1;
    if (lit.kind == Literal::Kind::kEquality) {
      return EqualityDirection(lit).has_value() ? 0.5 : -1;
    }
    if (!StaticReady(lit.rhs)) return -1;
    const Term& lhs = prog_.term(lit.lhs);
    switch (lhs.kind) {
      case Term::Kind::kVar:
      case Term::Kind::kDeref:
        if (!AllVarsBound(lit.lhs)) return -1;
        return 8.0;
      case Term::Kind::kRelName:
      case Term::Kind::kClassName:
        break;
      default:
        return -1;  // constructed containers never generate (mirror)
    }
    if (i == delta_) return 0.0;
    int keys = 0;
    const Term& rhs = prog_.term(lit.rhs);
    if (rhs.kind == Term::Kind::kTuple) {
      for (const auto& [attr, child] : rhs.fields) {
        if (AllVarsBound(child)) ++keys;
      }
    }
    return 4.0 - std::min(keys, 3);
  }

  void CompileGenerator(size_t i) {
    cur_src_ = static_cast<uint32_t>(i);
    const Literal& lit = rule_.body[i];
    if (lit.kind == Literal::Kind::kEquality) {
      auto dir = EqualityDirection(lit);
      if (!dir.has_value()) {
        bailed_ = true;
        return;
      }
      TermId src = *dir ? lit.lhs : lit.rhs;
      TermId dst = *dir ? lit.rhs : lit.lhs;
      CompileMatch(dst, CompileEval(src));
      return;
    }
    const Term& lhs = prog_.term(lit.lhs);
    Instr scan;
    if (i == delta_) {
      scan.op = Op::kScanDelta;
      scan.sym = lhs.name;  // decoration for the disassembly
    } else {
      switch (lhs.kind) {
        case Term::Kind::kRelName:
          scan.op = Op::kScanRel;
          scan.sym = lhs.name;
          break;
        case Term::Kind::kClassName:
          scan.op = Op::kScanClass;
          scan.sym = lhs.name;
          break;
        case Term::Kind::kVar:
        case Term::Kind::kDeref:
          scan.op = Op::kScanSet;
          scan.a = CompileEval(lit.lhs);
          break;
        default:
          bailed_ = true;
          return;
      }
      // Probe spec: tuple-pattern fields whose variables are already
      // bound become index key fields, evaluated just before the scan
      // (so per enclosing valuation, like the solver's PrepareMembership).
      const Term& rhs = prog_.term(lit.rhs);
      if (rhs.kind == Term::Kind::kTuple) {
        std::vector<uint32_t> spec;
        for (const auto& [attr, child] : rhs.fields) {
          if (!AllVarsBound(child)) continue;
          uint16_t key = CompileEval(child);
          spec.push_back(attr);
          spec.push_back(key);
        }
        if (!spec.empty()) PackAux(&scan, spec);
      }
    }
    scan.dst = NewReg();
    Emit(scan);
    CompileMatch(lit.rhs, scan.dst);
  }

  const Program& prog_;
  const Rule& rule_;
  const size_t delta_;

  CompiledRule out_;
  std::map<std::vector<Symbol>, uint32_t> shape_ids_;
  std::map<Symbol, uint16_t> var_reg_;  // bound variables -> register
  uint32_t next_reg_ = 0;
  uint32_t cur_src_ = kNoSrc;  // literal being lowered, for Instr::src
  bool bailed_ = false;
};

std::optional<CompiledRule> Compiler::Run() {
  const size_t n = rule_.body.size();
  std::vector<bool> done(n, false);
  size_t remaining = n;
  std::set<Symbol> theta_vars;
  for (const Literal& lit : rule_.body) prog_.CollectVars(lit, &theta_vars);

  while (remaining > 0 && !bailed_) {
    // 1. Fully-bound literals become straight-line checks, in body order.
    bool progressed = false;
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      std::set<Symbol> vars;
      prog_.CollectVars(rule_.body[i], &vars);
      bool all_bound = true;
      for (Symbol v : vars) {
        if (!Bound(v)) {
          all_bound = false;
          break;
        }
      }
      if (!all_bound) continue;
      CompileCheck(i);
      done[i] = true;
      --remaining;
      progressed = true;
      if (bailed_) break;
    }
    if (progressed || bailed_) continue;

    // 2. Best eligible generator.
    int best = -1;
    double best_score = 0;
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      double s = Score(i);
      if (s < 0) continue;
      if (best < 0 || s < best_score) {
        best = static_cast<int>(i);
        best_score = s;
      }
    }
    if (best >= 0) {
      CompileGenerator(static_cast<size_t>(best));
      done[static_cast<size_t>(best)] = true;
      --remaining;
      continue;
    }

    // 3. No literal is checkable or generatable: range the least unbound
    // variable over its type extent (mirrors the solver's step 3).
    Symbol unbound = kInvalidSymbol;
    for (Symbol v : theta_vars) {
      if (!Bound(v)) {
        unbound = v;
        break;
      }
    }
    if (unbound == kInvalidSymbol) {
      bailed_ = true;  // remaining literals yet nothing to do: give up
      break;
    }
    auto ty = rule_.var_types.find(unbound);
    if (ty == rule_.var_types.end()) {
      bailed_ = true;
      break;
    }
    Instr scan;
    scan.op = Op::kScanExtent;
    scan.dst = NewReg();
    scan.imm = ty->second;
    cur_src_ = kNoSrc;  // synthesized, not lowered from a literal
    Emit(scan);
    var_reg_.emplace(unbound, scan.dst);
  }

  if (bailed_) return std::nullopt;
  for (Symbol v : theta_vars) {
    if (!Bound(v)) return std::nullopt;
  }
  Instr emit;
  emit.op = Op::kEmit;
  cur_src_ = kNoSrc;
  Emit(emit);
  out_.theta.assign(var_reg_.begin(), var_reg_.end());  // map: sorted
  out_.num_regs = static_cast<uint16_t>(next_reg_);
  out_.delta_literal = delta_;
  return std::move(out_);
}

std::string RenderInstr(const CompiledRule& cr, size_t pc,
                        const SymbolTable& syms, const TypePool& types) {
  const Instr& in = cr.code[pc];
  std::ostringstream out;
  auto reg = [](uint16_t r) { return "r" + std::to_string(r); };
  auto name = [&](Symbol s) { return std::string(syms.name(s)); };
  auto probe = [&]() {
    if (in.naux == 0) return std::string();
    std::ostringstream p;
    p << (in.strict ? " probe![" : " probe [");
    for (uint32_t k = 0; k + 1 < in.naux; k += 2) {
      if (k > 0) p << ", ";
      p << name(static_cast<Symbol>(cr.aux[in.aux + k])) << ": "
        << reg(static_cast<uint16_t>(cr.aux[in.aux + k + 1]));
    }
    p << "]";
    return p.str();
  };
  switch (in.op) {
    case Op::kLoadConst:
      out << reg(in.dst) << " = const " << name(in.sym);
      break;
    case Op::kLoadRel:
      out << reg(in.dst) << " = rel_value " << name(in.sym);
      break;
    case Op::kLoadClass:
      out << reg(in.dst) << " = class_value " << name(in.sym);
      break;
    case Op::kDeref:
      out << reg(in.dst) << " = deref " << reg(in.a);
      break;
    case Op::kGetField:
      out << reg(in.dst) << " = field " << reg(in.a) << " #" << in.imm;
      break;
    case Op::kMakeTuple: {
      out << reg(in.dst) << " = tuple [";
      const auto& shape = cr.shapes[in.imm];
      for (uint32_t k = 0; k < in.naux; ++k) {
        if (k > 0) out << ", ";
        out << name(shape[k]) << ": "
            << reg(static_cast<uint16_t>(cr.aux[in.aux + k]));
      }
      out << "]";
      break;
    }
    case Op::kMakeSet: {
      out << reg(in.dst) << " = set {";
      for (uint32_t k = 0; k < in.naux; ++k) {
        if (k > 0) out << ", ";
        out << reg(static_cast<uint16_t>(cr.aux[in.aux + k]));
      }
      out << "}";
      break;
    }
    case Op::kMatchTuple: {
      out << "match_tuple " << reg(in.a) << " [";
      const auto& shape = cr.shapes[in.imm];
      for (size_t k = 0; k < shape.size(); ++k) {
        if (k > 0) out << ", ";
        out << name(shape[k]);
      }
      out << "]";
      break;
    }
    case Op::kBindType:
      out << "bind " << reg(in.a) << " : " << types.ToString(in.imm);
      break;
    case Op::kCmp:
      out << "cmp " << reg(in.a) << ", " << reg(in.b);
      break;
    case Op::kCheckRel:
      out << "check_rel " << reg(in.b) << (in.pol ? " in " : " not_in ")
          << name(in.sym);
      break;
    case Op::kCheckClass:
      out << "check_class " << reg(in.b) << (in.pol ? " in " : " not_in ")
          << name(in.sym);
      break;
    case Op::kCheckIn:
      out << "check_in " << reg(in.b) << (in.pol ? " in " : " not_in ")
          << reg(in.a);
      break;
    case Op::kCheckEq:
      out << "check_eq " << reg(in.a) << (in.pol ? " == " : " != ")
          << reg(in.b);
      break;
    case Op::kCheckDelta:
      out << "check_delta " << reg(in.b);
      break;
    case Op::kScanRel:
      out << reg(in.dst) << " = scan_rel " << name(in.sym) << probe();
      break;
    case Op::kScanClass:
      out << reg(in.dst) << " = scan_class " << name(in.sym) << probe();
      break;
    case Op::kScanSet:
      out << reg(in.dst) << " = scan_set " << reg(in.a) << probe();
      break;
    case Op::kScanDelta:
      out << reg(in.dst) << " = scan_delta " << name(in.sym);
      break;
    case Op::kScanExtent:
      out << reg(in.dst) << " = scan_extent " << types.ToString(in.imm);
      break;
    case Op::kEmit: {
      out << "emit {";
      bool first = true;
      for (const auto& [var, r] : cr.theta) {
        if (!first) out << ", ";
        first = false;
        out << name(var) << ": " << reg(r);
      }
      out << "}";
      break;
    }
    case Op::kDestructure: {
      // Aux pairs are (field position, dst register); render positions as
      // the shape's attr names so the dump reads like the unfused match.
      out << "destructure " << reg(in.a) << " [";
      const auto& shape = cr.shapes[in.imm];
      for (size_t k = 0; k < shape.size(); ++k) {
        if (k > 0) out << ", ";
        out << name(shape[k]);
      }
      out << "] -> {";
      for (uint32_t k = 0; k + 1 < in.naux; k += 2) {
        if (k > 0) out << ", ";
        out << name(shape[cr.aux[in.aux + k]]) << ": "
            << reg(static_cast<uint16_t>(cr.aux[in.aux + k + 1]));
      }
      out << "}";
      break;
    }
    case Op::kScanRelKeyed: {
      out << reg(in.dst) << " = scan_rel_keyed " << name(in.sym) << " [";
      const auto& shape = cr.shapes[in.imm];
      for (size_t k = 0; k < shape.size(); ++k) {
        if (k > 0) out << ", ";
        out << name(shape[k]);
      }
      out << "] key![";
      for (uint32_t k = 0; k + 1 < in.naux; k += 2) {
        if (k > 0) out << ", ";
        out << name(shape[cr.aux[in.aux + k]]) << ": "
            << reg(static_cast<uint16_t>(cr.aux[in.aux + k + 1]));
      }
      out << "]";
      break;
    }
    case Op::kCmpN: {
      out << "cmp_n";
      for (uint32_t k = 0; k + 1 < in.naux; k += 2) {
        out << (k > 0 ? ", (" : " (")
            << reg(static_cast<uint16_t>(cr.aux[in.aux + k])) << ", "
            << reg(static_cast<uint16_t>(cr.aux[in.aux + k + 1])) << ")";
      }
      break;
    }
  }
  return out.str();
}

std::string Render(const CompiledRule& cr, const SymbolTable& syms,
                   const TypePool& types, const std::string& indent) {
  std::ostringstream out;
  for (size_t pc = 0; pc < cr.code.size(); ++pc) {
    out << indent << "%" << pc << ": " << RenderInstr(cr, pc, syms, types)
        << "\n";
  }
  return out.str();
}

}  // namespace

std::optional<CompiledRule> CompileRule(const Program& prog, const Rule& rule,
                                        size_t delta_literal) {
  if (!rule.invented_vars.empty() || rule.has_choose) return std::nullopt;
  Compiler c(prog, rule, delta_literal);
  std::optional<CompiledRule> out = c.Run();
#ifndef NDEBUG
  // Every lowering the compiler accepts must pass the static verifier;
  // this is the "run after every CompileRule in debug" hook.
  if (out.has_value()) {
    std::vector<IlViolation> violations = VerifyRule(*out);
    assert(violations.empty() &&
           "CompileRule produced IL rejected by VerifyRule");
  }
#endif
  return out;
}

std::string Disassemble(const CompiledRule& cr, const SymbolTable& syms,
                        const TypePool& types, const std::string& indent) {
  return Render(cr, syms, types, indent);
}

std::string RenderInstruction(const CompiledRule& cr, size_t pc,
                              const SymbolTable& syms, const TypePool& types) {
  return RenderInstr(cr, pc, syms, types);
}

std::string DumpProgramIl(const Program& prog, const SymbolTable& syms,
                          const TypePool& types) {
  std::ostringstream out;
  for (size_t s = 0; s < prog.stages.size(); ++s) {
    out << "stage " << s << ":\n";
    const auto& rules = prog.stages[s];
    for (size_t r = 0; r < rules.size(); ++r) {
      const Rule& rule = rules[r];
      out << "  rule " << r << ": " << prog.RuleToString(rule, syms) << "\n";
      auto cr = CompileRule(prog, rule);
      if (!cr.has_value()) {
        const char* why = !rule.invented_vars.empty() ? "oid invention"
                          : rule.has_choose          ? "choose"
                                                     : "planner bail";
        out << "    fallback (tree-walk): " << why << "\n";
        continue;
      }
      out << Render(*cr, syms, types, "    ");
    }
  }
  return out.str();
}

}  // namespace iqlkit::il
