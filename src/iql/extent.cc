#include "iql/extent.h"

#include <algorithm>

#include "base/logging.h"
#include "model/type_algebra.h"

namespace iqlkit {

Status ExtentEnumerator::Charge(uint64_t n) {
  produced_ += n;
  if (produced_ > budget_) {
    if (governor_ != nullptr) {
      return governor_->TripNow(TripReason::kExtent);
    }
    return ResourceExhaustedError(
        "type-extent enumeration exceeded its budget of " +
        std::to_string(budget_) +
        " values; the program ranges an unrestricted variable over an "
        "exponential type interpretation (cf. Example 3.4.2)");
  }
  return Status::Ok();
}

Result<const std::vector<ValueId>*> ExtentEnumerator::Enumerate(TypeId t) {
  auto it = cache_.find(t);
  if (it != cache_.end()) {
    ++cache_hits_;
    return &it->second;
  }
  ++cache_misses_;
  IQL_ASSIGN_OR_RETURN(std::vector<ValueId> values, Compute(t));
  auto [pos, inserted] = cache_.emplace(t, std::move(values));
  IQL_CHECK(inserted);
  return &pos->second;
}

Result<std::vector<ValueId>> ExtentEnumerator::Compute(TypeId t) {
  Universe* u = instance_->universe();
  TypePool& types = u->types();
  ValueArena& values = *arena_;
  // Instances enforce disjoint oid assignments, so intersections can be
  // compiled away up front (Prop 2.2.1 (2)). Worker enumerators never reach
  // this (parallel eligibility requires intersection-free types), so the
  // shared pool is only mutated from the serial path.
  if (!types.IsIntersectionFree(t)) {
    t = EliminateIntersection(&types, t);
  }
  const TypeNode node = types.node(t);  // copy: pool may grow below
  std::vector<ValueId> out;
  switch (node.kind) {
    case TypeKind::kEmpty:
      break;
    case TypeKind::kBase: {
      for (Symbol atom : instance_->ConstantAtoms()) {
        out.push_back(values.ConstSymbol(atom));
      }
      break;
    }
    case TypeKind::kClass: {
      for (Oid o : instance_->ClassExtent(node.class_name)) {
        out.push_back(values.OfOid(o));
      }
      break;
    }
    case TypeKind::kSet: {
      IQL_ASSIGN_OR_RETURN(const std::vector<ValueId>* elems,
                           Enumerate(node.children[0]));
      if (elems->size() > 30) {
        return ResourceExhaustedError(
            "set-type extent over " + std::to_string(elems->size()) +
            " elements is astronomically large");
      }
      uint64_t count = uint64_t{1} << elems->size();
      IQL_RETURN_IF_ERROR(Charge(count));
      out.reserve(count);
      for (uint64_t mask = 0; mask < count; ++mask) {
        if (governor_ != nullptr) IQL_RETURN_IF_ERROR(governor_->Poll());
        std::vector<ValueId> subset;
        for (size_t i = 0; i < elems->size(); ++i) {
          if (mask & (uint64_t{1} << i)) subset.push_back((*elems)[i]);
        }
        out.push_back(values.Set(std::move(subset)));
      }
      break;
    }
    case TypeKind::kTuple: {
      std::vector<const std::vector<ValueId>*> field_extents;
      uint64_t count = 1;
      for (const auto& [attr, ft] : node.fields) {
        IQL_ASSIGN_OR_RETURN(const std::vector<ValueId>* ext,
                             Enumerate(ft));
        field_extents.push_back(ext);
        if (ext->empty()) {
          count = 0;
          break;
        }
        if (count > budget_ / ext->size() + 1) {
          return ResourceExhaustedError("tuple-type extent too large");
        }
        count *= ext->size();
      }
      IQL_RETURN_IF_ERROR(Charge(count));
      if (count == 0) break;
      std::vector<size_t> idx(node.fields.size(), 0);
      for (uint64_t k = 0; k < count; ++k) {
        if (governor_ != nullptr) IQL_RETURN_IF_ERROR(governor_->Poll());
        std::vector<std::pair<Symbol, ValueId>> fields;
        fields.reserve(node.fields.size());
        for (size_t i = 0; i < node.fields.size(); ++i) {
          fields.emplace_back(node.fields[i].first,
                              (*field_extents[i])[idx[i]]);
        }
        out.push_back(values.Tuple(std::move(fields)));
        for (size_t i = 0; i < idx.size(); ++i) {
          if (++idx[i] < field_extents[i]->size()) break;
          idx[i] = 0;
        }
      }
      break;
    }
    case TypeKind::kUnion: {
      for (TypeId child : node.children) {
        IQL_ASSIGN_OR_RETURN(const std::vector<ValueId>* ext,
                             Enumerate(child));
        out.insert(out.end(), ext->begin(), ext->end());
      }
      break;
    }
    case TypeKind::kIntersect:
      return InternalError("intersection survived elimination");
  }
  IQL_RETURN_IF_ERROR(Charge(out.size()));
  // Canonical structural order: identical across the shared store and any
  // worker side store, so enumeration order is thread-count independent.
  std::sort(out.begin(), out.end(),
            [&values](ValueId a, ValueId b) { return values.Less(a, b); });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace iqlkit
