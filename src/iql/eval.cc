#include "iql/eval.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/fault_injection.h"
#include "base/hash.h"
#include "base/logging.h"
#include "base/thread_pool.h"
#include "iql/extent.h"
#include "iql/il.h"
#include "iql/ilopt.h"
#include "iql/index.h"
#include "iql/parser.h"
#include "iql/typecheck.h"
#include "iql/vm.h"
#include "model/stats.h"

namespace iqlkit {

namespace {

double Seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

// Approximate footprint charged to the MemoryAccountant per derived fact
// (set node in a relation/extent container + bookkeeping). Value nodes are
// charged exactly by the stores; facts only need an order-of-magnitude
// charge so max_memory_bytes tracks instance growth.
constexpr uint64_t kFactBytes = 64;

// A (partial) valuation theta of a rule's body variables (§3.2). Ordered
// map so valuations compare deterministically (for dedup and reproducible
// firing order).
using Bindings = std::map<Symbol, ValueId>;

// ---------------------------------------------------------------------------
// Term evaluation and matching against the step-start instance.
// ---------------------------------------------------------------------------

// Evaluates a term to an o-value under `b`. Returns nullopt when the term
// is not yet evaluable: an unbound variable, or a dereference x^ whose oid
// has an undefined nu-value (a valuation must be *defined* on every term of
// a literal for the literal to be satisfied, §3.2).
//
// All interning goes through `values`, so a parallel worker evaluating with
// a snapshot arena builds new o-values in its private side store while the
// serial path (a passthrough arena) interns into the shared store exactly
// as before.
std::optional<ValueId> EvalTerm(const Program& prog, TermId id,
                                const Bindings& b, const Instance& inst,
                                ValueArena& values) {
  const Term& t = prog.term(id);
  switch (t.kind) {
    case Term::Kind::kVar: {
      auto it = b.find(t.name);
      if (it == b.end()) return std::nullopt;
      return it->second;
    }
    case Term::Kind::kConst:
      return values.ConstSymbol(t.name);
    case Term::Kind::kRelName: {
      const auto& tuples = inst.Relation(t.name);
      return values.Set(std::vector<ValueId>(tuples.begin(), tuples.end()));
    }
    case Term::Kind::kClassName: {
      std::vector<ValueId> oids;
      for (Oid o : inst.ClassExtent(t.name)) oids.push_back(values.OfOid(o));
      return values.Set(std::move(oids));
    }
    case Term::Kind::kDeref: {
      auto it = b.find(t.name);
      if (it == b.end()) return std::nullopt;
      const ValueNode& n = values.node(it->second);
      if (n.kind != ValueKind::kOid) return std::nullopt;
      return inst.ValueOf(n.oid);  // nullopt when nu is undefined
    }
    case Term::Kind::kTuple: {
      std::vector<std::pair<Symbol, ValueId>> fields;
      fields.reserve(t.fields.size());
      for (const auto& [attr, child] : t.fields) {
        auto v = EvalTerm(prog, child, b, inst, values);
        if (!v.has_value()) return std::nullopt;
        fields.emplace_back(attr, *v);
      }
      return values.Tuple(std::move(fields));
    }
    case Term::Kind::kSet: {
      std::vector<ValueId> elems;
      elems.reserve(t.elems.size());
      for (TermId child : t.elems) {
        auto v = EvalTerm(prog, child, b, inst, values);
        if (!v.has_value()) return std::nullopt;
        elems.push_back(*v);
      }
      return values.Set(std::move(elems));
    }
  }
  return std::nullopt;
}

// True when matching `id` can be *attempted* under `b`: every variable
// under a dereference or inside a set constructor is already bound.
// (Matching binds variables at kVar and inside tuple positions only;
// derefs/sets must be evaluated, not decomposed.)
bool TermReady(const Program& prog, TermId id, const Bindings& b) {
  const Term& t = prog.term(id);
  switch (t.kind) {
    case Term::Kind::kVar:
    case Term::Kind::kConst:
    case Term::Kind::kRelName:
    case Term::Kind::kClassName:
      return true;
    case Term::Kind::kDeref:
      return b.count(t.name) > 0;
    case Term::Kind::kTuple:
      for (const auto& [attr, child] : t.fields) {
        if (!TermReady(prog, child, b)) return false;
      }
      return true;
    case Term::Kind::kSet: {
      std::set<Symbol> vars;
      prog.CollectVars(id, &vars);
      for (Symbol v : vars) {
        if (!b.count(v)) return false;
      }
      return true;
    }
  }
  return false;
}

// Matches pattern `id` against `value`, binding free variables (recorded in
// `trail` for undo). A variable binds only to values inside its type's
// interpretation (valuations are typed, §3.2) -- with union-typed data a
// pattern position can hold values outside the variable's type, and those
// must not match. Precondition: TermReady(id). Returns false on mismatch,
// leaving any partial bindings for the caller to undo.
bool MatchTerm(const Program& prog, const Rule& rule,
               TypeMembership* membership, TermId id, ValueId value,
               Bindings* b, std::vector<Symbol>* trail, const Instance& inst,
               ValueArena& values) {
  const Term& t = prog.term(id);
  switch (t.kind) {
    case Term::Kind::kVar: {
      auto it = b->find(t.name);
      if (it != b->end()) return it->second == value;
      if (!membership->Contains(rule.var_types.at(t.name), value)) {
        return false;
      }
      b->emplace(t.name, value);
      trail->push_back(t.name);
      return true;
    }
    case Term::Kind::kConst:
    case Term::Kind::kRelName:
    case Term::Kind::kClassName:
    case Term::Kind::kDeref:
    case Term::Kind::kSet: {
      auto v = EvalTerm(prog, id, *b, inst, values);
      return v.has_value() && *v == value;
    }
    case Term::Kind::kTuple: {
      const ValueNode& n = values.node(value);
      if (n.kind != ValueKind::kTuple ||
          n.fields.size() != t.fields.size()) {
        return false;
      }
      for (size_t i = 0; i < t.fields.size(); ++i) {
        if (n.fields[i].first != t.fields[i].first) return false;
        if (!MatchTerm(prog, rule, membership, t.fields[i].second,
                       n.fields[i].second, b, trail, inst, values)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

void UndoTrail(Bindings* b, std::vector<Symbol>* trail, size_t mark) {
  while (trail->size() > mark) {
    b->erase(trail->back());
    trail->pop_back();
  }
}

// The elements of a membership literal's left-hand side, if evaluable:
// rho(R) for a relation, pi(P) (as oid values) for a class, the elements
// of a bound set-typed variable or a bound, defined, set-valued x^.
std::optional<std::vector<ValueId>> ContainerElems(const Program& prog,
                                                   TermId lhs,
                                                   const Bindings& b,
                                                   const Instance& inst,
                                                   ValueArena& values) {
  const Term& t = prog.term(lhs);
  switch (t.kind) {
    case Term::Kind::kRelName: {
      const auto& tuples = inst.Relation(t.name);
      return std::vector<ValueId>(tuples.begin(), tuples.end());
    }
    case Term::Kind::kClassName: {
      std::vector<ValueId> out;
      for (Oid o : inst.ClassExtent(t.name)) out.push_back(values.OfOid(o));
      return out;
    }
    case Term::Kind::kVar:
    case Term::Kind::kDeref: {
      auto v = EvalTerm(prog, lhs, b, inst, values);
      if (!v.has_value()) return std::nullopt;
      const ValueNode& n = values.node(*v);
      if (n.kind != ValueKind::kSet) return std::vector<ValueId>{};
      return n.elems;
    }
    default:
      return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Valuation enumeration: a backtracking solver over the body literals.
// ---------------------------------------------------------------------------

// Shared per-step machinery handed to every RuleSolver of that step.
// `index` and `estimator` may be null (indexing / scheduling disabled);
// `rule_metrics` may be null (metrics not requested). `values` is required:
// the serial path passes a passthrough arena over the shared store, a
// parallel worker its private snapshot arena.
struct SolverContext {
  ExtentEnumerator* extents = nullptr;
  RelationIndex* index = nullptr;
  CardinalityEstimator* estimator = nullptr;
  RuleMetrics* rule_metrics = nullptr;
  ValueArena* values = nullptr;
  Governor* governor = nullptr;  // polled per enumerated candidate
  bool schedule = false;
};

class RuleSolver {
 public:
  // `delta_literal`/`delta_facts`: when set, body literal `delta_literal`
  // (a positive membership over a relation) ranges over -- and membership-
  // checks against -- the sorted `delta_facts` instead of the relation's
  // full extent (semi-naive evaluation).
  RuleSolver(const Program& prog, const Rule& rule, const Instance& inst,
             const SolverContext& ctx,
             size_t delta_literal = static_cast<size_t>(-1),
             const std::vector<ValueId>* delta_facts = nullptr)
      : prog_(prog),
        rule_(rule),
        inst_(inst),
        ctx_(ctx),
        delta_literal_(delta_literal),
        delta_facts_(delta_facts),
        membership_(&inst.universe()->types(), ctx.values, &inst) {
    done_.assign(rule.body.size(), false);
    lhs_vars_.resize(rule.body.size());
    rhs_vars_.resize(rule.body.size());
    field_vars_.resize(rule.body.size());
    // Precompute each literal's variables once; the solver's inner loops
    // test boundness constantly.
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (rule.body[i].kind == Literal::Kind::kChoose) {
        done_[i] = true;  // handled at application time
        continue;
      }
      std::set<Symbol> lv, rv;
      prog.CollectVars(rule.body[i].lhs, &lv);
      prog.CollectVars(rule.body[i].rhs, &rv);
      lhs_vars_[i].assign(lv.begin(), lv.end());
      rhs_vars_[i].assign(rv.begin(), rv.end());
      // Per-field variable lists of tuple rhs patterns, for index keys.
      const Term& rhs = prog.term(rule.body[i].rhs);
      if (rule.body[i].kind == Literal::Kind::kMembership &&
          rhs.kind == Term::Kind::kTuple) {
        for (const auto& [attr, child] : rhs.fields) {
          std::set<Symbol> fv;
          prog.CollectVars(child, &fv);
          field_vars_[i].emplace_back(
              attr, std::vector<Symbol>(fv.begin(), fv.end()));
        }
      }
    }
  }

  // Invokes `cb` once per valuation theta of the body variables with
  // inst |= theta body (the satisfying valuations; the val-dom head filter
  // is applied by the caller).
  Status Solve(const std::function<Status(const Bindings&)>& cb) {
    return Step(cb);
  }

  // Probe mode: Solve() runs the (deterministic, single-path) prefix of
  // the enumeration up to the first multi-way branch -- a candidate-list
  // iteration or a type-extent range -- stores that branch's width in
  // `*width`, and returns without descending into it. The callback is
  // only reached when the enumeration has no multi-way branch at all, in
  // which case `*width` keeps its caller-initialized value.
  void SetProbe(size_t* width) { probe_width_ = width; }

  // Slice mode: the first multi-way branch iterates only candidates
  // [begin, end) of its list; every deeper branch iterates fully. The
  // candidate list is deterministic given the frozen instance, so slicing
  // [0, w) across workers partitions exactly the serial enumeration, in
  // order.
  void SetSlice(size_t begin, size_t end) {
    slice_begin_ = begin;
    slice_end_ = end;
  }

 private:
  bool VarsBound(const std::vector<Symbol>& vars) const {
    for (Symbol v : vars) {
      if (!bindings_.count(v)) return false;
    }
    return true;
  }

  // Fully checkable literal: both terms evaluable (all vars bound).
  bool IsCheckable(size_t i) const {
    return VarsBound(lhs_vars_[i]) && VarsBound(rhs_vars_[i]);
  }

  // Evaluates a fully-bound literal.
  bool Check(size_t index, const Literal& lit) const {
    ValueArena& values = *ctx_.values;
    auto rv = EvalTerm(prog_, lit.rhs, bindings_, inst_, values);
    if (!rv.has_value()) return false;
    if (index == delta_literal_) {
      // Semi-naive: the delta literal checks against the delta facts. The
      // delta holds shared-store ids; a side-store *rv is by construction
      // a value the shared store has never interned, so an id-level search
      // failing on it is the structurally correct answer.
      return std::binary_search(delta_facts_->begin(), delta_facts_->end(),
                                *rv);
    }
    auto lv = EvalTerm(prog_, lit.lhs, bindings_, inst_, values);
    // A valuation must be defined on both terms (undefined x^ fails both
    // polarities, §3.2).
    if (!lv.has_value()) return false;
    if (lit.kind == Literal::Kind::kEquality) {
      return (*lv == *rv) == lit.positive;
    }
    const ValueNode& ln = values.node(*lv);
    if (ln.kind != ValueKind::kSet) return false;
    return values.ElemsContain(ln.elems, *rv) == lit.positive;
  }

  // A generator the solver could branch on at the current choice point.
  struct GenChoice {
    size_t literal = 0;
    bool equality = false;
    bool flip = false;  // equality: rhs is the evaluable side
    // Membership only:
    bool impossible = false;  // a bound pattern field is undefined, or the
                              // container is a non-set value: zero matches
    bool container_known = false;
    RelationIndex::Container container{};
    std::vector<Symbol> attrs;  // bound tuple-pattern fields (ascending)
    std::vector<ValueId> key;   // their values under the current bindings
    bool use_index = false;
    double estimate = 0;  // expected branch count (0.5 for equalities)
  };

  // Inspects membership literal `i` as a generator under the current
  // bindings; false when ineligible (rhs not ready / lhs not evaluable).
  bool PrepareMembership(size_t i, GenChoice* c) {
    const Literal& lit = rule_.body[i];
    if (!TermReady(prog_, lit.rhs, bindings_)) return false;
    c->literal = i;
    double size = 0;
    if (i == delta_literal_) {
      size = static_cast<double>(delta_facts_->size());
    } else {
      const Term& lhs = prog_.term(lit.lhs);
      switch (lhs.kind) {
        case Term::Kind::kRelName:
          c->container = RelationIndex::Container::Relation(lhs.name);
          c->container_known = true;
          size = static_cast<double>(inst_.Relation(lhs.name).size());
          break;
        case Term::Kind::kClassName:
          c->container = RelationIndex::Container::Class(lhs.name);
          c->container_known = true;
          size = static_cast<double>(inst_.ClassExtent(lhs.name).size());
          break;
        case Term::Kind::kVar:
        case Term::Kind::kDeref: {
          auto v = EvalTerm(prog_, lit.lhs, bindings_, inst_, *ctx_.values);
          if (!v.has_value()) return false;  // lhs not evaluable yet
          const ValueNode& n = ctx_.values->node(*v);
          if (n.kind != ValueKind::kSet) {
            c->impossible = true;  // non-set container: no elements
            return true;
          }
          c->container = RelationIndex::Container::SetValue(*v);
          c->container_known = true;
          size = static_cast<double>(n.elems.size());
          break;
        }
        default:
          return false;
      }
    }
    // Index key: the tuple-pattern fields fully evaluable right now. A
    // bound field that evaluates to "undefined" (an x^ with no nu-value)
    // can match no element at all.
    if (ctx_.index != nullptr && c->container_known) {
      for (const auto& [attr, vars] : field_vars_[i]) {
        if (!VarsBound(vars)) continue;
        const Term& rhs = prog_.term(lit.rhs);
        TermId child = kInvalidTerm;
        for (const auto& [a, t] : rhs.fields) {
          if (a == attr) child = t;
        }
        auto v = EvalTerm(prog_, child, bindings_, inst_, *ctx_.values);
        if (!v.has_value()) {
          c->impossible = true;
          break;
        }
        c->attrs.push_back(attr);
        c->key.push_back(*v);
      }
      c->use_index = !c->impossible && !c->attrs.empty();
    }
    if (c->impossible) {
      c->estimate = 0;
    } else if (c->use_index) {
      if (ctx_.estimator != nullptr &&
          c->container.kind == RelationIndex::Container::Kind::kRelation) {
        c->estimate = ctx_.estimator->EstimateMatches(
            static_cast<Symbol>(c->container.id), c->attrs);
      } else {
        c->estimate = std::max(
            1.0, size / std::pow(4.0, static_cast<double>(c->attrs.size())));
      }
    } else {
      c->estimate = size;
    }
    return true;
  }

  // The next generator: under scheduling, the eligible one with the
  // smallest estimated branch count (equalities cost at most one branch,
  // and an empty container prunes the whole subtree); otherwise the first
  // eligible literal in body order, as in the paper's formulation.
  std::optional<GenChoice> PickGenerator() {
    std::optional<GenChoice> best;
    for (size_t i = 0; i < rule_.body.size(); ++i) {
      if (done_[i]) continue;
      const Literal& lit = rule_.body[i];
      if (!lit.positive) continue;
      GenChoice c;
      bool eligible = false;
      if (lit.kind == Literal::Kind::kMembership) {
        eligible = PrepareMembership(i, &c);
      } else if (lit.kind == Literal::Kind::kEquality) {
        // One side evaluable, the other a ready pattern: single branch.
        for (bool flip : {false, true}) {
          const std::vector<Symbol>& src_vars =
              flip ? rhs_vars_[i] : lhs_vars_[i];
          TermId dst = flip ? lit.lhs : lit.rhs;
          if (VarsBound(src_vars) && TermReady(prog_, dst, bindings_)) {
            c.literal = i;
            c.equality = true;
            c.flip = flip;
            c.estimate = 0.5;
            eligible = true;
            break;
          }
        }
      }
      if (!eligible) continue;
      if (!ctx_.schedule) return c;
      if (!best || c.estimate < best->estimate) best = c;
    }
    return best;
  }

  Status GenerateMembership(const GenChoice& c,
                            const std::function<Status(const Bindings&)>& cb) {
    const Literal& lit = rule_.body[c.literal];
    // Resolve the candidate elements: the delta, an index bucket, the
    // materialized extent, or (with indexing off) a fresh scan.
    const std::vector<ValueId>* elems = nullptr;
    std::vector<ValueId> scan;  // ContainerElems fallback storage
    if (c.impossible) {
      elems = nullptr;
    } else if (c.literal == delta_literal_) {
      elems = delta_facts_;
    } else if (c.use_index) {
      elems = ctx_.index->Probe(c.container, c.attrs, c.key);
      if (ctx_.rule_metrics != nullptr) ++ctx_.rule_metrics->index_probes;
    } else if (ctx_.index != nullptr && c.container_known) {
      elems = &ctx_.index->Elems(c.container);
      if (ctx_.rule_metrics != nullptr) ++ctx_.rule_metrics->index_scans;
    } else {
      auto container =
          ContainerElems(prog_, lit.lhs, bindings_, inst_, *ctx_.values);
      if (container.has_value()) {
        scan = std::move(*container);
        elems = &scan;
      }
      if (ctx_.rule_metrics != nullptr) ++ctx_.rule_metrics->index_scans;
    }
    done_[c.literal] = true;
    if (elems != nullptr) {
      size_t lo = 0;
      size_t hi = elems->size();
      if (at_first_branch_) {
        at_first_branch_ = false;
        if (probe_width_ != nullptr) {
          *probe_width_ = elems->size();
          done_[c.literal] = false;
          return Status::Ok();
        }
        lo = std::min(slice_begin_, hi);
        hi = std::min(slice_end_, hi);
      }
      for (size_t k = lo; k < hi; ++k) {
        if (ctx_.governor != nullptr) {
          Status g = ctx_.governor->Poll();
          if (!g.ok()) {
            done_[c.literal] = false;
            return g;
          }
        }
        ValueId elem = (*elems)[k];
        size_t mark = trail_.size();
        if (MatchTerm(prog_, rule_, &membership_, lit.rhs, elem,
                      &bindings_, &trail_, inst_, *ctx_.values)) {
          Status s = Step(cb);
          if (!s.ok()) {
            done_[c.literal] = false;
            UndoTrail(&bindings_, &trail_, mark);
            return s;
          }
        }
        UndoTrail(&bindings_, &trail_, mark);
      }
    }
    done_[c.literal] = false;
    return Status::Ok();
  }

  Status GenerateEquality(const GenChoice& c,
                          const std::function<Status(const Bindings&)>& cb) {
    const Literal& lit = rule_.body[c.literal];
    TermId src = c.flip ? lit.rhs : lit.lhs;
    TermId dst = c.flip ? lit.lhs : lit.rhs;
    auto v = EvalTerm(prog_, src, bindings_, inst_, *ctx_.values);
    if (!v.has_value()) return Status::Ok();  // undefined: fail
    done_[c.literal] = true;
    size_t mark = trail_.size();
    Status s = Status::Ok();
    if (MatchTerm(prog_, rule_, &membership_, dst, *v, &bindings_, &trail_,
                  inst_, *ctx_.values)) {
      s = Step(cb);
    }
    UndoTrail(&bindings_, &trail_, mark);
    done_[c.literal] = false;
    return s;
  }

  Status Step(const std::function<Status(const Bindings&)>& cb) {
    // 1. Process checkable literals first (pure filters, no branching).
    for (size_t i = 0; i < rule_.body.size(); ++i) {
      if (done_[i]) continue;
      const Literal& lit = rule_.body[i];
      if (!IsCheckable(i)) continue;
      if (!Check(i, lit)) return Status::Ok();  // this branch fails
      done_[i] = true;
      Status s = Step(cb);
      done_[i] = false;
      return s;
    }
    // 2. Use a positive literal as a generator.
    if (std::optional<GenChoice> choice = PickGenerator()) {
      return choice->equality ? GenerateEquality(*choice, cb)
                              : GenerateMembership(*choice, cb);
    }
    // 3. No literal is processable: range an unbound variable over its
    //    type extent (the paper's unrestricted-variable semantics).
    std::optional<Symbol> unbound;
    for (size_t i = 0; i < rule_.body.size(); ++i) {
      for (const std::vector<Symbol>* vars : {&lhs_vars_[i], &rhs_vars_[i]}) {
        for (Symbol v : *vars) {
          if (!bindings_.count(v) && (!unbound || v < *unbound)) unbound = v;
        }
      }
    }
    if (unbound.has_value()) {
      TypeId t = rule_.var_types.at(*unbound);
      IQL_ASSIGN_OR_RETURN(const std::vector<ValueId>* extent,
                           ctx_.extents->Enumerate(t));
      size_t lo = 0;
      size_t hi = extent->size();
      if (at_first_branch_) {
        at_first_branch_ = false;
        if (probe_width_ != nullptr) {
          *probe_width_ = extent->size();
          return Status::Ok();
        }
        lo = std::min(slice_begin_, hi);
        hi = std::min(slice_end_, hi);
      }
      for (size_t k = lo; k < hi; ++k) {
        if (ctx_.governor != nullptr) {
          IQL_RETURN_IF_ERROR(ctx_.governor->Poll());
        }
        bindings_.emplace(*unbound, (*extent)[k]);
        Status s = Step(cb);
        bindings_.erase(*unbound);
        IQL_RETURN_IF_ERROR(s);
      }
      return Status::Ok();
    }
    // 4. Everything processed and bound: emit the valuation.
    return cb(bindings_);
  }

  const Program& prog_;
  const Rule& rule_;
  const Instance& inst_;
  SolverContext ctx_;
  size_t delta_literal_;
  const std::vector<ValueId>* delta_facts_;
  TypeMembership membership_;
  std::vector<bool> done_;
  std::vector<std::vector<Symbol>> lhs_vars_;
  std::vector<std::vector<Symbol>> rhs_vars_;
  // Per membership literal with a tuple rhs: (attr, vars of that field).
  std::vector<std::vector<std::pair<Symbol, std::vector<Symbol>>>>
      field_vars_;
  Bindings bindings_;
  std::vector<Symbol> trail_;
  // Probe/slice state (see SetProbe/SetSlice): consumed at the first
  // multi-way branch of the enumeration.
  bool at_first_branch_ = true;
  size_t* probe_width_ = nullptr;
  size_t slice_begin_ = 0;
  size_t slice_end_ = static_cast<size_t>(-1);
};

// Engine dispatch facade: exactly one of the two solvers is engaged per
// (rule, solve). The register VM runs compiled rules; everything else --
// engine kTreeWalk, or a rule outside the VM-eligible fragment -- stays
// on the tree-walker. Both sides share the probe/slice/callback protocol,
// so the four enumeration call sites below are engine-agnostic.
struct AnySolver {
  std::optional<RuleSolver> tree;
  std::optional<vm::VmSolver> regvm;

  Status Solve(const std::function<Status(const Bindings&)>& cb) {
    return regvm.has_value() ? regvm->Solve(cb) : tree->Solve(cb);
  }
  void SetProbe(size_t* width) {
    if (regvm.has_value()) {
      regvm->SetProbe(width);
    } else {
      tree->SetProbe(width);
    }
  }
  void SetSlice(size_t begin, size_t end) {
    if (regvm.has_value()) {
      regvm->SetSlice(begin, end);
    } else {
      tree->SetSlice(begin, end);
    }
  }
};

// ---------------------------------------------------------------------------
// Valuation-domain head filter: "no extension theta-bar of theta satisfies
// head(r)" (§3.2). Head-only variables range over existing oids.
// ---------------------------------------------------------------------------

class HeadSatisfiability {
 public:
  HeadSatisfiability(const Program& prog, const Rule& rule,
                     const Instance& inst, ValueArena* values,
                     bool use_fast_path = true)
      : prog_(prog),
        rule_(rule),
        inst_(inst),
        values_(values),
        use_fast_path_(use_fast_path),
        membership_(&inst.universe()->types(), values, &inst) {
    std::set<Symbol> vars;
    prog.CollectVars(rule.head.rhs, &vars);
    rhs_vars_.assign(vars.begin(), vars.end());
  }

  bool RhsVarsBound(const Bindings& b) const {
    for (Symbol v : rhs_vars_) {
      if (!b.count(v)) return false;
    }
    return true;
  }

  // True if some extension of `theta` over the head-only variables (to
  // *existing* oids of their classes) satisfies the head in `inst`.
  bool Satisfiable(const Bindings& theta) {
    Bindings b = theta;
    std::vector<Symbol> trail;
    const Literal& head = rule_.head;
    ValueArena& values = *values_;
    if (head.kind == Literal::Kind::kMembership) {
      const Term& lhs = prog_.term(head.lhs);
      if (lhs.kind == Term::Kind::kDeref && !b.count(lhs.name)) {
        // x^(t) with x itself head-only: try every existing oid of x's
        // class.
        const TypeNode& xt =
            inst_.universe()->types().node(rule_.var_types.at(lhs.name));
        for (Oid o : inst_.ClassExtent(xt.class_name)) {
          b[lhs.name] = values.OfOid(o);
          if (MembershipSatisfiable(head, &b)) return true;
          b.erase(lhs.name);
        }
        return false;
      }
      return MembershipSatisfiable(head, &b);
    }
    // Equality head x^ = t.
    const Term& lhs = prog_.term(head.lhs);
    IQL_CHECK(lhs.kind == Term::Kind::kDeref);
    if (!b.count(lhs.name)) {
      const TypeNode& xt =
          inst_.universe()->types().node(rule_.var_types.at(lhs.name));
      for (Oid o : inst_.ClassExtent(xt.class_name)) {
        b[lhs.name] = values.OfOid(o);
        if (EqualitySatisfiable(head, &b)) return true;
        b.erase(lhs.name);
      }
      return false;
    }
    return EqualitySatisfiable(head, &b);
  }

 private:
  bool MembershipSatisfiable(const Literal& head, Bindings* b) {
    // Fast path: a fully-bound head needs a membership lookup, not a scan
    // (the common case for rules without invention).
    if (use_fast_path_ && RhsVarsBound(*b)) {
      auto rv = EvalTerm(prog_, head.rhs, *b, inst_, *values_);
      if (!rv.has_value()) return false;
      const Term& lhs = prog_.term(head.lhs);
      switch (lhs.kind) {
        case Term::Kind::kRelName:
          // A side-store value is structurally new, so it cannot occur in
          // any relation of the frozen instance; asking the instance (whose
          // comparator only reads the shared store) would be ill-formed.
          if (values_->IsSide(*rv)) return false;
          return inst_.RelationContains(lhs.name, *rv);
        case Term::Kind::kClassName: {
          const ValueNode& rn = values_->node(*rv);
          return rn.kind == ValueKind::kOid &&
                 inst_.OidInClass(rn.oid, lhs.name);
        }
        case Term::Kind::kVar:
        case Term::Kind::kDeref: {
          auto lv = EvalTerm(prog_, head.lhs, *b, inst_, *values_);
          if (!lv.has_value()) return false;
          const ValueNode& ln = values_->node(*lv);
          if (ln.kind != ValueKind::kSet) return false;
          return values_->ElemsContain(ln.elems, *rv);
        }
        default:
          return false;
      }
    }
    auto container = ContainerElems(prog_, head.lhs, *b, inst_, *values_);
    if (!container.has_value()) return false;
    std::vector<Symbol> trail;
    for (ValueId elem : *container) {
      size_t mark = trail.size();
      // Head-only variables not under the matched positions (e.g. inside a
      // deref) make MatchTerm evaluate to nullopt and fail, which is the
      // conservative direction: the rule fires more often, and the
      // application layer deduplicates.
      if (MatchTerm(prog_, rule_, &membership_, head.rhs, elem, b, &trail,
                    inst_, *values_)) {
        UndoTrail(b, &trail, mark);
        return true;
      }
      UndoTrail(b, &trail, mark);
    }
    return false;
  }

  bool EqualitySatisfiable(const Literal& head, Bindings* b) {
    auto lv = EvalTerm(prog_, head.lhs, *b, inst_, *values_);
    if (!lv.has_value()) return false;  // nu undefined: no extension
    std::vector<Symbol> trail;
    size_t mark = trail.size();
    bool ok = TermReady(prog_, head.rhs, *b) &&
              MatchTerm(prog_, rule_, &membership_, head.rhs, *lv, b,
                        &trail, inst_, *values_);
    UndoTrail(b, &trail, mark);
    return ok;
  }

  const Program& prog_;
  const Rule& rule_;
  const Instance& inst_;
  ValueArena* values_;
  bool use_fast_path_;
  TypeMembership membership_;
  std::vector<Symbol> rhs_vars_;
};

// ---------------------------------------------------------------------------
// One-step application.
// ---------------------------------------------------------------------------

struct Derivation {
  const Rule* rule;
  Bindings theta;
};

class StageRunner {
 public:
  // `pool` is null when the run is serial (num_threads resolved to 1);
  // otherwise it is shared across the program's stages.
  StageRunner(Universe* universe, const Schema& schema, const Program& prog,
              const std::vector<Rule>& rules, const EvalOptions& options,
              EvalStats* stats, ThreadPool* pool, Governor* governor)
      : u_(universe),
        schema_(schema),
        prog_(prog),
        rules_(rules),
        options_(options),
        stats_(stats),
        metrics_(options.metrics),
        pool_(pool),
        governor_(governor),
        choose_rng_(options.choose_seed) {
    for (const Rule& rule : rules_) {
      if (rule.head_negative) has_deletions_ = true;
    }
    // A rule's enumeration may fan out only when every variable type is
    // intersection-free: extent enumeration compiles intersections away by
    // interning new nodes into the shared TypePool, which workers must not
    // mutate. Such rules (and any whose first branch is narrow) take the
    // serial path.
    rule_parallel_.assign(rules_.size(), false);
    if (pool_ != nullptr) {
      for (size_t i = 0; i < rules_.size(); ++i) {
        bool ok = true;
        for (const auto& [var, t] : rules_[i].var_types) {
          if (!u_->types().IsIntersectionFree(t)) {
            ok = false;
            break;
          }
        }
        rule_parallel_[i] = ok;
      }
    }
    if (metrics_ != nullptr) {
      size_t first = metrics_->rules.size();
      for (const Rule& rule : rules_) {
        metrics_->rules.push_back(RuleMetrics{
            rule.stage, rule.index,
            prog_.RuleToString(rule, universe->symbols())});
      }
      rule_metrics_.reserve(rules_.size());
      for (size_t i = 0; i < rules_.size(); ++i) {
        rule_metrics_.push_back(&metrics_->rules[first + i]);
      }
    }
    if (options_.engine == EvalOptions::Engine::kVm) {
      compiled_.resize(rules_.size());
      for (size_t i = 0; i < rules_.size(); ++i) {
        compiled_[i] = il::CompileRule(prog_, rules_[i]);
        if (options_.il_opt && compiled_[i].has_value()) {
          compiled_[i] = il::OptimizeForExecution(*compiled_[i]);
        }
        if (options_.il_fuse && compiled_[i].has_value()) {
          compiled_[i] = il::FuseForExecution(*compiled_[i]);
        }
      }
    }
  }

  Status Run(Instance* work) {
    // A stage resumed mid-fixpoint (start_step_ > 0) always runs the naive
    // operator: WAL frames are step-granular, and for semi-naive-eligible
    // stages the naive iteration reaches the identical fixpoint from any
    // committed intermediate state (monotone, invention-free).
    if (options_.enable_seminaive && start_step_ == 0 &&
        EligibleForSemiNaive()) {
      return RunSemiNaive(work);
    }
    for (uint64_t step = start_step_;; ++step) {
      // Step-boundary governor check: the instance sits exactly on a
      // completed-step boundary here, so any trip (step budget, deadline,
      // cancel, memory) rolls back for free. The budget is read through
      // the governor so an external TightenSteps binds at the next round.
      if (step >= governor_->max_steps()) {
        return governor_->TripNow(TripReason::kSteps);
      }
      IQL_RETURN_IF_ERROR(governor_->CheckNow());
      auto step_start = std::chrono::steady_clock::now();
      uint64_t added_before = stats_->facts_added;
      IQL_ASSIGN_OR_RETURN(std::vector<Derivation> derivations,
                           ValuationDomain(*work));
      if (derivations.empty()) return Status::Ok();
      // Snapshot for net-change detection: with deletions in play, a step
      // whose insertions and deletions cancel out (J = I) is a fixpoint
      // even though individual operations fired.
      std::optional<Instance> before;
      if (has_deletions_) before = *work;
      IQL_ASSIGN_OR_RETURN(bool changed, Apply(derivations, work));
      ++prepared_epoch_;  // the commit invalidates prepared rule state
      ++stats_->steps;
      IQL_RETURN_IF_ERROR(CommitDurable(step, work));
      if (metrics_ != nullptr) {
        metrics_->rounds.push_back(RoundMetrics{
            stage_index_, step, /*seminaive=*/false,
            stats_->facts_added - added_before, work->GroundFactCount(),
            Seconds(step_start)});
      }
      if (options_.trace != nullptr) {
        *options_.trace << "stage " << stage_index_ << " step " << step
                        << ": val-dom " << derivations.size()
                        << ", facts " << work->GroundFactCount()
                        << ", invented " << stats_->invented_oids;
        if (step_partitions_ > 0) {
          *options_.trace << ", parallel partitions " << step_partitions_;
        }
        *options_.trace << "\n";
      }
      if (!changed) return Status::Ok();
      if (before.has_value() && work->EqualGroundFacts(*before)) {
        return Status::Ok();
      }
    }
  }

 private:
  // The compiled IL for (rule, delta_literal), or nullptr when the engine
  // is kTreeWalk or the rule is outside the VM-eligible fragment.
  // Coordinator-only: delta variants compile lazily into a node-stable
  // map; workers receive the resulting pointer and never call this.
  const il::CompiledRule* Compiled(size_t r, size_t delta_literal) {
    if (options_.engine != EvalOptions::Engine::kVm) return nullptr;
    if (delta_literal == il::kNoDelta) {
      return compiled_[r].has_value() ? &*compiled_[r] : nullptr;
    }
    auto key = std::make_pair(r, delta_literal);
    auto it = delta_compiled_.find(key);
    if (it == delta_compiled_.end()) {
      std::optional<il::CompiledRule> cr =
          il::CompileRule(prog_, rules_[r], delta_literal);
      if (options_.il_opt && cr.has_value()) {
        cr = il::OptimizeForExecution(*cr);
      }
      if (options_.il_fuse && cr.has_value()) {
        cr = il::FuseForExecution(*cr);
      }
      it = delta_compiled_.emplace(key, std::move(cr)).first;
    }
    return it->second.has_value() ? &*it->second : nullptr;
  }

  // Constructs the engine-selected solver for rule `r` into `out`. `cr`
  // must be this rule's Compiled() result for the same delta literal, and
  // `prepared` its Prepared() state (or null to materialize per call).
  void MakeSolver(AnySolver* out, const il::CompiledRule* cr, size_t r,
                  const Instance& inst, const SolverContext& ctx,
                  size_t delta_literal,
                  const std::vector<ValueId>* delta_facts,
                  const vm::PreparedRule* prepared) const {
    if (cr != nullptr) {
      vm::VmContext vctx;
      vctx.extents = ctx.extents;
      vctx.index = ctx.index;
      vctx.rule_metrics = ctx.rule_metrics;
      vctx.values = ctx.values;
      vctx.governor = ctx.governor;
      vctx.prepared = prepared;
      vctx.threaded = options_.dispatch == EvalOptions::Dispatch::kThreaded;
      out->regvm.emplace(*cr, inst, vctx, delta_facts);
    } else {
      out->tree.emplace(prog_, rules_[r], inst, ctx, delta_literal,
                        delta_facts);
    }
  }

  // Prepared state for `cr` against the current committed instance: the
  // kLoadRel / kLoadClass materializations and index-off candidate lists
  // a Solve call would otherwise repay on every invocation within a
  // fixpoint round. Coordinator-only, and always called before any worker
  // fork for the same solve (workers snapshot the shared store *after*
  // preparation, so the interned ids are visible read-only). Entries are
  // keyed by the node-stable CompiledRule address and invalidated by
  // epoch: every commit bumps prepared_epoch_, exactly the boundaries at
  // which the instance (and the semi-naive delta machinery) advances.
  const vm::PreparedRule* Prepared(const il::CompiledRule* cr,
                                   const Instance& inst) {
    if (cr == nullptr) return nullptr;
    auto& slot = prepared_[cr];
    if (slot.second.at.empty() || slot.first != prepared_epoch_) {
      ValueArena arena = ValueArena::Passthrough(&u_->values());
      slot.second =
          vm::PrepareRule(*cr, inst, arena, options_.enable_indexing);
      slot.first = prepared_epoch_;
    }
    return &slot.second;
  }

  // Variables bound by pattern matching inside `id`: var and tuple-field
  // positions. Derefs and set constructors are evaluated, not decomposed,
  // so their variables are not binding occurrences.
  void CollectBindableVars(TermId id, std::set<Symbol>* out) const {
    const Term& t = prog_.term(id);
    switch (t.kind) {
      case Term::Kind::kVar:
        out->insert(t.name);
        return;
      case Term::Kind::kTuple:
        for (const auto& [attr, child] : t.fields) {
          CollectBindableVars(child, out);
        }
        return;
      default:
        return;
    }
  }

  // Semi-naive eligibility (see EvalOptions::enable_seminaive): relation
  // heads only, no invention/choose/deletion, Datalog-safe bodies (every
  // variable bound by a positive relation/class membership pattern, so the
  // extent fallback never runs and new constants cannot enlarge ranges),
  // and no negation over a relation derived in this stage.
  bool EligibleForSemiNaive() const {
    std::set<Symbol> derived;
    for (const Rule& rule : rules_) {
      if (rule.head_negative || rule.has_choose ||
          !rule.invented_vars.empty()) {
        return false;
      }
      if (rule.head.kind != Literal::Kind::kMembership) return false;
      const Term& lhs = prog_.term(rule.head.lhs);
      if (lhs.kind != Term::Kind::kRelName) return false;
      derived.insert(lhs.name);
    }
    for (const Rule& rule : rules_) {
      std::set<Symbol> bindable;
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kMembership || !lit.positive) {
          continue;
        }
        const Term& lhs = prog_.term(lit.lhs);
        if (lhs.kind == Term::Kind::kRelName ||
            lhs.kind == Term::Kind::kClassName) {
          CollectBindableVars(lit.rhs, &bindable);
        }
      }
      std::set<Symbol> body_vars;
      for (const Literal& lit : rule.body) {
        prog_.CollectVars(lit, &body_vars);
        if (lit.kind == Literal::Kind::kMembership && !lit.positive) {
          const Term& lhs = prog_.term(lit.lhs);
          if (lhs.kind == Term::Kind::kRelName && derived.count(lhs.name)) {
            return false;  // negation over an in-stage relation
          }
        }
      }
      for (Symbol v : body_vars) {
        if (!bindable.count(v)) return false;
      }
    }
    return true;
  }

  Status RunSemiNaive(Instance* work) {
    struct PendingFact {
      Symbol rel;
      ValueId v;
      RuleMetrics* rm;
    };
    using Pending = std::vector<PendingFact>;
    // Eligible stages only ever add relation facts, so one stage-long index
    // stays valid under incremental AddRelationFact maintenance (class
    // extents and set values cannot change here).
    std::optional<RelationIndex> index;
    if (options_.enable_indexing) index.emplace(work);
    std::optional<CardinalityEstimator> estimator;
    if (options_.enable_scheduling) estimator.emplace(work);
    ValueArena arena = ValueArena::Passthrough(&u_->values());
    auto solve_into = [&](size_t rule_idx, ExtentEnumerator* extents,
                          size_t delta_literal,
                          const std::vector<ValueId>* delta_facts,
                          Pending* pending) -> Status {
      const Rule& rule = rules_[rule_idx];
      RuleMetrics* rm =
          rule_metrics_.empty() ? nullptr : rule_metrics_[rule_idx];
      Symbol head_rel = prog_.term(rule.head.lhs).name;
      SolverContext ctx;
      ctx.extents = extents;
      ctx.index = index.has_value() ? &*index : nullptr;
      ctx.estimator = estimator.has_value() ? &*estimator : nullptr;
      ctx.rule_metrics = rm;
      ctx.values = &arena;
      ctx.governor = governor_;
      ctx.schedule = options_.enable_scheduling;
      const il::CompiledRule* cr = Compiled(rule_idx, delta_literal);
      const vm::PreparedRule* prepared = Prepared(cr, *work);
      if (pool_ != nullptr && rule_parallel_[rule_idx]) {
        // Parallel semi-naive: partition this solve's first candidate
        // list (the delta itself whenever the planner ranges the delta
        // literal first) across the pool; heads are evaluated by the
        // coordinator from the rehomed thetas, in canonical order.
        IQL_ASSIGN_OR_RETURN(
            size_t width, ProbeBranchWidth(rule_idx, cr, *work, ctx,
                                           delta_literal, delta_facts,
                                           prepared));
        if (width >= options_.parallel_min_candidates) {
          auto start = std::chrono::steady_clock::now();
          if (rm != nullptr) ++rm->invocations;
          IQL_ASSIGN_OR_RETURN(
              std::vector<Bindings> thetas,
              ParallelEnumerate(*work, rule_idx, cr, width, rm,
                                /*filter_head=*/false, delta_literal,
                                delta_facts, prepared));
          for (const Bindings& theta : thetas) {
            auto v = EvalTerm(prog_, rule.head.rhs, theta, *work, arena);
            if (v.has_value()) pending->push_back({head_rel, *v, rm});
          }
          if (rm != nullptr) rm->seconds += Seconds(start);
          return Status::Ok();
        }
      }
      AnySolver solver;
      MakeSolver(&solver, cr, rule_idx, *work, ctx, delta_literal,
                 delta_facts, prepared);
      auto start = std::chrono::steady_clock::now();
      if (rm != nullptr) ++rm->invocations;
      Status s = solver.Solve([&](const Bindings& theta) -> Status {
        if (++stats_->derivations > options_.limits.max_derivations) {
          return governor_->TripNow(TripReason::kDerivations);
        }
        if (rm != nullptr) ++rm->derivations;
        auto v = EvalTerm(prog_, rule.head.rhs, theta, *work, arena);
        if (v.has_value()) pending->push_back({head_rel, *v, rm});
        return Status::Ok();
      });
      if (rm != nullptr) rm->seconds += Seconds(start);
      return s;
    };
    auto apply = [&](Pending* pending,
                     std::map<Symbol, std::vector<ValueId>>* delta)
        -> Status {
      for (const auto& [rel, v, rm] : *pending) {
        if (work->RelationContains(rel, v)) continue;
        IQL_RETURN_IF_ERROR(work->AddToRelation(rel, v));
        ++stats_->facts_added;
        governor_->accountant()->Charge(kFactBytes);
        if (rm != nullptr) ++rm->facts_added;
        if (index.has_value()) index->AddRelationFact(rel, v);
        (*delta)[rel].push_back(v);
      }
      // The commit moved the instance: prepared set values and candidate
      // lists are stale from here on.
      ++prepared_epoch_;
      return Status::Ok();
    };
    auto record_round =
        [&](uint64_t round, std::chrono::steady_clock::time_point start,
            const std::map<Symbol, std::vector<ValueId>>& d) {
          if (metrics_ == nullptr) return;
          uint64_t delta_facts = 0;
          for (const auto& [rel, facts] : d) delta_facts += facts.size();
          metrics_->rounds.push_back(
              RoundMetrics{stage_index_, round, /*seminaive=*/true,
                           delta_facts, work->GroundFactCount(),
                           Seconds(start)});
        };

    std::map<Symbol, std::vector<ValueId>> delta;
    // Round budget and governor checks run at the top of every round
    // (including round 0), mirroring the naive loop: a kSteps trip always
    // leaves exactly `limits.max_steps_per_stage` completed rounds, which
    // is what lets tests reproduce a tripped run's instance by re-running
    // with the observed step count as the budget.
    uint64_t rounds = 0;
    {
      // Round 0: full evaluation of every rule.
      if (rounds >= governor_->max_steps()) {
        return governor_->TripNow(TripReason::kSteps);
      }
      IQL_RETURN_IF_ERROR(governor_->CheckNow());
      auto round_start = std::chrono::steady_clock::now();
      step_partitions_ = 0;
      ExtentEnumerator extents(work, options_.limits.extent_budget);
      extents.set_governor(governor_);
      Pending pending;
      for (size_t r = 0; r < rules_.size(); ++r) {
        IQL_RETURN_IF_ERROR(solve_into(r, &extents, static_cast<size_t>(-1),
                                       nullptr, &pending));
      }
      IQL_RETURN_IF_ERROR(apply(&pending, &delta));
      ++stats_->steps;
      IQL_RETURN_IF_ERROR(CommitDurable(0, work));
      ++rounds;
      record_round(0, round_start, delta);
    }
    while (!delta.empty()) {
      if (rounds >= governor_->max_steps()) {
        return governor_->TripNow(TripReason::kSteps);
      }
      IQL_RETURN_IF_ERROR(governor_->CheckNow());
      auto round_start = std::chrono::steady_clock::now();
      step_partitions_ = 0;
      for (auto& [rel, facts] : delta) std::sort(facts.begin(), facts.end());
      ExtentEnumerator extents(work, options_.limits.extent_budget);
      extents.set_governor(governor_);
      Pending pending;
      for (size_t r = 0; r < rules_.size(); ++r) {
        const Rule& rule = rules_[r];
        for (size_t d = 0; d < rule.body.size(); ++d) {
          const Literal& lit = rule.body[d];
          if (lit.kind != Literal::Kind::kMembership || !lit.positive) {
            continue;
          }
          const Term& lhs = prog_.term(lit.lhs);
          if (lhs.kind != Term::Kind::kRelName) continue;
          auto it = delta.find(lhs.name);
          if (it == delta.end() || it->second.empty()) continue;
          IQL_RETURN_IF_ERROR(
              solve_into(r, &extents, d, &it->second, &pending));
        }
      }
      std::map<Symbol, std::vector<ValueId>> next;
      IQL_RETURN_IF_ERROR(apply(&pending, &next));
      delta = std::move(next);
      ++stats_->steps;
      IQL_RETURN_IF_ERROR(CommitDurable(rounds, work));
      record_round(rounds, round_start, delta);
      if (options_.trace != nullptr) {
        *options_.trace << "stage " << stage_index_ << " (semi-naive) round "
                        << rounds << ": facts " << work->GroundFactCount();
        if (step_partitions_ > 0) {
          *options_.trace << ", parallel partitions " << step_partitions_;
        }
        *options_.trace << "\n";
      }
      ++rounds;
    }
    if (index.has_value()) FoldIndexCounters(*index);
    return Status::Ok();
  }

  // One worker's private view of the frozen step instance: a snapshot
  // arena over the shared store plus arena-backed enumeration machinery.
  // Estimates and extents are deterministic functions of the frozen
  // instance, so every worker (and the coordinator's probe) makes the same
  // generator choices and sees the same candidate lists.
  struct WorkerState {
    std::optional<ValueArena> arena;
    std::optional<ExtentEnumerator> extents;
    std::optional<RelationIndex> index;
    std::optional<CardinalityEstimator> estimator;
    RuleMetrics shard;  // derivation/index counters, summed at merge
  };

  // Measures the width of rule `r`'s first multi-way branch against the
  // frozen instance without enumerating past it (ctx must be the
  // coordinator's serial context). Zero when the enumeration dies, or
  // never branches, before any candidate list.
  Result<size_t> ProbeBranchWidth(size_t r, const il::CompiledRule* cr,
                                  const Instance& inst, SolverContext ctx,
                                  size_t delta_literal,
                                  const std::vector<ValueId>* delta_facts,
                                  const vm::PreparedRule* prepared) {
    size_t width = 0;
    ctx.rule_metrics = nullptr;  // probe work is not attributed to the rule
    AnySolver probe;
    MakeSolver(&probe, cr, r, inst, ctx, delta_literal, delta_facts,
               prepared);
    probe.SetProbe(&width);
    IQL_RETURN_IF_ERROR(
        probe.Solve([](const Bindings&) { return Status::Ok(); }));
    return width;
  }

  // Enumerates rule `r`'s satisfying valuations with the candidate list at
  // the solver's first multi-way branch (width `width`, as measured by
  // ProbeBranchWidth against the same frozen instance) partitioned into
  // contiguous chunks that workers claim dynamically. Each worker
  // enumerates its chunks into private buffers, interning new o-values
  // into its side store; the coordinator then rehomes every binding into
  // the shared store and concatenates the buffers in chunk order -- which
  // is exactly the serial enumeration order, so downstream invention,
  // choose, and weak assignment see the canonical derivation sequence.
  // With `filter_head` set, the naive val-dom head filter runs inside the
  // workers (per-worker HeadSatisfiability over the same frozen instance).
  Result<std::vector<Bindings>> ParallelEnumerate(
      const Instance& inst, size_t r, const il::CompiledRule* cr,
      size_t width, RuleMetrics* rm, bool filter_head, size_t delta_literal,
      const std::vector<ValueId>* delta_facts,
      const vm::PreparedRule* prepared) {
    const Rule& rule = rules_[r];
    // More chunks than workers smooths skew from uneven subtree sizes;
    // chunk *order*, not assignment, determines the merged output.
    size_t chunk_count = std::min(width, pool_->workers() * 4);
    size_t workers = std::min(pool_->workers(), chunk_count);
    struct Chunk {
      size_t worker = 0;
      std::vector<Bindings> thetas;
      Status status = Status::Ok();
    };
    std::vector<Chunk> chunks(chunk_count);
    std::vector<WorkerState> states(workers);
    std::atomic<size_t> next_chunk{0};
    std::atomic<uint64_t> derivations{stats_->derivations};
    std::atomic<bool> abort{false};
    pool_->ParallelRun(workers, [&](size_t w) {
      WorkerState& st = states[w];
      st.arena.emplace(ValueArena::Snapshot(&u_->values()));
      st.arena->set_accountant(governor_->accountant());
      st.extents.emplace(&inst, options_.limits.extent_budget, &*st.arena);
      st.extents->set_governor(governor_);
      if (options_.enable_indexing) st.index.emplace(&inst, &*st.arena);
      if (options_.enable_scheduling) st.estimator.emplace(&inst);
      std::optional<HeadSatisfiability> head;
      if (filter_head) {
        head.emplace(prog_, rule, inst, &*st.arena,
                     !options_.disable_head_fast_path);
      }
      SolverContext ctx;
      ctx.extents = &*st.extents;
      ctx.index = st.index.has_value() ? &*st.index : nullptr;
      ctx.estimator = st.estimator.has_value() ? &*st.estimator : nullptr;
      ctx.rule_metrics = &st.shard;
      ctx.values = &*st.arena;
      ctx.governor = governor_;
      ctx.schedule = options_.enable_scheduling;
      for (;;) {
        // A sticky governor trip on any thread drains the whole pool: every
        // worker observes it either here or at its solver's next poll.
        if (abort.load(std::memory_order_relaxed) || governor_->tripped()) {
          return;
        }
        size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks.size()) return;
        Chunk& chunk = chunks[c];
        chunk.worker = w;
        if (FaultInjector::Global().ShouldFail(FaultSite::kWorkerTask)) {
          // An injected worker-task fault is reported through the governor
          // so the step aborts with the standard rollback guarantee.
          chunk.status = governor_->TripNow(TripReason::kFault);
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        AnySolver solver;
        MakeSolver(&solver, cr, r, inst, ctx, delta_literal, delta_facts,
                   prepared);
        solver.SetSlice(c * width / chunk_count,
                        (c + 1) * width / chunk_count);
        chunk.status = solver.Solve([&](const Bindings& theta) -> Status {
          uint64_t n =
              derivations.fetch_add(1, std::memory_order_relaxed) + 1;
          if (n > options_.limits.max_derivations) {
            return governor_->TripNow(TripReason::kDerivations);
          }
          ++st.shard.derivations;
          if (head.has_value() && !rule.head_negative &&
              head->Satisfiable(theta)) {
            return Status::Ok();  // not in val-dom
          }
          chunk.thetas.push_back(theta);
          return Status::Ok();
        });
        if (!chunk.status.ok()) {
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
    // Any failed chunk fails the step (the serial evaluator would have
    // surfaced the same class of error within the same enumeration).
    for (const Chunk& chunk : chunks) {
      IQL_RETURN_IF_ERROR(chunk.status);
    }
    // Belt and braces: a sticky trip always fails the step even if every
    // chunk drained before storing the error.
    IQL_RETURN_IF_ERROR(governor_->Poll());
    stats_->derivations = derivations.load();
    // Serial canonical merge: rehome each surviving binding into the
    // shared store, chunk by chunk, in chunk order.
    std::vector<Bindings> out;
    for (Chunk& chunk : chunks) {
      ValueArena& arena = *states[chunk.worker].arena;
      for (Bindings& theta : chunk.thetas) {
        Bindings rehomed;
        for (const auto& [var, v] : theta) {
          rehomed.emplace(var, arena.RehomeInto(&u_->values(), v));
        }
        out.push_back(std::move(rehomed));
      }
    }
    for (WorkerState& st : states) {
      if (rm != nullptr) {
        rm->derivations += st.shard.derivations;
        rm->index_probes += st.shard.index_probes;
        rm->index_scans += st.shard.index_scans;
        rm->vm_instructions += st.shard.vm_instructions;
        rm->vm_fused_dispatches += st.shard.vm_fused_dispatches;
      }
      if (st.index.has_value()) FoldIndexCounters(*st.index);
    }
    if (rm != nullptr) rm->parallel_partitions += chunk_count;
    step_partitions_ += chunk_count;
    return out;
  }

  Result<std::vector<Derivation>> ValuationDomain(const Instance& inst) {
    std::vector<Derivation> out;
    ValueArena arena = ValueArena::Passthrough(&u_->values());
    ExtentEnumerator extents(&inst, options_.limits.extent_budget, &arena);
    extents.set_governor(governor_);
    // Naive steps evaluate against the frozen step-start instance, so a
    // fresh per-step index needs no invalidation at all.
    std::optional<RelationIndex> index;
    if (options_.enable_indexing) index.emplace(&inst);
    std::optional<CardinalityEstimator> estimator;
    if (options_.enable_scheduling) estimator.emplace(&inst);
    step_partitions_ = 0;
    for (size_t r = 0; r < rules_.size(); ++r) {
      const Rule& rule = rules_[r];
      RuleMetrics* rm = rule_metrics_.empty() ? nullptr : rule_metrics_[r];
      // val-dom is a *set* of (r, theta): deduplication matters only for
      // invention rules (a duplicate theta would mint extra oids); for
      // ordinary heads, firing twice derives the same fact.
      bool dedupe = !rule.invented_vars.empty();
      std::set<Bindings> seen;
      SolverContext ctx;
      ctx.extents = &extents;
      ctx.index = index.has_value() ? &*index : nullptr;
      ctx.estimator = estimator.has_value() ? &*estimator : nullptr;
      ctx.rule_metrics = rm;
      ctx.values = &arena;
      ctx.governor = governor_;
      ctx.schedule = options_.enable_scheduling;
      const il::CompiledRule* cr = Compiled(r, il::kNoDelta);
      const vm::PreparedRule* prepared = Prepared(cr, inst);
      if (pool_ != nullptr && rule_parallel_[r]) {
        IQL_ASSIGN_OR_RETURN(
            size_t width,
            ProbeBranchWidth(r, cr, inst, ctx, static_cast<size_t>(-1),
                             nullptr, prepared));
        if (width >= options_.parallel_min_candidates) {
          auto start = std::chrono::steady_clock::now();
          if (rm != nullptr) ++rm->invocations;
          IQL_ASSIGN_OR_RETURN(
              std::vector<Bindings> thetas,
              ParallelEnumerate(inst, r, cr, width, rm,
                                /*filter_head=*/true,
                                static_cast<size_t>(-1), nullptr, prepared));
          for (Bindings& theta : thetas) {
            if (!dedupe || seen.insert(theta).second) {
              out.push_back({&rule, std::move(theta)});
            }
          }
          if (rm != nullptr) rm->seconds += Seconds(start);
          continue;
        }
      }
      HeadSatisfiability head(prog_, rule, inst, &arena,
                              !options_.disable_head_fast_path);
      AnySolver solver;
      MakeSolver(&solver, cr, r, inst, ctx, static_cast<size_t>(-1),
                 nullptr, prepared);
      auto start = std::chrono::steady_clock::now();
      if (rm != nullptr) ++rm->invocations;
      Status s = solver.Solve([&](const Bindings& theta) -> Status {
        if (++stats_->derivations > options_.limits.max_derivations) {
          return governor_->TripNow(TripReason::kDerivations);
        }
        if (rm != nullptr) ++rm->derivations;
        // The "no extension satisfies the head" filter applies to
        // inflationary heads only; a deletion rule (IQL*) is applicable
        // whenever its body is satisfied (deleting an absent fact is a
        // no-op caught by net-change detection).
        if (!rule.head_negative && head.Satisfiable(theta)) {
          return Status::Ok();  // not in val-dom
        }
        if (!dedupe || seen.insert(theta).second) {
          out.push_back({&rule, theta});
        }
        return Status::Ok();
      });
      if (rm != nullptr) rm->seconds += Seconds(start);
      IQL_RETURN_IF_ERROR(s);
    }
    if (index.has_value()) FoldIndexCounters(*index);
    return out;
  }

  void FoldIndexCounters(const RelationIndex& index) {
    if (metrics_ == nullptr) return;
    const RelationIndex::Counters& c = index.counters();
    metrics_->index_builds += c.builds;
    metrics_->index_probes += c.probes;
    metrics_->index_hits += c.hits;
  }

  // Applies all derivations "in parallel": inventions first (the
  // valuation-map), then fact derivation, then weak assignment per (*),
  // then IQL* deletions. Returns whether the instance changed.
  Result<bool> Apply(const std::vector<Derivation>& derivations,
                     Instance* work) {
    ValueStore& values = u_->values();
    // Application always runs on the coordinator against the shared store.
    ValueArena arena = ValueArena::Passthrough(&values);
    struct PendingAssignment {
      std::set<ValueId> candidates;
      RuleMetrics* rm = nullptr;
    };
    // Inflationary adds carry the deriving rule's metrics slot so that
    // facts_added can be attributed per rule at insertion time.
    struct RelAdd {
      Symbol rel;
      ValueId v;
      RuleMetrics* rm;
    };
    struct OidAdd {
      Symbol cls;
      Oid o;
      RuleMetrics* rm;
    };
    struct SetInsert {
      Oid o;
      ValueId v;
      RuleMetrics* rm;
    };
    std::vector<RelAdd> rel_adds;
    std::vector<OidAdd> oid_adds;  // invented oids + class heads
    std::vector<SetInsert> set_inserts;
    std::map<Oid, PendingAssignment> assignments;
    std::set<Oid> invented_this_step;
    std::vector<std::pair<Symbol, ValueId>> rel_dels;
    std::vector<Oid> oid_dels;
    std::vector<std::pair<Oid, ValueId>> set_removals;
    std::vector<std::pair<Oid, ValueId>> value_retractions;

    for (const Derivation& d : derivations) {
      const Rule& rule = *d.rule;
      RuleMetrics* rm =
          rule_metrics_.empty()
              ? nullptr
              : rule_metrics_[static_cast<size_t>(d.rule - rules_.data())];
      Bindings b = d.theta;
      // Valuation-map: bind head-only variables.
      bool skip = false;
      for (Symbol var : rule.invented_vars) {
        const TypeNode& vt = u_->types().node(rule.var_types.at(var));
        IQL_CHECK(vt.kind == TypeKind::kClass);
        if (rule.has_choose) {
          // IQL+ (§4.4): bind to an *existing* oid of the class, chosen
          // by policy. No candidates: nothing to choose. kRandom is the
          // N-IQL variant (choice may violate genericity).
          const auto& extent = work->ClassExtent(vt.class_name);
          if (extent.empty()) {
            skip = true;
            break;
          }
          Oid o;
          switch (options_.choose_policy) {
            case EvalOptions::ChoosePolicy::kMinOid:
              o = *extent.begin();
              break;
            case EvalOptions::ChoosePolicy::kMaxOid:
              o = *extent.rbegin();
              break;
            case EvalOptions::ChoosePolicy::kRandom: {
              choose_rng_ = Mix64(choose_rng_ + 0x9e3779b9);
              size_t index = choose_rng_ % extent.size();
              auto it = extent.begin();
              std::advance(it, index);
              o = *it;
              break;
            }
          }
          b[var] = values.OfOid(o);
        } else {
          // Fires during the collection phase, before any commit loop has
          // touched `work`, so the trip is transactional.
          if (++stats_->invented_oids > options_.limits.max_invented_oids) {
            return governor_->TripNow(TripReason::kInventedOids);
          }
          Oid o = u_->MintOid();
          oid_adds.push_back({vt.class_name, o, rm});
          invented_this_step.insert(o);
          b[var] = values.OfOid(o);
        }
      }
      if (skip) continue;
      // Derive the head fact.
      const Literal& head = rule.head;
      const Term& lhs = prog_.term(head.lhs);
      if (head.kind == Literal::Kind::kEquality) {
        // x^ = t (or its retraction).
        auto xv = EvalTerm(prog_, head.lhs, b, *work, arena);
        auto ov = b.at(lhs.name);
        Oid o = values.node(ov).oid;
        auto v = EvalTerm(prog_, head.rhs, b, *work, arena);
        if (!v.has_value()) continue;  // rhs mentions an undefined x^
        if (rule.head_negative) {
          if (xv.has_value() && *xv == *v) value_retractions.emplace_back(o, *v);
        } else {
          PendingAssignment& pa = assignments[o];
          pa.candidates.insert(*v);
          pa.rm = rm;
        }
        continue;
      }
      auto v = EvalTerm(prog_, head.rhs, b, *work, arena);
      if (!v.has_value()) continue;  // rhs mentions an undefined x^
      switch (lhs.kind) {
        case Term::Kind::kRelName:
          if (rule.head_negative) {
            rel_dels.emplace_back(lhs.name, *v);
          } else {
            rel_adds.push_back({lhs.name, *v, rm});
          }
          break;
        case Term::Kind::kClassName: {
          const ValueNode& n = values.node(*v);
          if (n.kind != ValueKind::kOid) {
            return TypeError("class head derived a non-oid value");
          }
          if (rule.head_negative) {
            oid_dels.push_back(n.oid);
          } else {
            oid_adds.push_back({lhs.name, n.oid, rm});
          }
          break;
        }
        case Term::Kind::kDeref: {
          Oid o = values.node(b.at(lhs.name)).oid;
          if (rule.head_negative) {
            set_removals.emplace_back(o, *v);
          } else {
            set_inserts.push_back({o, *v, rm});
          }
          break;
        }
        default:
          return InternalError("illegal head shape survived type checking");
      }
    }

    // Weak assignment filter (*): only oids with nu undefined at the start
    // of the step, and a unique candidate value, are assigned.
    std::vector<std::tuple<Oid, ValueId, RuleMetrics*>>
        applicable_assignments;
    for (const auto& [o, pending] : assignments) {
      bool defined_at_start =
          !invented_this_step.count(o) && work->ValueOf(o).has_value();
      if (defined_at_start) continue;
      if (pending.candidates.size() != 1) continue;
      applicable_assignments.emplace_back(o, *pending.candidates.begin(),
                                          pending.rm);
    }

    bool changed = false;
    uint64_t committed_before = stats_->facts_added;
    for (const auto& [cls, o, rm] : oid_adds) {
      if (!work->HasOid(o)) {
        IQL_RETURN_IF_ERROR(work->AddOid(cls, o));
        changed = true;
        ++stats_->facts_added;
        if (rm != nullptr) ++rm->facts_added;
      }
    }
    for (const auto& [rel, v, rm] : rel_adds) {
      if (!work->RelationContains(rel, v)) {
        IQL_RETURN_IF_ERROR(work->AddToRelation(rel, v));
        changed = true;
        ++stats_->facts_added;
        if (rm != nullptr) ++rm->facts_added;
      }
    }
    for (const auto& [o, v, rm] : set_inserts) {
      auto current = work->ValueOf(o);
      if (current.has_value() && values.SetContains(*current, v)) continue;
      IQL_RETURN_IF_ERROR(work->AddToSetOid(o, v));
      changed = true;
      ++stats_->facts_added;
      if (rm != nullptr) ++rm->facts_added;
    }
    for (const auto& [o, v, rm] : applicable_assignments) {
      IQL_RETURN_IF_ERROR(work->SetOidValue(o, v));
      changed = true;
      ++stats_->facts_added;
      if (rm != nullptr) ++rm->facts_added;
    }
    // IQL* deletions apply last within the step: a fact both derived and
    // deleted in the same step ends up deleted.
    for (const auto& [rel, v] : rel_dels) {
      if (work->RemoveFromRelation(rel, v)) {
        changed = true;
        ++stats_->facts_deleted;
      }
    }
    for (const auto& [o, v] : set_removals) {
      if (work->RemoveFromSetOid(o, v)) {
        changed = true;
        ++stats_->facts_deleted;
      }
    }
    for (const auto& [o, v] : value_retractions) {
      auto current = work->ValueOf(o);
      if (current.has_value() && *current == v && work->ClearOidValue(o)) {
        changed = true;
        ++stats_->facts_deleted;
      }
    }
    for (Oid o : oid_dels) {
      size_t n = work->DeleteOidCascade(o);
      if (n > 0) {
        changed = true;
        stats_->facts_deleted += n;
      }
    }
    // Charge the committed growth; the commit loops themselves never poll
    // (and never fail on a governor trip), so a trip between here and the
    // next step boundary still observes a completed step.
    governor_->accountant()->Charge(
        (stats_->facts_added - committed_before) * kFactBytes);
    return changed;
  }

  // Publishes a completed fixpoint step to the durability sink, if any. The
  // journal installed on `work` holds exactly this step's operations; it is
  // cleared once the sink accepts the frame, so the next step starts empty.
  // A sink failure ends the stage with the sink's status -- the governor
  // has not tripped, so no partial is handed out and the caller retries
  // from the durable prefix.
  Status CommitDurable(uint64_t step, Instance* work) {
    StepCommitSink* sink = options_.durability.sink;
    if (sink == nullptr) return Status::Ok();
    StepCommit commit{stage_index_, step, u_->next_oid_raw(), work->journal(),
                      work};
    IQL_RETURN_IF_ERROR(sink->OnStepCommit(commit));
    if (work->journal() != nullptr) work->journal()->clear();
    return Status::Ok();
  }

  Universe* u_;
  const Schema& schema_;
  const Program& prog_;
  const std::vector<Rule>& rules_;
  const EvalOptions& options_;
  EvalStats* stats_;
  EvalMetrics* metrics_ = nullptr;
  // Parallel to rules_ (empty when metrics are off): pointers into
  // metrics_->rules, stable because all of this stage's entries are
  // appended before any pointer is taken.
  std::vector<RuleMetrics*> rule_metrics_;
  ThreadPool* pool_ = nullptr;
  Governor* governor_ = nullptr;  // owned by EvaluateProgram, never null
  std::vector<bool> rule_parallel_;  // per rule: may its solver fan out?
  uint64_t step_partitions_ = 0;     // partitions used by the current step
  uint64_t choose_rng_ = 0;
  bool has_deletions_ = false;
  // Engine kVm: per-rule compiled IL (nullopt = tree-walk fallback), plus
  // lazily compiled semi-naive (rule, delta-literal) variants. The map's
  // node stability keeps CompiledRule addresses valid across inserts.
  std::vector<std::optional<il::CompiledRule>> compiled_;
  std::map<std::pair<size_t, size_t>, std::optional<il::CompiledRule>>
      delta_compiled_;
  // Prepared-scan cache (see Prepared()): per compiled rule, the epoch it
  // was prepared at and the prepared state. Commits bump the epoch.
  std::map<const il::CompiledRule*, std::pair<uint64_t, vm::PreparedRule>>
      prepared_;
  uint64_t prepared_epoch_ = 0;

 public:
  int stage_index_ = 0;
  // First naive step this stage executes (non-zero only for the resumed
  // stage of a recovered run; `work` then already holds that prefix).
  uint64_t start_step_ = 0;
};

}  // namespace

Result<Instance> EvaluateProgram(Universe* universe, const Schema& schema,
                                 Program* program, const Instance& input,
                                 const EvalOptions& options,
                                 EvalStats* stats) {
  if (!program->type_checked) {
    IQL_RETURN_IF_ERROR(TypeCheck(universe, schema, program));
  }
  if (!options.allow_deletions) {
    for (const Rule* rule : program->AllRules()) {
      if (rule->head_negative) {
        return FailedPreconditionError(
            "deletion rules require EvalOptions::allow_deletions (IQL*, "
            "§4.5); plain IQL is inflationary");
      }
    }
  }
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  size_t threads = ResolveThreadCount(options.num_threads);
  if (options.metrics != nullptr) {
    options.metrics->threads = static_cast<uint32_t>(threads);
  }
  // The governor is either owned by this call or lent by a scheduler
  // (EvalOptions::governor). With an external governor, its construction
  // limits are the single source of truth for the counter budgets, so the
  // local options copy below mirrors them -- otherwise a scheduler-built
  // governor and a caller-filled options.limits could silently disagree.
  std::optional<Governor> owned_governor;
  Governor* governor = options.governor;
  EvalOptions local_options = options;
  if (governor == nullptr) {
    owned_governor.emplace(options.limits, options.cancel);
    governor = &*owned_governor;
  } else {
    local_options.limits = governor->limits();
  }
  // Hook byte accounting into the shared store for the duration of the
  // run: only nodes interned by this evaluation are charged. The guard
  // unhooks on every return path (stores must not outlive the accountant).
  universe->values().set_accountant(governor->accountant());
  struct AccountantGuard {
    ValueStore* store;
    ~AccountantGuard() { store->set_accountant(nullptr); }
  } unhook{&universe->values()};
  // One pool for the whole program; stages borrow it. threads == 1 keeps
  // the pool (and every probe/merge code path) entirely out of the run.
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  Instance work(&schema, universe);
  IQL_RETURN_IF_ERROR(work.Absorb(input));
  // Durable runs journal each step's fact operations on the work instance.
  // The journal attaches *after* Absorb -- the input is already covered by
  // the run's base snapshot, so its facts must not land in any WAL frame.
  // Instance moves and copies drop the pointer, so the partial handed out
  // on a trip (and the returned fixpoint) never dangle into this frame.
  std::vector<FactOp> journal;
  const EvalOptions::Durability& durability = local_options.durability;
  if (durability.sink != nullptr) work.set_journal(&journal);
  Status run_status = Status::Ok();
  int stage_index = 0;
  for (const auto& stage : program->stages) {
    int this_stage = stage_index++;
    if (durability.resume &&
        this_stage < static_cast<int>(durability.resume_stage)) {
      // Fully evaluated before the crash; its fixpoint is part of `input`.
      continue;
    }
    StageRunner runner(universe, schema, *program, stage, local_options,
                       stats, pool.has_value() ? &*pool : nullptr, governor);
    runner.stage_index_ = this_stage;
    if (durability.resume &&
        this_stage == static_cast<int>(durability.resume_stage)) {
      runner.start_step_ = durability.resume_step;
    }
    run_status = runner.Run(&work);
    if (!run_status.ok()) break;
  }
  stats->elapsed_seconds = governor->elapsed_seconds();
  stats->peak_memory_bytes = governor->accountant()->peak_bytes();
  stats->trip = governor->trip_reason();
  if (options.metrics != nullptr) {
    options.metrics->elapsed_seconds = stats->elapsed_seconds;
    options.metrics->peak_memory_bytes = stats->peak_memory_bytes;
    options.metrics->trip = stats->trip;
  }
  if (!run_status.ok()) {
    if (governor->tripped()) {
      // Attach the full resource report (the governor alone cannot see the
      // evaluator's counters) and hand out the rolled-back instance: every
      // trip is raised during enumeration or at a step boundary, never
      // mid-commit, so `work` equals the last completed fixpoint step.
      ResourceReport report = governor->Report();
      report.steps = stats->steps;
      report.derivations = stats->derivations;
      report.invented_oids = stats->invented_oids;
      run_status = Status(run_status.code(),
                          run_status.message() + " [resource report: " +
                              report.ToString() + "]");
      if (options.partial != nullptr) *options.partial = std::move(work);
    }
    return run_status;
  }
  return work;
}

Result<Instance> RunUnit(Universe* universe, ParsedUnit* unit,
                         const Instance& input, const EvalOptions& options,
                         EvalStats* stats) {
  IQL_ASSIGN_OR_RETURN(
      Instance full, EvaluateProgram(universe, unit->schema, &unit->program,
                                     input, options, stats));
  if (unit->output_names.empty()) return full;
  IQL_ASSIGN_OR_RETURN(Schema out, unit->schema.Project(unit->output_names));
  return full.Project(std::make_shared<const Schema>(std::move(out)));
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

}  // namespace

std::string EvalMetrics::ToJson() const {
  std::ostringstream os;
  os << "{\"rules\":[";
  for (size_t i = 0; i < rules.size(); ++i) {
    const RuleMetrics& r = rules[i];
    if (i > 0) os << ",";
    os << "{\"stage\":" << r.stage << ",\"index\":" << r.index
       << ",\"text\":\"" << JsonEscape(r.text) << "\""
       << ",\"invocations\":" << r.invocations
       << ",\"derivations\":" << r.derivations
       << ",\"facts_added\":" << r.facts_added
       << ",\"index_probes\":" << r.index_probes
       << ",\"index_scans\":" << r.index_scans
       << ",\"parallel_partitions\":" << r.parallel_partitions
       << ",\"vm_instructions\":" << r.vm_instructions
       << ",\"vm_fused_dispatches\":" << r.vm_fused_dispatches
       << ",\"seconds\":" << r.seconds << "}";
  }
  os << "],\"rounds\":[";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const RoundMetrics& r = rounds[i];
    if (i > 0) os << ",";
    os << "{\"stage\":" << r.stage << ",\"round\":" << r.round
       << ",\"seminaive\":" << (r.seminaive ? "true" : "false")
       << ",\"delta_facts\":" << r.delta_facts
       << ",\"total_facts\":" << r.total_facts << ",\"seconds\":" << r.seconds
       << "}";
  }
  os << "],\"index_builds\":" << index_builds
     << ",\"index_probes\":" << index_probes
     << ",\"index_hits\":" << index_hits << ",\"threads\":" << threads
     << ",\"elapsed_seconds\":" << elapsed_seconds
     << ",\"peak_memory_bytes\":" << peak_memory_bytes << ",\"trip\":\""
     << TripReasonName(trip) << "\"}";
  return os.str();
}

Result<std::string> ExplainSchedule(Universe* universe, const Schema& schema,
                                    Program* program, const Instance& input) {
  if (!program->type_checked) {
    IQL_RETURN_IF_ERROR(TypeCheck(universe, schema, program));
  }
  const Program& prog = *program;
  CardinalityEstimator estimator(&input);
  std::ostringstream os;
  for (const Rule* rule_ptr : program->AllRules()) {
    const Rule& rule = *rule_ptr;
    os << "rule " << rule.stage << "." << rule.index << ": "
       << prog.RuleToString(rule, universe->symbols()) << "\n";
    std::set<Symbol> bound;
    std::vector<bool> done(rule.body.size(), false);
    size_t remaining = 0;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (rule.body[i].kind == Literal::Kind::kChoose) {
        done[i] = true;
      } else {
        ++remaining;
      }
    }
    auto covered = [&](const std::set<Symbol>& vars) {
      return std::includes(bound.begin(), bound.end(), vars.begin(),
                           vars.end());
    };
    auto literal_vars = [&](size_t i) {
      std::set<Symbol> vars;
      prog.CollectVars(rule.body[i], &vars);
      return vars;
    };
    int step = 0;
    while (remaining > 0) {
      // 1. Fully-bound literals are pure filters.
      bool progressed = false;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (done[i] || !covered(literal_vars(i))) continue;
        done[i] = true;
        --remaining;
        os << "  " << ++step << ". check literal #" << (i + 1) << "\n";
        progressed = true;
      }
      if (progressed) continue;
      // 2. The cheapest eligible generator, scored as the solver scores it
      //    from an empty valuation.
      struct Candidate {
        size_t literal = 0;
        double estimate = 0;
        std::string describe;
      };
      std::optional<Candidate> best;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (done[i]) continue;
        const Literal& lit = rule.body[i];
        if (!lit.positive) continue;
        Candidate c;
        c.literal = i;
        if (lit.kind == Literal::Kind::kEquality) {
          std::set<Symbol> lv, rv;
          prog.CollectVars(lit.lhs, &lv);
          prog.CollectVars(lit.rhs, &rv);
          if (!covered(lv) && !covered(rv)) continue;
          c.estimate = 0.5;
          c.describe = "bind via equality";
        } else if (lit.kind == Literal::Kind::kMembership) {
          const Term& lhs = prog.term(lit.lhs);
          std::vector<Symbol> attrs;
          const Term& rhs = prog.term(lit.rhs);
          if (rhs.kind == Term::Kind::kTuple) {
            for (const auto& [attr, child] : rhs.fields) {
              std::set<Symbol> vs;
              prog.CollectVars(child, &vs);
              if (covered(vs)) attrs.push_back(attr);
            }
          }
          std::ostringstream d;
          if (lhs.kind == Term::Kind::kRelName) {
            size_t size = estimator.RelationSize(lhs.name);
            c.estimate = attrs.empty()
                             ? static_cast<double>(size)
                             : estimator.EstimateMatches(lhs.name, attrs);
            d << (attrs.empty() ? "scan relation " : "probe relation ")
              << universe->Name(lhs.name) << " (|extent| " << size;
          } else if (lhs.kind == Term::Kind::kClassName) {
            size_t size = estimator.ClassSize(lhs.name);
            c.estimate = static_cast<double>(size);
            for (size_t k = 0; k < attrs.size() && c.estimate > 1.0; ++k) {
              c.estimate = std::max(1.0, c.estimate / 4.0);
            }
            d << (attrs.empty() ? "scan class " : "probe class ")
              << universe->Name(lhs.name) << " (|extent| " << size;
          } else if (lhs.kind == Term::Kind::kVar ||
                     lhs.kind == Term::Kind::kDeref) {
            std::set<Symbol> lv;
            prog.CollectVars(lit.lhs, &lv);
            if (!covered(lv)) continue;  // container not evaluable yet
            c.estimate = 8.0;  // set sizes are unknowable statically
            d << "enumerate set value (size unknown";
          } else {
            continue;
          }
          if (!attrs.empty()) {
            d << ", keyed on {";
            for (size_t k = 0; k < attrs.size(); ++k) {
              if (k > 0) d << ", ";
              d << universe->Name(attrs[k]);
            }
            d << "}";
          }
          d << ")";
          c.describe = d.str();
        } else {
          continue;
        }
        if (!best.has_value() || c.estimate < best->estimate) best = c;
      }
      if (best.has_value()) {
        done[best->literal] = true;
        --remaining;
        std::set<Symbol> vars = literal_vars(best->literal);
        bound.insert(vars.begin(), vars.end());
        os << "  " << ++step << ". generate from literal #"
           << (best->literal + 1) << ": " << best->describe << " -- est. "
           << best->estimate << " branches\n";
        continue;
      }
      // 3. No literal processable: the solver ranges an unbound variable
      //    over its type extent.
      std::optional<Symbol> unbound;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (done[i]) continue;
        for (Symbol v : literal_vars(i)) {
          if (!bound.count(v) && (!unbound.has_value() || v < *unbound)) {
            unbound = v;
          }
        }
      }
      if (!unbound.has_value()) break;  // unreachable: all-bound is a check
      bound.insert(*unbound);
      os << "  " << ++step << ". range " << universe->Name(*unbound)
         << " over its type extent\n";
    }
    // Parallel eligibility (EvalOptions::num_threads): with workers
    // available, step 1's candidate list is partitioned across them when
    // it is wide enough; partition counts for an actual run appear in the
    // metrics (parallel_partitions).
    bool parallel_ok = true;
    for (const auto& [var, t] : rule.var_types) {
      if (!universe->types().IsIntersectionFree(t)) {
        parallel_ok = false;
        break;
      }
    }
    os << "  parallel: "
       << (parallel_ok ? "eligible (first generator partitions across "
                         "workers when wide enough)"
                       : "serial only (intersection type in rule scope)")
       << "\n";
  }
  return os.str();
}

}  // namespace iqlkit
