// Verified optimizer passes over the flat rule IL (iql/il.h), plus the
// L-series IL diagnostics `iqlint --il` reports.
//
// Pass order (each justified by the dominance argument in iql/ilcheck.h:
// pc order dominates, registers are SSA, and a backtrack to scan s leaves
// every register defined at pc <= s untouched):
//
//   1. Load hoisting. kLoadConst / kLoadRel / kLoadClass are pure,
//      operand-free, and cannot fail, so they move to the top of the body
//      (loop-invariant code motion: a load under a scan re-executes per
//      candidate for the same hash-consed id).
//   2. Value numbering + equality propagation. Duplicate pure producers
//      collapse (hash-consing makes identical constructions the same
//      ValueId); a successful kCmp/kCheckEq(pol) makes its operands equal
//      for every later pc, so later reads use the earlier register.
//   3. Redundant-check elimination. A check identical (up to register
//      equivalence) to one that already succeeded on every path here
//      always succeeds, as do kCmp r, r after propagation; both drop.
//      Checks that can never succeed (distinct constants compared,
//      kCheckIn over a never-set register) are reported as a statically
//      empty body (L003) but left in place -- they fail fast at runtime.
//   4. Filter sinking. For a scan followed by its kMatchTuple guard, a
//      field projection compared against a register bound before the scan
//      becomes a *strict* probe key: the VM skips candidates whose keyed
//      field differs (Instr::strict), which is exact -- index buckets only
//      prefilter by hash -- so the post-scan compare is implied and drops,
//      and the probe gets statically tighter (index on or off).
//   5. Dead-value elimination. Pure producers (loads, kGetField,
//      kMakeTuple, kMakeSet) whose result is never read drop, to a
//      fixpoint. Scans are never removed (they shape the loop nest and the
//      candidate enumeration the parallel protocol partitions), and kDeref
//      is never removed (a failing deref is a filter).
//   6. Register compaction + aux/theta rebuild.
//
// Why outputs are byte-identical: eligible rules' head effects are
// order-insensitive *sets* of emitted valuations, and every pass either
// removes work that cannot affect which valuations are emitted (2, 3, 5)
// or skips candidates that provably fail a later filter before emitting
// (4), in the same canonical candidate order. The engine x mode x threads
// differential matrix enforces this with the unoptimized IL and the
// tree-walker as two independent oracles.

#ifndef IQLKIT_IQL_ILOPT_H_
#define IQLKIT_IQL_ILOPT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "base/interner.h"
#include "iql/ast.h"
#include "iql/il.h"
#include "iql/ilcheck.h"
#include "model/type.h"

namespace iqlkit::il {

// Why the optimizer dropped an instruction -- the L001 evidence.
enum class RemoveReason : uint8_t {
  kValueNumbered,   // duplicate pure producer; the earlier register serves
  kRedundantCheck,  // an identical check already succeeded on this path
  kTautology,       // the check can never fail after equality propagation
  kProbeImplied,    // implied by a strict probe key sunk into its scan
  kDeadValue,       // pure producer whose result is never read
};

// Stable lowercase name ("value-numbered", "dead-value", ...).
std::string_view RemoveReasonName(RemoveReason reason);

struct RemovedInstr {
  uint32_t pc = 0;        // pc in the ORIGINAL rule
  uint32_t src = kNoSrc;  // originating body literal (Instr::src)
  RemoveReason reason = RemoveReason::kDeadValue;
};

// A statically-always-failing filter: the body provably emits nothing.
struct EmptyReason {
  uint32_t pc = 0;        // pc of the contradiction in the ORIGINAL rule
  uint32_t src = kNoSrc;  // its body literal
  std::string detail;
};

struct OptResult {
  CompiledRule rule;
  std::vector<RemovedInstr> removed;       // ascending original pc
  std::vector<uint32_t> strict_scans;      // original pcs made strict
  std::optional<EmptyReason> statically_empty;  // first contradiction (L003)
};

// Runs the passes above over one verifier-clean compiled rule. The result
// is re-verified in debug builds. Idempotent: optimizing the output again
// removes nothing further. Expects unfused IL: fusion (below) is the last
// pipeline stage, so a rule already containing fused opcodes is returned
// unchanged.
OptResult OptimizeRule(const CompiledRule& cr);

// The evaluator's entry point: optimize, keep only the rewritten rule.
CompiledRule OptimizeForExecution(const CompiledRule& cr);

// ---- superinstruction fusion ----------------------------------------------
//
// Collapses the hottest straight-line sequences into the fused opcodes of
// iql/il.h, trading dispatch count for per-op work on the VM's threaded
// tier:
//
//   * kScanRel(strict) + kMatchTuple guard  ->  kScanRelKeyed. The guard's
//     shape moves into the scan, the strict probe's (attr, key) pairs
//     become (field position, key) pairs against that shape, and the VM
//     compares keyed fields positionally -- the strict-probe fast path --
//     falling back to nothing: a candidate of any other shape simply
//     fails the fused guard, exactly as it would have failed the match.
//   * kMatchTuple + kGetField* (every projection of the matched register
//     up to the next scan)  ->  kDestructure: one shape check plus all
//     field extractions in a single dispatch. Projections are pure and
//     guarded, so executing them at the match point is observationally
//     identical.
//   * Runs of >= 2 consecutive kCmp / kCheckEq(pol=true)  ->  kCmpN.
//
// Fusion never reorders filters relative to scans, never renumbers
// registers, and never changes which candidates reach kEmit, so outputs
// stay byte-identical; the engine x dispatch x fusion x threads
// differential matrix enforces that. Idempotent (fused opcodes are not
// fusion candidates); the result is re-verified in debug builds.

struct FuseResult {
  CompiledRule rule;
  uint32_t fused_keyed_scans = 0;
  uint32_t fused_destructures = 0;
  uint32_t fused_cmp_chains = 0;
};

// Fuses one verifier-clean rule (typically OptimizeRule's output; raw
// lowerings fuse too, though without strict scans only the destructure
// and cmp-chain patterns apply).
FuseResult FuseRule(const CompiledRule& cr);

// The evaluator's entry point: fuse, keep only the rewritten rule.
CompiledRule FuseForExecution(const CompiledRule& cr);

// ---- L-series lint --------------------------------------------------------
//
//   L001 (hint)    dead/redundant instruction the optimizer eliminates
//   L002 (hint)    join scan with no bindable probe key: a full scan of the
//                  container per outer candidate
//   L003 (warning) statically empty rule body (always-failing filter)
//   L004 (error)   verifier violation (malformed IL; never from CompileRule)
//
// Spans map through Instr::src to the source literal that lowered to the
// instruction (whole-rule span when the instruction was synthesized).
// Tree-walk fallback rules are skipped: they have no IL to diagnose.
void LintProgramIl(const Program& prog, const SymbolTable& syms,
                   const TypePool& types, DiagnosticSink* sink);

// Renders L-series diagnostics for one already-compiled rule (the
// building block LintProgramIl uses; exposed for tests and tools).
void LintCompiledRule(const CompiledRule& cr, const Rule& rule,
                      const SymbolTable& syms, const TypePool& types,
                      DiagnosticSink* sink);

// ---- extended IL dump -----------------------------------------------------

struct IlDumpOptions {
  bool optimize = false;        // dump the optimizer's output
  bool delta_variants = false;  // also dump each semi-naive delta variant
  bool fuse = false;            // dump the fusion pass's output (applied
                                // after the optimizer when both are set)
};

// DumpProgramIl with options. Delta variants are dumped for every positive
// relation-membership body literal whose relation is a head relation of
// the same stage -- a superset of the variants semi-naive evaluation
// compiles (it also requires stage eligibility), so the golden corpus pins
// every lowering the evaluator can request.
std::string DumpProgramIl(const Program& prog, const SymbolTable& syms,
                          const TypePool& types, const IlDumpOptions& opts);

}  // namespace iqlkit::il

#endif  // IQLKIT_IQL_ILOPT_H_
