#ifndef IQLKIT_IQL_INDEX_H_
#define IQLKIT_IQL_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"
#include "model/instance.h"
#include "model/value.h"

namespace iqlkit {

// Hash indexes over the containers a positive membership literal can range
// over: relation extents, class extents, and (immutable, hash-consed) set
// values. The solver asks two questions:
//
//   Elems(c)            the container's elements, materialized once per
//                       index lifetime instead of once per generator visit;
//   Probe(c, attrs, k)  the elements of c that are tuples whose top-level
//                       fields at `attrs` equal the values `k` -- the only
//                       candidates a tuple pattern with those fields bound
//                       can match.
//
// Indexes are built lazily (one scan of the extent on the first probe of a
// (container, attrs) pair) and keyed by the attribute set actually bound at
// generator time, so a rule body probing R on #1 and later on #2 gets two
// independent indexes. Correctness does not depend on the index being
// selective: a probe only *prefilters* by equality on the keyed fields, and
// the caller still pattern-matches every candidate, so elements whose arity
// or remaining fields disagree are rejected exactly as in a full scan.
//
// Lifetime and invalidation: the naive evaluator builds a fresh
// RelationIndex per fixpoint step (the step reads a frozen snapshot). The
// semi-naive runner keeps one index across rounds -- eligible stages only
// ever *add relation facts*, which AddRelationFact applies incrementally to
// every index already built over that relation; class extents and set
// values cannot change on such stages (no invention, no deletions, and set
// values are immutable by hash-consing).
class RelationIndex {
 public:
  struct Counters {
    uint64_t builds = 0;   // (container, attrs) indexes constructed
    uint64_t probes = 0;   // indexed lookups served
    uint64_t hits = 0;     // probes returning a non-empty bucket
  };

  // A container designator. Relation and class containers are named by
  // symbol; set containers by the set's ValueId (hash-consing makes the id
  // identify the contents).
  struct Container {
    enum class Kind : uint8_t { kRelation, kClass, kSetValue };
    Kind kind = Kind::kRelation;
    uint32_t id = 0;  // Symbol or ValueId

    static Container Relation(Symbol r) { return {Kind::kRelation, r}; }
    static Container Class(Symbol p) { return {Kind::kClass, p}; }
    static Container SetValue(ValueId v) { return {Kind::kSetValue, v}; }
  };

  // Serial form: reads (and, for class extents, interns oid values into)
  // the instance's shared ValueStore. Worker form: pass the worker's
  // `arena` so element ids may live in its private side store; interning
  // goes to the side store and never mutates the shared store.
  explicit RelationIndex(const Instance* instance, ValueArena* arena = nullptr)
      : instance_(instance), arena_(arena) {}
  RelationIndex(const RelationIndex&) = delete;
  RelationIndex& operator=(const RelationIndex&) = delete;

  // The container's elements as a vector, materialized and cached. The
  // pointer stays valid until destruction (relation vectors grow in place
  // via AddRelationFact but are stored node-stably).
  const std::vector<ValueId>& Elems(Container c);

  // The bucket of elements of `c` whose top-level tuple fields at `attrs`
  // (ascending, nonempty) equal `key` (parallel to `attrs`). Returns
  // nullptr for an empty bucket. Elements that are not tuples, or lack one
  // of the attributes, match no bucket -- they could not match a tuple
  // pattern binding those fields either.
  const std::vector<ValueId>* Probe(Container c,
                                    const std::vector<Symbol>& attrs,
                                    const std::vector<ValueId>& key);

  // Incremental maintenance: `fact` was just added to relation `r`.
  // Appends it to the materialized extent and to every index built over r.
  void AddRelationFact(Symbol r, ValueId fact);

  const Counters& counters() const { return counters_; }

 private:
  struct ContainerKey {
    uint8_t kind;
    uint32_t id;
    bool operator==(const ContainerKey& o) const {
      return kind == o.kind && id == o.id;
    }
  };
  struct ContainerKeyHash {
    size_t operator()(const ContainerKey& k) const {
      return static_cast<size_t>(Mix64((uint64_t{k.kind} << 32) | k.id));
    }
  };
  struct IndexKey {
    ContainerKey container;
    std::vector<Symbol> attrs;
    bool operator==(const IndexKey& o) const {
      return container == o.container && attrs == o.attrs;
    }
  };
  struct IndexKeyHash {
    size_t operator()(const IndexKey& k) const {
      return static_cast<size_t>(HashRange(
          k.attrs.begin(), k.attrs.end(),
          ContainerKeyHash{}(k.container)));
    }
  };
  // One index: bucket per distinct combination of keyed-field values.
  struct Index {
    std::unordered_map<uint64_t, std::vector<ValueId>> buckets;
    std::vector<Symbol> attrs;  // the keyed attributes, ascending
  };

  static ContainerKey Key(Container c) {
    return {static_cast<uint8_t>(c.kind), c.id};
  }
  // Hash of the element's values at `attrs`; false when the element is not
  // a tuple carrying every keyed attribute.
  bool ElementKey(ValueId elem, const std::vector<Symbol>& attrs,
                  uint64_t* out) const;
  void InsertElement(Index* index, ValueId elem);

  const ValueNode& NodeOf(ValueId v) const;

  const Instance* instance_;
  ValueArena* arena_;
  std::unordered_map<ContainerKey, std::vector<ValueId>, ContainerKeyHash>
      elems_;
  std::unordered_map<IndexKey, Index, IndexKeyHash> indexes_;
  // Indexes built per relation symbol, for incremental maintenance.
  std::unordered_map<Symbol, std::vector<Index*>> by_relation_;
  Counters counters_;
};

}  // namespace iqlkit

#endif  // IQLKIT_IQL_INDEX_H_
