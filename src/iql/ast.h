#ifndef IQLKIT_IQL_AST_H_
#define IQLKIT_IQL_AST_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/interner.h"
#include "base/source_span.h"
#include "model/schema.h"
#include "model/type.h"

namespace iqlkit {

// Handle to a term inside a Program's term arena.
using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = 0xFFFFFFFFu;

// The IQL terms of §3.1:
//   variables x; relation names R (of type {T(R)}); class names P (of type
//   {P}); dereference x^ ("x-hat", the value of the oid bound to x);
//   constants (an easy addition the paper mentions in Remark 3.1.1);
//   set constructors {t1,...,tk}; tuple constructors [A1:t1,...,Ak:tk].
struct Term {
  enum class Kind : uint8_t {
    kVar,       // name = variable symbol
    kConst,     // name = constant atom
    kRelName,   // name = relation symbol
    kClassName, // name = class symbol
    kDeref,     // name = variable symbol x; denotes x^
    kTuple,     // fields
    kSet,       // elems
  };

  Kind kind = Kind::kVar;
  Symbol name = kInvalidSymbol;
  std::vector<std::pair<Symbol, TermId>> fields;  // kTuple (sorted by attr)
  std::vector<TermId> elems;                      // kSet
  // Source position (invalid for programs built programmatically).
  SourceSpan span;
};

// A literal (§3.1): membership t1(t2), equality t1 = t2, their negations
// !t1(t2) and t1 != t2, and the IQL+ `choose` marker (§4.4).
struct Literal {
  enum class Kind : uint8_t { kMembership, kEquality, kChoose };

  Kind kind = Literal::Kind::kMembership;
  bool positive = true;
  TermId lhs = kInvalidTerm;  // membership: the set-typed side; equality: lhs
  TermId rhs = kInvalidTerm;
  // The whole literal, negation included.
  SourceSpan span;
};

// A rule L <- L1, ..., Lk. The head must be a *fact* (§3.1): R(t), P(t),
// x^(t) for a set-typed x^, or x^ = t for a non-set x^. A negative head
// (IQL*, §4.5) deletes instead of inserting.
struct Rule {
  Literal head;
  bool head_negative = false;  // IQL* deletion rule
  std::vector<Literal> body;

  // Filled by the type checker:
  std::map<Symbol, TypeId> var_types;   // every variable in the rule
  std::vector<Symbol> invented_vars;    // head-only variables (class-typed)
  bool has_choose = false;              // body contains `choose`

  // Position (for diagnostics): stage index and rule index within stage,
  // plus the source span from the first head token through the final '.'.
  int stage = 0;
  int index = 0;
  SourceSpan span;
};

// An IQL program: stages separated by ';' (the composition shorthand the
// paper defines via inflationary negation, §3.4 -- realized natively here),
// each stage a set of rules evaluated in parallel to an inflationary
// fixpoint. Terms live in a shared arena.
struct Program {
  std::vector<Term> terms;
  std::vector<std::vector<Rule>> stages;
  // Program-wide `var x: t` declarations; per-rule inference fills the rest.
  std::map<Symbol, TypeId> declared_var_types;
  // Span of each `x: t` declaration item (name through type), when parsed
  // from source; used by W004 (unused declaration) and W006 (empty type).
  std::map<Symbol, SourceSpan> declared_var_spans;
  // Set by TypeCheck once every rule's var_types/invented_vars are filled.
  bool type_checked = false;

  const Term& term(TermId id) const { return terms[id]; }

  TermId AddTerm(Term t) {
    terms.push_back(std::move(t));
    return static_cast<TermId>(terms.size() - 1);
  }
  TermId Var(Symbol name, SourceSpan span = {});
  TermId Const(Symbol atom, SourceSpan span = {});
  TermId RelName(Symbol name, SourceSpan span = {});
  TermId ClassName(Symbol name, SourceSpan span = {});
  TermId Deref(Symbol var, SourceSpan span = {});
  TermId TupleTerm(std::vector<std::pair<Symbol, TermId>> fields,
                   SourceSpan span = {});
  TermId SetTerm(std::vector<TermId> elems, SourceSpan span = {});

  // All rules across stages, in order.
  std::vector<const Rule*> AllRules() const;

  // Collects variable symbols occurring in a term / literal.
  void CollectVars(TermId t, std::set<Symbol>* out) const;
  void CollectVars(const Literal& lit, std::set<Symbol>* out) const;

  // Renders in the concrete syntax ("x^" for x-hat, ":-" for <-).
  std::string TermToString(TermId t, const SymbolTable& syms) const;
  std::string LiteralToString(const Literal& lit,
                              const SymbolTable& syms) const;
  std::string RuleToString(const Rule& rule, const SymbolTable& syms) const;
  std::string ToString(const SymbolTable& syms) const;
};

}  // namespace iqlkit

#endif  // IQLKIT_IQL_AST_H_
