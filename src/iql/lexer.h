#ifndef IQLKIT_IQL_LEXER_H_
#define IQLKIT_IQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/source_span.h"
#include "base/status.h"

namespace iqlkit {

// Token kinds of the concrete IQL syntax. Keywords are classified by the
// lexer; everything else alphanumeric is an identifier (the parser decides
// whether it names a relation, a class, or a variable).
enum class TokenKind : uint8_t {
  kIdent,     // foo, R1, x
  kString,    // "Adam"
  kInt,       // 42 (lexed as a constant atom)
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kLBrace,    // {
  kRBrace,    // }
  kComma,     // ,
  kColon,     // :
  kSemi,      // ;
  kDot,       // .
  kCaret,     // ^
  kEq,        // =
  kNeq,       // !=
  kBang,      // !
  kTurnstile, // :-
  kPipe,      // |
  kAmp,       // &
  kAt,        // @ (named oids in instance blocks)
  // keywords
  kKwSchema,
  kKwRelation,
  kKwClass,
  kKwProgram,
  kKwVar,
  kKwInput,
  kKwOutput,
  kKwChoose,
  kKwEmpty,
  kKwInstance,
  kKwBase,    // D
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // identifier / string contents / digits
  int line = 1;
  int column = 1;
  int offset = 0;  // byte position of the lexeme in the source buffer
  int length = 0;  // lexeme length in source bytes (quotes/escapes included)

  SourceSpan span() const { return SourceSpan{line, column, offset, length}; }
};

// Tokenizes `source`. Comments run from "//" or "#" to end of line.
// Reports the first lexical error with line/column; when `diags` is
// non-null the error is also recorded as an E001 diagnostic with an exact
// span (see analysis/diagnostic.h -- the sink type is forward-declared so
// base-level users need not link the analysis library).
class DiagnosticSink;
Result<std::vector<Token>> Lex(std::string_view source,
                               DiagnosticSink* diags = nullptr);

// Human-readable token name for diagnostics.
std::string_view TokenKindName(TokenKind kind);

}  // namespace iqlkit

#endif  // IQLKIT_IQL_LEXER_H_
