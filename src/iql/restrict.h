#ifndef IQLKIT_IQL_RESTRICT_H_
#define IQLKIT_IQL_RESTRICT_H_

#include <string>
#include <vector>

#include "iql/ast.h"
#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {

// Results of the §5 syntactic analyses on a type-checked program.
//
//   IQLrr  subset-of  IQLpr  subset-of  IQL        (Definition 5.3)
//
// A program is in IQLpr (IQLrr) if each stage is ptime-restricted
// (range-restricted) and either recursion-free or invention-free; such
// programs have PTIME data complexity (Theorem 5.4).
struct RestrictionReport {
  // Per Definitions 5.1 / 5.2, across all rules.
  bool ptime_restricted = true;
  bool range_restricted = true;
  // No rule has head-only variables / the dependency graph G(Gamma) of each
  // stage is acyclic.
  bool invention_free = true;
  bool recursion_free = true;
  // Definition 5.3 verdicts.
  bool in_iql_pr = true;
  bool in_iql_rr = true;
  // Human-readable explanations for each failed property.
  std::vector<std::string> notes;
};

// Analyzes a type-checked program (TypeCheck must have run, so that
// var_types and invented_vars are filled).
RestrictionReport AnalyzeRestrictions(Universe* universe,
                                      const Schema& schema,
                                      const Program& program);

// Definition 5.1: every body variable is ptime-restricted. Base case:
// variables whose type contains no set constructor; closure: through
// positive literals t1(t2), t1 = t2, t2 = t1 whose t1-side variables are
// all restricted.
bool IsPtimeRestrictedRule(Universe* universe, const Program& program,
                           const Rule& rule);

// Definition 5.2: like 5.1 but the base case is variables of class type.
bool IsRangeRestrictedRule(Universe* universe, const Program& program,
                           const Rule& rule);

// A stage is invention-free if no rule has a head-only variable.
bool IsInventionFreeStage(const std::vector<Rule>& stage);

// A stage is recursion-free if its dependency graph G(Gamma) is acyclic
// (§5): nodes are relation/class names; there is an arc n -> n' when some
// rule mentions n in its body (as a predicate, or as a class in the type of
// a body variable) and n' is the rule's head predicate, or n' is the class
// of an invented head-only variable.
bool IsRecursionFreeStage(Universe* universe, const Program& program,
                          const std::vector<Rule>& stage);

}  // namespace iqlkit

#endif  // IQLKIT_IQL_RESTRICT_H_
