#ifndef IQLKIT_IQL_PARSER_H_
#define IQLKIT_IQL_PARSER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "iql/ast.h"
#include "model/instance.h"
#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {

// A parsed source unit:
//
//   schema {
//     relation R  : [D, D];                    // positional attrs #1, #2
//     class    P  : [name: D, succ: {P}];      // named attrs, recursive
//   }
//   input R;                                    // projection S_in (§3)
//   output P;                                   // projection S_out
//   program {
//     var x: D, p: P;
//     R0(x)        :- R(x, y).
//     R0(x)        :- R(y, x).
//     ;                                         // stage separator (";")
//     p^ = [x, y]  :- R9(x, p, q), ...
//   }
//
// Rules use ":-" for the paper's left-arrow, "x^" for x-hat, "!" for
// negation, "choose" for the IQL+ literal, and "." to end a rule.
// A ground fact from an `instance { ... }` block:
//   R(1, 2);                       relation fact (positional shorthand)
//   P(@adam);                      class membership; names the oid "adam"
//   @adam = [name: "Adam", ...];   nu-value assignment
// Named oids (@label) are minted on first use; values may reference them
// freely (forward references included), so cyclic instances are writable.
struct ParsedFact {
  enum class Kind : uint8_t { kRelation, kClassOid, kOidValue };
  Kind kind = Kind::kRelation;
  Symbol name = kInvalidSymbol;  // relation / class
  Oid oid;                       // kClassOid / kOidValue
  ValueId value = kInvalidValue; // kRelation tuple / kOidValue nu-value
};

struct ParsedUnit {
  ParsedUnit(Universe* universe) : schema(universe) {}

  Schema schema;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  Program program;
  // From `instance { ... }` blocks, in order.
  std::vector<ParsedFact> facts;
  std::map<std::string, Oid> named_oids;
  // Source span of each schema declaration (`relation R : t` / `class P :
  // t`, keyword through type), keyed by the declared name's symbol.
  std::map<Symbol, SourceSpan> decl_spans;
};

class DiagnosticSink;

// Parses a full unit (schema required; input/output/program optional).
// When `diags` is non-null, lex/parse failures are additionally reported
// as E001/E002 diagnostics with exact source spans.
Result<ParsedUnit> ParseUnit(Universe* universe, std::string_view source,
                             DiagnosticSink* diags = nullptr);

// Parses rule/var items (the inside of a `program { ... }` block, with or
// without the wrapper) against an existing schema.
Result<Program> ParseProgramText(Universe* universe, const Schema& schema,
                                 std::string_view source,
                                 DiagnosticSink* diags = nullptr);

// Parses a single type expression, e.g. "[A: D, B: {P | Q}]".
Result<TypeId> ParseTypeText(Universe* universe, std::string_view source);

// Parses a schema block (with or without the `schema { ... }` wrapper).
Result<Schema> ParseSchemaText(Universe* universe, std::string_view source);

// The attribute symbol for position k (1-based) of positional tuples, "#k".
Symbol PositionalAttr(Universe* universe, int k);

// Applies a unit's parsed facts to `instance` (which must be over the
// unit's schema or a projection of it containing every mentioned name).
// Set-valued oids accept set literals (applied elementwise on top of the
// default empty set). Labels registered in named_oids become debug names.
Status ApplyFacts(const ParsedUnit& unit, Instance* instance);

// Serializes an instance as an `instance { ... }` block that ApplyFacts
// reads back into an O-isomorphic instance: class facts first (named
// after the oids' debug labels where printable), then nu-values, then
// relation facts (always in the one-argument form `R(<value>);`).
std::string WriteFacts(const Instance& instance);

}  // namespace iqlkit

#endif  // IQLKIT_IQL_PARSER_H_
