#include "iql/ilcheck.h"

#include <algorithm>
#include <cstddef>
#include <sstream>

namespace iqlkit::il {
namespace {

bool IsScan(Op op) {
  switch (op) {
    case Op::kScanRel:
    case Op::kScanClass:
    case Op::kScanSet:
    case Op::kScanDelta:
    case Op::kScanExtent:
    case Op::kScanRelKeyed:
      return true;
    default:
      return false;
  }
}

bool IsContainerScan(Op op) {
  return op == Op::kScanRel || op == Op::kScanClass || op == Op::kScanSet;
}

// aux entries actually addressable by the instruction, clamped so the
// analyses never index out of range on malformed IL (the verifier reports
// the bad range separately).
size_t AuxCount(const CompiledRule& cr, const Instr& in) {
  if (in.naux == 0 || in.aux >= cr.aux.size()) return 0;
  return std::min<size_t>(in.naux, cr.aux.size() - in.aux);
}

std::string Reg(uint16_t r) { return "r" + std::to_string(r); }

}  // namespace

void ForEachUse(const CompiledRule& cr, size_t pc,
                const std::function<void(uint16_t)>& fn) {
  const Instr& in = cr.code[pc];
  switch (in.op) {
    case Op::kLoadConst:
    case Op::kLoadRel:
    case Op::kLoadClass:
    case Op::kScanRel:
    case Op::kScanClass:
    case Op::kScanDelta:
    case Op::kScanExtent:
    case Op::kEmit:
      break;
    case Op::kDeref:
    case Op::kGetField:
    case Op::kMatchTuple:
    case Op::kBindType:
    case Op::kScanSet:
    case Op::kDestructure:
      fn(in.a);
      break;
    case Op::kScanRelKeyed:
      // (field position, key register) pairs: keys at odd offsets, read
      // when the scan resolves, like a probe spec.
      for (size_t k = 0; k + 1 < AuxCount(cr, in); k += 2) {
        fn(static_cast<uint16_t>(cr.aux[in.aux + k + 1]));
      }
      break;
    case Op::kCmpN:
      // Every aux entry is a compared register.
      for (size_t k = 0; k < AuxCount(cr, in); ++k) {
        fn(static_cast<uint16_t>(cr.aux[in.aux + k]));
      }
      break;
    case Op::kCheckRel:
    case Op::kCheckClass:
    case Op::kCheckDelta:
      fn(in.b);
      break;
    case Op::kCmp:
    case Op::kCheckIn:
    case Op::kCheckEq:
      fn(in.a);
      fn(in.b);
      break;
    case Op::kMakeTuple:
    case Op::kMakeSet:
      for (size_t k = 0; k < AuxCount(cr, in); ++k) {
        fn(static_cast<uint16_t>(cr.aux[in.aux + k]));
      }
      break;
  }
  // Probe-spec key registers: (attr, key) pairs, keys at odd offsets.
  // Evaluated before the scan resolves, so they read at the scan's pc.
  if (IsContainerScan(in.op)) {
    size_t limit = AuxCount(cr, in);
    for (size_t k = 0; k + 1 < limit; k += 2) {
      fn(static_cast<uint16_t>(cr.aux[in.aux + k + 1]));
    }
  }
}

int DefOf(const Instr& in) {
  switch (in.op) {
    case Op::kLoadConst:
    case Op::kLoadRel:
    case Op::kLoadClass:
    case Op::kDeref:
    case Op::kGetField:
    case Op::kMakeTuple:
    case Op::kMakeSet:
    case Op::kScanRel:
    case Op::kScanClass:
    case Op::kScanSet:
    case Op::kScanDelta:
    case Op::kScanExtent:
    case Op::kScanRelKeyed:
      return in.dst;
    default:
      return -1;  // checks, filters, kEmit, and multi-def kDestructure
  }
}

void ForEachDef(const CompiledRule& cr, size_t pc,
                const std::function<void(uint16_t)>& fn) {
  const Instr& in = cr.code[pc];
  if (in.op == Op::kDestructure) {
    // (field position, dst register) pairs: dsts at odd offsets.
    for (size_t k = 0; k + 1 < AuxCount(cr, in); k += 2) {
      fn(static_cast<uint16_t>(cr.aux[in.aux + k + 1]));
    }
    return;
  }
  int d = DefOf(in);
  if (d >= 0) fn(static_cast<uint16_t>(d));
}

DefUse BuildDefUse(const CompiledRule& cr) {
  DefUse du;
  du.def.assign(cr.num_regs, -1);
  du.uses.assign(cr.num_regs, {});
  for (size_t pc = 0; pc < cr.code.size(); ++pc) {
    ForEachUse(cr, pc, [&](uint16_t r) {
      if (r < cr.num_regs) du.uses[r].push_back(static_cast<uint32_t>(pc));
    });
    ForEachDef(cr, pc, [&](uint16_t d) {
      if (d < cr.num_regs && du.def[d] < 0) {
        du.def[d] = static_cast<int>(pc);
      }
    });
  }
  return du;
}

std::vector<LiveRange> ComputeLiveRanges(const CompiledRule& cr) {
  DefUse du = BuildDefUse(cr);
  std::vector<LiveRange> live(cr.num_regs);
  std::vector<uint32_t> scan_pcs;
  for (size_t pc = 0; pc < cr.code.size(); ++pc) {
    if (IsScan(cr.code[pc].op)) scan_pcs.push_back(static_cast<uint32_t>(pc));
  }
  const int emit_pc = static_cast<int>(cr.code.size()) - 1;
  for (uint16_t r = 0; r < cr.num_regs; ++r) {
    live[r].def = du.def[r];
    if (!du.uses[r].empty()) {
      live[r].last_use = static_cast<int>(du.uses[r].back());
    }
  }
  // Theta registers are read by kEmit.
  for (const auto& [var, r] : cr.theta) {
    if (r < cr.num_regs) live[r].last_use = emit_pc;
  }
  for (uint16_t r = 0; r < cr.num_regs; ++r) {
    for (uint32_t s : scan_pcs) {
      if (live[r].def >= 0 && static_cast<int>(s) > live[r].def &&
          static_cast<int>(s) < live[r].last_use) {
        live[r].crosses_scan = true;
        break;
      }
    }
  }
  return live;
}

std::vector<AbsVal> PropagateAbstract(const CompiledRule& cr) {
  std::vector<AbsVal> abs(cr.num_regs);
  for (size_t pc = 0; pc < cr.code.size(); ++pc) {
    const Instr& in = cr.code[pc];
    AbsVal v;
    switch (in.op) {
      case Op::kLoadConst:
        v.kind = AbsVal::Kind::kConst;
        v.sym = in.sym;
        break;
      case Op::kLoadRel:
        v.kind = AbsVal::Kind::kRelValue;
        v.sym = in.sym;
        break;
      case Op::kLoadClass:
        v.kind = AbsVal::Kind::kClassValue;
        v.sym = in.sym;
        break;
      case Op::kMakeTuple:
        v.kind = AbsVal::Kind::kTuple;
        v.shape = in.imm;
        break;
      case Op::kMakeSet:
        v.kind = AbsVal::Kind::kSet;
        break;
      case Op::kScanRelKeyed:
        // Candidates are exactly tuples of the fused shape guard.
        v.kind = AbsVal::Kind::kTuple;
        v.shape = in.imm;
        break;
      default:
        break;  // scans, kDeref, kGetField, kDestructure dsts: kAny
    }
    ForEachDef(cr, pc, [&](uint16_t d) {
      if (d < cr.num_regs) {
        abs[d] = in.op == Op::kDestructure ? AbsVal{} : v;
      }
    });
  }
  return abs;
}

bool ProvablyDistinct(const AbsVal& a, const AbsVal& b) {
  if (a.kind == AbsVal::Kind::kAny || b.kind == AbsVal::Kind::kAny) {
    return false;
  }
  auto is_set = [](const AbsVal& v) {
    return v.kind == AbsVal::Kind::kSet || v.kind == AbsVal::Kind::kRelValue ||
           v.kind == AbsVal::Kind::kClassValue;
  };
  // Two set values may be extensionally equal even when built differently.
  if (is_set(a) && is_set(b)) return false;
  // Distinct known kinds are distinct value nodes under hash-consing.
  if (a.kind != b.kind) return true;
  switch (a.kind) {
    case AbsVal::Kind::kConst:
      return a.sym != b.sym;
    case AbsVal::Kind::kTuple:
      // Distinct interned shapes have distinct (sorted) attr lists.
      return a.shape != b.shape;
    default:
      return false;
  }
}

bool NeverSet(const AbsVal& v) {
  return v.kind == AbsVal::Kind::kConst || v.kind == AbsVal::Kind::kTuple;
}

bool NeverTuple(const AbsVal& v) {
  return v.kind == AbsVal::Kind::kConst || v.kind == AbsVal::Kind::kSet ||
         v.kind == AbsVal::Kind::kRelValue ||
         v.kind == AbsVal::Kind::kClassValue;
}

std::vector<IlViolation> VerifyRule(const CompiledRule& cr) {
  std::vector<IlViolation> out;
  auto bad = [&](size_t pc, std::string detail) {
    out.push_back({static_cast<uint32_t>(pc), std::move(detail)});
  };
  const size_t n = cr.code.size();
  if (n == 0) {
    bad(0, "empty body: missing kEmit terminator");
    return out;
  }
  for (size_t pc = 0; pc + 1 < n; ++pc) {
    if (cr.code[pc].op == Op::kEmit) {
      bad(pc, "kEmit before the end of the body");
    }
  }
  if (cr.code[n - 1].op != Op::kEmit) {
    bad(n - 1, "last instruction is not kEmit");
  }

  std::vector<bool> defined(cr.num_regs, false);
  std::vector<AbsVal> abs(cr.num_regs);
  size_t delta_ops = 0;
  for (size_t pc = 0; pc < n; ++pc) {
    const Instr& in = cr.code[pc];

    // aux-range validity (checked before anything reads the range).
    if (in.naux > 0) {
      bool takes_aux = in.op == Op::kMakeTuple || in.op == Op::kMakeSet ||
                       IsContainerScan(in.op) || in.op == Op::kDestructure ||
                       in.op == Op::kScanRelKeyed || in.op == Op::kCmpN;
      if (!takes_aux) {
        bad(pc, "aux operands on an instruction that takes none");
      } else if (static_cast<uint64_t>(in.aux) + in.naux > cr.aux.size()) {
        std::ostringstream d;
        d << "aux range [" << in.aux << ", " << in.aux + in.naux
          << ") out of bounds (" << cr.aux.size() << " entries)";
        bad(pc, d.str());
      }
    }
    if (IsContainerScan(in.op)) {
      if (in.naux % 2 != 0) {
        bad(pc, "probe spec with an odd operand count");
      }
      // Probe attrs must be strictly ascending: the index keys bucket
      // maps by the sorted attr list.
      size_t limit = AuxCount(cr, in);
      for (size_t k = 2; k + 1 < limit; k += 2) {
        if (cr.aux[in.aux + k] <= cr.aux[in.aux + k - 2]) {
          bad(pc, "probe attrs not strictly ascending");
          break;
        }
      }
    }
    if (in.strict && in.op != Op::kScanRelKeyed &&
        (!IsContainerScan(in.op) || in.naux == 0)) {
      bad(pc, "strict flag without a container-scan probe spec");
    }
    if ((in.op == Op::kScanDelta || in.op == Op::kScanExtent) &&
        in.naux != 0) {
      bad(pc, "probe spec on a delta/extent scan");
    }

    // Fused superinstructions: pair layout, shape coverage, and (for the
    // keyed scan) the ascending-position order the index Probe and the
    // positional strict check both rely on.
    if (in.op == Op::kDestructure || in.op == Op::kScanRelKeyed) {
      if (in.imm >= cr.shapes.size()) {
        std::ostringstream d;
        d << "shape index " << in.imm << " out of range ("
          << cr.shapes.size() << " shapes)";
        bad(pc, d.str());
      }
      if (in.naux == 0 || in.naux % 2 != 0) {
        bad(pc, "fused op without an even, non-empty aux pair list");
      }
      size_t limit = AuxCount(cr, in);
      for (size_t k = 0; k + 1 < limit; k += 2) {
        uint32_t pos = cr.aux[in.aux + k];
        if (in.imm < cr.shapes.size() && pos >= cr.shapes[in.imm].size()) {
          std::ostringstream d;
          d << "fused field position " << pos
            << " out of range for the fused shape";
          bad(pc, d.str());
        }
        if (k >= 2 && pos <= cr.aux[in.aux + k - 2]) {
          bad(pc, "fused field positions not strictly ascending");
        }
      }
      if (in.op == Op::kScanRelKeyed && !in.strict) {
        bad(pc, "kScanRelKeyed without the strict flag");
      }
      if (in.op == Op::kDestructure && in.a < cr.num_regs && defined[in.a] &&
          NeverTuple(abs[in.a])) {
        bad(pc, "kDestructure on " + Reg(in.a) +
                    ", which is statically never a tuple");
      }
    }
    if (in.op == Op::kCmpN && (in.naux == 0 || in.naux % 2 != 0)) {
      bad(pc, "kCmpN without an even, non-empty register pair list");
    }

    // Reads before the def: use-before-def and register ranges.
    ForEachUse(cr, pc, [&](uint16_t r) {
      if (r >= cr.num_regs) {
        bad(pc, "register " + Reg(r) + " out of range");
      } else if (!defined[r]) {
        bad(pc, "use of " + Reg(r) + " before definition");
      }
    });

    switch (in.op) {
      case Op::kMakeTuple:
      case Op::kMatchTuple:
        if (in.imm >= cr.shapes.size()) {
          std::ostringstream d;
          d << "shape index " << in.imm << " out of range ("
            << cr.shapes.size() << " shapes)";
          bad(pc, d.str());
        } else if (in.op == Op::kMakeTuple &&
                   AuxCount(cr, in) != cr.shapes[in.imm].size()) {
          bad(pc, "tuple operand count does not match its shape");
        }
        break;
      case Op::kGetField: {
        // The VM projects fields unguarded; require a dominating shape
        // guard on the same register whose shape covers the index:
        // kMatchTuple or kDestructure on it, or the kScanRelKeyed that
        // ranges it (its candidates are exact-shape by construction).
        bool guarded = false;
        for (size_t p = pc; p-- > 0;) {
          const Instr& g = cr.code[p];
          bool guards =
              ((g.op == Op::kMatchTuple || g.op == Op::kDestructure) &&
               g.a == in.a) ||
              (g.op == Op::kScanRelKeyed && g.dst == in.a);
          if (guards) {
            if (g.imm < cr.shapes.size() &&
                in.imm >= cr.shapes[g.imm].size()) {
              std::ostringstream d;
              d << "field #" << in.imm << " out of range for the guarding "
                << "match_tuple shape";
              bad(pc, d.str());
            }
            guarded = true;
            break;
          }
        }
        if (!guarded) {
          bad(pc, "kGetField without a dominating kMatchTuple on " +
                      Reg(in.a));
        }
        if (in.a < cr.num_regs && NeverTuple(abs[in.a])) {
          bad(pc, "kGetField on " + Reg(in.a) +
                      ", which is statically never a tuple");
        }
        break;
      }
      case Op::kScanDelta:
      case Op::kCheckDelta:
        ++delta_ops;
        if (cr.delta_literal == kNoDelta) {
          bad(pc, "delta op in a full-evaluation variant");
        }
        break;
      default:
        break;
    }

    // The defs, after the reads (so kDeref r, r with r undefined is
    // still a use-before-def). kDestructure defines several registers in
    // one dispatch; each one obeys the SSA single-def rule.
    AbsVal v;
    switch (in.op) {
      case Op::kLoadConst:
        v.kind = AbsVal::Kind::kConst;
        v.sym = in.sym;
        break;
      case Op::kLoadRel:
        v.kind = AbsVal::Kind::kRelValue;
        v.sym = in.sym;
        break;
      case Op::kLoadClass:
        v.kind = AbsVal::Kind::kClassValue;
        v.sym = in.sym;
        break;
      case Op::kMakeTuple:
        v.kind = AbsVal::Kind::kTuple;
        v.shape = in.imm;
        break;
      case Op::kMakeSet:
        v.kind = AbsVal::Kind::kSet;
        break;
      case Op::kScanRelKeyed:
        v.kind = AbsVal::Kind::kTuple;
        v.shape = in.imm;
        break;
      default:
        break;
    }
    ForEachDef(cr, pc, [&](uint16_t d) {
      if (d >= cr.num_regs) {
        bad(pc, "register " + Reg(d) + " out of range");
      } else if (defined[d]) {
        bad(pc, "register " + Reg(d) + " defined twice");
      } else {
        defined[d] = true;
        abs[d] = in.op == Op::kDestructure ? AbsVal{} : v;
      }
    });
  }

  if (cr.delta_literal != kNoDelta && delta_ops == 0) {
    bad(n - 1, "delta variant without a delta op");
  }
  if (delta_ops > 1) {
    bad(n - 1, "multiple delta ops in one body");
  }

  Symbol prev = kInvalidSymbol;
  bool first = true;
  for (const auto& [var, r] : cr.theta) {
    if (!first && var <= prev) {
      bad(n - 1, "theta not strictly sorted by variable symbol");
    }
    first = false;
    prev = var;
    if (r >= cr.num_regs) {
      bad(n - 1, "theta register " + Reg(r) + " out of range");
    } else if (!defined[r]) {
      bad(n - 1, "theta register " + Reg(r) + " never defined");
    }
  }
  return out;
}

}  // namespace iqlkit::il
