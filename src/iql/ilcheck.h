// Dataflow analyses and the static verifier for the flat rule IL
// (iql/il.h).
//
// All of the analyses here exploit one structural fact about the IL's
// control flow: backtracking only ever re-enters the body at scan_pc + 1,
// and a register is written by exactly one instruction (the compiler is
// SSA over registers). Together those make *pc order a dominance order*:
// when execution sits at pc u, every instruction at pc < u most recently
// executed -- successfully -- with the registers' current values (a
// backtrack to scan s leaves every register defined at pc <= s untouched
// and re-executes everything in (s, u) in order). A single forward pass is
// therefore a sound whole-body analysis; no fixpoint iteration is needed.
//
// The verifier (VerifyRule) rejects malformed IL -- use-before-def,
// double definitions, out-of-range shape/aux/register indices, unguarded
// field projections, probe specs keyed on unbound registers, misplaced
// terminators -- before the VM (which elides all of those checks on its
// hot path) ever runs it. CompileRule calls it after every lowering in
// debug builds; the optimizer (iql/ilopt.h) re-verifies its output the
// same way.

#ifndef IQLKIT_IQL_ILCHECK_H_
#define IQLKIT_IQL_ILCHECK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/interner.h"
#include "iql/il.h"

namespace iqlkit::il {

// ---- operand iteration ----------------------------------------------------

// Calls `fn` once per register the instruction at `pc` reads: the a/b
// operands, kMakeTuple/kMakeSet element registers, scan probe-spec key
// registers (keys are evaluated before the scan resolves its candidate
// list, so they count as reads at the scan's pc), kScanRelKeyed key
// registers, and every kCmpN pair register.
void ForEachUse(const CompiledRule& cr, size_t pc,
                const std::function<void(uint16_t)>& fn);

// The register the instruction defines, or -1: loads, construction,
// kDeref, kGetField, and scans (kScanRelKeyed included) define `dst`;
// filters, checks, and kEmit define nothing. kDestructure is the one
// multi-def opcode and returns -1 here -- iterate its defs with
// ForEachDef.
int DefOf(const Instr& in);

// Calls `fn` once per register the instruction at `pc` defines. Same as
// DefOf for every opcode except kDestructure, whose aux odd entries are
// all destination registers.
void ForEachDef(const CompiledRule& cr, size_t pc,
                const std::function<void(uint16_t)>& fn);

// ---- def-use chains -------------------------------------------------------

struct DefUse {
  // def[r]: pc of the unique instruction defining register r, or -1.
  std::vector<int> def;
  // uses[r]: pcs reading r, ascending (one entry per reading instruction).
  std::vector<std::vector<uint32_t>> uses;
};

DefUse BuildDefUse(const CompiledRule& cr);

// ---- liveness -------------------------------------------------------------

// Syntactic live range of each register, with the one fact that matters
// across backtracking: a register whose range spans a scan stays live for
// every iteration of that scan's loop (the loop body re-reads it), so a
// future register allocator may only share registers whose ranges avoid
// each other's spanned scans. Theta registers are read at kEmit and so
// are live to the end of the body.
struct LiveRange {
  int def = -1;       // defining pc, or -1 (never defined)
  int last_use = -1;  // last reading pc (incl. kEmit for theta), or -1
  bool crosses_scan = false;  // a scan sits strictly inside (def, last_use)
};

std::vector<LiveRange> ComputeLiveRanges(const CompiledRule& cr);

// ---- abstract values ------------------------------------------------------

// What a register is statically known to hold, from one forward pass over
// the defs (sound per the dominance argument above). Hash-consing makes
// raw ValueId comparison structural, so two registers with the same known
// abstract value hold the *same id* at runtime -- the basis for the
// optimizer's value numbering -- and two distinct constants can never
// compare equal.
struct AbsVal {
  enum class Kind : uint8_t {
    kAny,         // scan candidates, fields, derefs: unknown
    kConst,       // the constant `sym` (kLoadConst)
    kRelValue,    // the set value of relation `sym` (kLoadRel)
    kClassValue,  // the oid-set value of class `sym` (kLoadClass)
    kTuple,       // a tuple of shape `shape` (kMakeTuple)
    kSet,         // a set (kMakeSet)
  };
  Kind kind = Kind::kAny;
  Symbol sym = kInvalidSymbol;  // kConst / kRelValue / kClassValue
  uint32_t shape = 0;           // kTuple
};

std::vector<AbsVal> PropagateAbstract(const CompiledRule& cr);

// True when the two abstract values denote provably distinct runtime
// values. Only distinct constants qualify (everything else may alias).
bool ProvablyDistinct(const AbsVal& a, const AbsVal& b);

// True when the value can never be a set / a tuple, respectively --
// feeding kCheckIn or kMatchTuple such a register is a statically
// always-failing filter (the L003 diagnostic).
bool NeverSet(const AbsVal& v);
bool NeverTuple(const AbsVal& v);

// ---- verifier -------------------------------------------------------------

// One verifier rejection: the offending pc and a human-readable detail.
// The IL lint renders these as L004 diagnostics.
struct IlViolation {
  uint32_t pc = 0;
  std::string detail;
};

// Statically checks one compiled rule. Empty result = well-formed. The
// checks cover exactly the invariants the VM relies on without runtime
// guards; a rule that passes cannot index out of range or read an
// undefined register in VmSolver::Solve.
std::vector<IlViolation> VerifyRule(const CompiledRule& cr);

}  // namespace iqlkit::il

#endif  // IQLKIT_IQL_ILCHECK_H_
