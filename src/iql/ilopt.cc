#include "iql/ilopt.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace iqlkit::il {
namespace {

bool IsContainerScan(Op op) {
  return op == Op::kScanRel || op == Op::kScanClass || op == Op::kScanSet;
}

bool IsScan(Op op) {
  return IsContainerScan(op) || op == Op::kScanDelta ||
         op == Op::kScanExtent || op == Op::kScanRelKeyed;
}

bool IsFused(Op op) {
  return op == Op::kDestructure || op == Op::kScanRelKeyed || op == Op::kCmpN;
}

// One instruction of the working list: the (operand-rewritten) copy, its
// original pc, and the unpacked aux payload -- kMakeTuple/kMakeSet operand
// registers or a container scan's probe spec -- so passes can edit it
// without aux-offset bookkeeping. aux is repacked at rebuild.
struct WorkInstr {
  Instr in;
  uint32_t orig_pc = 0;
  std::vector<uint16_t> elems;                    // kMakeTuple / kMakeSet
  std::vector<std::pair<Symbol, uint16_t>> spec;  // container-scan probe
  bool removed = false;
  RemoveReason reason = RemoveReason::kDeadValue;
};

// Union-find over registers; the representative is the class member with
// the earliest definition in the working order, so rewriting a later read
// to the representative always reads an already-assigned register.
class RegEq {
 public:
  RegEq(uint16_t n, const std::vector<uint32_t>& defpos) : defpos_(defpos) {
    parent_.resize(n);
    for (uint16_t r = 0; r < n; ++r) parent_[r] = r;
  }

  uint16_t Find(uint16_t r) {
    while (parent_[r] != r) {
      parent_[r] = parent_[parent_[r]];
      r = parent_[r];
    }
    return r;
  }

  void Union(uint16_t a, uint16_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (defpos_[b] < defpos_[a]) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<uint16_t> parent_;
  const std::vector<uint32_t>& defpos_;
};

// Value-numbering key for pure producers: op + discriminants + canonical
// operand representatives. Hash-consing makes two instructions with equal
// keys produce the same ValueId.
using VnKey = std::tuple<uint8_t, uint16_t, Symbol, uint32_t,
                         std::vector<uint16_t>>;
// Availability key for checks that already succeeded on every path here.
using CheckKey = std::tuple<uint8_t, bool, Symbol, uint32_t, uint16_t,
                            uint16_t>;

}  // namespace

std::string_view RemoveReasonName(RemoveReason reason) {
  switch (reason) {
    case RemoveReason::kValueNumbered:
      return "value-numbered";
    case RemoveReason::kRedundantCheck:
      return "redundant-check";
    case RemoveReason::kTautology:
      return "tautology";
    case RemoveReason::kProbeImplied:
      return "probe-implied";
    case RemoveReason::kDeadValue:
      return "dead-value";
  }
  return "unknown";
}

OptResult OptimizeRule(const CompiledRule& cr) {
  OptResult result;
  const uint16_t nregs = cr.num_regs;

  // Fusion is the last pipeline stage: the passes below assume unfused IL
  // (single-def instructions, symbol-keyed probe specs), so a rule that
  // already contains fused opcodes passes through untouched.
  for (const Instr& in : cr.code) {
    if (IsFused(in.op)) {
      result.rule = cr;
      return result;
    }
  }

  // ---- setup: working copies with unpacked aux payloads -------------------
  std::vector<WorkInstr> work;
  work.reserve(cr.code.size());
  for (size_t pc = 0; pc < cr.code.size(); ++pc) {
    WorkInstr w;
    w.in = cr.code[pc];
    w.orig_pc = static_cast<uint32_t>(pc);
    if (w.in.op == Op::kMakeTuple || w.in.op == Op::kMakeSet) {
      for (uint32_t k = 0; k < w.in.naux; ++k) {
        w.elems.push_back(static_cast<uint16_t>(cr.aux[w.in.aux + k]));
      }
    } else if (IsContainerScan(w.in.op)) {
      for (uint32_t k = 0; k + 1 < w.in.naux; k += 2) {
        w.spec.emplace_back(static_cast<Symbol>(cr.aux[w.in.aux + k]),
                            static_cast<uint16_t>(cr.aux[w.in.aux + k + 1]));
      }
    }
    work.push_back(std::move(w));
  }

  // ---- pass 1: hoist pure operand-free loads to the top -------------------
  // They cannot fail and read only the frozen instance, so this is
  // loop-invariant code motion (a load under a scan re-executes per
  // candidate for the same hash-consed id) and it makes constants
  // available as probe keys for every scan (pass 4).
  std::stable_partition(work.begin(), work.end(), [](const WorkInstr& w) {
    return w.in.op == Op::kLoadConst || w.in.op == Op::kLoadRel ||
           w.in.op == Op::kLoadClass;
  });

  std::vector<uint32_t> defpos(nregs, 0xFFFFFFFFu);
  for (size_t i = 0; i < work.size(); ++i) {
    int d = DefOf(work[i].in);
    if (d >= 0 && d < nregs && defpos[d] == 0xFFFFFFFFu) {
      defpos[d] = static_cast<uint32_t>(i);
    }
  }

  RegEq eq(nregs, defpos);
  std::vector<AbsVal> abs(nregs);
  std::map<VnKey, uint16_t> available;
  std::set<CheckKey> succeeded;

  auto mark_removed = [&](WorkInstr& w, RemoveReason reason) {
    w.removed = true;
    w.reason = reason;
    result.removed.push_back({w.orig_pc, w.in.src, reason});
  };
  auto note_empty = [&](const WorkInstr& w, std::string detail) {
    if (!result.statically_empty.has_value()) {
      result.statically_empty =
          EmptyReason{w.orig_pc, w.in.src, std::move(detail)};
    }
  };

  // ---- pass 4 helper: filter sinking at one container scan ----------------
  // For each top-level tuple field of the scan's match guard that is
  // compared against a register assigned before the scan, sink the
  // equality into the probe spec, mark the scan strict (the VM verifies
  // the keyed fields per candidate, so the spec is exact, not a hash
  // prefilter), and drop the now-implied compare. The field register joins
  // the key's equivalence class: for every candidate that survives the
  // strict check and the match guard, field #i *is* the key value.
  auto sink_filters = [&](size_t i) {
    WorkInstr& scan = work[i];
    size_t mi = i + 1;
    while (mi < work.size() && work[mi].removed) ++mi;
    if (mi >= work.size()) return;
    const Instr& match = work[mi].in;
    if (match.op != Op::kMatchTuple || match.a != scan.in.dst) return;
    if (match.imm >= cr.shapes.size()) return;
    const std::vector<Symbol>& shape = cr.shapes[match.imm];

    std::vector<std::pair<Symbol, uint16_t>> pairs;
    std::vector<size_t> implied;                         // cmp positions
    std::vector<std::pair<uint16_t, uint16_t>> unions;   // (field, key)
    auto have_attr = [&](Symbol attr) {
      for (const auto& [a, k] : pairs) {
        if (a == attr) return true;
      }
      return false;
    };
    for (size_t j = mi + 1; j < work.size(); ++j) {
      if (work[j].removed) continue;
      const Instr& g = work[j].in;
      if (g.op != Op::kGetField || g.a != scan.in.dst) continue;
      if (g.imm >= shape.size() || have_attr(shape[g.imm])) continue;
      for (size_t c = j + 1; c < work.size(); ++c) {
        if (work[c].removed) continue;
        const Instr& f = work[c].in;
        bool is_eq = f.op == Op::kCmp || (f.op == Op::kCheckEq && f.pol);
        if (!is_eq) continue;
        uint16_t other;
        if (f.a == g.dst && f.b != g.dst) {
          other = f.b;
        } else if (f.b == g.dst && f.a != g.dst) {
          other = f.a;
        } else {
          continue;
        }
        uint16_t key = eq.Find(other);
        // The key must already be assigned when the scan resolves.
        if (defpos[key] >= i) continue;
        pairs.emplace_back(shape[g.imm], key);
        implied.push_back(c);
        unions.emplace_back(g.dst, key);
        break;  // first equality on this field; repeats become tautologies
      }
    }
    if (pairs.empty()) return;
    // Keep any compiler-derived keys the lookahead did not re-derive.
    for (const auto& [attr, key] : scan.spec) {
      if (!have_attr(attr)) pairs.emplace_back(attr, key);
    }
    std::sort(pairs.begin(), pairs.end());
    scan.spec = std::move(pairs);
    scan.in.strict = true;
    result.strict_scans.push_back(scan.orig_pc);
    for (size_t c : implied) {
      mark_removed(work[c], RemoveReason::kProbeImplied);
    }
    for (const auto& [field, key] : unions) eq.Union(field, key);
  };

  // ---- passes 2-4: one forward pass (pc order is dominance) ---------------
  for (size_t i = 0; i < work.size(); ++i) {
    WorkInstr& w = work[i];
    if (w.removed) continue;
    Instr& in = w.in;

    // Resolve reads through the equivalences established so far. Never
    // resolve `dst`: a def keeps its own register.
    switch (in.op) {
      case Op::kDeref:
      case Op::kGetField:
      case Op::kMatchTuple:
      case Op::kBindType:
      case Op::kScanSet:
        in.a = eq.Find(in.a);
        break;
      case Op::kCheckRel:
      case Op::kCheckClass:
      case Op::kCheckDelta:
        in.b = eq.Find(in.b);
        break;
      case Op::kCmp:
      case Op::kCheckIn:
      case Op::kCheckEq:
        in.a = eq.Find(in.a);
        in.b = eq.Find(in.b);
        break;
      default:
        break;
    }
    for (uint16_t& r : w.elems) r = eq.Find(r);
    for (auto& [attr, key] : w.spec) key = eq.Find(key);

    switch (in.op) {
      case Op::kLoadConst:
      case Op::kLoadRel:
      case Op::kLoadClass:
      case Op::kDeref:
      case Op::kGetField:
      case Op::kMakeTuple:
      case Op::kMakeSet: {
        // Value numbering. kDeref is not pure (it can fail), but a repeat
        // of an earlier deref on the same register is reached only after
        // the first succeeded, with the same input -- same outcome.
        uint16_t operand = 0;
        if (in.op == Op::kDeref || in.op == Op::kGetField) operand = in.a;
        VnKey key{static_cast<uint8_t>(in.op), operand, in.sym, in.imm,
                  w.elems};
        auto [it, inserted] = available.emplace(key, in.dst);
        if (!inserted) {
          eq.Union(in.dst, it->second);
          mark_removed(w, RemoveReason::kValueNumbered);
          break;
        }
        AbsVal v;
        switch (in.op) {
          case Op::kLoadConst:
            v.kind = AbsVal::Kind::kConst;
            v.sym = in.sym;
            break;
          case Op::kLoadRel:
            v.kind = AbsVal::Kind::kRelValue;
            v.sym = in.sym;
            break;
          case Op::kLoadClass:
            v.kind = AbsVal::Kind::kClassValue;
            v.sym = in.sym;
            break;
          case Op::kMakeTuple:
            v.kind = AbsVal::Kind::kTuple;
            v.shape = in.imm;
            break;
          case Op::kMakeSet:
            v.kind = AbsVal::Kind::kSet;
            break;
          default:
            break;
        }
        abs[in.dst] = v;
        break;
      }

      case Op::kMatchTuple: {
        if (NeverTuple(abs[in.a])) {
          note_empty(w, "tuple match over a value that is never a tuple");
          break;
        }
        CheckKey ck{static_cast<uint8_t>(in.op), true, kInvalidSymbol,
                    in.imm, in.a, 0};
        if (!succeeded.insert(ck).second) {
          mark_removed(w, RemoveReason::kRedundantCheck);
          break;
        }
        // From here on the register is a tuple of this shape.
        if (abs[in.a].kind == AbsVal::Kind::kAny) {
          abs[in.a].kind = AbsVal::Kind::kTuple;
          abs[in.a].shape = in.imm;
        }
        break;
      }

      case Op::kBindType: {
        CheckKey ck{static_cast<uint8_t>(in.op), true, kInvalidSymbol,
                    in.imm, in.a, 0};
        if (!succeeded.insert(ck).second) {
          mark_removed(w, RemoveReason::kRedundantCheck);
        }
        break;
      }

      case Op::kCmp:
      case Op::kCheckEq: {
        bool pol = in.op == Op::kCmp ? true : in.pol;
        uint16_t x = in.a;
        uint16_t y = in.b;
        if (x == y) {
          if (pol) {
            mark_removed(w, RemoveReason::kTautology);
          } else {
            note_empty(w, "a value compared unequal to itself");
          }
          break;
        }
        if (ProvablyDistinct(abs[x], abs[y])) {
          if (pol) {
            note_empty(w, "equality of provably distinct values");
          } else {
            mark_removed(w, RemoveReason::kTautology);
          }
          break;
        }
        if (x > y) std::swap(x, y);
        CheckKey ck{static_cast<uint8_t>(Op::kCmp), pol, kInvalidSymbol, 0,
                    x, y};
        if (!succeeded.insert(ck).second) {
          mark_removed(w, RemoveReason::kRedundantCheck);
          break;
        }
        if (pol) eq.Union(x, y);
        break;
      }

      case Op::kCheckRel:
      case Op::kCheckClass: {
        CheckKey ck{static_cast<uint8_t>(in.op), in.pol, in.sym, 0, in.b, 0};
        if (!succeeded.insert(ck).second) {
          mark_removed(w, RemoveReason::kRedundantCheck);
        }
        break;
      }

      case Op::kCheckIn: {
        if (NeverSet(abs[in.a])) {
          // A non-set container fails either polarity (mirror Check).
          note_empty(w, "membership test in a value that is never a set");
          break;
        }
        CheckKey ck{static_cast<uint8_t>(in.op), in.pol, kInvalidSymbol, 0,
                    in.a, in.b};
        if (!succeeded.insert(ck).second) {
          mark_removed(w, RemoveReason::kRedundantCheck);
          break;
        }
        if (in.pol && abs[in.a].kind == AbsVal::Kind::kAny) {
          abs[in.a].kind = AbsVal::Kind::kSet;
        }
        break;
      }

      case Op::kCheckDelta: {
        CheckKey ck{static_cast<uint8_t>(in.op), true, kInvalidSymbol, 0,
                    in.b, 0};
        if (!succeeded.insert(ck).second) {
          mark_removed(w, RemoveReason::kRedundantCheck);
        }
        break;
      }

      case Op::kScanRel:
      case Op::kScanClass:
      case Op::kScanSet: {
        if (in.op == Op::kScanSet && NeverSet(abs[in.a])) {
          note_empty(w, "scan of a value that is never a set");
        } else {
          sink_filters(i);
        }
        if (in.op == Op::kScanSet && abs[in.a].kind == AbsVal::Kind::kAny) {
          abs[in.a].kind = AbsVal::Kind::kSet;  // candidates imply a set
        }
        break;
      }

      case Op::kScanDelta:
      case Op::kScanExtent:
      case Op::kEmit:
        break;
    }
  }

  // ---- final theta: canonical representatives -----------------------------
  std::vector<std::pair<Symbol, uint16_t>> theta;
  theta.reserve(cr.theta.size());
  for (const auto& [var, r] : cr.theta) theta.emplace_back(var, eq.Find(r));

  // ---- pass 5: dead-value elimination to a fixpoint -----------------------
  // Only pure producers drop: scans shape the loop nest (and the parallel
  // partition point), kDeref is a filter, checks are filters, kEmit is the
  // terminator.
  auto dce_candidate = [](Op op) {
    switch (op) {
      case Op::kLoadConst:
      case Op::kLoadRel:
      case Op::kLoadClass:
      case Op::kGetField:
      case Op::kMakeTuple:
      case Op::kMakeSet:
        return true;
      default:
        return false;
    }
  };
  for (bool changed = true; changed;) {
    changed = false;
    std::vector<uint32_t> uses(nregs, 0);
    auto count = [&](uint16_t r) {
      if (r < nregs) ++uses[r];
    };
    for (const WorkInstr& w : work) {
      if (w.removed) continue;
      switch (w.in.op) {
        case Op::kDeref:
        case Op::kGetField:
        case Op::kMatchTuple:
        case Op::kBindType:
        case Op::kScanSet:
          count(w.in.a);
          break;
        case Op::kCheckRel:
        case Op::kCheckClass:
        case Op::kCheckDelta:
          count(w.in.b);
          break;
        case Op::kCmp:
        case Op::kCheckIn:
        case Op::kCheckEq:
          count(w.in.a);
          count(w.in.b);
          break;
        default:
          break;
      }
      for (uint16_t r : w.elems) count(r);
      for (const auto& [attr, key] : w.spec) count(key);
    }
    for (const auto& [var, r] : theta) count(r);
    for (WorkInstr& w : work) {
      if (w.removed || !dce_candidate(w.in.op)) continue;
      if (uses[w.in.dst] == 0) {
        mark_removed(w, RemoveReason::kDeadValue);
        changed = true;
      }
    }
  }

  // ---- pass 6: rebuild with compacted registers and fresh aux -------------
  CompiledRule out;
  out.shapes = cr.shapes;
  out.delta_literal = cr.delta_literal;
  std::vector<uint16_t> remap(nregs, 0xFFFF);
  uint16_t next = 0;
  auto map_use = [&](uint16_t r) {
    assert(r < nregs && remap[r] != 0xFFFF && "read of an unmapped register");
    return remap[r];
  };
  for (const WorkInstr& w : work) {
    if (w.removed) continue;
    Instr in = w.in;
    switch (in.op) {
      case Op::kDeref:
      case Op::kGetField:
      case Op::kMatchTuple:
      case Op::kBindType:
      case Op::kScanSet:
        in.a = map_use(in.a);
        break;
      case Op::kCheckRel:
      case Op::kCheckClass:
      case Op::kCheckDelta:
        in.b = map_use(in.b);
        break;
      case Op::kCmp:
      case Op::kCheckIn:
      case Op::kCheckEq:
        in.a = map_use(in.a);
        in.b = map_use(in.b);
        break;
      default:
        break;
    }
    if (!w.elems.empty() || !w.spec.empty()) {
      in.aux = static_cast<uint32_t>(out.aux.size());
      if (!w.elems.empty()) {
        in.naux = static_cast<uint32_t>(w.elems.size());
        for (uint16_t r : w.elems) out.aux.push_back(map_use(r));
      } else {
        in.naux = static_cast<uint32_t>(2 * w.spec.size());
        for (const auto& [attr, key] : w.spec) {
          out.aux.push_back(attr);
          out.aux.push_back(map_use(key));
        }
      }
    } else {
      in.aux = 0;
      in.naux = 0;
    }
    int d = DefOf(in);
    if (d >= 0) {
      if (remap[d] == 0xFFFF) remap[d] = next++;
      in.dst = remap[d];
    }
    out.code.push_back(in);
  }
  out.num_regs = next;
  out.theta.reserve(theta.size());
  for (const auto& [var, r] : theta) out.theta.emplace_back(var, map_use(r));

  std::sort(result.removed.begin(), result.removed.end(),
            [](const RemovedInstr& a, const RemovedInstr& b) {
              return a.pc < b.pc;
            });
  result.rule = std::move(out);
#ifndef NDEBUG
  {
    std::vector<IlViolation> violations = VerifyRule(result.rule);
    assert(violations.empty() &&
           "OptimizeRule produced IL rejected by VerifyRule");
  }
#endif
  return result;
}

CompiledRule OptimizeForExecution(const CompiledRule& cr) {
  return OptimizeRule(cr).rule;
}

// ---- superinstruction fusion ----------------------------------------------

namespace {

// One instruction of the fusion working list: the (possibly rewritten)
// copy plus its unpacked aux payload, kept verbatim -- fusion never
// renames registers, so payloads repack byte-for-byte at rebuild.
struct FuseInstr {
  Instr in;
  std::vector<uint32_t> payload;
  bool removed = false;
};

bool IsFusableEq(const Instr& in) {
  return in.op == Op::kCmp || (in.op == Op::kCheckEq && in.pol);
}

}  // namespace

FuseResult FuseRule(const CompiledRule& cr) {
  FuseResult result;

  std::vector<FuseInstr> work;
  work.reserve(cr.code.size());
  for (const Instr& in : cr.code) {
    FuseInstr f;
    f.in = in;
    for (uint32_t k = 0; k < in.naux; ++k) {
      f.payload.push_back(cr.aux[in.aux + k]);
    }
    work.push_back(std::move(f));
  }

  auto next_live = [&](size_t i) {
    size_t j = i + 1;
    while (j < work.size() && work[j].removed) ++j;
    return j;
  };

  // ---- pattern 1: strict kScanRel + kMatchTuple guard -> kScanRelKeyed ----
  // Runs first: it competes with the destructure pattern for the guard,
  // and absorbing the shape check and the strict key compares into the
  // scan's candidate loop is the bigger win (per-candidate work, not
  // per-body work). The probe's (attr, key) pairs become (position in the
  // guard's shape, key) pairs; shapes are attr-sorted, so ascending
  // positions keep the derived attr list in index Probe order.
  for (size_t i = 0; i < work.size(); ++i) {
    FuseInstr& scan = work[i];
    if (scan.removed || scan.in.op != Op::kScanRel || !scan.in.strict) {
      continue;
    }
    size_t mi = next_live(i);
    if (mi >= work.size()) continue;
    const Instr& match = work[mi].in;
    if (match.op != Op::kMatchTuple || match.a != scan.in.dst) continue;
    if (match.imm >= cr.shapes.size()) continue;
    const std::vector<Symbol>& shape = cr.shapes[match.imm];
    // A keyed attr missing from the guard's shape means the scan can admit
    // nothing; leave that verdict to the runtime rather than fuse it away.
    std::vector<std::pair<uint32_t, uint32_t>> pairs;  // (position, key reg)
    bool ok = true;
    for (size_t k = 0; k + 1 < scan.payload.size(); k += 2) {
      Symbol attr = static_cast<Symbol>(scan.payload[k]);
      auto it = std::lower_bound(shape.begin(), shape.end(), attr);
      if (it == shape.end() || *it != attr) {
        ok = false;
        break;
      }
      pairs.emplace_back(static_cast<uint32_t>(it - shape.begin()),
                         scan.payload[k + 1]);
    }
    if (!ok || pairs.empty()) continue;
    std::sort(pairs.begin(), pairs.end());
    scan.in.op = Op::kScanRelKeyed;
    scan.in.imm = match.imm;
    scan.payload.clear();
    for (const auto& [pos, key] : pairs) {
      scan.payload.push_back(pos);
      scan.payload.push_back(key);
    }
    work[mi].removed = true;
    ++result.fused_keyed_scans;
  }

  // ---- pattern 2: kMatchTuple + kGetField* -> kDestructure ----------------
  // Absorbs every projection of the matched register up to the next scan.
  // Projections are pure, guarded, and SSA, so executing them at the match
  // point -- ahead of any interleaved filters -- cannot change an outcome;
  // stopping at the next scan keeps them out of inner loops.
  for (size_t i = 0; i < work.size(); ++i) {
    FuseInstr& m = work[i];
    if (m.removed || m.in.op != Op::kMatchTuple) continue;
    if (m.in.imm >= cr.shapes.size()) continue;
    const size_t nfields = cr.shapes[m.in.imm].size();
    std::vector<std::pair<uint32_t, uint32_t>> pairs;  // (position, dst reg)
    std::vector<size_t> absorbed;
    for (size_t j = i + 1; j < work.size(); ++j) {
      if (work[j].removed) continue;
      const Instr& g = work[j].in;
      if (IsScan(g.op)) break;  // never move a projection across a loop head
      if (g.op != Op::kGetField || g.a != m.in.a) continue;
      // Compilation emits fields in ascending order and the optimizer
      // deduplicates repeats; anything else stays unfused.
      if (g.imm >= nfields) break;
      if (!pairs.empty() && g.imm <= pairs.back().first) break;
      pairs.emplace_back(g.imm, g.dst);
      absorbed.push_back(j);
    }
    if (pairs.empty()) continue;
    m.in.op = Op::kDestructure;
    m.payload.clear();
    for (const auto& [pos, dst] : pairs) {
      m.payload.push_back(pos);
      m.payload.push_back(dst);
    }
    for (size_t j : absorbed) work[j].removed = true;
    ++result.fused_destructures;
  }

  // ---- pattern 3: runs of >= 2 equality filters -> kCmpN ------------------
  for (size_t i = 0; i < work.size(); ++i) {
    if (work[i].removed || !IsFusableEq(work[i].in)) continue;
    std::vector<size_t> run{i};
    size_t j = i + 1;
    for (; j < work.size(); ++j) {
      if (work[j].removed) continue;
      if (!IsFusableEq(work[j].in)) break;
      run.push_back(j);
    }
    i = run.back();
    if (run.size() < 2) continue;
    FuseInstr& head = work[run[0]];
    head.in.op = Op::kCmpN;
    head.in.pol = true;
    head.payload.clear();
    for (size_t c : run) {
      head.payload.push_back(work[c].in.a);
      head.payload.push_back(work[c].in.b);
      if (c != run[0]) work[c].removed = true;
    }
    ++result.fused_cmp_chains;
  }

  // ---- rebuild: registers untouched, aux repacked -------------------------
  CompiledRule out;
  out.shapes = cr.shapes;
  out.theta = cr.theta;
  out.num_regs = cr.num_regs;
  out.delta_literal = cr.delta_literal;
  for (const FuseInstr& f : work) {
    if (f.removed) continue;
    Instr in = f.in;
    if (!f.payload.empty()) {
      in.aux = static_cast<uint32_t>(out.aux.size());
      in.naux = static_cast<uint32_t>(f.payload.size());
      for (uint32_t v : f.payload) out.aux.push_back(v);
    } else {
      in.aux = 0;
      in.naux = 0;
    }
    out.code.push_back(in);
  }
  result.rule = std::move(out);
#ifndef NDEBUG
  {
    std::vector<IlViolation> violations = VerifyRule(result.rule);
    assert(violations.empty() &&
           "FuseRule produced IL rejected by VerifyRule");
  }
#endif
  return result;
}

CompiledRule FuseForExecution(const CompiledRule& cr) {
  return FuseRule(cr).rule;
}

// ---- L-series lint --------------------------------------------------------

namespace {

std::string ReasonPhrase(RemoveReason reason) {
  switch (reason) {
    case RemoveReason::kValueNumbered:
      return "a duplicate of an earlier value";
    case RemoveReason::kRedundantCheck:
      return "a repeat of a check that already succeeded";
    case RemoveReason::kTautology:
      return "a check that can never fail";
    case RemoveReason::kProbeImplied:
      return "implied by the scan's strict probe key";
    case RemoveReason::kDeadValue:
      return "a value that is never read";
  }
  return "unused";
}

}  // namespace

void LintCompiledRule(const CompiledRule& cr, const Rule& rule,
                      const SymbolTable& syms, const TypePool& types,
                      DiagnosticSink* sink) {
  auto span_for = [&](uint32_t src) {
    if (src != kNoSrc && src < rule.body.size()) return rule.body[src].span;
    return rule.span;
  };

  // L004: malformed IL. CompileRule never produces it (debug-asserted),
  // so in practice this fires only on hand-built or corrupted IL; the
  // later checks assume verifier-clean input, so stop here.
  std::vector<IlViolation> violations = VerifyRule(cr);
  if (!violations.empty()) {
    for (const IlViolation& v : violations) {
      uint32_t src =
          v.pc < cr.code.size() ? cr.code[v.pc].src : kNoSrc;
      std::ostringstream msg;
      msg << "malformed IL at %" << v.pc << ": " << v.detail;
      sink->Error("L004", span_for(src), msg.str());
    }
    return;
  }

  // L002: a join scan (any container scan after the first loop) with no
  // probe key rescans its whole container once per outer candidate.
  bool seen_scan = false;
  for (size_t pc = 0; pc < cr.code.size(); ++pc) {
    const Instr& in = cr.code[pc];
    if (!IsScan(in.op)) continue;
    if (seen_scan && IsContainerScan(in.op) && in.naux == 0) {
      std::string what = in.op == Op::kScanSet
                             ? std::string("a set value")
                             : "'" + std::string(syms.name(in.sym)) + "'";
      sink->Hint("L002", span_for(in.src),
                 "join scan of " + what +
                     " has no bindable key: the whole container is "
                     "rescanned per outer candidate");
    }
    seen_scan = true;
  }

  OptResult opt = OptimizeRule(cr);
  if (opt.statically_empty.has_value()) {
    const EmptyReason& e = *opt.statically_empty;
    std::ostringstream msg;
    msg << "rule body is statically empty: " << e.detail << " (%" << e.pc
        << ": " << RenderInstruction(cr, e.pc, syms, types)
        << "); the rule can never fire";
    sink->Warning("L003", span_for(e.src), msg.str());
  }
  for (const RemovedInstr& rm : opt.removed) {
    std::ostringstream msg;
    msg << "dead instruction: '" << RenderInstruction(cr, rm.pc, syms, types)
        << "' is " << ReasonPhrase(rm.reason);
    sink->Hint("L001", span_for(rm.src), msg.str());
  }
}

void LintProgramIl(const Program& prog, const SymbolTable& syms,
                   const TypePool& types, DiagnosticSink* sink) {
  for (const auto& stage : prog.stages) {
    for (const Rule& rule : stage) {
      std::optional<CompiledRule> cr = CompileRule(prog, rule);
      if (!cr.has_value()) continue;  // tree-walk fallback: no IL to lint
      LintCompiledRule(*cr, rule, syms, types, sink);
    }
  }
}

// ---- extended IL dump -----------------------------------------------------

std::string DumpProgramIl(const Program& prog, const SymbolTable& syms,
                          const TypePool& types, const IlDumpOptions& opts) {
  auto render = [&](const CompiledRule& cr, const std::string& indent) {
    CompiledRule staged = opts.optimize ? OptimizeForExecution(cr) : cr;
    if (opts.fuse) staged = FuseForExecution(staged);
    return Disassemble(staged, syms, types, indent);
  };
  std::ostringstream out;
  for (size_t s = 0; s < prog.stages.size(); ++s) {
    out << "stage " << s << ":\n";
    const auto& rules = prog.stages[s];
    std::set<Symbol> heads;
    if (opts.delta_variants) {
      for (const Rule& rule : rules) {
        if (rule.head.kind != Literal::Kind::kMembership ||
            rule.head_negative) {
          continue;
        }
        const Term& lhs = prog.term(rule.head.lhs);
        if (lhs.kind == Term::Kind::kRelName) heads.insert(lhs.name);
      }
    }
    for (size_t r = 0; r < rules.size(); ++r) {
      const Rule& rule = rules[r];
      out << "  rule " << r << ": " << prog.RuleToString(rule, syms) << "\n";
      std::optional<CompiledRule> cr = CompileRule(prog, rule);
      if (!cr.has_value()) {
        const char* why = !rule.invented_vars.empty() ? "oid invention"
                          : rule.has_choose          ? "choose"
                                                     : "planner bail";
        out << "    fallback (tree-walk): " << why << "\n";
        continue;
      }
      out << render(*cr, "    ");
      if (!opts.delta_variants) continue;
      for (size_t d = 0; d < rule.body.size(); ++d) {
        const Literal& lit = rule.body[d];
        if (lit.kind != Literal::Kind::kMembership || !lit.positive) {
          continue;
        }
        const Term& lhs = prog.term(lit.lhs);
        if (lhs.kind != Term::Kind::kRelName || heads.count(lhs.name) == 0) {
          continue;
        }
        out << "    delta variant (literal " << d << ": "
            << prog.LiteralToString(lit, syms) << "):\n";
        std::optional<CompiledRule> dv = CompileRule(prog, rule, d);
        if (!dv.has_value()) {
          out << "      fallback (tree-walk): planner bail\n";
          continue;
        }
        out << render(*dv, "      ");
      }
    }
  }
  return out.str();
}

}  // namespace iqlkit::il
