#include "iql/typecheck.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "base/logging.h"

namespace iqlkit {

bool AssignableType(TypePool* pool, TypeId actual, TypeId expected) {
  if (actual == expected) return true;
  const TypeNode& an = pool->node(actual);
  const TypeNode& en = pool->node(expected);
  if (an.kind == TypeKind::kEmpty) return true;
  // Unions: every member of the actual must fit; any member of the expected
  // may receive.
  if (an.kind == TypeKind::kUnion) {
    for (TypeId m : an.children) {
      if (!AssignableType(pool, m, expected)) return false;
    }
    return true;
  }
  if (en.kind == TypeKind::kUnion) {
    for (TypeId m : en.children) {
      if (AssignableType(pool, actual, m)) return true;
    }
    return false;
  }
  // An intersection is contained in each of its members.
  if (an.kind == TypeKind::kIntersect) {
    for (TypeId m : an.children) {
      if (AssignableType(pool, m, expected)) return true;
    }
    return false;
  }
  if (en.kind == TypeKind::kIntersect) {
    for (TypeId m : en.children) {
      if (!AssignableType(pool, actual, m)) return false;
    }
    return true;
  }
  if (an.kind != en.kind) return false;
  switch (an.kind) {
    case TypeKind::kBase:
      return true;
    case TypeKind::kClass:
      return an.class_name == en.class_name;
    case TypeKind::kSet:
      return AssignableType(pool, an.children[0], en.children[0]);
    case TypeKind::kTuple: {
      if (an.fields.size() != en.fields.size()) return false;
      for (size_t i = 0; i < an.fields.size(); ++i) {
        if (an.fields[i].first != en.fields[i].first ||
            !AssignableType(pool, an.fields[i].second,
                            en.fields[i].second)) {
          return false;
        }
      }
      return true;
    }
    case TypeKind::kEmpty:
    case TypeKind::kUnion:
    case TypeKind::kIntersect:
      break;  // handled above
  }
  return false;
}

namespace {

// Per-rule checking context.
class RuleChecker {
 public:
  RuleChecker(Universe* universe, const Schema& schema,
              const Program& program, Rule* rule)
      : u_(universe),
        types_(&universe->types()),
        schema_(schema),
        program_(program),
        rule_(rule) {}

  Status Check() {
    // Seed with program-wide declarations, restricted to this rule's vars.
    std::set<Symbol> vars;
    program_.CollectVars(rule_->head, &vars);
    for (const Literal& lit : rule_->body) program_.CollectVars(lit, &vars);
    for (Symbol v : vars) {
      auto it = program_.declared_var_types.find(v);
      if (it != program_.declared_var_types.end()) {
        rule_->var_types[v] = it->second;
      }
    }
    // Propagate expected types until fixpoint.
    bool changed = true;
    int guard = 0;
    while (changed) {
      changed = false;
      IQL_CHECK(++guard < 1000) << "type inference did not converge";
      for (const Literal& lit : rule_->body) {
        IQL_RETURN_IF_ERROR(InferLiteral(lit, &changed));
      }
      IQL_RETURN_IF_ERROR(InferLiteral(rule_->head, &changed));
    }
    for (Symbol v : vars) {
      if (!rule_->var_types.count(v)) {
        return TypeError("cannot infer a type for variable '" +
                         std::string(u_->Name(v)) + "' in rule \"" +
                         program_.RuleToString(*rule_, u_->symbols()) +
                         "\"; declare it with 'var " +
                         std::string(u_->Name(v)) + ": <type>;'");
      }
    }
    // Head-only variables must have class type (§3.1 condition (3)).
    std::set<Symbol> body_vars;
    for (const Literal& lit : rule_->body) {
      program_.CollectVars(lit, &body_vars);
    }
    std::set<Symbol> head_vars;
    program_.CollectVars(rule_->head, &head_vars);
    rule_->invented_vars.clear();
    for (Symbol v : head_vars) {
      if (body_vars.count(v)) continue;
      TypeId t = rule_->var_types[v];
      if (types_->node(t).kind != TypeKind::kClass) {
        return TypeError(
            "variable '" + std::string(u_->Name(v)) +
            "' occurs only in the head and must have a class type "
            "(§3.1 condition (3)); it has type " + types_->ToString(t));
      }
      rule_->invented_vars.push_back(v);
    }
    if (rule_->head_negative && !rule_->invented_vars.empty()) {
      return TypeError(
          "a deletion rule (negative head, IQL* §4.5) cannot invent oids; "
          "every head variable must occur in the body");
    }
    // Head must be a fact of a legal shape and well-typed.
    IQL_RETURN_IF_ERROR(CheckHeadShape());
    // All literals must be typed (with coercion in body equalities).
    for (const Literal& lit : rule_->body) {
      IQL_RETURN_IF_ERROR(CheckLiteral(lit, /*is_head=*/false));
    }
    IQL_RETURN_IF_ERROR(CheckLiteral(rule_->head, /*is_head=*/true));
    return Status::Ok();
  }

 private:
  const Term& term(TermId id) const { return program_.term(id); }

  Status RuleError(const std::string& message) const {
    return TypeError(message + " in rule \"" +
                     program_.RuleToString(*rule_, u_->symbols()) + "\"");
  }

  // ---- inference ---------------------------------------------------------

  Status SetVarType(Symbol var, TypeId t, bool* changed) {
    auto [it, inserted] = rule_->var_types.emplace(var, t);
    if (inserted) {
      *changed = true;
      return Status::Ok();
    }
    // Refine monotonically: a strictly narrower inferred type (e.g. the
    // class type from ta(y) against the union (instructor | ta) from a
    // relation column) replaces the wider one. Anything else is left
    // alone -- it may be a coercion site, checked later -- and explicit
    // declarations are narrowings of themselves, so they stick.
    if (it->second != t && AssignableType(types_, t, it->second) &&
        !AssignableType(types_, it->second, t)) {
      it->second = t;
      *changed = true;
    }
    return Status::Ok();
  }

  // Pushes an expected type into a term's free variables, where the shape
  // determines them unambiguously.
  Status PropagateExpected(TermId id, TypeId expected, bool* changed) {
    const Term& t = term(id);
    const TypeNode& en = types_->node(expected);
    switch (t.kind) {
      case Term::Kind::kVar:
        return SetVarType(t.name, expected, changed);
      case Term::Kind::kConst:
      case Term::Kind::kRelName:
      case Term::Kind::kClassName:
      case Term::Kind::kDeref:
        return Status::Ok();
      case Term::Kind::kTuple: {
        const TypeNode* match = &en;
        if (en.kind == TypeKind::kUnion) {
          // Use the unique union member whose attribute set matches.
          match = nullptr;
          for (TypeId m : en.children) {
            const TypeNode& mn = types_->node(m);
            if (mn.kind != TypeKind::kTuple ||
                mn.fields.size() != t.fields.size()) {
              continue;
            }
            bool attrs_match = true;
            for (size_t i = 0; i < mn.fields.size(); ++i) {
              if (mn.fields[i].first != t.fields[i].first) {
                attrs_match = false;
                break;
              }
            }
            if (attrs_match) {
              if (match != nullptr) return Status::Ok();  // ambiguous
              match = &mn;
            }
          }
          if (match == nullptr) return Status::Ok();
        }
        if (match->kind != TypeKind::kTuple ||
            match->fields.size() != t.fields.size()) {
          return Status::Ok();  // shape mismatch surfaces in checking
        }
        for (size_t i = 0; i < t.fields.size(); ++i) {
          if (match->fields[i].first != t.fields[i].first) continue;
          IQL_RETURN_IF_ERROR(PropagateExpected(
              t.fields[i].second, match->fields[i].second, changed));
        }
        return Status::Ok();
      }
      case Term::Kind::kSet: {
        if (en.kind != TypeKind::kSet) return Status::Ok();
        for (TermId child : t.elems) {
          IQL_RETURN_IF_ERROR(
              PropagateExpected(child, en.children[0], changed));
        }
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  // The element type of a membership literal's left-hand side, if already
  // determinable: T(R) for R, P for P, the element type of a set-typed
  // variable, T(P)'s element type for x^ with x: P.
  std::optional<TypeId> MembershipElementType(TermId lhs) {
    const Term& t = term(lhs);
    switch (t.kind) {
      case Term::Kind::kRelName:
        return schema_.RelationType(t.name);
      case Term::Kind::kClassName:
        return types_->Class(t.name);
      case Term::Kind::kVar: {
        auto it = rule_->var_types.find(t.name);
        if (it == rule_->var_types.end()) return std::nullopt;
        const TypeNode& n = types_->node(it->second);
        if (n.kind != TypeKind::kSet) return std::nullopt;
        return n.children[0];
      }
      case Term::Kind::kDeref: {
        auto it = rule_->var_types.find(t.name);
        if (it == rule_->var_types.end()) return std::nullopt;
        const TypeNode& n = types_->node(it->second);
        if (n.kind != TypeKind::kClass) return std::nullopt;
        TypeId value_type = schema_.ClassType(n.class_name);
        if (value_type == kInvalidType) return std::nullopt;
        const TypeNode& vn = types_->node(value_type);
        if (vn.kind != TypeKind::kSet) return std::nullopt;
        return vn.children[0];
      }
      default:
        return std::nullopt;
    }
  }

  // The full type of a term if all its variables are typed.
  std::optional<TypeId> TryTermType(TermId id) {
    const Term& t = term(id);
    switch (t.kind) {
      case Term::Kind::kVar: {
        auto it = rule_->var_types.find(t.name);
        if (it == rule_->var_types.end()) return std::nullopt;
        return it->second;
      }
      case Term::Kind::kConst:
        return types_->Base();
      case Term::Kind::kRelName:
        return types_->Set(schema_.RelationType(t.name));
      case Term::Kind::kClassName:
        return types_->Set(types_->Class(t.name));
      case Term::Kind::kDeref: {
        auto it = rule_->var_types.find(t.name);
        if (it == rule_->var_types.end()) return std::nullopt;
        const TypeNode& n = types_->node(it->second);
        if (n.kind != TypeKind::kClass) return std::nullopt;
        TypeId value_type = schema_.ClassType(n.class_name);
        if (value_type == kInvalidType) return std::nullopt;
        return value_type;
      }
      case Term::Kind::kTuple: {
        std::vector<std::pair<Symbol, TypeId>> fields;
        for (const auto& [attr, child] : t.fields) {
          auto ft = TryTermType(child);
          if (!ft.has_value()) return std::nullopt;
          fields.emplace_back(attr, *ft);
        }
        return types_->Tuple(std::move(fields));
      }
      case Term::Kind::kSet: {
        std::vector<TypeId> members;
        for (TermId child : t.elems) {
          auto et = TryTermType(child);
          if (!et.has_value()) return std::nullopt;
          members.push_back(*et);
        }
        if (members.empty()) return types_->Set(types_->Empty());
        return types_->Set(types_->Union(std::move(members)));
      }
    }
    return std::nullopt;
  }

  Status InferLiteral(const Literal& lit, bool* changed) {
    switch (lit.kind) {
      case Literal::Kind::kChoose:
        return Status::Ok();
      case Literal::Kind::kMembership: {
        auto elem = MembershipElementType(lit.lhs);
        if (elem.has_value()) {
          IQL_RETURN_IF_ERROR(PropagateExpected(lit.rhs, *elem, changed));
        }
        return Status::Ok();
      }
      case Literal::Kind::kEquality: {
        auto lt = TryTermType(lit.lhs);
        auto rt = TryTermType(lit.rhs);
        if (lt.has_value() && !rt.has_value()) {
          IQL_RETURN_IF_ERROR(PropagateExpected(lit.rhs, *lt, changed));
        } else if (rt.has_value() && !lt.has_value()) {
          IQL_RETURN_IF_ERROR(PropagateExpected(lit.lhs, *rt, changed));
        }
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  // ---- checking ----------------------------------------------------------

  Status CheckHeadShape() {
    const Literal& head = rule_->head;
    if (head.kind == Literal::Kind::kChoose) {
      return RuleError("'choose' cannot be a head");
    }
    const Term& lhs = term(head.lhs);
    if (head.kind == Literal::Kind::kEquality) {
      // x^ = t with x of a non-set-valued class.
      if (lhs.kind != Term::Kind::kDeref) {
        return RuleError("an equality head must have the form x^ = t");
      }
      TypeId xt = rule_->var_types[lhs.name];
      const TypeNode& xn = types_->node(xt);
      if (xn.kind != TypeKind::kClass) {
        return RuleError("'" + std::string(u_->Name(lhs.name)) +
                         "^' requires a class-typed variable");
      }
      if (schema_.IsSetValuedClass(xn.class_name)) {
        return RuleError(
            "head 'x^ = t' requires a non-set-valued class; use x^(t) for "
            "set accretion");
      }
      return Status::Ok();
    }
    // Membership head: R(t), P(t), or x^(t).
    switch (lhs.kind) {
      case Term::Kind::kRelName:
      case Term::Kind::kClassName:
        return Status::Ok();
      case Term::Kind::kDeref: {
        TypeId xt = rule_->var_types[lhs.name];
        const TypeNode& xn = types_->node(xt);
        if (xn.kind != TypeKind::kClass ||
            !schema_.IsSetValuedClass(xn.class_name)) {
          return RuleError(
              "head 'x^(t)' requires x to range over a set-valued class");
        }
        return Status::Ok();
      }
      default:
        return RuleError(
            "a head must be R(t), P(t), x^(t), or x^ = t (§3.1)");
    }
  }

  Status CheckLiteral(const Literal& lit, bool is_head) {
    switch (lit.kind) {
      case Literal::Kind::kChoose:
        return Status::Ok();
      case Literal::Kind::kMembership: {
        auto elem = MembershipElementType(lit.lhs);
        if (!elem.has_value()) {
          return RuleError("left-hand side of membership '" +
                           program_.LiteralToString(lit, u_->symbols()) +
                           "' is not set-typed");
        }
        auto rt = TryTermType(lit.rhs);
        if (!rt.has_value()) {
          return RuleError("cannot type term in '" +
                           program_.LiteralToString(lit, u_->symbols()) +
                           "'");
        }
        if (!AssignableType(types_, *rt, *elem)) {
          return RuleError("type mismatch in '" +
                           program_.LiteralToString(lit, u_->symbols()) +
                           "': element type is " + types_->ToString(*elem) +
                           " but term has type " + types_->ToString(*rt));
        }
        return Status::Ok();
      }
      case Literal::Kind::kEquality: {
        auto lt = TryTermType(lit.lhs);
        auto rt = TryTermType(lit.rhs);
        if (!lt.has_value() || !rt.has_value()) {
          return RuleError("cannot type equality '" +
                           program_.LiteralToString(lit, u_->symbols()) +
                           "'");
        }
        bool ok = is_head
                      ? AssignableType(types_, *rt, *lt)
                      : AssignableType(types_, *rt, *lt) ||
                            AssignableType(types_, *lt, *rt);
        if (!ok) {
          return RuleError("incompatible types in '" +
                           program_.LiteralToString(lit, u_->symbols()) +
                           "': " + types_->ToString(*lt) + " vs " +
                           types_->ToString(*rt));
        }
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  Universe* u_;
  TypePool* types_;
  const Schema& schema_;
  const Program& program_;
  Rule* rule_;
};

}  // namespace

Status TypeCheck(Universe* universe, const Schema& schema, Program* program,
                 DiagnosticSink* diags) {
  auto fail = [&](const Status& status, SourceSpan span) {
    if (diags != nullptr) diags->Error("E004", span, status.message());
    return status;
  };
  // Structural depth pre-pass: type inference and checking recurse with
  // the nesting of tuple/set terms, so a pathologically deep term (built
  // programmatically -- the parser has its own, lower cap) would overflow
  // the C++ stack inside the checker. Term ids are created bottom-up, so
  // children always precede parents and one forward scan suffices; no
  // recursion here.
  constexpr uint32_t kMaxTermDepth = 256;
  {
    std::vector<uint32_t> depth(program->terms.size(), 1);
    for (TermId id = 0; id < program->terms.size(); ++id) {
      const Term& t = program->terms[id];
      uint32_t deepest = 0;
      for (const auto& [attr, child] : t.fields) {
        deepest = std::max(deepest, depth[child]);
      }
      for (TermId child : t.elems) {
        deepest = std::max(deepest, depth[child]);
      }
      depth[id] = deepest + 1;
      if (depth[id] > kMaxTermDepth) {
        Status status = TypeError(
            "term nested deeper than " + std::to_string(kMaxTermDepth) +
            " levels; the type checker refuses to recurse further");
        if (diags != nullptr) diags->Error("E006", t.span, status.message());
        return status;
      }
    }
  }
  // Predicate names must be declared.
  for (const Term& t : program->terms) {
    if (t.kind == Term::Kind::kRelName && !schema.HasRelation(t.name)) {
      return fail(TypeError("undeclared relation '" +
                            std::string(universe->Name(t.name)) + "'"),
                  t.span);
    }
    if (t.kind == Term::Kind::kClassName && !schema.HasClass(t.name)) {
      return fail(TypeError("undeclared class '" +
                            std::string(universe->Name(t.name)) + "'"),
                  t.span);
    }
  }
  for (auto& stage : program->stages) {
    for (Rule& rule : stage) {
      RuleChecker checker(universe, schema, *program, &rule);
      Status status = checker.Check();
      if (!status.ok()) return fail(status, rule.span);
    }
  }
  program->type_checked = true;
  return Status::Ok();
}

Result<TypeId> TermType(Universe* universe, const Schema& schema,
                        const Rule& rule, const Program& program,
                        TermId id) {
  TypePool& types = universe->types();
  const Term& t = program.term(id);
  switch (t.kind) {
    case Term::Kind::kVar: {
      auto it = rule.var_types.find(t.name);
      if (it == rule.var_types.end()) {
        return TypeError("untyped variable '" +
                         std::string(universe->Name(t.name)) + "'");
      }
      return it->second;
    }
    case Term::Kind::kConst:
      return types.Base();
    case Term::Kind::kRelName:
      return types.Set(schema.RelationType(t.name));
    case Term::Kind::kClassName:
      return types.Set(types.Class(t.name));
    case Term::Kind::kDeref: {
      auto it = rule.var_types.find(t.name);
      if (it == rule.var_types.end()) {
        return TypeError("untyped variable '" +
                         std::string(universe->Name(t.name)) + "'");
      }
      const TypeNode& n = types.node(it->second);
      if (n.kind != TypeKind::kClass) {
        return TypeError("dereference of non-class-typed variable");
      }
      return schema.ClassType(n.class_name);
    }
    case Term::Kind::kTuple: {
      std::vector<std::pair<Symbol, TypeId>> fields;
      for (const auto& [attr, child] : t.fields) {
        IQL_ASSIGN_OR_RETURN(TypeId ft,
                             TermType(universe, schema, rule, program,
                                      child));
        fields.emplace_back(attr, ft);
      }
      return types.Tuple(std::move(fields));
    }
    case Term::Kind::kSet: {
      std::vector<TypeId> members;
      for (TermId child : t.elems) {
        IQL_ASSIGN_OR_RETURN(TypeId et,
                             TermType(universe, schema, rule, program,
                                      child));
        members.push_back(et);
      }
      if (members.empty()) return types.Set(types.Empty());
      return types.Set(types.Union(std::move(members)));
    }
  }
  return InternalError("unknown term kind");
}

}  // namespace iqlkit
