#include "iql/parser.h"

#include <cctype>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "base/logging.h"
#include "iql/lexer.h"

namespace iqlkit {

Symbol PositionalAttr(Universe* universe, int k) {
  return universe->Intern("#" + std::to_string(k));
}

namespace {

// Recursive-descent parser over the token stream. The schema is parsed (or
// supplied) before any program text, so identifiers inside rules can be
// classified as relation names, class names, or variables.
class Parser {
 public:
  Parser(Universe* universe, std::vector<Token> tokens,
         DiagnosticSink* diags = nullptr)
      : universe_(universe), tokens_(std::move(tokens)), diags_(diags) {}

  Result<ParsedUnit> ParseUnit() {
    ParsedUnit unit(universe_);
    decl_spans_ = &unit.decl_spans;
    bool saw_schema = false;
    while (!At(TokenKind::kEof)) {
      if (At(TokenKind::kKwSchema)) {
        if (saw_schema) return Error("duplicate schema block");
        saw_schema = true;
        Next();
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
        IQL_RETURN_IF_ERROR(ParseSchemaItems(&unit.schema));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      } else if (At(TokenKind::kKwInput) || At(TokenKind::kKwOutput)) {
        bool input = At(TokenKind::kKwInput);
        Next();
        std::vector<std::string>* names =
            input ? &unit.input_names : &unit.output_names;
        do {
          if (!At(TokenKind::kIdent)) return Error("expected name");
          names->push_back(Cur().text);
          Next();
        } while (Accept(TokenKind::kComma));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
      } else if (At(TokenKind::kKwProgram)) {
        if (!saw_schema) return Error("program block before schema block");
        Next();
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
        IQL_RETURN_IF_ERROR(ParseProgramItems(&unit.schema, &unit.program));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      } else if (At(TokenKind::kKwInstance)) {
        if (!saw_schema) return Error("instance block before schema block");
        Next();
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
        IQL_RETURN_IF_ERROR(ParseInstanceItems(&unit));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      } else {
        return Error(
            "expected 'schema', 'input', 'output', 'program', or "
            "'instance'");
      }
    }
    IQL_RETURN_IF_ERROR(unit.schema.Validate());
    return unit;
  }

  Result<Schema> ParseSchemaOnly() {
    Schema schema(universe_);
    if (Accept(TokenKind::kKwSchema)) {
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
      IQL_RETURN_IF_ERROR(ParseSchemaItems(&schema));
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    } else {
      IQL_RETURN_IF_ERROR(ParseSchemaItems(&schema));
    }
    IQL_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    IQL_RETURN_IF_ERROR(schema.Validate());
    return schema;
  }

  Result<Program> ParseProgramOnly(const Schema& schema) {
    Program program;
    if (Accept(TokenKind::kKwProgram)) {
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
      IQL_RETURN_IF_ERROR(ParseProgramItems(&schema, &program));
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    } else {
      IQL_RETURN_IF_ERROR(ParseProgramItems(&schema, &program));
    }
    IQL_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    return program;
  }

  Result<TypeId> ParseTypeOnly() {
    IQL_ASSIGN_OR_RETURN(TypeId t, ParseType());
    IQL_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    return t;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  void Next() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool Accept(TokenKind kind) {
    if (!At(kind)) return false;
    Next();
    return true;
  }
  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Error("expected " + std::string(TokenKindName(kind)) +
                   ", found " + std::string(TokenKindName(Cur().kind)));
    }
    Next();
    return Status::Ok();
  }
  Status Error(std::string message, const char* code = "E002") const {
    if (diags_ != nullptr) diags_->Error(code, Cur().span(), message);
    return ParseError(message + " at line " + std::to_string(Cur().line) +
                      ", column " + std::to_string(Cur().column));
  }

  // Types, terms, and values recurse with the nesting of the input, so a
  // pathological source (say, 100k opening braces) would overflow the C++
  // stack before any semantic check runs. The cap is far beyond anything a
  // real program nests; crossing it is a proper E006 diagnostic, not a
  // crash.
  static constexpr int kMaxNestingDepth = 200;

  struct DepthGuard {
    explicit DepthGuard(int* d) : depth(d) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };

  Status CheckDepth(const char* what) {
    if (depth_ >= kMaxNestingDepth) {
      return Error(std::string(what) + " nested deeper than " +
                       std::to_string(kMaxNestingDepth) +
                       " levels; refusing to recurse further",
                   "E006");
    }
    return Status::Ok();
  }

  // The span from `start`'s first byte through the last consumed token.
  SourceSpan SpanFrom(const Token& start) const {
    const Token& end = tokens_[pos_ > 0 ? pos_ - 1 : 0];
    SourceSpan span = start.span();
    int close = end.offset + end.length;
    if (close > span.offset) span.length = close - span.offset;
    return span;
  }

  // ---- schema ------------------------------------------------------------

  Status ParseSchemaItems(Schema* schema) {
    while (At(TokenKind::kKwRelation) || At(TokenKind::kKwClass)) {
      bool is_relation = At(TokenKind::kKwRelation);
      const Token& start = Cur();
      Next();
      if (!At(TokenKind::kIdent)) return Error("expected name");
      std::string name = Cur().text;
      Next();
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      IQL_ASSIGN_OR_RETURN(TypeId t, ParseType());
      if (decl_spans_ != nullptr) {
        decl_spans_->emplace(universe_->Intern(name), SpanFrom(start));
      }
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
      IQL_RETURN_IF_ERROR(is_relation ? schema->DeclareRelation(name, t)
                                      : schema->DeclareClass(name, t));
    }
    return Status::Ok();
  }

  // type := type1 ("|" type1)*
  Result<TypeId> ParseType() {
    IQL_RETURN_IF_ERROR(CheckDepth("type"));
    DepthGuard guard(&depth_);
    IQL_ASSIGN_OR_RETURN(TypeId first, ParseType1());
    std::vector<TypeId> members = {first};
    while (Accept(TokenKind::kPipe)) {
      IQL_ASSIGN_OR_RETURN(TypeId next, ParseType1());
      members.push_back(next);
    }
    if (members.size() == 1) return members[0];
    return universe_->types().Union(std::move(members));
  }

  // type1 := type2 ("&" type2)*
  Result<TypeId> ParseType1() {
    IQL_ASSIGN_OR_RETURN(TypeId first, ParseType2());
    std::vector<TypeId> members = {first};
    while (Accept(TokenKind::kAmp)) {
      IQL_ASSIGN_OR_RETURN(TypeId next, ParseType2());
      members.push_back(next);
    }
    if (members.size() == 1) return members[0];
    return universe_->types().Intersect(std::move(members));
  }

  Result<TypeId> ParseType2() {
    TypePool& types = universe_->types();
    if (Accept(TokenKind::kKwBase)) return types.Base();
    if (Accept(TokenKind::kKwEmpty)) return types.Empty();
    if (At(TokenKind::kIdent)) {
      TypeId t = types.ClassNamed(Cur().text);
      Next();
      return t;
    }
    if (Accept(TokenKind::kLParen)) {
      IQL_ASSIGN_OR_RETURN(TypeId t, ParseType());
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return t;
    }
    if (Accept(TokenKind::kLBrace)) {
      IQL_ASSIGN_OR_RETURN(TypeId t, ParseType());
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      return types.Set(t);
    }
    if (Accept(TokenKind::kLBracket)) {
      std::vector<std::pair<Symbol, TypeId>> fields;
      if (!At(TokenKind::kRBracket)) {
        // All fields named (IDENT ":" type) or all positional (type).
        bool named = At(TokenKind::kIdent) &&
                     Peek(1).kind == TokenKind::kColon;
        int position = 0;
        do {
          if (named) {
            if (!At(TokenKind::kIdent) ||
                Peek(1).kind != TokenKind::kColon) {
              return Error("expected named field 'attr: type'");
            }
            Symbol attr = universe_->Intern(Cur().text);
            Next();
            Next();  // colon
            IQL_ASSIGN_OR_RETURN(TypeId ft, ParseType());
            fields.emplace_back(attr, ft);
          } else {
            if (At(TokenKind::kIdent) && Peek(1).kind == TokenKind::kColon) {
              return Error("cannot mix named and positional tuple fields");
            }
            IQL_ASSIGN_OR_RETURN(TypeId ft, ParseType());
            fields.emplace_back(PositionalAttr(universe_, ++position), ft);
          }
        } while (Accept(TokenKind::kComma));
      }
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      return types.Tuple(std::move(fields));
    }
    return Error("expected type");
  }

  const Token& Peek(size_t ahead) const {
    size_t j = pos_ + ahead;
    return j < tokens_.size() ? tokens_[j] : tokens_.back();
  }

  // ---- program -----------------------------------------------------------

  Status ParseProgramItems(const Schema* schema, Program* program) {
    schema_ = schema;
    program->stages.emplace_back();
    while (true) {
      if (Accept(TokenKind::kSemi)) {
        // Stage separator; empty stages are dropped at the end.
        if (!program->stages.back().empty()) {
          program->stages.emplace_back();
        }
        continue;
      }
      if (At(TokenKind::kKwVar)) {
        Next();
        do {
          if (!At(TokenKind::kIdent)) return Error("expected variable name");
          const Token& item_start = Cur();
          Symbol var = universe_->Intern(Cur().text);
          Next();
          IQL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
          IQL_ASSIGN_OR_RETURN(TypeId t, ParseType());
          auto [it, inserted] = program->declared_var_types.emplace(var, t);
          if (!inserted && it->second != t) {
            return Error("conflicting declaration for variable '" +
                         std::string(universe_->Name(var)) + "'");
          }
          program->declared_var_spans.emplace(var, SpanFrom(item_start));
        } while (Accept(TokenKind::kComma));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
        continue;
      }
      if (At(TokenKind::kRBrace) || At(TokenKind::kEof)) break;
      IQL_RETURN_IF_ERROR(ParseRule(program));
    }
    if (program->stages.back().empty() && program->stages.size() > 1) {
      program->stages.pop_back();
    }
    return Status::Ok();
  }

  Status ParseRule(Program* program) {
    const Token& start = Cur();
    Rule rule;
    rule.head_negative = Accept(TokenKind::kBang);
    IQL_ASSIGN_OR_RETURN(rule.head, ParseHeadLiteral(program));
    if (Accept(TokenKind::kTurnstile)) {
      do {
        IQL_ASSIGN_OR_RETURN(Literal lit, ParseBodyLiteral(program));
        if (lit.kind == Literal::Kind::kChoose) rule.has_choose = true;
        rule.body.push_back(lit);
      } while (Accept(TokenKind::kComma));
    }
    IQL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    rule.stage = static_cast<int>(program->stages.size()) - 1;
    rule.index = static_cast<int>(program->stages.back().size());
    rule.span = SpanFrom(start);
    program->stages.back().push_back(std::move(rule));
    return Status::Ok();
  }

  // head := Name "(" args ")" | var "^" "(" term ")" | var "^" "=" term
  Result<Literal> ParseHeadLiteral(Program* program) {
    if (!At(TokenKind::kIdent)) return Error("expected head literal");
    const Token& start = Cur();
    Symbol name = universe_->Intern(Cur().text);
    Next();
    Literal lit;
    if (Accept(TokenKind::kCaret)) {
      TermId deref = program->Deref(name, SpanFrom(start));
      if (Accept(TokenKind::kEq)) {
        lit.kind = Literal::Kind::kEquality;
        lit.lhs = deref;
        IQL_ASSIGN_OR_RETURN(lit.rhs, ParseTerm(program));
        lit.span = SpanFrom(start);
        return lit;
      }
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      lit.kind = Literal::Kind::kMembership;
      lit.lhs = deref;
      IQL_ASSIGN_OR_RETURN(lit.rhs, ParseTerm(program));
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      lit.span = SpanFrom(start);
      return lit;
    }
    IQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    IQL_ASSIGN_OR_RETURN(TermId args, ParseCallArgs(program, name));
    lit.kind = Literal::Kind::kMembership;
    if (schema_->HasRelation(name)) {
      lit.lhs = program->RelName(name, start.span());
    } else if (schema_->HasClass(name)) {
      lit.lhs = program->ClassName(name, start.span());
    } else {
      return Error("head predicate '" +
                   std::string(universe_->Name(name)) +
                   "' is not a declared relation or class");
    }
    lit.rhs = args;
    lit.span = SpanFrom(start);
    return lit;
  }

  // Arguments of Name(...): one argument is direct membership Name(t);
  // k != 1 arguments are the positional-tuple shorthand of §3.4.
  Result<TermId> ParseCallArgs(Program* program, Symbol name) {
    (void)name;
    const Token& start = Cur();
    std::vector<TermId> args;
    if (!At(TokenKind::kRParen)) {
      do {
        IQL_ASSIGN_OR_RETURN(TermId t, ParseTerm(program));
        args.push_back(t);
      } while (Accept(TokenKind::kComma));
    }
    IQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (args.size() == 1) return args[0];
    std::vector<std::pair<Symbol, TermId>> fields;
    fields.reserve(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
      fields.emplace_back(PositionalAttr(universe_, static_cast<int>(i + 1)),
                          args[i]);
    }
    return program->TupleTerm(std::move(fields), SpanFrom(start));
  }

  Result<Literal> ParseBodyLiteral(Program* program) {
    if (Accept(TokenKind::kKwChoose)) {
      Literal lit;
      lit.kind = Literal::Kind::kChoose;
      return lit;
    }
    const Token& start = Cur();
    bool negative = Accept(TokenKind::kBang);
    // Membership with a name/var/deref left-hand side?
    if (At(TokenKind::kIdent)) {
      if (Peek(1).kind == TokenKind::kLParen) {
        const Token& name_tok = Cur();
        Symbol name = universe_->Intern(Cur().text);
        Next();
        Next();  // '('
        IQL_ASSIGN_OR_RETURN(TermId args, ParseCallArgs(program, name));
        Literal lit;
        lit.kind = Literal::Kind::kMembership;
        lit.positive = !negative;
        if (schema_->HasRelation(name)) {
          lit.lhs = program->RelName(name, name_tok.span());
        } else if (schema_->HasClass(name)) {
          lit.lhs = program->ClassName(name, name_tok.span());
        } else {
          // set-typed variable, e.g. Y(y)
          lit.lhs = program->Var(name, name_tok.span());
        }
        lit.rhs = args;
        lit.span = SpanFrom(start);
        return lit;
      }
      if (Peek(1).kind == TokenKind::kCaret &&
          Peek(2).kind == TokenKind::kLParen) {
        const Token& name_tok = Cur();
        Symbol var = universe_->Intern(Cur().text);
        Next();
        Next();  // '^'
        SourceSpan deref_span = SpanFrom(name_tok);
        Next();  // '('
        Literal lit;
        lit.kind = Literal::Kind::kMembership;
        lit.positive = !negative;
        lit.lhs = program->Deref(var, deref_span);
        IQL_ASSIGN_OR_RETURN(lit.rhs, ParseTerm(program));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        lit.span = SpanFrom(start);
        return lit;
      }
    }
    if (negative) {
      return Error("'!' must precede a membership literal (use != for "
                   "inequality)");
    }
    // Otherwise an equality/inequality between two terms.
    IQL_ASSIGN_OR_RETURN(TermId lhs, ParseTerm(program));
    Literal lit;
    lit.kind = Literal::Kind::kEquality;
    if (Accept(TokenKind::kEq)) {
      lit.positive = true;
    } else if (Accept(TokenKind::kNeq)) {
      lit.positive = false;
    } else {
      return Error("expected '=' or '!=' in body literal");
    }
    lit.lhs = lhs;
    IQL_ASSIGN_OR_RETURN(lit.rhs, ParseTerm(program));
    lit.span = SpanFrom(start);
    return lit;
  }

  Result<TermId> ParseTerm(Program* program) {
    IQL_RETURN_IF_ERROR(CheckDepth("term"));
    DepthGuard guard(&depth_);
    const Token& start = Cur();
    if (At(TokenKind::kString) || At(TokenKind::kInt)) {
      Symbol atom = universe_->Intern(Cur().text);
      Next();
      return program->Const(atom, SpanFrom(start));
    }
    if (At(TokenKind::kIdent)) {
      Symbol name = universe_->Intern(Cur().text);
      Next();
      if (Accept(TokenKind::kCaret)) {
        return program->Deref(name, SpanFrom(start));
      }
      if (schema_->HasRelation(name)) {
        return program->RelName(name, SpanFrom(start));
      }
      if (schema_->HasClass(name)) {
        return program->ClassName(name, SpanFrom(start));
      }
      return program->Var(name, SpanFrom(start));
    }
    if (Accept(TokenKind::kLBrace)) {
      std::vector<TermId> elems;
      if (!At(TokenKind::kRBrace)) {
        do {
          IQL_ASSIGN_OR_RETURN(TermId t, ParseTerm(program));
          elems.push_back(t);
        } while (Accept(TokenKind::kComma));
      }
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      return program->SetTerm(std::move(elems), SpanFrom(start));
    }
    if (Accept(TokenKind::kLBracket)) {
      std::vector<std::pair<Symbol, TermId>> fields;
      if (!At(TokenKind::kRBracket)) {
        bool named = At(TokenKind::kIdent) &&
                     Peek(1).kind == TokenKind::kColon;
        int position = 0;
        do {
          if (named) {
            if (!At(TokenKind::kIdent) ||
                Peek(1).kind != TokenKind::kColon) {
              return Error("expected named field 'attr: term'");
            }
            Symbol attr = universe_->Intern(Cur().text);
            Next();
            Next();  // colon
            IQL_ASSIGN_OR_RETURN(TermId ft, ParseTerm(program));
            fields.emplace_back(attr, ft);
          } else {
            IQL_ASSIGN_OR_RETURN(TermId ft, ParseTerm(program));
            fields.emplace_back(PositionalAttr(universe_, ++position), ft);
          }
        } while (Accept(TokenKind::kComma));
      }
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      return program->TupleTerm(std::move(fields), SpanFrom(start));
    }
    return Error("expected term");
  }

  // ---- instance blocks ----------------------------------------------------

  Result<Oid> NamedOid(ParsedUnit* unit) {
    IQL_RETURN_IF_ERROR(Expect(TokenKind::kAt));
    if (!At(TokenKind::kIdent) && !At(TokenKind::kInt)) {
      return Error("expected an oid label after '@'");
    }
    std::string label = Cur().text;
    Next();
    auto [it, inserted] = unit->named_oids.emplace(label, Oid{});
    if (inserted) it->second = universe_->MintOid();
    return it->second;
  }

  // value := STRING | INT | '@'label | '[' fields ']' | '{' values '}'
  Result<ValueId> ParseValue(ParsedUnit* unit) {
    IQL_RETURN_IF_ERROR(CheckDepth("value"));
    DepthGuard guard(&depth_);
    ValueStore& values = universe_->values();
    if (At(TokenKind::kString) || At(TokenKind::kInt)) {
      ValueId v = values.Const(Cur().text);
      Next();
      return v;
    }
    if (At(TokenKind::kAt)) {
      IQL_ASSIGN_OR_RETURN(Oid o, NamedOid(unit));
      return values.OfOid(o);
    }
    if (Accept(TokenKind::kLBrace)) {
      std::vector<ValueId> elems;
      if (!At(TokenKind::kRBrace)) {
        do {
          IQL_ASSIGN_OR_RETURN(ValueId v, ParseValue(unit));
          elems.push_back(v);
        } while (Accept(TokenKind::kComma));
      }
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      return values.Set(std::move(elems));
    }
    if (Accept(TokenKind::kLBracket)) {
      std::vector<std::pair<Symbol, ValueId>> fields;
      if (!At(TokenKind::kRBracket)) {
        bool named = At(TokenKind::kIdent) &&
                     Peek(1).kind == TokenKind::kColon;
        int position = 0;
        do {
          if (named) {
            if (!At(TokenKind::kIdent) ||
                Peek(1).kind != TokenKind::kColon) {
              return Error("expected named field 'attr: value'");
            }
            Symbol attr = universe_->Intern(Cur().text);
            Next();
            Next();  // colon
            IQL_ASSIGN_OR_RETURN(ValueId fv, ParseValue(unit));
            fields.emplace_back(attr, fv);
          } else {
            IQL_ASSIGN_OR_RETURN(ValueId fv, ParseValue(unit));
            fields.emplace_back(PositionalAttr(universe_, ++position), fv);
          }
        } while (Accept(TokenKind::kComma));
      }
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      return values.Tuple(std::move(fields));
    }
    return Error("expected a ground value");
  }

  Status ParseInstanceItems(ParsedUnit* unit) {
    while (!At(TokenKind::kRBrace) && !At(TokenKind::kEof)) {
      if (At(TokenKind::kAt)) {
        // @label = value;
        IQL_ASSIGN_OR_RETURN(Oid o, NamedOid(unit));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kEq));
        IQL_ASSIGN_OR_RETURN(ValueId v, ParseValue(unit));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
        ParsedFact fact;
        fact.kind = ParsedFact::Kind::kOidValue;
        fact.oid = o;
        fact.value = v;
        unit->facts.push_back(fact);
        continue;
      }
      if (!At(TokenKind::kIdent)) {
        return Error("expected a fact ('Name(...);' or '@oid = value;')");
      }
      Symbol name = universe_->Intern(Cur().text);
      Next();
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      if (unit->schema.HasClass(name)) {
        IQL_ASSIGN_OR_RETURN(Oid o, NamedOid(unit));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        IQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
        ParsedFact fact;
        fact.kind = ParsedFact::Kind::kClassOid;
        fact.name = name;
        fact.oid = o;
        unit->facts.push_back(fact);
        continue;
      }
      if (!unit->schema.HasRelation(name)) {
        return Error("'" + std::string(universe_->Name(name)) +
                     "' is not a declared relation or class");
      }
      std::vector<ValueId> args;
      if (!At(TokenKind::kRParen)) {
        do {
          IQL_ASSIGN_OR_RETURN(ValueId v, ParseValue(unit));
          args.push_back(v);
        } while (Accept(TokenKind::kComma));
      }
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      IQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
      ParsedFact fact;
      fact.kind = ParsedFact::Kind::kRelation;
      fact.name = name;
      if (args.size() == 1) {
        fact.value = args[0];
      } else {
        std::vector<std::pair<Symbol, ValueId>> fields;
        for (size_t i = 0; i < args.size(); ++i) {
          fields.emplace_back(
              PositionalAttr(universe_, static_cast<int>(i + 1)), args[i]);
        }
        fact.value = universe_->values().Tuple(std::move(fields));
      }
      unit->facts.push_back(fact);
    }
    return Status::Ok();
  }

  Universe* universe_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;  // current ParseType/ParseTerm/ParseValue nesting
  const Schema* schema_ = nullptr;
  DiagnosticSink* diags_ = nullptr;
  // When parsing a full unit, schema declaration spans land here.
  std::map<Symbol, SourceSpan>* decl_spans_ = nullptr;
};

}  // namespace

Result<ParsedUnit> ParseUnit(Universe* universe, std::string_view source,
                             DiagnosticSink* diags) {
  IQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source, diags));
  Parser parser(universe, std::move(tokens), diags);
  return parser.ParseUnit();
}

Result<Program> ParseProgramText(Universe* universe, const Schema& schema,
                                 std::string_view source,
                                 DiagnosticSink* diags) {
  IQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source, diags));
  Parser parser(universe, std::move(tokens), diags);
  return parser.ParseProgramOnly(schema);
}

Result<TypeId> ParseTypeText(Universe* universe, std::string_view source) {
  IQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(universe, std::move(tokens));
  return parser.ParseTypeOnly();
}

Result<Schema> ParseSchemaText(Universe* universe, std::string_view source) {
  IQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(universe, std::move(tokens));
  return parser.ParseSchemaOnly();
}

Status ApplyFacts(const ParsedUnit& unit, Instance* instance) {
  Universe* u = instance->universe();
  const ValueStore& values = u->values();
  for (const ParsedFact& fact : unit.facts) {
    switch (fact.kind) {
      case ParsedFact::Kind::kRelation:
        IQL_RETURN_IF_ERROR(instance->AddToRelation(fact.name, fact.value));
        break;
      case ParsedFact::Kind::kClassOid:
        IQL_RETURN_IF_ERROR(instance->AddOid(fact.name, fact.oid));
        break;
      case ParsedFact::Kind::kOidValue: {
        auto cls = instance->ClassOf(fact.oid);
        if (!cls.has_value()) {
          return FailedPreconditionError(
              "oid value assigned before a class fact declared the oid");
        }
        if (instance->schema().IsSetValuedClass(*cls)) {
          const ValueNode& n = values.node(fact.value);
          if (n.kind != ValueKind::kSet) {
            return TypeError("set-valued oid assigned a non-set value");
          }
          for (ValueId e : n.elems) {
            IQL_RETURN_IF_ERROR(instance->AddToSetOid(fact.oid, e));
          }
        } else {
          IQL_RETURN_IF_ERROR(instance->SetOidValue(fact.oid, fact.value));
        }
        break;
      }
    }
  }
  for (const auto& [label, oid] : unit.named_oids) {
    instance->NameOid(oid, label);
  }
  return Status::Ok();
}

namespace {

bool IsIdentLabel(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '\'')) {
      return false;
    }
  }
  return true;
}

// Unique, parseable labels: debug names where possible, "o<raw>"
// otherwise, with collisions disambiguated by the raw oid.
using LabelMap = std::map<Oid, std::string>;

LabelMap BuildLabels(const Instance& inst) {
  LabelMap labels;
  std::set<std::string> used;
  for (Symbol p : inst.schema().class_names()) {
    for (Oid o : inst.ClassExtent(p)) {
      std::string label = inst.OidLabel(o);
      if (!label.empty() && label[0] == '@') {
        label = "o" + std::to_string(o.raw);
      }
      if (!IsIdentLabel(label) || used.count(label)) {
        label = "o" + std::to_string(o.raw);
      }
      used.insert(label);
      labels.emplace(o, std::move(label));
    }
  }
  return labels;
}

void WriteValue(const Instance& inst, const LabelMap& labels, ValueId v,
                std::string* out) {
  Universe* u = inst.universe();
  const ValueNode& n = u->values().node(v);
  switch (n.kind) {
    case ValueKind::kConst: {
      out->push_back('"');
      for (char c : u->Name(n.atom)) {
        if (c == '"' || c == '\\') out->push_back('\\');
        out->push_back(c);
      }
      out->push_back('"');
      return;
    }
    case ValueKind::kOid:
      out->push_back('@');
      out->append(labels.at(n.oid));
      return;
    case ValueKind::kTuple: {
      // Positional form when the attributes are exactly #1..#k.
      bool positional = true;
      for (size_t i = 0; i < n.fields.size(); ++i) {
        if (u->Name(n.fields[i].first) != "#" + std::to_string(i + 1)) {
          positional = false;
          break;
        }
      }
      out->push_back('[');
      bool first = true;
      for (const auto& [attr, child] : n.fields) {
        if (!first) out->append(", ");
        first = false;
        if (!positional) {
          out->append(u->Name(attr));
          out->append(": ");
        }
        WriteValue(inst, labels, child, out);
      }
      out->push_back(']');
      return;
    }
    case ValueKind::kSet: {
      out->push_back('{');
      bool first = true;
      for (ValueId child : n.elems) {
        if (!first) out->append(", ");
        first = false;
        WriteValue(inst, labels, child, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

std::string WriteFacts(const Instance& instance) {
  Universe* u = instance.universe();
  LabelMap labels = BuildLabels(instance);
  std::string out = "instance {\n";
  for (Symbol p : instance.schema().class_names()) {
    for (Oid o : instance.ClassExtent(p)) {
      out += "  " + std::string(u->Name(p)) + "(@" + labels.at(o) + ");\n";
    }
  }
  ValueId empty_set = u->values().EmptySet();
  for (Symbol p : instance.schema().class_names()) {
    bool set_valued = instance.schema().IsSetValuedClass(p);
    for (Oid o : instance.ClassExtent(p)) {
      auto v = instance.ValueOf(o);
      if (!v.has_value()) continue;
      if (set_valued && *v == empty_set) continue;  // the default
      out += "  @" + labels.at(o) + " = ";
      WriteValue(instance, labels, *v, &out);
      out += ";\n";
    }
  }
  for (Symbol r : instance.schema().relation_names()) {
    for (ValueId v : instance.Relation(r)) {
      out += "  " + std::string(u->Name(r)) + "(";
      WriteValue(instance, labels, v, &out);
      out += ");\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace iqlkit
