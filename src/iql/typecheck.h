#ifndef IQLKIT_IQL_TYPECHECK_H_
#define IQLKIT_IQL_TYPECHECK_H_

#include "base/result.h"
#include "base/status.h"
#include "iql/ast.h"
#include "model/schema.h"
#include "model/universe.h"

namespace iqlkit {

class DiagnosticSink;

// Structural assignability `actual <= expected`:
//   - the empty type is assignable to everything;
//   - a type is assignable to any union containing it (the paper's
//     body-equality coercion, §3.1 condition (2), applied uniformly);
//   - tuples are assignable fieldwise on identical attribute sets, sets
//     elementwise (this covers the polymorphic empty set: {empty} <= {t}).
// Sound: Assignable(a, e) implies ⟦a⟧ is a subset of ⟦e⟧ for every oid
// assignment.
bool AssignableType(TypePool* pool, TypeId actual, TypeId expected);

// Checks an IQL program against a schema per §3.1 and fills in each rule's
// `var_types` (declared types plus inference) and `invented_vars` (head-only
// variables, which must have class type). Verifies:
//   - every head is a fact: R(t), P(t), x^(t) with x of a set-valued class,
//     or x^ = t with x of a non-set class;
//   - every literal is typed (with union coercion on equalities);
//   - head-only variables have class type (§3.1 rule condition (3));
//   - all predicate names are declared in the schema.
// Variables the checker cannot infer must be declared with `var x: t;`.
// When `diags` is non-null, failures are additionally reported as E004
// diagnostics carrying the offending rule's (or term's) source span.
Status TypeCheck(Universe* universe, const Schema& schema, Program* program,
                 DiagnosticSink* diags = nullptr);

// The type of `term` under `rule.var_types` (§3.1 term typing). The rule
// must already be type checked.
Result<TypeId> TermType(Universe* universe, const Schema& schema,
                        const Rule& rule, const Program& program,
                        TermId term);

}  // namespace iqlkit

#endif  // IQLKIT_IQL_TYPECHECK_H_
